package ena_test

import (
	"fmt"

	"ena"
)

// The paper's headline: a 320-CU, 1 GHz, 3 TB/s node under the exascale
// power envelope.
func ExampleBestMeanEHP() {
	cfg := ena.BestMeanEHP()
	fmt.Println(cfg)
	fmt.Printf("peak %.1f TFLOP/s, %d GB in package\n",
		cfg.PeakTFLOPs(), int(cfg.InPackageCapacityGB()))
	// Output:
	// 320 CUs / 1000 MHz / 3 TB/s
	// peak 20.5 TFLOP/s, 256 GB in package
}

// Simulating the peak-compute scenario reproduces the §V-F exascale
// projection.
func ExampleProjectSystem() {
	mf, _ := ena.WorkloadByName("MaxFlops")
	r := ena.Simulate(ena.NewEHP(320, 1000, 1), mf, ena.Options{ExcludeExternal: true})
	p := ena.ProjectSystem(r, 0)
	fmt.Printf("%.2f exaflops across %d nodes\n", p.ExaFLOPs, p.Nodes)
	// Output:
	// 1.86 exaflops across 100000 nodes
}

// Kernels report which roofline term binds them on a given configuration:
// at 1 TB/s the bandwidth wall appears for SNAP, while XSBench stays
// latency-bound and MaxFlops compute-bound.
func ExampleSimulate() {
	cfg := ena.NewEHP(320, 1000, 1)
	for _, name := range []string{"MaxFlops", "SNAP", "XSBench"} {
		k, _ := ena.WorkloadByName(name)
		r := ena.Simulate(cfg, k, ena.Options{})
		fmt.Printf("%s: %s-bound\n", name, r.Perf.Bound)
	}
	// Output:
	// MaxFlops: compute-bound
	// SNAP: bandwidth-bound
	// XSBench: latency-bound
}

// The design-space exploration recovers the paper's best-mean configuration.
func ExampleExplore() {
	out := ena.Explore(ena.DefaultSpace(), ena.Workloads(), ena.NodePowerBudgetW, 0)
	fmt.Println("best on average:", out.BestMean.Point)
	// Output:
	// best on average: 320 / 1000 / 3
}

// WorkloadByName rejects kernels outside Table I.
func ExampleWorkloadByName() {
	_, err := ena.WorkloadByName("LINPACK")
	fmt.Println(err)
	// Output:
	// workload: unknown kernel "LINPACK"
}
