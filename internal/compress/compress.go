// Package compress implements the cache-line compression used to estimate
// DRAM-traffic compression savings (§V-E "DRAM Traffic Compression"). It
// provides a real, reversible FPC-style frequent-pattern codec for 64-byte
// lines of eight 64-bit words, plus a base-delta (BDI-style) size estimator;
// the power model uses whichever is smaller per line, as hardware proposals
// do.
package compress

import (
	"errors"
	"fmt"
)

// WordsPerLine is the number of 64-bit words in one 64-byte line.
const WordsPerLine = 8

// LineBits is the uncompressed size of a line in bits.
const LineBits = WordsPerLine * 64

// Pattern prefixes for the FPC-style codec (3 bits each).
const (
	pZero     = 0 // all-zero word
	pSign8    = 1 // sign-extended 8-bit value
	pSign16   = 2 // sign-extended 16-bit value
	pSign32   = 3 // sign-extended 32-bit value
	pRepByte  = 4 // one byte repeated eight times
	pHighPrev = 5 // high 32 bits equal previous word's high 32 bits
	pRaw      = 6 // uncompressed 64-bit word
	pHi24Prev = 7 // high 24 bits equal previous word's (smooth FP fields)
)

const prefixBits = 3

// bitWriter accumulates a bitstream MSB-first.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) write(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[len(w.buf)-1] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
}

// bitReader consumes a bitstream MSB-first.
type bitReader struct {
	buf []byte
	pos int
}

var errShortStream = errors.New("compress: truncated bitstream")

func (r *bitReader) read(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.pos / 8
		if byteIdx >= len(r.buf) {
			return 0, errShortStream
		}
		v <<= 1
		if r.buf[byteIdx]&(1<<uint(7-r.pos%8)) != 0 {
			v |= 1
		}
		r.pos++
	}
	return v, nil
}

func fitsSigned(v uint64, bits uint) bool {
	s := int64(v)
	lim := int64(1) << (bits - 1)
	return s >= -lim && s < lim
}

func isRepByte(v uint64) bool {
	b := v & 0xff
	rep := b * 0x0101010101010101
	return v == rep
}

// classify picks the cheapest pattern for word v given the previous word.
func classify(v, prev uint64) (pattern int, payloadBits int) {
	switch {
	case v == 0:
		return pZero, 0
	case fitsSigned(v, 8):
		return pSign8, 8
	case fitsSigned(v, 16):
		return pSign16, 16
	case isRepByte(v):
		return pRepByte, 8
	case fitsSigned(v, 32):
		return pSign32, 32
	case v>>32 == prev>>32:
		return pHighPrev, 32
	case v>>40 == prev>>40:
		return pHi24Prev, 40
	default:
		return pRaw, 64
	}
}

// EncodedBits returns the compressed size in bits of one line without
// materializing the bitstream (fast path for ratio estimation).
func EncodedBits(line [WordsPerLine]uint64) int {
	bits := 0
	prev := uint64(0)
	for _, v := range line {
		_, pb := classify(v, prev)
		bits += prefixBits + pb
		prev = v
	}
	return bits
}

// Encode compresses one line into a bitstream.
func Encode(line [WordsPerLine]uint64) []byte {
	var w bitWriter
	prev := uint64(0)
	for _, v := range line {
		p, pb := classify(v, prev)
		w.write(uint64(p), prefixBits)
		switch p {
		case pZero:
		case pRepByte:
			w.write(v&0xff, 8)
		case pHighPrev:
			w.write(v&0xffffffff, 32)
		case pHi24Prev:
			w.write(v&0xffffffffff, 40)
		default:
			w.write(v&((1<<uint(pb))-1), pb)
		}
		prev = v
	}
	return w.buf
}

// Decode reverses Encode.
func Decode(buf []byte) ([WordsPerLine]uint64, error) {
	var line [WordsPerLine]uint64
	r := bitReader{buf: buf}
	prev := uint64(0)
	for i := 0; i < WordsPerLine; i++ {
		p, err := r.read(prefixBits)
		if err != nil {
			return line, err
		}
		var v uint64
		switch p {
		case pZero:
			v = 0
		case pSign8, pSign16, pSign32:
			n := map[uint64]uint{pSign8: 8, pSign16: 16, pSign32: 32}[p]
			raw, err := r.read(int(n))
			if err != nil {
				return line, err
			}
			// Sign-extend.
			if raw&(1<<(n-1)) != 0 {
				raw |= ^uint64(0) << n
			}
			v = raw
		case pRepByte:
			b, err := r.read(8)
			if err != nil {
				return line, err
			}
			v = b * 0x0101010101010101
		case pHighPrev:
			lo, err := r.read(32)
			if err != nil {
				return line, err
			}
			v = (prev &^ 0xffffffff) | lo
		case pHi24Prev:
			lo, err := r.read(40)
			if err != nil {
				return line, err
			}
			v = (prev &^ 0xffffffffff) | lo
		case pRaw:
			raw, err := r.read(64)
			if err != nil {
				return line, err
			}
			v = raw
		default:
			return line, fmt.Errorf("compress: bad pattern %d", p)
		}
		line[i] = v
		prev = v
	}
	return line, nil
}

// BDIBits estimates the base-delta-immediate compressed size in bits: the
// line is stored as one 64-bit base plus seven deltas of the smallest width
// (8/16/32/64 bits) that fits all of them, plus a 4-bit header.
func BDIBits(line [WordsPerLine]uint64) int {
	base := line[0]
	maxWidth := uint(0)
	for _, v := range line[1:] {
		d := v - base
		switch {
		case fitsSigned(d, 8):
			if maxWidth < 8 {
				maxWidth = 8
			}
		case fitsSigned(d, 16):
			if maxWidth < 16 {
				maxWidth = 16
			}
		case fitsSigned(d, 32):
			if maxWidth < 32 {
				maxWidth = 32
			}
		default:
			maxWidth = 64
		}
	}
	if maxWidth == 0 {
		maxWidth = 8 // all words equal the base
	}
	return 4 + 64 + (WordsPerLine-1)*int(maxWidth)
}

// LineRatio returns the best (largest) compression ratio achievable for a
// line across the implemented schemes, never below 1 (hardware falls back to
// storing the raw line).
func LineRatio(line [WordsPerLine]uint64) float64 {
	bits := EncodedBits(line)
	if b := BDIBits(line); b < bits {
		bits = b
	}
	if bits >= LineBits {
		return 1
	}
	return float64(LineBits) / float64(bits)
}

// TraceRatio chunks a value stream into lines and returns the mean traffic
// compression ratio (total raw bits / total compressed bits).
func TraceRatio(values []uint64) float64 {
	if len(values) < WordsPerLine {
		return 1
	}
	var raw, comp float64
	var line [WordsPerLine]uint64
	for i := 0; i+WordsPerLine <= len(values); i += WordsPerLine {
		copy(line[:], values[i:i+WordsPerLine])
		bits := EncodedBits(line)
		if b := BDIBits(line); b < bits {
			bits = b
		}
		if bits > LineBits {
			bits = LineBits
		}
		raw += LineBits
		comp += float64(bits)
	}
	if comp == 0 {
		return 1
	}
	return raw / comp
}
