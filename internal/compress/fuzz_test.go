package compress

// Native Go fuzz target for the FPC/BDI codec: any byte stream, chunked into
// 64-bit words, must round-trip exactly through Encode/Decode, and every
// size estimate must respect its bounds. The seed corpus comes from the
// synthetic workload-generator traces so the fuzzer starts from the value
// distributions the power model actually compresses.

import (
	"encoding/binary"
	"math"
	"testing"

	"ena/internal/workload"
)

// lineFromBytes packs the first 64 bytes of data (zero-padded) into a line.
func lineFromBytes(data []byte) [WordsPerLine]uint64 {
	var buf [WordsPerLine * 8]byte
	copy(buf[:], data)
	var line [WordsPerLine]uint64
	for i := range line {
		line[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return line
}

// maxEncodedBits is the codec's worst case: every word raw.
const maxEncodedBits = WordsPerLine * (prefixBits + 64)

func FuzzLineRoundTrip(f *testing.F) {
	// Seed with real generator traces (one line per WordsPerLine values).
	for _, k := range []workload.Kernel{
		workload.CoMD(), workload.LULESH(), workload.XSBench(), workload.MaxFlops(),
	} {
		tr := k.Trace(1, 4*WordsPerLine)
		for i := 0; i+WordsPerLine <= len(tr); i += WordsPerLine {
			buf := make([]byte, WordsPerLine*8)
			for j := 0; j < WordsPerLine; j++ {
				binary.LittleEndian.PutUint64(buf[j*8:], tr[i+j].Value)
			}
			f.Add(buf)
		}
	}
	f.Add([]byte{})                     // all-zero line
	f.Add(make([]byte, WordsPerLine*8)) // explicit full-width zero line
	f.Add([]byte{0xff, 0x01, 0x80})     // partial line, sign-extension shapes

	f.Fuzz(func(t *testing.T, data []byte) {
		line := lineFromBytes(data)

		enc := Encode(line)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%x)) failed: %v", line, err)
		}
		if dec != line {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", line, dec)
		}

		bits := EncodedBits(line)
		if want := (bits + 7) / 8; len(enc) != want {
			t.Errorf("Encode produced %d bytes, EncodedBits %d implies %d", len(enc), bits, want)
		}
		if bits < WordsPerLine*prefixBits || bits > maxEncodedBits {
			t.Errorf("EncodedBits = %d outside [%d, %d]", bits, WordsPerLine*prefixBits, maxEncodedBits)
		}

		if b := BDIBits(line); b < 4+64+(WordsPerLine-1)*8 || b > 4+64+(WordsPerLine-1)*64 {
			t.Errorf("BDIBits = %d outside its envelope", b)
		}

		// Ratio bounds: hardware falls back to the raw line, so ratios never
		// drop below 1, and a 64-byte line cannot compress below the 24-bit
		// all-zero encoding.
		if r := LineRatio(line); r < 1 || r > float64(LineBits)/float64(WordsPerLine*prefixBits) ||
			math.IsNaN(r) || math.IsInf(r, 0) {
			t.Errorf("LineRatio = %v out of bounds", r)
		}

		// TraceRatio over the words must obey the same floor.
		if r := TraceRatio(line[:]); r < 1 || math.IsNaN(r) || math.IsInf(r, 0) {
			t.Errorf("TraceRatio = %v out of bounds", r)
		}
	})
}

func FuzzDecodeNeverPanics(f *testing.F) {
	// Arbitrary bitstreams: Decode must either fail cleanly or produce a
	// line that re-encodes to the same prefix semantics — never panic.
	f.Add([]byte{})
	f.Add([]byte{0x00})
	line := lineFromBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(Encode(line))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return // truncated/garbage streams are expected to fail
		}
		// A successful decode must round-trip through the canonical encoder.
		back, err := Decode(Encode(dec))
		if err != nil || back != dec {
			t.Fatalf("re-encode of decoded line broke: %v (%x vs %x)", err, dec, back)
		}
	})
}
