package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ena/internal/workload"
)

func TestRoundTripPatterns(t *testing.T) {
	cases := [][WordsPerLine]uint64{
		{},                       // all zero
		{1, 2, 3, 4, 5, 6, 7, 8}, // small positives
		{^uint64(0), 0, 42, 1 << 40, 0x0101010101010101, 7, 9, 11}, // mixed
		{0xdeadbeefdeadbeef, 0xdeadbeef00000001, 0xdeadbeef00000002, 1, 2, 3, 4, 5},
	}
	for i, line := range cases {
		buf := Encode(line)
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got != line {
			t.Fatalf("case %d: roundtrip mismatch:\n got %x\nwant %x", i, got, line)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var line [WordsPerLine]uint64
		for i := range line {
			switch rng.Intn(5) {
			case 0:
				line[i] = 0
			case 1:
				line[i] = uint64(int64(rng.Intn(256) - 128))
			case 2:
				line[i] = uint64(rng.Intn(1 << 16))
			case 3:
				b := uint64(rng.Intn(256))
				line[i] = b * 0x0101010101010101
			default:
				line[i] = rng.Uint64()
			}
		}
		got, err := Decode(Encode(line))
		return err == nil && got == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodedBitsMatchesEncode(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		line := [WordsPerLine]uint64{a, b, c, d, a ^ b, c ^ d, a + c, b + d}
		bits := EncodedBits(line)
		buf := Encode(line)
		// The byte stream rounds up to whole bytes.
		return len(buf) == (bits+7)/8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	line := [WordsPerLine]uint64{1, 2, 3, 4, 5, 6, 7, 8}
	buf := Encode(line)
	if _, err := Decode(buf[:1]); err == nil {
		t.Error("truncated stream must fail")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty stream must fail")
	}
}

func TestZeroLineCompressesHard(t *testing.T) {
	var zero [WordsPerLine]uint64
	if bits := EncodedBits(zero); bits != WordsPerLine*3 {
		t.Errorf("all-zero line = %d bits, want %d", bits, WordsPerLine*3)
	}
	if r := LineRatio(zero); r < 10 {
		t.Errorf("zero-line ratio = %v", r)
	}
}

func TestRandomLineIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var line [WordsPerLine]uint64
	for i := range line {
		line[i] = rng.Uint64()
	}
	if r := LineRatio(line); r > 1.1 {
		t.Errorf("random line ratio = %v, want ~1", r)
	}
}

func TestSmoothDoublesCompressWell(t *testing.T) {
	var line [WordsPerLine]uint64
	for i := range line {
		line[i] = math.Float64bits(1.5 + 1e-7*float64(i))
	}
	if r := LineRatio(line); r < 1.3 {
		t.Errorf("smooth FP line ratio = %v, want > 1.3", r)
	}
}

func TestBDIArithmeticSequence(t *testing.T) {
	var line [WordsPerLine]uint64
	for i := range line {
		line[i] = 1_000_000 + uint64(i)*8
	}
	bits := BDIBits(line)
	want := 4 + 64 + 7*8
	if bits != want {
		t.Errorf("BDI bits = %d, want %d", bits, want)
	}
	if fpc := EncodedBits(line); bits >= fpc {
		t.Logf("note: FPC beat BDI here (%d vs %d) — LineRatio takes the min", fpc, bits)
	}
}

func TestLineRatioNeverBelowOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var line [WordsPerLine]uint64
		for i := range line {
			line[i] = rng.Uint64()
		}
		return LineRatio(line) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceRatioShort(t *testing.T) {
	if r := TraceRatio([]uint64{1, 2, 3}); r != 1 {
		t.Errorf("short trace ratio = %v", r)
	}
}

func TestKernelCompressibilityOrdering(t *testing.T) {
	// The real compressor over the synthetic value streams must agree
	// with the qualitative ordering used by the power model: XSBench
	// (random table) compresses worst; simulation-field kernels compress
	// well.
	ratio := func(name string) float64 {
		k, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := k.Trace(13, 8192)
		vals := make([]uint64, len(tr))
		for i, a := range tr {
			vals[i] = a.Value
		}
		return TraceRatio(vals)
	}
	xs := ratio("XSBench")
	if xs > 1.35 {
		t.Errorf("XSBench measured ratio %v should be near 1", xs)
	}
	for _, name := range []string{"CoMD", "LULESH", "HPGMG", "SNAP"} {
		r := ratio(name)
		if r <= xs+0.05 {
			t.Errorf("%s ratio %v should clearly exceed XSBench's %v", name, r, xs)
		}
		if r < 1.1 {
			t.Errorf("%s: smooth field data should compress, ratio %v", name, r)
		}
	}
}
