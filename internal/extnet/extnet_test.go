package extnet

import (
	"math"
	"testing"

	"ena/internal/arch"
)

func build(t *testing.T, cross bool) *Network {
	t.Helper()
	n, err := Build(arch.BestMeanEHP(), cross)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildShape(t *testing.T) {
	n := build(t, false)
	// 8 chains x 4 modules = 32 chain links, no cross-links.
	if n.Links() != 32 {
		t.Errorf("links = %d", n.Links())
	}
	if n.TotalCapacityGB() != 1024 {
		t.Errorf("capacity = %v", n.TotalCapacityGB())
	}
	x := build(t, true)
	if x.Links() != 32+8 {
		t.Errorf("cross-linked network links = %d", x.Links())
	}
}

func TestBuildErrors(t *testing.T) {
	cfg := arch.BestMeanEHP()
	cfg.Ext = nil
	if _, err := Build(cfg, false); err != ErrShape {
		t.Errorf("expected ErrShape, got %v", err)
	}
	cfg = arch.BestMeanEHP()
	cfg.Ext[2].Modules = cfg.Ext[2].Modules[:2]
	if _, err := Build(cfg, false); err != ErrShape {
		t.Errorf("non-uniform chains should be rejected, got %v", err)
	}
}

func TestHealthyNetwork(t *testing.T) {
	for _, cross := range []bool{false, true} {
		n := build(t, cross)
		if got := n.ReachableCapacityGB(); got != n.TotalCapacityGB() {
			t.Errorf("cross=%v: healthy reachability %v", cross, got)
		}
		// Healthy bottleneck: each chain's first hop carries its whole
		// chain => aggregate = 8 x 100 GB/s.
		if got := n.DeliverableGBps(); math.Abs(got-800) > 1e-6 {
			t.Errorf("cross=%v: deliverable = %v, want 800", cross, got)
		}
	}
}

func TestChainFailureLosesTail(t *testing.T) {
	n := build(t, false)
	// Failing the second hop of chain 0 strands modules 1..3 (96 GB).
	if err := n.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := n.ReachableCapacityGB(); got != 1024-3*32 {
		t.Errorf("reachable = %v, want %v", got, 1024-3*32)
	}
}

func TestCrossLinksRestoreReachability(t *testing.T) {
	n := build(t, true)
	if err := n.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	// The stranded tail re-attaches through the cross-link ring.
	if got := n.ReachableCapacityGB(); got != 1024 {
		t.Errorf("reachable with cross-links = %v, want full 1024", got)
	}
	// But the detour congests the neighbour chain: bandwidth degrades.
	if got := n.DeliverableGBps(); got >= 800 {
		t.Errorf("degraded bandwidth = %v, should be below healthy 800", got)
	}
}

func TestRootLinkFailure(t *testing.T) {
	// Losing an EHP-to-chain link strands the whole chain without
	// redundancy; with cross-links everything stays reachable.
	plain := build(t, false)
	if err := plain.FailLink(3, 0); err != nil {
		t.Fatal(err)
	}
	if got := plain.ReachableCapacityGB(); got != 1024-128 {
		t.Errorf("reachable = %v, want %v", got, 1024-128)
	}
	x := build(t, true)
	if err := x.FailLink(3, 0); err != nil {
		t.Fatal(err)
	}
	if got := x.ReachableCapacityGB(); got != 1024 {
		t.Errorf("cross-linked reachable = %v", got)
	}
}

func TestSurveySingleFailures(t *testing.T) {
	plain := build(t, false).SurveySingleFailures()
	x := build(t, true).SurveySingleFailures()
	if plain.Scenarios != 32 || x.Scenarios != 32 {
		t.Fatalf("scenarios = %d / %d", plain.Scenarios, x.Scenarios)
	}
	if plain.AlwaysReachable {
		t.Error("chains without redundancy must lose capacity on some failure")
	}
	if !x.AlwaysReachable {
		t.Error("cross-links must keep every module reachable under any single failure")
	}
	if x.MeanCapacityGB <= plain.MeanCapacityGB {
		t.Error("redundancy should improve mean surviving capacity")
	}
	// The redundancy is not free: worst-case bandwidth still degrades.
	if x.WorstBandwidthGB >= 800 {
		t.Errorf("worst-case bandwidth with cross-links = %v", x.WorstBandwidthGB)
	}
	// But it should beat the plain network's worst case (a whole chain
	// becoming unreachable removes its demand, so compare capacity-
	// weighted usefulness instead: plain loses memory, redundant loses
	// only speed).
	if plain.WorstCapacityGB >= x.WorstCapacityGB {
		t.Error("worst-case capacity should favor the redundant network")
	}
}

func TestFailLinkBounds(t *testing.T) {
	n := build(t, false)
	if err := n.FailLink(9, 0); err == nil {
		t.Error("out-of-range chain accepted")
	}
	if err := n.FailLink(0, 9); err == nil {
		t.Error("out-of-range hop accepted")
	}
}

func TestHeal(t *testing.T) {
	n := build(t, false)
	if err := n.FailLink(0, 0); err != nil {
		t.Fatal(err)
	}
	n.Heal()
	if n.ReachableCapacityGB() != n.TotalCapacityGB() {
		t.Error("Heal did not restore the network")
	}
}

func TestHybridNetworkSupported(t *testing.T) {
	// The hybrid DRAM+NVM network has 3-module chains; the survey must
	// handle it.
	n, err := Build(arch.WithHybridExternal(arch.BestMeanEHP()), true)
	if err != nil {
		t.Fatal(err)
	}
	rep := n.SurveySingleFailures()
	if rep.Scenarios != 24 {
		t.Errorf("scenarios = %d", rep.Scenarios)
	}
	if !rep.AlwaysReachable {
		t.Error("cross-linked hybrid should survive single failures")
	}
}
