// Package extnet models the external-memory network's topology explicitly
// (paper §II-B2): point-to-point SerDes chains of memory modules per
// interface, with the paper's "optional links (not shown) ... used to
// cross-connect chains for redundancy purposes, which allow access to
// memory devices in the event of link failures." It computes reachability
// and deliverable bandwidth under link failures, quantifying what those
// optional cross-links buy.
package extnet

import (
	"errors"
	"math"

	"ena/internal/arch"
)

// node ids: 0 is the EHP root; modules are numbered row-major by (chain,
// hop).
type link struct {
	a, b   int
	gbps   float64
	failed bool
	cross  bool
}

// Network is the external-memory graph.
type Network struct {
	chains  int
	perCh   int
	caps    []float64 // per-module capacity, GB
	links   []link
	adj     [][]int // node -> link indices
	hasX    bool
	rootBW  float64
	nodeCnt int
}

// ErrShape reports an unsupported configuration.
var ErrShape = errors.New("extnet: need uniform, non-empty chains")

// Build constructs the network from a node configuration. When crossLinks
// is set, the last module of each chain connects to the last module of the
// next chain (a redundancy ring over the chain tails).
func Build(cfg *arch.NodeConfig, crossLinks bool) (*Network, error) {
	nCh := len(cfg.Ext)
	if nCh == 0 || len(cfg.Ext[0].Modules) == 0 {
		return nil, ErrShape
	}
	per := len(cfg.Ext[0].Modules)
	for _, c := range cfg.Ext {
		if len(c.Modules) != per {
			return nil, ErrShape
		}
	}
	n := &Network{
		chains:  nCh,
		perCh:   per,
		hasX:    crossLinks,
		rootBW:  cfg.Ext[0].LinkGBps,
		nodeCnt: 1 + nCh*per,
	}
	moduleID := func(ch, hop int) int { return 1 + ch*per + hop }
	addLink := func(a, b int, gbps float64, cross bool) {
		n.links = append(n.links, link{a: a, b: b, gbps: gbps, cross: cross})
	}
	for ci, c := range cfg.Ext {
		for hi, m := range c.Modules {
			n.caps = append(n.caps, m.CapacityGB)
			prev := 0 // root
			if hi > 0 {
				prev = moduleID(ci, hi-1)
			}
			addLink(prev, moduleID(ci, hi), c.LinkGBps, false)
		}
	}
	if crossLinks && nCh > 1 {
		for ci := 0; ci < nCh; ci++ {
			next := (ci + 1) % nCh
			if nCh == 2 && ci == 1 {
				break // avoid a duplicate pair in the 2-chain ring
			}
			addLink(moduleID(ci, per-1), moduleID(next, per-1), cfg.Ext[ci].LinkGBps, true)
		}
	}
	n.adj = make([][]int, n.nodeCnt)
	for li, l := range n.links {
		n.adj[l.a] = append(n.adj[l.a], li)
		n.adj[l.b] = append(n.adj[l.b], li)
	}
	return n, nil
}

// Links returns the number of links (chain hops plus cross-links).
func (n *Network) Links() int { return len(n.links) }

// CrossLinks reports whether redundancy links are present.
func (n *Network) CrossLinks() bool { return n.hasX }

// FailLink marks the hop'th link of a chain failed (0 = the EHP-to-first-
// module hop).
func (n *Network) FailLink(chain, hop int) error {
	if chain < 0 || chain >= n.chains || hop < 0 || hop >= n.perCh {
		return errors.New("extnet: no such link")
	}
	n.links[chain*n.perCh+hop].failed = true
	return nil
}

// Heal clears all failures.
func (n *Network) Heal() {
	for i := range n.links {
		n.links[i].failed = false
	}
}

// paths runs BFS from the root over live links, returning each node's
// parent link index (-1 if unreachable, -2 for the root).
func (n *Network) paths() []int {
	parent := make([]int, n.nodeCnt)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = -2
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, li := range n.adj[v] {
			l := n.links[li]
			if l.failed {
				continue
			}
			w := l.a
			if w == v {
				w = l.b
			}
			if parent[w] == -1 {
				parent[w] = li
				queue = append(queue, w)
			}
		}
	}
	return parent
}

// ReachableCapacityGB returns the memory capacity still addressable.
func (n *Network) ReachableCapacityGB() float64 {
	parent := n.paths()
	var sum float64
	for m := 0; m < len(n.caps); m++ {
		if parent[1+m] >= 0 {
			sum += n.caps[m]
		}
	}
	return sum
}

// TotalCapacityGB returns the network's full capacity.
func (n *Network) TotalCapacityGB() float64 {
	var sum float64
	for _, c := range n.caps {
		sum += c
	}
	return sum
}

// DeliverableGBps computes the aggregate bandwidth the EHP can pull when
// every reachable module is accessed in proportion to its capacity: each
// module's traffic follows its BFS path; the scale is set by the most
// utilized link (the bottleneck).
func (n *Network) DeliverableGBps() float64 {
	parent := n.paths()
	load := make([]float64, len(n.links))
	var totalW float64
	for m := 0; m < len(n.caps); m++ {
		node := 1 + m
		if parent[node] < 0 {
			continue
		}
		w := n.caps[m]
		totalW += w
		// Walk the path back to the root, accumulating load.
		v := node
		for v != 0 {
			li := parent[v]
			load[li] += w
			l := n.links[li]
			if l.a == v {
				v = l.b
			} else {
				v = l.a
			}
		}
	}
	if totalW == 0 {
		return 0
	}
	scale := math.Inf(1)
	for li, w := range load {
		if w == 0 {
			continue
		}
		if s := n.links[li].gbps / w; s < scale {
			scale = s
		}
	}
	if math.IsInf(scale, 1) {
		return 0
	}
	return scale * totalW
}

// SingleFailureReport summarizes the effect of every possible single-link
// failure (the §II-B2 redundancy argument quantified).
type SingleFailureReport struct {
	Scenarios        int
	WorstCapacityGB  float64 // minimum reachable capacity across scenarios
	MeanCapacityGB   float64
	WorstBandwidthGB float64 // minimum deliverable GB/s across scenarios
	MeanBandwidthGB  float64
	AlwaysReachable  bool // every module reachable in every scenario
}

// SurveySingleFailures evaluates all single chain-link failures.
func (n *Network) SurveySingleFailures() SingleFailureReport {
	n.Heal()
	rep := SingleFailureReport{
		WorstCapacityGB:  math.Inf(1),
		WorstBandwidthGB: math.Inf(1),
		AlwaysReachable:  true,
	}
	total := n.TotalCapacityGB()
	for ch := 0; ch < n.chains; ch++ {
		for hop := 0; hop < n.perCh; hop++ {
			n.Heal()
			if err := n.FailLink(ch, hop); err != nil {
				// Unreachable by construction of the loop bounds.
				panic(err)
			}
			rep.Scenarios++
			cap := n.ReachableCapacityGB()
			bw := n.DeliverableGBps()
			rep.MeanCapacityGB += cap
			rep.MeanBandwidthGB += bw
			if cap < rep.WorstCapacityGB {
				rep.WorstCapacityGB = cap
			}
			if bw < rep.WorstBandwidthGB {
				rep.WorstBandwidthGB = bw
			}
			if cap < total {
				rep.AlwaysReachable = false
			}
		}
	}
	n.Heal()
	if rep.Scenarios > 0 {
		rep.MeanCapacityGB /= float64(rep.Scenarios)
		rep.MeanBandwidthGB /= float64(rep.Scenarios)
	}
	return rep
}
