package noc

import (
	"context"
	"testing"

	"ena/internal/arch"
	"ena/internal/workload"
)

func TestComputeRoutesHealthyDirect(t *testing.T) {
	r, err := computeRoutes(PointToPoint, []LinkFault{{A: 1, B: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Unaffected pairs keep the single direct hop.
	if got := r[0][5]; len(got) != 1 || got[0] != 5 {
		t.Errorf("route 0->5 = %v, want direct [5]", got)
	}
	// The failed pair detours through exactly one intermediate position.
	if got := r[1][4]; len(got) != 2 || got[len(got)-1] != 4 {
		t.Errorf("route 1->4 = %v, want a two-hop detour ending at 4", got)
	}
}

func TestComputeRoutesChainDetour(t *testing.T) {
	// Chain topology with link 2-3 down splits the row; there is no
	// alternative wiring, so the network is partitioned.
	if _, err := computeRoutes(Chain, []LinkFault{{A: 2, B: 3}}); err != ErrPartitioned {
		t.Errorf("err = %v, want ErrPartitioned", err)
	}
	// Point-to-point survives the same fault via any non-adjacent link.
	if _, err := computeRoutes(PointToPoint, []LinkFault{{A: 2, B: 3}}); err != nil {
		t.Errorf("point-to-point should reroute: %v", err)
	}
}

func TestComputeRoutesInvalidFault(t *testing.T) {
	if _, err := computeRoutes(PointToPoint, []LinkFault{{A: 0, B: 6}}); err == nil {
		t.Error("out-of-range position must error")
	}
	if _, err := computeRoutes(PointToPoint, []LinkFault{{A: 3, B: 3}}); err == nil {
		t.Error("self-link must error")
	}
}

func TestComputeRoutesFullPartition(t *testing.T) {
	// Cut every link touching position 0.
	var cut []LinkFault
	for i := 1; i < nocPositions; i++ {
		cut = append(cut, LinkFault{A: 0, B: i})
	}
	if _, err := computeRoutes(PointToPoint, cut); err != ErrPartitioned {
		t.Errorf("err = %v, want ErrPartitioned", err)
	}
}

func TestSimulateWithDownLinksDegradesLatency(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.CoMD()
	healthy := Simulate(cfg, k, Options{Seed: 7, Requests: 20_000})
	degraded, err := SimulateContext(context.Background(), cfg, k, Options{
		Seed: 7, Requests: 20_000,
		DownLinks: []LinkFault{{A: 0, B: 5}, {A: 0, B: 4}, {A: 1, B: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.MeanLatencyNs <= healthy.MeanLatencyNs {
		t.Errorf("down links should raise loaded latency: degraded %.2f ns vs healthy %.2f ns",
			degraded.MeanLatencyNs, healthy.MeanLatencyNs)
	}
	if degraded.SustainedGBps <= 0 {
		t.Error("degraded run must still make progress")
	}
}

func TestSimulateWithDownLinksDeterministic(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.LULESH()
	opt := Options{Seed: 3, Requests: 10_000, DownLinks: []LinkFault{{A: 1, B: 4}}}
	a, err := SimulateContext(context.Background(), cfg, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateContext(context.Background(), cfg, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("seeded degraded runs must be bit-identical:\n%+v\n%+v", a, b)
	}
}

func TestSimulatePartitionedReturnsError(t *testing.T) {
	cfg := arch.BestMeanEHP()
	var cut []LinkFault
	for i := 1; i < nocPositions; i++ {
		cut = append(cut, LinkFault{A: 0, B: i})
	}
	_, err := SimulateContext(context.Background(), cfg, workload.CoMD(), Options{Seed: 1, DownLinks: cut})
	if err != ErrPartitioned {
		t.Errorf("err = %v, want ErrPartitioned", err)
	}
}
