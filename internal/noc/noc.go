// Package noc models the EHP's chiplet/interposer interconnect (paper §II-A2,
// §II-A3, §V-A): GPU and CPU chiplets stacked on active interposers, with
// remote accesses paying two TSV hops plus interposer-link traversal. A
// closed-loop, event-driven simulation with per-kernel memory-level
// parallelism measures the sustainable memory throughput and loaded latency
// of the chiplet organization versus a hypothetical monolithic EHP — the
// Fig. 7 experiment.
package noc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ena/internal/arch"
	"ena/internal/event"
	"ena/internal/obs"
	"ena/internal/perf"
	"ena/internal/units"
	"ena/internal/workload"
)

// Physical-layer parameters of the interposer network. Interposers connect
// with wide, short-distance, point-to-point paths (§II-A): every interposer
// pair has a direct link, so a remote access crosses exactly one link but
// pays distance-proportional wire latency.
const (
	// TSVHopNs is one vertical chiplet<->interposer crossing including
	// the narrow-interface serialization.
	TSVHopNs = 4.0
	// RouterHopNs is one interposer router traversal (ingress + egress).
	RouterHopNs = 4.0
	// WireNsPerPosition is the wire latency per interposer position of
	// horizontal distance.
	WireNsPerPosition = 2.0
	// LinkGBps is the bandwidth of one point-to-point interposer link per
	// direction.
	LinkGBps = 512.0
	// EgressGBps is a chiplet's TSV egress bandwidth to its interposer.
	EgressGBps = 768.0
	// CrossbarNs is the single-hop latency of the monolithic baseline.
	CrossbarNs = 4.0
	// CPUTrafficFrac adds CPU-to-GPU-memory coherence/command traffic on
	// top of the GPU streams; it always crosses chiplets.
	CPUTrafficFrac = 0.05
)

// interposerOf maps GPU chiplet index (0..7) to its interposer position in
// the EHP floorplan row: [G G | C C | G G] with two GPU chiplets per GPU
// interposer (Fig. 2): interposers 0,1 on the left, 2,3 CPU in the center,
// 4,5 on the right.
func interposerOf(chiplet int) int {
	switch chiplet / 2 {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return 4
	default:
		return 5
	}
}

// cpuInterposers are the central interposer positions.
var cpuInterposers = []int{2, 3}

// hops returns the number of interposer-to-interposer links between two
// interposer positions (a linear chain of six positions).
func hops(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Result summarizes one traffic simulation.
type Result struct {
	Requests        int
	OutOfChiplet    float64 // fraction of requests leaving their source chiplet
	SustainedGBps   float64 // closed-loop memory throughput
	MeanLatencyNs   float64
	MeanHops        float64
	LinkUtilization float64
}

type server struct {
	freeAt float64
	busyNs float64
}

func (s *server) serve(t, ns float64) float64 {
	start := t
	if s.freeAt > start {
		start = s.freeAt
	}
	s.freeAt = start + ns
	s.busyNs += ns
	return s.freeAt
}

// LinkFault identifies a failed interposer-to-interposer link by its two
// endpoint positions (0..5 in the floorplan row; order is irrelevant). The
// fault-injection engine (internal/faults) produces these; traffic that would
// have used a failed link reroutes hop-by-hop over the surviving links.
type LinkFault struct {
	A, B int
}

// ErrPartitioned reports that the injected link faults disconnect at least
// one interposer pair: no routing can serve cross-chiplet traffic, so the
// degraded configuration has no meaningful steady state.
var ErrPartitioned = errors.New("noc: link faults partition the interposer network")

// Topology selects the interposer-to-interposer wiring.
type Topology int

const (
	// PointToPoint is the EHP's design: a direct wide link between every
	// interposer pair (§II-A: "wide, short-distance, point-to-point
	// paths").
	PointToPoint Topology = iota
	// Chain wires only adjacent interposers, forcing multi-hop routing —
	// the cheaper alternative the ablation compares against.
	Chain
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	if t == Chain {
		return "chain"
	}
	return "point-to-point"
}

// Options configures a simulation run.
type Options struct {
	// Tokens is the number of concurrent request tokens (defaults to the
	// node's total outstanding capacity CUs x MLP, capped for runtime).
	Tokens int
	// Requests is the total number of requests to complete (default 200k).
	Requests int
	// Seed drives the random source/destination draws.
	Seed int64
	// Topology selects the interposer wiring (default PointToPoint).
	Topology Topology
	// DownLinks lists failed interposer links. Requests reroute over the
	// cheapest surviving path (minimizing router + wire latency); if the
	// faults disconnect the network, SimulateContext returns
	// ErrPartitioned.
	DownLinks []LinkFault
	// Reg and Tracer attach observability sinks. When both are nil the
	// process-default scope (obs.Default) is consulted, so CLI-level
	// -metrics/-trace flags reach simulations buried inside experiments.
	Reg    *obs.Registry
	Tracer *obs.Tracer
	// TraceSampleEvery emits one trace event per N completed requests
	// (default 256) to keep trace files manageable; 1 records everything.
	TraceSampleEvery int
}

// Simulate runs the closed-loop chiplet-network simulation for a kernel on a
// configuration. The kernel's CacheLocality decides how often a request is
// satisfied by chiplet-local cache/DRAM; remote requests target a uniformly
// random HBM stack, reflecting capacity-interleaved addressing (§V-A
// Finding 1 observes a fairly even distribution across chiplets).
func Simulate(cfg *arch.NodeConfig, k workload.Kernel, opt Options) Result {
	r, _ := SimulateContext(context.Background(), cfg, k, opt)
	return r
}

// SimulateContext is Simulate with cooperative cancellation: the event-driven
// drain checks ctx between event batches and aborts promptly when it is
// cancelled, returning ctx.Err() and a zero Result (a partially drained
// closed-loop simulation has no meaningful steady-state statistics).
func SimulateContext(ctx context.Context, cfg *arch.NodeConfig, k workload.Kernel, opt Options) (Result, error) {
	nChiplets := len(cfg.GPU)
	if opt.Requests == 0 {
		opt.Requests = 200_000
	}
	if opt.Tokens == 0 {
		opt.Tokens = cfg.TotalCUs() * int(k.MLPPerCU)
		if opt.Tokens > 8192 {
			opt.Tokens = 8192
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))

	reg, tracer := opt.Reg, opt.Tracer
	if reg == nil && tracer == nil {
		sc := obs.Default()
		reg, tracer = sc.Reg, sc.Tr
	}
	sampleEvery := opt.TraceSampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 256
	}
	latHist := reg.Histogram("noc.latency_ns", nil)
	wallStart := time.Now()

	// Scale per-resource bandwidth so the reduced token population still
	// exercises the same tokens-per-bandwidth ratio as the real machine.
	realTokens := float64(cfg.TotalCUs()) * k.MLPPerCU
	scale := float64(opt.Tokens) / realTokens
	if scale > 1 {
		scale = 1
	}

	// Resources.
	egress := make([]*server, nChiplets)
	hbm := make([]*server, nChiplets)
	hbmSvc := make([]float64, nChiplets)
	for i := range egress {
		egress[i] = &server{}
		hbm[i] = &server{}
		perStack := cfg.HBM[i].BandwidthGBps * scale
		hbmSvc[i] = float64(units.CacheLineBytes) / (perStack * units.GB) * 1e9
	}
	egressSvc := float64(units.CacheLineBytes) / (EgressGBps * scale * units.GB) * 1e9
	// Direct point-to-point links between every ordered pair of the six
	// interposer positions, indexed [src][dst] so aggregation walks them in
	// a fixed order (a map here made the float busy-time sum, and therefore
	// LinkUtilization, depend on iteration order).
	const positions = 6
	linkSvc := float64(units.CacheLineBytes) / (LinkGBps * scale * units.GB) * 1e9
	var links [positions][positions]*server
	for i := 0; i < positions; i++ {
		for j := 0; j < positions; j++ {
			if i != j {
				links[i][j] = &server{}
			}
		}
	}

	// Link faults force detours: precompute the surviving-path position
	// sequences once. routes stays nil in the healthy case so the common
	// path below is untouched.
	var routes *[positions][positions][]int
	if len(opt.DownLinks) > 0 {
		r, err := computeRoutes(opt.Topology, opt.DownLinks)
		if err != nil {
			return Result{}, err
		}
		routes = r
	}

	sim := event.AcquireSim()
	defer event.ReleaseSim(sim)
	sim.Instrument(reg, "noc.sim")
	var (
		done, outOf int
		sumLat      float64
		sumHops     float64
		lastDone    float64
	)

	// path computes the completion time of a request issued at t from
	// srcPos to the HBM stack on chiplet dst, its hop count (interposer
	// distance), and — when link faults forced a detour — the traversed
	// position sequence (nil on the healthy direct/chain paths).
	path := func(t float64, srcPos, dst int) (float64, int, []int) {
		dstPos := interposerOf(dst)
		if cfg.Monolithic {
			// Single die: one crossbar hop, then DRAM.
			tt := t + CrossbarNs
			return hbm[dst].serve(tt, hbmSvc[dst]) + perf.HBMLatencyNs, 0, nil
		}
		tt := t + TSVHopNs // descend into the source interposer
		h := hops(srcPos, dstPos)
		var seq []int
		switch {
		case h == 0:
			// Same interposer: no link traversal.
		case routes != nil:
			// Degraded network: follow the precomputed surviving path,
			// paying each hop's router + distance-proportional wire
			// latency and queuing on each traversed link.
			seq = routes[srcPos][dstPos]
			pos := srcPos
			for _, next := range seq {
				wire := RouterHopNs + WireNsPerPosition*float64(hops(pos, next))
				tt = links[pos][next].serve(tt+wire, linkSvc)
				pos = next
			}
		case opt.Topology == Chain:
			// Hop through every adjacent interposer; each hop pays a
			// router traversal and queues on its own link.
			pos := srcPos
			for pos != dstPos {
				next := pos + 1
				if dstPos < pos {
					next = pos - 1
				}
				wire := RouterHopNs + WireNsPerPosition
				tt = links[pos][next].serve(tt+wire, linkSvc)
				pos = next
			}
		default:
			wire := RouterHopNs + WireNsPerPosition*float64(h)
			tt = links[srcPos][dstPos].serve(tt+wire, linkSvc)
		}
		tt += TSVHopNs // ascend into the destination chiplet/stack
		return hbm[dst].serve(tt, hbmSvc[dst]) + perf.HBMLatencyNs, h, seq
	}

	// Each token is a self-perpetuating request chain with at most one
	// outstanding request, so its in-flight state lives in one struct and
	// one completion closure allocated up front. Steady-state
	// issue→complete→issue scheduling then touches no allocator — the
	// per-request completion closure previously built here dominated the
	// simulation's allocation profile. The rng draw order and event
	// scheduling sequence are unchanged, so results are bit-identical to
	// the per-request-closure formulation.
	type token struct {
		t0     float64
		srcPos int
		dst    int
		h      int
		remote bool
		seq    []int
		fire   event.Handler
	}

	issue := func(tok *token) {
		t0 := sim.Now()
		fromCPU := rng.Float64() < CPUTrafficFrac
		var srcChiplet int
		var srcPos int
		if fromCPU {
			srcPos = cpuInterposers[rng.Intn(len(cpuInterposers))]
			srcChiplet = -1
		} else {
			srcChiplet = rng.Intn(nChiplets)
			srcPos = interposerOf(srcChiplet)
		}
		dst := srcChiplet
		local := !fromCPU && rng.Float64() < k.CacheLocality
		if !local {
			dst = rng.Intn(nChiplets)
		}
		remote := fromCPU || dst != srcChiplet
		var t1 float64
		var h int
		var seq []int
		if !remote && !cfg.Monolithic {
			// Chiplet-local access: straight down to the local slice.
			t1 = hbm[dst].serve(egress[dst].serve(t0, egressSvc), hbmSvc[dst]) + perf.HBMLatencyNs
		} else if !cfg.Monolithic {
			t1, h, seq = path(egress[max0(srcChiplet)].serve(t0, egressSvc), srcPos, dst)
		} else {
			t1, h, seq = path(t0, srcPos, dst)
		}
		// Return trip: fixed per-hop latency (response rides dedicated
		// response wires; their bandwidth is charged on the forward
		// path servers already, which carry the 64 B line).
		if !cfg.Monolithic && remote {
			t1 += 2 * TSVHopNs
			switch {
			case h == 0:
			case seq != nil:
				pos := srcPos
				for _, next := range seq {
					t1 += RouterHopNs + WireNsPerPosition*float64(hops(pos, next))
					pos = next
				}
			case opt.Topology == Chain:
				t1 += float64(h) * (RouterHopNs + WireNsPerPosition)
			default:
				t1 += RouterHopNs + WireNsPerPosition*float64(h)
			}
		}
		tok.t0, tok.srcPos, tok.dst = t0, srcPos, dst
		tok.h, tok.remote, tok.seq = h, remote, seq
		sim.After(t1-t0, tok.fire)
	}

	nTokens := min(opt.Tokens, opt.Requests)
	toks := make([]token, nTokens)
	for i := range toks {
		tok := &toks[i]
		tok.fire = func() {
			done++
			lat := sim.Now() - tok.t0
			sumLat += lat
			sumHops += float64(tok.h)
			if tok.remote {
				outOf++
			}
			latHist.Observe(lat)
			if tracer != nil && done%sampleEvery == 0 {
				// Simulated-time span: ts/dur in "microseconds" carry
				// simulated nanoseconds /1000 on the NoC pid.
				tracer.Complete("noc.request", "noc", tok.t0/1000, lat/1000,
					obs.PIDNoC, tok.srcPos, map[string]any{
						"hops": tok.h, "remote": tok.remote, "dst": tok.dst,
					})
			}
			if sim.Now() > lastDone {
				lastDone = sim.Now()
			}
			if done+sim.Pending() < opt.Requests {
				issue(tok)
			}
		}
		issue(tok)
	}
	if _, err := sim.RunContext(ctx, 0); err != nil {
		return Result{}, err
	}

	r := Result{Requests: done}
	if done == 0 {
		return r, nil
	}
	r.OutOfChiplet = float64(outOf) / float64(done)
	r.MeanLatencyNs = sumLat / float64(done)
	r.MeanHops = sumHops / float64(done)
	if lastDone > 0 {
		// Scale the simulated throughput back to machine size.
		bytes := float64(done) * units.CacheLineBytes
		r.SustainedGBps = bytes / (lastDone * 1e-9) / units.GB / scale
	}
	var busy float64
	nLinks := 0
	for i := 0; i < positions; i++ {
		for j := 0; j < positions; j++ {
			if links[i][j] != nil {
				busy += links[i][j].busyNs
				nLinks++
			}
		}
	}
	if lastDone > 0 && nLinks > 0 {
		r.LinkUtilization = busy / (lastDone * float64(nLinks))
	}

	if reg != nil {
		reg.Counter("noc.requests").Add(int64(done))
		reg.Counter("noc.remote_requests").Add(int64(outOf))
		reg.Gauge("noc.sustained_gbps").Set(r.SustainedGBps)
		reg.Gauge("noc.mean_latency_ns").Set(r.MeanLatencyNs)
		// Link-topology gauges only apply to chiplet runs: a monolithic
		// baseline never exercises the links and must not overwrite the
		// chiplet values with zeros.
		if !cfg.Monolithic {
			reg.Gauge("noc.mean_hops").Set(r.MeanHops)
			reg.Gauge("noc.link_utilization").Set(r.LinkUtilization)
		}
		if lastDone > 0 {
			for i := 0; i < positions; i++ {
				for j := 0; j < positions; j++ {
					if l := links[i][j]; l != nil && l.busyNs > 0 {
						reg.Gauge(fmt.Sprintf("noc.link.%d-%d.busy_frac", i, j)).
							Set(l.busyNs / lastDone)
					}
				}
			}
		}
		if wall := time.Since(wallStart).Seconds(); wall > 0 {
			reg.Gauge("noc.sim.events_per_sec").Set(float64(sim.Processed()) / wall)
		}
	}
	return r, nil
}

// nocPositions is the interposer-position count of the EHP floorplan row.
const nocPositions = 6

// computeRoutes derives, for every interposer pair, the cheapest surviving
// path (sum of per-hop router + distance-proportional wire latency) given the
// failed links. Edges follow the topology: every non-failed pair for
// PointToPoint, adjacent non-failed pairs for Chain. Neighbor order is fixed,
// and only strict improvements relax a node, so the routes — and therefore
// degraded-mode simulations — are deterministic. Returns ErrPartitioned when
// any pair is unreachable.
func computeRoutes(topo Topology, down []LinkFault) (*[nocPositions][nocPositions][]int, error) {
	var dead [nocPositions][nocPositions]bool
	for _, lf := range down {
		if lf.A < 0 || lf.A >= nocPositions || lf.B < 0 || lf.B >= nocPositions || lf.A == lf.B {
			return nil, fmt.Errorf("noc: invalid link fault %d-%d (positions are 0..%d)", lf.A, lf.B, nocPositions-1)
		}
		dead[lf.A][lf.B] = true
		dead[lf.B][lf.A] = true
	}
	edge := func(a, b int) bool {
		if a == b || dead[a][b] {
			return false
		}
		if topo == Chain {
			return hops(a, b) == 1
		}
		return true
	}
	var routes [nocPositions][nocPositions][]int
	for src := 0; src < nocPositions; src++ {
		// Dijkstra from src over at most six nodes.
		const inf = 1e18
		var dist [nocPositions]float64
		var prev [nocPositions]int
		var done [nocPositions]bool
		for i := range dist {
			dist[i] = inf
			prev[i] = -1
		}
		dist[src] = 0
		for {
			u := -1
			for i := 0; i < nocPositions; i++ {
				if !done[i] && dist[i] < inf && (u < 0 || dist[i] < dist[u]) {
					u = i
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			for v := 0; v < nocPositions; v++ {
				if !edge(u, v) {
					continue
				}
				d := dist[u] + RouterHopNs + WireNsPerPosition*float64(hops(u, v))
				if d < dist[v] {
					dist[v] = d
					prev[v] = u
				}
			}
		}
		for dst := 0; dst < nocPositions; dst++ {
			if dst == src {
				continue
			}
			if dist[dst] >= inf {
				return nil, ErrPartitioned
			}
			var seq []int
			for at := dst; at != src; at = prev[at] {
				seq = append(seq, at)
			}
			for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
				seq[i], seq[j] = seq[j], seq[i]
			}
			routes[src][dst] = seq
		}
	}
	return &routes, nil
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// Comparison holds the Fig. 7 quantities for one kernel.
type Comparison struct {
	Kernel         string
	OutOfChiplet   float64 // fraction of traffic leaving the source chiplet
	PerfVsMonolith float64 // chiplet-EHP performance / monolithic-EHP performance
	ChipletLatNs   float64
	MonoLatNs      float64
}

// Compare runs the chiplet and monolithic simulations for a kernel and
// derives the performance ratio by feeding each organization's measured
// loaded latency and sustainable bandwidth into the roofline model.
func Compare(cfg *arch.NodeConfig, k workload.Kernel, seed int64) Comparison {
	c, _ := CompareContext(context.Background(), cfg, k, seed)
	return c
}

// CompareContext is Compare with cooperative cancellation threaded through
// both underlying event-driven simulations.
func CompareContext(ctx context.Context, cfg *arch.NodeConfig, k workload.Kernel, seed int64) (Comparison, error) {
	chipletRes, err := SimulateContext(ctx, cfg, k, Options{Seed: seed})
	if err != nil {
		return Comparison{}, err
	}
	mono := arch.Monolithic(cfg)
	monoRes, err := SimulateContext(ctx, mono, k, Options{Seed: seed})
	if err != nil {
		return Comparison{}, err
	}

	envC := envFrom(cfg, chipletRes)
	envM := envFrom(mono, monoRes)
	pc := perf.Estimate(cfg, k, envC)
	pm := perf.Estimate(mono, k, envM)

	c := Comparison{
		Kernel:       k.Name,
		OutOfChiplet: chipletRes.OutOfChiplet,
		ChipletLatNs: chipletRes.MeanLatencyNs,
		MonoLatNs:    monoRes.MeanLatencyNs,
	}
	if pm.TFLOPs > 0 {
		c.PerfVsMonolith = pc.TFLOPs / pm.TFLOPs
		if c.PerfVsMonolith > 1 {
			c.PerfVsMonolith = 1
		}
	}
	return c, nil
}

// envFrom converts a simulation result into the analytic model's memory
// environment: measured loaded latency, and bandwidth capped by what the
// network sustained.
func envFrom(cfg *arch.NodeConfig, r Result) perf.MemEnv {
	bw := cfg.InPackageBWTBps()
	if s := r.SustainedGBps / 1000; s > 0 && s < bw {
		bw = s
	}
	eff := 0.0
	if bw > 0 {
		eff = float64(cfg.TotalCUs()) * cfg.GPUFreqMHz() * 1e6 / (bw * 1e12)
	}
	return perf.MemEnv{BWTBps: bw, LatencyNs: r.MeanLatencyNs, EffOpsPerByte: eff}
}
