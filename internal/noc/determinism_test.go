package noc

// The closed-loop NoC simulation must be a pure function of (config, kernel,
// options): repeat runs, different GOMAXPROCS settings, and attached
// instrumentation may not change a single result bit. This locked in a real
// fix — per-link queues used to live in a map whose iteration order
// randomized the float summation behind LinkUtilization.

import (
	"runtime"
	"testing"

	"ena/internal/arch"
	"ena/internal/memsys"
	"ena/internal/obs"
	"ena/internal/workload"
)

func TestSimulateRepeatable(t *testing.T) {
	cfg := arch.BestMeanEHP()
	for _, k := range []workload.Kernel{workload.CoMD(), workload.XSBench()} {
		opt := Options{Seed: 7, Requests: 20_000}
		a := Simulate(cfg, k, opt)
		b := Simulate(cfg, k, opt)
		if a != b {
			t.Errorf("%s: repeat run differs:\n a=%+v\n b=%+v", k.Name, a, b)
		}
	}
}

func TestSimulateBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.SNAP()
	opt := Options{Seed: 3, Requests: 20_000, Topology: Chain}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	runtime.GOMAXPROCS(1)
	a := Simulate(cfg, k, opt)
	runtime.GOMAXPROCS(8)
	b := Simulate(cfg, k, opt)
	if a != b {
		t.Errorf("GOMAXPROCS changed the simulation:\n 1: %+v\n 8: %+v", a, b)
	}
}

func TestSimulateInstrumentationDoesNotChangeResults(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.MiniAMR()
	plain := Simulate(cfg, k, Options{Seed: 11, Requests: 20_000})
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	observed := Simulate(cfg, k, Options{Seed: 11, Requests: 20_000, Reg: reg, Tracer: tr})
	if plain != observed {
		t.Errorf("instrumentation changed the result:\n plain=%+v\n obs=%+v", plain, observed)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["noc.requests"]; got != int64(observed.Requests) {
		t.Errorf("noc.requests = %d, want %d", got, observed.Requests)
	}
	if snap.Counters["noc.sim.events"] == 0 {
		t.Error("event kernel not instrumented")
	}
	if snap.Histograms["noc.latency_ns"].Count != uint64(observed.Requests) {
		t.Error("latency histogram incomplete")
	}
	if tr.Len() == 0 {
		t.Error("no trace events sampled")
	}
}

func TestMemsysSimulateTraceRepeatable(t *testing.T) {
	cfg := arch.BestMeanEHP()
	trc := workload.SNAP().Trace(1, 20_000)
	opt := memsys.SimOptions{MissFrac: 0.3}
	a := memsys.SimulateTrace(cfg, trc, opt)
	b := memsys.SimulateTrace(cfg, trc, opt)
	if a != b {
		t.Errorf("repeat run differs:\n a=%+v\n b=%+v", a, b)
	}
	reg := obs.NewRegistry()
	opt.Reg = reg
	c := memsys.SimulateTrace(cfg, trc, opt)
	if a != c {
		t.Errorf("instrumentation changed the result:\n plain=%+v\n obs=%+v", a, c)
	}
	if got := reg.Snapshot().Counters["memsys.requests"]; got != int64(len(trc)) {
		t.Errorf("memsys.requests = %d, want %d", got, len(trc))
	}
}
