package noc

import (
	"context"
	"math"
	"testing"
	"time"

	"ena/internal/arch"
	"ena/internal/workload"
)

func TestInterposerMapping(t *testing.T) {
	// Chiplets 0-3 on the left interposers, 4-7 on the right, CPUs in the
	// middle (Fig. 2).
	want := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 4, 5: 4, 6: 5, 7: 5}
	for ch, pos := range want {
		if got := interposerOf(ch); got != pos {
			t.Errorf("interposerOf(%d) = %d, want %d", ch, got, pos)
		}
	}
	for _, p := range cpuInterposers {
		if p != 2 && p != 3 {
			t.Errorf("CPU interposer at %d, want center", p)
		}
	}
}

func TestHops(t *testing.T) {
	if hops(0, 5) != 5 || hops(5, 0) != 5 || hops(3, 3) != 0 {
		t.Error("hops arithmetic wrong")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.CoMD()
	a := Simulate(cfg, k, Options{Seed: 1, Requests: 20000})
	b := Simulate(cfg, k, Options{Seed: 1, Requests: 20000})
	if a != b {
		t.Error("same seed must reproduce the same result")
	}
	c := Simulate(cfg, k, Options{Seed: 2, Requests: 20000})
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestSimulateBasics(t *testing.T) {
	cfg := arch.BestMeanEHP()
	for _, k := range workload.Suite() {
		r := Simulate(cfg, k, Options{Seed: 3, Requests: 30000})
		if r.Requests != 30000 {
			t.Errorf("%s: completed %d", k.Name, r.Requests)
		}
		if r.OutOfChiplet < 0 || r.OutOfChiplet > 1 {
			t.Errorf("%s: out-of-chiplet = %v", k.Name, r.OutOfChiplet)
		}
		if r.MeanLatencyNs <= 0 || r.SustainedGBps <= 0 {
			t.Errorf("%s: degenerate result %+v", k.Name, r)
		}
		// Out-of-chiplet fraction tracks (1 - locality) * 7/8 plus CPU
		// traffic.
		want := (1-k.CacheLocality)*7/8*(1-CPUTrafficFrac) + CPUTrafficFrac
		if math.Abs(r.OutOfChiplet-want) > 0.05 {
			t.Errorf("%s: out-of-chiplet %v, expected ~%v", k.Name, r.OutOfChiplet, want)
		}
	}
}

func TestMonolithicFasterOrEqual(t *testing.T) {
	cfg := arch.BestMeanEHP()
	for _, name := range []string{"XSBench", "CoMD", "SNAP"} {
		k, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ch := Simulate(cfg, k, Options{Seed: 7, Requests: 40000})
		mo := Simulate(arch.Monolithic(cfg), k, Options{Seed: 7, Requests: 40000})
		if mo.MeanLatencyNs > ch.MeanLatencyNs*1.02 {
			t.Errorf("%s: monolithic latency %v exceeds chiplet %v",
				name, mo.MeanLatencyNs, ch.MeanLatencyNs)
		}
	}
}

func TestCompareFig7Shape(t *testing.T) {
	cfg := arch.BestMeanEHP()
	results := map[string]Comparison{}
	for _, name := range []string{"XSBench", "SNAP", "CoMD"} {
		k, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		results[name] = Compare(cfg, k, 42)
	}
	for name, c := range results {
		// Fig. 7: out-of-chiplet traffic dominates (paper: 60-95%).
		if c.OutOfChiplet < 0.5 || c.OutOfChiplet > 0.97 {
			t.Errorf("%s: out-of-chiplet = %v", name, c.OutOfChiplet)
		}
		// Largest perf impact in the paper is 13%; allow a little slack.
		if c.PerfVsMonolith < 0.82 || c.PerfVsMonolith > 1.0 {
			t.Errorf("%s: perf vs monolithic = %v", name, c.PerfVsMonolith)
		}
	}
	// SNAP's abundant parallelism hides the chiplet latency (negligible
	// impact); XSBench, latency-bound, suffers the most.
	if results["SNAP"].PerfVsMonolith < 0.97 {
		t.Errorf("SNAP impact should be negligible: %v", results["SNAP"].PerfVsMonolith)
	}
	if results["XSBench"].PerfVsMonolith >= results["SNAP"].PerfVsMonolith {
		t.Error("XSBench should suffer more than SNAP")
	}
	// XSBench generates the most out-of-chiplet traffic of the three.
	if results["XSBench"].OutOfChiplet <= results["CoMD"].OutOfChiplet {
		t.Error("XSBench (random) should exceed CoMD (clustered) in remote traffic")
	}
}

func TestTokenScalingConsistency(t *testing.T) {
	// Halving the simulated token population (with proportionally scaled
	// resources) should preserve the out-of-chiplet fraction and keep
	// latency in the same regime.
	cfg := arch.BestMeanEHP()
	k := workload.SNAP()
	big := Simulate(cfg, k, Options{Seed: 5, Requests: 30000, Tokens: 4096})
	small := Simulate(cfg, k, Options{Seed: 5, Requests: 30000, Tokens: 2048})
	if math.Abs(big.OutOfChiplet-small.OutOfChiplet) > 0.03 {
		t.Errorf("out-of-chiplet changed with token scale: %v vs %v",
			big.OutOfChiplet, small.OutOfChiplet)
	}
	if small.MeanLatencyNs > big.MeanLatencyNs*1.5 || big.MeanLatencyNs > small.MeanLatencyNs*1.5 {
		t.Errorf("latency regime shifted: %v vs %v", big.MeanLatencyNs, small.MeanLatencyNs)
	}
}

func TestTopologyString(t *testing.T) {
	if PointToPoint.String() != "point-to-point" || Chain.String() != "chain" {
		t.Error("topology strings wrong")
	}
}

func TestChainTopologyWorse(t *testing.T) {
	// The chain funnels cross-package traffic through its middle links:
	// under heavy traffic it must sustain less bandwidth at higher
	// latency than the EHP's point-to-point wiring (the §II-A rationale).
	cfg := arch.BestMeanEHP()
	k := workload.SNAP()
	p2p := Simulate(cfg, k, Options{Seed: 9, Requests: 60000})
	chain := Simulate(cfg, k, Options{Seed: 9, Requests: 60000, Topology: Chain})
	if chain.SustainedGBps >= p2p.SustainedGBps {
		t.Errorf("chain sustained %v >= point-to-point %v", chain.SustainedGBps, p2p.SustainedGBps)
	}
	if chain.MeanLatencyNs <= p2p.MeanLatencyNs {
		t.Errorf("chain latency %v <= point-to-point %v", chain.MeanLatencyNs, p2p.MeanLatencyNs)
	}
	// Out-of-chiplet traffic is a workload property, not a topology one.
	if d := chain.OutOfChiplet - p2p.OutOfChiplet; d > 0.02 || d < -0.02 {
		t.Errorf("topology changed traffic mix: %v", d)
	}
}

func TestChainLowLoadStillWorks(t *testing.T) {
	// Latency-bound, low-traffic kernels survive the chain with only a
	// latency penalty — no throughput collapse.
	cfg := arch.BestMeanEHP()
	k := workload.XSBench()
	chain := Simulate(cfg, k, Options{Seed: 9, Requests: 40000, Topology: Chain})
	p2p := Simulate(cfg, k, Options{Seed: 9, Requests: 40000})
	if chain.SustainedGBps < p2p.SustainedGBps*0.7 {
		t.Errorf("low-load chain collapsed: %v vs %v", chain.SustainedGBps, p2p.SustainedGBps)
	}
}

func TestNoCEnergyConsistentWithPowerModel(t *testing.T) {
	// Cross-validation of the two layers (the paper derives interconnect
	// power from distance-based energy [41]): the remote-traffic fraction
	// the event-driven simulator measures should match the fraction the
	// power model assumes from the kernel characterization.
	cfg := arch.BestMeanEHP()
	for _, name := range []string{"CoMD", "XSBench", "SNAP"} {
		k, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sim := Simulate(cfg, k, Options{Seed: 11, Requests: 40000})
		analytic := (1-k.CacheLocality)*7.0/8.0*(1-CPUTrafficFrac) + CPUTrafficFrac
		if math.Abs(sim.OutOfChiplet-analytic) > 0.04 {
			t.Errorf("%s: simulated remote fraction %.3f vs power-model assumption %.3f",
				name, sim.OutOfChiplet, analytic)
		}
	}
}

func TestMeanHopsReasonable(t *testing.T) {
	// With point-to-point links every remote access crosses at most one
	// link; mean hops must sit between 0 and the diameter.
	cfg := arch.BestMeanEHP()
	r := Simulate(cfg, workload.XSBench(), Options{Seed: 2, Requests: 30000})
	if r.MeanHops < 0.5 || r.MeanHops > 5 {
		t.Errorf("mean hops = %v", r.MeanHops)
	}
	if r.LinkUtilization < 0 || r.LinkUtilization > 1 {
		t.Errorf("link utilization = %v", r.LinkUtilization)
	}
}

func TestSimulateContextCancelled(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k, err := workload.ByName("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := SimulateContext(ctx, cfg, k, Options{Requests: 5_000_000})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled NoC simulation did not return")
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancelled simulation took %v to abort", d)
	}
}

func TestSimulateContextBackgroundMatchesSimulate(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k, err := workload.ByName("SNAP")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Requests: 20_000, Seed: 7}
	want := Simulate(cfg, k, opt)
	got, err := SimulateContext(context.Background(), cfg, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("SimulateContext = %+v, want %+v", got, want)
	}
}
