package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestReportRenderAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dse.points_evaluated").Add(490)
	reg.Gauge("dse.points_per_sec").Set(267.35)
	h := reg.Histogram("noc.latency_ns", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)

	rep := NewReport("dse", reg, 1830*time.Millisecond)
	out := rep.Render()
	for _, want := range []string{
		"metrics report: dse",
		"wall 1.83s",
		"dse.points_evaluated",
		"490",
		"dse.points_per_sec",
		"noc.latency_ns",
		"n=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Rows are name-sorted.
	if strings.Index(out, "dse.points_evaluated") > strings.Index(out, "noc.latency_ns") {
		t.Error("rows not sorted by name")
	}

	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "dse" || back.Metrics.Counters["dse.points_evaluated"] != 490 {
		t.Errorf("JSON round trip = %+v", back)
	}
}

func TestReportEmpty(t *testing.T) {
	rep := NewReport("empty", nil, 0)
	out := rep.Render()
	if !strings.Contains(out, "no metrics recorded") {
		t.Errorf("empty render = %q", out)
	}
}
