package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value (or high-water-mark) metric stored as a float64.
// The zero value is ready to use; all methods are nil-safe no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value (high-water
// mark). Safe under concurrent SetMax calls.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the gauge's current value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into bins with explicit upper bounds
// (the i-th bin counts observations <= Bounds[i]; one implicit overflow bin
// follows). It also tracks count, sum, min and max so reports can show a
// summary without the full distribution. Methods are nil-safe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is overflow
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// DefLatencyBounds is a general-purpose exponential bound set for latency-
// style metrics (nanoseconds): 16 ns up to ~1 ms.
var DefLatencyBounds = []float64{
	16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
	16384, 32768, 65536, 131072, 262144, 524288, 1048576,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]uint64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.mu.Unlock()
}

// HistSnapshot is an immutable copy of a histogram's state.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last bin is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Mean returns the mean of the recorded observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-th quantile (0..1) from
// the binned counts: the bound of the bin where the cumulative count crosses
// q. Observations in the overflow bin report the recorded maximum.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	if h.count == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

func (h *Histogram) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum = 0, 0
	h.min, h.max = math.Inf(1), math.Inf(-1)
}

// Registry is a concurrency-safe, name-keyed collection of metrics. Handles
// returned by Counter/Gauge/Histogram are stable: repeated lookups of the
// same name return the same instance, so hot paths should resolve once and
// reuse. A nil *Registry returns nil handles, whose methods are no-ops.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bin
// upper bounds on first use (later calls ignore bounds; pass nil to reuse).
// A nil or empty bound set falls back to DefLatencyBounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefLatencyBounds
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry, keyed by
// metric name. It is safe to use after the registry keeps changing.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Names returns the union of metric names in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies the current value of every metric. Concurrent writers may
// land before or after the copy per metric; each individual metric is read
// atomically. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for n, c := range r.ctrs {
		ctrs[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for n, c := range ctrs {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON — the wire format of the
// service layer's GET /metrics endpoint and of scraped registry dumps.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as sorted plaintext, one metric per line —
// the format of the service layer's GET /v1/metrics endpoint, greppable
// straight from curl:
//
//	counter service.cache.hits 42
//	gauge service.cache.hit_ratio 0.93
//	hist service.http.latency_ns count=9 mean=1.1e+06 p50=9.8e+05 p99=3.2e+06 max=3.4e+06
func (s Snapshot) WriteText(w io.Writer) error {
	for _, n := range s.Names() {
		if v, ok := s.Counters[n]; ok {
			if _, err := fmt.Fprintf(w, "counter %s %d\n", n, v); err != nil {
				return err
			}
		}
		if v, ok := s.Gauges[n]; ok {
			if _, err := fmt.Fprintf(w, "gauge %s %g\n", n, v); err != nil {
				return err
			}
		}
		if h, ok := s.Histograms[n]; ok {
			if _, err := fmt.Fprintf(w, "hist %s count=%d mean=%g p50=%g p99=%g max=%g\n",
				n, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reset zeroes every metric while keeping the handles valid, so cached
// references in long-lived simulators keep working across runs.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}
