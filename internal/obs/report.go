package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report aggregates one run's metrics into a renderable summary. Build it
// with NewReport once the instrumented work has finished; the snapshot is
// frozen at that point.
type Report struct {
	Name        string   `json:"name"`
	WallSeconds float64  `json:"wall_seconds"`
	Metrics     Snapshot `json:"metrics"`
}

// NewReport snapshots the registry into a named report. wall is the run's
// wall-clock duration (zero is rendered as unknown).
func NewReport(name string, reg *Registry, wall time.Duration) *Report {
	return &Report{Name: name, WallSeconds: wall.Seconds(), Metrics: reg.Snapshot()}
}

// JSON returns the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Render formats the report as aligned, name-sorted text for terminals:
//
//	== metrics report: dse (wall 1.83s) ==
//	counter  dse.points_evaluated          490
//	gauge    dse.points_per_sec         267.35
//	hist     noc.latency_ns      n=200000 mean=412.1 p50<=512 p99<=2048 max=3307.0
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== metrics report: %s", r.Name)
	if r.WallSeconds > 0 {
		fmt.Fprintf(&b, " (wall %.2fs)", r.WallSeconds)
	}
	b.WriteString(" ==\n")

	type row struct{ kind, name, val string }
	var rows []row
	for n, v := range r.Metrics.Counters {
		rows = append(rows, row{"counter", n, fmt.Sprintf("%d", v)})
	}
	for n, v := range r.Metrics.Gauges {
		rows = append(rows, row{"gauge", n, fmt.Sprintf("%.4g", v)})
	}
	for n, h := range r.Metrics.Histograms {
		rows = append(rows, row{"hist", n, fmt.Sprintf(
			"n=%d mean=%.4g p50<=%.4g p99<=%.4g max=%.4g",
			h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max)})
	}
	if len(rows) == 0 {
		b.WriteString("(no metrics recorded)\n")
		return b.String()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	nameW := 0
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-*s  %s\n", r.kind, nameW, r.name, r.val)
	}
	return b.String()
}
