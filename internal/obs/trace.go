package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one Chrome trace_event entry. Field names follow the Trace Event
// Format spec so the JSON loads directly in chrome://tracing and Perfetto.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects trace events in memory and serializes them as Chrome
// trace_event JSON. It is safe for concurrent use, and all methods are
// nil-safe no-ops so instrumented code can hold a nil tracer when tracing is
// off.
//
// Timestamps are explicit microseconds supplied by the caller, which lets
// simulators emit events on the *simulated* clock (NoC hops at simulated
// nanoseconds) and harnesses emit events on the wall clock (experiment
// spans) into separate pids of the same trace.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	t0     time.Time
}

// NewTracer returns an empty tracer; wall-clock spans are measured relative
// to this call.
func NewTracer() *Tracer { return &Tracer{t0: time.Now()} }

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Tracer) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Complete records a complete ("X") event: a span [tsUS, tsUS+durUS) on the
// given pid/tid track.
func (t *Tracer) Complete(name, cat string, tsUS, durUS float64, pid, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Ph: "X", TS: tsUS, Dur: durUS, PID: pid, TID: tid, Args: args})
}

// Instant records an instant ("i") event.
func (t *Tracer) Instant(name, cat string, tsUS float64, pid, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Ph: "i", TS: tsUS, PID: pid, TID: tid, Args: args})
}

// CounterEvent records a counter ("C") sample; values renders as a stacked
// area chart in the trace viewer.
func (t *Tracer) CounterEvent(name string, tsUS float64, pid int, values map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Ph: "C", TS: tsUS, PID: pid, Args: values})
}

// WallUS returns microseconds elapsed since the tracer was created — the
// timestamp to use for wall-clock (as opposed to simulated-time) events.
func (t *Tracer) WallUS() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.t0)) / float64(time.Microsecond)
}

// Span starts a wall-clock span and returns a func that ends it, emitting
// one complete event. Usage: defer tr.Span("fig7", "experiment", 0, 0)().
func (t *Tracer) Span(name, cat string, pid, tid int) func() {
	if t == nil {
		return func() {}
	}
	start := t.WallUS()
	return func() {
		t.Complete(name, cat, start, t.WallUS()-start, pid, tid, nil)
	}
}

// traceFile is the JSON Object Format wrapper of the Trace Event spec.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteJSON serializes the recorded events as a Chrome trace_event JSON
// object ({"traceEvents": [...]}), loadable by chrome://tracing, Perfetto,
// and speedscope.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var evs []Event
	if t != nil {
		t.mu.Lock()
		evs = append([]Event(nil), t.events...)
		t.mu.Unlock()
	}
	if evs == nil {
		evs = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
