package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	const goroutines, per = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("concurrent increments lost: got %d want %d", got, goroutines*per)
	}
}

func TestCounterHandleStable(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("same name must return the same counter")
	}
	if reg.Counter("a") == reg.Counter("b") {
		t.Error("different names must return different counters")
	}
}

func TestGaugeSetAndMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("Set: got %v", g.Value())
	}
	g.SetMax(2) // lower: ignored
	if g.Value() != 3.5 {
		t.Errorf("SetMax lowered the gauge: %v", g.Value())
	}
	g.SetMax(7)
	if g.Value() != 7 {
		t.Errorf("SetMax: got %v", g.Value())
	}
}

func TestGaugeConcurrentSetMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("hwm")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				g.SetMax(float64(w*5000 + i))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8*5000-1 {
		t.Fatalf("high-water mark = %v, want %v", got, 8*5000-1)
	}
}

func TestHistogramBinningAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{10, 100})
	for _, v := range []float64{1, 5, 10, 50, 99.9, 100, 1000} {
		h.Observe(v)
	}
	s := reg.Snapshot().Histograms["lat"]
	// <=10: {1,5,10}; <=100: {50,99.9,100}; overflow: {1000}.
	if s.Counts[0] != 3 || s.Counts[1] != 3 || s.Counts[2] != 1 {
		t.Errorf("counts = %v", s.Counts)
	}
	if s.Count != 7 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if got := s.Mean(); math.Abs(got-(1+5+10+50+99.9+100+1000)/7) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if q := s.Quantile(0.5); q != 100 {
		t.Errorf("p50 bound = %v, want 100", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Errorf("p100 = %v, want max", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != 16000 || s.Sum != 16000 || s.Counts[1] != 16000 {
		t.Fatalf("lost observations: %+v", s)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", nil)
	c.Add(5)
	g.Set(2)
	h.Observe(100)

	s := reg.Snapshot()
	if s.Counters["c"] != 5 || s.Gauges["g"] != 2 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if names := s.Names(); len(names) != 3 || names[0] != "c" || names[1] != "g" || names[2] != "h" {
		t.Errorf("Names = %v", names)
	}

	reg.Reset()
	// Cached handles survive a reset.
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("reset did not zero metrics")
	}
	c.Inc()
	if reg.Snapshot().Counters["c"] != 1 {
		t.Error("handle dead after reset")
	}
	if reg.Snapshot().Histograms["h"].Count != 0 {
		t.Error("histogram not reset")
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil handles must read zero")
	}
	reg.Reset()
	if s := reg.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}

	var sc *Scope
	if sc.Registry() != nil || sc.Tracer() != nil || sc.Enabled() {
		t.Error("nil scope must be disabled")
	}
}

func TestDefaultScope(t *testing.T) {
	orig := Default()
	defer SetDefault(orig)

	if Default() == nil {
		t.Fatal("Default must never be nil")
	}
	reg := NewRegistry()
	SetDefault(&Scope{Reg: reg})
	if Default().Reg != reg {
		t.Error("SetDefault not visible")
	}
	if !Default().Enabled() {
		t.Error("scope with registry must report enabled")
	}
	SetDefault(nil)
	if d := Default(); d == nil || d.Enabled() {
		t.Error("SetDefault(nil) must restore a disabled, non-nil scope")
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.count").Add(3)
	reg.Gauge("b.level").Set(2.5)
	reg.Histogram("c.lat", nil).Observe(100)
	var sb strings.Builder
	if err := reg.Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Counters["a.count"] != 3 || back.Gauges["b.level"] != 2.5 {
		t.Errorf("round-tripped snapshot = %+v", back)
	}
	if back.Histograms["c.lat"].Count != 1 {
		t.Errorf("histogram count = %d, want 1", back.Histograms["c.lat"].Count)
	}
}
