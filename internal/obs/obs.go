// Package obs is the zero-dependency observability layer of the ENA stack:
// a concurrency-safe metrics registry (counters, gauges, histograms with
// snapshot/reset), a structured trace emitter that exports Chrome
// trace_event JSON, and per-run reports that aggregate metrics into a
// human-readable and JSON summary.
//
// Every handle type is nil-safe: methods on a nil *Registry, *Counter,
// *Gauge, *Histogram, *Tracer or *Scope are no-ops (or zero values), so
// instrumented code paths cost a single nil check when observability is
// disabled. The intended pattern is
//
//	reg := opt.Reg                       // explicit per-call registry ...
//	if reg == nil && opt.Tracer == nil { //
//		sc := obs.Default()          // ... or the process default
//		reg, _ = sc.Reg, sc.Tr
//	}
//	requests := reg.Counter("noc.requests") // nil when reg is nil
//	...
//	requests.Add(n) // no-op on nil
//
// Hot loops should resolve handles once up front and aggregate locally when
// possible; the simulators in internal/noc, internal/memsys, internal/dse
// and internal/thermal follow that discipline so the uninstrumented path
// stays within noise of the pre-observability baseline.
package obs

import "sync/atomic"

// Track ("pid") assignments the ENA simulators use when writing one combined
// trace: wall-clock harness spans and each simulated-time emitter get their
// own track so chrome://tracing renders them as separate processes.
const (
	PIDHarness = 0
	PIDNoC     = 1
	PIDMemsys  = 2
	PIDDSE     = 3
	PIDThermal = 4
)

// Scope bundles the two observability sinks an instrumented call site may
// write to. A nil Scope (or nil fields) disables the corresponding sink.
type Scope struct {
	Reg *Registry
	Tr  *Tracer
}

// Registry returns the scope's registry (nil on a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Reg
}

// Tracer returns the scope's tracer (nil on a nil scope).
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tr
}

// Enabled reports whether either sink is live.
func (s *Scope) Enabled() bool { return s != nil && (s.Reg != nil || s.Tr != nil) }

// defaultScope is the process-wide scope picked up by simulators whose
// callers did not pass one explicitly (the CLIs set it from -metrics/-trace
// flags). The zero default is a disabled scope, never nil.
var defaultScope atomic.Pointer[Scope]

func init() { defaultScope.Store(&Scope{}) }

// Default returns the process-default scope. The result is never nil; with
// no SetDefault call it is a disabled scope whose handles are all nil.
func Default() *Scope { return defaultScope.Load() }

// SetDefault installs the process-default scope (nil restores the disabled
// default). Safe for concurrent use, though it is typically called once at
// CLI start-up before any simulation runs.
func SetDefault(s *Scope) {
	if s == nil {
		s = &Scope{}
	}
	defaultScope.Store(s)
}
