package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerWriteJSONIsValidChromeTrace(t *testing.T) {
	tr := NewTracer()
	tr.Complete("noc.request", "noc", 10, 5.5, 1, 2, map[string]any{"hops": 3})
	tr.Instant("kernel.launch", "sim", 20, 1, 0, nil)
	tr.CounterEvent("queue_depth", 30, 1, map[string]any{"pending": 42})
	done := tr.Span("experiment", "exp", 0, 0)
	done()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(f.TraceEvents))
	}
	phases := map[string]bool{}
	for _, e := range f.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Errorf("event %v missing %q", e, field)
			}
		}
		phases[e["ph"].(string)] = true
	}
	for _, ph := range []string{"X", "i", "C"} {
		if !phases[ph] {
			t.Errorf("missing phase %q", ph)
		}
	}
	if e := f.TraceEvents[0]; e["dur"].(float64) != 5.5 || e["args"].(map[string]any)["hops"].(float64) != 3 {
		t.Errorf("complete event mangled: %v", e)
	}
}

func TestTracerEmptyStillValid(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace = %s", buf.String())
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Complete("a", "b", 0, 1, 0, 0, nil)
	tr.Instant("a", "b", 0, 0, 0, nil)
	tr.CounterEvent("a", 0, 0, nil)
	tr.Span("a", "b", 0, 0)()
	if tr.Len() != 0 || tr.WallUS() != 0 {
		t.Error("nil tracer must read zero")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("nil tracer must still write valid JSON")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Complete("e", "c", float64(i), 1, 0, w, nil)
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*500 {
		t.Fatalf("lost events: %d", tr.Len())
	}
}

func TestTracerSpanDuration(t *testing.T) {
	tr := NewTracer()
	done := tr.Span("s", "c", 0, 0)
	time.Sleep(2 * time.Millisecond)
	done()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.TraceEvents[0].Dur < 1000 { // at least 1 ms in microseconds
		t.Errorf("span duration = %v us", f.TraceEvents[0].Dur)
	}
}
