package dram

import (
	"math/rand"
	"testing"

	"ena/internal/units"
	"ena/internal/workload"
)

func mustChannel(t *testing.T, banks int, tempC float64) *Channel {
	t.Helper()
	ch, err := NewChannel(banks, DefaultTiming(), tempC)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(0, DefaultTiming(), 60); err != ErrNoBanks {
		t.Errorf("expected ErrNoBanks, got %v", err)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	ch := mustChannel(t, 16, 60)
	// First access activates; the second to the same row is a hit.
	d1 := ch.Access(0, 0)
	d2 := ch.Access(d1, 1) // same 1 KiB row (line 1)
	missLat := d1 - 0
	hitLat := d2 - d1
	if hitLat >= missLat {
		t.Errorf("row hit %v ns not faster than miss %v ns", hitLat, missLat)
	}
	s := ch.Snapshot()
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	ch := mustChannel(t, 1, 60) // one bank: forced conflicts
	rowLines := uint64(1) << (DefaultTiming().RowBits - 6)
	d1 := ch.Access(0, 0)
	d2 := ch.Access(d1, rowLines) // different row, same bank
	if ch.Snapshot().RowConflict != 1 {
		t.Fatalf("stats = %+v", ch.Snapshot())
	}
	conflictLat := d2 - d1
	ch2 := mustChannel(t, 1, 60)
	e1 := ch2.Access(0, 0)
	e2 := ch2.Access(e1, 1)
	hitLat := e2 - e1
	if conflictLat <= hitLat {
		t.Errorf("conflict %v ns should exceed hit %v ns", conflictLat, hitLat)
	}
}

func TestSequentialNearPeak(t *testing.T) {
	// Unit-stride streams with many banks should deliver most of peak.
	ch := mustChannel(t, 16, 60)
	tr := make([]workload.Access, 20000)
	for i := range tr {
		tr[i] = workload.Access{Addr: uint64(i) * units.CacheLineBytes}
	}
	r := Replay(ch, tr, ch.PeakGBps())
	if eff := r.DeliveredGBps / ch.PeakGBps(); eff < 0.8 {
		t.Errorf("sequential efficiency = %v", eff)
	}
	if r.Stats.RowHitRate() < 0.9 {
		t.Errorf("sequential row-hit rate = %v", r.Stats.RowHitRate())
	}
}

func TestRandomWellBelowPeak(t *testing.T) {
	ch := mustChannel(t, 16, 60)
	rng := rand.New(rand.NewSource(1))
	tr := make([]workload.Access, 20000)
	for i := range tr {
		tr[i] = workload.Access{Addr: uint64(rng.Int63n(1 << 34))}
	}
	r := Replay(ch, tr, ch.PeakGBps())
	eff := r.DeliveredGBps / ch.PeakGBps()
	if eff > 0.75 {
		t.Errorf("random-access efficiency %v suspiciously high", eff)
	}
	if r.Stats.RowHitRate() > 0.1 {
		t.Errorf("random row-hit rate = %v", r.Stats.RowHitRate())
	}
}

func TestMoreBanksMoreParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := make([]workload.Access, 20000)
	for i := range tr {
		tr[i] = workload.Access{Addr: uint64(rng.Int63n(1 << 34))}
	}
	few := mustChannel(t, 2, 60)
	many := mustChannel(t, 32, 60)
	rFew := Replay(few, tr, few.PeakGBps())
	rMany := Replay(many, tr, many.PeakGBps())
	if rMany.DeliveredGBps <= rFew.DeliveredGBps {
		t.Errorf("32 banks (%v GB/s) should beat 2 banks (%v GB/s)",
			rMany.DeliveredGBps, rFew.DeliveredGBps)
	}
}

func TestRefreshCostsBandwidth(t *testing.T) {
	// The §V-D rule quantified: above 85 C the refresh rate doubles and
	// delivered bandwidth drops.
	k := workload.SNAP()
	cool, err := EfficiencyAtTemp(k, 70, 30000)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := EfficiencyAtTemp(k, 90, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if hot >= cool {
		t.Errorf("hot DRAM (%v) should deliver less than cool (%v)", hot, cool)
	}
	drop := (cool - hot) / cool
	if drop < 0.01 || drop > 0.25 {
		t.Errorf("refresh-doubling bandwidth cost = %.1f%%, expected a few percent", drop*100)
	}
}

func TestRefreshCounter(t *testing.T) {
	ch := mustChannel(t, 4, 60)
	tr := make([]workload.Access, 5000)
	for i := range tr {
		tr[i] = workload.Access{Addr: uint64(i) * units.CacheLineBytes}
	}
	Replay(ch, tr, 8) // slow injection -> long horizon -> several refreshes
	if ch.Snapshot().Refreshes == 0 {
		t.Error("no refreshes over a long horizon")
	}
	hotCh := mustChannel(t, 4, 95)
	Replay(hotCh, tr, 8)
	if hotCh.Snapshot().Refreshes <= ch.Snapshot().Refreshes {
		t.Error("hot channel must refresh more often")
	}
}

func TestLatencyMonotoneWithTime(t *testing.T) {
	// Completion times never go backwards.
	ch := mustChannel(t, 8, 60)
	rng := rand.New(rand.NewSource(3))
	prev := 0.0
	for i := 0; i < 5000; i++ {
		done := ch.Access(float64(i)*2, uint64(rng.Int63n(1<<30)))
		if done < prev-1e-9 {
			t.Fatalf("completion went backwards at %d: %v < %v", i, done, prev)
		}
		prev = done
	}
}

func TestPeakBandwidth(t *testing.T) {
	ch := mustChannel(t, 16, 60)
	if got := ch.PeakGBps(); got != 32 {
		t.Errorf("peak = %v GB/s, want 32 (64 B / 2 ns)", got)
	}
}

func TestReplayEmpty(t *testing.T) {
	ch := mustChannel(t, 4, 60)
	if r := Replay(ch, nil, 10); r.DeliveredGBps != 0 {
		t.Error("empty replay should be a no-op")
	}
}
