// Package dram implements a bank-level 3D DRAM timing model for one HBM
// channel: banks with row buffers, activate/precharge/column timings,
// FR-FCFS-style scheduling, and temperature-dependent refresh. It underpins
// two claims the higher-level models take as parameters: the achievable
// fraction of peak channel bandwidth for a given access pattern, and the
// §V-D rule that in-package DRAM "must stay below 85 C to avoid increasing
// the refresh rate" — above the threshold the refresh interval halves and
// measurably eats into delivered bandwidth.
package dram

import (
	"errors"

	"ena/internal/units"
	"ena/internal/workload"
)

// Timing parameters of the projected exascale-generation stack (per
// channel), in nanoseconds. Values follow HBM2-class timings; the interface
// runs wide enough that one column burst moves a 64 B line.
type Timing struct {
	TRCD    float64 // activate -> column command
	TRP     float64 // precharge
	TCL     float64 // column -> first data
	TBurst  float64 // data transfer of one 64 B line
	TRAS    float64 // activate -> precharge minimum
	TRFC    float64 // refresh cycle time
	TREFI   float64 // average refresh interval per bank group (normal temp)
	RowBits uint    // log2(row size in bytes)
}

// DefaultTiming returns the calibrated channel timing: with TBurst 2 ns the
// channel peaks at 32 GB/s, and HBMLatencyNs-class unloaded latencies.
func DefaultTiming() Timing {
	return Timing{
		TRCD:    14,
		TRP:     14,
		TCL:     14,
		TBurst:  2,
		TRAS:    33,
		TRFC:    260,
		TREFI:   3900,
		RowBits: 10, // 1 KiB rows
	}
}

// RefreshTempLimitC mirrors the §V-D threshold: above it JEDEC requires
// double-rate refresh (tREFI halves).
const RefreshTempLimitC = 85.0

// Channel is one HBM channel with its banks.
type Channel struct {
	timing Timing
	banks  []bank
	// now is the channel clock in ns.
	now float64
	// busyUntil serializes the shared data bus.
	busyUntil float64
	// nextRefresh schedules the rolling refresh.
	nextRefresh float64
	refreshNs   float64 // effective tREFI given temperature

	stats Stats
}

type bank struct {
	openRow  int64 // -1 = closed
	readyAt  float64
	activeAt float64 // when the open row was activated (tRAS)
}

// Stats accumulates channel activity.
type Stats struct {
	Requests    int
	RowHits     int
	RowMisses   int
	RowConflict int
	Refreshes   int
	BusyNs      float64
	LastDoneNs  float64
}

// RowHitRate returns the fraction of requests that hit an open row.
func (s Stats) RowHitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Requests)
}

// ErrNoBanks reports a channel built without banks.
var ErrNoBanks = errors.New("dram: channel needs at least one bank")

// NewChannel builds a channel with the given bank count and timing; tempC
// selects the refresh rate regime.
func NewChannel(banks int, t Timing, tempC float64) (*Channel, error) {
	if banks <= 0 {
		return nil, ErrNoBanks
	}
	c := &Channel{timing: t, banks: make([]bank, banks)}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	c.refreshNs = t.TREFI
	if tempC > RefreshTempLimitC {
		c.refreshNs /= 2 // JEDEC double-rate refresh above 85 C
	}
	c.nextRefresh = c.refreshNs
	return c, nil
}

// bankAndRow decomposes a 64 B line address (a 1 KiB row holds 16 lines).
func (c *Channel) bankAndRow(line uint64) (int, int64) {
	row := line >> (c.timing.RowBits - 6)
	b := int(row % uint64(len(c.banks)))
	return b, int64(row / uint64(len(c.banks)))
}

// Access issues one 64 B request arriving at time t (ns) and returns its
// completion time. Requests to an open row pay only column latency; closed
// rows pay activation; conflicting rows pay precharge + activation.
func (c *Channel) Access(t float64, addr uint64) float64 {
	if t > c.now {
		c.now = t
	}
	// Rolling refresh: every effective tREFI, each bank is blocked for an
	// additional tRFC after finishing its in-flight work.
	for c.now >= c.nextRefresh {
		for i := range c.banks {
			start := c.banks[i].readyAt
			if c.nextRefresh > start {
				start = c.nextRefresh
			}
			c.banks[i].readyAt = start + c.timing.TRFC
		}
		c.stats.Refreshes++
		c.nextRefresh += c.refreshNs
	}

	bi, row := c.bankAndRow(addr)
	bk := &c.banks[bi]
	start := c.now
	if bk.readyAt > start {
		start = bk.readyAt
	}

	var cmd float64
	switch {
	case bk.openRow == row:
		c.stats.RowHits++
		cmd = start
	case bk.openRow < 0:
		c.stats.RowMisses++
		cmd = start + c.timing.TRCD
		bk.activeAt = start
	default:
		c.stats.RowConflict++
		// Respect tRAS before precharging the old row.
		pre := start
		if min := bk.activeAt + c.timing.TRAS; min > pre {
			pre = min
		}
		cmd = pre + c.timing.TRP + c.timing.TRCD
		bk.activeAt = pre + c.timing.TRP
	}
	bk.openRow = row

	// Data bus serialization.
	dataStart := cmd + c.timing.TCL
	if c.busyUntil > dataStart {
		dataStart = c.busyUntil
	}
	done := dataStart + c.timing.TBurst
	c.busyUntil = done
	bk.readyAt = cmd + c.timing.TBurst // bank can take the next column

	c.stats.Requests++
	c.stats.BusyNs += c.timing.TBurst
	if done > c.stats.LastDoneNs {
		c.stats.LastDoneNs = done
	}
	return done
}

// Stats returns the accumulated counters.
func (c *Channel) Snapshot() Stats { return c.stats }

// PeakGBps returns the channel's theoretical peak bandwidth.
func (c *Channel) PeakGBps() float64 {
	return units.CacheLineBytes / c.timing.TBurst // B/ns == GB/s
}

// Replay streams a trace through the channel open-loop at the offered rate
// (GB/s) and reports delivered bandwidth and mean latency.
type ReplayResult struct {
	DeliveredGBps float64
	MeanLatencyNs float64
	Stats         Stats
}

// Replay drives the channel with a workload trace.
func Replay(ch *Channel, tr []workload.Access, offeredGBps float64) ReplayResult {
	var res ReplayResult
	if len(tr) == 0 || offeredGBps <= 0 {
		return res
	}
	interArrival := units.CacheLineBytes / offeredGBps // ns between lines
	var sumLat float64
	for i, a := range tr {
		arrive := float64(i) * interArrival
		done := ch.Access(arrive, a.Addr/units.CacheLineBytes)
		sumLat += done - arrive
	}
	s := ch.Snapshot()
	res.Stats = s
	res.MeanLatencyNs = sumLat / float64(len(tr))
	if s.LastDoneNs > 0 {
		bytes := float64(len(tr)) * units.CacheLineBytes
		res.DeliveredGBps = bytes / s.LastDoneNs
	}
	return res
}

// EfficiencyAtTemp measures delivered bandwidth for a kernel's pattern at
// the given DRAM temperature, as a fraction of the channel peak — the
// quantity behind the §V-D refresh-rate warning.
func EfficiencyAtTemp(k workload.Kernel, tempC float64, accesses int) (float64, error) {
	ch, err := NewChannel(16, DefaultTiming(), tempC)
	if err != nil {
		return 0, err
	}
	tr := k.Trace(7, accesses)
	r := Replay(ch, tr, ch.PeakGBps()) // saturating offered load
	return r.DeliveredGBps / ch.PeakGBps(), nil
}
