package stats

// Property-based tests: instead of fixed examples, these check algebraic
// laws (permutation invariance, scaling, translation) over randomized inputs
// and pin the package's explicit edge-case contract for empty and
// non-positive inputs.

import (
	"math"
	"math/rand"
	"testing"
)

const propTrials = 50

func randSlice(rng *rand.Rand, n int, positive bool) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		v := rng.NormFloat64() * 100
		if positive {
			v = math.Abs(v) + 1e-6
		}
		xs[i] = v
	}
	return xs
}

func shuffled(rng *rand.Rand, xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	rng.Shuffle(len(c), func(i, j int) { c[i], c[j] = c[j], c[i] })
	return c
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(m, 1)
}

func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reductions := []struct {
		name string
		fn   func([]float64) float64
	}{
		{"Mean", Mean},
		{"Sum", Sum},
		{"Stddev", Stddev},
		{"GeoMean", GeoMean},
		{"HarmonicMean", HarmonicMean},
	}
	for trial := 0; trial < propTrials; trial++ {
		xs := randSlice(rng, 1+rng.Intn(64), true)
		perm := shuffled(rng, xs)
		for _, r := range reductions {
			a, b := r.fn(xs), r.fn(perm)
			if !relClose(a, b, 1e-9) {
				t.Fatalf("trial %d: %s not permutation-invariant: %v vs %v", trial, r.name, a, b)
			}
		}
		// Order statistics must be exactly invariant.
		amin, _ := Min(xs)
		bmin, _ := Min(perm)
		amax, _ := Max(xs)
		bmax, _ := Max(perm)
		if amin != bmin || amax != bmax {
			t.Fatalf("trial %d: Min/Max not permutation-invariant", trial)
		}
		p := float64(rng.Intn(101))
		ap, _ := Percentile(xs, p)
		bp, _ := Percentile(perm, p)
		if ap != bp {
			t.Fatalf("trial %d: Percentile(%v) not permutation-invariant: %v vs %v", trial, p, ap, bp)
		}
	}
}

func TestScalingLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < propTrials; trial++ {
		xs := randSlice(rng, 1+rng.Intn(64), true)
		c := math.Abs(rng.NormFloat64())*10 + 0.1
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = c * x
		}
		checks := []struct {
			name      string
			got, want float64
		}{
			{"Mean", Mean(scaled), c * Mean(xs)},
			{"Sum", Sum(scaled), c * Sum(xs)},
			{"Stddev", Stddev(scaled), c * Stddev(xs)},
			{"GeoMean", GeoMean(scaled), c * GeoMean(xs)},
			{"HarmonicMean", HarmonicMean(scaled), c * HarmonicMean(xs)},
		}
		for _, ch := range checks {
			if !relClose(ch.got, ch.want, 1e-9) {
				t.Fatalf("trial %d: %s(c*x) = %v, want c*%s(x) = %v", trial, ch.name, ch.got, ch.name, ch.want)
			}
		}
	}
}

func TestTranslationLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < propTrials; trial++ {
		xs := randSlice(rng, 1+rng.Intn(64), false)
		d := rng.NormFloat64() * 50
		moved := make([]float64, len(xs))
		for i, x := range xs {
			moved[i] = x + d
		}
		if !relClose(Mean(moved), Mean(xs)+d, 1e-9) {
			t.Fatalf("trial %d: Mean not translation-equivariant", trial)
		}
		// Spread is translation-invariant (absolute tolerance: cancellation).
		if math.Abs(Stddev(moved)-Stddev(xs)) > 1e-6 {
			t.Fatalf("trial %d: Stddev not translation-invariant: %v vs %v",
				trial, Stddev(moved), Stddev(xs))
		}
	}
}

func TestMeanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < propTrials; trial++ {
		xs := randSlice(rng, 1+rng.Intn(64), true)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		h, g, m := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		// AM-GM-HM chain for positive inputs, and all within [min, max].
		const eps = 1e-9
		if !(h <= g*(1+eps) && g <= m*(1+eps)) {
			t.Fatalf("trial %d: HM <= GM <= AM violated: %v, %v, %v", trial, h, g, m)
		}
		for name, v := range map[string]float64{"HM": h, "GM": g, "AM": m} {
			if v < lo*(1-eps) || v > hi*(1+eps) {
				t.Fatalf("trial %d: %s = %v outside [%v, %v]", trial, name, v, lo, hi)
			}
		}
	}
}

func TestEmptyInputContract(t *testing.T) {
	for name, fn := range map[string]func([]float64) float64{
		"Mean": Mean, "Sum": Sum, "Stddev": Stddev,
		"GeoMean": GeoMean, "HarmonicMean": HarmonicMean,
	} {
		if got := fn(nil); got != 0 {
			t.Errorf("%s(nil) = %v, want 0", name, got)
		}
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
}

func TestNonPositiveInputContract(t *testing.T) {
	// GeoMean mirrors math.Log: zero or negative entries poison the result.
	if got := GeoMean([]float64{1, 0, 4}); !math.IsNaN(got) && got != 0 {
		t.Errorf("GeoMean with zero = %v, want 0 or NaN", got)
	}
	if got := GeoMean([]float64{2, -3}); !math.IsNaN(got) {
		t.Errorf("GeoMean with negative = %v, want NaN", got)
	}
	// HarmonicMean: a zero entry drives the mean itself to zero (1/0 = +Inf).
	if got := HarmonicMean([]float64{1, 0, 4}); got != 0 {
		t.Errorf("HarmonicMean with zero = %v, want 0", got)
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("Percentile(101) must error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("Percentile(-1) must error")
	}
}

func TestPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < propTrials; trial++ {
		xs := randSlice(rng, 2+rng.Intn(64), false)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		p0, _ := Percentile(xs, 0)
		p100, _ := Percentile(xs, 100)
		if p0 != lo || p100 != hi {
			t.Fatalf("trial %d: P0/P100 = %v/%v, want %v/%v", trial, p0, p100, lo, hi)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("trial %d: percentile not monotonic at p=%v", trial, p)
			}
			prev = v
		}
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < propTrials; trial++ {
		h := NewHistogram(-50, 50, 1+rng.Intn(20))
		n := 1 + rng.Intn(500)
		sum := 0.0
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 40 // some fall outside [-50, 50)
			h.Add(v)
			sum += v
		}
		var binned uint64
		for _, c := range h.Bins {
			binned += c
		}
		if total := binned + h.Underflow + h.Overflow; total != h.Count() || h.Count() != uint64(n) {
			t.Fatalf("trial %d: observations lost: bins+under+over=%d count=%d n=%d",
				trial, total, h.Count(), n)
		}
		if !relClose(h.Mean(), sum/float64(n), 1e-9) {
			t.Fatalf("trial %d: histogram mean %v, direct mean %v", trial, h.Mean(), sum/float64(n))
		}
		// CDF is monotone non-decreasing and bounded by [0, 1].
		prev := 0.0
		for x := -60.0; x <= 60; x += 5 {
			c := h.CDFAt(x)
			if c < prev || c < 0 || c > 1 {
				t.Fatalf("trial %d: CDF not monotone in [0,1] at x=%v: %v (prev %v)", trial, x, c, prev)
			}
			prev = c
		}
	}
}
