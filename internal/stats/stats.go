// Package stats provides the small statistical toolkit shared by the ENA
// models and experiment harnesses: summary statistics, histograms, and series
// helpers used when reproducing the paper's figures.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive entries make the result NaN, mirroring math.Log behaviour.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs (all entries must be > 0).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// Min returns the minimum of xs and an error when xs is empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs and an error when xs is empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using linear interpolation
// between closest ranks. It copies the input so callers keep their ordering.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c) == 1 {
		return c[0], nil
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo], nil
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac, nil
}

// IsMonotonicNonDecreasing reports whether xs never decreases beyond tol.
func IsMonotonicNonDecreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1]-tol {
			return false
		}
	}
	return true
}

// ArgMax returns the index of the largest element (-1 for empty input).
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
