package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{7}); math.Abs(got-7) > 1e-12 {
		t.Errorf("GeoMean single = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1}); got != 1 {
		t.Errorf("HarmonicMean = %v", got)
	}
	// Harmonic <= geometric <= arithmetic for positive inputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 5)
		for i := range xs {
			xs[i] = rng.Float64()*10 + 0.1
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return h <= g+1e-9 && g <= a+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if m, err := Min(xs); err != nil || m != -1 {
		t.Errorf("Min = %v, %v", m, err)
	}
	if m, err := Max(xs); err != nil || m != 7 {
		t.Errorf("Max = %v, %v", m, err)
	}
	if s := Sum(xs); s != 9 {
		t.Errorf("Sum = %v", s)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v", err)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Stddev constant = %v", got)
	}
	got := Stddev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Stddev{1,3} = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if p, _ := Percentile(xs, 0); p != 10 {
		t.Errorf("p0 = %v", p)
	}
	if p, _ := Percentile(xs, 100); p != 50 {
		t.Errorf("p100 = %v", p)
	}
	if p, _ := Percentile(xs, 50); p != 30 {
		t.Errorf("p50 = %v", p)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected range error")
	}
	// Percentile does not reorder the caller's slice.
	ys := []float64{3, 1, 2}
	if _, err := Percentile(ys, 50); err != nil {
		t.Fatal(err)
	}
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 9)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsMonotonicNonDecreasing(t *testing.T) {
	if !IsMonotonicNonDecreasing([]float64{1, 2, 2, 3}, 0) {
		t.Error("monotone sequence misclassified")
	}
	if IsMonotonicNonDecreasing([]float64{1, 0.5}, 0.1) {
		t.Error("decreasing sequence misclassified")
	}
	if !IsMonotonicNonDecreasing([]float64{1, 0.95}, 0.1) {
		t.Error("within-tolerance dip should pass")
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("ArgMax = %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d", got)
	}
	// First maximum wins on ties.
	if got := ArgMax([]float64{2, 2}); got != 0 {
		t.Errorf("ArgMax tie = %d", got)
	}
}
