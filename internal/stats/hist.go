package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates observations into fixed-width bins over [Lo, Hi).
// Values outside the range are counted in the under/overflow buckets so no
// observation is ever silently dropped.
type Histogram struct {
	Lo, Hi    float64
	Bins      []uint64
	Underflow uint64
	Overflow  uint64
	count     uint64
	sum       float64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.count++
	h.sum += v
	switch {
	case v < h.Lo:
		h.Underflow++
	case v >= h.Hi:
		h.Overflow++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // float rounding at the upper edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Count returns the number of observations recorded, including out-of-range.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of all recorded observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// CDFAt returns the fraction of in-range observations that fall below x.
func (h *Histogram) CDFAt(x float64) float64 {
	inRange := h.count - h.Underflow - h.Overflow
	if inRange == 0 {
		return 0
	}
	var below uint64
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, c := range h.Bins {
		edge := h.Lo + w*float64(i+1)
		if edge <= x {
			below += c
		}
	}
	return float64(below) / float64(inRange)
}

// String renders a compact single-line summary for logs and test failures.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist[%g,%g) n=%d mean=%.3g", h.Lo, h.Hi, h.count, h.Mean())
	return b.String()
}

// Series is an ordered (x, y) sequence used for figure data.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// SortByX orders the points by ascending x coordinate (stable on equal x).
func (s *Series) SortByX() {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	nx := make([]float64, len(s.X))
	ny := make([]float64, len(s.Y))
	for i, j := range idx {
		nx[i], ny[i] = s.X[j], s.Y[j]
	}
	s.X, s.Y = nx, ny
}

// PeakX returns the x coordinate of the series' maximum y value.
func (s *Series) PeakX() float64 {
	if len(s.X) == 0 {
		return math.NaN()
	}
	return s.X[ArgMax(s.Y)]
}

// MaxY returns the maximum y value (NaN for an empty series).
func (s *Series) MaxY() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	m, _ := Max(s.Y)
	return m
}
