package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, v := range []float64{-1, 0, 5, 9.99, 10, 100} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d", h.Overflow)
	}
	var inRange uint64
	for _, c := range h.Bins {
		inRange += c
	}
	if inRange != 3 {
		t.Errorf("in-range = %d", inRange)
	}
}

// Conservation: every added value lands in exactly one bucket.
func TestHistogramConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-1, 1, 7)
		const n = 200
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64())
		}
		var total uint64 = h.Underflow + h.Overflow
		for _, c := range h.Bins {
			total += c
		}
		return total == n && h.Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		h.Add(rng.Float64() * 100)
	}
	prev := -1.0
	for x := 0.0; x <= 100; x += 5 {
		c := h.CDFAt(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range: %v", c)
		}
		prev = c
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid range and bin count get fixed up
	h.Add(5)
	if h.Count() != 1 {
		t.Error("degenerate histogram should still count")
	}
	if h.String() == "" {
		t.Error("String should describe the histogram")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 99)
	s.SortByX()
	if s.X[0] != 1 || s.X[1] != 2 || s.X[2] != 3 {
		t.Errorf("SortByX order: %v", s.X)
	}
	if s.Y[1] != 99 {
		t.Errorf("SortByX must keep pairs together: %v", s.Y)
	}
	if s.PeakX() != 2 {
		t.Errorf("PeakX = %v", s.PeakX())
	}
	if s.MaxY() != 99 {
		t.Errorf("MaxY = %v", s.MaxY())
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}
