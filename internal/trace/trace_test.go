package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ena/internal/workload"
)

// mk builds a trace from line indices (each index is a distinct 64 B line).
func mk(lines ...uint64) []workload.Access {
	out := make([]workload.Access, len(lines))
	for i, l := range lines {
		out[i] = workload.Access{Addr: l * 64}
	}
	return out
}

func TestStackDistanceExact(t *testing.T) {
	// Classic example: A B C A -> A's reuse distance is 2 (B, C between).
	p := Analyze(mk(0, 1, 2, 0))
	want := []int{-1, -1, -1, 2}
	if len(p.distances) != len(want) {
		t.Fatalf("distances = %v", p.distances)
	}
	for i := range want {
		if p.distances[i] != want[i] {
			t.Fatalf("distances = %v, want %v", p.distances, want)
		}
	}

	// Repeated accesses to the same line have distance 0.
	p = Analyze(mk(5, 5, 5))
	if p.distances[1] != 0 || p.distances[2] != 0 {
		t.Errorf("same-line reuse distance should be 0: %v", p.distances)
	}

	// A B A B: each reuse skips exactly one distinct line.
	p = Analyze(mk(0, 1, 0, 1))
	if p.distances[2] != 1 || p.distances[3] != 1 {
		t.Errorf("interleaved distances = %v", p.distances)
	}
}

func TestStackDistanceDuplicatesNotDoubleCounted(t *testing.T) {
	// A B B A: only ONE distinct line (B) between A's uses.
	p := Analyze(mk(0, 1, 1, 0))
	if p.distances[3] != 1 {
		t.Errorf("distance = %d, want 1 (B counted once)", p.distances[3])
	}
}

func TestFootprintAndCold(t *testing.T) {
	p := Analyze(mk(0, 1, 2, 0, 1, 2))
	if p.DistinctLines != 3 {
		t.Errorf("DistinctLines = %d", p.DistinctLines)
	}
	if p.FootprintB != 3*64 {
		t.Errorf("FootprintB = %v", p.FootprintB)
	}
	if got := p.ColdMissFraction(); got != 0.5 {
		t.Errorf("ColdMissFraction = %v", got)
	}
}

func TestHitFraction(t *testing.T) {
	// A B A B with a 1-line cache: reuse distance 1 >= 1 line, so misses.
	p := Analyze(mk(0, 1, 0, 1))
	if got := p.HitFraction(64); got != 0 {
		t.Errorf("1-line cache hit fraction = %v", got)
	}
	// With a 2-line cache both reuses hit.
	if got := p.HitFraction(128); got != 0.5 {
		t.Errorf("2-line cache hit fraction = %v", got)
	}
}

func TestHitFractionMonotoneInCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lines := make([]uint64, 300)
		for i := range lines {
			lines[i] = uint64(rng.Intn(40))
		}
		p := Analyze(mk(lines...))
		prev := -1.0
		for capLines := 1; capLines <= 64; capLines *= 2 {
			h := p.HitFraction(float64(capLines * 64))
			if h < prev-1e-12 {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMissCurveNonIncreasing(t *testing.T) {
	tr := workload.CoMD().Trace(3, 8000)
	p := Analyze(tr)
	caps := []float64{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26}
	curve := p.MissCurve(caps)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatalf("miss curve increased: %v", curve)
		}
	}
}

func TestWriteFrac(t *testing.T) {
	tr := mk(0, 1, 2, 3)
	tr[1].Write = true
	p := Analyze(tr)
	if p.WriteFrac != 0.25 {
		t.Errorf("WriteFrac = %v", p.WriteFrac)
	}
}

func TestEmptyTrace(t *testing.T) {
	p := Analyze(nil)
	if p.Accesses != 0 || p.HitFraction(1<<20) != 0 || p.ColdMissFraction() != 0 {
		t.Error("empty trace should yield zeros")
	}
	if p.MedianReuseDistance() != -1 {
		t.Error("no reuses -> median distance -1")
	}
}

func TestMedianReuseDistance(t *testing.T) {
	p := Analyze(mk(0, 1, 0, 1))
	if got := p.MedianReuseDistance(); got != 1 {
		t.Errorf("median = %d", got)
	}
}

func TestKernelLocalityOrdering(t *testing.T) {
	// Trace-derived cache behaviour should respect the characterization
	// ordering: XSBench (random over a huge table) must hit far less in a
	// chiplet-sized cache than MaxFlops (tiny resident buffer).
	const cacheBytes = 4 << 20
	hit := func(name string) float64 {
		k, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return Analyze(k.Trace(11, 12000)).HitFraction(cacheBytes)
	}
	mf, xs := hit("MaxFlops"), hit("XSBench")
	if mf <= xs {
		t.Errorf("MaxFlops hit %.3f should exceed XSBench hit %.3f", mf, xs)
	}
	if xs > 0.2 {
		t.Errorf("XSBench should thrash a 4 MiB cache, hit = %.3f", xs)
	}
}
