// Package trace analyzes synthetic memory traces (internal/workload) to
// derive the quantities the high-level models need: reuse-distance profiles
// (and from them cache-hit fractions at arbitrary capacities), footprints,
// and write fractions. This is the stand-in for the performance-counter
// measurement pass of the paper's methodology (§III).
package trace

import (
	"sort"

	"ena/internal/units"
	"ena/internal/workload"
)

// Profile summarizes one trace.
type Profile struct {
	Accesses      int
	DistinctLines int
	FootprintB    float64
	WriteFrac     float64

	// distances holds the LRU stack distance (in distinct 64-byte lines)
	// of every reuse; cold misses are recorded as -1.
	distances []int
}

// fenwick is a binary indexed tree used by the stack-distance algorithm.
type fenwick struct{ t []int }

func newFenwick(n int) *fenwick { return &fenwick{t: make([]int, n+1)} }

func (f *fenwick) add(i, v int) {
	for i++; i < len(f.t); i += i & (-i) {
		f.t[i] += v
	}
}

func (f *fenwick) sum(i int) int { // prefix sum of [0, i]
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.t[i]
	}
	return s
}

// Analyze computes the reuse-distance profile of a trace using the classic
// Fenwick-tree stack-distance algorithm (exact LRU distances in O(n log n)).
func Analyze(tr []workload.Access) *Profile {
	p := &Profile{Accesses: len(tr)}
	if len(tr) == 0 {
		return p
	}
	last := make(map[uint64]int, len(tr)) // line -> index of last access
	ft := newFenwick(len(tr))
	writes := 0
	p.distances = make([]int, 0, len(tr))
	for i, a := range tr {
		if a.Write {
			writes++
		}
		line := a.Addr / units.CacheLineBytes
		if j, ok := last[line]; ok {
			// Distinct lines touched in (j, i): the number of "last
			// access" markers still standing in that window.
			d := ft.sum(i-1) - ft.sum(j)
			p.distances = append(p.distances, d)
			ft.add(j, -1)
		} else {
			p.distances = append(p.distances, -1)
			p.DistinctLines++
		}
		ft.add(i, 1)
		last[line] = i
	}
	p.FootprintB = float64(p.DistinctLines) * units.CacheLineBytes
	p.WriteFrac = float64(writes) / float64(len(tr))
	return p
}

// HitFraction returns the fraction of accesses that hit in a fully
// associative LRU cache of the given capacity (bytes). Cold misses count as
// misses, so the result is conservative for short traces.
func (p *Profile) HitFraction(capacityBytes float64) float64 {
	if p.Accesses == 0 {
		return 0
	}
	capLines := int(capacityBytes / units.CacheLineBytes)
	hits := 0
	for _, d := range p.distances {
		if d >= 0 && d < capLines {
			hits++
		}
	}
	return float64(hits) / float64(p.Accesses)
}

// ColdMissFraction returns the fraction of accesses that are first touches.
func (p *Profile) ColdMissFraction() float64 {
	if p.Accesses == 0 {
		return 0
	}
	cold := 0
	for _, d := range p.distances {
		if d < 0 {
			cold++
		}
	}
	return float64(cold) / float64(p.Accesses)
}

// MissCurve evaluates 1-HitFraction at each capacity (bytes), returning a
// monotonically non-increasing curve usable by the memory-management models.
func (p *Profile) MissCurve(capacities []float64) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = 1 - p.HitFraction(c)
	}
	return out
}

// MedianReuseDistance returns the median finite reuse distance in lines, or
// -1 if the trace has no reuses at all.
func (p *Profile) MedianReuseDistance() int {
	fin := make([]int, 0, len(p.distances))
	for _, d := range p.distances {
		if d >= 0 {
			fin = append(fin, d)
		}
	}
	if len(fin) == 0 {
		return -1
	}
	sort.Ints(fin)
	return fin[len(fin)/2]
}
