package memsys

import (
	"sort"

	"ena/internal/arch"
	"ena/internal/units"
	"ena/internal/workload"
)

// This file implements the software-managed two-level memory mechanism the
// paper's primary mode relies on (§II-B3, [26], [27]): the OS monitors page
// heat over epochs and migrates the hottest pages into in-package DRAM. The
// simulator replays a workload trace through that mechanism and reports the
// achieved external-traffic fraction, validating the analytic MissFrac
// model and quantifying migration traffic.

// MigrationConfig parameterizes the epoch-based migrator.
type MigrationConfig struct {
	// PageBytes is the migration granule (default 2 MiB huge pages, as
	// HMA-style proposals use).
	PageBytes uint64
	// EpochAccesses is the monitoring window length in trace accesses.
	EpochAccesses int
	// MaxMigrationsPerEpoch bounds migration bandwidth per epoch.
	MaxMigrationsPerEpoch int
	// InPackagePages overrides the fast-tier capacity in pages (0 derives
	// it from the node's in-package capacity scaled to the trace's
	// footprint — traces are miniatures of the real problem).
	InPackagePages int
}

// DefaultMigrationConfig returns the standard HMA-style setup.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		PageBytes:             2 << 20,
		EpochAccesses:         4096,
		MaxMigrationsPerEpoch: 64,
	}
}

// MigrationResult summarizes a migration-simulation run.
type MigrationResult struct {
	Accesses        int
	Epochs          int
	ExtAccessFrac   float64 // fraction of accesses served by external memory
	ColdStartFrac   float64 // same, measured over the first epoch only
	SteadyStateFrac float64 // same, over the last quarter of the trace
	Migrations      int
	// MigrationTrafficFrac is migration bytes relative to demand bytes.
	MigrationTrafficFrac float64
	DistinctPages        int
	FastTierPages        int
}

// SimulateMigration replays a kernel trace through the epoch-based hot-page
// migrator on the given node.
func SimulateMigration(cfg *arch.NodeConfig, k workload.Kernel, traceLen int, mc MigrationConfig) MigrationResult {
	if mc.PageBytes == 0 {
		mc = DefaultMigrationConfig()
	}
	tr := k.Trace(1, traceLen)

	// Discover the trace's page population.
	pageOf := func(a workload.Access) uint64 { return a.Addr / mc.PageBytes }
	distinct := map[uint64]bool{}
	for _, a := range tr {
		distinct[pageOf(a)] = true
	}

	// Fast-tier size: scale the node's in-package share of total capacity
	// to the trace's footprint, so the miniature problem exercises the
	// same capacity pressure as the real one.
	fastPages := mc.InPackagePages
	if fastPages == 0 {
		share := cfg.InPackageCapacityGB() / cfg.TotalCapacityGB()
		if k.FootprintGB > 0 && k.FootprintGB < cfg.TotalCapacityGB() {
			// Problems that fit in-package entirely keep share 1.
			if k.FootprintGB <= cfg.InPackageCapacityGB() {
				share = 1
			} else {
				share = cfg.InPackageCapacityGB() / k.FootprintGB
			}
		}
		fastPages = int(share * float64(len(distinct)))
		if fastPages < 1 {
			fastPages = 1
		}
	}

	res := MigrationResult{
		Accesses:      len(tr),
		DistinctPages: len(distinct),
		FastTierPages: fastPages,
	}
	if len(tr) == 0 {
		return res
	}

	inFast := make(map[uint64]bool, fastPages)
	heat := map[uint64]int{}
	extAccesses := 0
	firstEpochExt, firstEpochN := 0, 0
	tailExt, tailN := 0, 0
	tailStart := len(tr) * 3 / 4

	epochEnd := mc.EpochAccesses
	for i, a := range tr {
		p := pageOf(a)
		heat[p]++
		if !inFast[p] {
			extAccesses++
			if i < mc.EpochAccesses {
				firstEpochExt++
			}
			if i >= tailStart {
				tailExt++
			}
		}
		if i < mc.EpochAccesses {
			firstEpochN++
		}
		if i >= tailStart {
			tailN++
		}

		if i+1 == epochEnd || i+1 == len(tr) {
			res.Epochs++
			res.Migrations += rebalance(inFast, heat, fastPages, mc.MaxMigrationsPerEpoch)
			heat = map[uint64]int{}
			epochEnd += mc.EpochAccesses
		}
	}

	res.ExtAccessFrac = float64(extAccesses) / float64(len(tr))
	if firstEpochN > 0 {
		res.ColdStartFrac = float64(firstEpochExt) / float64(firstEpochN)
	}
	if tailN > 0 {
		res.SteadyStateFrac = float64(tailExt) / float64(tailN)
	}
	demandBytes := float64(len(tr)) * units.CacheLineBytes
	res.MigrationTrafficFrac = float64(res.Migrations) * float64(mc.PageBytes) / demandBytes
	return res
}

// rebalance promotes the hottest pages of the finished epoch into the fast
// tier, evicting the coldest residents, bounded by the migration budget. It
// returns the number of page moves (promotions; each implies an eviction
// once the tier is full).
func rebalance(inFast map[uint64]bool, heat map[uint64]int, capPages, budget int) int {
	type ph struct {
		page uint64
		n    int
	}
	hot := make([]ph, 0, len(heat))
	for p, n := range heat {
		hot = append(hot, ph{p, n})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].page < hot[j].page // deterministic ties
	})

	// Residents not seen this epoch are eviction candidates first; then
	// the coldest observed residents.
	coldFirst := make([]ph, 0, len(inFast))
	for p := range inFast {
		coldFirst = append(coldFirst, ph{p, heat[p]})
	}
	sort.Slice(coldFirst, func(i, j int) bool {
		if coldFirst[i].n != coldFirst[j].n {
			return coldFirst[i].n < coldFirst[j].n
		}
		return coldFirst[i].page < coldFirst[j].page
	})

	moves := 0
	evictIdx := 0
	for _, c := range hot {
		if moves >= budget {
			break
		}
		if inFast[c.page] {
			continue
		}
		if len(inFast) >= capPages {
			// Evict only if the candidate is strictly hotter than the
			// coldest resident.
			if evictIdx >= len(coldFirst) || coldFirst[evictIdx].n >= c.n {
				break
			}
			delete(inFast, coldFirst[evictIdx].page)
			evictIdx++
		}
		inFast[c.page] = true
		moves++
	}
	return moves
}
