package memsys

import (
	"testing"

	"ena/internal/arch"
	"ena/internal/workload"
)

func TestMigrationBasics(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.XSBench()
	r := SimulateMigration(cfg, k, 30000, DefaultMigrationConfig())
	if r.Accesses != 30000 {
		t.Fatalf("accesses = %d", r.Accesses)
	}
	if r.Epochs < 5 {
		t.Errorf("epochs = %d", r.Epochs)
	}
	if r.ExtAccessFrac < 0 || r.ExtAccessFrac > 1 {
		t.Errorf("ext fraction = %v", r.ExtAccessFrac)
	}
	if r.FastTierPages <= 0 || r.FastTierPages > r.DistinctPages {
		t.Errorf("fast tier %d of %d pages", r.FastTierPages, r.DistinctPages)
	}
}

func TestMigrationLearns(t *testing.T) {
	// For kernels with stable hot sets, steady-state external traffic must
	// undercut the cold start (the whole point of the HMA mechanism).
	cfg := arch.BestMeanEHP()
	for _, name := range []string{"MiniAMR", "CoMD"} {
		k, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := SimulateMigration(cfg, k, 40000, DefaultMigrationConfig())
		if r.SteadyStateFrac > r.ColdStartFrac {
			t.Errorf("%s: steady state %.3f worse than cold start %.3f",
				name, r.SteadyStateFrac, r.ColdStartFrac)
		}
	}
}

func TestMigrationRandomAccessGainsLittle(t *testing.T) {
	// XSBench's uniformly random lookups have no hot pages: migration
	// cannot beat the capacity share by much — consistent with the paper
	// reporting up to 89% of traffic still going off-package.
	cfg := arch.BestMeanEHP()
	k := workload.XSBench()
	r := SimulateMigration(cfg, k, 40000, DefaultMigrationConfig())
	capacityShare := 1 - float64(r.FastTierPages)/float64(r.DistinctPages)
	if r.SteadyStateFrac < capacityShare-0.25 {
		t.Errorf("random access should not concentrate: steady %.3f vs capacity share %.3f",
			r.SteadyStateFrac, capacityShare)
	}
}

func TestMigrationSmallFootprintAllFast(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.MaxFlops()
	r := SimulateMigration(cfg, k, 20000, DefaultMigrationConfig())
	// The tiny working set lands entirely in-package after warm-up.
	if r.SteadyStateFrac > 0.01 {
		t.Errorf("MaxFlops steady-state external fraction = %v", r.SteadyStateFrac)
	}
}

func TestMigrationBudgetBounds(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.MiniAMR()
	mc := DefaultMigrationConfig()
	mc.MaxMigrationsPerEpoch = 4
	r := SimulateMigration(cfg, k, 20000, mc)
	if r.Migrations > r.Epochs*4 {
		t.Errorf("migrations %d exceed budget %d", r.Migrations, r.Epochs*4)
	}
	// A generous budget must migrate at least as much as a tight one.
	mc2 := DefaultMigrationConfig()
	mc2.MaxMigrationsPerEpoch = 256
	r2 := SimulateMigration(cfg, k, 20000, mc2)
	if r2.Migrations < r.Migrations {
		t.Errorf("larger budget migrated less: %d vs %d", r2.Migrations, r.Migrations)
	}
}

func TestMigrationValidatesAnalyticModel(t *testing.T) {
	// The trace-driven migrator and the analytic MissFrac should agree on
	// the regime: both far from zero for capacity-pressured kernels, both
	// zero-ish for resident ones.
	cfg := arch.BestMeanEHP()
	for _, name := range []string{"XSBench", "MiniAMR"} {
		k, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		analytic := MissFrac(cfg, k, SoftwareManaged)
		r := SimulateMigration(cfg, k, 40000, DefaultMigrationConfig())
		if analytic > 0.4 && r.SteadyStateFrac < 0.3 {
			t.Errorf("%s: analytic %.2f vs simulated steady state %.2f disagree on regime",
				name, analytic, r.SteadyStateFrac)
		}
	}
}

func TestMigrationDeterministic(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.LULESH()
	a := SimulateMigration(cfg, k, 20000, DefaultMigrationConfig())
	b := SimulateMigration(cfg, k, 20000, DefaultMigrationConfig())
	if a != b {
		t.Error("migration simulation must be deterministic")
	}
}

func TestMigrationEmptyTrace(t *testing.T) {
	cfg := arch.BestMeanEHP()
	r := SimulateMigration(cfg, workload.CoMD(), 0, DefaultMigrationConfig())
	if r.Accesses != 0 || r.Migrations != 0 {
		t.Error("empty trace should be a no-op")
	}
}
