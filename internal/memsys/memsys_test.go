package memsys

import (
	"math"
	"testing"
	"testing/quick"

	"ena/internal/arch"
	"ena/internal/perf"
	"ena/internal/workload"
)

func TestEnvZeroMiss(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.CoMD()
	env := Env(cfg, k, 0)
	if math.Abs(env.BWTBps-cfg.InPackageBWTBps()) > 1e-9 {
		t.Errorf("zero-miss bandwidth = %v", env.BWTBps)
	}
	def := perf.DefaultEnv(cfg, k)
	if math.Abs(env.LatencyNs-def.LatencyNs) > 1e-9 {
		t.Errorf("zero-miss latency %v != default %v", env.LatencyNs, def.LatencyNs)
	}
}

func TestEnvHarmonicBlend(t *testing.T) {
	cfg := arch.BestMeanEHP() // 3 TB/s in-package, 0.8 TB/s external
	env := Env(cfg, workload.CoMD(), 0.5)
	want := 1 / (0.5/3.0 + 0.5/0.8)
	if math.Abs(env.BWTBps-want) > 1e-6 {
		t.Errorf("blended bandwidth = %v, want %v", env.BWTBps, want)
	}
}

func TestEnvClampsMissFrac(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.CoMD()
	if Env(cfg, k, -1) != Env(cfg, k, 0) {
		t.Error("negative miss should clamp to 0")
	}
	if Env(cfg, k, 2) != Env(cfg, k, 1) {
		t.Error("miss > 1 should clamp to 1")
	}
}

func TestEnvLatencyMonotoneInMiss(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.LULESH()
	f := func(a, b float64) bool {
		m1 := math.Abs(math.Mod(a, 1))
		m2 := math.Abs(math.Mod(b, 1))
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		e1, e2 := Env(cfg, k, m1), Env(cfg, k, m2)
		return e2.LatencyNs >= e1.LatencyNs-1e-9 && e2.BWTBps <= e1.BWTBps+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDegradationShapes(t *testing.T) {
	cfg := arch.BestMeanEHP()
	// MaxFlops is flat (Fig. 8); memory-intensive kernels lose most.
	if got := DegradationAtMiss(cfg, workload.MaxFlops(), 1.0); got < 0.95 {
		t.Errorf("MaxFlops at 100%% miss = %v, should stay ~flat", got)
	}
	snap := DegradationAtMiss(cfg, workload.SNAP(), 1.0)
	if snap > 0.45 {
		t.Errorf("SNAP at 100%% miss = %v, should degrade hard", snap)
	}
	// §V-B: LULESH (latency-sensitive) is less bandwidth-sensitive than
	// CoMD under the miss sweep.
	lul := DegradationAtMiss(cfg, workload.LULESH(), 1.0)
	comd := DegradationAtMiss(cfg, workload.CoMD(), 1.0)
	if lul <= comd {
		t.Errorf("LULESH %v should retain more than CoMD %v", lul, comd)
	}
}

func TestDegradationMonotone(t *testing.T) {
	cfg := arch.BestMeanEHP()
	for _, k := range workload.Suite() {
		prev := math.Inf(1)
		for _, m := range []float64{0, 0.25, 0.5, 0.75, 1} {
			got := DegradationAtMiss(cfg, k, m)
			if got > prev+1e-9 {
				t.Errorf("%s: degradation not monotone at %v", k.Name, m)
			}
			prev = got
		}
		if DegradationAtMiss(cfg, k, 0) != 1 {
			t.Errorf("%s: zero-miss must normalize to 1", k.Name)
		}
	}
}

func TestMissFracPolicies(t *testing.T) {
	cfg := arch.BestMeanEHP()
	small := workload.MaxFlops()
	if MissFrac(cfg, small, SoftwareManaged) != 0 {
		t.Error("in-package-resident kernel must not miss")
	}
	big := workload.XSBench() // 1 TB footprint
	static := MissFrac(cfg, big, StaticInterleave)
	sw := MissFrac(cfg, big, SoftwareManaged)
	if sw > static {
		t.Errorf("software management %v must not exceed static interleave %v", sw, static)
	}
	wantStatic := 1 - cfg.InPackageCapacityGB()/big.FootprintGB
	if math.Abs(static-wantStatic) > 1e-9 {
		t.Errorf("static miss = %v, want capacity share %v", static, wantStatic)
	}
	hw := MissFrac(cfg, big, HardwareCache)
	if hw > static {
		t.Errorf("hardware cache %v must not exceed static %v", hw, static)
	}
}

func TestUsableCapacity(t *testing.T) {
	cfg := arch.BestMeanEHP()
	if got := UsableCapacityGB(cfg, SoftwareManaged); got != cfg.TotalCapacityGB() {
		t.Errorf("software-managed usable = %v", got)
	}
	// §II-B3: cache mode sacrifices 20% of addressable capacity
	// (256 GB of 1.25 TB).
	got := UsableCapacityGB(cfg, HardwareCache)
	if got != cfg.ExtCapacityGB() {
		t.Errorf("cache-mode usable = %v", got)
	}
	frac := 1 - got/cfg.TotalCapacityGB()
	if math.Abs(frac-0.2) > 0.01 {
		t.Errorf("capacity sacrifice = %v, paper says 20%%", frac)
	}
}

func TestFitsProblem(t *testing.T) {
	cfg := arch.BestMeanEHP()
	xs := workload.XSBench() // 1024 GB
	if !FitsProblem(cfg, xs, SoftwareManaged) {
		t.Error("1 TB problem fits the 1.25 TB software-managed node")
	}
	big := xs
	big.FootprintGB = 1100 // between cache-mode (1.0 TB) and full (1.25 TB)
	if !FitsProblem(cfg, big, SoftwareManaged) {
		t.Error("1.1 TB problem fits the software-managed node")
	}
	if FitsProblem(cfg, big, HardwareCache) {
		t.Error("1.1 TB problem must NOT fit in cache mode (1.0 TB usable)")
	}
}

func TestPolicyString(t *testing.T) {
	if StaticInterleave.String() != "static-interleave" ||
		SoftwareManaged.String() != "software-managed" ||
		HardwareCache.String() != "hardware-cache" ||
		Policy(9).String() == "" {
		t.Error("policy strings wrong")
	}
}

func TestEnvUnderPolicyOverhead(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.LULESH()
	raw := Env(cfg, k, MissFrac(cfg, k, SoftwareManaged))
	taxed := EnvUnderPolicy(cfg, k, SoftwareManaged)
	if taxed.BWTBps >= raw.BWTBps {
		t.Error("policy overhead must tax bandwidth")
	}
}
