package memsys

import (
	"math"
	"time"

	"ena/internal/arch"
	"ena/internal/dram"
	"ena/internal/event"
	"ena/internal/obs"
	"ena/internal/perf"
	"ena/internal/units"
	"ena/internal/workload"
)

// QueueSim is the detailed, event-driven model of the memory system: HBM
// stacks decomposed into independent channels and external interfaces
// modeled as SerDes-rate-limited FIFO chains. It plays the role the AMD gem5
// APU simulator plays in the paper's methodology (§III): validating and
// adjusting the first-order analytic model.

// SimResult summarizes one queue-simulation run.
type SimResult struct {
	Requests       int
	AchievedGBps   float64 // serviced traffic over the simulated interval
	MeanLatencyNs  float64
	MaxLatencyNs   float64
	ExtFracActual  float64 // fraction of requests routed externally
	HBMUtilization float64 // mean busy fraction across HBM channels
}

// server is a single-resource FIFO queue with deterministic service time.
type server struct {
	freeAt float64 // next time the server can start a new request
	busyNs float64 // accumulated busy time
}

// serve returns the completion time of a request arriving at t.
func (s *server) serve(t, serviceNs float64) float64 {
	start := t
	if s.freeAt > start {
		start = s.freeAt
	}
	s.freeAt = start + serviceNs
	s.busyNs += serviceNs
	return s.freeAt
}

// SimOptions configures a queue-simulation run.
type SimOptions struct {
	// MissFrac routes this fraction of lines to external memory
	// (deterministically by address hash, so the same line always misses).
	MissFrac float64
	// OfferedGBps is the open-loop request injection rate; zero selects
	// 90% of the in-package bandwidth.
	OfferedGBps float64
	// FixedServiceNs overrides per-request base latency (zero keeps the
	// calibrated defaults).
	FixedServiceNs float64
	// BankLevel replaces the fixed-rate channel servers with the
	// bank-level DRAM timing model (internal/dram): row-buffer locality,
	// bank conflicts and refresh become visible in latency and
	// throughput. TempC selects the refresh regime (0 = 60 C).
	BankLevel bool
	TempC     float64
	// Reg and Tracer attach observability sinks; when both are nil the
	// process-default scope (obs.Default) is consulted.
	Reg    *obs.Registry
	Tracer *obs.Tracer
	// TraceSampleEvery emits one trace event per N requests (default 256).
	TraceSampleEvery int
}

// SimulateTrace replays a workload trace through the queuing model.
func SimulateTrace(cfg *arch.NodeConfig, tr []workload.Access, opt SimOptions) SimResult {
	res := SimResult{Requests: len(tr)}
	if len(tr) == 0 {
		return res
	}
	offered := opt.OfferedGBps
	if offered <= 0 {
		offered = 0.9 * cfg.InPackageBWTBps() * 1000
	}
	interArrivalNs := float64(units.CacheLineBytes) / (offered * units.GB) * 1e9

	// Build servers: one per HBM channel, one per external interface.
	nStacks := len(cfg.HBM)
	channels := make([][]*server, nStacks)
	var banked [][]*dram.Channel
	var chService []float64 // per-stack per-channel service ns per line
	for i, h := range cfg.HBM {
		chs := make([]*server, h.Channels)
		for j := range chs {
			chs[j] = &server{}
		}
		channels[i] = chs
		perChGBps := h.BandwidthGBps / float64(h.Channels)
		chService = append(chService, float64(units.CacheLineBytes)/(perChGBps*units.GB)*1e9)
		if opt.BankLevel {
			t := dram.DefaultTiming()
			// Scale the burst so the bank-level channel peaks at the
			// configured per-channel bandwidth.
			t.TBurst = float64(units.CacheLineBytes) / perChGBps
			temp := opt.TempC
			if temp == 0 {
				temp = 60
			}
			bank := make([]*dram.Channel, h.Channels)
			for j := range bank {
				c, err := dram.NewChannel(8, t, temp)
				if err != nil {
					panic(err) // bank count is a positive constant
				}
				bank[j] = c
			}
			banked = append(banked, bank)
		}
	}
	ext := make([]*server, len(cfg.Ext))
	extService := make([]float64, len(cfg.Ext))
	for i, c := range cfg.Ext {
		ext[i] = &server{}
		if c.LinkGBps > 0 {
			extService[i] = float64(units.CacheLineBytes) / (c.LinkGBps * units.GB) * 1e9
		}
	}

	reg, tracer := opt.Reg, opt.Tracer
	if reg == nil && tracer == nil {
		sc := obs.Default()
		reg, tracer = sc.Reg, sc.Tr
	}
	sampleEvery := opt.TraceSampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 256
	}
	latHist := reg.Histogram("memsys.latency_ns", nil)
	wallStart := time.Now()

	sim := event.AcquireSim()
	defer event.ReleaseSim(sim)
	sim.Instrument(reg, "memsys.sim")
	var (
		sumLat, maxLat float64
		extCount       int
		lastDone       float64
	)
	// Arrivals are an open-loop stream at fixed spacing, so they form a
	// self-scheduling chain: one closure walks the trace, each firing
	// scheduling the next arrival. This replaces the up-front scheduling of
	// every access (one closure and a 50k-deep queue per run) with O(1)
	// queue depth and zero steady-state allocations; arrival times and
	// processing order are identical.
	idx := 0
	var arrival event.Handler
	arrival = func() {
		acc := tr[idx]
		now := sim.Now()
		line := acc.Addr / units.CacheLineBytes
		var done float64
		tier := "hbm"
		if isMiss(line, opt.MissFrac) && len(ext) > 0 {
			extCount++
			tier = "ext"
			iface := int(line % uint64(len(ext)))
			svc := extService[iface]
			if svc == 0 {
				svc = 1
			}
			base := float64(perf.ExtLatencyNs)
			if opt.FixedServiceNs > 0 {
				base = opt.FixedServiceNs
			}
			done = ext[iface].serve(now, svc) + base
		} else {
			stack := int(line % uint64(nStacks))
			ch := int((line / uint64(nStacks)) % uint64(len(channels[stack])))
			base := float64(perf.HBMLatencyNs)
			if opt.FixedServiceNs > 0 {
				base = opt.FixedServiceNs
			}
			if opt.BankLevel {
				// The bank-level model owns timing: base covers
				// only the controller/PHY portion ahead of it.
				done = banked[stack][ch].Access(now, line/uint64(nStacks)) + base/2
			} else {
				done = channels[stack][ch].serve(now, chService[stack]) + base
			}
		}
		lat := done - now
		sumLat += lat
		if lat > maxLat {
			maxLat = lat
		}
		if done > lastDone {
			lastDone = done
		}
		latHist.Observe(lat)
		if tracer != nil && idx%sampleEvery == 0 {
			tracer.Complete("memsys.access", tier, now/1000, lat/1000,
				obs.PIDMemsys, 0, map[string]any{"tier": tier, "write": acc.Write})
		}
		idx++
		if idx < len(tr) {
			if _, err := sim.At(float64(idx)*interArrivalNs, arrival); err != nil {
				// Arrival times are monotonically increasing from zero;
				// scheduling can only fail on programmer error.
				panic(err)
			}
		}
	}
	if _, err := sim.At(0, arrival); err != nil {
		panic(err)
	}
	sim.Run(0)

	res.MeanLatencyNs = sumLat / float64(len(tr))
	res.MaxLatencyNs = maxLat
	res.ExtFracActual = float64(extCount) / float64(len(tr))
	if lastDone > 0 {
		bytes := float64(len(tr)) * units.CacheLineBytes
		res.AchievedGBps = bytes / (lastDone * 1e-9) / units.GB
	}
	var busy, horizon float64
	for _, chs := range channels {
		for _, s := range chs {
			busy += s.busyNs
			horizon += lastDone
		}
	}
	if horizon > 0 {
		res.HBMUtilization = busy / horizon
	}

	if reg != nil {
		reg.Counter("memsys.requests").Add(int64(len(tr)))
		reg.Counter("memsys.ext_requests").Add(int64(extCount))
		reg.Counter("memsys.hbm_requests").Add(int64(len(tr) - extCount))
		reg.Gauge("memsys.achieved_gbps").Set(res.AchievedGBps)
		reg.Gauge("memsys.hbm_utilization").Set(res.HBMUtilization)
		reg.Gauge("memsys.max_latency_ns").Set(res.MaxLatencyNs)
		if wall := time.Since(wallStart).Seconds(); wall > 0 {
			reg.Gauge("memsys.sim.events_per_sec").Set(float64(sim.Processed()) / wall)
		}
	}
	return res
}

// isMiss hashes the line address to decide deterministically whether it is
// served externally, hitting the requested miss fraction in expectation.
func isMiss(line uint64, missFrac float64) bool {
	if missFrac <= 0 {
		return false
	}
	if missFrac >= 1 {
		return true
	}
	h := line * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return float64(h%10000) < missFrac*10000
}

// CalibrateLatency runs a low-load simulation and returns the unloaded mean
// latency, which the analytic model's HBMLatencyNs should approximate.
func CalibrateLatency(cfg *arch.NodeConfig, tr []workload.Access) float64 {
	r := SimulateTrace(cfg, tr, SimOptions{OfferedGBps: math.Max(1, 0.05*cfg.InPackageBWTBps()*1000)})
	return r.MeanLatencyNs
}
