package memsys

import (
	"math"
	"testing"

	"ena/internal/arch"
	"ena/internal/perf"
	"ena/internal/workload"
)

func TestQueueSimBasics(t *testing.T) {
	cfg := arch.BestMeanEHP()
	tr := workload.CoMD().Trace(1, 20000)
	r := SimulateTrace(cfg, tr, SimOptions{})
	if r.Requests != len(tr) {
		t.Errorf("requests = %d", r.Requests)
	}
	if r.MeanLatencyNs < perf.HBMLatencyNs {
		t.Errorf("mean latency %v below unloaded DRAM latency", r.MeanLatencyNs)
	}
	if r.MaxLatencyNs < r.MeanLatencyNs {
		t.Error("max latency below mean")
	}
	if r.AchievedGBps <= 0 {
		t.Error("no throughput")
	}
	// Cannot exceed the offered rate (open loop).
	offered := 0.9 * cfg.InPackageBWTBps() * 1000
	if r.AchievedGBps > offered*1.01 {
		t.Errorf("achieved %v exceeds offered %v", r.AchievedGBps, offered)
	}
	if r.HBMUtilization < 0 || r.HBMUtilization > 1 {
		t.Errorf("utilization = %v", r.HBMUtilization)
	}
}

func TestQueueSimMissRouting(t *testing.T) {
	cfg := arch.BestMeanEHP()
	tr := workload.XSBench().Trace(2, 30000)
	for _, m := range []float64{0, 0.3, 1} {
		r := SimulateTrace(cfg, tr, SimOptions{MissFrac: m, OfferedGBps: 200})
		if math.Abs(r.ExtFracActual-m) > 0.05 {
			t.Errorf("requested miss %v, routed %v", m, r.ExtFracActual)
		}
	}
}

func TestQueueSimLatencyGrowsWithLoad(t *testing.T) {
	cfg := arch.BestMeanEHP()
	tr := workload.SNAP().Trace(3, 30000)
	light := SimulateTrace(cfg, tr, SimOptions{OfferedGBps: 100})
	heavy := SimulateTrace(cfg, tr, SimOptions{OfferedGBps: 6000})
	if heavy.MeanLatencyNs <= light.MeanLatencyNs {
		t.Errorf("loaded latency %v should exceed light-load %v",
			heavy.MeanLatencyNs, light.MeanLatencyNs)
	}
}

func TestQueueSimExternalSlower(t *testing.T) {
	cfg := arch.BestMeanEHP()
	tr := workload.LULESH().Trace(4, 20000)
	inPkg := SimulateTrace(cfg, tr, SimOptions{MissFrac: 0, OfferedGBps: 300})
	ext := SimulateTrace(cfg, tr, SimOptions{MissFrac: 1, OfferedGBps: 300})
	if ext.MeanLatencyNs <= inPkg.MeanLatencyNs {
		t.Errorf("external latency %v should exceed in-package %v",
			ext.MeanLatencyNs, inPkg.MeanLatencyNs)
	}
}

func TestQueueSimValidatesAnalyticLatency(t *testing.T) {
	// The paper's methodology (§III) uses the detailed simulator to sanity
	// check the high-level model: at low load, measured in-package latency
	// should sit near the analytic HBMLatencyNs anchor.
	cfg := arch.BestMeanEHP()
	tr := workload.CoMD().Trace(5, 10000)
	// Bursty same-channel accesses (bank conflicts) push the mean above
	// the unloaded anchor, but it must stay within ~2x of it.
	lat := CalibrateLatency(cfg, tr)
	if lat < perf.HBMLatencyNs*0.9 || lat > perf.HBMLatencyNs*2.2 {
		t.Errorf("unloaded latency %v ns vs analytic anchor %v ns", lat, perf.HBMLatencyNs)
	}
}

func TestQueueSimEmptyTrace(t *testing.T) {
	cfg := arch.BestMeanEHP()
	r := SimulateTrace(cfg, nil, SimOptions{})
	if r.Requests != 0 || r.AchievedGBps != 0 {
		t.Error("empty trace should be a no-op")
	}
}

func TestIsMissDeterministicAndCalibrated(t *testing.T) {
	hits := 0
	const n = 100000
	for line := uint64(0); line < n; line++ {
		if isMiss(line, 0.35) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.35) > 0.01 {
		t.Errorf("hash miss fraction = %v, want 0.35", got)
	}
	// Determinism: the same line always routes the same way.
	for line := uint64(0); line < 100; line++ {
		if isMiss(line, 0.35) != isMiss(line, 0.35) {
			t.Fatal("isMiss not deterministic")
		}
	}
	if isMiss(1, 0) || !isMiss(1, 1) {
		t.Error("edge fractions wrong")
	}
}

func TestBankLevelSim(t *testing.T) {
	cfg := arch.BestMeanEHP()
	tr := workload.MiniAMR().Trace(6, 25000)
	flat := SimulateTrace(cfg, tr, SimOptions{OfferedGBps: 500})
	banked := SimulateTrace(cfg, tr, SimOptions{OfferedGBps: 500, BankLevel: true})
	if banked.Requests != flat.Requests {
		t.Fatal("request counts differ")
	}
	if banked.AchievedGBps <= 0 || banked.MeanLatencyNs <= 0 {
		t.Fatalf("degenerate bank-level result: %+v", banked)
	}
	// The bank-level model resolves row locality and conflicts; its
	// latency should be in the same order of magnitude as the flat model.
	if banked.MeanLatencyNs > flat.MeanLatencyNs*5 || flat.MeanLatencyNs > banked.MeanLatencyNs*5 {
		t.Errorf("bank-level latency regime off: %v vs %v", banked.MeanLatencyNs, flat.MeanLatencyNs)
	}
}

func TestBankLevelRefreshTemperature(t *testing.T) {
	// Above the 85 C threshold the refresh rate doubles: the hot run must
	// not be faster.
	cfg := arch.BestMeanEHP()
	tr := workload.SNAP().Trace(6, 25000)
	cool := SimulateTrace(cfg, tr, SimOptions{OfferedGBps: 2500, BankLevel: true, TempC: 70})
	hot := SimulateTrace(cfg, tr, SimOptions{OfferedGBps: 2500, BankLevel: true, TempC: 95})
	if hot.AchievedGBps > cool.AchievedGBps*1.001 {
		t.Errorf("hot DRAM outperformed cool: %v vs %v", hot.AchievedGBps, cool.AchievedGBps)
	}
	if hot.MeanLatencyNs < cool.MeanLatencyNs*0.999 {
		t.Errorf("hot DRAM latency %v below cool %v", hot.MeanLatencyNs, cool.MeanLatencyNs)
	}
}
