// Package memsys models the ENA's two-level memory system (paper §II-B):
// in-package 3D DRAM plus the external memory network, the management
// policies that decide which level serves each request (§II-B3), and the
// resulting memory environment (effective bandwidth and latency) the
// performance model consumes. It also contains an event-driven queuing
// simulator of HBM channels and external chains used for validation and the
// memory-policy ablation.
package memsys

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/perf"
	"ena/internal/workload"
)

// Env builds the memory environment for a kernel when missFrac of its DRAM
// traffic is served by external memory (Fig. 8 "artificially varies the
// fraction of requests serviced by the in-package DRAM").
//
// Bandwidth blends harmonically — a stream alternating between levels is
// limited by time per byte, which adds: B_eff = 1/((1-m)/B_in + m/B_ext).
// Latency blends linearly by request fraction.
func Env(cfg *arch.NodeConfig, k workload.Kernel, missFrac float64) perf.MemEnv {
	m := missFrac
	if m < 0 {
		m = 0
	}
	if m > 1 {
		m = 1
	}
	bIn := cfg.InPackageBWTBps()
	bExt := cfg.ExtBWTBps()
	var bEff float64
	switch {
	case bExt <= 0 && m > 0:
		bEff = 0
	case m == 0:
		bEff = bIn
	default:
		bEff = 1 / ((1-m)/bIn + m/bExt)
	}
	latIn := perf.HBMLatencyNs + remoteLatencyNs(cfg, k)
	lat := (1-m)*latIn + m*extLatencyNs(cfg)
	// The contention term keys on the in-package compute-per-bandwidth
	// balance: external misses throttle request injection rather than
	// adding on-package thrash, so the machine ops-per-byte stays the
	// configuration's own.
	return perf.MemEnv{BWTBps: bEff, LatencyNs: lat, EffOpsPerByte: cfg.OpsPerByte()}
}

// remoteLatencyNs mirrors perf's chiplet-hop adder (kept here so the memory
// environment is self-contained).
func remoteLatencyNs(cfg *arch.NodeConfig, k workload.Kernel) float64 {
	if cfg.Monolithic {
		return 0
	}
	remote := (1 - k.CacheLocality) * float64(arch.GPUChipletCount-1) / float64(arch.GPUChipletCount)
	return remote * perf.ChipletHopNs
}

// extLatencyNs is the average external access latency including the SerDes
// chain traversal for the configured chain depth.
func extLatencyNs(cfg *arch.NodeConfig) float64 {
	base := float64(perf.ExtLatencyNs)
	// Deeper chains add hop latency beyond the first module.
	var hops, capTot float64
	for _, c := range cfg.Ext {
		for j, mod := range c.Modules {
			hops += float64(j) * mod.CapacityGB * c.LinkLatencyNs
			capTot += mod.CapacityGB
		}
	}
	if capTot > 0 {
		base += hops / capTot
	}
	return base
}

// Policy selects how the two memory levels are managed (§II-B3).
type Policy int

const (
	// StaticInterleave spreads pages across levels in proportion to
	// capacity with no migration: the simplest (and worst) option.
	StaticInterleave Policy = iota
	// SoftwareManaged is the paper's primary mode: the OS monitors and
	// migrates hot pages so the in-package DRAM captures the hottest
	// fraction of traffic (the HMA approach of [27]).
	SoftwareManaged
	// HardwareCache treats in-package DRAM as a hardware-managed cache:
	// better hit rates for friendly workloads, but it sacrifices 20% of
	// total addressable capacity (256 GB of 1.25 TB) (§II-B3).
	HardwareCache
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case StaticInterleave:
		return "static-interleave"
	case SoftwareManaged:
		return "software-managed"
	case HardwareCache:
		return "hardware-cache"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// MissFrac estimates the fraction of DRAM traffic served by external memory
// for a kernel under a policy on a node. The model keys on the ratio of the
// kernel's footprint to in-package capacity and on how skewed the kernel's
// page-touch distribution is (hot-page concentration makes migration
// effective).
func MissFrac(cfg *arch.NodeConfig, k workload.Kernel, p Policy) float64 {
	inCap := cfg.InPackageCapacityGB()
	foot := k.FootprintGB
	if foot <= inCap || foot == 0 {
		return 0
	}
	coldShare := 1 - inCap/foot // capacity-proportional miss fraction
	switch p {
	case StaticInterleave:
		return coldShare
	case SoftwareManaged:
		// Migration captures the hot pages; the achievable traffic
		// fraction is the kernel's characterized external share (the
		// paper's 46-89%). Even for flat access distributions the
		// monitor still beats raw capacity interleaving slightly (hot
		// metadata/tally pages concentrate in-package).
		m := k.ExtTrafficFrac
		if cap := coldShare * 0.92; m > cap {
			m = cap
		}
		return m
	case HardwareCache:
		// A hardware cache reacts faster than epoch-based migration:
		// model it as capturing reuse at line granularity, improving
		// on software management by the kernel's cache friendliness,
		// at the cost of higher miss rates for streaming/random
		// kernels whose reuse exceeds capacity anyway.
		m := k.ExtTrafficFrac * (1 - 0.3*k.CacheLocality)
		if m > coldShare {
			m = coldShare
		}
		return m
	default:
		return coldShare
	}
}

// UsableCapacityGB returns addressable memory under a policy: the hardware
// cache mode sacrifices the in-package capacity as addressable space.
func UsableCapacityGB(cfg *arch.NodeConfig, p Policy) float64 {
	if p == HardwareCache {
		return cfg.ExtCapacityGB()
	}
	return cfg.TotalCapacityGB()
}

// FitsProblem reports whether a kernel's footprint is addressable under the
// policy (the §II-B3 argument for not defaulting to cache mode).
func FitsProblem(cfg *arch.NodeConfig, k workload.Kernel, p Policy) bool {
	return k.FootprintGB <= UsableCapacityGB(cfg, p)
}

// MigrationOverheadFrac estimates the performance tax of a policy's
// management traffic (page migrations or cache fills) as a fraction of
// useful traffic. Software management pays per-epoch migration bursts;
// hardware caching pays fill traffic on every miss.
func MigrationOverheadFrac(k workload.Kernel, p Policy) float64 {
	switch p {
	case SoftwareManaged:
		// Hot sets churn faster for irregular kernels.
		return 0.01 + 0.02*(1-k.CacheLocality)
	case HardwareCache:
		return 0.04
	default:
		return 0
	}
}

// EnvUnderPolicy composes MissFrac and Env, applying the policy's overhead
// as a bandwidth tax.
func EnvUnderPolicy(cfg *arch.NodeConfig, k workload.Kernel, p Policy) perf.MemEnv {
	m := MissFrac(cfg, k, p)
	env := Env(cfg, k, m)
	env.BWTBps *= 1 - MigrationOverheadFrac(k, p)
	return env
}

// DegradationAtMiss returns normalized performance (perf at missFrac divided
// by perf at zero misses), the quantity Fig. 8 plots.
func DegradationAtMiss(cfg *arch.NodeConfig, k workload.Kernel, missFrac float64) float64 {
	base := perf.Estimate(cfg, k, Env(cfg, k, 0))
	got := perf.Estimate(cfg, k, Env(cfg, k, missFrac))
	if base.TFLOPs == 0 {
		return 0
	}
	return got.TFLOPs / base.TFLOPs
}
