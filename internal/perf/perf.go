// Package perf implements the high-level analytic performance model of the
// paper's methodology (§III): an extended roofline that bounds a kernel's
// throughput by (1) compute capability, (2) deliverable memory bandwidth,
// and (3) memory-level-parallelism-limited latency, then applies the
// contention degradation that memory-intensive kernels exhibit when the
// machine's ops-per-byte grows past the kernel's sweet spot (§IV-C), and an
// Amdahl term for serial/CPU sections.
//
// The model's inputs are a node configuration (internal/arch), a kernel
// characterization (internal/workload), and a memory environment (effective
// bandwidth and latency, produced by internal/memsys or internal/noc). Its
// output is absolute node throughput; the experiment harnesses normalize to
// the best-mean configuration exactly as the paper's figures do.
package perf

import (
	"fmt"
	"math"

	"ena/internal/arch"
	"ena/internal/units"
	"ena/internal/workload"
)

// Model latency constants (calibration anchors; see DESIGN.md).
const (
	// CoreSideCycles is the core/cache portion of a memory access in CU
	// cycles — it shrinks with frequency, which is why high-clock design
	// points help latency-sensitive kernels (Table II).
	CoreSideCycles = 190

	// HBMLatencyNs is the loaded in-package 3D DRAM access latency.
	HBMLatencyNs = 160

	// ChipletHopNs is the extra latency of crossing to another chiplet
	// through TSVs and the active interposer (two vertical hops plus
	// horizontal traversal; §V-A). The detailed NoC model refines this.
	ChipletHopNs = 32

	// ExtLatencyNs is the loaded external-memory access latency through
	// the SerDes chain.
	ExtLatencyNs = 450

	// CPUFlopsPerCorePerCycle approximates the CPU chiplets' DP
	// throughput for serial sections (4-wide FMA).
	CPUFlopsPerCorePerCycle = 8
)

// softminP is the exponent of the smooth minimum that joins the roofline
// bounds; larger values sharpen the knees. 6 reproduces the gradual plateaus
// of Figs. 4-6 without blurring who wins.
const softminP = 6

// Caps on the CU-scaling benefit at low CU counts: achieved utilization
// cannot exceed maxAchievableUtil, and per-CU occupancy (outstanding
// requests) saturates at maxMLPScale times the characterized value.
const (
	maxAchievableUtil = 0.95
	maxMLPScale       = 1.5
)

// MemEnv is the memory environment a kernel sees on a node.
type MemEnv struct {
	// BWTBps is the deliverable DRAM bandwidth for this kernel's traffic
	// (in-package bandwidth, degraded by external misses if any).
	BWTBps float64
	// LatencyNs is the average memory-side (post-core) access latency.
	LatencyNs float64
	// EffOpsPerByte is the machine compute-per-bandwidth balance the
	// contention model keys on; DefaultEnv derives it from the config.
	EffOpsPerByte float64
}

// Bound identifies which roofline term dominated.
type Bound int

const (
	// ComputeBound means peak-throughput limited.
	ComputeBound Bound = iota
	// BandwidthBound means DRAM-bandwidth limited.
	BandwidthBound
	// LatencyBound means limited by outstanding-request capacity.
	LatencyBound
)

// String implements fmt.Stringer.
func (b Bound) String() string {
	switch b {
	case ComputeBound:
		return "compute"
	case BandwidthBound:
		return "bandwidth"
	case LatencyBound:
		return "latency"
	default:
		return fmt.Sprintf("Bound(%d)", int(b))
	}
}

// Result is the model's output for one (config, kernel, environment) triple.
type Result struct {
	TFLOPs      float64 // achieved node throughput
	Bound       Bound   // dominating roofline term
	TrafficTBps float64 // DRAM traffic generated at that throughput
	UtilOfPeak  float64 // TFLOPs / peak TFLOPs
	Contention  float64 // contention divisor applied (>= 1)

	// The three raw bounds, for diagnostics and tests.
	ComputeTFLOPs   float64
	BandwidthTFLOPs float64
	LatencyTFLOPs   float64
}

// DefaultEnv builds the memory environment for a kernel whose working set is
// served entirely from in-package DRAM (the assumption behind Figs. 4-7 and
// 10-13; Fig. 8 perturbs it explicitly via memsys).
func DefaultEnv(cfg *arch.NodeConfig, k workload.Kernel) MemEnv {
	return MemEnv{
		BWTBps:        cfg.InPackageBWTBps(),
		LatencyNs:     HBMLatencyNs + remoteLatencyNs(cfg, k),
		EffOpsPerByte: cfg.OpsPerByte(),
	}
}

// remoteLatencyNs is the average extra hop latency for traffic that leaves
// the source chiplet. With eight GPU chiplets and capacity-interleaved
// addressing, (1-locality) * 7/8 of post-cache traffic is remote.
func remoteLatencyNs(cfg *arch.NodeConfig, k workload.Kernel) float64 {
	if cfg.Monolithic {
		return 0
	}
	remoteFrac := (1 - k.CacheLocality) * float64(arch.GPUChipletCount-1) / float64(arch.GPUChipletCount)
	return remoteFrac * ChipletHopNs
}

// softmin joins bounds smoothly: (sum x_i^-p)^(-1/p) <= min(x_i).
func softmin(xs ...float64) float64 {
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Pow(x, -softminP)
	}
	return math.Pow(s, -1.0/softminP)
}

// Estimate evaluates the model.
func Estimate(cfg *arch.NodeConfig, k workload.Kernel, env MemEnv) Result {
	cus := float64(cfg.TotalCUs())
	fHz := cfg.GPUFreqMHz() * units.MHz
	peak := cus * fHz * arch.DPFlopsPerCUPerCycle // flops/s

	// Achieved utilization decays mildly with CU count around the 320-CU
	// reference point (fixed-problem-size scaling loss; [42], [43]):
	// frequency speeds the whole chip up, extra CUs only the parallel
	// parts that still have work. The same occupancy loss limits how many
	// outstanding memory requests the added CUs contribute, so the
	// scaling factor applies to both the compute and latency bounds.
	scaling := 1.0
	if k.CUScalingGamma > 0 {
		scaling = math.Pow(float64(arch.BestMeanCUs)/cus, k.CUScalingGamma)
	}
	util := k.MaxUtilization * scaling
	if util > maxAchievableUtil {
		util = maxAchievableUtil
	}
	compute := peak * util
	bandwidth := k.Intensity * env.BWTBps * units.TB

	// Latency bound: each CU sustains MLP outstanding 64 B requests; the
	// total request rate is capped by round-trip latency (core-side
	// cycles shrink with frequency, memory-side is env.LatencyNs).
	latNs := CoreSideCycles/(cfg.GPUFreqMHz()/1000) + env.LatencyNs
	mlpScale := scaling
	if mlpScale > maxMLPScale {
		mlpScale = maxMLPScale
	}
	bytesPerSec := cus * mlpScale * k.MLPPerCU * units.CacheLineBytes / (latNs * 1e-9)
	latency := bytesPerSec * k.Intensity

	raw := softmin(compute, bandwidth, latency)

	// Contention degradation for memory-intensive kernels (§IV-C): when
	// the machine is provisioned with far more compute per byte than the
	// kernel's sweet spot, the excess concurrent requests thrash caches
	// and the interconnect.
	cont := 1.0
	if k.ThrashSlope > 0 && env.EffOpsPerByte > k.ThrashOPB {
		cont = 1 + k.ThrashSlope*(env.EffOpsPerByte-k.ThrashOPB)/k.ThrashOPB*0.1
	}
	gpu := raw / cont

	// Amdahl term: serial sections run on the CPU chiplets.
	cpuRate := float64(cfg.CPUCores()) * cpuFreqHz(cfg) * CPUFlopsPerCorePerCycle
	eff := gpu
	if k.SerialFrac > 0 && cpuRate > 0 {
		eff = gpu / ((1 - k.SerialFrac) + k.SerialFrac*gpu/cpuRate)
	}

	r := Result{
		TFLOPs:          eff / units.TFLOPS,
		TrafficTBps:     eff / k.Intensity / units.TB,
		UtilOfPeak:      eff / peak,
		Contention:      cont,
		ComputeTFLOPs:   compute / units.TFLOPS,
		BandwidthTFLOPs: bandwidth / units.TFLOPS,
		LatencyTFLOPs:   latency / units.TFLOPS,
	}
	switch units.Min3(compute, bandwidth, latency) {
	case compute:
		r.Bound = ComputeBound
	case bandwidth:
		r.Bound = BandwidthBound
	default:
		r.Bound = LatencyBound
	}
	return r
}

func cpuFreqHz(cfg *arch.NodeConfig) float64 {
	if len(cfg.CPU) == 0 {
		return 0
	}
	return cfg.CPU[0].FreqMHz * units.MHz
}

// EstimateDefault is Estimate with the all-in-package memory environment.
func EstimateDefault(cfg *arch.NodeConfig, k workload.Kernel) Result {
	return Estimate(cfg, k, DefaultEnv(cfg, k))
}
