package perf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ena/internal/arch"
	"ena/internal/workload"
)

func TestMaxFlopsAnchor(t *testing.T) {
	// Paper §V-F: 320 CUs at 1 GHz reach ~18.6 DP TFLOP/s on MaxFlops.
	cfg := arch.EHP(320, 1000, 1)
	r := EstimateDefault(cfg, workload.MaxFlops())
	if r.TFLOPs < 18.0 || r.TFLOPs > 19.2 {
		t.Errorf("MaxFlops @ 320/1000/1 = %.2f TF, want ~18.6", r.TFLOPs)
	}
	if r.Bound != ComputeBound {
		t.Errorf("MaxFlops bound = %v", r.Bound)
	}
}

func TestMaxFlopsBandwidthInsensitive(t *testing.T) {
	mf := workload.MaxFlops()
	base := EstimateDefault(arch.EHP(320, 1000, 1), mf).TFLOPs
	for _, bw := range []float64{3, 5, 7} {
		got := EstimateDefault(arch.EHP(320, 1000, bw), mf).TFLOPs
		if math.Abs(got-base)/base > 0.02 {
			t.Errorf("MaxFlops at %v TB/s = %.2f, differs from %v by >2%%", bw, got, base)
		}
	}
}

func TestMaxFlopsLinearInCUs(t *testing.T) {
	// Fig. 14: linear scaling with CU count (gamma = 0 for MaxFlops).
	mf := workload.MaxFlops()
	p192 := EstimateDefault(arch.EHP(192, 1000, 1), mf).TFLOPs
	p384 := EstimateDefault(arch.EHP(384, 1000, 1), mf).TFLOPs
	if ratio := p384 / p192; math.Abs(ratio-2) > 0.05 {
		t.Errorf("384/192 CU ratio = %v, want ~2", ratio)
	}
}

func TestBalancedPlateau(t *testing.T) {
	// CoMD at fixed bandwidth: raising frequency eventually stops paying
	// (Fig. 5): the last doubling of ops-per-byte yields much less than
	// proportional gain at 1 TB/s.
	comd := workload.CoMD()
	lo := EstimateDefault(arch.EHP(320, 700, 1), comd).TFLOPs
	hi := EstimateDefault(arch.EHP(320, 1500, 1), comd).TFLOPs
	if hi/lo > 1.3 {
		t.Errorf("CoMD should plateau at 1 TB/s: 1500/700 MHz ratio = %v", hi/lo)
	}
	// At 7 TB/s the same frequency range keeps paying.
	lo7 := EstimateDefault(arch.EHP(320, 700, 7), comd).TFLOPs
	hi7 := EstimateDefault(arch.EHP(320, 1500, 7), comd).TFLOPs
	if hi7/lo7 < 1.5 {
		t.Errorf("CoMD at 7 TB/s should keep scaling: ratio = %v", hi7/lo7)
	}
}

func TestMemoryIntensiveDegrades(t *testing.T) {
	// Fig. 6: LULESH at 1 TB/s peaks and then loses performance as the
	// machine ops-per-byte grows.
	lul := workload.LULESH()
	mid := EstimateDefault(arch.EHP(320, 700, 1), lul).TFLOPs
	high := EstimateDefault(arch.EHP(320, 1500, 1), lul).TFLOPs
	if high >= mid {
		t.Errorf("LULESH should degrade past its sweet spot: %v -> %v", mid, high)
	}
}

func TestBandwidthMonotoneForBWBound(t *testing.T) {
	snap := workload.SNAP()
	prev := 0.0
	for _, bw := range []float64{1, 2, 3, 4, 5} {
		got := EstimateDefault(arch.EHP(320, 1000, bw), snap).TFLOPs
		if got < prev-1e-9 {
			t.Fatalf("SNAP perf decreased with bandwidth at %v TB/s", bw)
		}
		prev = got
	}
}

func TestLatencyBound(t *testing.T) {
	xs := workload.XSBench()
	cfg := arch.EHP(320, 1000, 3)
	r := EstimateDefault(cfg, xs)
	if r.Bound != LatencyBound {
		t.Errorf("XSBench bound = %v, want latency", r.Bound)
	}
	// Longer memory latency must reduce latency-bound throughput.
	envSlow := DefaultEnv(cfg, xs)
	envSlow.LatencyNs *= 2
	slow := Estimate(cfg, xs, envSlow)
	if slow.TFLOPs >= r.TFLOPs {
		t.Errorf("doubling latency did not hurt: %v -> %v", r.TFLOPs, slow.TFLOPs)
	}
}

func TestPerfNeverExceedsPeak(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cus := 64 + rng.Intn(320)
		freq := 500 + rng.Float64()*1000
		bw := 1 + rng.Float64()*6
		cfg := arch.EHP(cus, freq, bw)
		for _, k := range workload.Suite() {
			r := EstimateDefault(cfg, k)
			if r.TFLOPs > cfg.PeakTFLOPs()+1e-9 || r.TFLOPs < 0 {
				return false
			}
			if r.UtilOfPeak < 0 || r.UtilOfPeak > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSoftminBelowHardMin(t *testing.T) {
	got := softmin(10, 20, 30)
	if got > 10 {
		t.Errorf("softmin exceeded the hard min: %v", got)
	}
	if got < 9 {
		t.Errorf("softmin too far below the min: %v", got)
	}
	if softmin(10, 0, 30) != 0 {
		t.Error("zero bound must zero the softmin")
	}
}

func TestMonolithicLatencyAdvantage(t *testing.T) {
	xs := workload.XSBench()
	chiplet := arch.EHP(320, 1000, 3)
	mono := arch.Monolithic(chiplet)
	ec := DefaultEnv(chiplet, xs)
	em := DefaultEnv(mono, xs)
	if em.LatencyNs >= ec.LatencyNs {
		t.Errorf("monolithic latency %v should undercut chiplet %v", em.LatencyNs, ec.LatencyNs)
	}
}

func TestTrafficConsistency(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	for _, k := range workload.Suite() {
		r := EstimateDefault(cfg, k)
		want := r.TFLOPs / k.Intensity // TB/s
		if math.Abs(r.TrafficTBps-want)/want > 1e-6 {
			t.Errorf("%s: traffic %v inconsistent with perf/intensity %v", k.Name, r.TrafficTBps, want)
		}
		if r.TrafficTBps > cfg.InPackageBWTBps()*1.001 && r.Bound == BandwidthBound {
			t.Errorf("%s: bandwidth-bound kernel exceeds provisioned bandwidth", k.Name)
		}
	}
}

func TestContentionOnlyBeyondThrash(t *testing.T) {
	lul := workload.LULESH()
	low := EstimateDefault(arch.EHP(192, 700, 7), lul) // x ~ 0.019
	if low.Contention != 1 {
		t.Errorf("below-thrash contention = %v", low.Contention)
	}
	high := EstimateDefault(arch.EHP(384, 1500, 1), lul) // x ~ 0.576
	if high.Contention <= 1 {
		t.Errorf("above-thrash contention = %v", high.Contention)
	}
}

func TestBoundString(t *testing.T) {
	if ComputeBound.String() != "compute" || BandwidthBound.String() != "bandwidth" ||
		LatencyBound.String() != "latency" || Bound(9).String() == "" {
		t.Error("Bound strings wrong")
	}
}

func TestSerialFractionAmdahl(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	k := workload.CoMD()
	base := EstimateDefault(cfg, k).TFLOPs
	serial := k
	serial.SerialFrac = 0.05
	withSerial := EstimateDefault(cfg, serial).TFLOPs
	if withSerial >= base {
		t.Error("serial sections must cost throughput")
	}
	// Amdahl bound: 5% serial at ~15x GPU/CPU speed ratio costs well over 5%.
	if withSerial > base*0.95 {
		t.Errorf("Amdahl penalty too small: %v -> %v", base, withSerial)
	}
}

func TestContentionContinuity(t *testing.T) {
	// The contention penalty must switch on smoothly at ThrashOPB: perf
	// just above the threshold stays within a hair of perf just below.
	lul := workload.LULESH()
	env := DefaultEnv(arch.EHP(320, 1000, 3), lul)
	below := env
	below.EffOpsPerByte = lul.ThrashOPB * 0.999
	above := env
	above.EffOpsPerByte = lul.ThrashOPB * 1.001
	cfg := arch.EHP(320, 1000, 3)
	pb := Estimate(cfg, lul, below).TFLOPs
	pa := Estimate(cfg, lul, above).TFLOPs
	if rel := (pb - pa) / pb; rel > 0.01 {
		t.Errorf("contention discontinuity: %.4f%% drop across the threshold", rel*100)
	}
}

func TestUtilizationCap(t *testing.T) {
	// At very low CU counts the scaling factor would push utilization
	// past 1; the cap keeps it physical.
	xs := workload.XSBench() // gamma 0.55
	cfg := arch.EHP(32, 1000, 3)
	r := EstimateDefault(cfg, xs)
	if r.ComputeTFLOPs > cfg.PeakTFLOPs()*maxAchievableUtil+1e-9 {
		t.Errorf("compute bound %v exceeds the %v utilization cap", r.ComputeTFLOPs, maxAchievableUtil)
	}
}

func TestDefaultEnvMonolithic(t *testing.T) {
	k := workload.XSBench()
	chiplet := arch.EHP(320, 1000, 3)
	mono := arch.Monolithic(chiplet)
	if DefaultEnv(mono, k).LatencyNs != HBMLatencyNs {
		t.Error("monolithic env must have no chiplet-hop latency")
	}
	if DefaultEnv(chiplet, k).LatencyNs <= HBMLatencyNs {
		t.Error("chiplet env must include remote-hop latency")
	}
}
