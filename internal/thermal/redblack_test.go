package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// randomAssignment draws an uncorrelated power assignment spanning the
// realistic operating range (per-chiplet CU power up to ~20 W, HBM stacks up
// to ~4 W, tens of watts of CPU and interposer power).
func randomAssignment(rng *rand.Rand, fp *Floorplan) PowerAssignment {
	n := len(fp.GPU)
	pa := PowerAssignment{
		GPUChipletW: make([]float64, n),
		HBMStackW:   make([]float64, n),
		CPUW:        rng.Float64() * 40,
		InterposerW: rng.Float64() * 30,
	}
	for i := 0; i < n; i++ {
		pa.GPUChipletW[i] = rng.Float64() * 20
		pa.HBMStackW[i] = rng.Float64() * 4
	}
	return pa
}

// TestRedBlackMatchesLegacySweep is the red-black solver's property test:
// on randomized power assignments the checkerboard solver (with its
// precomputed stencil, strided convergence check, and worker pool) and the
// legacy natural-order per-cell sweep must relax to the same fixed point.
// Both stop on a 1e-4 max-delta criterion rather than a true residual, so
// the fields are not bit-identical; empirically they agree to well under
// 0.01 C and the bound below leaves an order of magnitude of headroom while
// still catching any stencil or ordering bug (those show up as >1 C errors).
func TestRedBlackMatchesLegacySweep(t *testing.T) {
	fp := EHPFloorplan()
	prm := DefaultParams()
	rng := rand.New(rand.NewSource(42))
	const trials = 5
	const boundC = 0.1
	for trial := 0; trial < trials; trial++ {
		pa := randomAssignment(rng, fp)
		// workers=4 exercises the slab-parallel pool even on small hosts
		// (and puts it under the race detector in `make test-race`).
		got, err := solveObservedWorkers(fp, pa, DefaultAmbientC, prm, nil, nil, 4)
		if err != nil {
			t.Fatalf("trial %d: red-black solve: %v", trial, err)
		}
		want, err := solveLegacy(fp, pa, DefaultAmbientC, prm)
		if err != nil {
			t.Fatalf("trial %d: legacy solve: %v", trial, err)
		}
		var maxDiff float64
		for l := 0; l < NumLayers; l++ {
			for i, tw := range want.TempC[l] {
				if d := math.Abs(got.TempC[l][i] - tw); d > maxDiff {
					maxDiff = d
				}
			}
		}
		if maxDiff > boundC {
			t.Errorf("trial %d: red-black and legacy fields differ by %.4f C (> %.2f C)",
				trial, maxDiff, boundC)
		}
		if d := math.Abs(got.PeakDRAMTempC() - want.PeakDRAMTempC()); d > boundC {
			t.Errorf("trial %d: peak DRAM temp differs by %.4f C", trial, d)
		}
	}
}

// TestSolverWorkerCountInvariance pins the slab decomposition: any worker
// count must produce the same field as the sequential sweep (red-black
// updates are order-independent within a color).
func TestSolverWorkerCountInvariance(t *testing.T) {
	fp := EHPFloorplan()
	prm := DefaultParams()
	pa := uniformAssignment(fp, 11, 2, 9, 12)
	seq, err := solveObservedWorkers(fp, pa, DefaultAmbientC, prm, nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, NumLayers * NY} {
		par, err := solveObservedWorkers(fp, pa, DefaultAmbientC, prm, nil, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Iterations != seq.Iterations {
			t.Errorf("workers=%d: %d iterations, sequential took %d",
				workers, par.Iterations, seq.Iterations)
		}
		for l := 0; l < NumLayers; l++ {
			for i := range seq.TempC[l] {
				if seq.TempC[l][i] != par.TempC[l][i] {
					t.Fatalf("workers=%d: field diverges at layer %d cell %d", workers, l, i)
				}
			}
		}
	}
}
