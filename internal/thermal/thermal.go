// Package thermal implements a HotSpot-style compact thermal model of the
// EHP package (paper §V-D): a layered 3D resistance grid covering the active
// interposer, the compute (GPU/CPU chiplet) layer, the four in-package DRAM
// dies stacked above each GPU chiplet, and a copper spreader cooled by a
// high-end air cooler at 50 C ambient in a 2U chassis. A successive
// over-relaxation solve yields the steady-state temperature field, from
// which peak DRAM temperature (Fig. 10) and the bottom-most DRAM die's heat
// map (Fig. 11) are extracted. DRAM must stay below 85 C to avoid raising
// the refresh rate.
package thermal

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"ena/internal/obs"
)

// Package geometry: 1 mm grid cells over a 56 x 32 mm package substrate.
const (
	NX     = 56
	NY     = 32
	CellMM = 1.0
)

// Layer indices (bottom to top).
const (
	LayerInterposer = 0
	LayerCompute    = 1
	LayerDRAM0      = 2 // bottom-most DRAM die — the Fig. 11 subject
	LayerDRAM1      = 3
	LayerDRAM2      = 4
	LayerDRAM3      = 5
	LayerSpreader   = 6
	NumLayers       = 7
)

// DRAMTempLimitC is the refresh-rate threshold (§V-D).
const DRAMTempLimitC = 85.0

// DefaultAmbientC is the 2U-chassis ambient assumed by the paper.
const DefaultAmbientC = 50.0

// Material parameters.
const (
	kSilicon   = 120.0 // W/(m K)
	kUnderfill = 1.2
	kCopper    = 400.0
	hBoardWm2K = 150 // leakage path into the board below the interposer
)

// Params are the calibratable boundary parameters of the package model.
type Params struct {
	// RContact is the bond/TIM interface resistance per face (m^2 K/W);
	// microbump + underfill layers between stacked dies.
	RContact float64
	// HSink is the effective air-cooler convection coefficient at the
	// spreader top (W/(m^2 K)).
	HSink float64
}

// DefaultParams returns the calibration used for the paper reproduction
// (high-end air cooling, §V-D).
func DefaultParams() Params {
	return Params{RContact: 5e-5, HSink: 5800}
}

// layerThicknessM lists each layer's thickness in meters.
var layerThicknessM = [NumLayers]float64{
	0.15e-3,                            // interposer
	0.20e-3,                            // compute dies
	0.06e-3, 0.06e-3, 0.06e-3, 0.06e-3, // DRAM dies
	1.00e-3, // spreader
}

// Rect is a placed die region in grid cells ([X0,X1) x [Y0,Y1)).
type Rect struct {
	Name           string
	X0, Y0, X1, Y1 int
}

// Contains reports whether cell (x, y) is inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Cells returns the region's cell count.
func (r Rect) Cells() int { return (r.X1 - r.X0) * (r.Y1 - r.Y0) }

// Floorplan is the EHP package layout: 8 GPU chiplets (each with a DRAM
// stack directly above), 2 CPU clusters in the center (§II-A: central
// placement keeps CPU-to-DRAM distance uniform).
type Floorplan struct {
	GPU []Rect // 8 chiplets; DRAM stacks share the same footprint
	CPU []Rect // 2 clusters
}

// EHPFloorplan builds the Fig. 2 layout: two GPU clusters (2 chiplets each)
// per side, CPU clusters in the middle.
func EHPFloorplan() *Floorplan {
	fp := &Floorplan{}
	gpuAt := func(name string, x, y int) {
		fp.GPU = append(fp.GPU, Rect{Name: name, X0: x, Y0: y, X1: x + 10, Y1: y + 10})
	}
	// Left side: chiplets 0-3; right side: 4-7.
	gpuAt("G0", 2, 4)
	gpuAt("G1", 2, 18)
	gpuAt("G2", 13, 4)
	gpuAt("G3", 13, 18)
	gpuAt("G4", 33, 4)
	gpuAt("G5", 33, 18)
	gpuAt("G6", 44, 4)
	gpuAt("G7", 44, 18)
	fp.CPU = append(fp.CPU,
		Rect{Name: "C0", X0: 24, Y0: 5, X1: 32, Y1: 15},
		Rect{Name: "C1", X0: 24, Y0: 17, X1: 32, Y1: 27},
	)
	return fp
}

// PowerAssignment is the per-component dissipation fed into the grid.
type PowerAssignment struct {
	GPUChipletW []float64 // len 8: CU + chiplet-local NoC power
	HBMStackW   []float64 // len 8: per-stack DRAM power (split over 4 dies)
	CPUW        float64   // total CPU-cluster power
	InterposerW float64   // NoC + system power in the interposer layer
}

// Solution is a solved steady-state temperature field.
type Solution struct {
	TempC      [NumLayers][]float64 // NX*NY per layer
	AmbientC   float64
	Iterations int
	fp         *Floorplan
}

// at returns the temperature of cell (x,y) in a layer.
func (s *Solution) at(layer, x, y int) float64 { return s.TempC[layer][y*NX+x] }

// PeakDRAMTempC returns the hottest cell across all DRAM dies (the Fig. 10
// metric: peak in-package 3D-DRAM temperature).
func (s *Solution) PeakDRAMTempC() float64 {
	peak := math.Inf(-1)
	for l := LayerDRAM0; l <= LayerDRAM3; l++ {
		for _, g := range s.fp.GPU {
			for y := g.Y0; y < g.Y1; y++ {
				for x := g.X0; x < g.X1; x++ {
					if t := s.at(l, x, y); t > peak {
						peak = t
					}
				}
			}
		}
	}
	return peak
}

// PeakLayerTempC returns the hottest cell in one layer.
func (s *Solution) PeakLayerTempC(layer int) float64 {
	peak := math.Inf(-1)
	for _, t := range s.TempC[layer] {
		if t > peak {
			peak = t
		}
	}
	return peak
}

// HeatMap returns a copy of one layer's temperature grid indexed [y][x]
// (Fig. 11 uses LayerDRAM0, the bottom-most DRAM die).
func (s *Solution) HeatMap(layer int) [][]float64 {
	out := make([][]float64, NY)
	for y := 0; y < NY; y++ {
		row := make([]float64, NX)
		for x := 0; x < NX; x++ {
			row[x] = s.at(layer, x, y)
		}
		out[y] = row
	}
	return out
}

// ASCIIMap renders a layer as a coarse character heat map for terminals;
// hotter cells get denser glyphs.
func (s *Solution) ASCIIMap(layer int) string {
	glyphs := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range s.TempC[layer] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "layer %d: %.1fC (light) .. %.1fC (dark)\n", layer, lo, hi)
	for y := 0; y < NY; y += 2 { // halve vertical resolution for aspect ratio
		for x := 0; x < NX; x++ {
			t := (s.at(layer, x, y) + s.at(layer, x, min(y+1, NY-1))) / 2
			idx := int((t - lo) / (hi - lo) * float64(len(glyphs)-1))
			b.WriteByte(glyphs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Solve computes the steady-state temperature field for a power assignment
// with the default boundary parameters.
func Solve(fp *Floorplan, p PowerAssignment, ambientC float64) (*Solution, error) {
	return SolveWithParams(fp, p, ambientC, DefaultParams())
}

// SolveWithParams is Solve with explicit boundary parameters.
func SolveWithParams(fp *Floorplan, p PowerAssignment, ambientC float64, prm Params) (*Solution, error) {
	return SolveObserved(fp, p, ambientC, prm, nil, nil)
}

// SolveObserved is SolveWithParams with observability sinks: it counts
// solves and iterations, records convergence, and (when tracing) samples the
// SOR residual every 50 iterations so a stalled solve is visible in the
// trace. When both sinks are nil the process-default scope is consulted.
func SolveObserved(fp *Floorplan, p PowerAssignment, ambientC float64, prm Params, reg *obs.Registry, tracer *obs.Tracer) (*Solution, error) {
	if reg == nil && tracer == nil {
		sc := obs.Default()
		reg, tracer = sc.Reg, sc.Tr
	}
	if len(p.GPUChipletW) != len(fp.GPU) {
		return nil, errors.New("thermal: GPU power count mismatch")
	}
	if len(p.HBMStackW) != len(fp.GPU) {
		return nil, errors.New("thermal: HBM power count mismatch")
	}

	n := NX * NY
	cellA := (CellMM * 1e-3) * (CellMM * 1e-3) // m^2

	// Conductivity per cell per layer (silicon where a die is present,
	// underfill elsewhere, copper for the spreader).
	kOf := func(layer, x, y int) float64 {
		switch layer {
		case LayerInterposer:
			return kSilicon
		case LayerSpreader:
			return kCopper
		case LayerCompute:
			for _, r := range fp.GPU {
				if r.Contains(x, y) {
					return kSilicon
				}
			}
			for _, r := range fp.CPU {
				if r.Contains(x, y) {
					return kSilicon
				}
			}
			return kUnderfill
		default:
			// DRAM dies sit above the GPU chiplets; everywhere else
			// the stack height is made up with dummy-silicon spacers
			// (standard practice for planarity and heat removal), so
			// CPU heat still has a low-resistance path to the sink.
			return kSilicon
		}
	}

	// Power per cell.
	pw := [NumLayers][]float64{}
	for l := range pw {
		pw[l] = make([]float64, n)
	}
	// CU power concentrates in the chiplet's compute core (the SIMD array
	// occupies the center; cache/IO periphery dissipates far less), which
	// is what makes GPU-heavy operating points produce the Fig. 11 hot
	// spots. DRAM power spreads over the whole stack footprint.
	const coreShare = 0.85
	for i, r := range fp.GPU {
		core := Rect{X0: r.X0 + 1, Y0: r.Y0 + 1, X1: r.X1 - 1, Y1: r.Y1 - 1}
		corePerCell := p.GPUChipletW[i] * coreShare / float64(core.Cells())
		periCells := r.Cells() - core.Cells()
		periPerCell := p.GPUChipletW[i] * (1 - coreShare) / float64(periCells)
		hbmPerCellPerDie := p.HBMStackW[i] / float64(r.Cells()) / 4
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				if core.Contains(x, y) {
					pw[LayerCompute][y*NX+x] += corePerCell
				} else {
					pw[LayerCompute][y*NX+x] += periPerCell
				}
				for l := LayerDRAM0; l <= LayerDRAM3; l++ {
					pw[l][y*NX+x] += hbmPerCellPerDie
				}
			}
		}
	}
	var cpuCells int
	for _, r := range fp.CPU {
		cpuCells += r.Cells()
	}
	for _, r := range fp.CPU {
		perCell := p.CPUW / float64(cpuCells)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				pw[LayerCompute][y*NX+x] += perCell
			}
		}
	}
	for i := 0; i < n; i++ {
		pw[LayerInterposer][i] += p.InterposerW / float64(n)
	}

	// Precompute conductances.
	lateralG := func(layer, x1, y1, x2, y2 int) float64 {
		// Series of two half-cells.
		k1 := kOf(layer, x1, y1)
		k2 := kOf(layer, x2, y2)
		t := layerThicknessM[layer]
		area := t * CellMM * 1e-3
		halfL := CellMM * 1e-3 / 2
		r := halfL/(k1*area) + halfL/(k2*area)
		return 1 / r
	}
	verticalG := func(l1, l2, x, y int) float64 {
		k1 := kOf(l1, x, y)
		k2 := kOf(l2, x, y)
		r := layerThicknessM[l1]/(2*k1*cellA) + layerThicknessM[l2]/(2*k2*cellA) + prm.RContact/cellA
		return 1 / r
	}
	gSink := prm.HSink * cellA
	gBoard := hBoardWm2K * cellA

	var sol Solution
	sol.AmbientC = ambientC
	sol.fp = fp
	for l := range sol.TempC {
		sol.TempC[l] = make([]float64, n)
		for i := range sol.TempC[l] {
			sol.TempC[l][i] = ambientC + 10
		}
	}

	const (
		omega   = 1.85
		maxIter = 20000
		tol     = 1e-4
	)
	T := &sol.TempC
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for l := 0; l < NumLayers; l++ {
			for y := 0; y < NY; y++ {
				for x := 0; x < NX; x++ {
					i := y*NX + x
					var gSum, gtSum float64
					// Lateral neighbours.
					if x > 0 {
						g := lateralG(l, x, y, x-1, y)
						gSum += g
						gtSum += g * T[l][i-1]
					}
					if x < NX-1 {
						g := lateralG(l, x, y, x+1, y)
						gSum += g
						gtSum += g * T[l][i+1]
					}
					if y > 0 {
						g := lateralG(l, x, y, x, y-1)
						gSum += g
						gtSum += g * T[l][i-NX]
					}
					if y < NY-1 {
						g := lateralG(l, x, y, x, y+1)
						gSum += g
						gtSum += g * T[l][i+NX]
					}
					// Vertical neighbours and boundaries.
					if l > 0 {
						g := verticalG(l, l-1, x, y)
						gSum += g
						gtSum += g * T[l-1][i]
					} else {
						gSum += gBoard
						gtSum += gBoard * ambientC
					}
					if l < NumLayers-1 {
						g := verticalG(l, l+1, x, y)
						gSum += g
						gtSum += g * T[l+1][i]
					} else {
						gSum += gSink
						gtSum += gSink * ambientC
					}
					tNew := (gtSum + pw[l][i]) / gSum
					tRelaxed := T[l][i] + omega*(tNew-T[l][i])
					if d := math.Abs(tRelaxed - T[l][i]); d > maxDelta {
						maxDelta = d
					}
					T[l][i] = tRelaxed
				}
			}
		}
		sol.Iterations = iter + 1
		if tracer != nil && iter%50 == 0 {
			tracer.CounterEvent("thermal.sor_residual", float64(iter),
				obs.PIDThermal, map[string]any{"max_delta_c": maxDelta})
		}
		if maxDelta < tol {
			recordSolve(reg, &sol, true)
			return &sol, nil
		}
	}
	recordSolve(reg, &sol, false)
	return &sol, errors.New("thermal: SOR did not converge")
}

// recordSolve writes one solve's outcome into the registry.
func recordSolve(reg *obs.Registry, sol *Solution, converged bool) {
	if reg == nil {
		return
	}
	reg.Counter("thermal.solves").Inc()
	if !converged {
		reg.Counter("thermal.nonconverged").Inc()
	}
	reg.Histogram("thermal.iterations", []float64{
		100, 200, 500, 1000, 2000, 5000, 10000, 20000,
	}).Observe(float64(sol.Iterations))
	reg.Gauge("thermal.last_iterations").Set(float64(sol.Iterations))
	reg.Gauge("thermal.peak_dram_temp_c").SetMax(sol.PeakDRAMTempC())
}
