// Package thermal implements a HotSpot-style compact thermal model of the
// EHP package (paper §V-D): a layered 3D resistance grid covering the active
// interposer, the compute (GPU/CPU chiplet) layer, the four in-package DRAM
// dies stacked above each GPU chiplet, and a copper spreader cooled by a
// high-end air cooler at 50 C ambient in a 2U chassis. A successive
// over-relaxation solve yields the steady-state temperature field, from
// which peak DRAM temperature (Fig. 10) and the bottom-most DRAM die's heat
// map (Fig. 11) are extracted. DRAM must stay below 85 C to avoid raising
// the refresh rate.
package thermal

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"

	"ena/internal/obs"
)

// Package geometry: 1 mm grid cells over a 56 x 32 mm package substrate.
const (
	NX     = 56
	NY     = 32
	CellMM = 1.0
)

// Layer indices (bottom to top).
const (
	LayerInterposer = 0
	LayerCompute    = 1
	LayerDRAM0      = 2 // bottom-most DRAM die — the Fig. 11 subject
	LayerDRAM1      = 3
	LayerDRAM2      = 4
	LayerDRAM3      = 5
	LayerSpreader   = 6
	NumLayers       = 7
)

// DRAMTempLimitC is the refresh-rate threshold (§V-D).
const DRAMTempLimitC = 85.0

// DefaultAmbientC is the 2U-chassis ambient assumed by the paper.
const DefaultAmbientC = 50.0

// Material parameters.
const (
	kSilicon   = 120.0 // W/(m K)
	kUnderfill = 1.2
	kCopper    = 400.0
	hBoardWm2K = 150 // leakage path into the board below the interposer
)

// Params are the calibratable boundary parameters of the package model.
type Params struct {
	// RContact is the bond/TIM interface resistance per face (m^2 K/W);
	// microbump + underfill layers between stacked dies.
	RContact float64
	// HSink is the effective air-cooler convection coefficient at the
	// spreader top (W/(m^2 K)).
	HSink float64
}

// DefaultParams returns the calibration used for the paper reproduction
// (high-end air cooling, §V-D).
func DefaultParams() Params {
	return Params{RContact: 5e-5, HSink: 5800}
}

// layerThicknessM lists each layer's thickness in meters.
var layerThicknessM = [NumLayers]float64{
	0.15e-3,                            // interposer
	0.20e-3,                            // compute dies
	0.06e-3, 0.06e-3, 0.06e-3, 0.06e-3, // DRAM dies
	1.00e-3, // spreader
}

// Rect is a placed die region in grid cells ([X0,X1) x [Y0,Y1)).
type Rect struct {
	Name           string
	X0, Y0, X1, Y1 int
}

// Contains reports whether cell (x, y) is inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Cells returns the region's cell count.
func (r Rect) Cells() int { return (r.X1 - r.X0) * (r.Y1 - r.Y0) }

// Floorplan is the EHP package layout: 8 GPU chiplets (each with a DRAM
// stack directly above), 2 CPU clusters in the center (§II-A: central
// placement keeps CPU-to-DRAM distance uniform).
type Floorplan struct {
	GPU []Rect // 8 chiplets; DRAM stacks share the same footprint
	CPU []Rect // 2 clusters
}

// EHPFloorplan builds the Fig. 2 layout: two GPU clusters (2 chiplets each)
// per side, CPU clusters in the middle.
func EHPFloorplan() *Floorplan {
	fp := &Floorplan{}
	gpuAt := func(name string, x, y int) {
		fp.GPU = append(fp.GPU, Rect{Name: name, X0: x, Y0: y, X1: x + 10, Y1: y + 10})
	}
	// Left side: chiplets 0-3; right side: 4-7.
	gpuAt("G0", 2, 4)
	gpuAt("G1", 2, 18)
	gpuAt("G2", 13, 4)
	gpuAt("G3", 13, 18)
	gpuAt("G4", 33, 4)
	gpuAt("G5", 33, 18)
	gpuAt("G6", 44, 4)
	gpuAt("G7", 44, 18)
	fp.CPU = append(fp.CPU,
		Rect{Name: "C0", X0: 24, Y0: 5, X1: 32, Y1: 15},
		Rect{Name: "C1", X0: 24, Y0: 17, X1: 32, Y1: 27},
	)
	return fp
}

// PowerAssignment is the per-component dissipation fed into the grid.
type PowerAssignment struct {
	GPUChipletW []float64 // len 8: CU + chiplet-local NoC power
	HBMStackW   []float64 // len 8: per-stack DRAM power (split over 4 dies)
	CPUW        float64   // total CPU-cluster power
	InterposerW float64   // NoC + system power in the interposer layer
}

// Solution is a solved steady-state temperature field.
type Solution struct {
	TempC      [NumLayers][]float64 // NX*NY per layer
	AmbientC   float64
	Iterations int
	fp         *Floorplan
}

// at returns the temperature of cell (x,y) in a layer.
func (s *Solution) at(layer, x, y int) float64 { return s.TempC[layer][y*NX+x] }

// PeakDRAMTempC returns the hottest cell across all DRAM dies (the Fig. 10
// metric: peak in-package 3D-DRAM temperature).
func (s *Solution) PeakDRAMTempC() float64 {
	peak := math.Inf(-1)
	for l := LayerDRAM0; l <= LayerDRAM3; l++ {
		for _, g := range s.fp.GPU {
			for y := g.Y0; y < g.Y1; y++ {
				for x := g.X0; x < g.X1; x++ {
					if t := s.at(l, x, y); t > peak {
						peak = t
					}
				}
			}
		}
	}
	return peak
}

// PeakLayerTempC returns the hottest cell in one layer.
func (s *Solution) PeakLayerTempC(layer int) float64 {
	peak := math.Inf(-1)
	for _, t := range s.TempC[layer] {
		if t > peak {
			peak = t
		}
	}
	return peak
}

// HeatMap returns a copy of one layer's temperature grid indexed [y][x]
// (Fig. 11 uses LayerDRAM0, the bottom-most DRAM die).
func (s *Solution) HeatMap(layer int) [][]float64 {
	out := make([][]float64, NY)
	for y := 0; y < NY; y++ {
		row := make([]float64, NX)
		for x := 0; x < NX; x++ {
			row[x] = s.at(layer, x, y)
		}
		out[y] = row
	}
	return out
}

// ASCIIMap renders a layer as a coarse character heat map for terminals;
// hotter cells get denser glyphs.
func (s *Solution) ASCIIMap(layer int) string {
	glyphs := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range s.TempC[layer] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "layer %d: %.1fC (light) .. %.1fC (dark)\n", layer, lo, hi)
	for y := 0; y < NY; y += 2 { // halve vertical resolution for aspect ratio
		for x := 0; x < NX; x++ {
			t := (s.at(layer, x, y) + s.at(layer, x, min(y+1, NY-1))) / 2
			idx := int((t - lo) / (hi - lo) * float64(len(glyphs)-1))
			b.WriteByte(glyphs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Solve computes the steady-state temperature field for a power assignment
// with the default boundary parameters.
func Solve(fp *Floorplan, p PowerAssignment, ambientC float64) (*Solution, error) {
	return SolveWithParams(fp, p, ambientC, DefaultParams())
}

// SolveWithParams is Solve with explicit boundary parameters.
func SolveWithParams(fp *Floorplan, p PowerAssignment, ambientC float64, prm Params) (*Solution, error) {
	return SolveObserved(fp, p, ambientC, prm, nil, nil)
}

// SolveObserved is SolveWithParams with observability sinks: it counts
// solves and iterations, records convergence, and (when tracing) samples the
// SOR residual periodically so a stalled solve is visible in the trace. When
// both sinks are nil the process-default scope is consulted.
func SolveObserved(fp *Floorplan, p PowerAssignment, ambientC float64, prm Params, reg *obs.Registry, tracer *obs.Tracer) (*Solution, error) {
	return solveObservedWorkers(fp, p, ambientC, prm, reg, tracer, runtime.GOMAXPROCS(0))
}

// solveObservedWorkers runs one solve with an explicit sweep-worker count
// (callers that already fan out whole solves, like LinearModel, pass 1).
func solveObservedWorkers(fp *Floorplan, p PowerAssignment, ambientC float64, prm Params, reg *obs.Registry, tracer *obs.Tracer, workers int) (*Solution, error) {
	if reg == nil && tracer == nil {
		sc := obs.Default()
		reg, tracer = sc.Reg, sc.Tr
	}
	if len(p.GPUChipletW) != len(fp.GPU) {
		return nil, errors.New("thermal: GPU power count mismatch")
	}
	if len(p.HBMStackW) != len(fp.GPU) {
		return nil, errors.New("thermal: HBM power count mismatch")
	}

	pw := powerDensity(fp, p)
	st := buildStencil(fp, &pw, ambientC, prm)

	var sol Solution
	sol.AmbientC = ambientC
	sol.fp = fp
	for l := range sol.TempC {
		sol.TempC[l] = make([]float64, NX*NY)
		for i := range sol.TempC[l] {
			sol.TempC[l][i] = ambientC + 10
		}
	}

	iters, err := st.runSOR(&sol.TempC, workers, tracer)
	sol.Iterations = iters
	recordSolve(reg, &sol, err == nil)
	return &sol, err
}

// kOf returns the thermal conductivity of a cell: silicon where a die is
// present, underfill elsewhere in the compute layer, copper for the
// spreader. DRAM layers are silicon everywhere — off-stack area is made up
// with dummy-silicon spacers (standard practice for planarity and heat
// removal), so CPU heat still has a low-resistance path to the sink.
func kOf(fp *Floorplan, layer, x, y int) float64 {
	switch layer {
	case LayerInterposer:
		return kSilicon
	case LayerSpreader:
		return kCopper
	case LayerCompute:
		for _, r := range fp.GPU {
			if r.Contains(x, y) {
				return kSilicon
			}
		}
		for _, r := range fp.CPU {
			if r.Contains(x, y) {
				return kSilicon
			}
		}
		return kUnderfill
	default:
		return kSilicon
	}
}

// powerDensity spreads a PowerAssignment over the grid. CU power
// concentrates in the chiplet's compute core (the SIMD array occupies the
// center; cache/IO periphery dissipates far less), which is what makes
// GPU-heavy operating points produce the Fig. 11 hot spots. DRAM power
// spreads over the whole stack footprint.
func powerDensity(fp *Floorplan, p PowerAssignment) [NumLayers][]float64 {
	n := NX * NY
	pw := [NumLayers][]float64{}
	for l := range pw {
		pw[l] = make([]float64, n)
	}
	const coreShare = 0.85
	for i, r := range fp.GPU {
		core := Rect{X0: r.X0 + 1, Y0: r.Y0 + 1, X1: r.X1 - 1, Y1: r.Y1 - 1}
		corePerCell := p.GPUChipletW[i] * coreShare / float64(core.Cells())
		periCells := r.Cells() - core.Cells()
		periPerCell := p.GPUChipletW[i] * (1 - coreShare) / float64(periCells)
		hbmPerCellPerDie := p.HBMStackW[i] / float64(r.Cells()) / 4
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				if core.Contains(x, y) {
					pw[LayerCompute][y*NX+x] += corePerCell
				} else {
					pw[LayerCompute][y*NX+x] += periPerCell
				}
				for l := LayerDRAM0; l <= LayerDRAM3; l++ {
					pw[l][y*NX+x] += hbmPerCellPerDie
				}
			}
		}
	}
	var cpuCells int
	for _, r := range fp.CPU {
		cpuCells += r.Cells()
	}
	for _, r := range fp.CPU {
		perCell := p.CPUW / float64(cpuCells)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				pw[LayerCompute][y*NX+x] += perCell
			}
		}
	}
	for i := 0; i < n; i++ {
		pw[LayerInterposer][i] += p.InterposerW / float64(n)
	}
	return pw
}

// stencil is the precomputed seven-point stencil: per-cell neighbour
// conductances (zero across package edges and stack ends, so the sweep
// needs no boundary branches beyond index clamping), the inverted diagonal
// including the board/sink boundary terms, and the right-hand side
// (injected power plus boundary conductance times ambient). Hoisting this
// out of the iteration loop removes the per-cell floorplan scans that
// dominated the legacy solver.
type stencil struct {
	cXm, cXp [NumLayers][]float64 // west/east lateral conductances
	cYm, cYp [NumLayers][]float64 // south/north lateral conductances
	cDn, cUp [NumLayers][]float64 // inter-layer conductances
	invG     [NumLayers][]float64 // 1 / (Σ neighbour g + boundary g)
	rhs      [NumLayers][]float64 // power + boundary g × ambient
}

func buildStencil(fp *Floorplan, pw *[NumLayers][]float64, ambientC float64, prm Params) *stencil {
	n := NX * NY
	cellM := CellMM * 1e-3
	cellA := cellM * cellM
	gSink := prm.HSink * cellA
	gBoard := hBoardWm2K * cellA

	var k [NumLayers][]float64
	for l := range k {
		k[l] = make([]float64, n)
		for y := 0; y < NY; y++ {
			for x := 0; x < NX; x++ {
				k[l][y*NX+x] = kOf(fp, l, x, y)
			}
		}
	}

	st := &stencil{}
	for l := 0; l < NumLayers; l++ {
		for _, arr := range []*[NumLayers][]float64{&st.cXm, &st.cXp, &st.cYm, &st.cYp, &st.cDn, &st.cUp, &st.invG, &st.rhs} {
			arr[l] = make([]float64, n)
		}
		t := layerThicknessM[l]
		area := t * cellM // lateral conduction cross-section
		halfL := cellM / 2
		for y := 0; y < NY; y++ {
			for x := 0; x < NX; x++ {
				i := y*NX + x
				k0 := k[l][i]
				// Lateral: series of two half-cells.
				lat := func(k1 float64) float64 {
					return 1 / (halfL/(k0*area) + halfL/(k1*area))
				}
				if x > 0 {
					st.cXm[l][i] = lat(k[l][i-1])
				}
				if x < NX-1 {
					st.cXp[l][i] = lat(k[l][i+1])
				}
				if y > 0 {
					st.cYm[l][i] = lat(k[l][i-NX])
				}
				if y < NY-1 {
					st.cYp[l][i] = lat(k[l][i+NX])
				}
				// Vertical: two half-thicknesses plus the bond interface.
				if l > 0 {
					st.cDn[l][i] = 1 / (t/(2*k0*cellA) + layerThicknessM[l-1]/(2*k[l-1][i]*cellA) + prm.RContact/cellA)
				}
				if l < NumLayers-1 {
					st.cUp[l][i] = 1 / (t/(2*k0*cellA) + layerThicknessM[l+1]/(2*k[l+1][i]*cellA) + prm.RContact/cellA)
				}
				gSum := st.cXm[l][i] + st.cXp[l][i] + st.cYm[l][i] + st.cYp[l][i] + st.cDn[l][i] + st.cUp[l][i]
				rhs := pw[l][i]
				if l == 0 {
					gSum += gBoard
					rhs += gBoard * ambientC
				}
				if l == NumLayers-1 {
					gSum += gSink
					rhs += gSink * ambientC
				}
				st.invG[l][i] = 1 / gSum
				st.rhs[l][i] = rhs
			}
		}
	}
	return st
}

// Solver constants. Red-black ordering converges to the same fixed point as
// the legacy natural-order sweep (it is Gauss-Seidel under a different
// update order; the fixed point is order-independent), so tolerance and
// iteration cap carry over unchanged.
const (
	omega      = 1.85
	maxIter    = 20000
	tol        = 1e-4
	convStride = 4 // convergence (max per-cell delta) checked every 4th sweep
)

// sweepRows relaxes every cell of one color in the flattened (layer,row)
// range [r0, r1). Cell (x, y, l) is red when (x+y+l) is even: every
// neighbour differs by one in exactly one coordinate, so a color sweep only
// reads opposite-color cells and is safe to run concurrently over disjoint
// row slabs. When track is set the maximum relaxation delta is returned.
func (st *stencil) sweepRows(T *[NumLayers][]float64, color, r0, r1 int, track bool) float64 {
	maxDelta := 0.0
	for r := r0; r < r1; r++ {
		l, y := r/NY, r%NY
		base := y * NX
		row := T[l][base : base+NX : base+NX]
		// Clamped neighbour rows: at a boundary the matching coefficient is
		// zero, so the duplicated in-bounds read contributes nothing.
		south, north := row, row
		if y > 0 {
			south = T[l][base-NX : base : base]
		}
		if y < NY-1 {
			north = T[l][base+NX : base+2*NX : base+2*NX]
		}
		below, above := row, row
		if l > 0 {
			below = T[l-1][base : base+NX : base+NX]
		}
		if l < NumLayers-1 {
			above = T[l+1][base : base+NX : base+NX]
		}
		cxm := st.cXm[l][base : base+NX]
		cxp := st.cXp[l][base : base+NX]
		cym := st.cYm[l][base : base+NX]
		cyp := st.cYp[l][base : base+NX]
		cdn := st.cDn[l][base : base+NX]
		cup := st.cUp[l][base : base+NX]
		invg := st.invG[l][base : base+NX]
		rhs := st.rhs[l][base : base+NX]
		for x := (color + l + y) & 1; x < NX; x += 2 {
			xm, xp := x-1, x+1
			if xm < 0 {
				xm = 0 // cXm is zero at the west edge
			}
			if xp > NX-1 {
				xp = NX - 1 // cXp is zero at the east edge
			}
			t := row[x]
			tNew := (cxm[x]*row[xm] + cxp[x]*row[xp] +
				cym[x]*south[x] + cyp[x]*north[x] +
				cdn[x]*below[x] + cup[x]*above[x] + rhs[x]) * invg[x]
			tRelaxed := t + omega*(tNew-t)
			if track {
				if d := math.Abs(tRelaxed - t); d > maxDelta {
					maxDelta = d
				}
			}
			row[x] = tRelaxed
		}
	}
	return maxDelta
}

// sweepCmd asks a pool worker for one color sweep over its slab.
type sweepCmd struct {
	color int
	track bool
}

// sweepPool fans color sweeps across persistent workers, each owning a
// contiguous slab of the NumLayers*NY flattened rows. The channel
// send/receive pairs double as the inter-sweep barrier (happens-before for
// the temperature array); within one color sweep workers only write their
// own slab's cells of that color and read opposite-color cells, so
// concurrent slabs never race.
type sweepPool struct {
	workers int
	cmds    []chan sweepCmd
	res     chan float64
}

func newSweepPool(st *stencil, T *[NumLayers][]float64, workers int) *sweepPool {
	totalRows := NumLayers * NY
	p := &sweepPool{workers: workers, res: make(chan float64, workers)}
	per := (totalRows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := min(w*per, totalRows)
		hi := min(lo+per, totalRows)
		cmd := make(chan sweepCmd)
		p.cmds = append(p.cmds, cmd)
		go func(lo, hi int, cmd chan sweepCmd) {
			for c := range cmd {
				p.res <- st.sweepRows(T, c.color, lo, hi, c.track)
			}
		}(lo, hi, cmd)
	}
	return p
}

func (p *sweepPool) sweep(color int, track bool) float64 {
	for _, c := range p.cmds {
		c <- sweepCmd{color: color, track: track}
	}
	maxDelta := 0.0
	for i := 0; i < p.workers; i++ {
		if d := <-p.res; d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta
}

func (p *sweepPool) close() {
	for _, c := range p.cmds {
		close(c)
	}
}

// runSOR iterates red-black SOR to convergence and returns the sweep count.
func (st *stencil) runSOR(T *[NumLayers][]float64, workers int, tracer *obs.Tracer) (int, error) {
	totalRows := NumLayers * NY
	workers = min(workers, totalRows)
	var pool *sweepPool
	if workers > 1 {
		pool = newSweepPool(st, T, workers)
		defer pool.close()
	}
	for iter := 0; iter < maxIter; iter++ {
		track := (iter+1)%convStride == 0
		var maxDelta float64
		if pool != nil {
			maxDelta = max(pool.sweep(0, track), pool.sweep(1, track))
		} else {
			maxDelta = max(st.sweepRows(T, 0, 0, totalRows, track),
				st.sweepRows(T, 1, 0, totalRows, track))
		}
		if !track {
			continue
		}
		// ~every 50th sweep, as the legacy solver sampled.
		if tracer != nil && (iter+1)%(convStride*13) == 0 {
			tracer.CounterEvent("thermal.sor_residual", float64(iter),
				obs.PIDThermal, map[string]any{"max_delta_c": maxDelta})
		}
		if maxDelta < tol {
			return iter + 1, nil
		}
	}
	return maxIter, errors.New("thermal: SOR did not converge")
}

// recordSolve writes one solve's outcome into the registry.
func recordSolve(reg *obs.Registry, sol *Solution, converged bool) {
	if reg == nil {
		return
	}
	reg.Counter("thermal.solves").Inc()
	if !converged {
		reg.Counter("thermal.nonconverged").Inc()
	}
	reg.Histogram("thermal.iterations", []float64{
		100, 200, 500, 1000, 2000, 5000, 10000, 20000,
	}).Observe(float64(sol.Iterations))
	reg.Gauge("thermal.last_iterations").Set(float64(sol.Iterations))
	reg.Gauge("thermal.peak_dram_temp_c").SetMax(sol.PeakDRAMTempC())
}
