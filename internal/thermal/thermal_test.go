package thermal

import (
	"math"
	"strings"
	"testing"
)

func uniformAssignment(fp *Floorplan, gpuW, hbmW, cpuW, ipW float64) PowerAssignment {
	n := len(fp.GPU)
	pa := PowerAssignment{
		GPUChipletW: make([]float64, n),
		HBMStackW:   make([]float64, n),
		CPUW:        cpuW,
		InterposerW: ipW,
	}
	for i := 0; i < n; i++ {
		pa.GPUChipletW[i] = gpuW
		pa.HBMStackW[i] = hbmW
	}
	return pa
}

func TestFloorplanLayout(t *testing.T) {
	fp := EHPFloorplan()
	if len(fp.GPU) != 8 || len(fp.CPU) != 2 {
		t.Fatalf("floorplan has %d GPU, %d CPU regions", len(fp.GPU), len(fp.CPU))
	}
	// Regions stay on the package and do not overlap.
	all := append(append([]Rect{}, fp.GPU...), fp.CPU...)
	for i, r := range all {
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > NX || r.Y1 > NY {
			t.Errorf("region %s out of bounds", r.Name)
		}
		for j, s := range all {
			if i >= j {
				continue
			}
			if r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1 {
				t.Errorf("regions %s and %s overlap", r.Name, s.Name)
			}
		}
	}
	// CPU clusters sit in the central band (uniform CPU-to-DRAM distance,
	// §II-A).
	for _, c := range fp.CPU {
		if c.X0 < NX/3 || c.X1 > 2*NX/3 {
			t.Errorf("CPU cluster %s not central: x [%d,%d)", c.Name, c.X0, c.X1)
		}
	}
}

func TestSolveConverges(t *testing.T) {
	fp := EHPFloorplan()
	sol, err := Solve(fp, uniformAssignment(fp, 10, 2, 10, 10), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iterations <= 0 || sol.Iterations >= 20000 {
		t.Errorf("iterations = %d", sol.Iterations)
	}
	peak := sol.PeakDRAMTempC()
	if peak <= DefaultAmbientC {
		t.Errorf("peak %v not above ambient", peak)
	}
	if peak > 120 {
		t.Errorf("peak %v implausibly hot for ~100 W", peak)
	}
}

func TestZeroPowerIsAmbient(t *testing.T) {
	fp := EHPFloorplan()
	sol, err := Solve(fp, uniformAssignment(fp, 0, 0, 0, 0), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < NumLayers; l++ {
		if d := math.Abs(sol.PeakLayerTempC(l) - DefaultAmbientC); d > 0.1 {
			t.Errorf("layer %d deviates from ambient by %v with zero power", l, d)
		}
	}
}

func TestMorePowerHotter(t *testing.T) {
	fp := EHPFloorplan()
	lo, err := Solve(fp, uniformAssignment(fp, 6, 1, 8, 8), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Solve(fp, uniformAssignment(fp, 12, 2, 8, 8), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	if hi.PeakDRAMTempC() <= lo.PeakDRAMTempC() {
		t.Error("doubling chiplet power must raise the peak DRAM temperature")
	}
}

func TestLinearityInPower(t *testing.T) {
	// The RC network is linear: scaling all power by k scales the rise
	// over ambient by k.
	fp := EHPFloorplan()
	one, err := Solve(fp, uniformAssignment(fp, 5, 1, 4, 4), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Solve(fp, uniformAssignment(fp, 10, 2, 8, 8), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	rise1 := one.PeakDRAMTempC() - DefaultAmbientC
	rise2 := two.PeakDRAMTempC() - DefaultAmbientC
	if math.Abs(rise2-2*rise1) > 0.05*rise2 {
		t.Errorf("linearity violated: rises %v and %v", rise1, rise2)
	}
}

func TestLeftRightSymmetry(t *testing.T) {
	// Uniform power over the mirrored floorplan should give (nearly)
	// mirror-symmetric GPU hot spots.
	fp := EHPFloorplan()
	sol, err := Solve(fp, uniformAssignment(fp, 10, 2, 10, 10), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	hm := sol.HeatMap(LayerDRAM0)
	var maxDiff float64
	for y := 0; y < NY; y++ {
		for x := 0; x < NX/2; x++ {
			d := math.Abs(hm[y][x] - hm[y][NX-1-x])
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 1.5 {
		t.Errorf("left/right asymmetry = %v C", maxDiff)
	}
}

func TestHotSpotsOverGPUs(t *testing.T) {
	fp := EHPFloorplan()
	sol, err := Solve(fp, uniformAssignment(fp, 12, 2, 5, 5), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	hm := sol.HeatMap(LayerDRAM0)
	over := hm[fp.GPU[0].Y0+5][fp.GPU[0].X0+5] // center of chiplet G0
	corner := hm[0][0]                         // package corner, no die
	if over <= corner {
		t.Errorf("GPU hot spot %v not hotter than package corner %v", over, corner)
	}
}

func TestGradientAcrossStack(t *testing.T) {
	// Heat flows up to the sink: with GPU power below the DRAM stack, the
	// compute layer is the hottest and the spreader the coolest.
	fp := EHPFloorplan()
	sol, err := Solve(fp, uniformAssignment(fp, 12, 1, 5, 5), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	compute := sol.PeakLayerTempC(LayerCompute)
	dram := sol.PeakLayerTempC(LayerDRAM0)
	spreader := sol.PeakLayerTempC(LayerSpreader)
	if !(compute >= dram && dram >= spreader) {
		t.Errorf("stack gradient wrong: compute %v, DRAM %v, spreader %v",
			compute, dram, spreader)
	}
}

func TestPowerMismatchErrors(t *testing.T) {
	fp := EHPFloorplan()
	if _, err := Solve(fp, PowerAssignment{GPUChipletW: make([]float64, 3)}, 50); err == nil {
		t.Error("mismatched GPU power slice must error")
	}
	pa := PowerAssignment{GPUChipletW: make([]float64, 8), HBMStackW: make([]float64, 2)}
	if _, err := Solve(fp, pa, 50); err == nil {
		t.Error("mismatched HBM power slice must error")
	}
}

func TestASCIIMap(t *testing.T) {
	fp := EHPFloorplan()
	sol, err := Solve(fp, uniformAssignment(fp, 10, 2, 10, 10), DefaultAmbientC)
	if err != nil {
		t.Fatal(err)
	}
	m := sol.ASCIIMap(LayerDRAM0)
	lines := strings.Split(strings.TrimRight(m, "\n"), "\n")
	if len(lines) != NY/2+1 {
		t.Errorf("ASCII map has %d lines", len(lines))
	}
	for _, l := range lines[1:] {
		if len(l) != NX {
			t.Errorf("ASCII row width %d, want %d", len(l), NX)
		}
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{X0: 1, Y0: 2, X1: 4, Y1: 6}
	if !r.Contains(1, 2) || r.Contains(4, 2) || r.Contains(1, 6) {
		t.Error("Contains boundary semantics wrong (half-open)")
	}
	if r.Cells() != 12 {
		t.Errorf("Cells = %d", r.Cells())
	}
}
