package thermal

import (
	"math"
	"sync"
	"testing"
)

// The linear model takes ~18 full solves to build; share it across tests.
var (
	lmOnce sync.Once
	lm     *LinearModel
	lmErr  error
)

func linearModel(t *testing.T) *LinearModel {
	t.Helper()
	lmOnce.Do(func() {
		lm, lmErr = NewLinearModel(EHPFloorplan(), DefaultAmbientC, DefaultParams())
	})
	if lmErr != nil {
		t.Fatal(lmErr)
	}
	return lm
}

func TestLinearModelMatchesFullSolve(t *testing.T) {
	m := linearModel(t)
	fp := EHPFloorplan()
	cases := []PowerAssignment{
		uniformAssignment(fp, 10, 3, 8, 9),
		uniformAssignment(fp, 5, 1, 12, 4),
		uniformAssignment(fp, 14, 0.5, 2, 15),
	}
	// A deliberately non-uniform case.
	skew := uniformAssignment(fp, 6, 2, 8, 8)
	skew.GPUChipletW[0] = 18
	skew.HBMStackW[7] = 6
	cases = append(cases, skew)

	for i, pa := range cases {
		want, err := Solve(fp, pa, DefaultAmbientC)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.PeakDRAMTempC(pa)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got - want.PeakDRAMTempC()); d > 0.3 {
			t.Errorf("case %d: linear %v vs full %v (d=%.3f)", i, got, want.PeakDRAMTempC(), d)
		}
	}
}

func TestLinearModelZeroPower(t *testing.T) {
	m := linearModel(t)
	fp := EHPFloorplan()
	got, err := m.PeakDRAMTempC(uniformAssignment(fp, 0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-DefaultAmbientC) > 0.2 {
		t.Errorf("zero power peak = %v", got)
	}
}

func TestLinearModelShapeMismatch(t *testing.T) {
	m := linearModel(t)
	if _, err := m.PeakDRAMTempC(PowerAssignment{}); err != ErrBadAssignment {
		t.Errorf("expected ErrBadAssignment, got %v", err)
	}
}

func TestLinearModelSuperposition(t *testing.T) {
	// f(a+b) = f(a)+f(b)-ambient for peak taken at the same cell; verify
	// with proportional scaling where the identity is exact.
	m := linearModel(t)
	fp := EHPFloorplan()
	one, err := m.PeakDRAMTempC(uniformAssignment(fp, 4, 1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	three, err := m.PeakDRAMTempC(uniformAssignment(fp, 12, 3, 12, 12))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs((three - DefaultAmbientC) - 3*(one-DefaultAmbientC)); d > 1e-6 {
		t.Errorf("scaling identity violated by %v", d)
	}
}
