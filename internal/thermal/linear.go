package thermal

import (
	"errors"
	"runtime"
	"sync"
)

// The steady-state RC network is linear in the injected power, so the
// temperature field is a superposition of per-source unit responses. A
// LinearModel precomputes those responses once (a handful of full solves)
// and then evaluates arbitrary power assignments in microseconds — fast
// enough to put a thermal-feasibility constraint inside the design-space
// exploration (the §V-D analysis applied at §V scale).
type LinearModel struct {
	fp       *Floorplan
	ambientC float64
	// Unit responses: temperature rise per watt, per DRAM-layer cell,
	// for power injected into each GPU chiplet, each HBM stack, the CPU
	// clusters, and the interposer.
	gpuResp [][]float64 // [chiplet][layer-cell index over DRAM layers]
	hbmResp [][]float64
	cpuResp []float64
	ipResp  []float64
}

// dramCells is the flattened index space the model tracks: all four DRAM
// layers' cells (peak DRAM temperature is the §V-D metric).
const dramCells = 4 * NX * NY

// NewLinearModel builds the superposition model for a floorplan by solving
// unit-power cases with the given boundary parameters. The basis solves are
// independent, so they fan out across GOMAXPROCS goroutines; each solve
// then runs its sweeps single-threaded to avoid oversubscription.
func NewLinearModel(fp *Floorplan, ambientC float64, prm Params) (*LinearModel, error) {
	m := &LinearModel{fp: fp, ambientC: ambientC}
	n := len(fp.GPU)

	zero := func() PowerAssignment {
		return PowerAssignment{
			GPUChipletW: make([]float64, n),
			HBMStackW:   make([]float64, n),
		}
	}
	rise := func(pa PowerAssignment) ([]float64, error) {
		sol, err := solveObservedWorkers(fp, pa, ambientC, prm, nil, nil, 1)
		if err != nil {
			return nil, err
		}
		out := make([]float64, 0, dramCells)
		for l := LayerDRAM0; l <= LayerDRAM3; l++ {
			for _, t := range sol.TempC[l] {
				out = append(out, t-ambientC)
			}
		}
		return out, nil
	}

	// Exploit the floorplan's left/right mirror symmetry? Keep it simple
	// and exact: one solve per chiplet, plus CPU and interposer. Each basis
	// job writes its own response slot, so the fan-out needs no locking
	// beyond the error capture.
	m.gpuResp = make([][]float64, n)
	m.hbmResp = make([][]float64, n)
	type basisJob struct {
		pa  PowerAssignment
		dst *[]float64
	}
	jobs := make([]basisJob, 0, 2*n+2)
	for i := 0; i < n; i++ {
		pa := zero()
		pa.GPUChipletW[i] = 1
		jobs = append(jobs, basisJob{pa, &m.gpuResp[i]})

		pa = zero()
		pa.HBMStackW[i] = 1
		jobs = append(jobs, basisJob{pa, &m.hbmResp[i]})
	}
	pa := zero()
	pa.CPUW = 1
	jobs = append(jobs, basisJob{pa, &m.cpuResp})
	pa = zero()
	pa.InterposerW = 1
	jobs = append(jobs, basisJob{pa, &m.ipResp})

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for _, j := range jobs {
		wg.Add(1)
		go func(j basisJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := rise(j.pa)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			*j.dst = r
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// ErrBadAssignment reports a power assignment whose shape does not match
// the model's floorplan.
var ErrBadAssignment = errors.New("thermal: power assignment shape mismatch")

// PeakDRAMTempC evaluates the peak in-package DRAM temperature for a power
// assignment by superposing the unit responses. It matches Solve exactly
// (the network is linear) up to solver tolerance.
func (m *LinearModel) PeakDRAMTempC(p PowerAssignment) (float64, error) {
	n := len(m.fp.GPU)
	if len(p.GPUChipletW) != n || len(p.HBMStackW) != n {
		return 0, ErrBadAssignment
	}
	peak := 0.0
	// Only cells over GPU stacks can be the DRAM peak; iterate those.
	for l := 0; l < 4; l++ {
		for _, g := range m.fp.GPU {
			for y := g.Y0; y < g.Y1; y++ {
				for x := g.X0; x < g.X1; x++ {
					idx := l*NX*NY + y*NX + x
					t := m.cpuResp[idx]*p.CPUW + m.ipResp[idx]*p.InterposerW
					for i := 0; i < n; i++ {
						t += m.gpuResp[i][idx]*p.GPUChipletW[i] +
							m.hbmResp[i][idx]*p.HBMStackW[i]
					}
					if t > peak {
						peak = t
					}
				}
			}
		}
	}
	return m.ambientC + peak, nil
}
