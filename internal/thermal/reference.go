package thermal

import (
	"errors"
	"math"
)

// solveLegacy is the original natural-order scalar SOR sweep, with the
// conductance logic evaluated per cell per iteration. It is retained solely
// as the oracle for the red-black solver's property tests: both must relax
// to the same fixed point of the same resistance network, so agreement
// within solver tolerance on arbitrary power assignments validates the
// stencil precomputation and the checkerboard update order at once. Inputs
// are assumed validated by the caller.
func solveLegacy(fp *Floorplan, p PowerAssignment, ambientC float64, prm Params) (*Solution, error) {
	n := NX * NY
	cellA := (CellMM * 1e-3) * (CellMM * 1e-3)
	pw := powerDensity(fp, p)

	lateralG := func(layer, x1, y1, x2, y2 int) float64 {
		// Series of two half-cells.
		k1 := kOf(fp, layer, x1, y1)
		k2 := kOf(fp, layer, x2, y2)
		t := layerThicknessM[layer]
		area := t * CellMM * 1e-3
		halfL := CellMM * 1e-3 / 2
		r := halfL/(k1*area) + halfL/(k2*area)
		return 1 / r
	}
	verticalG := func(l1, l2, x, y int) float64 {
		k1 := kOf(fp, l1, x, y)
		k2 := kOf(fp, l2, x, y)
		r := layerThicknessM[l1]/(2*k1*cellA) + layerThicknessM[l2]/(2*k2*cellA) + prm.RContact/cellA
		return 1 / r
	}
	gSink := prm.HSink * cellA
	gBoard := hBoardWm2K * cellA

	var sol Solution
	sol.AmbientC = ambientC
	sol.fp = fp
	for l := range sol.TempC {
		sol.TempC[l] = make([]float64, n)
		for i := range sol.TempC[l] {
			sol.TempC[l][i] = ambientC + 10
		}
	}

	T := &sol.TempC
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for l := 0; l < NumLayers; l++ {
			for y := 0; y < NY; y++ {
				for x := 0; x < NX; x++ {
					i := y*NX + x
					var gSum, gtSum float64
					if x > 0 {
						g := lateralG(l, x, y, x-1, y)
						gSum += g
						gtSum += g * T[l][i-1]
					}
					if x < NX-1 {
						g := lateralG(l, x, y, x+1, y)
						gSum += g
						gtSum += g * T[l][i+1]
					}
					if y > 0 {
						g := lateralG(l, x, y, x, y-1)
						gSum += g
						gtSum += g * T[l][i-NX]
					}
					if y < NY-1 {
						g := lateralG(l, x, y, x, y+1)
						gSum += g
						gtSum += g * T[l][i+NX]
					}
					if l > 0 {
						g := verticalG(l, l-1, x, y)
						gSum += g
						gtSum += g * T[l-1][i]
					} else {
						gSum += gBoard
						gtSum += gBoard * ambientC
					}
					if l < NumLayers-1 {
						g := verticalG(l, l+1, x, y)
						gSum += g
						gtSum += g * T[l+1][i]
					} else {
						gSum += gSink
						gtSum += gSink * ambientC
					}
					tNew := (gtSum + pw[l][i]) / gSum
					tRelaxed := T[l][i] + omega*(tNew-T[l][i])
					if d := math.Abs(tRelaxed - T[l][i]); d > maxDelta {
						maxDelta = d
					}
					T[l][i] = tRelaxed
				}
			}
		}
		sol.Iterations = iter + 1
		if maxDelta < tol {
			return &sol, nil
		}
	}
	return &sol, errors.New("thermal: reference SOR did not converge")
}
