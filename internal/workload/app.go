package workload

import "fmt"

// The paper evaluates only each proxy's dominant kernel ("The applications
// consist of multiple kernels, but we only report data for the most
// dominant kernel", §IV footnote 3). This file models the full applications:
// a weighted sequence of kernels, so application-level numbers (and the §VI
// reconfiguration runtime) can account for the secondary phases too.

// AppPhase is one kernel's share of an application's floating-point work.
type AppPhase struct {
	Kernel Kernel
	Weight float64 // fraction of the app's flops spent in this kernel
}

// Application is a proxy app as a weighted kernel mix.
type Application struct {
	Name   string
	Phases []AppPhase
}

// Validate checks the phase structure.
func (a Application) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: application without a name")
	}
	if len(a.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", a.Name)
	}
	sum := 0.0
	for _, p := range a.Phases {
		if p.Weight <= 0 {
			return fmt.Errorf("workload %s: non-positive phase weight", a.Name)
		}
		if err := p.Kernel.Validate(); err != nil {
			return err
		}
		sum += p.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload %s: phase weights sum to %v", a.Name, sum)
	}
	return nil
}

// Dominant returns the heaviest phase's kernel (what the paper reports).
func (a Application) Dominant() Kernel {
	best := 0
	for i, p := range a.Phases {
		if p.Weight > a.Phases[best].Weight {
			best = i
		}
	}
	return a.Phases[best].Kernel
}

// variant derives a secondary-phase kernel from a base characterization.
func variant(base Kernel, name string, mutate func(*Kernel)) Kernel {
	k := base
	k.Name = name
	mutate(&k)
	return k
}

// Applications returns the proxy apps as kernel mixes: the Table I dominant
// kernel plus the secondary phases the paper's footnote acknowledges.
func Applications() []Application {
	comd := CoMD()
	lul := LULESH()
	snap := SNAP()
	amr := MiniAMR()

	return []Application{
		{
			Name: "CoMD",
			Phases: []AppPhase{
				{Kernel: comd, Weight: 0.80},
				// Neighbor-list rebuild: irregular, memory-heavy.
				{Kernel: variant(comd, "CoMD-neigh", func(k *Kernel) {
					k.Intensity = 1.2
					k.MaxUtilization = 0.30
					k.CacheLocality = 0.2
					k.Category = MemoryIntensive
					k.ThrashOPB = 0.12
					k.ThrashSlope = 1.5
				}), Weight: 0.15},
				// Velocity-Verlet integration: pure streaming.
				{Kernel: variant(comd, "CoMD-integrate", func(k *Kernel) {
					k.Intensity = 0.8
					k.MaxUtilization = 0.25
					k.MLPPerCU = 96
					k.Category = MemoryIntensive
					k.ThrashOPB = 0.15
					k.ThrashSlope = 1.0
				}), Weight: 0.05},
			},
		},
		{
			Name: "LULESH",
			Phases: []AppPhase{
				{Kernel: lul, Weight: 0.70},
				// Equation-of-state evaluation: compute-heavy per element.
				{Kernel: variant(lul, "LULESH-eos", func(k *Kernel) {
					k.Intensity = 9
					k.MaxUtilization = 0.55
					k.Activity = 0.7
					k.Category = Balanced
					k.ThrashSlope = 0
				}), Weight: 0.20},
				// Boundary/ghost exchange packing: streaming copies.
				{Kernel: variant(lul, "LULESH-pack", func(k *Kernel) {
					k.Intensity = 0.5
					k.MaxUtilization = 0.2
					k.MLPPerCU = 96
					k.WriteFrac = 0.5
				}), Weight: 0.10},
			},
		},
		{
			Name: "SNAP",
			Phases: []AppPhase{
				{Kernel: snap, Weight: 0.85},
				// Cross-group scattering source update: compute-leaning.
				{Kernel: variant(snap, "SNAP-source", func(k *Kernel) {
					k.Intensity = 6
					k.MaxUtilization = 0.5
					k.Activity = 0.6
					k.Category = Balanced
					k.ThrashSlope = 0
				}), Weight: 0.15},
			},
		},
		{
			Name: "MiniAMR",
			Phases: []AppPhase{
				{Kernel: amr, Weight: 0.75},
				// Refinement/coarsening: pointer-chasing mesh management.
				{Kernel: variant(amr, "MiniAMR-refine", func(k *Kernel) {
					k.Intensity = 0.7
					k.MaxUtilization = 0.15
					k.MLPPerCU = 10
					k.CacheLocality = 0.1
					k.SerialFrac = 0.02
				}), Weight: 0.25},
			},
		},
	}
}

// ApplicationByName finds one proxy app.
func ApplicationByName(name string) (Application, error) {
	for _, a := range Applications() {
		if a.Name == name {
			return a, nil
		}
	}
	return Application{}, fmt.Errorf("workload: unknown application %q", name)
}
