package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec-string grammar for the DL kernel generators (the wire form the
// service's /v1/simulate and the CLI accept). Colon-separated sections;
// dimension lists are 'x'-separated positive integers:
//
//	gemm:<M>x<N>x<K>:<dtype>[:t<TM>x<TN>x<TK>]
//	conv:<B>x<H>x<W>x<C>:<F>x<KH>x<KW>[:s<S>p<P>]:<dtype>[:t<TM>x<TN>x<TK>]
//	attn:<B>x<H>x<Lq>x<Lkv>x<D>:<dtype>[:tq<TQ>]
//
// Omitted tile/stride sections take the documented defaults. ParseDL
// returns the typed spec; its String() is the canonical form (defaults
// materialized, tiles clamped to the shape) and re-parses to itself — the
// fixed-point property the fuzz target pins, and what makes spec strings
// safe as cache keys and kernel names.

// ParseDL parses a DL kernel spec string.
func ParseDL(s string) (DLSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("workload: DL spec %q: want kind:dims:dtype[:tiles]", s)
	}
	kind := strings.ToLower(strings.TrimSpace(parts[0]))
	rest := parts[1:]
	switch kind {
	case "gemm":
		return parseGEMM(rest)
	case "conv":
		return parseConv(rest)
	case "attn":
		return parseAttn(rest)
	}
	return nil, fmt.Errorf("workload: unknown DL kernel kind %q (want gemm, conv or attn)", parts[0])
}

// ParseDLKernel parses a spec string and derives its Kernel.
func ParseDLKernel(s string) (Kernel, error) {
	spec, err := ParseDL(s)
	if err != nil {
		return Kernel{}, err
	}
	return spec.Kernel()
}

// ParseDtype resolves a dtype name.
func ParseDtype(s string) (Dtype, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fp64", "f64", "double":
		return FP64, nil
	case "fp32", "f32", "float":
		return FP32, nil
	case "fp16", "f16", "half":
		return FP16, nil
	case "bf16", "bfloat16":
		return BF16, nil
	case "int8", "i8":
		return INT8, nil
	}
	return 0, fmt.Errorf("workload: unknown dtype %q (want fp64, fp32, fp16, bf16 or int8)", s)
}

// dims parses an 'x'-separated list of exactly n positive integers.
func dims(s string, n int, what string) ([]int, error) {
	fields := strings.Split(s, "x")
	if len(fields) != n {
		return nil, fmt.Errorf("workload: %s %q: want %d 'x'-separated dimensions", what, s, n)
	}
	out := make([]int, n)
	for i, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("workload: %s %q: bad dimension %q", what, s, f)
		}
		if v <= 0 {
			return nil, fmt.Errorf("workload: %s %q: dimension %d must be positive", what, s, v)
		}
		// Dimensions are operand extents; bound them so derived products
		// stay well inside float64-exact integer range.
		if v > 1<<24 {
			return nil, fmt.Errorf("workload: %s %q: dimension %d too large (max %d)", what, s, v, 1<<24)
		}
		out[i] = v
	}
	return out, nil
}

// tileSection parses an optional trailing "t<TM>x<TN>x<TK>" section.
func tileSection(s string) (tm, tn, tk int, err error) {
	if !strings.HasPrefix(s, "t") {
		return 0, 0, 0, fmt.Errorf("workload: tile section %q: want t<M>x<N>x<K>", s)
	}
	d, err := dims(s[1:], 3, "tile")
	if err != nil {
		return 0, 0, 0, err
	}
	return d[0], d[1], d[2], nil
}

func parseGEMM(parts []string) (DLSpec, error) {
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("workload: gemm spec: want gemm:MxNxK:dtype[:tTMxTNxTK]")
	}
	d, err := dims(parts[0], 3, "gemm shape")
	if err != nil {
		return nil, err
	}
	dt, err := ParseDtype(parts[1])
	if err != nil {
		return nil, err
	}
	g := NewGEMM(d[0], d[1], d[2], dt)
	if len(parts) == 3 {
		if g.TileM, g.TileN, g.TileK, err = tileSection(parts[2]); err != nil {
			return nil, err
		}
	}
	g = g.normalized()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseConv(parts []string) (DLSpec, error) {
	if len(parts) < 3 || len(parts) > 5 {
		return nil, fmt.Errorf("workload: conv spec: want conv:BxHxWxC:FxKHxKW[:sSpP]:dtype[:tTMxTNxTK]")
	}
	in, err := dims(parts[0], 4, "conv input")
	if err != nil {
		return nil, err
	}
	filt, err := dims(parts[1], 3, "conv filter")
	if err != nil {
		return nil, err
	}
	c := ConvSpec{
		Batch: in[0], H: in[1], W: in[2], InC: in[3],
		OutC: filt[0], KH: filt[1], KW: filt[2],
		Stride: 1, Pad: filt[1] / 2,
	}
	rest := parts[2:]
	// Optional stride/pad section.
	if strings.HasPrefix(rest[0], "s") {
		sp := rest[0][1:]
		i := strings.IndexByte(sp, 'p')
		if i < 0 {
			return nil, fmt.Errorf("workload: conv stride section %q: want s<stride>p<pad>", rest[0])
		}
		if c.Stride, err = strconv.Atoi(sp[:i]); err != nil {
			return nil, fmt.Errorf("workload: conv stride %q: %v", sp[:i], err)
		}
		if c.Stride <= 0 {
			// Explicit zero would otherwise be indistinguishable from the
			// omitted-section default.
			return nil, fmt.Errorf("workload: conv stride must be positive (got %d)", c.Stride)
		}
		if c.Pad, err = strconv.Atoi(sp[i+1:]); err != nil {
			return nil, fmt.Errorf("workload: conv padding %q: %v", sp[i+1:], err)
		}
		rest = rest[1:]
	}
	if len(rest) < 1 || len(rest) > 2 {
		return nil, fmt.Errorf("workload: conv spec: want conv:BxHxWxC:FxKHxKW[:sSpP]:dtype[:tTMxTNxTK]")
	}
	if c.Dtype, err = ParseDtype(rest[0]); err != nil {
		return nil, err
	}
	if len(rest) == 2 {
		if c.TileM, c.TileN, c.TileK, err = tileSection(rest[1]); err != nil {
			return nil, err
		}
	}
	c = c.normalized()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseAttn(parts []string) (DLSpec, error) {
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("workload: attn spec: want attn:BxHxLqxLkvxD:dtype[:tqN]")
	}
	d, err := dims(parts[0], 5, "attention shape")
	if err != nil {
		return nil, err
	}
	a := AttentionSpec{Batch: d[0], Heads: d[1], SeqQ: d[2], SeqKV: d[3], HeadDim: d[4]}
	if a.Dtype, err = ParseDtype(parts[1]); err != nil {
		return nil, err
	}
	if len(parts) == 3 {
		if !strings.HasPrefix(parts[2], "tq") {
			return nil, fmt.Errorf("workload: attention tile section %q: want tq<N>", parts[2])
		}
		td, err := dims(parts[2][2:], 1, "attention tile")
		if err != nil {
			return nil, err
		}
		a.TileQ = td[0]
	}
	a = a.normalized()
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// maxBatchListLen bounds batch sweeps: a serving experiment per batch size
// is real simulation work, so runaway lists are a client error.
const maxBatchListLen = 64

// ParseBatchList parses a comma-separated list of positive batch sizes into
// a sorted, deduplicated slice — the canonical form FormatBatchList renders,
// so permuted and duplicated spellings share one cache identity.
func ParseBatchList(s string) ([]int, error) {
	fields := strings.Split(s, ",")
	var out []int
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("workload: batch list %q: bad entry %q", s, f)
		}
		if v <= 0 {
			return nil, fmt.Errorf("workload: batch list %q: batch %d must be positive", s, v)
		}
		if v > 1<<20 {
			return nil, fmt.Errorf("workload: batch list %q: batch %d too large (max %d)", s, v, 1<<20)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: batch list %q is empty", s)
	}
	sort.Ints(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	out = out[:w]
	if len(out) > maxBatchListLen {
		return nil, fmt.Errorf("workload: batch list %q: %d entries (max %d)", s, len(out), maxBatchListLen)
	}
	return out, nil
}

// FormatBatchList renders the canonical batch-list form.
func FormatBatchList(batches []int) string {
	parts := make([]string, len(batches))
	for i, b := range batches {
		parts[i] = strconv.Itoa(b)
	}
	return strings.Join(parts, ",")
}
