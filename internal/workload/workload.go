// Package workload models the proxy applications of the paper's Table I:
// six open-source scientific/security proxy apps plus MaxFlops, the
// peak-throughput microbenchmark. The real study measured these kernels on
// AMD hardware and fed the measurements into scaling models; we instead give
// each kernel (a) an explicit characterization — the exact quantities the
// paper's high-level simulator consumes — and (b) a synthetic memory-trace
// generator whose access pattern and data values mimic the kernel's behaviour
// so that trace-derived metrics (locality, footprint, compressibility) can be
// cross-checked against the characterization and can drive the detailed
// event-driven simulators.
package workload

import (
	"fmt"
	"math"
)

// Category classifies kernels as in §IV.
type Category int

const (
	// ComputeIntensive kernels have infrequent main-memory accesses; the
	// performance is bound by compute throughput (§IV-A).
	ComputeIntensive Category = iota
	// Balanced kernels stress both compute and memory; performance
	// plateaus beyond a kernel-specific ops-per-byte point (§IV-B).
	Balanced
	// MemoryIntensive kernels are bandwidth/latency sensitive and degrade
	// when excessive concurrency thrashes caches and the NoC (§IV-C).
	MemoryIntensive
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case ComputeIntensive:
		return "compute-intensive"
	case Balanced:
		return "balanced"
	case MemoryIntensive:
		return "memory-intensive"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Access is one element of a synthetic memory trace: a 64-byte-line address,
// a read/write flag, and the 64-bit data word written or expected (used by
// the compression study).
type Access struct {
	Addr  uint64 // byte address; models use Addr / 64 as the line
	Write bool
	Value uint64
}

// TraceGen produces n accesses of the kernel's characteristic pattern.
// Generators are deterministic for a given seed.
type TraceGen func(seed int64, n int) []Access

// Kernel is one proxy application's characterization. The fields are the
// inputs of the high-level simulator (internal/perf, internal/power):
//
//   - Intensity: application arithmetic intensity, DP flops per byte of
//     DRAM traffic after on-chip caches.
//   - MaxUtilization: achievable fraction of peak flops when compute-bound
//     (divergence, dependency stalls, launch overheads).
//   - MLPPerCU: average outstanding 64 B memory requests per CU; the
//     latency-hiding capacity (low for irregular kernels).
//   - Activity: average CU switching activity while running (scales CU
//     dynamic power).
//   - CacheLocality: fraction of post-L1 traffic captured by chiplet-local
//     caching; the remainder crosses the interposer NoC (Fig. 7).
//   - ExtTrafficFrac: fraction of DRAM traffic served by external memory
//     for exascale problem sizes under the HMA-style management of [27]
//     (the paper reports 46-89%; ~0 for MaxFlops).
//   - WriteFrac: store fraction of memory traffic (drives NVM write energy).
//   - FootprintGB: resident data footprint for a representative rank.
//   - ThrashOPB / ThrashSlope: contention model — beyond machine
//     ops-per-byte ThrashOPB, excessive concurrent requests thrash caches
//     and the interconnect, degrading performance with the given slope
//     (zero for kernels that only plateau).
//   - SerialFrac: fraction of work in serial/CPU sections (Amdahl term).
//   - CUScalingGamma: CU-count scaling inefficiency — achieved utilization
//     scales as (320/CUs)^gamma around the 320-CU reference, reflecting the
//     sublinear CU scaling the GPU scaling models of [42], [43] measure for
//     fixed problem sizes (zero for the embarrassingly parallel MaxFlops).
type Kernel struct {
	Name        string
	Description string
	Category    Category

	Intensity      float64
	MaxUtilization float64
	MLPPerCU       float64
	Activity       float64
	CacheLocality  float64
	ExtTrafficFrac float64
	WriteFrac      float64
	FootprintGB    float64
	ThrashOPB      float64
	ThrashSlope    float64
	SerialFrac     float64
	CUScalingGamma float64

	// Compressibility is the default DRAM-traffic compression ratio used
	// when no trace is analyzed (internal/compress measures the real
	// ratio on generated traces; tests keep the two consistent).
	Compressibility float64

	Trace TraceGen
}

// Validate checks that the characterization is internally consistent. Every
// numeric field is also required to be finite: a NaN or Inf intensity (the
// failure mode of a zero-sized or negatively-tiled DL spec fed straight to
// the constructors) would otherwise flow through the roofline silently and
// poison every downstream figure. NaN compares false against everything, so
// the range checks alone would pass it.
func (k Kernel) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"intensity", k.Intensity},
		{"utilization", k.MaxUtilization},
		{"MLP", k.MLPPerCU},
		{"activity", k.Activity},
		{"locality", k.CacheLocality},
		{"external traffic fraction", k.ExtTrafficFrac},
		{"write fraction", k.WriteFrac},
		{"footprint", k.FootprintGB},
		{"thrash ops-per-byte", k.ThrashOPB},
		{"thrash slope", k.ThrashSlope},
		{"serial fraction", k.SerialFrac},
		{"CU scaling gamma", k.CUScalingGamma},
		{"compression ratio", k.Compressibility},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("workload %s: non-finite %s (%v)", k.Name, f.name, f.v)
		}
	}
	switch {
	case k.Name == "":
		return fmt.Errorf("workload: kernel without a name")
	case k.Intensity <= 0:
		return fmt.Errorf("workload %s: non-positive intensity", k.Name)
	case k.MaxUtilization <= 0 || k.MaxUtilization > 1:
		return fmt.Errorf("workload %s: utilization out of (0,1]", k.Name)
	case k.MLPPerCU <= 0:
		return fmt.Errorf("workload %s: non-positive MLP", k.Name)
	case k.Activity < 0 || k.Activity > 1:
		return fmt.Errorf("workload %s: activity out of [0,1]", k.Name)
	case k.CacheLocality < 0 || k.CacheLocality > 1:
		return fmt.Errorf("workload %s: locality out of [0,1]", k.Name)
	case k.ExtTrafficFrac < 0 || k.ExtTrafficFrac > 1:
		return fmt.Errorf("workload %s: external traffic fraction out of [0,1]", k.Name)
	case k.WriteFrac < 0 || k.WriteFrac > 1:
		return fmt.Errorf("workload %s: write fraction out of [0,1]", k.Name)
	case k.ThrashSlope < 0:
		return fmt.Errorf("workload %s: negative thrash slope", k.Name)
	case k.ThrashOPB < 0:
		return fmt.Errorf("workload %s: negative thrash ops-per-byte", k.Name)
	case k.FootprintGB < 0:
		return fmt.Errorf("workload %s: negative footprint", k.Name)
	case k.SerialFrac < 0 || k.SerialFrac > 1:
		return fmt.Errorf("workload %s: serial fraction out of [0,1]", k.Name)
	case k.CUScalingGamma < 0:
		return fmt.Errorf("workload %s: negative CU scaling gamma", k.Name)
	case k.Compressibility < 1:
		return fmt.Errorf("workload %s: compression ratio below 1", k.Name)
	case k.Trace == nil:
		return fmt.Errorf("workload %s: missing trace generator", k.Name)
	}
	return nil
}

// Suite returns the paper's eight kernels (Table I), in the order the paper
// lists them: the compute-intensive microbenchmark, the balanced proxies,
// then the memory-intensive proxies.
func Suite() []Kernel {
	return []Kernel{
		MaxFlops(),
		CoMD(),
		CoMDLJ(),
		HPGMG(),
		LULESH(),
		MiniAMR(),
		XSBench(),
		SNAP(),
	}
}

// ByName returns the kernel with the given name from Suite.
func ByName(name string) (Kernel, error) {
	for _, k := range Suite() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("workload: unknown kernel %q", name)
}

// Names lists the suite's kernel names in order.
func Names() []string {
	ks := Suite()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// MaxFlops measures maximum achievable floating-point throughput: a tiny
// working set hammered by fused multiply-adds (§IV-A, Fig. 4).
func MaxFlops() Kernel {
	return Kernel{
		Name:            "MaxFlops",
		Description:     "Measures maximum FP throughput",
		Category:        ComputeIntensive,
		Intensity:       48,
		MaxUtilization:  0.91,
		MLPPerCU:        20,
		Activity:        1.0,
		CacheLocality:   0.95,
		ExtTrafficFrac:  0.01,
		WriteFrac:       0.05,
		FootprintGB:     0.004,
		SerialFrac:      0.0001,
		Compressibility: 1.15,
		CUScalingGamma:  0,
		Trace:           maxFlopsTrace,
	}
}

// CoMD is the molecular-dynamics proxy (embedded-atom method): neighbor-list
// gathers with good but not perfect locality; balanced (§IV-B, Fig. 5).
func CoMD() Kernel {
	return Kernel{
		Name:            "CoMD",
		Description:     "Molecular-dynamics algorithms (Embedded Atom)",
		Category:        Balanced,
		Intensity:       5.5,
		MaxUtilization:  0.62,
		MLPPerCU:        64,
		Activity:        0.62,
		CacheLocality:   0.35,
		ExtTrafficFrac:  0.46,
		WriteFrac:       0.25,
		FootprintGB:     192,
		SerialFrac:      0.004,
		Compressibility: 1.20,
		CUScalingGamma:  0.50,
		Trace:           comdTrace,
	}
}

// CoMDLJ is CoMD with the cheaper Lennard-Jones potential: higher compute
// intensity per byte and higher CU activity (it approaches the thermal limit
// in Fig. 10).
func CoMDLJ() Kernel {
	return Kernel{
		Name:            "CoMD-LJ",
		Description:     "Molecular-dynamics algorithms (Lennard-Jones)",
		Category:        Balanced,
		Intensity:       7.0,
		MaxUtilization:  0.72,
		MLPPerCU:        64,
		Activity:        0.70,
		CacheLocality:   0.42,
		ExtTrafficFrac:  0.48,
		WriteFrac:       0.25,
		FootprintGB:     192,
		SerialFrac:      0.004,
		Compressibility: 1.20,
		CUScalingGamma:  0.45,
		Trace:           comdTrace,
	}
}

// HPGMG is the multigrid HPC ranking benchmark: streaming stencils over a
// level hierarchy; balanced-to-memory-bound with large footprint.
func HPGMG() Kernel {
	return Kernel{
		Name:            "HPGMG",
		Description:     "Ranks HPC systems (geometric multigrid)",
		Category:        Balanced,
		Intensity:       2.4,
		MaxUtilization:  0.33,
		MLPPerCU:        48,
		Activity:        0.46,
		CacheLocality:   0.33,
		ExtTrafficFrac:  0.70,
		WriteFrac:       0.30,
		FootprintGB:     1024,
		ThrashOPB:       0.24,
		ThrashSlope:     0.8,
		SerialFrac:      0.01,
		Compressibility: 1.25,
		CUScalingGamma:  0.15,
		Trace:           hpgmgTrace,
	}
}

// LULESH is the shock-hydrodynamics proxy: irregular gathers/scatters over an
// unstructured mesh; memory-intensive and notably latency-sensitive (§V-B).
func LULESH() Kernel {
	return Kernel{
		Name:            "LULESH",
		Description:     "Hydrodynamic simulation",
		Category:        MemoryIntensive,
		Intensity:       2.2,
		MaxUtilization:  0.50,
		MLPPerCU:        18,
		Activity:        0.50,
		CacheLocality:   0.25,
		ExtTrafficFrac:  0.65,
		WriteFrac:       0.33,
		FootprintGB:     960,
		ThrashOPB:       0.10,
		ThrashSlope:     4.0,
		SerialFrac:      0.008,
		Compressibility: 1.90,
		CUScalingGamma:  0.45,
		Trace:           luleshTrace,
	}
}

// MiniAMR is the 3D stencil with adaptive mesh refinement: block-structured
// streaming with refinement-driven irregularity; memory-intensive.
func MiniAMR() Kernel {
	return Kernel{
		Name:            "MiniAMR",
		Description:     "3D stencil computation with adaptive mesh refinement",
		Category:        MemoryIntensive,
		Intensity:       1.6,
		MaxUtilization:  0.47,
		MLPPerCU:        36,
		Activity:        0.46,
		CacheLocality:   0.30,
		ExtTrafficFrac:  0.75,
		WriteFrac:       0.30,
		FootprintGB:     1024,
		ThrashOPB:       0.11,
		ThrashSlope:     2.4,
		SerialFrac:      0.012,
		Compressibility: 1.30,
		CUScalingGamma:  0.40,
		Trace:           miniAMRTrace,
	}
}

// XSBench is the Monte Carlo particle-transport macroscopic-cross-section
// lookup kernel: random reads into a multi-gigabyte table; the most
// memory-latency-bound kernel in the suite.
func XSBench() Kernel {
	return Kernel{
		Name:            "XSBench",
		Description:     "Monte Carlo particle transport simulation",
		Category:        MemoryIntensive,
		Intensity:       0.9,
		MaxUtilization:  0.35,
		MLPPerCU:        12,
		Activity:        0.30,
		CacheLocality:   0.02,
		ExtTrafficFrac:  0.89,
		WriteFrac:       0.02,
		FootprintGB:     1024,
		ThrashOPB:       0.09,
		ThrashSlope:     2.0,
		SerialFrac:      0.002,
		Compressibility: 1.05,
		CUScalingGamma:  0.55,
		Trace:           xsbenchTrace,
	}
}

// SNAP is the discrete-ordinates neutral-particle transport proxy: wavefront
// sweeps with abundant angle/group parallelism — high MLP lets it hide
// chiplet latency almost completely (Fig. 7).
func SNAP() Kernel {
	return Kernel{
		Name:            "SNAP",
		Description:     "Discrete ordinates neutral particle transport application",
		Category:        MemoryIntensive,
		Intensity:       2.2,
		MaxUtilization:  0.30,
		MLPPerCU:        96,
		Activity:        0.38,
		CacheLocality:   0.15,
		ExtTrafficFrac:  0.80,
		WriteFrac:       0.40,
		FootprintGB:     1024,
		ThrashOPB:       0.13,
		ThrashSlope:     1.2,
		SerialFrac:      0.006,
		Compressibility: 1.25,
		CUScalingGamma:  0.12,
		Trace:           snapTrace,
	}
}
