package workload

import (
	"math"
	"math/rand"
)

// The trace generators below synthesize the memory behaviour of each proxy
// app at 64-bit-word granularity. They are deliberately small models — the
// goal is to reproduce each kernel's *pattern class* (streaming, stencil,
// neighbor gather, random table lookup, wavefront sweep) and *value
// statistics* (smooth FP fields vs. high-entropy data), which is what the
// locality, miss-rate, and compression analyses consume.

const lineBytes = 64

// smoothField returns a physically-plausible smooth double (bounded dynamic
// range, slowly varying) whose bit pattern is highly compressible, as real
// simulation fields are.
func smoothField(base float64, i int) uint64 {
	v := base + 1e-3*math.Sin(float64(i)*0.01) + 1e-6*float64(i%32)
	return math.Float64bits(v)
}

// maxFlopsTrace: a tiny (~4 MiB) buffer traversed sequentially over and over;
// virtually all accesses hit in cache, so DRAM sees almost nothing.
func maxFlopsTrace(seed int64, n int) []Access {
	rng := rand.New(rand.NewSource(seed))
	const footprint = 4 << 20
	out := make([]Access, 0, n)
	addr := uint64(0)
	for i := 0; i < n; i++ {
		a := Access{Addr: addr % footprint, Value: smoothField(1.5, i)}
		if rng.Float64() < 0.05 {
			a.Write = true
		}
		out = append(out, a)
		addr += 8
	}
	return out
}

// comdTrace: molecular dynamics with a link-cell neighbor list. Particles are
// visited cell by cell; each particle gathers ~27 neighbor cells' particles —
// spatially clustered reads with periodic jumps between cells, plus force
// writebacks.
func comdTrace(seed int64, n int) []Access {
	rng := rand.New(rand.NewSource(seed))
	const (
		cells        = 1 << 14 // 16k cells
		cellBytes    = 16 << 10
		particleByte = 48 // pos+vel per particle (rounded to words)
	)
	out := make([]Access, 0, n)
	for len(out) < n {
		cell := uint64(rng.Intn(cells))
		base := cell * cellBytes
		// Gather this cell and a few neighbor cells.
		for nb := 0; nb < 4 && len(out) < n; nb++ {
			nbCell := (cell + uint64(rng.Intn(27))) % cells
			nbBase := nbCell * cellBytes
			for p := 0; p < 12 && len(out) < n; p++ {
				off := uint64(p) * particleByte
				out = append(out, Access{
					Addr:  nbBase + off,
					Value: smoothField(3.2, p),
				})
			}
		}
		// Write back forces for this cell's particles.
		for p := 0; p < 6 && len(out) < n; p++ {
			out = append(out, Access{
				Addr:  base + uint64(p)*particleByte,
				Write: true,
				Value: smoothField(0.25, p),
			})
		}
	}
	return out
}

// hpgmgTrace: geometric multigrid — streaming 27-point stencil smooths over a
// hierarchy of levels; each level is 1/8 the size of the finer one, so the
// trace alternates long unit-stride runs over shrinking footprints.
func hpgmgTrace(seed int64, n int) []Access {
	rng := rand.New(rand.NewSource(seed))
	levels := []uint64{1 << 30, 1 << 27, 1 << 24, 1 << 21}
	out := make([]Access, 0, n)
	lvl := 0
	pos := uint64(0)
	for len(out) < n {
		span := levels[lvl]
		base := uint64(lvl) << 32
		// One plane of streaming stencil work: read three neighbouring
		// planes, write one.
		planeStride := span / 256
		for i := 0; i < 48 && len(out) < n; i++ {
			p := (pos + uint64(i)*8) % span
			out = append(out, Access{Addr: base + p, Value: smoothField(1.0, i)})
			out = append(out, Access{Addr: base + (p+planeStride)%span, Value: smoothField(1.0, i+1)})
			out = append(out, Access{Addr: base + (p+2*planeStride)%span, Value: smoothField(1.0, i+2)})
			out = append(out, Access{Addr: base + p, Write: true, Value: smoothField(1.0, i+3)})
		}
		pos += 48 * 8
		if rng.Float64() < 0.02 { // V-cycle transition
			lvl = (lvl + 1) % len(levels)
			pos = 0
		}
	}
	return out[:n]
}

// luleshTrace: unstructured-mesh hydrodynamics — element loops gather eight
// node records through an indirection table (clustered but irregular reads)
// and scatter updates back; the footprint is large.
func luleshTrace(seed int64, n int) []Access {
	rng := rand.New(rand.NewSource(seed))
	const (
		nodes     = 1 << 24 // node records
		nodeBytes = 64
	)
	out := make([]Access, 0, n)
	elem := uint64(0)
	for len(out) < n {
		// Nodes of an element are near each other, but mesh numbering
		// makes some corners far away (irregular gather).
		base := (elem * 8) % nodes
		for c := 0; c < 8 && len(out) < n; c++ {
			node := base + uint64(c)
			if rng.Float64() < 0.3 { // far corner through indirection
				node = uint64(rng.Intn(nodes))
			}
			out = append(out, Access{Addr: node * nodeBytes, Value: smoothField(2.0, c)})
		}
		// Scatter: accumulate forces back into half the element's nodes
		// and update element-centred fields (irregular writes).
		for c := 0; c < 3 && len(out) < n; c++ {
			out = append(out, Access{
				Addr:  (base + uint64(c)) * nodeBytes,
				Write: true,
				Value: smoothField(0.7, c),
			})
		}
		if len(out) < n {
			out = append(out, Access{
				Addr:  (1 << 40) + elem*32,
				Write: true,
				Value: smoothField(0.5, int(elem%97)),
			})
		}
		elem++
	}
	return out
}

// miniAMRTrace: block-structured AMR stencil — unit-stride sweeps within
// fixed-size blocks, with refinement jumping between blocks at widely
// separated base addresses.
func miniAMRTrace(seed int64, n int) []Access {
	rng := rand.New(rand.NewSource(seed))
	const (
		blocks     = 4096
		blockBytes = 1 << 21 // 2 MiB per block
	)
	out := make([]Access, 0, n)
	for len(out) < n {
		b := uint64(rng.Intn(blocks))
		base := b * blockBytes * 7 // spread blocks out (refinement holes)
		for i := 0; i < 96 && len(out) < n; i++ {
			off := uint64(i) * 8
			out = append(out, Access{Addr: base + off, Value: smoothField(1.2, i)})
			if i%3 == 2 {
				out = append(out, Access{Addr: base + off, Write: true, Value: smoothField(1.2, i+1)})
			}
		}
	}
	return out
}

// xsbenchTrace: Monte Carlo cross-section lookups — uniformly random reads
// into a huge nuclide grid whose entries are effectively incompressible.
func xsbenchTrace(seed int64, n int) []Access {
	rng := rand.New(rand.NewSource(seed))
	const table = 200 << 30 // ~200 GB unionized energy grid
	out := make([]Access, 0, n)
	for i := 0; i < n; i++ {
		a := Access{
			Addr:  uint64(rng.Int63n(table/lineBytes)) * lineBytes,
			Value: rng.Uint64(), // table entries look random
		}
		if i%64 == 63 {
			a.Write = true // tally update
			a.Addr = uint64(rng.Intn(1<<20)) * lineBytes
		}
		out = append(out, a)
	}
	return out
}

// snapTrace: discrete-ordinates sweep — many concurrent (angle, group)
// streams advance in lock-step through spatial planes; per-stream accesses
// are unit-stride, and the interleaving provides abundant parallelism.
func snapTrace(seed int64, n int) []Access {
	rng := rand.New(rand.NewSource(seed))
	const (
		streams      = 64
		streamStride = 1 << 26
	)
	pos := make([]uint64, streams)
	for i := range pos {
		pos[i] = uint64(rng.Intn(1<<16) * 8)
	}
	out := make([]Access, 0, n)
	s := 0
	for len(out) < n {
		base := uint64(s) * streamStride
		out = append(out, Access{Addr: base + pos[s], Value: smoothField(1.8, int(pos[s]%13))})
		if len(out) < n {
			out = append(out, Access{
				Addr:  base + pos[s] + streamStride/2,
				Write: true,
				Value: smoothField(1.8, int(pos[s]%7)),
			})
		}
		pos[s] += 8
		s = (s + 1) % streams
	}
	return out
}
