package workload

import (
	"fmt"
	"math/rand"
)

// This file opens the node model to the dominant 2026 workload class: deep
// learning. The paper characterizes its proxy apps by arithmetic intensity
// (DP flops per byte of post-cache DRAM traffic) and the roofline consumes
// exactly that, so GEMM, convolution, and attention reduce to the same
// contract — except that for DL kernels the intensity is not a measured
// constant but a *closed-form function of the tiling*: each operand's DRAM
// traffic is its size times the number of tile passes that reload it, and
// shrinking a tile increases the reload count. The generators below compute
// operand-exact bytes moved (matching a brute-force tile-walk counter bit
// for bit; the property tests pin this) and derive a Kernel whose Intensity
// reflects the chosen tiling.

// Dtype is a deep-learning element type; its width sets bytes/MAC.
type Dtype int

const (
	// FP64 is the double precision of the paper's HPC kernels.
	FP64 Dtype = iota
	// FP32 is single precision.
	FP32
	// FP16 is IEEE half precision.
	FP16
	// BF16 is bfloat16 (same width as FP16).
	BF16
	// INT8 is 8-bit integer inference.
	INT8
)

// Bytes returns the element width.
func (d Dtype) Bytes() int {
	switch d {
	case FP64:
		return 8
	case FP32:
		return 4
	case FP16, BF16:
		return 2
	case INT8:
		return 1
	default:
		return 0
	}
}

// String implements fmt.Stringer (the canonical spec-string form).
func (d Dtype) String() string {
	switch d {
	case FP64:
		return "fp64"
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case BF16:
		return "bf16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("Dtype(%d)", int(d))
	}
}

// compressibility of DL tensor traffic by dtype: wide floats carry more
// exploitable exponent/mantissa redundancy than saturated int8 tensors.
func (d Dtype) compressibility() float64 {
	switch d {
	case FP64:
		return 1.25
	case FP32:
		return 1.2
	case FP16, BF16:
		return 1.1
	default:
		return 1.05
	}
}

// DLSpec is a parametric deep-learning kernel: a shape plus a tiling, with
// closed-form work and traffic models. WithBatch scales the spec to a batch
// of n independent requests (the unit the inference-serving scenario
// coalesces), and String returns the canonical spec-string form that
// ParseDL accepts (and that names the derived Kernel).
type DLSpec interface {
	fmt.Stringer
	// Validate rejects non-positive or non-finite shape/tile parameters
	// with a descriptive error.
	Validate() error
	// FLOPs is the kernel's total multiply-add work (2 flops per MAC).
	FLOPs() float64
	// BytesMoved is the DRAM traffic of one execution under the spec's
	// tiling, exact per the operand-reuse model.
	BytesMoved() float64
	// Intensity is FLOPs/BytesMoved — flops per byte after on-chip reuse.
	Intensity() float64
	// WithBatch returns the spec scaled to n coalesced requests.
	WithBatch(n int) (DLSpec, error)
	// Kernel derives the roofline characterization.
	Kernel() (Kernel, error)
}

// ceilDiv is ceil(a/b) for positive ints.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// clampTile substitutes def for a zero tile and clamps to the dimension
// (a tile larger than its extent behaves as one full-extent tile; storing
// the clamped value keeps the canonical string honest about that).
func clampTile(tile, def, dim int) int {
	if tile == 0 {
		tile = def
	}
	if tile > dim {
		tile = dim
	}
	return tile
}

// Default tile edges (CU-scale LDS blocking).
const (
	defaultTileM = 128
	defaultTileN = 128
	defaultTileK = 64
	defaultTileQ = 64
)

// GEMMSpec is C[M,N] += A[M,K] * B[K,N] under (TileM, TileN, TileK)
// blocking with the accumulator tile resident on-chip across the K loop:
//
//   - every A element is read once per N-tile pass:  M*K*ceil(N/TileN)
//   - every B element is read once per M-tile pass:  K*N*ceil(M/TileM)
//   - every C element is read and written exactly once: 2*M*N
//
// TileK sets the reduction slab staged through the LDS; with the
// accumulator resident it does not change DRAM traffic, only on-chip
// footprint. Zero tiles default to 128x128x64, clamped to the shape.
type GEMMSpec struct {
	M, N, K             int
	Dtype               Dtype
	TileM, TileN, TileK int
}

// NewGEMM builds a GEMM spec with default tiling.
func NewGEMM(m, n, k int, dt Dtype) GEMMSpec {
	return GEMMSpec{M: m, N: n, K: k, Dtype: dt}
}

// normalized fills default tiles and clamps them to the shape.
func (g GEMMSpec) normalized() GEMMSpec {
	if g.M > 0 {
		g.TileM = clampTile(g.TileM, defaultTileM, g.M)
	}
	if g.N > 0 {
		g.TileN = clampTile(g.TileN, defaultTileN, g.N)
	}
	if g.K > 0 {
		g.TileK = clampTile(g.TileK, defaultTileK, g.K)
	}
	return g
}

// Validate implements DLSpec.
func (g GEMMSpec) Validate() error {
	g = g.normalized()
	switch {
	case g.M <= 0:
		return fmt.Errorf("workload: gemm M must be positive (got %d)", g.M)
	case g.N <= 0:
		return fmt.Errorf("workload: gemm N must be positive (got %d)", g.N)
	case g.K <= 0:
		return fmt.Errorf("workload: gemm K must be positive (got %d)", g.K)
	case g.Dtype.Bytes() <= 0:
		return fmt.Errorf("workload: gemm has invalid dtype %v", g.Dtype)
	case g.TileM <= 0:
		return fmt.Errorf("workload: gemm TileM must be positive (got %d)", g.TileM)
	case g.TileN <= 0:
		return fmt.Errorf("workload: gemm TileN must be positive (got %d)", g.TileN)
	case g.TileK <= 0:
		return fmt.Errorf("workload: gemm TileK must be positive (got %d)", g.TileK)
	}
	return nil
}

// String implements DLSpec (canonical, defaults materialized).
func (g GEMMSpec) String() string {
	g = g.normalized()
	return fmt.Sprintf("gemm:%dx%dx%d:%s:t%dx%dx%d", g.M, g.N, g.K, g.Dtype, g.TileM, g.TileN, g.TileK)
}

// FLOPs implements DLSpec: 2*M*N*K multiply-adds.
func (g GEMMSpec) FLOPs() float64 {
	return 2 * float64(g.M) * float64(g.N) * float64(g.K)
}

// BytesMoved implements DLSpec (see the type comment for the model).
func (g GEMMSpec) BytesMoved() float64 {
	g = g.normalized()
	dt := float64(g.Dtype.Bytes())
	a := float64(g.M) * float64(g.K) * float64(ceilDiv(g.N, g.TileN))
	b := float64(g.K) * float64(g.N) * float64(ceilDiv(g.M, g.TileM))
	c := 2 * float64(g.M) * float64(g.N)
	return dt * (a + b + c)
}

// Intensity implements DLSpec.
func (g GEMMSpec) Intensity() float64 { return g.FLOPs() / g.BytesMoved() }

// writeFrac is the store share of the traffic: the C writeback.
func (g GEMMSpec) writeFrac() float64 {
	g = g.normalized()
	return float64(g.Dtype.Bytes()) * float64(g.M) * float64(g.N) / g.BytesMoved()
}

// footprintGB is the resident operand footprint.
func (g GEMMSpec) footprintGB() float64 {
	dt := float64(g.Dtype.Bytes())
	return dt * (float64(g.M)*float64(g.K) + float64(g.K)*float64(g.N) + float64(g.M)*float64(g.N)) / 1e9
}

// WithBatch implements DLSpec: n coalesced requests stack their token rows,
// so M scales (the shared B operand is what batching amortizes).
func (g GEMMSpec) WithBatch(n int) (DLSpec, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: batch must be positive (got %d)", n)
	}
	g.M *= n
	return g, nil
}

// Kernel implements DLSpec.
func (g GEMMSpec) Kernel() (Kernel, error) {
	if err := g.Validate(); err != nil {
		return Kernel{}, err
	}
	g = g.normalized()
	k := dlKernel(g.String(), g.Intensity(), g.writeFrac(), g.footprintGB(), g.Dtype)
	k.Description = "Dense matrix multiply (tiled)"
	k.MaxUtilization = 0.85
	k.MLPPerCU = 64
	k.Activity = 0.85
	k.CacheLocality = 0.60
	k.CUScalingGamma = 0.08
	return k, nil
}

// ConvSpec is a 2D convolution reduced through im2col to a GEMM:
// M = Batch*OutH*OutW output pixels, N = OutC filters, K = InC*KH*KW taps.
// The traffic model is the reduced GEMM's (the im2col replication is the
// A-operand reload the tile model already charges). Stride and symmetric
// padding shape the output extent; zero tiles default as in GEMMSpec.
type ConvSpec struct {
	Batch, H, W, InC    int
	OutC, KH, KW        int
	Stride, Pad         int
	Dtype               Dtype
	TileM, TileN, TileK int
}

// NewConv builds a conv spec with stride 1, "same"-style padding kh/2, and
// default tiling.
func NewConv(batch, h, w, inC, outC, kh, kw int, dt Dtype) ConvSpec {
	return ConvSpec{Batch: batch, H: h, W: w, InC: inC, OutC: outC, KH: kh, KW: kw,
		Stride: 1, Pad: kh / 2, Dtype: dt}
}

// normalized fills stride/tile defaults.
func (c ConvSpec) normalized() ConvSpec {
	if c.Stride == 0 {
		c.Stride = 1
	}
	return c
}

// outHW is the output extent (valid only after Validate).
func (c ConvSpec) outHW() (int, int) {
	c = c.normalized()
	oh := (c.H+2*c.Pad-c.KH)/c.Stride + 1
	ow := (c.W+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// gemm is the im2col-reduced GEMM.
func (c ConvSpec) gemm() GEMMSpec {
	c = c.normalized()
	oh, ow := c.outHW()
	return GEMMSpec{
		M: c.Batch * oh * ow, N: c.OutC, K: c.InC * c.KH * c.KW,
		Dtype: c.Dtype, TileM: c.TileM, TileN: c.TileN, TileK: c.TileK,
	}.normalized()
}

// Validate implements DLSpec.
func (c ConvSpec) Validate() error {
	c = c.normalized()
	switch {
	case c.Batch <= 0:
		return fmt.Errorf("workload: conv batch must be positive (got %d)", c.Batch)
	case c.H <= 0 || c.W <= 0:
		return fmt.Errorf("workload: conv input extent must be positive (got %dx%d)", c.H, c.W)
	case c.InC <= 0:
		return fmt.Errorf("workload: conv input channels must be positive (got %d)", c.InC)
	case c.OutC <= 0:
		return fmt.Errorf("workload: conv output channels must be positive (got %d)", c.OutC)
	case c.KH <= 0 || c.KW <= 0:
		return fmt.Errorf("workload: conv filter extent must be positive (got %dx%d)", c.KH, c.KW)
	case c.Stride <= 0:
		return fmt.Errorf("workload: conv stride must be positive (got %d)", c.Stride)
	case c.Pad < 0:
		return fmt.Errorf("workload: conv padding must be non-negative (got %d)", c.Pad)
	case c.Dtype.Bytes() <= 0:
		return fmt.Errorf("workload: conv has invalid dtype %v", c.Dtype)
	}
	if oh, ow := c.outHW(); oh <= 0 || ow <= 0 {
		return fmt.Errorf("workload: conv output extent %dx%d not positive (filter %dx%d exceeds padded input %dx%d)",
			oh, ow, c.KH, c.KW, c.H+2*c.Pad, c.W+2*c.Pad)
	}
	return c.gemm().Validate()
}

// String implements DLSpec.
func (c ConvSpec) String() string {
	c = c.normalized()
	g := c.gemm()
	return fmt.Sprintf("conv:%dx%dx%dx%d:%dx%dx%d:s%dp%d:%s:t%dx%dx%d",
		c.Batch, c.H, c.W, c.InC, c.OutC, c.KH, c.KW, c.Stride, c.Pad, c.Dtype,
		g.TileM, g.TileN, g.TileK)
}

// FLOPs implements DLSpec.
func (c ConvSpec) FLOPs() float64 { return c.gemm().FLOPs() }

// BytesMoved implements DLSpec.
func (c ConvSpec) BytesMoved() float64 { return c.gemm().BytesMoved() }

// Intensity implements DLSpec.
func (c ConvSpec) Intensity() float64 { return c.FLOPs() / c.BytesMoved() }

// WithBatch implements DLSpec.
func (c ConvSpec) WithBatch(n int) (DLSpec, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: batch must be positive (got %d)", n)
	}
	c.Batch *= n
	return c, nil
}

// footprintGB is input + filters + output.
func (c ConvSpec) footprintGB() float64 {
	c = c.normalized()
	oh, ow := c.outHW()
	dt := float64(c.Dtype.Bytes())
	in := float64(c.Batch) * float64(c.H) * float64(c.W) * float64(c.InC)
	filt := float64(c.OutC) * float64(c.InC) * float64(c.KH) * float64(c.KW)
	out := float64(c.Batch) * float64(oh) * float64(ow) * float64(c.OutC)
	return dt * (in + filt + out) / 1e9
}

// Kernel implements DLSpec.
func (c ConvSpec) Kernel() (Kernel, error) {
	if err := c.Validate(); err != nil {
		return Kernel{}, err
	}
	c = c.normalized()
	k := dlKernel(c.String(), c.Intensity(), c.gemm().writeFrac(), c.footprintGB(), c.Dtype)
	k.Description = "2D convolution (im2col-reduced, tiled)"
	k.MaxUtilization = 0.80
	k.MLPPerCU = 56
	k.Activity = 0.80
	k.CacheLocality = 0.65
	k.CUScalingGamma = 0.10
	return k, nil
}

// AttentionSpec is scaled-dot-product attention over Batch*Heads independent
// (SeqQ x HeadDim) query blocks against (SeqKV x HeadDim) key/value blocks,
// computed flash-style: scores and softmax stay on-chip, a query tile of
// TileQ rows is held resident while K and V stream past it once. Per
// batch-head:
//
//   - Q is read once and O written once:       2*SeqQ*HeadDim
//   - K and V are each read once per Q tile:   2*SeqKV*HeadDim*ceil(SeqQ/TileQ)
//
// FLOPs are 4*SeqQ*SeqKV*HeadDim (QK^T plus PV, 2 flops per MAC each).
// The prefill phase has SeqQ == SeqKV; the decode phase has SeqQ == 1
// (one new token attending over the whole KV cache), which collapses the
// reload factor to one and leaves the kernel memory-bound — the signature
// serving asymmetry the inference scenario exercises.
type AttentionSpec struct {
	Batch, Heads int
	SeqQ, SeqKV  int
	HeadDim      int
	Dtype        Dtype
	TileQ        int
}

// AttentionPrefill builds the prompt-processing phase (SeqQ = SeqKV = seq).
func AttentionPrefill(batch, heads, seq, headDim int, dt Dtype) AttentionSpec {
	return AttentionSpec{Batch: batch, Heads: heads, SeqQ: seq, SeqKV: seq, HeadDim: headDim, Dtype: dt}
}

// AttentionDecode builds the token-generation phase (SeqQ = 1 over a KV
// cache of context tokens).
func AttentionDecode(batch, heads, context, headDim int, dt Dtype) AttentionSpec {
	return AttentionSpec{Batch: batch, Heads: heads, SeqQ: 1, SeqKV: context, HeadDim: headDim, Dtype: dt}
}

// normalized fills the default query tile.
func (a AttentionSpec) normalized() AttentionSpec {
	if a.SeqQ > 0 {
		a.TileQ = clampTile(a.TileQ, defaultTileQ, a.SeqQ)
	}
	return a
}

// Validate implements DLSpec.
func (a AttentionSpec) Validate() error {
	a = a.normalized()
	switch {
	case a.Batch <= 0:
		return fmt.Errorf("workload: attention batch must be positive (got %d)", a.Batch)
	case a.Heads <= 0:
		return fmt.Errorf("workload: attention heads must be positive (got %d)", a.Heads)
	case a.SeqQ <= 0:
		return fmt.Errorf("workload: attention query length must be positive (got %d)", a.SeqQ)
	case a.SeqKV <= 0:
		return fmt.Errorf("workload: attention KV length must be positive (got %d)", a.SeqKV)
	case a.HeadDim <= 0:
		return fmt.Errorf("workload: attention head dim must be positive (got %d)", a.HeadDim)
	case a.Dtype.Bytes() <= 0:
		return fmt.Errorf("workload: attention has invalid dtype %v", a.Dtype)
	case a.TileQ <= 0:
		return fmt.Errorf("workload: attention TileQ must be positive (got %d)", a.TileQ)
	}
	return nil
}

// String implements DLSpec.
func (a AttentionSpec) String() string {
	a = a.normalized()
	return fmt.Sprintf("attn:%dx%dx%dx%dx%d:%s:tq%d",
		a.Batch, a.Heads, a.SeqQ, a.SeqKV, a.HeadDim, a.Dtype, a.TileQ)
}

// FLOPs implements DLSpec.
func (a AttentionSpec) FLOPs() float64 {
	return 4 * float64(a.Batch) * float64(a.Heads) * float64(a.SeqQ) * float64(a.SeqKV) * float64(a.HeadDim)
}

// BytesMoved implements DLSpec (see the type comment for the model).
func (a AttentionSpec) BytesMoved() float64 {
	a = a.normalized()
	dt := float64(a.Dtype.Bytes())
	perHead := 2*float64(a.SeqQ)*float64(a.HeadDim) +
		2*float64(a.SeqKV)*float64(a.HeadDim)*float64(ceilDiv(a.SeqQ, a.TileQ))
	return dt * float64(a.Batch) * float64(a.Heads) * perHead
}

// Intensity implements DLSpec.
func (a AttentionSpec) Intensity() float64 { return a.FLOPs() / a.BytesMoved() }

// writeFrac is the O writeback share.
func (a AttentionSpec) writeFrac() float64 {
	a = a.normalized()
	o := float64(a.Dtype.Bytes()) * float64(a.Batch) * float64(a.Heads) * float64(a.SeqQ) * float64(a.HeadDim)
	return o / a.BytesMoved()
}

// footprintGB is Q + K + V + O.
func (a AttentionSpec) footprintGB() float64 {
	dt := float64(a.Dtype.Bytes())
	bh := float64(a.Batch) * float64(a.Heads)
	return dt * bh * float64(a.HeadDim) * (2*float64(a.SeqQ) + 2*float64(a.SeqKV)) / 1e9
}

// WithBatch implements DLSpec: each coalesced request brings its own query
// block and KV cache.
func (a AttentionSpec) WithBatch(n int) (DLSpec, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: batch must be positive (got %d)", n)
	}
	a.Batch *= n
	return a, nil
}

// Kernel implements DLSpec.
func (a AttentionSpec) Kernel() (Kernel, error) {
	if err := a.Validate(); err != nil {
		return Kernel{}, err
	}
	a = a.normalized()
	k := dlKernel(a.String(), a.Intensity(), a.writeFrac(), a.footprintGB(), a.Dtype)
	if a.SeqQ == 1 {
		k.Description = "Attention decode (one token over the KV cache)"
		k.MaxUtilization = 0.60
		k.MLPPerCU = 96
		k.Activity = 0.45
		k.CacheLocality = 0.30
		k.CUScalingGamma = 0.25
	} else {
		k.Description = "Attention prefill (flash-tiled)"
		k.MaxUtilization = 0.75
		k.MLPPerCU = 48
		k.Activity = 0.70
		k.CacheLocality = 0.50
		k.CUScalingGamma = 0.15
	}
	return k, nil
}

// Category thresholds on intensity (flops/byte): dense GEMMs with deep
// reuse are compute-bound, streaming decode is memory-bound, the middle is
// balanced — the same taxonomy §IV applies to the proxy apps.
const (
	computeIntensityFloor  = 16
	balancedIntensityFloor = 2
)

// dlKernel fills the characterization fields every DL constructor shares;
// the constructor then overlays its flavor-specific ones.
func dlKernel(name string, intensity, writeFrac, footGB float64, dt Dtype) Kernel {
	cat := MemoryIntensive
	switch {
	case intensity >= computeIntensityFloor:
		cat = ComputeIntensive
	case intensity >= balancedIntensityFloor:
		cat = Balanced
	}
	if footGB <= 0 {
		footGB = 1e-6
	}
	return Kernel{
		Name:            name,
		Category:        cat,
		Intensity:       intensity,
		WriteFrac:       writeFrac,
		FootprintGB:     footGB,
		ExtTrafficFrac:  0, // weights and KV caches resident in-package
		SerialFrac:      0.0005,
		Compressibility: dt.compressibility(),
		Trace:           dlTraceGen(footGB, writeFrac),
	}
}

// dlTraceGen synthesizes the tile-streaming access pattern dense DL kernels
// share: long unit-stride runs within an operand tile, jumps between tiles,
// and a write stream at the kernel's store fraction.
func dlTraceGen(footGB, writeFrac float64) TraceGen {
	fp := uint64(footGB * 1e9)
	if fp < 1<<20 {
		fp = 1 << 20
	}
	fp -= fp % lineBytes
	return func(seed int64, n int) []Access {
		rng := rand.New(rand.NewSource(seed))
		const tileBytes = 1 << 16 // one staged operand tile
		tiles := fp / tileBytes
		if tiles == 0 {
			tiles = 1
		}
		out := make([]Access, 0, n)
		for len(out) < n {
			base := (uint64(rng.Int63()) % tiles) * tileBytes
			for i := 0; i < 128 && len(out) < n; i++ {
				a := Access{Addr: base + uint64(i)*8, Value: smoothField(0.02, i)}
				if rng.Float64() < writeFrac {
					a.Write = true
				}
				out = append(out, a)
			}
		}
		return out
	}
}

// Transformer block dimensions of the serving presets (a LLaMA-7B-class
// layer: hidden 4096, 32 heads of 128, 4x MLP).
const (
	tfHidden  = 4096
	tfHeads   = 32
	tfHeadDim = tfHidden / tfHeads
	tfFFN     = 4 * tfHidden
)

// TransformerBlock is one decoder layer as a served workload: the QKV,
// output, and MLP projections (GEMMs whose weight operands batching
// amortizes) around the attention core. Decode selects the token-generation
// phase (one query token per sequence over a Ctx-deep KV cache); otherwise
// the block processes Seq prompt tokens per sequence (prefill).
type TransformerBlock struct {
	Batch  int
	Seq    int // prompt tokens per sequence (prefill; ignored for decode)
	Ctx    int // KV-cache depth (decode)
	Dtype  Dtype
	Decode bool
}

// TransformerPrefill is the prompt phase of the preset block.
func TransformerPrefill(batch, seq int) TransformerBlock {
	return TransformerBlock{Batch: batch, Seq: seq, Dtype: FP16}
}

// TransformerDecode is the generation phase of the preset block.
func TransformerDecode(batch, ctx int) TransformerBlock {
	return TransformerBlock{Batch: batch, Ctx: ctx, Dtype: FP16, Decode: true}
}

// Validate checks the block shape.
func (b TransformerBlock) Validate() error {
	switch {
	case b.Batch <= 0:
		return fmt.Errorf("workload: transformer batch must be positive (got %d)", b.Batch)
	case b.Decode && b.Ctx <= 0:
		return fmt.Errorf("workload: transformer decode context must be positive (got %d)", b.Ctx)
	case !b.Decode && b.Seq <= 0:
		return fmt.Errorf("workload: transformer prefill sequence must be positive (got %d)", b.Seq)
	case b.Dtype.Bytes() <= 0:
		return fmt.Errorf("workload: transformer has invalid dtype %v", b.Dtype)
	}
	return nil
}

// specs lists the block's kernels in execution order.
func (b TransformerBlock) specs() []DLSpec {
	tokens := b.Batch * b.Seq
	attn := AttentionPrefill(b.Batch, tfHeads, b.Seq, tfHeadDim, b.Dtype)
	if b.Decode {
		tokens = b.Batch
		attn = AttentionDecode(b.Batch, tfHeads, b.Ctx, tfHeadDim, b.Dtype)
	}
	return []DLSpec{
		NewGEMM(tokens, 3*tfHidden, tfHidden, b.Dtype), // QKV projection
		attn,
		NewGEMM(tokens, tfHidden, tfHidden, b.Dtype), // output projection
		NewGEMM(tokens, tfFFN, tfHidden, b.Dtype),    // MLP up
		NewGEMM(tokens, tfHidden, tfFFN, b.Dtype),    // MLP down
	}
}

// FLOPs is the block's total work (the serving scenario's unit of service).
func (b TransformerBlock) FLOPs() float64 {
	var s float64
	for _, sp := range b.specs() {
		s += sp.FLOPs()
	}
	return s
}

// Name is the block's canonical identity.
func (b TransformerBlock) Name() string {
	if b.Decode {
		return fmt.Sprintf("tfblock-decode-b%d-c%d-%s", b.Batch, b.Ctx, b.Dtype)
	}
	return fmt.Sprintf("tfblock-prefill-b%d-s%d-%s", b.Batch, b.Seq, b.Dtype)
}

// App assembles the block as an Application whose phase weights are each
// kernel's flops share, so SimulateApp's harmonic aggregate prices the whole
// layer.
func (b TransformerBlock) App() (Application, error) {
	if err := b.Validate(); err != nil {
		return Application{}, err
	}
	total := b.FLOPs()
	app := Application{Name: b.Name()}
	for _, sp := range b.specs() {
		k, err := sp.Kernel()
		if err != nil {
			return Application{}, err
		}
		app.Phases = append(app.Phases, AppPhase{Kernel: k, Weight: sp.FLOPs() / total})
	}
	return app, nil
}

// DLSuite returns the representative deep-learning kernels (the DL analogue
// of Suite's Table I): a large dense GEMM, a ResNet-style convolution, and
// the two attention phases at serving shapes.
func DLSuite() []Kernel {
	specs := []DLSpec{
		NewGEMM(4096, 4096, 4096, FP16),
		NewConv(8, 56, 56, 64, 128, 3, 3, FP16),
		AttentionPrefill(1, tfHeads, 2048, tfHeadDim, FP16),
		AttentionDecode(8, tfHeads, 2048, tfHeadDim, FP16),
	}
	out := make([]Kernel, len(specs))
	for i, sp := range specs {
		k, err := sp.Kernel()
		if err != nil {
			// The suite's shapes are positive constants.
			panic(err)
		}
		out[i] = k
	}
	return out
}
