package workload

import (
	"math"
	"testing"
)

// FuzzParseDL asserts the DL spec parser never panics, and that every spec
// it accepts is already canonical: String() re-parses to an identical spec
// (the fixed point /v1/simulate's cache keys and the kernel names rely on),
// and the derived characterization is finite — a parse that slipped a
// degenerate shape through would poison the roofline silently.
func FuzzParseDL(f *testing.F) {
	for _, seed := range []string{
		"", "gemm", "gemm:4096x4096x4096:fp16", "gemm:64x64x64:half:t16x16x16",
		"gemm:1x1x1:fp64", "gemm:0x4x4:fp16", "gemm:-1x4x4:fp16", "gemm:4x4:fp16",
		"gemm:4x4x4:int9", "gemm:4x4x4:fp16:16x16x16", "gemm:99999999999999999999x4x4:fp16",
		"conv:8x56x56x64:128x3x3:fp16", "conv:1x224x224x3:64x7x7:s2p3:fp32",
		"conv:1x8x8x4:2x3x3:s0p1:fp16", "conv:1x4x4x4:4x9x9:s1p0:fp16",
		"conv:1x8x8x4:2x3x3:double:t8x2x36", "conv:1x8x8x4:2x3x3:sXpY:fp16",
		"attn:1x32x2048x2048x128:fp16", "attn:8x32x1x2048x128:fp16:tq1",
		"attn:1x8x512x512x64:bfloat16:tq64", "attn:1x1x1x1x1:int8", "attn:1x32x2048x128:fp16",
		"ATTN:1X32X1X2048X128:FP16", " gemm:4x4x4:fp16 ", "gemm:4x4x4:fp16:t0x0x0",
		"lstm:4x4:fp16", ":::", "gemm::fp16", "attn:1x32x1x2048x128:fp16:tq999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseDL(s)
		if err != nil {
			return
		}
		canon := sp.String()
		sp2, err := ParseDL(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, s, err)
		}
		if sp2.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", s, canon, sp2.String())
		}
		if v := sp.Intensity(); math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Fatalf("accepted spec %q has intensity %v", canon, v)
		}
		k, err := sp.Kernel()
		if err != nil {
			t.Fatalf("accepted spec %q cannot derive a kernel: %v", canon, err)
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("accepted spec %q derived an invalid kernel: %v", canon, err)
		}
	})
}

// FuzzParseBatchList asserts the batch-list parser never panics and that
// accepted lists are canonical: sorted, deduplicated, and a fixed point of
// Format/Parse (the property that makes permuted serving requests share one
// cache slot).
func FuzzParseBatchList(f *testing.F) {
	for _, seed := range []string{
		"", "1", "1,2,4,8", "8,4,2,1", "1,1,1", " 4 , 2 ", "0", "-1", "x",
		"1,,2", ",", "1,2,1048577", "1048576", "99999999999999999999",
		"1,2,3,4,5,6,7,8,9,10", "32,16,32,16",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		batches, err := ParseBatchList(s)
		if err != nil {
			return
		}
		if len(batches) == 0 || len(batches) > maxBatchListLen {
			t.Fatalf("accepted list %q has %d entries", s, len(batches))
		}
		for i, b := range batches {
			if b <= 0 {
				t.Fatalf("accepted list %q contains non-positive batch %d", s, b)
			}
			if i > 0 && batches[i-1] >= b {
				t.Fatalf("accepted list %q is not strictly increasing: %v", s, batches)
			}
		}
		canon := FormatBatchList(batches)
		again, err := ParseBatchList(canon)
		if err != nil {
			t.Fatalf("canonical list %q (from %q) does not re-parse: %v", canon, s, err)
		}
		if FormatBatchList(again) != canon {
			t.Fatalf("canonical list not a fixed point: %q -> %q -> %q", s, canon, FormatBatchList(again))
		}
	})
}
