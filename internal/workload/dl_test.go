package workload

import (
	"math"
	"strings"
	"testing"
)

// bruteGEMMBytes walks every (M-tile, N-tile) pass of the blocked GEMM and
// counts operand bytes the way the hardware would move them: the A block and
// B block staged for the pass, and the C block read and written once. The
// closed-form BytesMoved must match this walk exactly (integer-valued
// float64 arithmetic, so equality is exact, not approximate).
func bruteGEMMBytes(g GEMMSpec) float64 {
	g = g.normalized()
	dt := float64(g.Dtype.Bytes())
	var bytes float64
	for i0 := 0; i0 < g.M; i0 += g.TileM {
		mi := min(g.TileM, g.M-i0)
		for j0 := 0; j0 < g.N; j0 += g.TileN {
			nj := min(g.TileN, g.N-j0)
			bytes += dt * (float64(mi)*float64(g.K) + float64(g.K)*float64(nj) + 2*float64(mi)*float64(nj))
		}
	}
	return bytes
}

// bruteAttentionBytes walks the flash-attention schedule per batch-head:
// Q read and O written once, K and V streamed past every query tile.
func bruteAttentionBytes(a AttentionSpec) float64 {
	a = a.normalized()
	dt := float64(a.Dtype.Bytes())
	var bytes float64
	for bh := 0; bh < a.Batch*a.Heads; bh++ {
		bytes += dt * 2 * float64(a.SeqQ) * float64(a.HeadDim)
		for q0 := 0; q0 < a.SeqQ; q0 += a.TileQ {
			bytes += dt * 2 * float64(a.SeqKV) * float64(a.HeadDim)
		}
	}
	return bytes
}

func TestGEMMBytesMatchTileWalk(t *testing.T) {
	shapes := []GEMMSpec{
		NewGEMM(512, 512, 512, FP16),
		NewGEMM(1000, 300, 7, FP32),  // ragged: tiles don't divide the shape
		NewGEMM(1, 4096, 4096, FP16), // single-row (decode-style) GEMM
		NewGEMM(129, 127, 65, FP64),  // one past / one short of the tile edge
		{M: 777, N: 333, K: 111, Dtype: INT8, TileM: 48, TileN: 80, TileK: 16},
		{M: 64, N: 64, K: 64, Dtype: BF16, TileM: 256, TileN: 256, TileK: 256}, // tiles clamp to shape
	}
	for _, g := range shapes {
		if got, want := g.BytesMoved(), bruteGEMMBytes(g); got != want {
			t.Errorf("%s: analytic bytes %v != tile-walk bytes %v", g, got, want)
		}
	}
}

func TestConvBytesMatchTileWalk(t *testing.T) {
	convs := []ConvSpec{
		NewConv(4, 56, 56, 64, 128, 3, 3, FP16),
		NewConv(1, 224, 224, 3, 64, 7, 7, FP32),
		{Batch: 2, H: 13, W: 17, InC: 5, OutC: 9, KH: 3, KW: 5, Stride: 2, Pad: 1, Dtype: FP16},
	}
	for _, c := range convs {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if got, want := c.BytesMoved(), bruteGEMMBytes(c.gemm()); got != want {
			t.Errorf("%s: analytic bytes %v != reduced-GEMM tile walk %v", c, got, want)
		}
	}
}

func TestAttentionBytesMatchTileWalk(t *testing.T) {
	attns := []AttentionSpec{
		AttentionPrefill(2, 8, 512, 64, FP16),
		AttentionDecode(4, 32, 2048, 128, FP16),
		{Batch: 1, Heads: 3, SeqQ: 100, SeqKV: 333, HeadDim: 48, Dtype: FP32, TileQ: 33},
	}
	for _, a := range attns {
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if got, want := a.BytesMoved(), bruteAttentionBytes(a); got != want {
			t.Errorf("%s: analytic bytes %v != tile-walk bytes %v", a, got, want)
		}
	}
}

// TestIntensityMonotoneInTiles pins the central tiling property: shrinking
// any traffic-relevant tile can only add reload passes, so intensity is
// monotone non-increasing as the tile shrinks (equal is allowed — TileK
// never changes DRAM traffic, and tiles already covering the extent are
// equivalent).
func TestIntensityMonotoneInTiles(t *testing.T) {
	tiles := []int{4096, 1024, 512, 128, 100, 64, 17, 8, 3, 1}
	g0 := NewGEMM(1536, 1280, 768, FP16)
	for _, axis := range []struct {
		name string
		set  func(*GEMMSpec, int)
	}{
		{"TileM", func(g *GEMMSpec, v int) { g.TileM = v }},
		{"TileN", func(g *GEMMSpec, v int) { g.TileN = v }},
		{"TileK", func(g *GEMMSpec, v int) { g.TileK = v }},
	} {
		prev := math.Inf(1)
		for _, tile := range tiles {
			g := g0
			axis.set(&g, tile)
			got := g.Intensity()
			if math.IsNaN(got) || got <= 0 {
				t.Fatalf("gemm %s=%d: intensity %v", axis.name, tile, got)
			}
			if got > prev {
				t.Errorf("gemm intensity increased as %s shrank to %d: %v > %v", axis.name, tile, got, prev)
			}
			prev = got
		}
	}

	prev := math.Inf(1)
	for _, tile := range tiles {
		a := AttentionPrefill(1, 8, 1024, 64, FP16)
		a.TileQ = tile
		got := a.Intensity()
		if got > prev {
			t.Errorf("attention intensity increased as TileQ shrank to %d: %v > %v", tile, got, prev)
		}
		prev = got
	}
}

// TestDegenerateShapesStayFinite covers the shapes that used to be easy to
// get wrong: unit dimensions, batch-1 decode, single-pixel conv. All must
// produce finite positive work/traffic/intensity and a Kernel that passes
// Validate.
func TestDegenerateShapesStayFinite(t *testing.T) {
	specs := []DLSpec{
		NewGEMM(1, 1, 1, FP64),
		NewGEMM(1, 4096, 4096, FP16),
		NewGEMM(4096, 1, 1, INT8),
		NewConv(1, 1, 1, 1, 1, 1, 1, FP32),
		AttentionDecode(1, 1, 1, 1, FP16),
		AttentionDecode(1, 32, 2048, 128, FP16),
		AttentionSpec{Batch: 1, Heads: 1, SeqQ: 1, SeqKV: 1, HeadDim: 1, Dtype: BF16},
	}
	for _, sp := range specs {
		for name, v := range map[string]float64{
			"FLOPs": sp.FLOPs(), "bytes": sp.BytesMoved(), "intensity": sp.Intensity(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Errorf("%s: %s = %v, want finite positive", sp, name, v)
			}
		}
		k, err := sp.Kernel()
		if err != nil {
			t.Errorf("%s: Kernel() failed: %v", sp, err)
			continue
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%s: derived kernel invalid: %v", sp, err)
		}
	}
}

// TestSpecStringFixedPoint pins the canonical-form property the service
// cache keys rely on: String() re-parses to a spec with the identical
// string, and equivalent spellings converge on it.
func TestSpecStringFixedPoint(t *testing.T) {
	specs := []DLSpec{
		NewGEMM(4096, 4096, 4096, FP16),
		GEMMSpec{M: 100, N: 100, K: 100, Dtype: FP32, TileM: 999, TileN: 1, TileK: 50},
		NewConv(8, 56, 56, 64, 128, 3, 3, FP16),
		AttentionPrefill(1, 32, 2048, 128, FP16),
		AttentionDecode(8, 32, 2048, 128, INT8),
	}
	for _, sp := range specs {
		canon := sp.String()
		re, err := ParseDL(canon)
		if err != nil {
			t.Errorf("canonical form %q does not re-parse: %v", canon, err)
			continue
		}
		if re.String() != canon {
			t.Errorf("canonical form not a fixed point: %q -> %q", canon, re.String())
		}
	}
	// Dtype aliases and omitted tile sections land on the same canonical form.
	aliases := map[string]string{
		"gemm:64x64x64:half":           "gemm:64x64x64:fp16:t64x64x64",
		"GEMM:64x64x64:FP16:t64x64x64": "gemm:64x64x64:fp16:t64x64x64",
		"attn:1x8x512x512x64:bfloat16": "attn:1x8x512x512x64:bf16:tq64",
		"conv:1x8x8x4:2x3x3:double":    "conv:1x8x8x4:2x3x3:s1p1:fp64:t64x2x36",
	}
	for in, want := range aliases {
		sp, err := ParseDL(in)
		if err != nil {
			t.Errorf("ParseDL(%q): %v", in, err)
			continue
		}
		if sp.String() != want {
			t.Errorf("ParseDL(%q) canonicalized to %q, want %q", in, sp.String(), want)
		}
	}
}

func TestWithBatchScalesWork(t *testing.T) {
	specs := []DLSpec{
		NewGEMM(128, 4096, 4096, FP16),
		NewConv(1, 56, 56, 64, 128, 3, 3, FP16),
		AttentionDecode(1, 32, 2048, 128, FP16),
	}
	for _, sp := range specs {
		b4, err := sp.WithBatch(4)
		if err != nil {
			t.Fatalf("%s: %v", sp, err)
		}
		if got, want := b4.FLOPs(), 4*sp.FLOPs(); got != want {
			t.Errorf("%s: batch-4 FLOPs %v, want exactly 4x %v", sp, got, want)
		}
		// Batching never hurts reuse: bytes grow at most linearly, so
		// intensity is monotone non-decreasing in batch.
		if b4.Intensity() < sp.Intensity() {
			t.Errorf("%s: batching reduced intensity: %v -> %v", sp, sp.Intensity(), b4.Intensity())
		}
		if _, err := sp.WithBatch(0); err == nil {
			t.Errorf("%s: WithBatch(0) accepted", sp)
		}
	}
	// The serving asymmetry: batch amortizes GEMM weight traffic
	// substantially, decode-attention KV traffic not at all.
	g := NewGEMM(1, 4096, 4096, FP16)
	g8, _ := g.WithBatch(8)
	if gain := g8.Intensity() / g.Intensity(); gain < 4 {
		t.Errorf("batch-8 decode GEMM intensity gain %v, want near-linear (>4x)", gain)
	}
	a := AttentionDecode(1, 32, 2048, 128, FP16)
	a8, _ := a.WithBatch(8)
	if gain := a8.Intensity() / a.Intensity(); gain > 1.01 {
		t.Errorf("batch-8 decode attention intensity gain %v, want ~1 (KV traffic scales with batch)", gain)
	}
}

// TestSpecValidationErrors is the table-driven error-path coverage for the
// spec constructors: every rejected parameter produces a descriptive error,
// never a NaN/Inf kernel.
func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec DLSpec
		want string
	}{
		{"gemm zero M", GEMMSpec{M: 0, N: 4, K: 4, Dtype: FP16}, "M must be positive"},
		{"gemm negative N", GEMMSpec{M: 4, N: -1, K: 4, Dtype: FP16}, "N must be positive"},
		{"gemm zero K", GEMMSpec{M: 4, N: 4, K: 0, Dtype: FP16}, "K must be positive"},
		{"gemm bad dtype", GEMMSpec{M: 4, N: 4, K: 4, Dtype: Dtype(99)}, "invalid dtype"},
		{"gemm negative tile", GEMMSpec{M: 4, N: 4, K: 4, Dtype: FP16, TileM: -8}, "TileM must be positive"},
		{"conv zero batch", ConvSpec{H: 8, W: 8, InC: 4, OutC: 4, KH: 3, KW: 3, Dtype: FP16}, "batch must be positive"},
		{"conv negative stride", ConvSpec{Batch: 1, H: 8, W: 8, InC: 4, OutC: 4, KH: 3, KW: 3, Stride: -2, Dtype: FP16}, "stride must be positive"},
		{"conv filter too big", ConvSpec{Batch: 1, H: 4, W: 4, InC: 4, OutC: 4, KH: 9, KW: 9, Stride: 1, Pad: 0, Dtype: FP16}, "output extent"},
		{"conv negative pad", ConvSpec{Batch: 1, H: 8, W: 8, InC: 4, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: -1, Dtype: FP16}, "padding must be non-negative"},
		{"attn zero heads", AttentionSpec{Batch: 1, SeqQ: 8, SeqKV: 8, HeadDim: 8, Dtype: FP16}, "heads must be positive"},
		{"attn zero kv", AttentionSpec{Batch: 1, Heads: 2, SeqQ: 8, SeqKV: 0, HeadDim: 8, Dtype: FP16}, "KV length must be positive"},
		{"attn negative tile", AttentionSpec{Batch: 1, Heads: 2, SeqQ: 8, SeqKV: 8, HeadDim: 8, Dtype: FP16, TileQ: -4}, "TileQ must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, kerr := tc.spec.Kernel(); kerr == nil {
				t.Fatalf("Kernel() accepted invalid spec %+v", tc.spec)
			}
		})
	}
}

// TestKernelValidateRejectsNonFinite is the Kernel-level hardening: NaN/Inf
// and out-of-range characterization fields are named in the error instead of
// flowing into the roofline.
func TestKernelValidateRejectsNonFinite(t *testing.T) {
	base := func() Kernel {
		k, err := NewGEMM(64, 64, 64, FP16).Kernel()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	cases := []struct {
		name string
		mod  func(*Kernel)
		want string
	}{
		{"nan intensity", func(k *Kernel) { k.Intensity = math.NaN() }, "non-finite intensity"},
		{"inf intensity", func(k *Kernel) { k.Intensity = math.Inf(1) }, "non-finite intensity"},
		{"nan footprint", func(k *Kernel) { k.FootprintGB = math.NaN() }, "non-finite footprint"},
		{"inf MLP", func(k *Kernel) { k.MLPPerCU = math.Inf(-1) }, "non-finite MLP"},
		{"nan write frac", func(k *Kernel) { k.WriteFrac = math.NaN() }, "non-finite write fraction"},
		{"nan gamma", func(k *Kernel) { k.CUScalingGamma = math.NaN() }, "non-finite CU scaling gamma"},
		{"negative gamma", func(k *Kernel) { k.CUScalingGamma = -0.1 }, "negative CU scaling gamma"},
		{"negative footprint", func(k *Kernel) { k.FootprintGB = -1 }, "negative footprint"},
		{"negative thrash opb", func(k *Kernel) { k.ThrashOPB = -1 }, "negative thrash ops-per-byte"},
		{"serial frac above one", func(k *Kernel) { k.SerialFrac = 1.5 }, "serial fraction out of [0,1]"},
		{"zero intensity", func(k *Kernel) { k.Intensity = 0 }, "non-positive intensity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := base()
			tc.mod(&k)
			err := k.Validate()
			if err == nil {
				t.Fatal("Validate accepted a corrupted kernel")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Every suite and DL-suite kernel still validates after the hardening.
	for _, k := range append(Suite(), DLSuite()...) {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestTransformerBlockApp(t *testing.T) {
	for _, b := range []TransformerBlock{
		TransformerPrefill(1, 2048),
		TransformerPrefill(8, 512),
		TransformerDecode(1, 2048),
		TransformerDecode(32, 4096),
	} {
		app, err := b.App()
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if err := app.Validate(); err != nil {
			t.Errorf("%s: app invalid: %v", b.Name(), err)
		}
		var wsum float64
		for _, ph := range app.Phases {
			wsum += ph.Weight
		}
		if math.Abs(wsum-1) > 1e-12 {
			t.Errorf("%s: phase weights sum to %v, want 1", b.Name(), wsum)
		}
	}
	if _, err := TransformerDecode(0, 2048).App(); err == nil {
		t.Error("zero-batch transformer block accepted")
	}
	if _, err := TransformerPrefill(1, 0).App(); err == nil {
		t.Error("zero-seq prefill block accepted")
	}
}

func TestParseBatchList(t *testing.T) {
	got, err := ParseBatchList(" 8, 1,4, 4 ,2 ")
	if err != nil {
		t.Fatal(err)
	}
	if FormatBatchList(got) != "1,2,4,8" {
		t.Errorf("canonical batch list %q, want 1,2,4,8", FormatBatchList(got))
	}
	for _, bad := range []string{"", " , ", "1,x", "0", "-3", "1,2,1048577"} {
		if _, err := ParseBatchList(bad); err == nil {
			t.Errorf("ParseBatchList(%q) accepted", bad)
		}
	}
}
