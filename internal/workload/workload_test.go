package workload

import (
	"testing"
)

func TestSuiteValid(t *testing.T) {
	ks := Suite()
	if len(ks) != 8 {
		t.Fatalf("suite has %d kernels, want 8 (Table I)", len(ks))
	}
	for _, k := range ks {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestTableIOrder(t *testing.T) {
	want := []string{"MaxFlops", "CoMD", "CoMD-LJ", "HPGMG", "LULESH", "MiniAMR", "XSBench", "SNAP"}
	got := Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suite order %v, want %v", got, want)
		}
	}
}

func TestCategories(t *testing.T) {
	wantCat := map[string]Category{
		"MaxFlops": ComputeIntensive,
		"CoMD":     Balanced,
		"CoMD-LJ":  Balanced,
		"HPGMG":    Balanced,
		"LULESH":   MemoryIntensive,
		"MiniAMR":  MemoryIntensive,
		"XSBench":  MemoryIntensive,
		"SNAP":     MemoryIntensive,
	}
	for _, k := range Suite() {
		if k.Category != wantCat[k.Name] {
			t.Errorf("%s category = %v, want %v", k.Name, k.Category, wantCat[k.Name])
		}
	}
}

func TestCategoryConsistency(t *testing.T) {
	for _, k := range Suite() {
		switch k.Category {
		case ComputeIntensive:
			if k.Intensity < 20 {
				t.Errorf("%s: compute-intensive kernels need high intensity, got %v", k.Name, k.Intensity)
			}
			if k.ExtTrafficFrac > 0.05 {
				t.Errorf("%s: compute-intensive kernels rarely touch external memory", k.Name)
			}
		case MemoryIntensive:
			if k.Intensity > 3 {
				t.Errorf("%s: memory-intensive intensity = %v", k.Name, k.Intensity)
			}
			if k.ThrashSlope == 0 {
				t.Errorf("%s: memory-intensive kernels degrade past their sweet spot (§IV-C)", k.Name)
			}
			if k.ExtTrafficFrac < 0.4 {
				t.Errorf("%s: paper reports 46-89%% external traffic for large problems", k.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("LULESH")
	if err != nil || k.Name != "LULESH" {
		t.Errorf("ByName: %v, %v", k.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel must error")
	}
}

func TestValidateRejectsBadKernels(t *testing.T) {
	good := CoMD()
	cases := []func(*Kernel){
		func(k *Kernel) { k.Name = "" },
		func(k *Kernel) { k.Intensity = 0 },
		func(k *Kernel) { k.MaxUtilization = 1.5 },
		func(k *Kernel) { k.MLPPerCU = 0 },
		func(k *Kernel) { k.Activity = -0.1 },
		func(k *Kernel) { k.CacheLocality = 2 },
		func(k *Kernel) { k.ExtTrafficFrac = -1 },
		func(k *Kernel) { k.WriteFrac = 1.1 },
		func(k *Kernel) { k.ThrashSlope = -1 },
		func(k *Kernel) { k.Compressibility = 0.5 },
		func(k *Kernel) { k.Trace = nil },
	}
	for i, mutate := range cases {
		k := good
		mutate(&k)
		if err := k.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if ComputeIntensive.String() != "compute-intensive" ||
		Balanced.String() != "balanced" ||
		MemoryIntensive.String() != "memory-intensive" {
		t.Error("category strings wrong")
	}
	if Category(42).String() == "" {
		t.Error("unknown category should render")
	}
}

func TestPaperAnchors(t *testing.T) {
	// MaxFlops is the peak-throughput probe: near-full utilization and
	// activity, negligible footprint.
	mf := MaxFlops()
	if mf.MaxUtilization < 0.85 || mf.Activity != 1.0 || mf.FootprintGB > 0.1 {
		t.Errorf("MaxFlops characterization off: %+v", mf)
	}
	// XSBench is the most latency-bound: lowest MLP among the
	// memory-intensive kernels and lowest locality in the suite.
	xs := XSBench()
	for _, k := range Suite() {
		if k.Name != xs.Name && k.CacheLocality < xs.CacheLocality {
			t.Errorf("%s locality %v below XSBench's %v", k.Name, k.CacheLocality, xs.CacheLocality)
		}
	}
	// SNAP hides chiplet latency with abundant parallelism (Fig. 7).
	if SNAP().MLPPerCU < 48 {
		t.Error("SNAP needs high MLP to make the chiplet overhead negligible")
	}
	// LULESH compresses best (Fig. 12: it benefits most from compression).
	lu := LULESH()
	for _, k := range Suite() {
		if k.Name != lu.Name && k.Compressibility > lu.Compressibility {
			t.Errorf("%s compressibility %v exceeds LULESH's %v", k.Name, k.Compressibility, lu.Compressibility)
		}
	}
}

func TestApplications(t *testing.T) {
	apps := Applications()
	if len(apps) < 4 {
		t.Fatalf("applications = %d", len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		// The dominant kernel is the Table I entry.
		if _, err := ByName(a.Dominant().Name); err != nil {
			t.Errorf("%s: dominant kernel %q not in Table I", a.Name, a.Dominant().Name)
		}
		if a.Phases[0].Weight < 0.5 {
			t.Errorf("%s: first phase should dominate (weight %v)", a.Name, a.Phases[0].Weight)
		}
	}
	if _, err := ApplicationByName("CoMD"); err != nil {
		t.Error(err)
	}
	if _, err := ApplicationByName("nope"); err == nil {
		t.Error("unknown application accepted")
	}
}

func TestApplicationValidateRejects(t *testing.T) {
	good, err := ApplicationByName("SNAP")
	if err != nil {
		t.Fatal(err)
	}
	a := good
	a.Name = ""
	if a.Validate() == nil {
		t.Error("nameless app accepted")
	}
	b := good
	b.Phases = append([]AppPhase(nil), good.Phases...)
	b.Phases[0].Weight = 0.5 // weights no longer sum to 1
	if b.Validate() == nil {
		t.Error("bad weight sum accepted")
	}
	c := good
	c.Phases = nil
	if c.Validate() == nil {
		t.Error("phaseless app accepted")
	}
}
