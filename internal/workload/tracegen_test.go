package workload

import (
	"testing"
)

func TestTraceLengthAndDeterminism(t *testing.T) {
	for _, k := range Suite() {
		const n = 5000
		a := k.Trace(7, n)
		if len(a) != n {
			t.Errorf("%s: trace length %d, want %d", k.Name, len(a), n)
			continue
		}
		b := k.Trace(7, n)
		same := len(a) == len(b)
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if !same {
			t.Errorf("%s: trace not deterministic for equal seeds", k.Name)
		}
	}
}

func TestTraceSeedsDiffer(t *testing.T) {
	// Kernels with random components must produce different traces for
	// different seeds (deterministic streaming kernels are exempt).
	for _, name := range []string{"CoMD", "LULESH", "MiniAMR", "XSBench"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := k.Trace(1, 2000)
		b := k.Trace(2, 2000)
		diff := false
		for i := range a {
			if a[i] != b[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Errorf("%s: seeds 1 and 2 gave identical traces", name)
		}
	}
}

func TestTraceWriteFractions(t *testing.T) {
	// Trace write mix should be in the same regime as the declared
	// characterization (loose band: the generators are pattern models).
	for _, k := range Suite() {
		tr := k.Trace(3, 20000)
		writes := 0
		for _, a := range tr {
			if a.Write {
				writes++
			}
		}
		got := float64(writes) / float64(len(tr))
		lo, hi := k.WriteFrac-0.2, k.WriteFrac+0.2
		if got < lo || got > hi {
			t.Errorf("%s: trace write fraction %.3f vs declared %.2f", k.Name, got, k.WriteFrac)
		}
	}
}

func TestTraceFootprintRegimes(t *testing.T) {
	span := func(tr []Access) uint64 {
		var lo, hi uint64 = ^uint64(0), 0
		for _, a := range tr {
			if a.Addr < lo {
				lo = a.Addr
			}
			if a.Addr > hi {
				hi = a.Addr
			}
		}
		return hi - lo
	}
	mf := MaxFlops()
	if s := span(mf.Trace(1, 20000)); s > 8<<20 {
		t.Errorf("MaxFlops address span %d exceeds its tiny working set", s)
	}
	xs := XSBench()
	if s := span(xs.Trace(1, 20000)); s < 1<<36 {
		t.Errorf("XSBench address span %d too small for a multi-GB table", s)
	}
}

func TestXSBenchValuesHighEntropy(t *testing.T) {
	// XSBench table entries should look random: adjacent values must not
	// share their high 32 bits (which is what makes them incompressible).
	tr := XSBench().Trace(5, 4096)
	shared := 0
	for i := 1; i < len(tr); i++ {
		if tr[i].Value>>32 == tr[i-1].Value>>32 {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(tr)); frac > 0.1 {
		t.Errorf("XSBench values share high bits too often: %.3f", frac)
	}
}

func TestSmoothKernelsLowEntropy(t *testing.T) {
	// Simulation-field kernels produce smooth doubles; most consecutive
	// values share exponent and high mantissa bits.
	for _, name := range []string{"CoMD", "LULESH", "HPGMG"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := k.Trace(5, 4096)
		shared := 0
		for i := 1; i < len(tr); i++ {
			if tr[i].Value>>48 == tr[i-1].Value>>48 {
				shared++
			}
		}
		if frac := float64(shared) / float64(len(tr)); frac < 0.5 {
			t.Errorf("%s: smooth values should share high bits, got %.3f", name, frac)
		}
	}
}

func TestSNAPStreams(t *testing.T) {
	// SNAP's sweep advances many unit-stride streams; re-reading the
	// trace should show strictly increasing offsets within a stream.
	tr := SNAP().Trace(9, 10000)
	const streamStride = 1 << 26
	last := map[uint64]uint64{}
	for _, a := range tr {
		if a.Write {
			continue
		}
		stream := a.Addr / streamStride
		off := a.Addr % streamStride
		if prev, ok := last[stream]; ok && off < prev {
			t.Fatalf("stream %d went backwards: %d after %d", stream, off, prev)
		}
		last[stream] = off
	}
	if len(last) < 32 {
		t.Errorf("SNAP should exercise many concurrent streams, got %d", len(last))
	}
}
