package dse

import (
	"context"
	"sync"
	"testing"
	"time"

	"ena/internal/arch"
	"ena/internal/obs"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// The full exploration is reused across tests (it is the expensive part).
var (
	once    sync.Once
	base    Outcome
	withOpt Outcome
)

func explored() (Outcome, Outcome) {
	once.Do(func() {
		ks := workload.Suite()
		base = Explore(DefaultSpace(), ks, arch.NodePowerBudgetW, 0)
		withOpt = Explore(DefaultSpace(), ks, arch.NodePowerBudgetW, powopt.All)
	})
	return base, withOpt
}

func TestSpace(t *testing.T) {
	s := DefaultSpace()
	pts := s.Points()
	if len(pts) != len(s.CUs)*len(s.FreqsMHz)*len(s.BWsTBps) {
		t.Errorf("point count = %d", len(pts))
	}
	if len(pts) < 400 {
		t.Errorf("paper explored over a thousand configs; grid too small: %d", len(pts))
	}
	for _, p := range pts {
		if p.CUs > arch.MaxCUsPerNode {
			t.Errorf("point %v exceeds area budget", p)
		}
	}
}

func TestPointHelpers(t *testing.T) {
	p := Point{CUs: 320, FreqMHz: 1000, BWTBps: 3}
	if p.String() != "320 / 1000 / 3" {
		t.Errorf("String = %q", p.String())
	}
	cfg := p.Config()
	if cfg.TotalCUs() != 320 {
		t.Error("Config mismatch")
	}
}

func TestBestMeanIsPaperConfig(t *testing.T) {
	// §V headline: 320 CUs at 1 GHz with 3 TB/s is best on average under
	// the 160 W budget.
	b, _ := explored()
	got := b.BestMean.Point
	want := Point{CUs: arch.BestMeanCUs, FreqMHz: arch.BestMeanFreqMHz, BWTBps: arch.BestMeanBWTBps}
	if got != want {
		t.Errorf("best-mean = %v, want %v", got, want)
	}
	if !b.BestMean.FeasibleAll {
		t.Error("best-mean must be feasible for every kernel")
	}
}

func TestFeasibilityRespected(t *testing.T) {
	b, _ := explored()
	for i, k := range b.Kernels {
		e := b.BestPerKernel[i]
		if e.BudgetW[i] > b.BudgetW+1e-9 {
			t.Errorf("%s: best point %v busts the budget: %v W", k.Name, e.Point, e.BudgetW[i])
		}
	}
	// Every eval marked feasible is genuinely under budget everywhere.
	checked := 0
	for _, e := range b.Evals {
		if !e.FeasibleAll {
			continue
		}
		for ki := range b.Kernels {
			if e.BudgetW[ki] > b.BudgetW+1e-9 {
				t.Fatalf("point %v marked feasible but kernel %d costs %v W",
					e.Point, ki, e.BudgetW[ki])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no feasible points at all")
	}
}

func TestPerKernelPicksShape(t *testing.T) {
	b, _ := explored()
	byName := map[string]Eval{}
	for i, k := range b.Kernels {
		byName[k.Name] = b.BestPerKernel[i]
	}
	// MaxFlops: maximum CUs it can power, minimal bandwidth (Table II:
	// 384 / 925 / 1).
	mf := byName["MaxFlops"].Point
	if mf.CUs < 320 || mf.BWTBps > 2 {
		t.Errorf("MaxFlops pick %v: want many CUs, little bandwidth", mf)
	}
	// Memory-intensive kernels buy more bandwidth than the best-mean's 3.
	for _, n := range []string{"LULESH", "MiniAMR", "XSBench", "SNAP"} {
		if p := byName[n].Point; p.BWTBps < 4 {
			t.Errorf("%s pick %v: memory-intensive kernels want BW >= 4", n, p)
		}
	}
	// The latency-sensitive kernels clock high (Table II: XSBench 1400).
	if p := byName["XSBench"].Point; p.FreqMHz < 1200 {
		t.Errorf("XSBench pick %v: want a high clock", p)
	}
	// SNAP trades toward width + bandwidth rather than pure frequency
	// (Table II: 384/700/5; our pick keeps the bandwidth-heavy shape but
	// lands at a higher clock — see EXPERIMENTS.md).
	if p := byName["SNAP"].Point; p.CUs < 320 || p.FreqMHz > 1200 {
		t.Errorf("SNAP pick %v: want a wide, bandwidth-heavy configuration", p)
	}
}

func TestMeanScoreNormalized(t *testing.T) {
	b, _ := explored()
	for _, e := range b.Evals {
		if e.MeanScore < 0 || e.MeanScore > 1+1e-9 {
			t.Fatalf("score out of [0,1]: %v at %v", e.MeanScore, e.Point)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	rows := tableIIFromOutcomes(t)
	if len(rows) != 8 {
		t.Fatalf("Table II rows = %d", len(rows))
	}
	var maxWithout, maxWith float64
	for _, r := range rows {
		if r.BenefitWithoutOpt < -1e-9 {
			t.Errorf("%s: negative benefit %v (best-per-app must beat best-mean)", r.Kernel, r.BenefitWithoutOpt)
		}
		if r.BenefitWithOpt < r.BenefitWithoutOpt-1e-9 {
			t.Errorf("%s: optimizations shrank the benefit (%v -> %v)",
				r.Kernel, r.BenefitWithoutOpt, r.BenefitWithOpt)
		}
		if r.BenefitWithOpt > 80 {
			t.Errorf("%s: with-opt benefit %v%% implausibly large (paper max 54.3%%)",
				r.Kernel, r.BenefitWithOpt)
		}
		if r.BenefitWithoutOpt > maxWithout {
			maxWithout = r.BenefitWithoutOpt
		}
		if r.BenefitWithOpt > maxWith {
			maxWith = r.BenefitWithOpt
		}
	}
	// Paper: up to 47.3% without and 54.3% with power optimizations.
	if maxWithout < 15 {
		t.Errorf("largest without-opt benefit only %v%%", maxWithout)
	}
	if maxWith < 30 {
		t.Errorf("largest with-opt benefit only %v%%", maxWith)
	}
}

// tableIIFromOutcomes mirrors TableII but reuses the cached explorations.
func tableIIFromOutcomes(t *testing.T) []TableRow {
	t.Helper()
	b, o := explored()
	ks := b.Kernels
	rows := make([]TableRow, len(ks))
	for i, k := range ks {
		ref := b.BestMean.PerfTFLOPs[i]
		row := TableRow{Kernel: k.Name, BestMeanPerfTFLOPs: ref}
		if ref > 0 {
			bp := b.BestPerKernel[i]
			row.BestConfig = bp.Point
			row.BenefitWithoutOpt = (bp.PerfTFLOPs[i]/ref - 1) * 100
			op := o.BestPerKernel[i]
			row.BestConfigWithOpt = op.Point
			row.BenefitWithOpt = (op.PerfTFLOPs[i]/ref - 1) * 100
		}
		rows[i] = row
	}
	return rows
}

func TestOptimizationsEnlargeFeasibleSet(t *testing.T) {
	b, o := explored()
	nb, no := 0, 0
	for i := range b.Evals {
		if b.Evals[i].FeasibleAll {
			nb++
		}
		if o.Evals[i].FeasibleAll {
			no++
		}
		if b.Evals[i].FeasibleAll && !o.Evals[i].FeasibleAll {
			t.Fatalf("point %v feasible without opts but not with", b.Evals[i].Point)
		}
	}
	if no <= nb {
		t.Errorf("optimizations should unlock design points: %d -> %d", nb, no)
	}
}

func TestInvalidPointsInfeasible(t *testing.T) {
	space := Space{CUs: []int{999}, FreqsMHz: []float64{1000}, BWsTBps: []float64{3}}
	out := Explore(space, workload.Suite()[:1], arch.NodePowerBudgetW, 0)
	if out.Evals[0].FeasibleAll {
		t.Error("over-area point must be infeasible")
	}
}

func TestExploreDeterministic(t *testing.T) {
	// The sweep runs on a worker pool; results must not depend on
	// scheduling (each point is evaluated independently).
	space := Space{
		CUs:      []int{256, 320},
		FreqsMHz: []float64{900, 1000, 1100},
		BWsTBps:  []float64{2, 3},
	}
	ks := workload.Suite()[:4]
	a := Explore(space, ks, arch.NodePowerBudgetW, 0)
	b := Explore(space, ks, arch.NodePowerBudgetW, 0)
	if a.BestMean.Point != b.BestMean.Point {
		t.Error("best-mean not deterministic")
	}
	for i := range a.Evals {
		if a.Evals[i].Point != b.Evals[i].Point ||
			a.Evals[i].MeanScore != b.Evals[i].MeanScore {
			t.Fatalf("eval %d differs between runs", i)
		}
		for ki := range ks {
			if a.Evals[i].PerfTFLOPs[ki] != b.Evals[i].PerfTFLOPs[ki] {
				t.Fatalf("eval %d kernel %d perf differs", i, ki)
			}
		}
	}
}

func TestExploreEmptyKernels(t *testing.T) {
	out := Explore(Space{CUs: []int{320}, FreqsMHz: []float64{1000}, BWsTBps: []float64{3}},
		nil, arch.NodePowerBudgetW, 0)
	if len(out.Evals) != 1 {
		t.Fatalf("evals = %d", len(out.Evals))
	}
	// With no kernels every point is vacuously feasible.
	if !out.Evals[0].FeasibleAll {
		t.Error("empty kernel set should be feasible")
	}
}

func TestBudgetScalesFeasibility(t *testing.T) {
	ks := workload.Suite()
	tight := Explore(DefaultSpace(), ks, 120, 0)
	loose := Explore(DefaultSpace(), ks, 200, 0)
	nT, nL := 0, 0
	for i := range tight.Evals {
		if tight.Evals[i].FeasibleAll {
			nT++
		}
		if loose.Evals[i].FeasibleAll {
			nL++
		}
		if tight.Evals[i].FeasibleAll && !loose.Evals[i].FeasibleAll {
			t.Fatal("loosening the budget removed a feasible point")
		}
	}
	if nL <= nT {
		t.Errorf("loose budget should admit more points: %d vs %d", nL, nT)
	}
}

func TestExploreContextBackgroundMatchesExplore(t *testing.T) {
	b, _ := explored()
	ks := workload.Suite()
	got, err := ExploreContext(context.Background(), DefaultSpace(), ks, arch.NodePowerBudgetW, 0, Instr{})
	if err != nil {
		t.Fatal(err)
	}
	if got.BestMean.Point != b.BestMean.Point {
		t.Errorf("best-mean = %v, want %v", got.BestMean.Point, b.BestMean.Point)
	}
	if len(got.Evals) != len(b.Evals) {
		t.Errorf("evals = %d, want %d", len(got.Evals), len(b.Evals))
	}
}

func TestExploreContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := obs.NewRegistry()
	out, err := ExploreContext(ctx, DefaultSpace(), workload.Suite(), arch.NodePowerBudgetW, 0, Instr{Reg: reg})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out.Evals) != 0 {
		t.Errorf("cancelled sweep returned %d evals, want none", len(out.Evals))
	}
	if n := reg.Snapshot().Counters["dse.points_evaluated"]; n != 0 {
		t.Errorf("pre-cancelled sweep evaluated %d points", n)
	}
	if n := reg.Snapshot().Counters["dse.sweeps_cancelled"]; n != 1 {
		t.Errorf("sweeps_cancelled = %d, want 1", n)
	}
}

// hugeSpace returns a sweep grid far larger than the paper's (tens of
// thousands of points) so a cancellation lands mid-sweep deterministically.
func hugeSpace() Space {
	s := Space{}
	for c := 192; c <= 384; c += 8 {
		s.CUs = append(s.CUs, c)
	}
	for f := 700.0; f <= 1500; f += 10 {
		s.FreqsMHz = append(s.FreqsMHz, f)
	}
	for b := 1.0; b <= 7; b += 0.5 {
		s.BWsTBps = append(s.BWsTBps, b)
	}
	return s
}

func TestExploreContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	space := hugeSpace()
	ks := workload.Suite()[:2]
	done := make(chan struct{})
	var out Outcome
	var err error
	go func() {
		defer close(done)
		out, err = ExploreContext(ctx, space, ks, arch.NodePowerBudgetW, 0, Instr{Reg: reg})
	}()
	// Cancel as soon as the sweep has demonstrably started (first points
	// evaluated), then verify it stopped long before the grid was done.
	evaluated := reg.Counter("dse.points_evaluated")
	for evaluated.Value() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := int64(len(space.Points()))
	got := reg.Snapshot().Counters["dse.points_evaluated"]
	if got == 0 || got >= total {
		t.Errorf("evaluated %d of %d points; want a strict partial sweep", got, total)
	}
	if len(out.Evals) != 0 {
		t.Errorf("cancelled sweep leaked %d partial evals", len(out.Evals))
	}
}

func TestEvaluateConfigContext(t *testing.T) {
	ks := workload.Suite()[:2]
	cfg := arch.BestMeanEHP()
	ev, err := EvaluateConfigContext(context.Background(), cfg, ks, arch.NodePowerBudgetW, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Point.CUs != cfg.TotalCUs() || ev.Point.BWTBps != cfg.InPackageBWTBps() {
		t.Errorf("point %v does not mirror config %v", ev.Point, cfg)
	}
	if len(ev.PerfTFLOPs) != len(ks) || ev.PerfTFLOPs[0] <= 0 {
		t.Errorf("per-kernel perf missing: %v", ev.PerfTFLOPs)
	}
	// Must agree with the sweep's own evaluation of the same point.
	grid, _, _ := evaluateCtx(context.Background(), Point{CUs: 320, FreqMHz: 1000, BWTBps: 3}, ks, arch.NodePowerBudgetW, 0, nil, false)
	for i := range ks {
		if ev.PerfTFLOPs[i] != grid.PerfTFLOPs[i] || ev.BudgetW[i] != grid.BudgetW[i] {
			t.Errorf("kernel %d: explicit-config eval diverges from grid eval", i)
		}
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateConfigContext(cctx, cfg, ks, arch.NodePowerBudgetW, 0); err == nil {
		t.Error("cancelled context must surface an error")
	}
}
