package dse

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"ena/internal/arch"
	"ena/internal/workload"
)

func TestSpaceValidate(t *testing.T) {
	ok := DefaultSpace()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default space invalid: %v", err)
	}
	expanded := ok
	expanded.GPUChiplets = []int{4, 8}
	expanded.HBMStackGBs = []float64{16, 32}
	expanded.ExtModules = []int{2, 4}
	if err := expanded.Validate(); err != nil {
		t.Fatalf("expanded space invalid: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Space)
		want string
	}{
		{"empty cus", func(s *Space) { s.CUs = nil }, "is empty"},
		{"empty freq", func(s *Space) { s.FreqsMHz = nil }, "is empty"},
		{"empty bw", func(s *Space) { s.BWsTBps = nil }, "is empty"},
		{"dup cus", func(s *Space) { s.CUs = []int{320, 320} }, "duplicate"},
		{"dup freq", func(s *Space) { s.FreqsMHz = []float64{1000, 1000} }, "duplicate"},
		{"zero bw", func(s *Space) { s.BWsTBps = []float64{0, 3} }, "non-positive"},
		{"negative cus", func(s *Space) { s.CUs = []int{-64} }, "non-positive"},
		{"nan hbm", func(s *Space) { s.HBMStackGBs = []float64{math.NaN()} }, "non-positive"},
		{"inf freq", func(s *Space) { s.FreqsMHz = []float64{math.Inf(1)} }, "non-finite"},
		{"dup chiplets", func(s *Space) { s.GPUChiplets = []int{8, 8} }, "duplicate"},
		{"zero extmod", func(s *Space) { s.ExtModules = []int{0} }, "non-positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DefaultSpace()
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestDefaultSpaceEnumerationUnchanged pins the expansion's compatibility
// contract: a space without packaging axes enumerates the exact pre-expansion
// grid — same count, same order, all points in classic (zero-packaging) form.
func TestDefaultSpaceEnumerationUnchanged(t *testing.T) {
	s := DefaultSpace()
	pts := s.Points()
	if len(pts) != 490 {
		t.Fatalf("default space has %d points, want 490", len(pts))
	}
	if s.Size() != len(pts) {
		t.Fatalf("Size() = %d, want %d", s.Size(), len(pts))
	}
	if pts[0] != (Point{CUs: 192, FreqMHz: 700, BWTBps: 1}) {
		t.Fatalf("first point = %+v", pts[0])
	}
	for _, p := range pts {
		if p.expanded() {
			t.Fatalf("classic space produced expanded point %+v", p)
		}
	}
}

func TestExpandedSpaceEnumeration(t *testing.T) {
	s := Space{
		CUs:         []int{256, 320},
		FreqsMHz:    []float64{1000},
		BWsTBps:     []float64{3},
		GPUChiplets: []int{4, 8},
		HBMStackGBs: []float64{16},
		ExtModules:  []int{2, 4},
	}
	pts := s.Points()
	if len(pts) != 8 || s.Size() != 8 {
		t.Fatalf("got %d points (Size %d), want 8", len(pts), s.Size())
	}
	// Packaging axes are outermost: the chiplet axis varies slowest.
	if pts[0].GPUChiplets != 4 || pts[len(pts)-1].GPUChiplets != 8 {
		t.Fatalf("packaging axes not outermost: first %+v last %+v", pts[0], pts[len(pts)-1])
	}
}

// TestVariantPointConfig: an expanded point materializes with the requested
// packaging, and a default-packaging variant behaves like the classic config.
func TestVariantPointConfig(t *testing.T) {
	p := Point{CUs: 320, FreqMHz: 1000, BWTBps: 3, GPUChiplets: 4, HBMStackGB: 16, ExtModules: 2}
	cfg := p.Config()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("variant config invalid: %v", err)
	}
	if got := cfg.TotalCUs(); got != 320 {
		t.Errorf("TotalCUs = %d, want 320", got)
	}
	if got := cfg.InPackageBWTBps(); math.Abs(got-3) > 1e-9 {
		t.Errorf("InPackageBWTBps = %v, want 3", got)
	}

	classic := Point{CUs: 320, FreqMHz: 1000, BWTBps: 3}.Config()
	deflt := arch.EHPVariant(320, 1000, 3, 0, 0, 0)
	deflt.Name = classic.Name
	if !reflect.DeepEqual(classic, deflt) {
		t.Errorf("EHPVariant at defaults differs from EHP beyond the name")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []Space{
		DefaultSpace(),
		{
			CUs:         []int{192, 320},
			FreqsMHz:    []float64{925, 1000},
			BWsTBps:     []float64{3},
			GPUChiplets: []int{4, 8},
			HBMStackGBs: []float64{16, 32},
			ExtModules:  []int{2, 4},
		},
	} {
		spec := s.Spec()
		got, err := ParseSpace(spec)
		if err != nil {
			t.Fatalf("ParseSpace(%q): %v", spec, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip of %q = %+v, want %+v", spec, got, s)
		}
	}
}

func TestParseSpaceCanonicalizes(t *testing.T) {
	s, err := ParseSpace("bw=3,1;cus=320,192;freq=1000")
	if err != nil {
		t.Fatal(err)
	}
	want := Space{CUs: []int{192, 320}, FreqsMHz: []float64{1000}, BWsTBps: []float64{1, 3}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("got %+v, want %+v", s, want)
	}
	if s.Spec() != "cus=192,320;freq=1000;bw=1,3" {
		t.Fatalf("Spec() = %q", s.Spec())
	}
}

func TestParseSpaceRejects(t *testing.T) {
	for _, spec := range []string{
		"",
		"cus=320",                          // missing freq/bw
		"cus=320;freq=1000;bw=3;bw=4",      // repeated axis
		"cus=320;freq=1000;bw=3;turbo=9",   // unknown axis
		"cus=320,320;freq=1000;bw=3",       // duplicate value
		"cus=0;freq=1000;bw=3",             // non-positive
		"cus=320;freq=+Inf;bw=3",           // non-finite
		"cus=320;freq=NaN;bw=3",            // non-finite
		"cus=x;freq=1000;bw=3",             // unparsable
		"cus=320;freq=1000;bw=3;chiplets=", // empty packaging values
	} {
		if _, err := ParseSpace(spec); err == nil {
			t.Errorf("ParseSpace(%q) accepted, want error", spec)
		}
	}
}

// TestPerfCacheLRUBounds: the sweep store evicts least-recently-used entries
// past its cap instead of growing without bound.
func TestPerfCacheLRUBounds(t *testing.T) {
	ks := workload.Suite()[:1]
	cache := NewPerfCacheSized(2, 4)
	spaces := []Space{
		{CUs: []int{320}, FreqsMHz: []float64{1000}, BWsTBps: []float64{1}},
		{CUs: []int{320}, FreqsMHz: []float64{1000}, BWsTBps: []float64{2}},
		{CUs: []int{320}, FreqsMHz: []float64{1000}, BWsTBps: []float64{3}},
	}
	for _, s := range spaces {
		ExploreCached(s, ks, arch.NodePowerBudgetW, 0, cache)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", cache.Len())
	}
	// The oldest sweep (spaces[0]) was evicted: re-exploring it must miss
	// (and refill), while spaces[2] — most recent — must still hit.
	if _, ok := cache.get(cacheKey(spaces[0], ks), 1); ok {
		t.Error("evicted entry still present")
	}
	if _, ok := cache.get(cacheKey(spaces[2], ks), 1); !ok {
		t.Error("most-recent entry evicted")
	}
}

// TestPointEvaluatorBitIdentical: the point-level evaluator — cold, and warm
// through the point-row cache — matches EvaluatePointContext bit-for-bit,
// and the point store respects its entry cap.
func TestPointEvaluatorBitIdentical(t *testing.T) {
	ks := workload.Suite()[:3]
	ctx := context.Background()
	cache := NewPerfCacheSized(1, 2)
	eval := NewPointEvaluator(ks, arch.NodePowerBudgetW, 0, cache)
	pts := []Point{
		{CUs: 320, FreqMHz: 1000, BWTBps: 3},
		{CUs: 256, FreqMHz: 925, BWTBps: 2, GPUChiplets: 4, HBMStackGB: 16, ExtModules: 2},
		{CUs: 384, FreqMHz: 1500, BWTBps: 7},
	}
	for round := 0; round < 2; round++ {
		for _, p := range pts {
			want, err := EvaluatePointContext(ctx, p, ks, arch.NodePowerBudgetW, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eval(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d point %v: cached evaluator diverged\n got %+v\nwant %+v", round, p, got, want)
			}
		}
	}
	if n := cache.Len(); n > 2 {
		t.Fatalf("point store holds %d entries, want <= cap 2", n)
	}
}
