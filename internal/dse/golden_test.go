package dse

// Golden regression snapshot of the full DefaultSpace exploration. The
// paper's headline result (§V: 320 CUs / 1000 MHz / 3 TB/s best on average)
// and the per-application Table II winners are locked down here so
// instrumentation changes and future hot-path optimization work cannot
// silently shift the selected design points. If a deliberate model change
// moves a winner, update the snapshot in the same commit and say why.

import (
	"math"
	"testing"
)

// goldenBase are the per-kernel best configurations without power
// optimizations; goldenOpt with the full §V-E stack enabled.
var (
	goldenBase = map[string]Point{
		"MaxFlops": {CUs: 384, FreqMHz: 925, BWTBps: 1},
		"CoMD":     {CUs: 224, FreqMHz: 1300, BWTBps: 4},
		"CoMD-LJ":  {CUs: 192, FreqMHz: 1400, BWTBps: 4},
		"HPGMG":    {CUs: 384, FreqMHz: 1000, BWTBps: 4},
		"LULESH":   {CUs: 384, FreqMHz: 1100, BWTBps: 5},
		"MiniAMR":  {CUs: 384, FreqMHz: 1000, BWTBps: 5},
		"XSBench":  {CUs: 384, FreqMHz: 1400, BWTBps: 7},
		"SNAP":     {CUs: 352, FreqMHz: 1100, BWTBps: 4},
	}
	goldenOpt = map[string]Point{
		"MaxFlops": {CUs: 384, FreqMHz: 1100, BWTBps: 7},
		"CoMD":     {CUs: 384, FreqMHz: 1200, BWTBps: 4},
		"CoMD-LJ":  {CUs: 352, FreqMHz: 1200, BWTBps: 4},
		"HPGMG":    {CUs: 384, FreqMHz: 1200, BWTBps: 7},
		"LULESH":   {CUs: 384, FreqMHz: 1300, BWTBps: 5},
		"MiniAMR":  {CUs: 384, FreqMHz: 1200, BWTBps: 7},
		"XSBench":  {CUs: 384, FreqMHz: 1500, BWTBps: 7},
		"SNAP":     {CUs: 384, FreqMHz: 1200, BWTBps: 7},
	}
	// goldenBestMeanScore is the best-mean point's normalized score.
	goldenBestMeanScore = 0.661074349184913
)

func TestGoldenBestMean(t *testing.T) {
	b, _ := explored()
	want := Point{CUs: 320, FreqMHz: 1000, BWTBps: 3}
	if b.BestMean.Point != want {
		t.Fatalf("best-mean moved: got %v, want the paper's %v", b.BestMean.Point, want)
	}
	if d := math.Abs(b.BestMean.MeanScore - goldenBestMeanScore); d > 1e-9 {
		t.Errorf("best-mean score drifted: got %.15g, golden %.15g (|d|=%g)",
			b.BestMean.MeanScore, goldenBestMeanScore, d)
	}
}

func TestGoldenTableIIWinners(t *testing.T) {
	b, o := explored()
	for i, k := range b.Kernels {
		if got, want := b.BestPerKernel[i].Point, goldenBase[k.Name]; got != want {
			t.Errorf("%s: best config (no opts) moved: got %v, golden %v", k.Name, got, want)
		}
		if got, want := o.BestPerKernel[i].Point, goldenOpt[k.Name]; got != want {
			t.Errorf("%s: best config (with opts) moved: got %v, golden %v", k.Name, got, want)
		}
	}
	if len(b.Kernels) != len(goldenBase) {
		t.Errorf("kernel suite size changed: %d kernels, %d golden entries",
			len(b.Kernels), len(goldenBase))
	}
}
