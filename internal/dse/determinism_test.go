package dse

// The sweep fans out over a worker pool; these tests pin down that its
// results are a pure function of the inputs — independent of worker count,
// scheduling order, and attached instrumentation.

import (
	"math"
	"runtime"
	"testing"

	"ena/internal/arch"
	"ena/internal/obs"
	"ena/internal/workload"
)

// detSpace is small enough to sweep twice per test but still multi-axis.
func detSpace() Space {
	return Space{
		CUs:      []int{256, 320, 384},
		FreqsMHz: []float64{900, 1000, 1100},
		BWsTBps:  []float64{2, 3, 5},
	}
}

// requireBitIdentical compares two outcomes down to the float bit pattern.
func requireBitIdentical(t *testing.T, a, b Outcome) {
	t.Helper()
	if len(a.Evals) != len(b.Evals) {
		t.Fatalf("eval counts differ: %d vs %d", len(a.Evals), len(b.Evals))
	}
	if a.BestMean.Point != b.BestMean.Point {
		t.Fatalf("best-mean differs: %v vs %v", a.BestMean.Point, b.BestMean.Point)
	}
	for i := range a.Evals {
		ea, eb := a.Evals[i], b.Evals[i]
		if ea.Point != eb.Point || ea.FeasibleAll != eb.FeasibleAll {
			t.Fatalf("eval %d differs: %+v vs %+v", i, ea, eb)
		}
		if math.Float64bits(ea.MeanScore) != math.Float64bits(eb.MeanScore) {
			t.Fatalf("eval %d score not bit-identical: %x vs %x",
				i, math.Float64bits(ea.MeanScore), math.Float64bits(eb.MeanScore))
		}
		for ki := range ea.PerfTFLOPs {
			if math.Float64bits(ea.PerfTFLOPs[ki]) != math.Float64bits(eb.PerfTFLOPs[ki]) ||
				math.Float64bits(ea.BudgetW[ki]) != math.Float64bits(eb.BudgetW[ki]) {
				t.Fatalf("eval %d kernel %d not bit-identical", i, ki)
			}
		}
	}
	for ki := range a.BestPerKernel {
		if a.BestPerKernel[ki].Point != b.BestPerKernel[ki].Point {
			t.Fatalf("kernel %d best point differs: %v vs %v",
				ki, a.BestPerKernel[ki].Point, b.BestPerKernel[ki].Point)
		}
	}
}

func TestExploreBitIdenticalAcrossWorkerCounts(t *testing.T) {
	ks := workload.Suite()
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	runtime.GOMAXPROCS(1)
	serial := Explore(detSpace(), ks, arch.NodePowerBudgetW, 0)
	runtime.GOMAXPROCS(8)
	parallel := Explore(detSpace(), ks, arch.NodePowerBudgetW, 0)

	requireBitIdentical(t, serial, parallel)
}

func TestExploreInstrumentationDoesNotChangeResults(t *testing.T) {
	ks := workload.Suite()[:4]
	plain := Explore(detSpace(), ks, arch.NodePowerBudgetW, 0)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	observed := ExploreObserved(detSpace(), ks, arch.NodePowerBudgetW, 0, Instr{Reg: reg, Tracer: tr})

	requireBitIdentical(t, plain, observed)

	snap := reg.Snapshot()
	nPts := len(detSpace().Points())
	if got := snap.Counters["dse.points_evaluated"]; got != int64(nPts) {
		t.Errorf("points_evaluated = %d, want %d", got, nPts)
	}
	if got := snap.Counters["dse.kernel_evals"]; got != int64(nPts*len(ks)) {
		t.Errorf("kernel_evals = %d, want %d", got, nPts*len(ks))
	}
	if u := snap.Gauges["dse.worker_utilization"]; u <= 0 || u > 1 {
		t.Errorf("worker_utilization = %v, want (0,1]", u)
	}
	if tr.Len() != nPts {
		t.Errorf("trace spans = %d, want one per point (%d)", tr.Len(), nPts)
	}
}
