package dse

import (
	"testing"

	"ena/internal/arch"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// TestCachedSweepBitIdentical is the memoization's correctness contract:
// a sweep replayed from a cached perf phase — including under a different
// optimization setting than the sweep that populated the cache — is
// bit-identical to an uncached sweep.
func TestCachedSweepBitIdentical(t *testing.T) {
	space := Space{
		CUs:      []int{256, 320},
		FreqsMHz: []float64{925, 1000},
		BWsTBps:  []float64{2, 3},
	}
	ks := workload.Suite()[:4]

	freshBase := Explore(space, ks, arch.NodePowerBudgetW, 0)
	freshOpt := Explore(space, ks, arch.NodePowerBudgetW, powopt.All)

	cache := NewPerfCache()
	t.Run("populate", func(t *testing.T) {
		// First cached sweep fills the cache; it must already match.
		requireBitIdentical(t, freshBase,
			ExploreCached(space, ks, arch.NodePowerBudgetW, 0, cache))
	})
	t.Run("replay with opts", func(t *testing.T) {
		// Second sweep hits the cache under different optimizations.
		requireBitIdentical(t, freshOpt,
			ExploreCached(space, ks, arch.NodePowerBudgetW, powopt.All, cache))
	})
	t.Run("replay original", func(t *testing.T) {
		requireBitIdentical(t, freshBase,
			ExploreCached(space, ks, arch.NodePowerBudgetW, 0, cache))
	})
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1 (same space+kernels)", cache.Len())
	}
}

// TestCacheKeyedBySweepInputs: changing the space or the kernel set must miss.
func TestCacheKeyedBySweepInputs(t *testing.T) {
	space := Space{CUs: []int{320}, FreqsMHz: []float64{1000}, BWsTBps: []float64{3}}
	ks := workload.Suite()[:2]
	cache := NewPerfCache()
	ExploreCached(space, ks, arch.NodePowerBudgetW, 0, cache)

	space2 := space
	space2.BWsTBps = []float64{4}
	ExploreCached(space2, ks, arch.NodePowerBudgetW, 0, cache)
	ExploreCached(space, ks[:1], arch.NodePowerBudgetW, 0, cache)
	if cache.Len() != 3 {
		t.Errorf("cache holds %d entries, want 3 distinct sweeps", cache.Len())
	}
}
