// Package dse implements the design-space exploration of §V and §VI: a
// parallel sweep over CU count x GPU frequency x in-package bandwidth under
// the 160 W node budget and the 384-CU area budget, selecting the best-mean
// configuration (the paper finds 320 CUs / 1000 MHz / 3 TB/s across over a
// thousand design points) and the best per-application configurations of
// Table II, with or without the §V-E power optimizations enabled.
package dse

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/obs"
	"ena/internal/powopt"
	"ena/internal/stats"
	"ena/internal/workload"
)

// Point is one design point. The packaging axes (GPUChiplets, HBMStackGB,
// ExtModules) are optional: a zero value means the paper default (8 chiplets,
// 32 GB stacks, 4 modules per external chain), and a point with all three at
// zero is a classic grid point — its config, label, cache key and wire
// encoding are unchanged from the pre-expansion scheme, so golden results,
// checkpoints and cached sweeps never alias across the expansion.
type Point struct {
	CUs     int
	FreqMHz float64
	BWTBps  float64
	// GPUChiplets is the GPU chiplet count (one HBM stack per chiplet);
	// 0 means the default 8.
	GPUChiplets int
	// HBMStackGB is the per-stack HBM capacity; 0 means the default 32.
	HBMStackGB float64
	// ExtModules is the external-chain depth (modules per chain);
	// 0 means the default 4.
	ExtModules int
}

// expanded reports whether any packaging axis deviates from the zero
// (paper-default) encoding.
func (p Point) expanded() bool {
	return p.GPUChiplets != 0 || p.HBMStackGB != 0 || p.ExtModules != 0
}

// Config materializes the point as a node configuration.
func (p Point) Config() *arch.NodeConfig {
	if !p.expanded() {
		return arch.EHP(p.CUs, p.FreqMHz, p.BWTBps)
	}
	return arch.EHPVariant(p.CUs, p.FreqMHz, p.BWTBps, p.GPUChiplets, p.HBMStackGB, p.ExtModules)
}

// String formats the point the way Table II does, with a packaging suffix
// only for expanded points (unswept packaging fields show their paper
// defaults).
func (p Point) String() string {
	s := fmt.Sprintf("%d / %.0f / %.0f", p.CUs, p.FreqMHz, p.BWTBps)
	if p.expanded() {
		g, hbm, m := p.GPUChiplets, p.HBMStackGB, p.ExtModules
		if g == 0 {
			g = arch.GPUChipletCount
		}
		if hbm == 0 {
			hbm = arch.HBMStackCapacityGB
		}
		if m == 0 {
			m = arch.DefaultModulesPerChain
		}
		s += fmt.Sprintf(" [g%d s%g m%d]", g, hbm, m)
	}
	return s
}

// Space is the swept parameter grid. The three classic axes are required;
// the packaging axes are optional — an empty axis means the single
// paper-default value, encoded as the zero Point field so the default space
// enumerates exactly as it always has.
type Space struct {
	CUs      []int
	FreqsMHz []float64
	BWsTBps  []float64
	// GPUChiplets are candidate GPU chiplet counts (empty = default 8).
	GPUChiplets []int
	// HBMStackGBs are candidate per-stack HBM capacities (empty = default 32).
	HBMStackGBs []float64
	// ExtModules are candidate external-chain depths (empty = default 4).
	ExtModules []int
}

// DefaultSpace reproduces the paper's exploration ranges: up to the 384-CU
// area budget, 700-1500 MHz, 1-7 TB/s (the bandwidths of Figs. 4-6).
func DefaultSpace() Space {
	return Space{
		CUs:      []int{192, 224, 256, 288, 320, 352, 384},
		FreqsMHz: []float64{700, 800, 900, 925, 1000, 1100, 1200, 1300, 1400, 1500},
		BWsTBps:  []float64{1, 2, 3, 4, 5, 6, 7},
	}
}

// Points enumerates the grid in canonical order. The packaging axes are the
// outermost loops with empty axes contributing a single zero (default) value,
// so a space without packaging axes enumerates exactly as the pre-expansion
// grid did — same points, same order, same indices.
func (s Space) Points() []Point {
	gcs, hbs, ems := s.packagingAxes()
	out := make([]Point, 0, s.Size())
	for _, g := range gcs {
		for _, h := range hbs {
			for _, m := range ems {
				for _, c := range s.CUs {
					for _, f := range s.FreqsMHz {
						for _, b := range s.BWsTBps {
							out = append(out, Point{
								CUs: c, FreqMHz: f, BWTBps: b,
								GPUChiplets: g, HBMStackGB: h, ExtModules: m,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// Size is the number of points Points enumerates.
func (s Space) Size() int {
	gcs, hbs, ems := s.packagingAxes()
	return len(gcs) * len(hbs) * len(ems) * len(s.CUs) * len(s.FreqsMHz) * len(s.BWsTBps)
}

// packagingAxes returns the packaging axes with empty ones replaced by the
// single zero (paper-default) value.
func (s Space) packagingAxes() (gcs []int, hbs []float64, ems []int) {
	gcs, hbs, ems = s.GPUChiplets, s.HBMStackGBs, s.ExtModules
	if len(gcs) == 0 {
		gcs = []int{0}
	}
	if len(hbs) == 0 {
		hbs = []float64{0}
	}
	if len(ems) == 0 {
		ems = []int{0}
	}
	return gcs, hbs, ems
}

// Eval is one evaluated design point.
type Eval struct {
	Point Point
	// PerfTFLOPs[i] is kernel i's throughput; BudgetW[i] the budgeted
	// power when kernel i runs.
	PerfTFLOPs []float64
	BudgetW    []float64
	// FeasibleAll reports the point is within budget for every kernel.
	FeasibleAll bool
	// MeanScore is the arithmetic mean of per-kernel performance, each
	// normalized to that kernel's best achievable performance across the
	// whole space (so no kernel's absolute scale dominates the average).
	MeanScore float64
}

// Outcome is a completed exploration.
type Outcome struct {
	Kernels  []workload.Kernel
	Evals    []Eval
	BudgetW  float64
	Opts     powopt.Technique
	BestMean Eval
	// BestPerKernel[i] is the highest-performing point for kernel i that
	// stays within that kernel's budget.
	BestPerKernel []Eval
}

// Instr bundles the observability sinks of a sweep. The zero value falls
// back to the process-default scope (obs.Default), which is disabled unless
// a CLI enabled it; sweeps then run uninstrumented at full speed.
type Instr struct {
	Reg    *obs.Registry
	Tracer *obs.Tracer
}

// Explore sweeps the space for the kernels under the power budget, using all
// CPUs. Optimizations change the feasible region (they lower power), not the
// performance of a point.
func Explore(space Space, kernels []workload.Kernel, budgetW float64, opts powopt.Technique) Outcome {
	return ExploreObserved(space, kernels, budgetW, opts, Instr{})
}

// PerfCache memoizes the optimization-independent perf phase of sweep
// evaluations, keyed by the (space, kernels) signature. Power optimizations
// change a point's power draw, never its performance (see Explore), so two
// sweeps over the same space and kernels — TableII's base and optimized
// passes, or repeated service sweeps under different budgets — share their
// perf/traffic results and recompute only the power phase. It also memoizes
// single-point perf rows (keyed by (point, kernels)), which is how surrogate
// explorations reuse the perf phase across acquisition rounds and runs.
//
// Both stores are bounded: entries beyond the caps evict least-recently-used
// first, so a long-lived enaserve process serving many distinct spaces and
// kernel sets holds a fixed working set instead of growing without bound.
// Safe for concurrent use; only complete (non-cancelled) sweeps are stored,
// and stored rows are immutable thereafter.
type PerfCache struct {
	mu        sync.Mutex
	maxSweeps int
	maxPoints int
	sweeps    map[string]*list.Element // of lruEntry{key, sweepEntry}
	points    map[string]*list.Element // of lruEntry{key, pointEntry}
	sweepLRU  list.List                // front = most recently used
	pointLRU  list.List
}

// Default entry caps. Sweep entries are large (one perf row per point); point
// entries hold a single row, so they get a much deeper cap.
const (
	DefaultPerfCacheSweeps = 64
	DefaultPerfCachePoints = 16384
)

// sweepEntry is one memoized sweep: per-point perf phases plus the
// materialized node configs (rebuilding a config per point per sweep is a
// measurable slice of replay cost). Configs are shared read-only — every
// NodeConfig accessor is a getter, and mutation goes through Clone.
type sweepEntry struct {
	rows [][]core.PerfPhase // [pointIdx][kernelIdx]
	cfgs []*arch.NodeConfig
}

// pointEntry is one memoized point evaluation's perf phase.
type pointEntry struct {
	row []core.PerfPhase
	cfg *arch.NodeConfig
}

type lruEntry struct {
	key string
	val any
}

// NewPerfCache returns an empty cache with the default entry caps.
func NewPerfCache() *PerfCache {
	return NewPerfCacheSized(DefaultPerfCacheSweeps, DefaultPerfCachePoints)
}

// NewPerfCacheSized returns an empty cache holding at most maxSweeps sweep
// entries and maxPoints point entries (values < 1 are clamped to 1).
func NewPerfCacheSized(maxSweeps, maxPoints int) *PerfCache {
	if maxSweeps < 1 {
		maxSweeps = 1
	}
	if maxPoints < 1 {
		maxPoints = 1
	}
	return &PerfCache{
		maxSweeps: maxSweeps,
		maxPoints: maxPoints,
		sweeps:    make(map[string]*list.Element),
		points:    make(map[string]*list.Element),
	}
}

// Len reports the total number of cached entries (sweeps + point rows); the
// service layer exports it as the dse.perf_cache_entries gauge.
func (c *PerfCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sweeps) + len(c.points)
}

// kernelsKey canonicalizes a kernel set. Kernels are formatted with %+v:
// every model parameter participates, and the Trace generator contributes
// its identity, so distinct workload sets never collide.
func kernelsKey(kernels []workload.Kernel) string {
	var b strings.Builder
	for _, k := range kernels {
		fmt.Fprintf(&b, ";k=%+v", k)
	}
	return b.String()
}

// cacheKey canonicalizes the sweep inputs. The packaging axes participate
// only when present, so classic-space keys are unchanged from before the
// space expansion.
func cacheKey(space Space, kernels []workload.Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cus=%v;f=%v;bw=%v", space.CUs, space.FreqsMHz, space.BWsTBps)
	if len(space.GPUChiplets)+len(space.HBMStackGBs)+len(space.ExtModules) > 0 {
		fmt.Fprintf(&b, ";g=%v;hbm=%v;em=%v", space.GPUChiplets, space.HBMStackGBs, space.ExtModules)
	}
	b.WriteString(kernelsKey(kernels))
	return b.String()
}

// pointKey canonicalizes a (point, kernels) pair for the point-row store.
func pointKey(p Point, kernelsSig string) string {
	return fmt.Sprintf("pt:%d|%g|%g|%d|%g|%d%s",
		p.CUs, p.FreqMHz, p.BWTBps, p.GPUChiplets, p.HBMStackGB, p.ExtModules, kernelsSig)
}

// lruGet looks key up in m, promoting a hit to the front of lru.
func lruGet(m map[string]*list.Element, lru *list.List, key string) (any, bool) {
	el, ok := m[key]
	if !ok {
		return nil, false
	}
	lru.MoveToFront(el)
	return el.Value.(lruEntry).val, true
}

// lruPut inserts or refreshes key in m, evicting from the back past max.
func lruPut(m map[string]*list.Element, lru *list.List, key string, val any, max int) {
	if el, ok := m[key]; ok {
		el.Value = lruEntry{key: key, val: val}
		lru.MoveToFront(el)
		return
	}
	m[key] = lru.PushFront(lruEntry{key: key, val: val})
	for len(m) > max {
		back := lru.Back()
		lru.Remove(back)
		delete(m, back.Value.(lruEntry).key)
	}
}

func (c *PerfCache) get(key string, nPoints int) (sweepEntry, bool) {
	if c == nil {
		return sweepEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := lruGet(c.sweeps, &c.sweepLRU, key)
	if !ok {
		return sweepEntry{}, false
	}
	e := v.(sweepEntry)
	if len(e.rows) != nPoints {
		return sweepEntry{}, false
	}
	return e, true
}

func (c *PerfCache) put(key string, e sweepEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	lruPut(c.sweeps, &c.sweepLRU, key, e, c.maxSweeps)
	c.mu.Unlock()
}

func (c *PerfCache) getPoint(key string) (pointEntry, bool) {
	if c == nil {
		return pointEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := lruGet(c.points, &c.pointLRU, key)
	if !ok {
		return pointEntry{}, false
	}
	return v.(pointEntry), true
}

func (c *PerfCache) putPoint(key string, e pointEntry) {
	if c == nil || e.row == nil {
		return
	}
	c.mu.Lock()
	lruPut(c.points, &c.pointLRU, key, e, c.maxPoints)
	c.mu.Unlock()
}

// ExploreCached is Explore with a sweep-level perf cache: a prior complete
// sweep over the same (space, kernels) — under any budget or optimization
// setting — supplies the perf phase, leaving only the power phase to run.
// Results are bit-identical to Explore's.
func ExploreCached(space Space, kernels []workload.Kernel, budgetW float64, opts powopt.Technique, cache *PerfCache) Outcome {
	out, _ := ExploreCachedContext(context.Background(), space, kernels, budgetW, opts, Instr{}, cache)
	return out
}

// ExploreObserved is Explore with explicit observability sinks: it counts
// points and kernel evaluations, measures the sweep's wall time, eval rate
// and worker-pool utilization, and (when tracing) emits one span per design
// point on the worker's track. Results are identical to Explore's — the
// instrumentation never influences evaluation or selection.
func ExploreObserved(space Space, kernels []workload.Kernel, budgetW float64, opts powopt.Technique, ins Instr) Outcome {
	out, _ := ExploreContext(context.Background(), space, kernels, budgetW, opts, ins)
	return out
}

// ExploreContext is ExploreObserved with cooperative cancellation: when ctx
// is cancelled or its deadline passes mid-sweep, the worker pool stops
// evaluating further design points promptly (workers check the context
// between points and between kernels within a point) and the sweep returns
// ctx.Err(). On cancellation the Outcome carries the space's metadata but no
// selections — partial sweeps must not be mistaken for full explorations —
// while the registry still records how many points were actually evaluated
// (dse.points_evaluated), which is how callers observe an aborted sweep's
// progress.
func ExploreContext(ctx context.Context, space Space, kernels []workload.Kernel, budgetW float64, opts powopt.Technique, ins Instr) (Outcome, error) {
	return ExploreCachedContext(ctx, space, kernels, budgetW, opts, ins, nil)
}

// ExploreCachedContext is ExploreContext with an optional sweep-level perf
// cache (nil disables caching). On a cache hit every worker replays the
// stored perf phases through the power model; on a miss the workers record
// the phases they compute (each into its own point's slot, so no locking)
// and the completed sweep is stored for the next caller.
func ExploreCachedContext(ctx context.Context, space Space, kernels []workload.Kernel, budgetW float64, opts powopt.Technique, ins Instr, cache *PerfCache) (Outcome, error) {
	reg, tracer := ins.Reg, ins.Tracer
	if reg == nil && tracer == nil {
		sc := obs.Default()
		reg, tracer = sc.Reg, sc.Tr
	}
	instrumented := reg != nil || tracer != nil
	start := time.Now()

	pts := space.Points()
	evals := make([]Eval, len(pts))

	var key string
	var cached sweepEntry
	var hit bool
	var fill sweepEntry
	if cache != nil {
		key = cacheKey(space, kernels)
		cached, hit = cache.get(key, len(pts))
		if !hit {
			fill = sweepEntry{
				rows: make([][]core.PerfPhase, len(pts)),
				cfgs: make([]*arch.NodeConfig, len(pts)),
			}
		}
		if reg != nil {
			if hit {
				reg.Counter("dse.perf_cache_hits").Inc()
			} else {
				reg.Counter("dse.perf_cache_misses").Inc()
			}
		}
	}

	// Progress counters update live, per point, so a concurrent registry
	// scrape (the service layer's /metrics endpoint) observes a running
	// sweep's progress rather than a jump at completion.
	pointsCtr := reg.Counter("dse.points_evaluated")
	kernelCtr := reg.Counter("dse.kernel_evals")

	var wg sync.WaitGroup
	var evaluated atomic.Int64
	work := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	busyNs := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			var busy time.Duration
			evalPoint := func(i int) (Eval, int64) {
				var row []core.PerfPhase
				var cfg *arch.NodeConfig
				if hit {
					row, cfg = cached.rows[i], cached.cfgs[i]
				}
				if cfg == nil {
					cfg = pts[i].Config()
				}
				ev, outRow, n := evaluateConfigCtx(ctx, cfg, pts[i], kernels, budgetW, opts, row, fill.rows != nil)
				if fill.rows != nil {
					fill.rows[i] = outRow
					fill.cfgs[i] = cfg
				}
				return ev, n
			}
			for i := range work {
				if ctx.Err() != nil {
					continue // drain the channel without evaluating
				}
				if !instrumented {
					ev, n := evalPoint(i)
					evals[i] = ev
					evaluated.Add(1)
					pointsCtr.Inc()
					kernelCtr.Add(n)
					continue
				}
				t0 := time.Now()
				ev, n := evalPoint(i)
				evals[i] = ev
				evaluated.Add(1)
				pointsCtr.Inc()
				kernelCtr.Add(n)
				d := time.Since(t0)
				busy += d
				tracer.Complete("dse.evaluate", "dse",
					float64(t0.Sub(start))/1e3, float64(d)/1e3,
					obs.PIDDSE, wid, map[string]any{"point": pts[i].String()})
			}
			busyNs[wid] = int64(busy)
		}(w)
	}
	done := ctx.Done()
feed:
	for i := range pts {
		select {
		case work <- i:
		case <-done:
			break feed
		}
	}
	close(work)
	wg.Wait()

	// Store only complete sweeps: a cancelled run leaves holes in fill.
	if fill.rows != nil && ctx.Err() == nil {
		cache.put(key, fill)
	}
	if cache != nil && reg != nil {
		reg.Gauge("dse.perf_cache_entries").Set(float64(cache.Len()))
	}

	if reg != nil {
		wall := time.Since(start)
		reg.Counter("dse.sweeps").Inc()
		reg.Gauge("dse.workers").Set(float64(workers))
		reg.Gauge("dse.wall_seconds").Set(wall.Seconds())
		if wall > 0 {
			reg.Gauge("dse.points_per_sec").Set(float64(evaluated.Load()) / wall.Seconds())
			var busyTotal int64
			for _, b := range busyNs {
				busyTotal += b
			}
			reg.Gauge("dse.worker_utilization").Set(
				float64(busyTotal) / (float64(wall.Nanoseconds()) * float64(workers)))
		}
	}
	if err := ctx.Err(); err != nil {
		reg.Counter("dse.sweeps_cancelled").Inc()
		return Outcome{Kernels: kernels, BudgetW: budgetW, Opts: opts}, err
	}

	return Finalize(evals, kernels, budgetW, opts), nil
}

// Finalize scores a complete set of point evaluations and selects the
// best-mean and per-kernel winners, producing the Outcome Explore returns.
// It is the sequential tail of every sweep, split out so a sharded
// exploration — point evaluations fanned out across worker processes (see
// internal/cluster) — merges to the bit-identical single-process answer:
// concatenate the shards' Evals in point order and Finalize exactly as the
// local sweep would have. Evals' MeanScore fields are (re)computed in place.
func Finalize(evals []Eval, kernels []workload.Kernel, budgetW float64, opts powopt.Technique) Outcome {
	// Score: normalize each kernel by its best performance anywhere in
	// the space, then average.
	maxPerf := make([]float64, len(kernels))
	for _, e := range evals {
		for ki, p := range e.PerfTFLOPs {
			if p > maxPerf[ki] {
				maxPerf[ki] = p
			}
		}
	}
	for i := range evals {
		norm := make([]float64, len(kernels))
		for ki, p := range evals[i].PerfTFLOPs {
			if maxPerf[ki] > 0 {
				norm[ki] = p / maxPerf[ki]
			}
		}
		evals[i].MeanScore = stats.Mean(norm)
	}

	out := Outcome{Kernels: kernels, Evals: evals, BudgetW: budgetW, Opts: opts}
	bestMeanIdx := -1
	bestPer := make([]int, len(kernels))
	for i := range bestPer {
		bestPer[i] = -1
	}
	for i, e := range evals {
		// The static best-mean machine is bounded by the EHP's physical
		// provisioning (320 CUs); per-kernel oracle picks below may use
		// the full 384-CU area budget (§VI, Table II).
		if e.FeasibleAll && e.Point.CUs <= arch.ProvisionedCUs &&
			(bestMeanIdx < 0 || e.MeanScore > evals[bestMeanIdx].MeanScore) {
			bestMeanIdx = i
		}
		for ki := range kernels {
			if e.BudgetW[ki] <= budgetW &&
				(bestPer[ki] < 0 || e.PerfTFLOPs[ki] > evals[bestPer[ki]].PerfTFLOPs[ki]) {
				bestPer[ki] = i
			}
		}
	}
	if bestMeanIdx >= 0 {
		out.BestMean = evals[bestMeanIdx]
	}
	out.BestPerKernel = make([]Eval, len(kernels))
	for ki, idx := range bestPer {
		if idx >= 0 {
			out.BestPerKernel[ki] = evals[idx]
		}
	}
	return out
}

// EvaluatePointContext evaluates one grid point exactly as a sweep worker
// does (same perf/power phases, same feasibility accounting), without any
// sweep-level caching. It is the unit of work a cluster shard executes:
// MeanScore stays zero — it is only defined relative to a whole exploration
// and is assigned by Finalize at merge time.
func EvaluatePointContext(ctx context.Context, p Point, kernels []workload.Kernel, budgetW float64, opts powopt.Technique) (Eval, error) {
	ev, _, _ := evaluateCtx(ctx, p, kernels, budgetW, opts, nil, false)
	if err := ctx.Err(); err != nil {
		return Eval{}, err
	}
	return ev, nil
}

// NewPointEvaluator returns a single-point evaluator bound to the kernels,
// budget and optimizations, with optional point-level perf-row reuse through
// cache (nil disables caching). Each call is bit-identical to
// EvaluatePointContext for the same point: a cached perf row replays through
// the power phase exactly as the sweep cache does (see the split-phase
// bit-identity property of core.SimulatePerf/SimulateFromPerf). This is the
// evaluation seam surrogate explorations run on — repeated acquisition rounds,
// and repeated runs over overlapping spaces, recompute only the power phase
// for points whose perf phase is already known.
func NewPointEvaluator(kernels []workload.Kernel, budgetW float64, opts powopt.Technique, cache *PerfCache) func(ctx context.Context, p Point) (Eval, error) {
	var sig string
	if cache != nil {
		sig = kernelsKey(kernels)
	}
	return func(ctx context.Context, p Point) (Eval, error) {
		if cache == nil {
			return EvaluatePointContext(ctx, p, kernels, budgetW, opts)
		}
		key := pointKey(p, sig)
		cached, hit := cache.getPoint(key)
		cfg := cached.cfg
		if cfg == nil {
			cfg = p.Config()
		}
		ev, row, _ := evaluateConfigCtx(ctx, cfg, p, kernels, budgetW, opts, cached.row, !hit)
		if err := ctx.Err(); err != nil {
			return Eval{}, err
		}
		if !hit {
			cache.putPoint(key, pointEntry{row: row, cfg: cfg})
		}
		return ev, nil
	}
}

// EvaluateConfigContext evaluates one explicit node configuration against the
// kernels under the budget, producing the same per-kernel performance, budget
// power and feasibility the sweep computes for a grid point. Callers whose
// configurations are not grid-generated — the fault-injection engine's
// degraded nodes, what-if analyses — get sweep-compatible numbers without
// re-deriving the scoring. MeanScore stays zero: it is only defined relative
// to a whole exploration. The Eval's Point carries the config's aggregate
// CU/frequency/bandwidth so renders label it like any other design point.
func EvaluateConfigContext(ctx context.Context, cfg *arch.NodeConfig, kernels []workload.Kernel, budgetW float64, opts powopt.Technique) (Eval, error) {
	p := Point{CUs: cfg.TotalCUs(), FreqMHz: cfg.GPUFreqMHz(), BWTBps: cfg.InPackageBWTBps()}
	ev, _, _ := evaluateConfigCtx(ctx, cfg, p, kernels, budgetW, opts, nil, false)
	if err := ctx.Err(); err != nil {
		return Eval{}, err
	}
	return ev, nil
}

// evaluateCtx evaluates one design point, checking for cancellation between
// kernels; it reports how many kernel simulations actually ran so aborted
// sweeps account their work accurately. A point cut short is marked
// infeasible, but the whole sweep is discarded on cancellation anyway.
func evaluateCtx(ctx context.Context, p Point, kernels []workload.Kernel, budgetW float64, opts powopt.Technique, cachedRow []core.PerfPhase, keepRow bool) (Eval, []core.PerfPhase, int64) {
	return evaluateConfigCtx(ctx, p.Config(), p, kernels, budgetW, opts, cachedRow, keepRow)
}

// evaluateConfigCtx optionally replays a cached perf row (cachedRow, one
// PerfPhase per kernel) instead of re-running the perf half of the model, and
// optionally records the row it computed (keepRow) for a sweep-level cache.
// An invalid config yields a nil row either way, so cached sweeps fall back
// to full evaluation for such points — which short-circuit identically.
func evaluateConfigCtx(ctx context.Context, cfg *arch.NodeConfig, p Point, kernels []workload.Kernel, budgetW float64, opts powopt.Technique, cachedRow []core.PerfPhase, keepRow bool) (Eval, []core.PerfPhase, int64) {
	e := Eval{
		Point:       p,
		PerfTFLOPs:  make([]float64, len(kernels)),
		BudgetW:     make([]float64, len(kernels)),
		FeasibleAll: true,
	}
	if err := cfg.Validate(); err != nil {
		e.FeasibleAll = false
		return e, nil, 0
	}
	if len(cachedRow) != len(kernels) {
		cachedRow = nil
	}
	var row []core.PerfPhase
	if keepRow && cachedRow == nil {
		row = make([]core.PerfPhase, len(kernels))
	}
	var n int64
	simOpt := core.Options{Optimizations: opts}
	for i, k := range kernels {
		if err := ctx.Err(); err != nil {
			e.FeasibleAll = false
			return e, nil, n
		}
		var pp core.PerfPhase
		if cachedRow != nil {
			pp = cachedRow[i]
		} else {
			pp = core.SimulatePerf(cfg, k, simOpt)
			if row != nil {
				row[i] = pp
			}
		}
		r := core.SimulateFromPerf(cfg, k, simOpt, pp)
		n++
		e.PerfTFLOPs[i] = r.Perf.TFLOPs
		e.BudgetW[i] = r.Power.PackageW() + r.Power.ExtStatic + r.Power.SerDesStatic
		if e.BudgetW[i] > budgetW {
			e.FeasibleAll = false
		}
	}
	if cachedRow != nil {
		row = cachedRow
	}
	return e, row, n
}

// TableRow is one Table II line.
type TableRow struct {
	Kernel             string
	BestConfig         Point   // best app-specific config (without opts)
	BenefitWithoutOpt  float64 // % over the best-mean config, no power opts
	BestConfigWithOpt  Point   // best app-specific config with opts enabled
	BenefitWithOpt     float64 // % over the same best-mean baseline
	BestMeanPerfTFLOPs float64
}

// TableII runs the two explorations (without and with the full optimization
// stack) and derives the paper's Table II: per-kernel best configurations
// and their performance benefit over the best-mean configuration.
func TableII(space Space, kernels []workload.Kernel, budgetW float64) []TableRow {
	// The two sweeps differ only in their power optimizations, which never
	// change performance, so they share one perf cache: the second sweep
	// replays the first's perf phases and recomputes only power.
	cache := NewPerfCache()
	base := ExploreCached(space, kernels, budgetW, 0, cache)
	opt := ExploreCached(space, kernels, budgetW, powopt.All, cache)

	rows := make([]TableRow, len(kernels))
	for i, k := range kernels {
		ref := base.BestMean.PerfTFLOPs[i]
		row := TableRow{Kernel: k.Name, BestMeanPerfTFLOPs: ref}
		if ref > 0 {
			bp := base.BestPerKernel[i]
			row.BestConfig = bp.Point
			row.BenefitWithoutOpt = (bp.PerfTFLOPs[i]/ref - 1) * 100
			op := opt.BestPerKernel[i]
			row.BestConfigWithOpt = op.Point
			row.BenefitWithOpt = (op.PerfTFLOPs[i]/ref - 1) * 100
		}
		rows[i] = row
	}
	return rows
}
