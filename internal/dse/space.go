package dse

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Axis spec keys, in canonical emission order. The three classic axes are
// required; the packaging axes are optional.
const (
	axisCUs      = "cus"
	axisFreq     = "freq"
	axisBW       = "bw"
	axisChiplets = "chiplets"
	axisHBM      = "hbm"
	axisExtMod   = "extmod"
)

// Validate checks the space is a well-formed grid: the three classic axes
// must be non-empty, and every axis present must hold strictly positive,
// finite, duplicate-free values. A duplicated axis value would silently
// enumerate the same design point twice, double-counting it in the MeanScore
// normalization; empty or non-positive axes produce degenerate or invalid
// configurations. The packaging axes may be empty (meaning the single paper
// default).
func (s Space) Validate() error {
	if err := validateIntAxis(axisCUs, s.CUs, true); err != nil {
		return err
	}
	if err := validateFloatAxis(axisFreq, s.FreqsMHz, true); err != nil {
		return err
	}
	if err := validateFloatAxis(axisBW, s.BWsTBps, true); err != nil {
		return err
	}
	if err := validateIntAxis(axisChiplets, s.GPUChiplets, false); err != nil {
		return err
	}
	if err := validateFloatAxis(axisHBM, s.HBMStackGBs, false); err != nil {
		return err
	}
	return validateIntAxis(axisExtMod, s.ExtModules, false)
}

func validateIntAxis(name string, vals []int, required bool) error {
	if len(vals) == 0 {
		if required {
			return fmt.Errorf("dse: space axis %q is empty", name)
		}
		return nil
	}
	seen := make(map[int]bool, len(vals))
	for _, v := range vals {
		if v <= 0 {
			return fmt.Errorf("dse: space axis %q has non-positive value %d", name, v)
		}
		if seen[v] {
			return fmt.Errorf("dse: space axis %q has duplicate value %d", name, v)
		}
		seen[v] = true
	}
	return nil
}

func validateFloatAxis(name string, vals []float64, required bool) error {
	if len(vals) == 0 {
		if required {
			return fmt.Errorf("dse: space axis %q is empty", name)
		}
		return nil
	}
	seen := make(map[float64]bool, len(vals))
	for _, v := range vals {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("dse: space axis %q has non-positive or non-finite value %v", name, v)
		}
		if seen[v] {
			return fmt.Errorf("dse: space axis %q has duplicate value %v", name, v)
		}
		seen[v] = true
	}
	return nil
}

// Spec renders the space as its canonical spec string:
// "cus=...;freq=...;bw=..." with comma-separated ascending values, followed
// by "chiplets=", "hbm=" and "extmod=" segments only for packaging axes that
// are present. ParseSpace(s.Spec()) returns s for any space that came out of
// ParseSpace (the canonical form is a fixed point).
func (s Space) Spec() string {
	var b strings.Builder
	b.WriteString(axisCUs + "=")
	writeInts(&b, s.CUs)
	b.WriteString(";" + axisFreq + "=")
	writeFloats(&b, s.FreqsMHz)
	b.WriteString(";" + axisBW + "=")
	writeFloats(&b, s.BWsTBps)
	if len(s.GPUChiplets) > 0 {
		b.WriteString(";" + axisChiplets + "=")
		writeInts(&b, s.GPUChiplets)
	}
	if len(s.HBMStackGBs) > 0 {
		b.WriteString(";" + axisHBM + "=")
		writeFloats(&b, s.HBMStackGBs)
	}
	if len(s.ExtModules) > 0 {
		b.WriteString(";" + axisExtMod + "=")
		writeInts(&b, s.ExtModules)
	}
	return b.String()
}

func writeInts(b *strings.Builder, vals []int) {
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
}

func writeFloats(b *strings.Builder, vals []float64) {
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}

// ParseSpace parses a space spec string ("cus=...;freq=...;bw=..." plus
// optional "chiplets=", "hbm=", "extmod=" segments) into a validated Space.
// Axis values are sorted ascending — the canonicalization — and the result
// passes Validate (duplicates, non-positive and non-finite values are
// rejected, as are unknown or repeated axis names). The empty classic axes
// rule applies: all of cus/freq/bw must be present.
func ParseSpace(spec string) (Space, error) {
	var s Space
	seen := make(map[string]bool, 6)
	for _, seg := range strings.Split(spec, ";") {
		name, vals, ok := strings.Cut(seg, "=")
		if !ok {
			return Space{}, fmt.Errorf("dse: space spec segment %q is not name=values", seg)
		}
		name = strings.TrimSpace(name)
		if seen[name] {
			return Space{}, fmt.Errorf("dse: space spec repeats axis %q", name)
		}
		seen[name] = true
		var err error
		switch name {
		case axisCUs:
			s.CUs, err = parseInts(vals)
		case axisFreq:
			s.FreqsMHz, err = parseFloats(vals)
		case axisBW:
			s.BWsTBps, err = parseFloats(vals)
		case axisChiplets:
			s.GPUChiplets, err = parseInts(vals)
		case axisHBM:
			s.HBMStackGBs, err = parseFloats(vals)
		case axisExtMod:
			s.ExtModules, err = parseInts(vals)
		default:
			return Space{}, fmt.Errorf("dse: unknown space axis %q", name)
		}
		if err != nil {
			return Space{}, fmt.Errorf("dse: space axis %q: %w", name, err)
		}
	}
	if err := s.Validate(); err != nil {
		return Space{}, err
	}
	return s, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	sort.Float64s(out)
	return out, nil
}
