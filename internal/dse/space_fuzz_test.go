package dse

import (
	"reflect"
	"testing"
)

// FuzzParseSpace: the spec parser never panics, and every accepted input
// canonicalizes to a fixed point — re-parsing the emitted canonical spec
// yields the identical Space, whose spec is byte-identical.
func FuzzParseSpace(f *testing.F) {
	f.Add("cus=192,224,256,288,320,352,384;freq=700,800,900,925,1000,1100,1200,1300,1400,1500;bw=1,2,3,4,5,6,7")
	f.Add("cus=320;freq=1000;bw=3")
	f.Add("cus=320,192;freq=1000;bw=3,1;chiplets=8,4;hbm=16,32;extmod=2,4")
	f.Add("cus=320;freq=1e3;bw=0.5,3")
	f.Add("bw=3;cus=320;freq=1000")
	f.Add("cus=;freq=;bw=")
	f.Add("cus=320;freq=NaN;bw=3")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpace(spec)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted space fails Validate: %v (spec %q)", err, spec)
		}
		canon := s.Spec()
		s2, err := ParseSpace(canon)
		if err != nil {
			t.Fatalf("canonical spec %q rejected: %v (from %q)", canon, err, spec)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("canonical spec %q re-parses to %+v, want %+v", canon, s2, s)
		}
		if got := s2.Spec(); got != canon {
			t.Fatalf("canonical spec not a fixed point: %q -> %q", canon, got)
		}
	})
}
