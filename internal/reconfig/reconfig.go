// Package reconfig implements the paper's first research direction (§VI,
// "Dynamic Resource Reconfiguration"): a run-time technique that adjusts the
// hardware configuration — active CU count (power gating), GPU frequency
// (DVFS), and memory-bandwidth provisioning — as application phases change.
// Table II quantifies the oracle upper bound; this package adds the runtime
// itself: workloads as phase sequences, controllers (static, oracle, and an
// online reactive hill-climber), reconfiguration overheads, and the
// resulting time/energy accounting on the simulated node.
package reconfig

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/perf"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// Phase is one application phase: a kernel executing a fixed amount of work.
type Phase struct {
	Kernel workload.Kernel
	Flops  float64
}

// Workload is a sequence of phases (HPC applications interleave kernels;
// §IV footnote 3 notes the proxies consist of multiple kernels).
type Workload []Phase

// Repeat builds a workload of n rounds over the given kernels, each phase
// performing flopsPerPhase work.
func Repeat(kernels []workload.Kernel, rounds int, flopsPerPhase float64) Workload {
	var w Workload
	for r := 0; r < rounds; r++ {
		for _, k := range kernels {
			w = append(w, Phase{Kernel: k, Flops: flopsPerPhase})
		}
	}
	return w
}

// ReconfigOverheadS is the cost of changing the hardware configuration
// between phases: DVFS relock, CU power-gating wake-up, and bandwidth
// re-provisioning (~1 ms, generous for the mechanisms involved).
const ReconfigOverheadS = 1e-3

// Controller picks a configuration for each phase and learns from outcomes.
type Controller interface {
	// Name identifies the policy in reports.
	Name() string
	// ConfigFor returns the design point to run the phase at.
	ConfigFor(p Phase) dse.Point
	// Observe feeds back the measured outcome of running the phase.
	Observe(p Phase, pt dse.Point, perfTFLOPs, budgetW float64)
}

// Static always runs the statically provisioned configuration (the
// baseline the paper's best-mean represents).
type Static struct{ Point dse.Point }

// Name implements Controller.
func (s *Static) Name() string { return "static" }

// ConfigFor implements Controller.
func (s *Static) ConfigFor(Phase) dse.Point { return s.Point }

// Observe implements Controller.
func (s *Static) Observe(Phase, dse.Point, float64, float64) {}

// NewStaticBestMean returns the 320/1000/3 baseline controller.
func NewStaticBestMean() *Static {
	return &Static{Point: dse.Point{CUs: arch.BestMeanCUs, FreqMHz: arch.BestMeanFreqMHz, BWTBps: arch.BestMeanBWTBps}}
}

// Oracle knows each kernel's best configuration in advance (Table II's
// hypothetical).
type Oracle struct {
	Table    map[string]dse.Point
	Fallback dse.Point
}

// Name implements Controller.
func (o *Oracle) Name() string { return "oracle" }

// ConfigFor implements Controller.
func (o *Oracle) ConfigFor(p Phase) dse.Point {
	if pt, ok := o.Table[p.Kernel.Name]; ok {
		return pt
	}
	return o.Fallback
}

// Observe implements Controller.
func (o *Oracle) Observe(Phase, dse.Point, float64, float64) {}

// NewOracle derives the per-kernel table from a design-space exploration.
func NewOracle(out dse.Outcome) *Oracle {
	o := &Oracle{Table: map[string]dse.Point{}, Fallback: out.BestMean.Point}
	for i, k := range out.Kernels {
		o.Table[k.Name] = out.BestPerKernel[i].Point
	}
	return o
}

// Reactive is an online hill-climbing controller: for each kernel it tracks
// the best configuration seen so far and, with a fixed exploration cadence,
// probes a neighbouring design point chosen by the kernel's binding bound
// (more bandwidth when bandwidth-bound, more frequency when latency-bound,
// more CUs or frequency when compute-bound). Over-budget probes are learned
// as infeasible and never retried.
type Reactive struct {
	Budget float64
	Space  dse.Space
	Opts   powopt.Technique

	state map[string]*kernelState
}

type kernelState struct {
	best      dse.Point
	bestPerf  float64
	pending   *dse.Point // probe in flight
	tried     map[dse.Point]bool
	visits    int
	exhausted bool
}

// NewReactive builds the online controller starting from the best-mean.
func NewReactive(budget float64, space dse.Space, opts powopt.Technique) *Reactive {
	return &Reactive{Budget: budget, Space: space, Opts: opts, state: map[string]*kernelState{}}
}

// Name implements Controller.
func (r *Reactive) Name() string { return "reactive" }

func (r *Reactive) stateFor(k workload.Kernel) *kernelState {
	st, ok := r.state[k.Name]
	if !ok {
		st = &kernelState{
			best:  dse.Point{CUs: arch.BestMeanCUs, FreqMHz: arch.BestMeanFreqMHz, BWTBps: arch.BestMeanBWTBps},
			tried: map[dse.Point]bool{},
		}
		r.state[k.Name] = st
	}
	return st
}

// ConfigFor implements Controller.
func (r *Reactive) ConfigFor(p Phase) dse.Point {
	st := r.stateFor(p.Kernel)
	st.visits++
	// Explore aggressively while the kernel is new (front-loading the
	// probes amortizes better over long runs), then only occasionally.
	probing := st.visits > 1 && (st.visits <= 16 || st.visits%8 == 0)
	if !st.exhausted && probing {
		if probe, ok := r.nextProbe(p.Kernel, st); ok {
			st.pending = &probe
			return probe
		}
		st.exhausted = true
	}
	st.pending = nil
	return st.best
}

// nextProbe proposes an untried neighbour of the current best, steered by
// the kernel's binding bound at the current best point.
func (r *Reactive) nextProbe(k workload.Kernel, st *kernelState) (dse.Point, bool) {
	res := core.Simulate(st.best.Config(), k, core.Options{Optimizations: r.Opts})
	dirs := directionsFor(res)
	for _, d := range dirs {
		cand := dse.Point{
			CUs:     stepValue(r.Space.CUs, st.best.CUs, d.dCU),
			FreqMHz: stepValue(r.Space.FreqsMHz, st.best.FreqMHz, d.dF),
			BWTBps:  stepValue(r.Space.BWsTBps, st.best.BWTBps, d.dBW),
		}
		if cand == st.best || st.tried[cand] {
			continue
		}
		if cand.Config().Validate() != nil {
			st.tried[cand] = true
			continue
		}
		return cand, true
	}
	return dse.Point{}, false
}

type direction struct{ dCU, dF, dBW int }

// directionsFor ranks moves by what the roofline says is binding.
func directionsFor(res core.Result) []direction {
	switch res.Perf.Bound {
	case perf.BandwidthBound:
		return []direction{{0, 0, +1}, {0, -1, +1}, {-1, 0, +1}, {0, +1, 0}, {+1, 0, 0}}
	case perf.LatencyBound:
		return []direction{{0, +1, 0}, {0, +1, -1}, {+1, 0, 0}, {0, 0, +1}, {0, -1, 0}}
	default: // compute bound
		return []direction{{+1, 0, 0}, {0, +1, 0}, {+1, 0, -1}, {0, +1, -1}, {0, 0, +1}}
	}
}

// stepValue moves one grid slot along a sorted axis (generic over int and
// float64 axes).
func stepValue[T int | float64](axis []T, cur T, delta int) T {
	idx := 0
	for i, v := range axis {
		if v == cur {
			idx = i
			break
		}
	}
	idx += delta
	if idx < 0 {
		idx = 0
	}
	if idx >= len(axis) {
		idx = len(axis) - 1
	}
	return axis[idx]
}

// Observe implements Controller.
func (r *Reactive) Observe(p Phase, pt dse.Point, perfTFLOPs, budgetW float64) {
	st := r.stateFor(p.Kernel)
	if st.pending != nil && *st.pending == pt {
		st.tried[pt] = true
		st.pending = nil
	}
	if budgetW > r.Budget {
		return // infeasible probe: remember, never adopt
	}
	if perfTFLOPs > st.bestPerf {
		st.bestPerf = perfTFLOPs
		st.best = pt
	}
}

// PhaseOutcome records one executed phase.
type PhaseOutcome struct {
	Kernel     string
	Point      dse.Point
	TimeS      float64
	EnergyJ    float64
	PerfTFLOPs float64
	OverBudget bool
}

// RunResult aggregates a controller's execution of a workload.
type RunResult struct {
	Controller string
	TotalS     float64
	EnergyJ    float64
	Reconfigs  int
	Phases     []PhaseOutcome
}

// MeanPowerW returns average node power over the run.
func (r RunResult) MeanPowerW() float64 {
	if r.TotalS == 0 {
		return 0
	}
	return r.EnergyJ / r.TotalS
}

// SpeedupOver returns this run's throughput relative to another's.
func (r RunResult) SpeedupOver(base RunResult) float64 {
	if r.TotalS == 0 {
		return 0
	}
	return base.TotalS / r.TotalS
}

// String summarizes the run.
func (r RunResult) String() string {
	return fmt.Sprintf("%s: %.3f s, %.0f J (%.1f W mean), %d reconfigurations",
		r.Controller, r.TotalS, r.EnergyJ, r.MeanPowerW(), r.Reconfigs)
}

// Run executes the workload under a controller, charging reconfiguration
// overheads on configuration changes and accounting time and energy from
// the node model. A phase that lands over budget is throttled (the power
// manager caps frequency), modeled as running at the static best-mean
// instead with the overhead of two extra switches.
func Run(w Workload, c Controller, budgetW float64, opts powopt.Technique) RunResult {
	res := RunResult{Controller: c.Name()}
	var cur dse.Point
	first := true
	fallback := dse.Point{CUs: arch.BestMeanCUs, FreqMHz: arch.BestMeanFreqMHz, BWTBps: arch.BestMeanBWTBps}

	for _, p := range w {
		pt := c.ConfigFor(p)
		sim := core.Simulate(pt.Config(), p.Kernel, core.Options{Optimizations: opts})
		budget := sim.Power.PackageW() + sim.Power.ExtStatic + sim.Power.SerDesStatic
		c.Observe(p, pt, sim.Perf.TFLOPs, budget)

		over := budget > budgetW
		if over {
			// Power manager vetoes the point mid-phase and falls back.
			pt = fallback
			sim = core.Simulate(pt.Config(), p.Kernel, core.Options{Optimizations: opts})
			res.TotalS += ReconfigOverheadS
			res.Reconfigs++
		}
		if first || pt != cur {
			if !first {
				res.TotalS += ReconfigOverheadS
			}
			res.Reconfigs++
			cur = pt
			first = false
		}
		t := p.Flops / (sim.Perf.TFLOPs * 1e12)
		e := t * sim.NodeW
		res.TotalS += t
		res.EnergyJ += e
		res.Phases = append(res.Phases, PhaseOutcome{
			Kernel:     p.Kernel.Name,
			Point:      pt,
			TimeS:      t,
			EnergyJ:    e,
			PerfTFLOPs: sim.Perf.TFLOPs,
			OverBudget: over,
		})
	}
	return res
}

// FromApplication expands an application into a phase workload: each round
// visits every kernel phase with work proportional to its weight.
func FromApplication(app workload.Application, rounds int, flopsPerRound float64) Workload {
	var w Workload
	for r := 0; r < rounds; r++ {
		for _, ph := range app.Phases {
			w = append(w, Phase{Kernel: ph.Kernel, Flops: flopsPerRound * ph.Weight})
		}
	}
	return w
}
