package reconfig

import (
	"strings"
	"testing"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/workload"
)

func smallWorkload(rounds int) Workload {
	var ks []workload.Kernel
	for _, n := range []string{"CoMD", "LULESH", "XSBench"} {
		k, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		ks = append(ks, k)
	}
	return Repeat(ks, rounds, 5e12)
}

func TestRepeat(t *testing.T) {
	w := smallWorkload(4)
	if len(w) != 12 {
		t.Fatalf("phases = %d", len(w))
	}
	if w[0].Kernel.Name != "CoMD" || w[3].Kernel.Name != "CoMD" {
		t.Error("round structure wrong")
	}
}

func TestStaticController(t *testing.T) {
	c := NewStaticBestMean()
	w := smallWorkload(2)
	r := Run(w, c, arch.NodePowerBudgetW, 0)
	if r.Controller != "static" {
		t.Error("name")
	}
	if r.Reconfigs != 1 {
		t.Errorf("static policy reconfigured %d times (only the initial set)", r.Reconfigs)
	}
	if r.TotalS <= 0 || r.EnergyJ <= 0 {
		t.Fatalf("degenerate run: %+v", r)
	}
	for _, p := range r.Phases {
		if p.OverBudget {
			t.Errorf("best-mean must never exceed the budget (%s)", p.Kernel)
		}
		if p.Point.CUs != arch.BestMeanCUs {
			t.Errorf("static ran %v", p.Point)
		}
	}
}

func TestOracleBeatsStatic(t *testing.T) {
	out := dse.Explore(dse.DefaultSpace(), workload.Suite(), arch.NodePowerBudgetW, 0)
	oracle := NewOracle(out)
	w := smallWorkload(3)
	st := Run(w, NewStaticBestMean(), arch.NodePowerBudgetW, 0)
	or := Run(w, oracle, arch.NodePowerBudgetW, 0)
	speedup := or.SpeedupOver(st)
	if speedup < 1.0 {
		t.Errorf("oracle slower than static: %v", speedup)
	}
	// Table II regime: per-kernel oracle buys up to ~50%; the mix here
	// includes XSBench (+31%), so the blended speedup must be visible.
	if speedup < 1.05 || speedup > 1.6 {
		t.Errorf("oracle speedup %v outside the Table II regime", speedup)
	}
}

func TestReactiveApproachesOracle(t *testing.T) {
	out := dse.Explore(dse.DefaultSpace(), workload.Suite(), arch.NodePowerBudgetW, 0)
	oracle := NewOracle(out)

	w := smallWorkload(40) // enough visits to learn
	st := Run(w, NewStaticBestMean(), arch.NodePowerBudgetW, 0)
	or := Run(w, oracle, arch.NodePowerBudgetW, 0)
	re := Run(w, NewReactive(arch.NodePowerBudgetW, dse.DefaultSpace(), 0), arch.NodePowerBudgetW, 0)

	sOr := or.SpeedupOver(st)
	sRe := re.SpeedupOver(st)
	if sRe < 1.0 {
		t.Errorf("reactive slower than static: %v", sRe)
	}
	// The online controller should capture a solid fraction of the oracle
	// benefit despite exploration costs.
	if gotFrac := (sRe - 1) / (sOr - 1); gotFrac < 0.4 {
		t.Errorf("reactive captured only %.0f%% of the oracle benefit (%v vs %v)",
			gotFrac*100, sRe, sOr)
	}
	if re.Reconfigs <= or.Reconfigs {
		t.Error("exploration implies more reconfigurations than the oracle")
	}
}

func TestReactiveNeverAdoptsInfeasible(t *testing.T) {
	w := smallWorkload(30)
	re := NewReactive(arch.NodePowerBudgetW, dse.DefaultSpace(), 0)
	r := Run(w, re, arch.NodePowerBudgetW, 0)
	// Probes may transiently exceed budget (the power manager throttles),
	// but adopted bests never do: the last visit of each kernel runs the
	// learned best and must be in budget.
	lastByKernel := map[string]PhaseOutcome{}
	for _, p := range r.Phases {
		lastByKernel[p.Kernel] = p
	}
	for k, p := range lastByKernel {
		if p.OverBudget {
			t.Errorf("%s: final adopted config over budget (%v)", k, p.Point)
		}
	}
}

func TestReconfigOverheadCharged(t *testing.T) {
	// Alternating kernels under the oracle forces a switch every phase;
	// the same workload under static never switches.
	out := dse.Explore(dse.DefaultSpace(), workload.Suite(), arch.NodePowerBudgetW, 0)
	oracle := NewOracle(out)
	w := smallWorkload(5)
	or := Run(w, oracle, arch.NodePowerBudgetW, 0)
	if or.Reconfigs < len(w) {
		t.Errorf("expected a reconfiguration per phase, got %d/%d", or.Reconfigs, len(w))
	}
}

func TestRunResultString(t *testing.T) {
	r := Run(smallWorkload(1), NewStaticBestMean(), arch.NodePowerBudgetW, 0)
	if !strings.Contains(r.String(), "static") {
		t.Errorf("String = %q", r.String())
	}
	if r.MeanPowerW() <= 0 {
		t.Error("mean power")
	}
}

func TestStepValue(t *testing.T) {
	axis := []int{1, 2, 3}
	if stepValue(axis, 2, 1) != 3 || stepValue(axis, 3, 1) != 3 || stepValue(axis, 1, -1) != 1 {
		t.Error("int stepping wrong")
	}
	faxis := []float64{700, 800, 900}
	if stepValue(faxis, 800, -1) != 700 {
		t.Error("float stepping wrong")
	}
	// Values off the axis snap to the low end before stepping.
	if stepValue(axis, 99, 1) != 2 {
		t.Error("off-axis handling")
	}
}

func TestFromApplication(t *testing.T) {
	app, err := workload.ApplicationByName("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	w := FromApplication(app, 3, 9e12)
	if len(w) != 3*len(app.Phases) {
		t.Fatalf("phases = %d", len(w))
	}
	var total float64
	for _, p := range w {
		total += p.Flops
	}
	if total < 27e12*0.999 || total > 27e12*1.001 {
		t.Errorf("total work = %v", total)
	}
	// Reconfiguration across an app's own phases still helps: its phases
	// have different bound characters.
	st := Run(w, NewStaticBestMean(), arch.NodePowerBudgetW, 0)
	out := dse.Explore(dse.DefaultSpace(), workload.Suite(), arch.NodePowerBudgetW, 0)
	or := Run(w, NewOracle(out), arch.NodePowerBudgetW, 0)
	if or.TotalS > st.TotalS {
		t.Errorf("oracle slower than static on app phases: %v vs %v", or.TotalS, st.TotalS)
	}
}

func TestOracleFallback(t *testing.T) {
	o := &Oracle{Table: map[string]dse.Point{}, Fallback: dse.Point{CUs: 320, FreqMHz: 1000, BWTBps: 3}}
	k, err := workload.ByName("CoMD")
	if err != nil {
		t.Fatal(err)
	}
	if got := o.ConfigFor(Phase{Kernel: k}); got != o.Fallback {
		t.Errorf("unknown kernel should fall back, got %v", got)
	}
}

func TestDirectionsSteerByBound(t *testing.T) {
	// Bandwidth-bound kernels probe toward more bandwidth first;
	// latency-bound toward frequency; compute-bound toward CUs.
	cases := []struct {
		name  string
		cfg   dse.Point
		check func(d direction) bool
	}{
		{"SNAP", dse.Point{CUs: 320, FreqMHz: 1000, BWTBps: 1}, func(d direction) bool { return d.dBW > 0 }},
		{"XSBench", dse.Point{CUs: 320, FreqMHz: 1000, BWTBps: 3}, func(d direction) bool { return d.dF > 0 }},
		{"MaxFlops", dse.Point{CUs: 320, FreqMHz: 1000, BWTBps: 3}, func(d direction) bool { return d.dCU > 0 }},
	}
	for _, c := range cases {
		k, err := workload.ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		res := core.Simulate(c.cfg.Config(), k, core.Options{})
		dirs := directionsFor(res)
		if len(dirs) == 0 || !c.check(dirs[0]) {
			t.Errorf("%s (%v-bound): first probe direction %+v", c.name, res.Perf.Bound, dirs[0])
		}
	}
}

func TestOverBudgetFallback(t *testing.T) {
	// A controller that insists on an over-budget point gets throttled to
	// the best-mean fallback and the phase still completes.
	k, err := workload.ByName("MaxFlops")
	if err != nil {
		t.Fatal(err)
	}
	hot := &Static{Point: dse.Point{CUs: 384, FreqMHz: 1500, BWTBps: 7}}
	w := Workload{{Kernel: k, Flops: 1e12}}
	r := Run(w, hot, arch.NodePowerBudgetW, 0)
	if len(r.Phases) != 1 {
		t.Fatal("phase lost")
	}
	p := r.Phases[0]
	if !p.OverBudget {
		t.Error("384/1500/7 under MaxFlops must exceed 160 W")
	}
	if p.Point.CUs != arch.BestMeanCUs {
		t.Errorf("throttled phase ran %v, want the best-mean fallback", p.Point)
	}
}
