// Package units centralizes the unit conventions used across the ENA model.
//
// All model code passes plain float64 values; the convention is encoded in
// identifier names (e.g. bwTBps, powerW, energyPJ). This package provides the
// conversion constants and a few tiny numeric helpers shared by everyone so
// that magic numbers never appear inline.
package units

// Byte-quantity multipliers (binary for capacities, decimal for bandwidth, as
// is conventional in memory-system literature).
const (
	KiB = 1024.0
	MiB = 1024.0 * KiB
	GiB = 1024.0 * MiB

	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
)

// Frequency multipliers (Hz).
const (
	KHz = 1e3
	MHz = 1e6
	GHz = 1e9
)

// Energy multipliers (Joules).
const (
	PJ = 1e-12
	NJ = 1e-9
	UJ = 1e-6
	MJ = 1e6 // mega-joule (note: upper-case M = mega here, not milli)
)

// Throughput multipliers (FLOP/s).
const (
	GFLOPS = 1e9
	TFLOPS = 1e12
	PFLOPS = 1e15
	EFLOPS = 1e18
)

// Power multipliers (Watts).
const (
	MW = 1e6 // megawatt
	KW = 1e3
)

// CacheLineBytes is the transfer granule assumed throughout the memory-system
// models (a standard 64-byte line).
const CacheLineBytes = 64

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 {
	return a + (b-a)*t
}

// Min3 returns the smallest of three values.
func Min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// ApproxEqual reports whether a and b differ by less than tol in absolute
// terms, or by less than tol relative to the larger magnitude.
func ApproxEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= tol {
		return true
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	}
	if -b > m {
		m = -b
	}
	return d <= tol*m
}
