package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if GiB != 1<<30 {
		t.Errorf("GiB = %v", GiB)
	}
	if TB/GB != 1000 {
		t.Errorf("TB/GB = %v", TB/GB)
	}
	if GHz != 1000*MHz {
		t.Errorf("GHz = %v", GHz)
	}
	if EFLOPS/TFLOPS != 1e6 {
		t.Errorf("EFLOPS/TFLOPS = %v", EFLOPS/TFLOPS)
	}
	if CacheLineBytes != 64 {
		t.Errorf("CacheLineBytes = %d", CacheLineBytes)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Errorf("Lerp midpoint = %v", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Errorf("Lerp(..., 0) = %v", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Errorf("Lerp(..., 1) = %v", got)
	}
}

func TestMin3(t *testing.T) {
	f := func(a, b, c float64) bool {
		m := Min3(a, b, c)
		return m <= a && m <= b && m <= c && (m == a || m == b || m == c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("tiny absolute difference should be equal")
	}
	if !ApproxEqual(1e12, 1.0005e12, 1e-3) {
		t.Error("relative tolerance should apply to large values")
	}
	if ApproxEqual(1, 2, 1e-6) {
		t.Error("1 and 2 are not approximately equal")
	}
	if !ApproxEqual(-5, -5, 0) {
		t.Error("identical values must compare equal")
	}
	if !math.IsNaN(math.NaN()) {
		t.Fatal("sanity")
	}
}
