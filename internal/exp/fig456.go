package exp

import (
	"fmt"
	"strings"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/workload"
)

// Sweep parameters shared by Figs. 4-6: six bandwidth curves, with the
// x-axis (machine ops-per-byte = CUs x frequency / bandwidth) varied either
// by frequency at the best-mean CU count, or by CU count at the best-mean
// frequency, exactly as the paper's (a)/(b) subfigures do.
var (
	figBandwidthsTBps = []float64{1, 3, 4, 5, 6, 7}
	figFreqSweepMHz   = []float64{500, 600, 700, 800, 900, 1000, 1100, 1200, 1300, 1400, 1500}
	figCUSweep        = []int{64, 96, 128, 160, 192, 224, 256, 288, 320, 352, 384}
)

// CurvePoint is one (ops-per-byte, normalized performance) sample.
type CurvePoint struct {
	OpsPerByte float64
	NormPerf   float64
}

// Curve is one bandwidth line of a Fig. 4-6 plot.
type Curve struct {
	BWTBps float64
	Points []CurvePoint
}

// PeakNorm returns the curve's maximum normalized performance.
func (c Curve) PeakNorm() float64 {
	m := 0.0
	for _, p := range c.Points {
		if p.NormPerf > m {
			m = p.NormPerf
		}
	}
	return m
}

// KernelSweep is the full Fig. 4/5/6 dataset for one kernel.
type KernelSweep struct {
	Kernel    string
	Category  workload.Category
	FreqSweep []Curve // subfigure (a)
	CUSweep   []Curve // subfigure (b)
}

// Render implements Result.
func (r KernelSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): perf normalized to best-mean config (%d CUs / %d MHz / %d TB/s)\n",
		r.Kernel, r.Category, arch.BestMeanCUs, arch.BestMeanFreqMHz, arch.BestMeanBWTBps)
	render := func(name string, curves []Curve) {
		fmt.Fprintf(&b, "(%s)\n", name)
		for _, c := range curves {
			fmt.Fprintf(&b, "  %v TB/s:", c.BWTBps)
			for _, p := range c.Points {
				fmt.Fprintf(&b, " (%.3f, %.2f)", p.OpsPerByte, p.NormPerf)
			}
			b.WriteByte('\n')
		}
	}
	render("a: CU-frequency sweep", r.FreqSweep)
	render("b: CU-count sweep", r.CUSweep)
	return b.String()
}

// sweepKernel builds the dataset for one kernel.
func sweepKernel(k workload.Kernel) KernelSweep {
	out := KernelSweep{Kernel: k.Name, Category: k.Category}
	for _, bw := range figBandwidthsTBps {
		fc := Curve{BWTBps: bw}
		for _, f := range figFreqSweepMHz {
			cfg := arch.EHP(arch.BestMeanCUs, f, bw)
			fc.Points = append(fc.Points, CurvePoint{
				OpsPerByte: cfg.OpsPerByte(),
				NormPerf:   core.NormalizedPerf(cfg, k),
			})
		}
		out.FreqSweep = append(out.FreqSweep, fc)

		cc := Curve{BWTBps: bw}
		for _, cus := range figCUSweep {
			cfg := arch.EHP(cus, arch.BestMeanFreqMHz, bw)
			cc.Points = append(cc.Points, CurvePoint{
				OpsPerByte: cfg.OpsPerByte(),
				NormPerf:   core.NormalizedPerf(cfg, k),
			})
		}
		out.CUSweep = append(out.CUSweep, cc)
	}
	return out
}

// Figure4 reproduces Fig. 4: the compute-intensive MaxFlops kernel scales
// with CUs and frequency and is insensitive to bandwidth.
func Figure4() KernelSweep { return sweepKernel(workload.MaxFlops()) }

// Figure5 reproduces Fig. 5: the balanced CoMD kernel improves with all
// resources and plateaus beyond its ops-per-byte sweet spot.
func Figure5() KernelSweep { return sweepKernel(workload.CoMD()) }

// Figure6 reproduces Fig. 6: the memory-intensive LULESH kernel peaks and
// then degrades as excess concurrency thrashes caches and the interconnect.
func Figure6() KernelSweep { return sweepKernel(workload.LULESH()) }
