package exp

// Golden regression snapshot of the inference-serving experiment: the
// per-batch roofline throughput and capacity, the event-driven latency
// percentiles and achieved rate at the default load, and the analytic-vs-
// event validation rows. The values chain the DL kernel generators (tiled
// intensity), the roofline/core path, and the batched-FIFO serving
// simulator, so drift in any layer shows up here first. If a deliberate
// model change moves a number, regenerate the snapshot in the same commit
// and say why.

import (
	"math"
	"testing"
)

type goldenInferenceKey struct {
	phase string
	batch int
}

// Columns: block TFLOP/s, capacity r/s, achieved r/s, p50 ns, p95 ns, p99 ns.
var goldenInference = map[goldenInferenceKey][6]float64{
	{"prefill", 1}:  {17.0107741832534, 19.0414879910458, 13.2211489255838, 89577310.0501709, 262360629.755267, 384943268.560323},
	{"prefill", 2}:  {17.0107741832534, 19.0414879910458, 13.2660158583826, 100829455.081902, 283601059.001611, 388954455.459117},
	{"prefill", 4}:  {17.0107741832534, 19.0414879910458, 13.4692703593732, 106359987.242676, 368761310.682849, 531992648.311334},
	{"prefill", 8}:  {17.0107741832534, 19.0414879910458, 13.5498518758239, 109134916.944519, 380244862.427692, 614271085.253561},
	{"prefill", 16}: {17.0107741832534, 19.0414879910458, 13.2306393078474, 102026505.564514, 363362756.632767, 554866038.284654},
	{"prefill", 32}: {17.0107741832534, 19.0414879910458, 13.3384399385544, 105614024.895142, 361004486.568902, 567604101.163919},
	{"decode", 1}:   {2.84683618474167, 6526.33305866367, 4565.87533241779, 262404.23289036, 823205.105878627, 1198926.83981337},
	{"decode", 2}:   {5.25594249701373, 12049.1763651686, 8365.90043650409, 273968.464722157, 531413.517557251, 703815.913631148},
	{"decode", 4}:   {9.04034154845952, 20724.8594863129, 14546.6599974221, 287364.476362079, 465536.487368542, 588067.910407403},
	{"decode", 8}:   {12.2262345868483, 28028.4757496033, 19511.1862064701, 310674.500838961, 469514.839218152, 572756.341950001},
	{"decode", 16}:  {12.5607062269263, 28795.2474147684, 20005.7888637853, 315201.619396448, 495620.223885153, 609567.361127747},
	{"decode", 32}:  {12.5691755569573, 28814.6632381525, 20071.5578100964, 314342.144666255, 497567.474284446, 630529.362582812},
}

// goldenInferenceValidation pins the analytic and event-driven saturated
// rates for the single-kernel presets (columns: analytic r/s, event r/s).
var goldenInferenceValidation = map[string][2]float64{
	"gemm:4096x4096x4096:fp16:t128x128x64": {125.022062767654, 125.020184807373},
	"attn:1x32x2048x2048x128:fp16:tq64":    {220.976158668877, 220.974354634118},
	"attn:1x32x1x2048x128:fp16:tq1":        {88727.5000991096, 88722.8913050224},
}

// relClose compares with relative tolerance (the pinned values span nine
// orders of magnitude, so an absolute epsilon fits no single column).
func relClose(got, want float64) bool {
	return math.Abs(got-want) <= 1e-9*math.Max(math.Abs(want), 1)
}

func TestGoldenInference(t *testing.T) {
	r := Inference()
	if len(r.Rows) != len(goldenInference) {
		t.Fatalf("inference experiment produced %d rows, golden has %d", len(r.Rows), len(goldenInference))
	}
	for _, row := range r.Rows {
		key := goldenInferenceKey{row.Phase, row.Batch}
		want, ok := goldenInference[key]
		if !ok {
			t.Errorf("unexpected row %+v", key)
			continue
		}
		got := [6]float64{row.BlockTFLOPs, row.CapacityRPS, row.Serving.AchievedRPS,
			row.Serving.P50Ns, row.Serving.P95Ns, row.Serving.P99Ns}
		names := [6]string{"block TFLOP/s", "capacity", "achieved", "p50", "p95", "p99"}
		for i := range got {
			if !relClose(got[i], want[i]) {
				t.Errorf("%+v: %s drifted: got %.15g, golden %.15g", key, names[i], got[i], want[i])
			}
		}
	}
	if len(r.Validation) != len(goldenInferenceValidation) {
		t.Fatalf("validation has %d rows, golden %d", len(r.Validation), len(goldenInferenceValidation))
	}
	for _, v := range r.Validation {
		want, ok := goldenInferenceValidation[v.Kernel]
		if !ok {
			t.Errorf("unexpected validation kernel %q", v.Kernel)
			continue
		}
		if !relClose(v.AnalyticRPS, want[0]) || !relClose(v.EventRPS, want[1]) {
			t.Errorf("%s: rates drifted: got (%.15g, %.15g), golden (%.15g, %.15g)",
				v.Kernel, v.AnalyticRPS, v.EventRPS, want[0], want[1])
		}
		// The acceptance gate: the event-driven server reproduces the
		// analytic roofline capacity under saturation.
		if math.Abs(v.RelErr) > 0.02 {
			t.Errorf("%s: event-driven rate off analytic capacity by %.3f%% (tolerance 2%%)",
				v.Kernel, v.RelErr*100)
		}
	}
}

// TestInferenceDeterministicWorkers pins bit-identical results across worker
// counts: the sweep writes to fixed slots and every serving replay is
// deterministically seeded, so parallelism must not leak into the output.
func TestInferenceDeterministicWorkers(t *testing.T) {
	serial := InferenceWorkers(1)
	parallel := InferenceWorkers(8)
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i] != parallel.Rows[i] {
			t.Errorf("row %d differs between 1 and 8 workers:\n%+v\n%+v",
				i, serial.Rows[i], parallel.Rows[i])
		}
	}
	for i := range serial.Validation {
		if serial.Validation[i] != parallel.Validation[i] {
			t.Errorf("validation row %d differs between worker counts", i)
		}
	}
}
