package exp

import (
	"math"
	"strings"
	"testing"

	"ena/internal/stats"
	"ena/internal/thermal"
)

// These are the integration tests of the reproduction: each asserts the
// *shape* invariants the paper reports for its figure — who wins, by roughly
// what factor, and where the crossovers fall (see EXPERIMENTS.md for the
// paper-vs-measured record).

func TestFigure4MaxFlops(t *testing.T) {
	r := Figure4()
	if r.Kernel != "MaxFlops" {
		t.Fatal("wrong kernel")
	}
	// (1) Bandwidth-insensitive: at matched CU-frequency points the curves
	// for different bandwidths coincide (paper: "bandwidth does not help").
	for i := range r.FreqSweep[0].Points {
		ys := make([]float64, 0, len(r.FreqSweep))
		for _, c := range r.FreqSweep {
			ys = append(ys, c.Points[i].NormPerf)
		}
		lo, _ := stats.Min(ys)
		hi, _ := stats.Max(ys)
		if (hi-lo)/hi > 0.03 {
			t.Errorf("freq point %d: bandwidth spread %.1f%%", i, (hi-lo)/hi*100)
		}
	}
	// (2) Perf increases ~linearly with frequency and with CU count.
	for _, c := range r.FreqSweep {
		first, last := c.Points[0], c.Points[len(c.Points)-1]
		gain := last.NormPerf / first.NormPerf
		want := 1500.0 / 500.0
		if math.Abs(gain-want)/want > 0.1 {
			t.Errorf("bw %v: freq-sweep gain %v, want ~%v", c.BWTBps, gain, want)
		}
	}
	for _, c := range r.CUSweep {
		first, last := c.Points[0], c.Points[len(c.Points)-1]
		gain := last.NormPerf / first.NormPerf
		want := 384.0 / 64.0
		if math.Abs(gain-want)/want > 0.1 {
			t.Errorf("bw %v: CU-sweep gain %v, want ~%v", c.BWTBps, gain, want)
		}
	}
	// (3) Normalization: the best-mean point sits at 1.0 (CU sweep at
	// 320 CUs, 1000 MHz, 3 TB/s).
	for _, c := range r.CUSweep {
		if c.BWTBps != 3 {
			continue
		}
		for _, p := range c.Points {
			if math.Abs(p.OpsPerByte-320.0*1000*1e6/3e12) < 1e-9 &&
				math.Abs(p.NormPerf-1) > 1e-9 {
				t.Errorf("best-mean point normalized to %v", p.NormPerf)
			}
		}
	}
}

func TestFigure5CoMDBalanced(t *testing.T) {
	r := Figure5()
	// (1) Low bandwidth plateaus: at 1 TB/s the last frequency doubling
	// buys little.
	low := r.FreqSweep[0]
	if low.BWTBps != 1 {
		t.Fatal("expected the 1 TB/s curve first")
	}
	n := len(low.Points)
	lateGain := low.Points[n-1].NormPerf / low.Points[n/2].NormPerf
	if lateGain > 1.15 {
		t.Errorf("CoMD at 1 TB/s should plateau; late gain %v", lateGain)
	}
	// (2) Higher bandwidth keeps the curve rising: best performance when
	// all resources increase together.
	high := r.FreqSweep[len(r.FreqSweep)-1]
	if high.BWTBps != 7 {
		t.Fatal("expected the 7 TB/s curve last")
	}
	if gain := high.Points[n-1].NormPerf / high.Points[n/2].NormPerf; gain < 1.2 {
		t.Errorf("CoMD at 7 TB/s should keep scaling; late gain %v", gain)
	}
	// (3) The 7 TB/s curve peaks at least 25%% above the best-mean level.
	if high.PeakNorm() < 1.25 {
		t.Errorf("7 TB/s peak = %v", high.PeakNorm())
	}
	// (4) Monotone: a balanced kernel never loses from more compute.
	for _, c := range r.FreqSweep {
		ys := make([]float64, len(c.Points))
		for i, p := range c.Points {
			ys[i] = p.NormPerf
		}
		if !stats.IsMonotonicNonDecreasing(ys, 1e-9) {
			t.Errorf("CoMD curve at %v TB/s not monotone", c.BWTBps)
		}
	}
}

func TestFigure6LULESHDegrades(t *testing.T) {
	r := Figure6()
	// (1) At 1 TB/s performance peaks and then degrades (§IV-C).
	low := r.FreqSweep[0]
	peakAt := -1
	for i, p := range low.Points {
		if peakAt < 0 || p.NormPerf > low.Points[peakAt].NormPerf {
			peakAt = i
		}
	}
	if peakAt == len(low.Points)-1 {
		t.Error("LULESH at 1 TB/s should degrade past its peak")
	}
	last := low.Points[len(low.Points)-1].NormPerf
	if last > low.Points[peakAt].NormPerf*0.85 {
		t.Errorf("degradation too mild: peak %v -> %v",
			low.Points[peakAt].NormPerf, last)
	}
	// (2) More bandwidth moves the peak right and up.
	high := r.FreqSweep[len(r.FreqSweep)-1]
	if high.PeakNorm() <= low.PeakNorm() {
		t.Error("bandwidth should lift LULESH's achievable peak")
	}
}

func TestFigure7ChipletOverheadSmall(t *testing.T) {
	r := Figure7()
	if len(r.Rows) != 3 {
		t.Fatalf("fig7 rows = %d", len(r.Rows))
	}
	byName := map[string]float64{}
	for _, row := range r.Rows {
		// Paper Finding 1: out-of-chiplet traffic dominates, 60-95%.
		if row.OutOfChiplet < 0.5 || row.OutOfChiplet > 0.97 {
			t.Errorf("%s: out-of-chiplet %.2f", row.Kernel, row.OutOfChiplet)
		}
		// Paper Finding 2: the largest degradation is small (13%).
		if row.PerfVsMonolith < 0.82 {
			t.Errorf("%s: chiplet penalty too large: %.2f", row.Kernel, row.PerfVsMonolith)
		}
		byName[row.Kernel] = row.PerfVsMonolith
	}
	if byName["SNAP"] < 0.97 {
		t.Errorf("SNAP impact should be negligible: %v", byName["SNAP"])
	}
	if byName["XSBench"] >= byName["SNAP"] {
		t.Error("latency-bound XSBench should suffer most")
	}
}

func TestFigure8MissSweep(t *testing.T) {
	r := Figure8()
	idx := map[string]int{}
	for i, k := range r.Kernels {
		idx[k] = i
	}
	last := len(r.MissRates) - 1
	for i, k := range r.Kernels {
		row := r.Norm[i]
		if row[0] != 1 {
			t.Errorf("%s: zero-miss must be 1.0", k)
		}
		for j := 1; j < len(row); j++ {
			if row[j] > row[j-1]+1e-9 {
				t.Errorf("%s: non-monotone at %v", k, r.MissRates[j])
			}
		}
	}
	// MaxFlops flat; others degrade 7-75+% at full miss (paper range).
	if r.Norm[idx["MaxFlops"]][last] < 0.95 {
		t.Error("MaxFlops should retain performance regardless of misses")
	}
	for _, k := range []string{"CoMD", "HPGMG", "LULESH", "MiniAMR", "XSBench", "SNAP"} {
		v := r.Norm[idx[k]][last]
		if v > 0.93 || v < 0.2 {
			t.Errorf("%s at 100%% miss = %v, expected substantial degradation", k, v)
		}
	}
	// §V-B: LULESH (latency-sensitive) retains more than CoMD.
	if r.Norm[idx["LULESH"]][last] <= r.Norm[idx["CoMD"]][last] {
		t.Error("LULESH should be less bandwidth-sensitive than CoMD")
	}
}

func TestFigure9ExternalMemoryPower(t *testing.T) {
	r := Figure9()
	rows := map[string]map[Fig9Config]Fig9Row{}
	for _, row := range r.Rows {
		if rows[row.Kernel] == nil {
			rows[row.Kernel] = map[Fig9Config]Fig9Row{}
		}
		rows[row.Kernel][row.Config] = row
	}
	for k, m := range rows {
		d, h := m[Fig9DRAMOnly], m[Fig9Hybrid]
		// Finding 1: DRAM-only external power 40-70 W across kernels.
		ext := d.SerDesStaticW + d.ExtStaticW + d.SerDesDynW + d.ExtDynW
		if ext < 35 || ext > 92 {
			t.Errorf("%s: DRAM-only external power %v W", k, ext)
		}
		// Finding 2: hybrid halves external static power.
		if ratio := (h.SerDesStaticW + h.ExtStaticW) / (d.SerDesStaticW + d.ExtStaticW); ratio < 0.4 || ratio > 0.65 {
			t.Errorf("%s: hybrid static ratio %v", k, ratio)
		}
	}
	// Less memory-intensive apps benefit from NVM...
	for _, k := range []string{"MaxFlops", "CoMD", "CoMD-LJ"} {
		if rows[k][Fig9Hybrid].TotalW >= rows[k][Fig9DRAMOnly].TotalW {
			t.Errorf("%s: hybrid should reduce total power", k)
		}
	}
	// ...while frequent external access blows the total up, as much as
	// ~2x for the worst kernels.
	worst := 0.0
	for _, k := range []string{"HPGMG", "LULESH", "MiniAMR", "SNAP"} {
		ratio := rows[k][Fig9Hybrid].TotalW / rows[k][Fig9DRAMOnly].TotalW
		if ratio <= 1.1 {
			t.Errorf("%s: hybrid should increase total power, ratio %v", k, ratio)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	if worst < 1.4 || worst > 2.2 {
		t.Errorf("worst hybrid ratio %v, paper says up to ~2x", worst)
	}
}

func TestFigure10Thermal(t *testing.T) {
	r := Figure10()
	if len(r.Rows) != 8 {
		t.Fatalf("fig10 rows = %d", len(r.Rows))
	}
	byName := map[string]Fig10Row{}
	for _, row := range r.Rows {
		byName[row.Kernel] = row
		// Takeaway: aggressive die stacking is thermally feasible with
		// air cooling — everything under 85 C.
		if row.BestMeanTempC >= thermal.DRAMTempLimitC || row.BestPerAppTempC >= thermal.DRAMTempLimitC {
			t.Errorf("%s exceeds the DRAM limit: %.1f / %.1f C",
				row.Kernel, row.BestMeanTempC, row.BestPerAppTempC)
		}
		// Sanity: everything is meaningfully above ambient.
		if row.BestMeanTempC < thermal.DefaultAmbientC+10 {
			t.Errorf("%s implausibly cool: %.1f C", row.Kernel, row.BestMeanTempC)
		}
	}
	// The design headroom is thin for the hottest kernel (the paper's
	// "approaches the thermal limit").
	hottest := 0.0
	for _, row := range r.Rows {
		if row.BestPerAppTempC > hottest {
			hottest = row.BestPerAppTempC
		}
	}
	if hottest < thermal.DRAMTempLimitC-6 {
		t.Errorf("hottest per-app temp %.1f C — too much headroom to be interesting", hottest)
	}
	// XSBench (lowest power) runs coolest at the best-mean config.
	for k, row := range byName {
		if k != "XSBench" && row.BestMeanTempC < byName["XSBench"].BestMeanTempC {
			t.Errorf("%s cooler than XSBench at best-mean", k)
		}
	}
	// Finding 2 (higher perf => higher power => higher temperature) holds
	// for the general population: per-app configs run hotter for most.
	hotter := 0
	for _, row := range r.Rows {
		if row.BestPerAppTempC >= row.BestMeanTempC-0.1 {
			hotter++
		}
	}
	if hotter < 6 {
		t.Errorf("only %d/8 kernels run hotter at their own best config", hotter)
	}
}

func TestFigure11HeatMap(t *testing.T) {
	r := Figure11()
	if r.Kernel != "SNAP" {
		t.Fatal("Fig 11 is the SNAP study")
	}
	if r.MeanPeakC <= thermal.DefaultAmbientC || r.AppPeakC <= thermal.DefaultAmbientC {
		t.Fatal("degenerate solve")
	}
	// The hot spots sit above the GPU CUs, not over the CPU clusters
	// (paper: "Hot spots caused by GPU CUs on a lower layer").
	fp := thermal.EHPFloorplan()
	maxOver := func(m [][]float64, rects []thermal.Rect) float64 {
		peak := 0.0
		for _, rc := range rects {
			for y := rc.Y0; y < rc.Y1; y++ {
				for x := rc.X0; x < rc.X1; x++ {
					if m[y][x] > peak {
						peak = m[y][x]
					}
				}
			}
		}
		return peak
	}
	gpuPeak := maxOver(r.MeanMap, fp.GPU)
	cpuPeak := maxOver(r.MeanMap, fp.CPU)
	if gpuPeak <= cpuPeak {
		t.Errorf("GPU hot spots (%.1f C) should exceed the CPU area (%.1f C)", gpuPeak, cpuPeak)
	}
	// Render sanity.
	if !strings.Contains(r.MeanASCII, "layer") || len(r.MeanMap) == 0 || len(r.AppMap) == 0 {
		t.Error("maps not rendered")
	}
}

func TestFigure12SavingsBands(t *testing.T) {
	r := Figure12()
	var all []float64
	for _, row := range r.Rows {
		if row.All < 0.12 || row.All > 0.31 {
			t.Errorf("%s: combined savings %.3f outside the 13-27%% band (with slack)", row.Kernel, row.All)
		}
		all = append(all, row.All)
		// Combined beats every individual technique.
		for _, tq := range []struct {
			v float64
		}{} {
			_ = tq
		}
		sum := 0.0
		for _, v := range row.PerTechnique {
			if v > row.All {
				t.Errorf("%s: individual technique beats the stack", row.Kernel)
			}
			sum += v
		}
		// Techniques overlap on shared components, so the combination is
		// at most the sum of parts.
		if row.All > sum+1e-9 {
			t.Errorf("%s: combined %.3f exceeds sum of parts %.3f", row.Kernel, row.All, sum)
		}
	}
	if m := stats.Mean(all); m < 0.15 || m < 0.10 || m > 0.28 {
		t.Errorf("mean combined savings %.3f", m)
	}
}

func TestFigure13EfficiencyGains(t *testing.T) {
	r := Figure13()
	// The optimized exploration should pick a different, higher-capability
	// operating point (paper: 320/1000/3 -> 288/1100/3).
	if r.OptConfig == r.BaselineConfig {
		t.Error("optimizations should move the best-mean operating point")
	}
	if r.OptConfig.FreqMHz <= r.BaselineConfig.FreqMHz {
		t.Errorf("freed power should buy frequency: %v -> %v", r.BaselineConfig, r.OptConfig)
	}
	var imps []float64
	for _, row := range r.Rows {
		if row.ImprovementPct <= 0 {
			t.Errorf("%s: perf/W got worse: %v%%", row.Kernel, row.ImprovementPct)
		}
		if row.ImprovementPct > 55 {
			t.Errorf("%s: improvement %v%% beyond the paper's ~45%% ceiling", row.Kernel, row.ImprovementPct)
		}
		imps = append(imps, row.ImprovementPct)
	}
	if m := stats.Mean(imps); m < 10 || m > 40 {
		t.Errorf("mean improvement %v%%", m)
	}
}

func TestFigure14ExascaleTarget(t *testing.T) {
	r := Figure14()
	if len(r.Points) != len(Fig14CUCounts) {
		t.Fatalf("fig14 points = %d", len(r.Points))
	}
	// Linear scaling with CU count.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	gotRatio := last.ExaFLOPs / first.ExaFLOPs
	wantRatio := float64(last.CUs) / float64(first.CUs)
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.03 {
		t.Errorf("scaling ratio %v, want ~%v", gotRatio, wantRatio)
	}
	// §V-F anchors at 320 CUs: ~18.6 TF/node, 1.86 exaflops, ~11.1 MW.
	if last.CUs != 320 {
		t.Fatal("last point should be 320 CUs")
	}
	if last.ExaFLOPs < 1.7 || last.ExaFLOPs > 2.0 {
		t.Errorf("exaflops = %v, paper: 1.86", last.ExaFLOPs)
	}
	if last.SystemMW < 10 || last.SystemMW > 13 {
		t.Errorf("system power = %v MW, paper: 11.1", last.SystemMW)
	}
	// Well under the 20 MW envelope.
	for _, p := range r.Points {
		if p.SystemMW > 20 {
			t.Errorf("%d CUs: %v MW exceeds the 20 MW target", p.CUs, p.SystemMW)
		}
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 8 {
		t.Fatalf("Table I rows = %d", len(r.Rows))
	}
	if r.Rows[0].Application != "MaxFlops" || r.Rows[7].Application != "SNAP" {
		t.Error("Table I order wrong")
	}
	for _, row := range r.Rows {
		if row.Description == "" {
			t.Errorf("%s: missing description", row.Application)
		}
		if row.TraceWriteFrac < 0 || row.TraceWriteFrac > 1 {
			t.Errorf("%s: bad trace write fraction", row.Application)
		}
	}
	if !strings.Contains(r.Render(), "Monte Carlo") {
		t.Error("render should include the paper's descriptions")
	}
}

func TestTable2(t *testing.T) {
	r := Table2()
	if len(r.Rows) != 8 {
		t.Fatalf("Table II rows = %d", len(r.Rows))
	}
	if r.BestMean.CUs != 320 || r.BestMean.FreqMHz != 1000 || r.BestMean.BWTBps != 3 {
		t.Errorf("best-mean = %v, want the paper's 320/1000/3", r.BestMean)
	}
	out := r.Render()
	if !strings.Contains(out, "LULESH") || !strings.Contains(out, "%") {
		t.Error("render incomplete")
	}
}

func TestAblationNoC(t *testing.T) {
	r := AblationNoC()
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// More locality => less out-of-chiplet traffic and no worse perf.
	byKernel := map[string][]AblationNoCRow{}
	for _, row := range r.Rows {
		byKernel[row.Kernel] = append(byKernel[row.Kernel], row)
	}
	for k, rows := range byKernel {
		for i := 1; i < len(rows); i++ {
			if rows[i].OutOfChiplet > rows[i-1].OutOfChiplet+0.02 {
				t.Errorf("%s: out-of-chiplet should fall with locality", k)
			}
		}
	}
}

func TestAblationMemPolicy(t *testing.T) {
	r := AblationMemPolicy()
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	byKernel := map[string]map[string]MemPolicyRow{}
	for _, row := range r.Rows {
		if byKernel[row.Kernel] == nil {
			byKernel[row.Kernel] = map[string]MemPolicyRow{}
		}
		byKernel[row.Kernel][row.Policy.String()] = row
	}
	for k, m := range byKernel {
		// Software management beats static interleaving (that is why the
		// paper makes it the primary mode).
		if m["software-managed"].NormPerf < m["static-interleave"].NormPerf-1e-9 {
			t.Errorf("%s: software management should not lose to static", k)
		}
		if m["software-managed"].MissFrac > m["static-interleave"].MissFrac+1e-9 {
			t.Errorf("%s: migration should reduce external traffic", k)
		}
	}
}

func TestRASExperiment(t *testing.T) {
	r := RAS()
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Protection rows must strictly improve MTTF.
	if !(r.Rows[0].NodeMTTFHours < r.Rows[1].NodeMTTFHours &&
		r.Rows[1].NodeMTTFHours < r.Rows[2].NodeMTTFHours) {
		t.Error("MTTF must improve with protection level")
	}
	if r.Rows[2].Efficiency < 0.7 {
		t.Errorf("protected machine efficiency %v too low", r.Rows[2].Efficiency)
	}
	if len(r.RMTOverhead) != 8 {
		t.Errorf("RMT overhead entries = %d", len(r.RMTOverhead))
	}
	if r.RMTOverhead["MaxFlops"] <= r.RMTOverhead["XSBench"] {
		t.Error("high-utilization MaxFlops pays more for RMT than idle-rich XSBench")
	}
}

func TestAllRendersNonEmpty(t *testing.T) {
	for _, e := range Experiments() {
		out := e.Run().Render()
		if len(out) < 40 {
			t.Errorf("%s: render too short (%d bytes)", e.ID, len(out))
		}
		if !strings.Contains(out, "\n") {
			t.Errorf("%s: render should be multi-line", e.ID)
		}
	}
}

func TestMigrationExperiment(t *testing.T) {
	r := Migration()
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]MigrationRow{}
	for _, row := range r.Rows {
		byName[row.Kernel] = row
		if row.SteadyState > row.ColdStart {
			t.Errorf("%s: migration made things worse (%.2f -> %.2f)",
				row.Kernel, row.ColdStart, row.SteadyState)
		}
	}
	// Resident kernels converge to fully in-package service.
	if byName["MaxFlops"].SteadyState > 0.01 {
		t.Errorf("MaxFlops steady state = %v", byName["MaxFlops"].SteadyState)
	}
	// Random access (XSBench) cannot concentrate: steady state stays high,
	// matching the paper's 89% worst case.
	if byName["XSBench"].SteadyState < 0.5 {
		t.Errorf("XSBench steady state = %v, random access should stay external-heavy",
			byName["XSBench"].SteadyState)
	}
}

func TestReconfigExperiment(t *testing.T) {
	r := Reconfig()
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]ReconfigRow{}
	for _, row := range r.Rows {
		byName[row.Controller] = row
	}
	st, or, re := byName["static"], byName["oracle"], byName["reactive"]
	if or.SpeedupPct <= 5 {
		t.Errorf("oracle speedup %v%% — Table II promises more", or.SpeedupPct)
	}
	if or.SpeedupPct > 60 {
		t.Errorf("oracle speedup %v%% beyond the Table II regime", or.SpeedupPct)
	}
	if re.SpeedupPct <= 0 {
		t.Errorf("reactive speedup %v%%", re.SpeedupPct)
	}
	if re.SpeedupPct >= or.SpeedupPct {
		t.Error("the online controller cannot beat the oracle")
	}
	if st.Reconfigs != 1 {
		t.Errorf("static reconfigs = %d", st.Reconfigs)
	}
	if or.Reconfigs < r.Phases {
		t.Errorf("oracle should switch every phase: %d < %d", or.Reconfigs, r.Phases)
	}
}

func TestAblationNoCTopology(t *testing.T) {
	r := AblationNoC()
	if len(r.Topology) != 2 {
		t.Fatalf("topology rows = %d", len(r.Topology))
	}
	var p2p, chain TopologyRow
	for _, row := range r.Topology {
		switch row.Topology {
		case "point-to-point":
			p2p = row
		case "chain":
			chain = row
		}
	}
	if chain.SustainedTBps >= p2p.SustainedTBps {
		t.Error("chain should sustain less bandwidth (bisection limit)")
	}
	if chain.MeanLatencyNs <= p2p.MeanLatencyNs {
		t.Error("chain should add latency")
	}
}

func TestRASFailureInjection(t *testing.T) {
	r := RAS()
	fi := r.FailureInjection
	if fi.Failures == 0 || fi.Checkpoints == 0 {
		t.Fatalf("failure injection did not run: %+v", fi)
	}
	// The Monte Carlo result validates Daly's first-order model.
	if fi.EstimationGapP > 6 {
		t.Errorf("simulated efficiency %.3f vs analytic %.3f: gap %.1f pp",
			fi.Efficiency, fi.AnalyticEst, fi.EstimationGapP)
	}
}

func TestThermalDSE(t *testing.T) {
	r := ThermalDSE()
	if r.PowerFeasible == 0 || r.PowerFeasible > r.PointsTotal {
		t.Fatalf("feasible = %d of %d", r.PowerFeasible, r.PointsTotal)
	}
	// §V-D takeaway: with high-end air cooling the whole power-feasible
	// sweep stays under the DRAM limit...
	if r.ThermallyRejected != 0 {
		t.Errorf("%d points thermally rejected with the default cooler", r.ThermallyRejected)
	}
	if r.BestMeanBoth != r.BestMean {
		t.Errorf("thermal constraint moved the best-mean: %v -> %v", r.BestMean, r.BestMeanBoth)
	}
	// ...but the margin is thin (the hottest point runs close to 85 C)...
	if r.HottestTempC < thermal.DRAMTempLimitC-8 || r.HottestTempC >= thermal.DRAMTempLimitC {
		t.Errorf("hottest point %.1f C", r.HottestTempC)
	}
	// ...and a weaker cooler starts rejecting designs ("more advanced
	// cooling solutions may become necessary").
	if r.WeakCoolerRejected == 0 {
		t.Error("weak cooler should reject some design points")
	}
	if r.WeakCoolerRejected >= r.PowerFeasible {
		t.Error("weak cooler rejected everything")
	}
}

func TestAblationDRAM(t *testing.T) {
	r := AblationDRAM()
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]DRAMRow{}
	for _, row := range r.Rows {
		byName[row.Kernel] = row
		if row.EffHot > row.EffCool {
			t.Errorf("%s: hotter DRAM delivered more bandwidth", row.Kernel)
		}
		if row.RefreshCost < 0 || row.RefreshCost > 0.3 {
			t.Errorf("%s: refresh cost %v", row.Kernel, row.RefreshCost)
		}
	}
	// Streaming kernels exploit row buffers far better than random ones.
	if byName["XSBench"].RowHitRate >= byName["MaxFlops"].RowHitRate {
		t.Error("random XSBench should have the worst row locality")
	}
}

func TestAblationExtNet(t *testing.T) {
	r := AblationExtNet()
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	plain, cross := r.Rows[0], r.Rows[1]
	if plain.AlwaysReachable {
		t.Error("plain chains must lose capacity under some single failure")
	}
	if !cross.AlwaysReachable {
		t.Error("cross-links must preserve reachability (the §II-B2 claim)")
	}
	if cross.WorstCapacityGB <= plain.WorstCapacityGB {
		t.Error("redundancy should improve worst-case capacity")
	}
	if cross.Links <= plain.Links {
		t.Error("cross-links add links")
	}
	if r.HealthyGBps < 700 || r.HealthyGBps > 900 {
		t.Errorf("healthy aggregate = %v GB/s", r.HealthyGBps)
	}
}

func TestYieldExperiment(t *testing.T) {
	r := Yield()
	c := r.Comparison
	if c.CostRatio <= 1.5 {
		t.Errorf("chiplets should win on cost: ratio %v", c.CostRatio)
	}
	if c.MonolithicYield >= c.ChipletWorstYield {
		t.Error("monolithic yield should be the worst in the comparison")
	}
	if !strings.Contains(r.Render(), "ratio") {
		t.Error("render incomplete")
	}
}

func TestAppsExperiment(t *testing.T) {
	r := Apps()
	if len(r.Rows) < 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	sawOverstatement := false
	for _, row := range r.Rows {
		if row.AppTFLOPs <= 0 {
			t.Errorf("%s: no throughput", row.App)
		}
		// The dominant-kernel shortcut can over- or understate the whole
		// app (secondary phases may be faster or slower), but not wildly.
		if row.GapPct < -40 || row.GapPct > 250 {
			t.Errorf("%s: dominant-kernel gap %v%%", row.App, row.GapPct)
		}
		if row.GapPct > 10 {
			sawOverstatement = true
		}
	}
	if !sawOverstatement {
		t.Error("at least one app should be overstated by its dominant kernel")
	}
}
