// Package exp contains one harness per table and figure of the paper's
// evaluation (§IV-§VI), each regenerating the same rows/series the paper
// reports, plus the extension ablations DESIGN.md lists. Every harness
// returns a typed result with a Render method producing the paper-style
// text; cmd/enasim and the root bench suite drive them.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ena/internal/arch"
	"ena/internal/dse"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// Result is the common interface of all experiment outputs.
type Result interface {
	// Render returns the experiment's data formatted as aligned text,
	// mirroring the paper's rows/series.
	Render() string
}

// Experiment is a registry entry.
type Experiment struct {
	ID    string
	Title string
	Run   func() Result
}

// Experiments lists every reproducible artifact in paper order, followed by
// the extensions.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: application characterization", Run: func() Result { return Table1() }},
		{ID: "fig4", Title: "Fig. 4: MaxFlops vs bandwidth/frequency/CUs", Run: func() Result { return Figure4() }},
		{ID: "fig5", Title: "Fig. 5: CoMD vs bandwidth/frequency/CUs", Run: func() Result { return Figure5() }},
		{ID: "fig6", Title: "Fig. 6: LULESH vs bandwidth/frequency/CUs", Run: func() Result { return Figure6() }},
		{ID: "fig7", Title: "Fig. 7: out-of-chiplet traffic and chiplet overhead", Run: func() Result { return Figure7() }},
		{ID: "fig8", Title: "Fig. 8: in-package DRAM miss-rate impact", Run: func() Result { return Figure8() }},
		{ID: "fig9", Title: "Fig. 9: external-memory configuration power", Run: func() Result { return Figure9() }},
		{ID: "fig10", Title: "Fig. 10: peak in-package 3D-DRAM temperature", Run: func() Result { return Figure10() }},
		{ID: "fig11", Title: "Fig. 11: bottom DRAM-die heat map (SNAP)", Run: func() Result { return Figure11() }},
		{ID: "fig12", Title: "Fig. 12: power savings from optimizations", Run: func() Result { return Figure12() }},
		{ID: "fig13", Title: "Fig. 13: energy-efficiency benefit of optimizations", Run: func() Result { return Figure13() }},
		{ID: "fig14", Title: "Fig. 14: MaxFlops exascale projection", Run: func() Result { return Figure14() }},
		{ID: "table2", Title: "Table II: dynamic resource reconfiguration benefit", Run: func() Result { return Table2() }},
		{ID: "ablation-noc", Title: "Ablation: chiplet-network sensitivity", Run: func() Result { return AblationNoC() }},
		{ID: "ablation-mem", Title: "Ablation: memory-management policies", Run: func() Result { return AblationMemPolicy() }},
		{ID: "ablation-thermal", Title: "Ablation: thermally constrained DSE", Run: func() Result { return ThermalDSE() }},
		{ID: "ablation-dram", Title: "Ablation: bank-level DRAM / refresh threshold", Run: func() Result { return AblationDRAM() }},
		{ID: "ablation-extnet", Title: "Ablation: external-network redundancy (§II-B2)", Run: func() Result { return AblationExtNet() }},
		{ID: "ablation-yield", Title: "Ablation: chiplet vs monolithic yield/cost (§II-A2)", Run: func() Result { return Yield() }},
		{ID: "apps", Title: "Extension: whole-application outcomes (§IV fn. 3)", Run: func() Result { return Apps() }},
		{ID: "migration", Title: "Extension: hot-page migration runtime", Run: func() Result { return Migration() }},
		{ID: "reconfig", Title: "Extension: dynamic reconfiguration runtime (§VI)", Run: func() Result { return Reconfig() }},
		{ID: "ras", Title: "Extension: RAS / MTTF / checkpointing", Run: func() Result { return RAS() }},
		{ID: "resilience", Title: "Extension: performance under progressive component failure", Run: func() Result { return Resilience() }},
		{ID: "scaling", Title: "Extension: strong/weak scaling on the explicit inter-node fabric", Run: func() Result { return Scaling() }},
		{ID: "inference", Title: "Extension: DL inference serving (batch sweep, latency at target QPS)", Run: func() Result { return Inference() }},
		{ID: "fabric-resilience", Title: "Extension: whole-node failures rerouted through the fabric", Run: func() Result { return FabricResilience() }},
		{ID: "dse-efficiency", Title: "Extension: DSE sample efficiency (surrogate vs exhaustive vs random)", Run: func() Result { return DSEEfficiency() }},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// Shared inputs: the memoized design-space explorations used by several
// figures (Fig. 10 needs per-app bests; Fig. 13 and Table II need both the
// baseline and optimized sweeps).
var (
	dseOnce     sync.Once
	dseBase     dse.Outcome
	dseOptimzed dse.Outcome
)

func explorations() (base, opt dse.Outcome) {
	dseOnce.Do(func() {
		ks := workload.Suite()
		dseBase = dse.Explore(dse.DefaultSpace(), ks, arch.NodePowerBudgetW, 0)
		dseOptimzed = dse.Explore(dse.DefaultSpace(), ks, arch.NodePowerBudgetW, powopt.All)
	})
	return dseBase, dseOptimzed
}

// table is a minimal aligned-text table builder shared by the harnesses.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// sortedKeys returns a map's keys in sorted order (stable rendering).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
