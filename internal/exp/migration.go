package exp

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/memsys"
	"ena/internal/workload"
)

// MigrationRow is one kernel's trace-driven migration outcome.
type MigrationRow struct {
	Kernel        string
	ColdStart     float64 // external-access fraction in the first epoch
	SteadyState   float64 // external-access fraction at steady state
	AnalyticModel float64 // internal/memsys MissFrac under software mgmt
	Migrations    int
	PerEpoch      float64 // migrations per monitoring epoch
}

// MigrationResult is the hot-page-migration runtime study: the §II-B3
// software-managed mechanism actually executed over the synthetic traces,
// validating the analytic external-traffic fractions the other experiments
// consume.
type MigrationResult struct {
	Rows []MigrationRow
}

// Render implements Result.
func (r MigrationResult) Render() string {
	t := &table{header: []string{"kernel", "cold start", "steady state", "analytic model", "migrations", "per epoch"}}
	for _, row := range r.Rows {
		t.addRow(row.Kernel, fmtPct(row.ColdStart), fmtPct(row.SteadyState),
			fmtPct(row.AnalyticModel), fmt.Sprintf("%d", row.Migrations),
			fmt.Sprintf("%.1f", row.PerEpoch))
	}
	return "Extension: epoch-based hot-page migration (software-managed mode, §II-B3)\n" + t.String()
}

// Migration runs the trace-driven migrator for the large-footprint kernels.
func Migration() MigrationResult {
	cfg := arch.BestMeanEHP()
	var out MigrationResult
	for _, k := range workload.Suite() {
		r := memsys.SimulateMigration(cfg, k, 40000, memsys.DefaultMigrationConfig())
		out.Rows = append(out.Rows, MigrationRow{
			Kernel:        k.Name,
			ColdStart:     r.ColdStartFrac,
			SteadyState:   r.SteadyStateFrac,
			AnalyticModel: memsys.MissFrac(cfg, k, memsys.SoftwareManaged),
			Migrations:    r.Migrations,
			PerEpoch:      float64(r.Migrations) / float64(max(1, r.Epochs)),
		})
	}
	return out
}
