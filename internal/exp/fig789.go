package exp

import (
	"fmt"
	"strings"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/memsys"
	"ena/internal/noc"
	"ena/internal/power"
	"ena/internal/workload"
)

// fig7Kernels are the three kernels the paper plots in Fig. 7.
var fig7Kernels = []string{"XSBench", "SNAP", "CoMD"}

// Fig7Result holds the chiplet-overhead experiment.
type Fig7Result struct {
	Rows []noc.Comparison
}

// Render implements Result.
func (r Fig7Result) Render() string {
	t := &table{header: []string{"kernel", "out-of-chiplet traffic", "EHP perf vs monolithic", "chiplet lat (ns)", "mono lat (ns)"}}
	for _, c := range r.Rows {
		t.addRow(c.Kernel, fmtPct(c.OutOfChiplet), fmtPct(c.PerfVsMonolith),
			fmt.Sprintf("%.0f", c.ChipletLatNs), fmt.Sprintf("%.0f", c.MonoLatNs))
	}
	return "Fig. 7: chiplet organization vs hypothetical monolithic EHP\n" + t.String()
}

// Figure7 runs the event-driven chiplet/monolithic comparison at the
// best-mean configuration (§V-A).
func Figure7() Fig7Result {
	cfg := arch.BestMeanEHP()
	var out Fig7Result
	for _, name := range fig7Kernels {
		k, err := workload.ByName(name)
		if err != nil {
			panic(err) // fig7Kernels is a fixed, known list
		}
		out.Rows = append(out.Rows, noc.Compare(cfg, k, 42))
	}
	return out
}

// Fig8MissRates is the swept external-service fraction (the paper plots
// 0..100%).
var Fig8MissRates = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Fig8Result holds per-kernel normalized performance vs miss rate.
type Fig8Result struct {
	MissRates []float64
	Kernels   []string
	// Norm[i][j] is kernel i's performance at MissRates[j], normalized to
	// its zero-miss performance.
	Norm [][]float64
}

// Render implements Result.
func (r Fig8Result) Render() string {
	hdr := []string{"kernel"}
	for _, m := range r.MissRates {
		hdr = append(hdr, fmt.Sprintf("%.0f%%", m*100))
	}
	t := &table{header: hdr}
	for i, k := range r.Kernels {
		row := []string{k}
		for _, v := range r.Norm[i] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.addRow(row...)
	}
	return "Fig. 8: perf normalized to perf with no in-package-DRAM misses\n" + t.String()
}

// Figure8 sweeps the fraction of requests serviced by external memory at the
// best-mean configuration (§V-B).
func Figure8() Fig8Result {
	cfg := arch.BestMeanEHP()
	out := Fig8Result{MissRates: Fig8MissRates}
	for _, k := range workload.Suite() {
		out.Kernels = append(out.Kernels, k.Name)
		row := make([]float64, len(Fig8MissRates))
		for j, m := range Fig8MissRates {
			row[j] = memsys.DegradationAtMiss(cfg, k, m)
		}
		out.Norm = append(out.Norm, row)
	}
	return out
}

// Fig9Config labels the two external-memory configurations of Fig. 9.
type Fig9Config string

// The two bars per kernel.
const (
	Fig9DRAMOnly Fig9Config = "3D DRAM only"
	Fig9Hybrid   Fig9Config = "3D DRAM + NVM"
)

// Fig9Row is one kernel's power breakdown under one configuration, grouped
// the way the paper's stacked bars are.
type Fig9Row struct {
	Kernel    string
	Config    Fig9Config
	Breakdown power.Breakdown

	SerDesStaticW float64
	ExtStaticW    float64
	SerDesDynW    float64
	ExtDynW       float64
	CUDynW        float64
	OtherW        float64
	TotalW        float64
}

// Fig9Result holds both configurations for all kernels.
type Fig9Result struct {
	Rows []Fig9Row
}

// Render implements Result.
func (r Fig9Result) Render() string {
	t := &table{header: []string{"kernel", "config", "SerDes(S)", "ExtMem(S)", "SerDes(D)", "ExtMem(D)", "CUs(D)", "Other", "Total"}}
	f := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	for _, row := range r.Rows {
		t.addRow(row.Kernel, string(row.Config), f(row.SerDesStaticW), f(row.ExtStaticW),
			f(row.SerDesDynW), f(row.ExtDynW), f(row.CUDynW), f(row.OtherW), f(row.TotalW))
	}
	var b strings.Builder
	b.WriteString("Fig. 9: ENA power (W) by external-memory configuration\n")
	b.WriteString(t.String())
	return b.String()
}

// Figure9 compares the DRAM-only external network against the hybrid
// DRAM+NVM network at equal capacity (§V-C), accounting each kernel's
// realistic external traffic under software management.
func Figure9() Fig9Result {
	base := arch.BestMeanEHP()
	hybrid := arch.WithHybridExternal(base)
	var out Fig9Result
	for _, k := range workload.Suite() {
		for _, cc := range []struct {
			cfg  *arch.NodeConfig
			name Fig9Config
		}{{base, Fig9DRAMOnly}, {hybrid, Fig9Hybrid}} {
			r := core.Simulate(cc.cfg, k, core.Options{
				UseAppExtTraffic: true,
				Policy:           memsys.SoftwareManaged,
			})
			b := r.Power
			out.Rows = append(out.Rows, Fig9Row{
				Kernel:        k.Name,
				Config:        cc.name,
				Breakdown:     b,
				SerDesStaticW: b.SerDesStatic,
				ExtStaticW:    b.ExtStatic,
				SerDesDynW:    b.SerDesDynamic,
				ExtDynW:       b.ExtDynamic,
				CUDynW:        b.CUDynamic,
				OtherW:        b.OtherW(),
				TotalW:        b.Total(),
			})
		}
	}
	return out
}
