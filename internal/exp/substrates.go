package exp

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/dram"
	"ena/internal/extnet"
	"ena/internal/workload"
)

// DRAMRow is one kernel's bank-level channel behaviour.
type DRAMRow struct {
	Kernel      string
	RowHitRate  float64
	EffCool     float64 // delivered/peak below the refresh threshold
	EffHot      float64 // delivered/peak above 85 C (double refresh)
	RefreshCost float64 // fractional bandwidth lost to hot refresh
}

// DRAMResult is the bank-level DRAM substrate study: access-pattern
// efficiency per kernel and the quantified cost of crossing the §V-D 85 C
// refresh threshold.
type DRAMResult struct {
	Rows []DRAMRow
}

// Render implements Result.
func (r DRAMResult) Render() string {
	t := &table{header: []string{"kernel", "row-hit rate", "eff (cool)", "eff (>85C)", "refresh cost"}}
	for _, row := range r.Rows {
		t.addRow(row.Kernel, fmtPct(row.RowHitRate), fmtPct(row.EffCool),
			fmtPct(row.EffHot), fmtPct(row.RefreshCost))
	}
	return "Ablation: bank-level DRAM behaviour and the 85 C refresh threshold (§V-D)\n" + t.String()
}

// AblationDRAM replays each kernel's pattern through the bank-level channel
// model at normal and above-threshold temperatures.
func AblationDRAM() DRAMResult {
	const accesses = 30000
	var out DRAMResult
	for _, k := range workload.Suite() {
		ch, err := dram.NewChannel(16, dram.DefaultTiming(), 70)
		if err != nil {
			panic(fmt.Sprintf("exp: dram: %v", err))
		}
		rep := dram.Replay(ch, k.Trace(7, accesses), ch.PeakGBps())
		cool, err := dram.EfficiencyAtTemp(k, 70, accesses)
		if err != nil {
			panic(fmt.Sprintf("exp: dram: %v", err))
		}
		hot, err := dram.EfficiencyAtTemp(k, 90, accesses)
		if err != nil {
			panic(fmt.Sprintf("exp: dram: %v", err))
		}
		row := DRAMRow{
			Kernel:     k.Name,
			RowHitRate: rep.Stats.RowHitRate(),
			EffCool:    cool,
			EffHot:     hot,
		}
		if cool > 0 {
			row.RefreshCost = (cool - hot) / cool
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// ExtNetRow summarizes one network variant's single-failure survey.
type ExtNetRow struct {
	Variant         string
	Links           int
	WorstCapacityGB float64
	MeanCapacityGB  float64
	WorstGBps       float64
	AlwaysReachable bool
}

// ExtNetResult is the §II-B2 redundancy study: what the optional
// cross-connect links buy under link failures.
type ExtNetResult struct {
	TotalCapacityGB float64
	HealthyGBps     float64
	Rows            []ExtNetRow
}

// Render implements Result.
func (r ExtNetResult) Render() string {
	t := &table{header: []string{"network", "links", "worst capacity GB", "mean capacity GB", "worst GB/s", "always reachable"}}
	for _, row := range r.Rows {
		t.addRow(row.Variant, fmt.Sprintf("%d", row.Links),
			fmt.Sprintf("%.0f", row.WorstCapacityGB),
			fmt.Sprintf("%.0f", row.MeanCapacityGB),
			fmt.Sprintf("%.0f", row.WorstGBps),
			fmt.Sprintf("%v", row.AlwaysReachable))
	}
	return fmt.Sprintf("Ablation: external-memory network redundancy (§II-B2); %0.f GB total, %.0f GB/s healthy\n",
		r.TotalCapacityGB, r.HealthyGBps) + t.String()
}

// AblationExtNet surveys every single-link failure on the default network,
// with and without the optional cross-connect links.
func AblationExtNet() ExtNetResult {
	cfg := arch.BestMeanEHP()
	var out ExtNetResult
	for _, cross := range []bool{false, true} {
		n, err := extnet.Build(cfg, cross)
		if err != nil {
			panic(fmt.Sprintf("exp: extnet: %v", err))
		}
		if !cross {
			out.TotalCapacityGB = n.TotalCapacityGB()
			out.HealthyGBps = n.DeliverableGBps()
		}
		rep := n.SurveySingleFailures()
		name := "chains only"
		if cross {
			name = "chains + cross-links"
		}
		out.Rows = append(out.Rows, ExtNetRow{
			Variant:         name,
			Links:           n.Links(),
			WorstCapacityGB: rep.WorstCapacityGB,
			MeanCapacityGB:  rep.MeanCapacityGB,
			WorstGBps:       rep.WorstBandwidthGB,
			AlwaysReachable: rep.AlwaysReachable,
		})
	}
	return out
}
