package exp

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/serving"
	"ena/internal/workload"
)

// This file is the inference-serving experiment: the transformer-block
// presets swept over dynamic batch sizes through the roofline/core path
// (how throughput and per-block service time respond to batching in each
// phase), then each operating point replayed through the event-driven
// batched-FIFO server at a fixed fraction of its capacity to surface the
// latency distribution. A validation section overloads the server with
// single-kernel GEMM and attention presets and checks the event-driven
// throughput lands on the analytic roofline capacity — the acceptance gate
// tying the queueing model back to the closed-form one.

// inferenceBatches is the dynamic-batching sweep (the knob a serving tier
// actually turns).
var inferenceBatches = []int{1, 2, 4, 8, 16, 32}

const (
	inferenceSeq  = 2048 // prompt tokens per sequence (prefill rows)
	inferenceCtx  = 2048 // KV-cache depth (decode rows)
	inferenceLoad = 0.7  // offered QPS as a fraction of batched capacity

	inferenceRequests = 20000
	inferenceSeedBase = 1000

	// Validation presets run at this batch cap and this overload factor;
	// under sustained overload the server executes full batches, so the
	// achieved rate must reproduce the analytic batched capacity.
	validationBatch    = 8
	validationOverload = 3.0
)

// InferenceRow is one (phase, batch) operating point.
type InferenceRow struct {
	Phase string // "prefill" or "decode"
	Batch int

	// BlockTFLOPs is the roofline application throughput of the transformer
	// block at this batch; ServiceUs is one block's execution time, the
	// serving simulator's per-batch service quantum.
	BlockTFLOPs float64
	ServiceUs   float64
	// CapacityRPS is the analytic saturated-server request rate
	// (batch / service time); OfferedQPS is the simulated load.
	CapacityRPS float64
	OfferedQPS  float64

	Serving serving.Result
}

// InferenceValidation compares the event-driven server's saturated
// throughput against the analytic roofline capacity for one kernel preset.
type InferenceValidation struct {
	Kernel      string
	Batch       int
	AnalyticRPS float64
	EventRPS    float64
	RelErr      float64
}

// InferenceResult is the inference experiment output.
type InferenceResult struct {
	Batches    []int
	Requests   int
	Load       float64
	Rows       []InferenceRow
	Validation []InferenceValidation
}

// blockServiceNs builds the per-batch service-time table for a transformer
// phase on the best-mean EHP: entry b-1 is the block's roofline execution
// time (ns) when b requests are coalesced. This is where batching economics
// enter — the GEMM phases amortize weight traffic with batch while decode
// attention's KV streaming does not, so decode service grows nearly
// linearly and prefill sublinearly.
func blockServiceNs(block func(batch int) workload.TransformerBlock, maxBatch int) ([]float64, []float64, error) {
	cfg := arch.BestMeanEHP()
	svc := make([]float64, maxBatch)
	tflops := make([]float64, maxBatch)
	for b := 1; b <= maxBatch; b++ {
		app, err := block(b).App()
		if err != nil {
			return nil, nil, err
		}
		r, err := core.SimulateApp(cfg, app, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		tflops[b-1] = r.TFLOPs
		svc[b-1] = block(b).FLOPs() / (r.TFLOPs * 1e3) // ns
	}
	return svc, tflops, nil
}

// specServiceNs is the single-kernel analogue for the validation presets.
func specServiceNs(spec workload.DLSpec, maxBatch int) ([]float64, error) {
	cfg := arch.BestMeanEHP()
	svc := make([]float64, maxBatch)
	for b := 1; b <= maxBatch; b++ {
		sb, err := spec.WithBatch(b)
		if err != nil {
			return nil, err
		}
		k, err := sb.Kernel()
		if err != nil {
			return nil, err
		}
		r := core.Simulate(cfg, k, core.Options{})
		svc[b-1] = sb.FLOPs() / (r.Perf.TFLOPs * 1e3)
	}
	return svc, nil
}

// Inference runs the experiment with the default worker count.
func Inference() InferenceResult { return InferenceWorkers(8) }

// InferenceWorkers runs the batch sweep with the given parallelism; results
// are bit-identical for any worker count (fixed result slots, per-row seeds,
// and a serving simulator that is deterministic by construction).
func InferenceWorkers(workers int) InferenceResult {
	out := InferenceResult{
		Batches:  inferenceBatches,
		Requests: inferenceRequests,
		Load:     inferenceLoad,
	}
	maxBatch := inferenceBatches[len(inferenceBatches)-1]

	phases := []struct {
		name  string
		block func(batch int) workload.TransformerBlock
	}{
		{"prefill", func(b int) workload.TransformerBlock { return workload.TransformerPrefill(b, inferenceSeq) }},
		{"decode", func(b int) workload.TransformerBlock { return workload.TransformerDecode(b, inferenceCtx) }},
	}

	// Service tables first (serial: they share the memoized core path), then
	// the serving replays fan out.
	type job struct {
		phase  string
		batch  int
		svc    []float64 // per-batch service ns, indices 0..batch-1
		tflops float64
	}
	var jobs []job
	for _, ph := range phases {
		svc, tflops, err := blockServiceNs(ph.block, maxBatch)
		if err != nil {
			// Preset shapes are positive constants; an error here is a
			// programming bug, not an input condition.
			panic(err)
		}
		for _, b := range inferenceBatches {
			jobs = append(jobs, job{phase: ph.name, batch: b, svc: svc[:b], tflops: tflops[b-1]})
		}
	}

	out.Rows = make([]InferenceRow, len(jobs))
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				capacity := float64(j.batch) / j.svc[j.batch-1] * 1e9
				offered := inferenceLoad * capacity
				res, err := serving.Simulate(serving.Options{
					QPS:      offered,
					MaxBatch: j.batch,
					Requests: inferenceRequests,
					Seed:     inferenceSeedBase + int64(i),
					ServiceNs: func(b int) float64 {
						return j.svc[b-1]
					},
				})
				if err != nil {
					panic(err) // options are derived from validated presets
				}
				out.Rows[i] = InferenceRow{
					Phase:       j.phase,
					Batch:       j.batch,
					BlockTFLOPs: j.tflops,
					ServiceUs:   j.svc[j.batch-1] / 1e3,
					CapacityRPS: capacity,
					OfferedQPS:  offered,
					Serving:     res,
				}
			}
		}()
	}
	wg.Wait()

	out.Validation = inferenceValidation()
	return out
}

// inferenceValidation overloads the event-driven server with the
// single-kernel presets and reports event vs analytic throughput.
func inferenceValidation() []InferenceValidation {
	specs := []workload.DLSpec{
		workload.NewGEMM(4096, 4096, 4096, workload.FP16),
		workload.AttentionPrefill(1, 32, 2048, 128, workload.FP16),
		workload.AttentionDecode(1, 32, 2048, 128, workload.FP16),
	}
	out := make([]InferenceValidation, len(specs))
	for i, spec := range specs {
		svc, err := specServiceNs(spec, validationBatch)
		if err != nil {
			panic(err) // preset shapes are positive constants
		}
		analytic := float64(validationBatch) / svc[validationBatch-1] * 1e9
		res, err := serving.Simulate(serving.Options{
			QPS:       validationOverload * analytic,
			MaxBatch:  validationBatch,
			Requests:  inferenceRequests,
			Seed:      inferenceSeedBase + 500 + int64(i),
			ServiceNs: func(b int) float64 { return svc[b-1] },
		})
		if err != nil {
			panic(err)
		}
		out[i] = InferenceValidation{
			Kernel:      spec.String(),
			Batch:       validationBatch,
			AnalyticRPS: analytic,
			EventRPS:    res.AchievedRPS,
			RelErr:      res.AchievedRPS/analytic - 1,
		}
	}
	return out
}

// Render formats the batch sweep (one table per phase) and the validation
// section.
func (r InferenceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Inference serving on the best-mean EHP (transformer block: prefill seq %d, decode ctx %d; %d requests/point at %.0f%% of batched capacity)\n",
		inferenceSeq, inferenceCtx, r.Requests, r.Load*100)
	var cur string
	var t *table
	flush := func() {
		if t != nil {
			b.WriteString(t.String())
		}
	}
	for _, row := range r.Rows {
		if row.Phase != cur {
			flush()
			cur = row.Phase
			fmt.Fprintf(&b, "\n%s phase:\n", row.Phase)
			t = &table{header: []string{"batch", "block TFLOP/s", "service us", "capacity r/s", "offered q/s", "achieved r/s", "mean batch", "util", "p50 us", "p95 us", "p99 us"}}
		}
		t.addRow(
			fmt.Sprintf("%d", row.Batch),
			fmt.Sprintf("%.2f", row.BlockTFLOPs),
			fmt.Sprintf("%.1f", row.ServiceUs),
			fmt.Sprintf("%.0f", row.CapacityRPS),
			fmt.Sprintf("%.0f", row.OfferedQPS),
			fmt.Sprintf("%.0f", row.Serving.AchievedRPS),
			fmt.Sprintf("%.2f", row.Serving.MeanBatch),
			fmtPct(row.Serving.Utilization),
			fmt.Sprintf("%.1f", row.Serving.P50Ns/1e3),
			fmt.Sprintf("%.1f", row.Serving.P95Ns/1e3),
			fmt.Sprintf("%.1f", row.Serving.P99Ns/1e3),
		)
	}
	flush()
	b.WriteString("\nevent-driven vs analytic roofline capacity (saturated server):\n")
	vt := &table{header: []string{"kernel", "batch", "analytic r/s", "event r/s", "rel err"}}
	for _, v := range r.Validation {
		vt.addRow(v.Kernel, fmt.Sprintf("%d", v.Batch),
			fmt.Sprintf("%.0f", v.AnalyticRPS), fmt.Sprintf("%.0f", v.EventRPS), fmtPct(v.RelErr))
	}
	b.WriteString(vt.String())
	return b.String()
}
