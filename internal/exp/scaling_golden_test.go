package exp

// Golden regression snapshot of the fabric scaling experiment: the full
// (topology, mode, kernel, nodes) efficiency table and the whole-node
// resilience surface, pinned to float tolerance. The values chain the
// detailed node simulation (sustained TFLOP/s), the workload-derived
// message sizes and the analytic collective cost model, so any drift in
// those layers shows up here first. If a deliberate model change moves a
// number, regenerate the snapshot in the same commit and say why.

import (
	"math"
	"testing"
)

type goldenScalingKey struct {
	topology string
	mode     string
	kernel   string
	nodes    int
}

var goldenScalingEff = map[goldenScalingKey]float64{
	{"torus", "strong", "MaxFlops", 1}:      1,
	{"torus", "strong", "MaxFlops", 50}:     0.022007304893518,
	{"torus", "strong", "MaxFlops", 1000}:   0.000374901476471408,
	{"torus", "strong", "MaxFlops", 20000}:  6.40890586751575e-06,
	{"torus", "strong", "MaxFlops", 100000}: 7.3913348055198e-07,
	{"torus", "strong", "CoMD", 1}:          1,
	{"torus", "strong", "CoMD", 50}:         0.609823438147659,
	{"torus", "strong", "CoMD", 1000}:       0.32811660501347,
	{"torus", "strong", "CoMD", 20000}:      0.0422640192520759,
	{"torus", "strong", "CoMD", 100000}:     0.00614854683713765,
	{"torus", "strong", "HPGMG", 1}:         1,
	{"torus", "strong", "HPGMG", 50}:        0.723841496614778,
	{"torus", "strong", "HPGMG", 1000}:      0.476925475476743,
	{"torus", "strong", "HPGMG", 20000}:     0.136220196304504,
	{"torus", "strong", "HPGMG", 100000}:    0.0277661425371661,
	{"torus", "weak", "MaxFlops", 1}:        1,
	{"torus", "weak", "MaxFlops", 50}:       0.52943971950814,
	{"torus", "weak", "MaxFlops", 1000}:     0.272749529395449,
	{"torus", "weak", "MaxFlops", 20000}:    0.11361578773062,
	{"torus", "weak", "MaxFlops", 100000}:   0.0688262223957051,
	{"torus", "weak", "CoMD", 1}:            1,
	{"torus", "weak", "CoMD", 50}:           0.85322390122264,
	{"torus", "weak", "CoMD", 1000}:         0.853080038275863,
	{"torus", "weak", "CoMD", 20000}:        0.852664706590255,
	{"torus", "weak", "CoMD", 100000}:       0.852201928864311,
	{"torus", "weak", "HPGMG", 1}:           1,
	{"torus", "weak", "HPGMG", 50}:          0.906424628174562,
	{"torus", "weak", "HPGMG", 1000}:        0.906392687904499,
	{"torus", "weak", "HPGMG", 20000}:       0.906300428656426,
	{"torus", "weak", "HPGMG", 100000}:      0.906197546265313,
	{"fat-tree", "strong", "MaxFlops", 1}:      1,
	{"fat-tree", "strong", "MaxFlops", 50}:     0.0165967913319124,
	{"fat-tree", "strong", "MaxFlops", 1000}:   0.000268910845609412,
	{"fat-tree", "strong", "MaxFlops", 20000}:  8.81302791648896e-06,
	{"fat-tree", "strong", "MaxFlops", 100000}: 1.54903195299807e-06,
	{"fat-tree", "strong", "CoMD", 1}:          1,
	{"fat-tree", "strong", "CoMD", 50}:         0.439300983600666,
	{"fat-tree", "strong", "CoMD", 1000}:       0.176386913871899,
	{"fat-tree", "strong", "CoMD", 20000}:      0.03541450461105,
	{"fat-tree", "strong", "CoMD", 100000}:     0.00953076619339314,
	{"fat-tree", "strong", "HPGMG", 1}:         1,
	{"fat-tree", "strong", "HPGMG", 50}:        0.567411976618417,
	{"fat-tree", "strong", "HPGMG", 1000}:      0.278297857381827,
	{"fat-tree", "strong", "HPGMG", 20000}:     0.089145999116246,
	{"fat-tree", "strong", "HPGMG", 100000}:    0.033251176333094,
	{"fat-tree", "weak", "MaxFlops", 1}:        1,
	{"fat-tree", "weak", "MaxFlops", 50}:       0.457654969271797,
	{"fat-tree", "weak", "MaxFlops", 1000}:     0.211967489202915,
	{"fat-tree", "weak", "MaxFlops", 20000}:    0.14984934903076,
	{"fat-tree", "weak", "MaxFlops", 100000}:   0.134126742134612,
	{"fat-tree", "weak", "CoMD", 1}:            1,
	{"fat-tree", "weak", "CoMD", 50}:           0.744056078486298,
	{"fat-tree", "weak", "CoMD", 1000}:         0.706534541836188,
	{"fat-tree", "weak", "CoMD", 20000}:        0.692402351709636,
	{"fat-tree", "weak", "CoMD", 100000}:       0.684227665315374,
	{"fat-tree", "weak", "HPGMG", 1}:           1,
	{"fat-tree", "weak", "HPGMG", 50}:          0.828872328060124,
	{"fat-tree", "weak", "HPGMG", 1000}:        0.800523625465694,
	{"fat-tree", "weak", "HPGMG", 20000}:       0.789620579407439,
	{"fat-tree", "weak", "HPGMG", 100000}:      0.783229556872276,
	{"dragonfly", "strong", "MaxFlops", 1}:      1,
	{"dragonfly", "strong", "MaxFlops", 50}:     0.0111260799637752,
	{"dragonfly", "strong", "MaxFlops", 1000}:   0.000337423978899055,
	{"dragonfly", "strong", "MaxFlops", 20000}:  1.125113581955e-05,
	{"dragonfly", "strong", "MaxFlops", 100000}: 2.02522313208864e-06,
	{"dragonfly", "strong", "CoMD", 1}:          1,
	{"dragonfly", "strong", "CoMD", 50}:         0.227707825478164,
	{"dragonfly", "strong", "CoMD", 1000}:       0.0392288469396756,
	{"dragonfly", "strong", "CoMD", 20000}:      0.00525971094042903,
	{"dragonfly", "strong", "CoMD", 100000}:     0.00113852391375715,
	{"dragonfly", "strong", "HPGMG", 1}:         1,
	{"dragonfly", "strong", "HPGMG", 50}:        0.329959396779075,
	{"dragonfly", "strong", "HPGMG", 1000}:      0.0643781138060451,
	{"dragonfly", "strong", "HPGMG", 20000}:     0.00910882691947751,
	{"dragonfly", "strong", "HPGMG", 100000}:    0.00199151066972217,
	{"dragonfly", "weak", "MaxFlops", 1}:        1,
	{"dragonfly", "weak", "MaxFlops", 50}:       0.360025853092576,
	{"dragonfly", "weak", "MaxFlops", 1000}:     0.252357618627916,
	{"dragonfly", "weak", "MaxFlops", 20000}:    0.183690294150942,
	{"dragonfly", "weak", "MaxFlops", 100000}:   0.168414882669544,
	{"dragonfly", "weak", "CoMD", 1}:            1,
	{"dragonfly", "weak", "CoMD", 50}:           0.521634047940429,
	{"dragonfly", "weak", "CoMD", 1000}:         0.293518092985173,
	{"dragonfly", "weak", "CoMD", 20000}:        0.132756807414691,
	{"dragonfly", "weak", "CoMD", 100000}:       0.0539553504541115,
	{"dragonfly", "weak", "HPGMG", 1}:           1,
	{"dragonfly", "weak", "HPGMG", 50}:          0.644949655453591,
	{"dragonfly", "weak", "HPGMG", 1000}:        0.408994195969965,
	{"dragonfly", "weak", "HPGMG", 20000}:       0.20316562441706,
	{"dragonfly", "weak", "HPGMG", 100000}:      0.0867488154039722,
}

// goldenFabricRelPerf is the fabric-resilience surface on the 8x8x8 torus
// (CoMD weak scaling, seed 1) plus its steady-state expectation.
var (
	goldenFabricRelPerf = []float64{
		1,
		0.628966396332602,
		0.627728130660425,
		0.62649725407573,
		0.625251687035145,
		0.624020876627596,
		0.622786389690357,
		0.621537240879379,
		0.62030643732185,
	}
	goldenFabricExpected = 0.933455848096586
	goldenFabricBinary   = 0.820712861702505
)

func TestGoldenScalingEfficiency(t *testing.T) {
	r := Scaling()
	if len(r.Rows) != len(goldenScalingEff) {
		t.Fatalf("scaling experiment produced %d rows, golden has %d", len(r.Rows), len(goldenScalingEff))
	}
	for _, row := range r.Rows {
		key := goldenScalingKey{row.Topology, row.Mode, row.Kernel, row.Nodes}
		want, ok := goldenScalingEff[key]
		if !ok {
			t.Errorf("unexpected row %+v", key)
			continue
		}
		if d := math.Abs(row.Efficiency - want); d > 1e-12 {
			t.Errorf("%+v: efficiency drifted: got %.15g, golden %.15g (|d|=%g)", key, row.Efficiency, want, d)
		}
		// The delivered throughput must stay consistent with the
		// efficiency and the §V-F arithmetic it discounts.
		if d := math.Abs(row.DeliveredEF - row.IdealEF*row.Efficiency); d > 1e-9 {
			t.Errorf("%+v: delivered %.15g inconsistent with ideal*eff %.15g", key, row.DeliveredEF, row.IdealEF*row.Efficiency)
		}
	}
}

func TestGoldenFabricResilience(t *testing.T) {
	r := FabricResilience()
	if len(r.RelPerf) != len(goldenFabricRelPerf) {
		t.Fatalf("surface has %d points, golden %d", len(r.RelPerf), len(goldenFabricRelPerf))
	}
	for k := range r.RelPerf {
		if d := math.Abs(r.RelPerf[k] - goldenFabricRelPerf[k]); d > 1e-12 {
			t.Errorf("rel[%d] drifted: got %.15g, golden %.15g", k, r.RelPerf[k], goldenFabricRelPerf[k])
		}
	}
	if d := math.Abs(r.Degraded.ExpectedRelPerf - goldenFabricExpected); d > 1e-12 {
		t.Errorf("expected rel perf drifted: got %.15g, golden %.15g", r.Degraded.ExpectedRelPerf, goldenFabricExpected)
	}
	if d := math.Abs(r.Degraded.BinaryRelPerf - goldenFabricBinary); d > 1e-12 {
		t.Errorf("binary rel perf drifted: got %.15g, golden %.15g", r.Degraded.BinaryRelPerf, goldenFabricBinary)
	}
}
