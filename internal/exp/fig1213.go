package exp

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// Fig12Row is one kernel's savings per technique.
type Fig12Row struct {
	Kernel string
	// Savings maps each individual technique (and the combined stack) to
	// the fractional node-power reduction at the best-mean config.
	PerTechnique map[powopt.Technique]float64
	All          float64
}

// Fig12Result is the Fig. 12 dataset.
type Fig12Result struct {
	Rows []Fig12Row
}

// Render implements Result.
func (r Fig12Result) Render() string {
	hdr := []string{"kernel"}
	for _, tq := range powopt.Each {
		hdr = append(hdr, tq.String())
	}
	hdr = append(hdr, "all")
	t := &table{header: hdr}
	for _, row := range r.Rows {
		cells := []string{row.Kernel}
		for _, tq := range powopt.Each {
			cells = append(cells, fmtPct(row.PerTechnique[tq]))
		}
		cells = append(cells, fmtPct(row.All))
		t.addRow(cells...)
	}
	return "Fig. 12: power savings relative to no optimizations (best-mean config)\n" + t.String()
}

// Figure12 evaluates each §V-E technique individually and combined at the
// best-mean configuration (the baseline already includes DVFS).
func Figure12() Fig12Result {
	cfg := arch.BestMeanEHP()
	var out Fig12Result
	for _, k := range workload.Suite() {
		r := core.Simulate(cfg, k, core.Options{})
		row := Fig12Row{Kernel: k.Name, PerTechnique: map[powopt.Technique]float64{}}
		for _, tq := range powopt.Each {
			row.PerTechnique[tq] = powopt.SavingsFrac(r.Power, k, cfg.GPUFreqMHz(), tq)
		}
		row.All = powopt.SavingsFrac(r.Power, k, cfg.GPUFreqMHz(), powopt.All)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Fig13Row is one kernel's energy-efficiency comparison.
type Fig13Row struct {
	Kernel         string
	BaselineGFperW float64 // best-mean config, no optimizations
	OptGFperW      float64 // optimized best-mean config with the full stack
	ImprovementPct float64
}

// Fig13Result is the Fig. 13 dataset.
type Fig13Result struct {
	BaselineConfig dse.Point
	OptConfig      dse.Point
	Rows           []Fig13Row
}

// Render implements Result.
func (r Fig13Result) Render() string {
	t := &table{header: []string{"kernel", "GF/W baseline", "GF/W optimized", "improvement"}}
	for _, row := range r.Rows {
		t.addRow(row.Kernel, fmt.Sprintf("%.1f", row.BaselineGFperW),
			fmt.Sprintf("%.1f", row.OptGFperW), fmt.Sprintf("%.1f%%", row.ImprovementPct))
	}
	return fmt.Sprintf("Fig. 13: performance-per-Watt, optimized best-mean (%s + all techniques) vs baseline best-mean (%s)\n",
		r.OptConfig, r.BaselineConfig) + t.String()
}

// Figure13 compares the best-mean configuration found with the optimization
// stack enabled against the unoptimized best-mean: the power savings buy a
// higher-performing operating point under the same 160 W budget (§V-E
// Finding 2).
func Figure13() Fig13Result {
	baseOut, optOut := explorations()
	basePt := baseOut.BestMean.Point
	optPt := optOut.BestMean.Point
	baseCfg := basePt.Config()
	optCfg := optPt.Config()
	out := Fig13Result{BaselineConfig: basePt, OptConfig: optPt}
	for _, k := range workload.Suite() {
		r0 := core.Simulate(baseCfg, k, core.Options{})
		r1 := core.Simulate(optCfg, k, core.Options{Optimizations: powopt.All})
		row := Fig13Row{Kernel: k.Name, BaselineGFperW: r0.GFperW, OptGFperW: r1.GFperW}
		if r0.GFperW > 0 {
			row.ImprovementPct = (r1.GFperW/r0.GFperW - 1) * 100
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
