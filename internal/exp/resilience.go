package exp

import (
	"context"
	"fmt"
	"strings"

	"ena/internal/arch"
	"ena/internal/faults"
	"ena/internal/ras"
	"ena/internal/workload"
)

// ResilienceRow is one step of one workload's progressive-failure surface.
type ResilienceRow struct {
	Faults   int
	Mask     string
	CUs      int
	BWTBps   float64
	TFLOPs   float64
	NodeW    float64
	RelPerf  float64
	RelPower float64
	Feasible bool
}

// ResilienceSurfaceView is one (workload, component) surface plus its
// steady-state degraded-throughput analysis.
type ResilienceSurfaceView struct {
	Kernel    string
	Component string
	Rows      []ResilienceRow
	// Steady-state expectation at the component's FIT rate and a 72 h
	// repair time: what fraction of healthy throughput the fleet delivers,
	// vs what the binary up/down model would claim.
	Degraded ras.DegradedResult
	Units    int
	UnitFIT  float64
}

// ResilienceResult is the "performance under progressive component failure"
// experiment: seeded fault injection re-simulated across the workload suite,
// for GPU-chiplet and HBM-stack failures, folded into the RAS expected-
// throughput model.
type ResilienceResult struct {
	Seed     int64
	Surfaces []ResilienceSurfaceView
}

// mttrHours is the assumed component repair/reprovision time for the
// steady-state analysis (a node keeps running degraded until the next
// scheduled maintenance window).
const mttrHours = 72

// Resilience sweeps progressive GPU-chiplet and HBM-stack failures on the
// best-mean EHP for three representative workloads, using the analytic model
// (the detailed NoC surface is cmd/enafault territory — too slow for a
// server-cached experiment). Deterministic per seed.
func Resilience() ResilienceResult {
	base := arch.BestMeanEHP()
	const seed = 1
	out := ResilienceResult{Seed: seed}
	for _, k := range []workload.Kernel{workload.MaxFlops(), workload.CoMD(), workload.LULESH()} {
		for _, comp := range []faults.Component{faults.GPUChiplet, faults.HBMStack} {
			s, err := faults.ResilienceSurface(context.Background(), base, k, comp,
				faults.SurfaceOptions{MaxFaults: 4, Seed: seed})
			if err != nil {
				continue
			}
			view := ResilienceSurfaceView{Kernel: k.Name, Component: comp.String()}
			for _, p := range s.Points {
				view.Rows = append(view.Rows, ResilienceRow{
					Faults:   p.Faults,
					Mask:     p.Mask,
					CUs:      p.CUs,
					BWTBps:   p.BWTBps,
					TFLOPs:   p.TFLOPs,
					NodeW:    p.NodeW,
					RelPerf:  p.RelPerf,
					RelPower: p.RelPower,
					Feasible: p.Feasible,
				})
			}
			switch comp {
			case faults.GPUChiplet:
				view.Units = len(base.GPU)
				view.UnitFIT = float64(base.GPU[0].CUs) * ras.FITPerCU
			case faults.HBMStack:
				view.Units = len(base.HBM)
				view.UnitFIT = base.HBM[0].CapacityGB * ras.FITPerGBInPackage
			}
			if d, err := ras.DegradedThroughput(view.Units, view.UnitFIT, mttrHours, s.RelPerfs()); err == nil {
				view.Degraded = d
			}
			out.Surfaces = append(out.Surfaces, view)
		}
	}
	return out
}

// Render formats the resilience surfaces as paper-style tables.
func (r ResilienceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Performance under progressive component failure (seed %d, %d h MTTR)\n", r.Seed, mttrHours)
	for _, s := range r.Surfaces {
		fmt.Fprintf(&b, "\n%s, failing %s units (n=%d, %.0f FIT/unit):\n", s.Kernel, s.Component, s.Units, s.UnitFIT)
		t := &table{header: []string{"faults", "mask", "CUs", "BW TB/s", "TFLOP/s", "node W", "rel perf", "rel power", "in budget"}}
		for _, row := range s.Rows {
			mask := row.Mask
			if mask == "" {
				mask = "(healthy)"
			}
			t.addRow(
				fmt.Sprintf("%d", row.Faults),
				mask,
				fmt.Sprintf("%d", row.CUs),
				fmt.Sprintf("%.2f", row.BWTBps),
				fmt.Sprintf("%.1f", row.TFLOPs),
				fmt.Sprintf("%.1f", row.NodeW),
				fmtPct(row.RelPerf),
				fmtPct(row.RelPower),
				fmt.Sprintf("%v", row.Feasible),
			)
		}
		b.WriteString(t.String())
		d := s.Degraded
		fmt.Fprintf(&b, "steady state: E[rel perf] %s vs binary up/down %s (graceful-degradation gain %+.4f pp)\n",
			fmtPct(d.ExpectedRelPerf), fmtPct(d.BinaryRelPerf), d.DegradedGain*100)
	}
	return b.String()
}
