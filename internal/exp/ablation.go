package exp

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/memsys"
	"ena/internal/noc"
	"ena/internal/perf"
	"ena/internal/ras"
	"ena/internal/workload"
)

// AblationNoCRow is one sensitivity sample of the chiplet-overhead study.
type AblationNoCRow struct {
	Kernel        string
	TSVScale      float64 // multiplier on the calibrated TSV hop latency
	LocalityDelta float64 // additive shift of the kernel's chiplet locality
	PerfVsMono    float64
	OutOfChiplet  float64
}

// TopologyRow compares interposer wiring options.
type TopologyRow struct {
	Topology      string
	SustainedTBps float64
	MeanLatencyNs float64
}

// AblationNoCResult extends Fig. 7 with locality sweeps and an interposer
// topology comparison, probing how robust the "small chiplet overhead"
// takeaway is.
type AblationNoCResult struct {
	Rows     []AblationNoCRow
	Topology []TopologyRow
}

// Render implements Result.
func (r AblationNoCResult) Render() string {
	t := &table{header: []string{"kernel", "TSV x", "locality delta", "out-of-chiplet", "perf vs monolithic"}}
	for _, row := range r.Rows {
		t.addRow(row.Kernel, fmt.Sprintf("%.1f", row.TSVScale),
			fmt.Sprintf("%+.2f", row.LocalityDelta),
			fmtPct(row.OutOfChiplet), fmtPct(row.PerfVsMono))
	}
	s := "Ablation: chiplet-network sensitivity (Fig. 7 extension)\n" + t.String()
	if len(r.Topology) > 0 {
		t2 := &table{header: []string{"interposer topology", "sustained TB/s (SNAP)", "mean latency (ns)"}}
		for _, row := range r.Topology {
			t2.addRow(row.Topology, fmt.Sprintf("%.2f", row.SustainedTBps),
				fmt.Sprintf("%.0f", row.MeanLatencyNs))
		}
		s += t2.String()
	}
	return s
}

// AblationNoC sweeps kernel locality around its calibrated value (the
// architecturally meaningful knob: cache capacity / placement quality) and
// compares the EHP's point-to-point interposer wiring against a cheaper
// chain topology for the highest-traffic kernel.
func AblationNoC() AblationNoCResult {
	cfg := arch.BestMeanEHP()
	var out AblationNoCResult
	for _, name := range fig7Kernels {
		k, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		for _, delta := range []float64{-0.15, 0, 0.15, 0.30} {
			kk := k
			loc := k.CacheLocality + delta
			if loc < 0 {
				loc = 0
			}
			if loc > 0.95 {
				loc = 0.95
			}
			kk.CacheLocality = loc
			c := noc.Compare(cfg, kk, 42)
			out.Rows = append(out.Rows, AblationNoCRow{
				Kernel:        name,
				TSVScale:      1,
				LocalityDelta: delta,
				PerfVsMono:    c.PerfVsMonolith,
				OutOfChiplet:  c.OutOfChiplet,
			})
		}
	}
	// Topology comparison: the bisection-limited chain vs the EHP's
	// point-to-point paths, under the heaviest traffic (SNAP).
	snap, err := workload.ByName("SNAP")
	if err != nil {
		panic(err)
	}
	for _, topo := range []noc.Topology{noc.PointToPoint, noc.Chain} {
		r := noc.Simulate(cfg, snap, noc.Options{Seed: 42, Topology: topo})
		out.Topology = append(out.Topology, TopologyRow{
			Topology:      topo.String(),
			SustainedTBps: r.SustainedGBps / 1000,
			MeanLatencyNs: r.MeanLatencyNs,
		})
	}
	return out
}

// MemPolicyRow is one (kernel, policy) outcome.
type MemPolicyRow struct {
	Kernel      string
	Policy      memsys.Policy
	MissFrac    float64
	NormPerf    float64 // vs all-in-package
	FitsProblem bool
	UsableCapGB float64
}

// MemPolicyResult is the management-policy ablation (§II-B3's design
// discussion, quantified).
type MemPolicyResult struct {
	Rows []MemPolicyRow
}

// Render implements Result.
func (r MemPolicyResult) Render() string {
	t := &table{header: []string{"kernel", "policy", "ext traffic", "perf vs in-package", "fits problem", "usable GB"}}
	for _, row := range r.Rows {
		t.addRow(row.Kernel, row.Policy.String(), fmtPct(row.MissFrac), fmtPct(row.NormPerf),
			fmt.Sprintf("%v", row.FitsProblem), fmt.Sprintf("%.0f", row.UsableCapGB))
	}
	return "Ablation: memory-management policies\n" + t.String()
}

// AblationMemPolicy evaluates static interleaving, software-managed
// migration, and the hardware-cache mode for the large-footprint kernels.
func AblationMemPolicy() MemPolicyResult {
	cfg := arch.BestMeanEHP()
	var out MemPolicyResult
	for _, k := range workload.Suite() {
		if k.FootprintGB <= cfg.InPackageCapacityGB() {
			continue // in-package-resident kernels see no difference
		}
		base := perf.Estimate(cfg, k, memsys.Env(cfg, k, 0))
		for _, p := range []memsys.Policy{memsys.StaticInterleave, memsys.SoftwareManaged, memsys.HardwareCache} {
			env := memsys.EnvUnderPolicy(cfg, k, p)
			got := perf.Estimate(cfg, k, env)
			norm := 0.0
			if base.TFLOPs > 0 {
				norm = got.TFLOPs / base.TFLOPs
			}
			out.Rows = append(out.Rows, MemPolicyRow{
				Kernel:      k.Name,
				Policy:      p,
				MissFrac:    memsys.MissFrac(cfg, k, p),
				NormPerf:    norm,
				FitsProblem: memsys.FitsProblem(cfg, k, p),
				UsableCapGB: memsys.UsableCapacityGB(cfg, p),
			})
		}
	}
	return out
}

// RASRow is one configuration's reliability summary.
type RASRow struct {
	Label          string
	NodeMTTFHours  float64
	SystemMTTFMins float64
	SilentFIT      float64
	OptCkptMins    float64
	Efficiency     float64
}

// RASResult is the reliability extension experiment.
type RASResult struct {
	Rows []RASRow
	// RMT overhead per kernel at the best-mean configuration.
	RMTOverhead map[string]float64
	// FailureInjection validates the analytic checkpoint-efficiency model
	// against the Monte Carlo failure simulator (default RAS config).
	FailureInjection ras.FailSimResult
}

// Render implements Result.
func (r RASResult) Render() string {
	t := &table{header: []string{"config", "node MTTF (h)", "system MTTF (min)", "silent FIT/node", "opt ckpt (min)", "machine efficiency"}}
	for _, row := range r.Rows {
		t.addRow(row.Label, fmt.Sprintf("%.0f", row.NodeMTTFHours),
			fmt.Sprintf("%.1f", row.SystemMTTFMins), fmt.Sprintf("%.0f", row.SilentFIT),
			fmt.Sprintf("%.1f", row.OptCkptMins), fmtPct(row.Efficiency))
	}
	s := "Extension: RAS analysis (100,000-node machine, 2-minute checkpoints)\n" + t.String()
	s += "RMT overhead at best-mean config:\n"
	for _, k := range sortedKeys(r.RMTOverhead) {
		s += fmt.Sprintf("  %-9s %s\n", k, fmtPct(r.RMTOverhead[k]))
	}
	fi := r.FailureInjection
	s += fmt.Sprintf("failure injection (one week of work): %d failures, %d checkpoints, efficiency %s (analytic %s, gap %.1f pp)\n",
		fi.Failures, fi.Checkpoints, fmtPct(fi.Efficiency), fmtPct(fi.AnalyticEst), fi.EstimationGapP)
	return s
}

// RAS quantifies the §II-A5/§VI reliability discussion: ECC and RMT choices
// against node/system MTTF, and the resulting checkpoint efficiency.
func RAS() RASResult {
	cfg := arch.BestMeanEHP()
	const ckptMins = 2.0
	var out RASResult
	for _, cc := range []struct {
		label string
		rc    ras.Config
	}{
		{"no protection", ras.Config{}},
		{"SECDED in-package", ras.Config{MemoryECC: ras.SECDED}},
		{"default (SECDED + chipkill + RMT)", ras.DefaultConfig()},
	} {
		a := ras.Analyze(cfg, cc.rc, arch.NodeCount)
		row := RASRow{
			Label:          cc.label,
			NodeMTTFHours:  a.NodeMTTFHours,
			SystemMTTFMins: a.SystemMTTFMins,
			SilentFIT:      a.SilentFIT,
		}
		if opt, err := ras.OptimalCheckpointMins(ckptMins, a.SystemMTTFMins); err == nil {
			row.OptCkptMins = opt
			row.Efficiency = ras.CheckpointEfficiency(opt, ckptMins, a.SystemMTTFMins)
		}
		out.Rows = append(out.Rows, row)
	}
	out.RMTOverhead = map[string]float64{}
	for _, k := range workload.Suite() {
		r := core.Simulate(cfg, k, core.Options{})
		out.RMTOverhead[k.Name] = ras.RMTOverheadFrac(r.Perf.UtilOfPeak)
	}

	// Validate the analytic efficiency with failure injection at the
	// protected configuration's system MTTF.
	prot := ras.Analyze(cfg, ras.DefaultConfig(), arch.NodeCount)
	if opt, err := ras.OptimalCheckpointMins(ckptMins, prot.SystemMTTFMins); err == nil {
		out.FailureInjection = ras.SimulateFailures(ras.FailSimConfig{
			SystemMTTFMins: prot.SystemMTTFMins,
			IntervalMins:   opt,
			CheckpointMins: ckptMins,
			JobWorkMins:    7 * 24 * 60, // one week of useful work
			Seed:           1,
		})
	}
	return out
}
