package exp

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/dse"
	"ena/internal/reconfig"
	"ena/internal/workload"
)

// ReconfigRow is one controller's outcome on the mixed-phase workload.
type ReconfigRow struct {
	Controller    string
	TotalS        float64
	EnergyJ       float64
	MeanPowerW    float64
	Reconfigs     int
	SpeedupPct    float64 // over the static baseline
	EnergySavePct float64 // over the static baseline
}

// ReconfigResult is the §VI dynamic-reconfiguration runtime study.
type ReconfigResult struct {
	Phases int
	Rows   []ReconfigRow
}

// Render implements Result.
func (r ReconfigResult) Render() string {
	t := &table{header: []string{"controller", "time (s)", "energy (J)", "mean W", "reconfigs", "speedup", "energy saved"}}
	for _, row := range r.Rows {
		t.addRow(row.Controller,
			fmt.Sprintf("%.3f", row.TotalS),
			fmt.Sprintf("%.0f", row.EnergyJ),
			fmt.Sprintf("%.1f", row.MeanPowerW),
			fmt.Sprintf("%d", row.Reconfigs),
			fmt.Sprintf("%+.1f%%", row.SpeedupPct),
			fmt.Sprintf("%+.1f%%", row.EnergySavePct))
	}
	return fmt.Sprintf("Extension: dynamic resource reconfiguration runtime (§VI), %d phases\n", r.Phases) + t.String()
}

// Reconfig runs the phase-based reconfiguration study: a mixed workload
// cycling through four representative kernels, executed under the static
// best-mean configuration, the Table II oracle, and the online reactive
// controller.
func Reconfig() ReconfigResult {
	base, _ := explorations()
	var mix []workload.Kernel
	for _, n := range []string{"CoMD", "LULESH", "XSBench", "SNAP"} {
		k, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		mix = append(mix, k)
	}
	w := reconfig.Repeat(mix, 25, 5e12)

	static := reconfig.Run(w, reconfig.NewStaticBestMean(), arch.NodePowerBudgetW, 0)
	oracle := reconfig.Run(w, reconfig.NewOracle(base), arch.NodePowerBudgetW, 0)
	reactive := reconfig.Run(w, reconfig.NewReactive(arch.NodePowerBudgetW, dse.DefaultSpace(), 0), arch.NodePowerBudgetW, 0)

	out := ReconfigResult{Phases: len(w)}
	for _, rr := range []reconfig.RunResult{static, oracle, reactive} {
		row := ReconfigRow{
			Controller: rr.Controller,
			TotalS:     rr.TotalS,
			EnergyJ:    rr.EnergyJ,
			MeanPowerW: rr.MeanPowerW(),
			Reconfigs:  rr.Reconfigs,
		}
		row.SpeedupPct = (rr.SpeedupOver(static) - 1) * 100
		if static.EnergyJ > 0 {
			// All runs perform the same total work, so energy compares
			// directly.
			row.EnergySavePct = (1 - rr.EnergyJ/static.EnergyJ) * 100
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
