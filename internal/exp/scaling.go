package exp

import (
	"fmt"
	"strings"
	"sync"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/fabric"
	"ena/internal/ras"
	"ena/internal/workload"
)

// This file holds the machine-scale experiments built on internal/fabric:
// the strong/weak scaling curves from node to rack to full system, and the
// whole-node-failure analogue of the component resilience experiment.

// scalingKernels are the workloads the scaling experiment sweeps: the
// compute-bound ceiling, a balanced dynamics code, and a memory-bound
// multigrid solver — the three communication personalities.
func scalingKernels() []workload.Kernel {
	return []workload.Kernel{workload.MaxFlops(), workload.CoMD(), workload.HPGMG()}
}

// scalingSizes walks node -> chassis -> rack -> row -> full §V-F machine.
var scalingSizes = []int{1, 50, 1000, 20000, 100000}

// nodeRates memoizes the per-kernel sustained node rate (one detailed node
// simulation each) shared by both fabric experiments and the service.
var (
	rateOnce  sync.Once
	rateCache map[string]float64
)

// NodeRateFor returns kernel k's sustained TFLOP/s on the best-mean EHP.
func NodeRateFor(k workload.Kernel) float64 {
	rateOnce.Do(func() {
		rateCache = map[string]float64{}
		for _, kk := range workload.Suite() {
			rateCache[kk.Name] = core.Simulate(arch.BestMeanEHP(), kk, core.Options{}).Perf.TFLOPs
		}
	})
	if r, ok := rateCache[k.Name]; ok {
		return r
	}
	return core.Simulate(arch.BestMeanEHP(), k, core.Options{}).Perf.TFLOPs
}

// ScalingRow is one (topology, mode, kernel, node count) evaluation.
type ScalingRow struct {
	Topology   string
	Mode       string
	Kernel     string
	Nodes      int
	Efficiency float64
	// DeliveredEF is the fabric-aware machine throughput in ExaFLOP/s;
	// IdealEF is the paper's §V-F arithmetic (rate * nodes), which the
	// delivered number reduces to under an ideal fabric.
	DeliveredEF float64
	IdealEF     float64
}

// ScalingResult is the strong/weak scaling experiment output.
type ScalingResult struct {
	LinkBWGBps float64
	LatencyNs  float64
	Rows       []ScalingRow
}

// Scaling evaluates strong- and weak-scaling efficiency for every topology
// kind, scaling kernel and machine size on the finite reference fabric,
// using the analytic collective cost model throughout (the property tests
// pin it against the event-driven replay at small scale).
func Scaling() ScalingResult {
	spec := fabric.DefaultLinkSpec()
	out := ScalingResult{LinkBWGBps: spec.BandwidthGBps, LatencyNs: spec.LatencyNs}
	for _, kind := range fabric.Kinds() {
		for _, mode := range []fabric.Mode{fabric.Strong, fabric.Weak} {
			for _, k := range scalingKernels() {
				rate := NodeRateFor(k)
				pts, err := fabric.Curve(kind, spec, k, rate, scalingSizes, mode, 8)
				if err != nil {
					continue
				}
				for _, pt := range pts {
					out.Rows = append(out.Rows, ScalingRow{
						Topology:    kind,
						Mode:        mode.String(),
						Kernel:      k.Name,
						Nodes:       pt.Nodes,
						Efficiency:  pt.Efficiency,
						DeliveredEF: pt.DeliveredTFLOPs / 1e6,
						IdealEF:     rate * float64(pt.Nodes) / 1e6,
					})
				}
			}
		}
	}
	return out
}

// Render formats the scaling curves as one table per (topology, mode).
func (r ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Strong/weak scaling on the explicit fabric (%g GB/s links, %g ns hops)\n",
		r.LinkBWGBps, r.LatencyNs)
	var cur string
	var t *table
	flush := func() {
		if t != nil {
			b.WriteString(t.String())
		}
	}
	for _, row := range r.Rows {
		if key := row.Topology + "/" + row.Mode; key != cur {
			flush()
			cur = key
			fmt.Fprintf(&b, "\n%s, %s scaling:\n", row.Topology, row.Mode)
			t = &table{header: []string{"kernel", "nodes", "efficiency", "delivered EF", "§V-F ideal EF"}}
		}
		t.addRow(
			row.Kernel,
			fmt.Sprintf("%d", row.Nodes),
			fmtPct(row.Efficiency),
			fmt.Sprintf("%.4f", row.DeliveredEF),
			fmt.Sprintf("%.4f", row.IdealEF),
		)
	}
	flush()
	return b.String()
}

// FabricResilienceResult is the whole-node-failure experiment: progressive
// seed-chosen node deaths on the reference torus, collectives rerouted
// around the victims, folded into the steady-state degraded-throughput
// model at the analyzed per-node FIT rate.
type FabricResilienceResult struct {
	Topology string
	Kernel   string
	Nodes    int
	Seed     int64
	NodeFIT  float64
	// RelPerf[k] is delivered throughput with k nodes dead relative to
	// healthy; Degraded is its steady-state expectation.
	RelPerf  []float64
	Degraded ras.DegradedResult
}

// FabricResilience runs the machine-scope analogue of the component
// resilience experiment: an 8x8x8 torus running CoMD under weak scaling,
// killing one more node at a time (the fault grammar's node:k terms route
// here via cmd/enafault and /v1/scale).
func FabricResilience() FabricResilienceResult {
	const (
		seed    = 1
		maxDead = 8
	)
	k := workload.CoMD()
	out := FabricResilienceResult{Kernel: k.Name, Seed: seed}
	t, err := fabric.NewTorus(8, 8, 8, fabric.DefaultLinkSpec())
	if err != nil {
		return out
	}
	out.Topology = t.Name()
	out.Nodes = t.Nodes()
	out.NodeFIT = ras.Analyze(arch.BestMeanEHP(), ras.DefaultConfig(), t.Nodes()).NodeFIT
	res, err := fabric.AnalyzeNodeFailures(t, k, NodeRateFor(k), fabric.Weak, maxDead, seed, out.NodeFIT, mttrHours)
	if err != nil {
		return out
	}
	out.RelPerf = res.RelPerf
	out.Degraded = res.Degraded
	return out
}

// Render formats the node-failure surface and its steady-state expectation.
func (r FabricResilienceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Whole-node failures on %s running %s (seed %d, %.0f FIT/node, %d h MTTR)\n",
		r.Topology, r.Kernel, r.Seed, r.NodeFIT, mttrHours)
	t := &table{header: []string{"dead nodes", "rel perf"}}
	for k, rel := range r.RelPerf {
		t.addRow(fmt.Sprintf("%d", k), fmtPct(rel))
	}
	b.WriteString(t.String())
	d := r.Degraded
	fmt.Fprintf(&b, "steady state: E[rel perf] %s vs binary up/down %s (graceful-degradation gain %+.4f pp)\n",
		fmtPct(d.ExpectedRelPerf), fmtPct(d.BinaryRelPerf), d.DegradedGain*100)
	return b.String()
}
