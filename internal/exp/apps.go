package exp

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/workload"
)

// AppRow compares an application's whole-app outcome against the
// dominant-kernel shortcut the paper reports (§IV footnote 3).
type AppRow struct {
	App            string
	DominantTFLOPs float64
	AppTFLOPs      float64
	GapPct         float64 // how much the dominant-kernel number overstates
	AppNodeW       float64
	AppGFperW      float64
}

// AppsResult is the application-level study.
type AppsResult struct {
	Rows []AppRow
}

// Render implements Result.
func (r AppsResult) Render() string {
	t := &table{header: []string{"application", "dominant-kernel TF", "whole-app TF", "overstatement", "node W", "GF/W"}}
	for _, row := range r.Rows {
		t.addRow(row.App,
			fmt.Sprintf("%.2f", row.DominantTFLOPs),
			fmt.Sprintf("%.2f", row.AppTFLOPs),
			fmt.Sprintf("%.1f%%", row.GapPct),
			fmt.Sprintf("%.1f", row.AppNodeW),
			fmt.Sprintf("%.1f", row.AppGFperW))
	}
	return "Extension: whole-application outcomes vs the dominant-kernel shortcut (§IV fn. 3)\n" + t.String()
}

// Apps evaluates the multi-kernel applications at the best-mean config.
func Apps() AppsResult {
	cfg := arch.BestMeanEHP()
	var out AppsResult
	for _, app := range workload.Applications() {
		r, err := core.SimulateApp(cfg, app, core.Options{})
		if err != nil {
			panic(fmt.Sprintf("exp: apps: %v", err))
		}
		row := AppRow{
			App:            app.Name,
			DominantTFLOPs: r.DomKernelR.Perf.TFLOPs,
			AppTFLOPs:      r.TFLOPs,
			AppNodeW:       r.NodeW,
			AppGFperW:      r.GFperW,
		}
		if r.TFLOPs > 0 {
			row.GapPct = (r.DomKernelR.Perf.TFLOPs/r.TFLOPs - 1) * 100
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
