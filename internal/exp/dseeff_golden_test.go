package exp

import (
	"math"
	"testing"

	"ena/internal/arch"
	"ena/internal/dse"
)

// TestDSEEfficiencyGolden pins the sample-efficiency experiment: the
// surrogate must find the exact golden best-mean point within a quarter of
// the exhaustive budget, every curve must be monotone and bounded by the
// ground-truth ceiling, and the seeded discovery counts must never drift —
// any change here is a change to the explorer's behavior, not noise.
func TestDSEEfficiencyGolden(t *testing.T) {
	r := DSEEfficiency()
	if r.SpaceSize != 490 || r.Budget != 122 {
		t.Fatalf("space/budget = %d/%d, want 490/122", r.SpaceSize, r.Budget)
	}
	golden := dse.Point{CUs: arch.BestMeanCUs, FreqMHz: arch.BestMeanFreqMHz, BWTBps: arch.BestMeanBWTBps}
	if r.Golden != golden {
		t.Fatalf("golden = %v, want %v", r.Golden, golden)
	}
	if math.Abs(r.GoldenScore-0.661074) > 1e-6 {
		t.Errorf("golden score = %.6f, want 0.661074", r.GoldenScore)
	}

	byName := map[string]DSEEfficiencyCurve{}
	for _, c := range r.Curves {
		byName[c.Strategy] = c
		if len(c.Points) == 0 {
			t.Fatalf("%s curve empty", c.Strategy)
		}
		prev := 0.0
		for _, p := range c.Points {
			if p.BestMean < prev {
				t.Fatalf("%s curve decreases at %d evals: %.6f < %.6f", c.Strategy, p.Evaluated, p.BestMean, prev)
			}
			if p.BestMean > r.GoldenScore+1e-12 {
				t.Fatalf("%s curve exceeds the ground-truth ceiling at %d evals", c.Strategy, p.Evaluated)
			}
			prev = p.BestMean
		}
	}

	// The seeded discovery counts (deterministic by the surrogate and
	// random-baseline contracts).
	sur := byName["surrogate"]
	if sur.FoundAt != 67 {
		t.Errorf("surrogate found golden at %d evals, want the pinned 67", sur.FoundAt)
	}
	if sur.FoundAt < 0 || sur.FoundAt > r.Budget {
		t.Errorf("surrogate missed the golden point within its budget of %d", r.Budget)
	}
	if last := sur.Points[len(sur.Points)-1].BestMean; last != r.GoldenScore {
		t.Errorf("surrogate final best = %.6f, want the golden score %.6f", last, r.GoldenScore)
	}
	exh := byName["exhaustive"]
	if exh.FoundAt != 311 {
		t.Errorf("exhaustive found golden at %d evals, want its enumeration position 311", exh.FoundAt)
	}
	if len(exh.Points) != r.SpaceSize {
		t.Errorf("exhaustive curve covers %d evals, want the whole space", len(exh.Points))
	}
	rnd := byName["random"]
	if rnd.FoundAt != -1 {
		t.Errorf("random baseline found golden at %d evals; the pinned seed misses within budget", rnd.FoundAt)
	}

	// The headline: the surrogate reaches the golden score with at most a
	// quarter of the evaluations the exhaustive order needs.
	if sur.FoundAt*4 > exh.FoundAt+3 {
		t.Errorf("surrogate needed %d evals vs exhaustive %d — not a 4x win", sur.FoundAt, exh.FoundAt)
	}
}
