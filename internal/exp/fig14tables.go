package exp

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/trace"
	"ena/internal/workload"
)

// Fig14CUCounts is the swept per-node CU count (the paper's x-axis).
var Fig14CUCounts = []int{192, 224, 256, 288, 320}

// Fig14Point is one machine-level projection sample.
type Fig14Point struct {
	CUs        int
	NodeTFLOPs float64
	NodeW      float64
	ExaFLOPs   float64
	SystemMW   float64
}

// Fig14Result is the exascale-target study.
type Fig14Result struct {
	Points []Fig14Point
}

// Render implements Result.
func (r Fig14Result) Render() string {
	t := &table{header: []string{"CUs/node", "node TFLOP/s", "node W", "exaflops", "system MW"}}
	for _, p := range r.Points {
		t.addRow(fmt.Sprintf("%d", p.CUs), fmt.Sprintf("%.1f", p.NodeTFLOPs),
			fmt.Sprintf("%.1f", p.NodeW), fmt.Sprintf("%.2f", p.ExaFLOPs),
			fmt.Sprintf("%.1f", p.SystemMW))
	}
	return fmt.Sprintf("Fig. 14: MaxFlops peak-compute scaling (1 GHz, 1 TB/s, %d nodes)\n", arch.NodeCount) + t.String()
}

// Figure14 scales the MaxFlops kernel across CU counts at 1 GHz and 1 TB/s
// and projects to the 100,000-node machine (§V-F). Node power is the
// compute-focused package power, as the paper's peak-compute scenario
// reports.
func Figure14() Fig14Result {
	var out Fig14Result
	mf := workload.MaxFlops()
	for _, cus := range Fig14CUCounts {
		cfg := arch.EHP(cus, 1000, 1)
		r := core.Simulate(cfg, mf, core.Options{ExcludeExternal: true})
		p := core.ProjectSystem(r, arch.NodeCount)
		out.Points = append(out.Points, Fig14Point{
			CUs:        cus,
			NodeTFLOPs: r.Perf.TFLOPs,
			NodeW:      r.NodeW,
			ExaFLOPs:   p.ExaFLOPs,
			SystemMW:   p.SystemMW,
		})
	}
	return out
}

// Table1Row is one kernel's characterization summary.
type Table1Row struct {
	Category    workload.Category
	Application string
	Description string

	// Trace-derived metrics (the "measurement pass").
	OpsPerByte     float64
	FootprintGB    float64
	WriteFrac      float64
	TraceWriteFrac float64
	CompressRatio  float64
}

// Table1Result reproduces Table I with the model's characterization data.
type Table1Result struct {
	Rows []Table1Row
}

// Render implements Result.
func (r Table1Result) Render() string {
	t := &table{header: []string{"category", "application", "description", "flops/byte", "footprint GB", "write frac"}}
	for _, row := range r.Rows {
		t.addRow(row.Category.String(), row.Application, row.Description,
			fmt.Sprintf("%.2f", row.OpsPerByte), fmt.Sprintf("%.0f", row.FootprintGB),
			fmt.Sprintf("%.2f", row.TraceWriteFrac))
	}
	return "Table I: application descriptions and characterization\n" + t.String()
}

// Table1 lists the suite with its per-kernel characterization, using the
// synthetic traces for the measured columns.
func Table1() Table1Result {
	var out Table1Result
	for _, k := range workload.Suite() {
		tr := k.Trace(1, 20000)
		prof := trace.Analyze(tr)
		out.Rows = append(out.Rows, Table1Row{
			Category:       k.Category,
			Application:    k.Name,
			Description:    k.Description,
			OpsPerByte:     k.Intensity,
			FootprintGB:    k.FootprintGB,
			WriteFrac:      k.WriteFrac,
			TraceWriteFrac: prof.WriteFrac,
		})
	}
	return out
}

// Table2Result reproduces Table II.
type Table2Result struct {
	BestMean dse.Point
	Rows     []dse.TableRow
}

// Render implements Result.
func (r Table2Result) Render() string {
	t := &table{header: []string{"application", "best app-specific config (CUs/MHz/TBps)", "benefit w/o power opt", "benefit w/ power opt"}}
	for _, row := range r.Rows {
		t.addRow(row.Kernel, row.BestConfig.String(),
			fmt.Sprintf("%.1f%%", row.BenefitWithoutOpt),
			fmt.Sprintf("%.1f%%", row.BenefitWithOpt))
	}
	return fmt.Sprintf("Table II: dynamic-reconfiguration benefit over the best-mean config (%s)\n", r.BestMean) + t.String()
}

// Table2 derives the per-kernel oracle configurations and their benefit over
// the statically chosen best-mean configuration, without and with the §V-E
// power optimizations (§VI).
func Table2() Table2Result {
	base, opt := explorations()
	ks := workload.Suite()
	rows := make([]dse.TableRow, len(ks))
	for i, k := range ks {
		ref := base.BestMean.PerfTFLOPs[i]
		row := dse.TableRow{Kernel: k.Name, BestMeanPerfTFLOPs: ref}
		if ref > 0 {
			bp := base.BestPerKernel[i]
			row.BestConfig = bp.Point
			row.BenefitWithoutOpt = (bp.PerfTFLOPs[i]/ref - 1) * 100
			op := opt.BestPerKernel[i]
			row.BestConfigWithOpt = op.Point
			row.BenefitWithOpt = (op.PerfTFLOPs[i]/ref - 1) * 100
		}
		rows[i] = row
	}
	return Table2Result{BestMean: base.BestMean.Point, Rows: rows}
}
