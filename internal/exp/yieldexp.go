package exp

import (
	"fmt"

	"ena/internal/yield"
)

// YieldResult is the §II-A2 die-yield/cost argument quantified: the
// monolithic EHP-equivalent versus the chiplet + active-interposer assembly.
type YieldResult struct {
	Comparison yield.Comparison
}

// Render implements Result.
func (r YieldResult) Render() string {
	c := r.Comparison
	s := "Ablation: chiplet decomposition vs monolithic SOC (§II-A2 yield/cost)\n"
	s += fmt.Sprintf("  monolithic equivalent: %.1f cm^2 die, yield %s, %s per good die\n",
		c.MonolithicAreaCm2, fmtPct(c.MonolithicYield), fmtUSD(c.MonolithicUSD))
	s += fmt.Sprintf("  chiplet assembly:      worst die yield %s, %s per assembled EHP\n",
		fmtPct(c.ChipletWorstYield), fmtUSD(c.ChipletTotalUSD))
	s += fmt.Sprintf("  silicon-cost ratio (monolithic / chiplets): %.1fx\n", c.CostRatio)
	return s
}

func fmtUSD(v float64) string { return fmt.Sprintf("$%.0f", v) }

// Yield evaluates the default EHP assembly against its monolithic
// equivalent on the advanced/mature process pair.
func Yield() YieldResult {
	c, err := yield.Compare(yield.EHPAssembly(), yield.AdvancedNode(), yield.MatureNode())
	if err != nil {
		panic(fmt.Sprintf("exp: yield: %v", err))
	}
	return YieldResult{Comparison: c}
}
