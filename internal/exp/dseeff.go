package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"ena/internal/arch"
	"ena/internal/dse"
	"ena/internal/surrogate"
	"ena/internal/workload"
)

// This file holds the DSE sample-efficiency experiment: how quickly each
// search strategy — the surrogate explorer, the exhaustive sweep in
// enumeration order, and a seeded random order — closes in on the paper's
// golden best-mean configuration, measured against the exhaustive sweep's
// ground-truth scores.

// dseEffSeed seeds both the surrogate and the random baseline; it matches
// the surrogate package's pinned acceptance seed so the experiment and the
// tests tell the same story.
const dseEffSeed = 1

// DSEEfficiencyPoint is one position on a sample-efficiency curve.
type DSEEfficiencyPoint struct {
	// Evaluated counts design points evaluated so far (1-based).
	Evaluated int
	// BestMean is the ground-truth mean score of the best eligible point
	// found so far (0 until the first feasible in-provision point).
	BestMean float64
}

// DSEEfficiencyCurve is one strategy's best-found-so-far trace.
type DSEEfficiencyCurve struct {
	Strategy string
	Seed     int64
	// FoundAt is the evaluation count at which the strategy first selected
	// the golden best-mean point (-1 = never within its budget).
	FoundAt int
	Points  []DSEEfficiencyPoint
}

// DSEEfficiencyResult is the dse-efficiency experiment output.
type DSEEfficiencyResult struct {
	SpaceSize int
	Budget    int
	Golden    dse.Point
	// GoldenScore is the golden point's ground-truth mean score — the
	// highest eligible score in the space, and every curve's ceiling.
	GoldenScore float64
	Curves      []DSEEfficiencyCurve
}

// DSEEfficiency compares sample efficiency on the paper's default space. The
// exhaustive sweep provides both the correctness anchor (ground-truth scores
// for every point) and the baseline curve; the surrogate and random curves
// stop at a quarter of the exhaustive budget. Fully deterministic: both
// seeded strategies use dseEffSeed.
func DSEEfficiency() DSEEfficiencyResult {
	base, _ := explorations()
	space := dse.DefaultSpace()
	n := space.Size()
	budget := n / 4

	// Ground truth, indexed by canonical enumeration position. Only points
	// the sweep itself would select (feasible under the power budget at every
	// kernel, within the provisioned CU count) advance a curve.
	scores := make([]float64, n)
	eligible := make([]bool, n)
	for i, ev := range base.Evals {
		scores[i] = ev.MeanScore
		eligible[i] = ev.FeasibleAll && ev.Point.CUs <= arch.ProvisionedCUs
	}
	golden := base.BestMean.Point
	goldenIdx := -1
	for i, p := range space.Points() {
		if p == golden {
			goldenIdx = i
			break
		}
	}

	curve := func(strategy string, seed int64, order []int) DSEEfficiencyCurve {
		c := DSEEfficiencyCurve{Strategy: strategy, Seed: seed, FoundAt: -1}
		best := 0.0
		for step, idx := range order {
			if eligible[idx] && scores[idx] > best {
				best = scores[idx]
			}
			if idx == goldenIdx && c.FoundAt < 0 {
				c.FoundAt = step + 1
			}
			c.Points = append(c.Points, DSEEfficiencyPoint{Evaluated: step + 1, BestMean: best})
		}
		return c
	}

	exhaustive := make([]int, n)
	for i := range exhaustive {
		exhaustive[i] = i
	}
	random := rand.New(rand.NewSource(dseEffSeed)).Perm(n)[:budget]

	res, err := surrogate.Explore(context.Background(), space, workload.Suite(),
		arch.NodePowerBudgetW, 0, surrogate.Options{Budget: budget, Seed: dseEffSeed},
		dse.Instr{}, nil)
	if err != nil {
		// Inputs are fixed and valid; only a programming error reaches here.
		panic("exp: dse-efficiency surrogate run failed: " + err.Error())
	}

	return DSEEfficiencyResult{
		SpaceSize:   n,
		Budget:      budget,
		Golden:      golden,
		GoldenScore: scores[goldenIdx],
		Curves: []DSEEfficiencyCurve{
			curve("surrogate", dseEffSeed, res.Trajectory),
			curve("exhaustive", 0, exhaustive),
			curve("random", dseEffSeed, random),
		},
	}
}

// Render plots best-found-so-far at doubling checkpoints plus each
// strategy's golden-discovery count.
func (r DSEEfficiencyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DSE sample efficiency: best-found-so-far mean score vs points evaluated\n")
	fmt.Fprintf(&b, "space %d points, surrogate/random budget %d, golden %s (score %.3f)\n\n",
		r.SpaceSize, r.Budget, r.Golden, r.GoldenScore)

	marks := []int{8, 16, 32, 64, r.Budget, r.SpaceSize / 2, r.SpaceSize}
	t := &table{header: []string{"strategy", "seed", "found golden at"}}
	for _, m := range marks {
		t.header = append(t.header, fmt.Sprintf("@%d", m))
	}
	for _, c := range r.Curves {
		found := "never"
		if c.FoundAt >= 0 {
			found = fmt.Sprintf("%d evals", c.FoundAt)
		}
		row := []string{c.Strategy, fmt.Sprintf("%d", c.Seed), found}
		for _, m := range marks {
			if m <= len(c.Points) {
				row = append(row, fmt.Sprintf("%.3f", c.Points[m-1].BestMean))
			} else {
				row = append(row, "-")
			}
		}
		t.addRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}
