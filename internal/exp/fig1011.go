package exp

import (
	"fmt"
	"strings"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/thermal"
	"ena/internal/workload"
)

// AssignThermalPower maps a simulated node result onto the package
// floorplan: CU power onto the GPU chiplets, DRAM power onto the stacked
// dies, CPU power onto the central clusters, NoC/system power into the
// active interposers.
func AssignThermalPower(cfg *arch.NodeConfig, r core.Result) thermal.PowerAssignment {
	n := len(cfg.GPU)
	pa := thermal.PowerAssignment{
		GPUChipletW: make([]float64, n),
		HBMStackW:   make([]float64, n),
		CPUW:        r.Power.CPU,
		InterposerW: r.Power.NoCDynamic + r.Power.NoCStatic + r.Power.Other,
	}
	cuW := (r.Power.CUDynamic + r.Power.CUStatic) / float64(n)
	hbmW := (r.Power.HBMDynamic + r.Power.HBMStatic) / float64(n)
	for i := 0; i < n; i++ {
		pa.GPUChipletW[i] = cuW
		pa.HBMStackW[i] = hbmW
	}
	return pa
}

// solveFor runs a node simulation and thermal solve for one (config,
// kernel) pair, returning the solution.
func solveFor(cfg *arch.NodeConfig, k workload.Kernel) (*thermal.Solution, core.Result, error) {
	r := core.Simulate(cfg, k, core.Options{})
	sol, err := thermal.Solve(thermal.EHPFloorplan(), AssignThermalPower(cfg, r), thermal.DefaultAmbientC)
	return sol, r, err
}

// Fig10Row is one kernel's peak DRAM temperatures.
type Fig10Row struct {
	Kernel               string
	BestMeanTempC        float64
	BestPerAppTempC      float64
	BestPerAppConfig     dse.Point
	BestMeanPackageW     float64
	PerAppPackageW       float64
	UnderLimitAtBoth     bool
	PerAppCoolerThanMean bool
}

// Fig10Result is the peak-temperature study.
type Fig10Result struct {
	Rows   []Fig10Row
	LimitC float64
}

// Render implements Result.
func (r Fig10Result) Render() string {
	t := &table{header: []string{"kernel", "best-mean (C)", "best-per-app (C)", "per-app config", "pkg W (mean)", "pkg W (app)"}}
	for _, row := range r.Rows {
		t.addRow(row.Kernel,
			fmt.Sprintf("%.1f", row.BestMeanTempC),
			fmt.Sprintf("%.1f", row.BestPerAppTempC),
			row.BestPerAppConfig.String(),
			fmt.Sprintf("%.1f", row.BestMeanPackageW),
			fmt.Sprintf("%.1f", row.PerAppPackageW))
	}
	return fmt.Sprintf("Fig. 10: peak in-package 3D-DRAM temperature (limit %.0f C, ambient %.0f C)\n",
		r.LimitC, thermal.DefaultAmbientC) + t.String()
}

// Figure10 computes peak DRAM temperature for every kernel under the
// best-mean configuration and under its own best configuration (§V-D).
func Figure10() Fig10Result {
	base, _ := explorations()
	bm := arch.BestMeanEHP()
	out := Fig10Result{LimitC: thermal.DRAMTempLimitC}
	for i, k := range workload.Suite() {
		solMean, rMean, err := solveFor(bm, k)
		if err != nil {
			panic(fmt.Sprintf("exp: thermal solve failed: %v", err))
		}
		pt := base.BestPerKernel[i].Point
		solApp, rApp, err := solveFor(pt.Config(), k)
		if err != nil {
			panic(fmt.Sprintf("exp: thermal solve failed: %v", err))
		}
		row := Fig10Row{
			Kernel:           k.Name,
			BestMeanTempC:    solMean.PeakDRAMTempC(),
			BestPerAppTempC:  solApp.PeakDRAMTempC(),
			BestPerAppConfig: pt,
			BestMeanPackageW: rMean.Power.PackageW(),
			PerAppPackageW:   rApp.Power.PackageW(),
		}
		row.UnderLimitAtBoth = row.BestMeanTempC < thermal.DRAMTempLimitC &&
			row.BestPerAppTempC < thermal.DRAMTempLimitC
		row.PerAppCoolerThanMean = row.BestPerAppTempC < row.BestMeanTempC
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Fig11Result is the SNAP heat-map comparison of the bottom-most in-package
// DRAM die under the best-mean and SNAP-optimized configurations.
type Fig11Result struct {
	Kernel     string
	MeanConfig dse.Point
	AppConfig  dse.Point
	MeanPeakC  float64
	AppPeakC   float64
	MeanMap    [][]float64
	AppMap     [][]float64
	MeanASCII  string
	AppASCII   string
}

// Render implements Result.
func (r Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11: bottom in-package DRAM die heat map for %s\n", r.Kernel)
	fmt.Fprintf(&b, "best-mean configuration (%s): peak %.1f C\n%s\n", r.MeanConfig, r.MeanPeakC, r.MeanASCII)
	fmt.Fprintf(&b, "workload-specific configuration (%s): peak %.1f C\n%s", r.AppConfig, r.AppPeakC, r.AppASCII)
	return b.String()
}

// Figure11 renders the SNAP bottom-DRAM-die temperature field for the
// best-mean and the SNAP-optimized configurations; with the per-app config,
// power shifts from the high-density CUs into the lower-density DRAM, so the
// hot spots above the GPU CUs soften (§V-D Finding 2).
func Figure11() Fig11Result {
	base, _ := explorations()
	snapIdx := -1
	ks := workload.Suite()
	for i, k := range ks {
		if k.Name == "SNAP" {
			snapIdx = i
		}
	}
	k := ks[snapIdx]
	meanPt := dse.Point{CUs: arch.BestMeanCUs, FreqMHz: arch.BestMeanFreqMHz, BWTBps: arch.BestMeanBWTBps}
	appPt := base.BestPerKernel[snapIdx].Point

	solMean, _, err := solveFor(arch.BestMeanEHP(), k)
	if err != nil {
		panic(fmt.Sprintf("exp: thermal solve failed: %v", err))
	}
	solApp, _, err := solveFor(appPt.Config(), k)
	if err != nil {
		panic(fmt.Sprintf("exp: thermal solve failed: %v", err))
	}
	return Fig11Result{
		Kernel:     k.Name,
		MeanConfig: meanPt,
		AppConfig:  appPt,
		MeanPeakC:  solMean.PeakLayerTempC(thermal.LayerDRAM0),
		AppPeakC:   solApp.PeakLayerTempC(thermal.LayerDRAM0),
		MeanMap:    solMean.HeatMap(thermal.LayerDRAM0),
		AppMap:     solApp.HeatMap(thermal.LayerDRAM0),
		MeanASCII:  solMean.ASCIIMap(thermal.LayerDRAM0),
		AppASCII:   solApp.ASCIIMap(thermal.LayerDRAM0),
	}
}
