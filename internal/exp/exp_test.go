package exp

import (
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 16 {
		t.Fatalf("registry has %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"table1", "fig4", "fig7", "fig14", "table2", "ras"} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, err := ByID("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id must error")
	}
}

// TestEveryExperimentRenders drives each registered harness through the
// ByID lookup path in its own parallel subtest with panic isolation, so one
// broken harness reports precisely instead of killing the whole run.
func TestEveryExperimentRenders(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("experiment %s panicked: %v", e.ID, r)
				}
			}()
			got, err := ByID(e.ID)
			if err != nil {
				t.Fatalf("ByID(%s): %v", e.ID, err)
			}
			out := got.Run().Render()
			if strings.TrimSpace(out) == "" {
				t.Fatalf("experiment %s rendered empty output", e.ID)
			}
		})
	}
}

func TestTableBuilder(t *testing.T) {
	tb := &table{header: []string{"a", "bb"}}
	tb.addRow("xxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[1], "---") {
		t.Errorf("table formatting off:\n%s", out)
	}
}

func TestFmtPct(t *testing.T) {
	if fmtPct(0.1234) != "12.3%" {
		t.Errorf("fmtPct = %q", fmtPct(0.1234))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := sortedKeys(m)
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("sortedKeys = %v", got)
	}
}
