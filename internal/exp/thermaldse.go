package exp

import (
	"fmt"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/thermal"
	"ena/internal/workload"
)

// ThermalDSEResult is the thermally constrained design-space exploration:
// §V-D checks feasibility of a handful of points; the linear superposition
// model makes it cheap enough to screen the entire §V sweep against the
// 85 C DRAM limit.
type ThermalDSEResult struct {
	PointsTotal       int
	PowerFeasible     int
	ThermallyRejected int // power-feasible but over the DRAM limit
	BestMean          dse.Point
	BestMeanBoth      dse.Point // best-mean under power AND thermal limits
	HottestPoint      dse.Point
	HottestTempC      float64
	HottestKernel     string

	// A mid-range cooler (25% weaker convection) shows the §V-D caveat:
	// "more advanced cooling solutions may become necessary".
	WeakCoolerRejected int
	WeakCoolerBestMean dse.Point
}

// Render implements Result.
func (r ThermalDSEResult) Render() string {
	s := "Ablation: thermally constrained design-space exploration (85 C DRAM limit)\n"
	s += fmt.Sprintf("  %d points; %d power-feasible; %d of those thermally rejected\n",
		r.PointsTotal, r.PowerFeasible, r.ThermallyRejected)
	s += fmt.Sprintf("  best-mean (power only):      %s\n", r.BestMean)
	s += fmt.Sprintf("  best-mean (power + thermal): %s\n", r.BestMeanBoth)
	s += fmt.Sprintf("  hottest point: %s running %s at %.1f C\n",
		r.HottestPoint, r.HottestKernel, r.HottestTempC)
	s += fmt.Sprintf("  with a 25%% weaker cooler: %d points rejected; best-mean %s\n",
		r.WeakCoolerRejected, r.WeakCoolerBestMean)
	return s
}

// ThermalDSE screens every power-feasible design point against the DRAM
// temperature limit using the linear thermal model.
func ThermalDSE() ThermalDSEResult {
	base, _ := explorations()
	lm, err := thermal.NewLinearModel(thermal.EHPFloorplan(), thermal.DefaultAmbientC, thermal.DefaultParams())
	if err != nil {
		panic(fmt.Sprintf("exp: linear thermal model: %v", err))
	}
	weakPrm := thermal.DefaultParams()
	weakPrm.HSink *= 0.75
	weak, err := thermal.NewLinearModel(thermal.EHPFloorplan(), thermal.DefaultAmbientC, weakPrm)
	if err != nil {
		panic(fmt.Sprintf("exp: weak-cooler model: %v", err))
	}
	ks := workload.Suite()

	out := ThermalDSEResult{
		PointsTotal: len(base.Evals),
		BestMean:    base.BestMean.Point,
	}
	bestBothIdx, bestWeakIdx := -1, -1
	for i, e := range base.Evals {
		if !e.FeasibleAll {
			continue
		}
		out.PowerFeasible++
		cfg := e.Point.Config()
		thermalOK, weakOK := true, true
		for _, k := range ks {
			r := core.Simulate(cfg, k, core.Options{})
			pa := AssignThermalPower(cfg, r)
			peak, err := lm.PeakDRAMTempC(pa)
			if err != nil {
				panic(fmt.Sprintf("exp: thermal eval: %v", err))
			}
			if peak > out.HottestTempC {
				out.HottestTempC = peak
				out.HottestPoint = e.Point
				out.HottestKernel = k.Name
			}
			if peak >= thermal.DRAMTempLimitC {
				thermalOK = false
			}
			wpeak, err := weak.PeakDRAMTempC(pa)
			if err != nil {
				panic(fmt.Sprintf("exp: weak-cooler eval: %v", err))
			}
			if wpeak >= thermal.DRAMTempLimitC {
				weakOK = false
			}
		}
		inMeanRegion := e.Point.CUs <= arch.ProvisionedCUs
		if !thermalOK {
			out.ThermallyRejected++
		} else if inMeanRegion && (bestBothIdx < 0 || e.MeanScore > base.Evals[bestBothIdx].MeanScore) {
			bestBothIdx = i
		}
		if !weakOK {
			out.WeakCoolerRejected++
		} else if inMeanRegion && (bestWeakIdx < 0 || e.MeanScore > base.Evals[bestWeakIdx].MeanScore) {
			bestWeakIdx = i
		}
	}
	if bestBothIdx >= 0 {
		out.BestMeanBoth = base.Evals[bestBothIdx].Point
	}
	if bestWeakIdx >= 0 {
		out.WeakCoolerBestMean = base.Evals[bestWeakIdx].Point
	}
	return out
}
