package event

import "testing"

// TestReset pins the reuse contract: a reset simulator behaves like a fresh
// one (clock, counters, queue all zeroed) and outstanding tickets from
// before the reset are inert.
func TestReset(t *testing.T) {
	s := NewSim()
	s.After(1, func() {})
	stale := s.After(2, func() {})
	s.Run(0)
	s.After(3, func() {})
	s.Reset()
	if s.Now() != 0 || s.Processed() != 0 || s.Pending() != 0 {
		t.Fatalf("reset state: now=%v processed=%d pending=%d", s.Now(), s.Processed(), s.Pending())
	}
	ran := false
	s.After(1, func() { ran = true })
	stale.Cancel() // must not cancel the event occupying the recycled slot
	if n := s.Run(0); n != 1 || !ran {
		t.Errorf("post-reset run executed %d events, ran=%v", n, ran)
	}
}

// TestStaleTicketCancel: once an event has fired, its ticket must not be
// able to cancel a later event that recycled the same slot.
func TestStaleTicketCancel(t *testing.T) {
	s := NewSim()
	tk := s.After(1, func() {})
	s.Run(0)
	ran := false
	s.After(1, func() { ran = true }) // recycles the freed slot
	tk.Cancel()
	s.Run(0)
	if !ran {
		t.Error("stale ticket cancelled a recycled slot's event")
	}
}

// TestCancelledEventRecyclesSlot: a cancelled event's slot returns to the
// free list when dequeued, so cancel churn does not grow the slot table.
func TestCancelledEventRecyclesSlot(t *testing.T) {
	s := NewSim()
	for i := 0; i < 100; i++ {
		tk := s.After(1, func() { t.Error("cancelled event ran") })
		tk.Cancel()
		s.Run(0)
	}
	if got := len(s.slots); got > 2 {
		t.Errorf("slot table grew to %d under cancel churn", got)
	}
}

// TestSteadyStateSchedulingIsAllocFree is the kernel's headline property:
// once the heap and slot table reach their high-water mark, a pop-then-push
// cycle (the NoC/memsys steady state) performs no allocations.
func TestSteadyStateSchedulingIsAllocFree(t *testing.T) {
	s := NewSim()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.After(float64(i), fn)
	}
	// Warm the arrays past their high-water mark.
	for i := 0; i < 128; i++ {
		s.Step()
		s.After(64, fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Step()
		s.After(64, fn)
	})
	if allocs != 0 {
		t.Errorf("steady-state pop+push allocates %.1f times per op", allocs)
	}
}

// TestAcquireReleaseSim: the pool hands back reset simulators.
func TestAcquireReleaseSim(t *testing.T) {
	s := AcquireSim()
	s.After(5, func() {})
	s.Run(0)
	ReleaseSim(s)
	s2 := AcquireSim()
	defer ReleaseSim(s2)
	if s2.Now() != 0 || s2.Pending() != 0 || s2.Processed() != 0 {
		t.Errorf("pooled sim not reset: now=%v pending=%d processed=%d",
			s2.Now(), s2.Pending(), s2.Processed())
	}
}

// TestRunUntilDropsTrailingCancelled: cancelled events at the queue head —
// even past the deadline — are dropped and recycled without counting as
// processed, mirroring Step's accounting.
func TestRunUntilDropsTrailingCancelled(t *testing.T) {
	s := NewSim()
	s.After(1, func() {})
	tk := s.After(10, func() { t.Error("cancelled event ran") })
	tk.Cancel()
	if n := s.RunUntil(5); n != 1 {
		t.Errorf("RunUntil executed %d events", n)
	}
	if s.Processed() != 1 {
		t.Errorf("processed = %d, want 1", s.Processed())
	}
	if s.Pending() != 0 {
		t.Errorf("cancelled event past deadline not dropped: pending=%d", s.Pending())
	}
	if s.Now() != 5 {
		t.Errorf("clock = %v, want 5", s.Now())
	}
}

// TestHeapOrderLargeFanIn stresses the 4-ary sift paths with a wide heap.
func TestHeapOrderLargeFanIn(t *testing.T) {
	s := NewSim()
	const n = 10_000
	last := -1.0
	for i := 0; i < n; i++ {
		at := float64((i * 7919) % 1000)
		s.At(at, func() {
			if s.Now() < last {
				t.Fatalf("clock went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
		})
	}
	if got := s.Run(0); got != n {
		t.Errorf("executed %d of %d", got, n)
	}
}
