package event

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.After(3, func() { got = append(got, 3) })
	s.After(1, func() { got = append(got, 1) })
	s.After(2, func() { got = append(got, 2) })
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v", s.Now())
	}
	if s.Processed() != 3 {
		t.Errorf("processed = %d", s.Processed())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewSim()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("ties must run in scheduling order: %v", got)
		}
	}
}

func TestPastEvent(t *testing.T) {
	s := NewSim()
	s.After(10, func() {
		if _, err := s.At(5, func() {}); err != ErrPastEvent {
			t.Errorf("expected ErrPastEvent, got %v", err)
		}
	})
	s.Run(0)
}

func TestNonFinite(t *testing.T) {
	s := NewSim()
	if _, err := s.At(nan(), func() {}); err == nil {
		t.Error("NaN timestamp must be rejected")
	}
}

func nan() float64 { return float64(0) / func() float64 { return 0 }() }

func TestCancel(t *testing.T) {
	s := NewSim()
	ran := false
	tk := s.After(1, func() { ran = true })
	tk.Cancel()
	n := s.Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
	if n != 0 {
		t.Errorf("cancelled events must not count as executed: %d", n)
	}
	tk.Cancel() // double cancel is a no-op
}

func TestEventsScheduleEvents(t *testing.T) {
	s := NewSim()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.After(1, recurse)
		}
	}
	s.After(0, recurse)
	s.Run(0)
	if depth != 5 {
		t.Errorf("depth = %d", depth)
	}
	if s.Now() != 4 {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestRunMaxEvents(t *testing.T) {
	s := NewSim()
	for i := 0; i < 10; i++ {
		s.After(float64(i), func() {})
	}
	if n := s.Run(4); n != 4 {
		t.Errorf("Run(4) executed %d", n)
	}
	if s.Pending() != 6 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	var got []float64
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		s.After(at, func() { got = append(got, at) })
	}
	n := s.RunUntil(5)
	if n != 3 {
		t.Errorf("RunUntil executed %d", n)
	}
	if s.Now() != 5 {
		t.Errorf("clock should advance to the deadline: %v", s.Now())
	}
	s.Run(0)
	if len(got) != 4 {
		t.Errorf("remaining events lost: %v", got)
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	s := NewSim()
	tk := s.After(1, func() { t.Error("cancelled event ran") })
	tk.Cancel()
	s.After(2, func() {})
	if n := s.RunUntil(3); n != 1 {
		t.Errorf("RunUntil executed %d", n)
	}
}

// Property: regardless of insertion order, events execute in nondecreasing
// timestamp order and the clock never goes backwards.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		var times []float64
		var executed []float64
		for i := 0; i < 50; i++ {
			at := rng.Float64() * 100
			times = append(times, at)
			at2 := at
			if _, err := s.At(at2, func() { executed = append(executed, at2) }); err != nil {
				return false
			}
		}
		s.Run(0)
		if len(executed) != len(times) {
			return false
		}
		sort.Float64s(times)
		for i := range times {
			if executed[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunContextCancels(t *testing.T) {
	s := NewSim()
	ctx, cancel := context.WithCancel(context.Background())
	// A self-perpetuating event stream: without cancellation this would
	// run forever (bounded here by maxEvents as a test safety net).
	var fired int
	var loop func()
	loop = func() {
		fired++
		if fired == 10 {
			cancel()
		}
		s.After(1, loop)
	}
	s.After(0, loop)
	n, err := s.RunContext(ctx, 1_000_000)
	if err == nil {
		t.Fatal("RunContext returned nil error after cancellation")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The stride is ctxCheckEvery, so the overrun past the cancel point is
	// bounded by one stride.
	if n > 10+ctxCheckEvery {
		t.Errorf("executed %d events after cancel at 10; overrun exceeds one stride", n)
	}
	// The queue stays consistent: the pending rescheduled event survives.
	if s.Pending() == 0 {
		t.Error("pending event dropped by cancelled drain")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	build := func() *Sim {
		s := NewSim()
		for i := 0; i < 100; i++ {
			at := float64(i % 10)
			s.After(at, func() {})
		}
		return s
	}
	a, b := build(), build()
	na := a.Run(0)
	nb, err := b.RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || a.Now() != b.Now() {
		t.Errorf("Run=(%d,%v) RunContext=(%d,%v)", na, a.Now(), nb, b.Now())
	}
}

func TestRunContextMaxEvents(t *testing.T) {
	s := NewSim()
	for i := 0; i < 50; i++ {
		s.After(float64(i), func() {})
	}
	n, err := s.RunContext(context.Background(), 7)
	if err != nil || n != 7 {
		t.Fatalf("RunContext(7) = %d, %v", n, err)
	}
	if s.Pending() != 43 {
		t.Errorf("pending = %d, want 43", s.Pending())
	}
}
