// Package event implements the discrete-event simulation kernel used by the
// detailed chiplet-NoC and memory-system models. It provides a deterministic,
// time-ordered event queue with a simulated clock measured in abstract
// "cycles" (float64 so sub-cycle link serialization can be expressed).
//
// The kernel is intentionally minimal: components schedule closures at future
// times, and Run drains the queue until it is empty or a limit is reached.
// Determinism is guaranteed by a monotonically increasing sequence number
// that breaks ties between events scheduled for the same instant.
package event

import (
	"container/heap"
	"context"
	"errors"
	"math"

	"ena/internal/obs"
)

// Handler is the work a scheduled event performs. It runs with the simulator
// clock set to the event's timestamp and may schedule further events.
type Handler func()

type item struct {
	at   float64
	seq  uint64
	fn   Handler
	idx  int
	dead bool
}

type queue []*item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *queue) Push(x any) {
	it := x.(*item)
	it.idx = len(*q)
	*q = append(*q, it)
}
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Ticket identifies a scheduled event so it can be cancelled.
type Ticket struct{ it *item }

// Cancel marks the event dead; it will be skipped when dequeued. Cancelling
// an already-fired or already-cancelled event is a harmless no-op.
func (t Ticket) Cancel() {
	if t.it != nil {
		t.it.dead = true
	}
}

// Sim is a discrete-event simulator instance. The zero value is not usable;
// create one with NewSim.
type Sim struct {
	now       float64
	seq       uint64
	q         queue
	processed uint64

	// Observability handles (nil unless Instrument is called; the
	// uninstrumented path pays one nil check per event).
	evCounter  *obs.Counter
	depthGauge *obs.Gauge
}

// NewSim returns an empty simulator with the clock at zero.
func NewSim() *Sim {
	s := &Sim{}
	heap.Init(&s.q)
	return s
}

// Instrument attaches metrics to the kernel: prefix+".events" counts
// executed events and prefix+".queue_depth_max" tracks the high-water mark
// of the pending queue. A nil registry leaves the simulator uninstrumented.
func (s *Sim) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	s.evCounter = reg.Counter(prefix + ".events")
	s.depthGauge = reg.Gauge(prefix + ".queue_depth_max")
}

// Now returns the current simulated time in cycles.
func (s *Sim) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been dequeued).
func (s *Sim) Pending() int { return s.q.Len() }

// ErrPastEvent is returned when an event is scheduled before the current time.
var ErrPastEvent = errors.New("event: scheduled in the past")

// At schedules fn to run at absolute time t. Scheduling at the current time
// is allowed (the event runs after already-queued events for that instant).
func (s *Sim) At(t float64, fn Handler) (Ticket, error) {
	if t < s.now {
		return Ticket{}, ErrPastEvent
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return Ticket{}, errors.New("event: non-finite timestamp")
	}
	it := &item{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.q, it)
	return Ticket{it}, nil
}

// After schedules fn to run delay cycles from now; negative delays clamp to 0.
func (s *Sim) After(delay float64, fn Handler) Ticket {
	if delay < 0 {
		delay = 0
	}
	t, err := s.At(s.now+delay, fn)
	if err != nil {
		// Unreachable for finite delays; keep the queue consistent anyway.
		panic(err)
	}
	return t
}

// Step executes the next pending event and returns false when the queue is
// empty. Cancelled events are skipped without counting as processed.
func (s *Sim) Step() bool {
	for s.q.Len() > 0 {
		it := heap.Pop(&s.q).(*item)
		if it.dead {
			continue
		}
		s.now = it.at
		s.processed++
		if s.evCounter != nil {
			s.evCounter.Inc()
			s.depthGauge.SetMax(float64(s.q.Len()))
		}
		it.fn()
		return true
	}
	return false
}

// Run drains the event queue. maxEvents bounds runaway simulations; pass 0
// for no limit. It returns the number of events executed by this call.
func (s *Sim) Run(maxEvents uint64) uint64 {
	var n uint64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// ctxCheckEvery is how many events RunContext executes between cancellation
// checks. Simulations run millions of cheap events, so consulting the
// context's done channel on every one would dominate the loop; a stride this
// size bounds the post-cancel overrun to well under a millisecond of wall
// time while keeping the steady-state cost unmeasurable.
const ctxCheckEvery = 1024

// RunContext drains the event queue like Run but aborts once ctx is
// cancelled, checking every ctxCheckEvery events. It returns the number of
// events executed and ctx.Err() when the drain was cut short (nil when the
// queue emptied or maxEvents was reached). The simulator is left in a
// consistent state: pending events stay queued and a later Run/RunContext
// call resumes where this one stopped.
func (s *Sim) RunContext(ctx context.Context, maxEvents uint64) (uint64, error) {
	done := ctx.Done()
	var n uint64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return n, nil
		}
		if done != nil && n%ctxCheckEvery == 0 {
			select {
			case <-done:
				return n, ctx.Err()
			default:
			}
		}
	}
	return n, nil
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued and advancing the clock to at most the deadline.
func (s *Sim) RunUntil(deadline float64) uint64 {
	var n uint64
	for s.q.Len() > 0 {
		// Peek: find the next live event time.
		top := s.q[0]
		if top.dead {
			heap.Pop(&s.q)
			continue
		}
		if top.at > deadline {
			break
		}
		s.Step()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}
