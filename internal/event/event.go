// Package event implements the discrete-event simulation kernel used by the
// detailed chiplet-NoC and memory-system models. It provides a deterministic,
// time-ordered event queue with a simulated clock measured in abstract
// "cycles" (float64 so sub-cycle link serialization can be expressed).
//
// The kernel is intentionally minimal: components schedule closures at future
// times, and Run drains the queue until it is empty or a limit is reached.
// Determinism is guaranteed by a monotonically increasing sequence number
// that breaks ties between events scheduled for the same instant.
//
// The queue is a 4-ary implicit heap of inline entries over a slot table
// with a free-list, so steady-state scheduling (one pop funding one push, as
// in the NoC token loop and the memory queue) touches no allocator at all:
// the heap and slot arrays reach their high-water mark once and are reused.
// A 4-ary layout halves tree depth versus binary, trading a few extra
// comparisons per level for better locality — the right trade when entries
// are 24-byte values rather than pointers. Heap shape never affects
// execution order because (at, seq) is a total order.
package event

import (
	"context"
	"errors"
	"math"
	"sync"

	"ena/internal/obs"
)

// Handler is the work a scheduled event performs. It runs with the simulator
// clock set to the event's timestamp and may schedule further events.
type Handler func()

// heapEnt is one queued event's position in time. The handler itself lives
// in the slot table so the heap moves 24-byte values during sifts.
type heapEnt struct {
	at   float64
	seq  uint64
	slot int32
}

// entLess orders by (at, seq); seq is unique so this is a total order.
func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// slot holds the mutable per-event state referenced by tickets. gen guards
// against stale cancels: it bumps every time the slot is recycled.
type slot struct {
	fn   Handler
	gen  uint32
	dead bool
}

// Ticket identifies a scheduled event so it can be cancelled.
type Ticket struct {
	s    *Sim
	slot int32
	gen  uint32
}

// Cancel marks the event dead; it will be skipped when dequeued. Cancelling
// an already-fired or already-cancelled event is a harmless no-op.
func (t Ticket) Cancel() {
	if t.s == nil {
		return
	}
	if sl := &t.s.slots[t.slot]; sl.gen == t.gen {
		sl.dead = true
	}
}

// Sim is a discrete-event simulator instance. The zero value is not usable;
// create one with NewSim.
type Sim struct {
	now       float64
	seq       uint64
	heap      []heapEnt
	slots     []slot
	free      []int32
	processed uint64

	// Observability handles (nil unless Instrument is called; the
	// uninstrumented path pays one nil check per event).
	evCounter  *obs.Counter
	depthGauge *obs.Gauge
}

// NewSim returns an empty simulator with the clock at zero.
func NewSim() *Sim {
	return &Sim{}
}

// simPool recycles simulator instances so back-to-back detailed simulations
// (one per DSE point) reuse the heap and slot arrays instead of regrowing
// them from scratch each run.
var simPool = sync.Pool{New: func() any { return NewSim() }}

// AcquireSim returns a reset simulator from the package pool.
func AcquireSim() *Sim {
	return simPool.Get().(*Sim)
}

// ReleaseSim resets s (dropping any instrumentation handles) and returns it
// to the pool. The caller must not use s afterwards.
func ReleaseSim(s *Sim) {
	s.Reset()
	s.evCounter = nil
	s.depthGauge = nil
	simPool.Put(s)
}

// Reset restores the simulator to its initial state — clock at zero, empty
// queue, zero counters — while keeping the backing arrays (and any attached
// instrumentation) so a reused instance schedules without reallocating.
// Outstanding tickets are invalidated.
func (s *Sim) Reset() {
	s.now = 0
	s.seq = 0
	s.processed = 0
	s.heap = s.heap[:0]
	s.free = s.free[:0]
	for i := range s.slots {
		s.slots[i].fn = nil
		s.slots[i].dead = false
		s.slots[i].gen++ // stale tickets must not cancel future events
		s.free = append(s.free, int32(i))
	}
}

// Instrument attaches metrics to the kernel: prefix+".events" counts
// executed events and prefix+".queue_depth_max" tracks the high-water mark
// of the pending queue. A nil registry leaves the simulator uninstrumented.
func (s *Sim) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	s.evCounter = reg.Counter(prefix + ".events")
	s.depthGauge = reg.Gauge(prefix + ".queue_depth_max")
}

// Now returns the current simulated time in cycles.
func (s *Sim) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been dequeued).
func (s *Sim) Pending() int { return len(s.heap) }

// ErrPastEvent is returned when an event is scheduled before the current time.
var ErrPastEvent = errors.New("event: scheduled in the past")

// At schedules fn to run at absolute time t. Scheduling at the current time
// is allowed (the event runs after already-queued events for that instant).
func (s *Sim) At(t float64, fn Handler) (Ticket, error) {
	if t < s.now {
		return Ticket{}, ErrPastEvent
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return Ticket{}, errors.New("event: non-finite timestamp")
	}
	var si int32
	if n := len(s.free); n > 0 {
		si = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{})
		si = int32(len(s.slots) - 1)
	}
	s.slots[si].fn = fn
	s.push(heapEnt{at: t, seq: s.seq, slot: si})
	s.seq++
	return Ticket{s: s, slot: si, gen: s.slots[si].gen}, nil
}

// After schedules fn to run delay cycles from now; negative delays clamp to 0.
func (s *Sim) After(delay float64, fn Handler) Ticket {
	if delay < 0 {
		delay = 0
	}
	t, err := s.At(s.now+delay, fn)
	if err != nil {
		// Unreachable for finite delays; keep the queue consistent anyway.
		panic(err)
	}
	return t
}

// push appends e and sifts it toward the root.
func (s *Sim) push(e heapEnt) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(e, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = e
}

// popRoot removes and returns the minimum entry.
func (s *Sim) popRoot() heapEnt {
	root := s.heap[0]
	n := len(s.heap) - 1
	e := s.heap[n]
	s.heap = s.heap[:n]
	if n == 0 {
		return root
	}
	// Sift the displaced tail entry down from the root.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := min(c+4, n)
		for j := c + 1; j < end; j++ {
			if entLess(s.heap[j], s.heap[m]) {
				m = j
			}
		}
		if !entLess(s.heap[m], e) {
			break
		}
		s.heap[i] = s.heap[m]
		i = m
	}
	s.heap[i] = e
	return root
}

// take pops the minimum entry, recycles its slot, and returns its handler;
// dead is true for a cancelled event (the handler is discarded).
func (s *Sim) take() (at float64, fn Handler, dead bool) {
	e := s.popRoot()
	sl := &s.slots[e.slot]
	fn, dead = sl.fn, sl.dead
	sl.fn = nil
	sl.dead = false
	sl.gen++ // invalidate outstanding tickets for this event
	s.free = append(s.free, e.slot)
	return e.at, fn, dead
}

// Step executes the next pending event and returns false when the queue is
// empty. Cancelled events are skipped without counting as processed.
func (s *Sim) Step() bool {
	for len(s.heap) > 0 {
		at, fn, dead := s.take()
		if dead {
			continue
		}
		s.now = at
		s.processed++
		if s.evCounter != nil {
			s.evCounter.Inc()
			s.depthGauge.SetMax(float64(len(s.heap)))
		}
		fn()
		return true
	}
	return false
}

// Run drains the event queue. maxEvents bounds runaway simulations; pass 0
// for no limit. It returns the number of events executed by this call.
func (s *Sim) Run(maxEvents uint64) uint64 {
	var n uint64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// ctxCheckEvery is how many events RunContext executes between cancellation
// checks. Simulations run millions of cheap events, so consulting the
// context's done channel on every one would dominate the loop; a stride this
// size bounds the post-cancel overrun to well under a millisecond of wall
// time while keeping the steady-state cost unmeasurable.
const ctxCheckEvery = 1024

// RunContext drains the event queue like Run but aborts once ctx is
// cancelled, checking every ctxCheckEvery events. It returns the number of
// events executed and ctx.Err() when the drain was cut short (nil when the
// queue emptied or maxEvents was reached). The simulator is left in a
// consistent state: pending events stay queued and a later Run/RunContext
// call resumes where this one stopped.
func (s *Sim) RunContext(ctx context.Context, maxEvents uint64) (uint64, error) {
	done := ctx.Done()
	var n uint64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return n, nil
		}
		if done != nil && n%ctxCheckEvery == 0 {
			select {
			case <-done:
				return n, ctx.Err()
			default:
			}
		}
	}
	return n, nil
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued and advancing the clock to at most the deadline. Cancelled events
// encountered on the way are dropped and their slots recycled exactly as
// Step does, without touching the processed count or instrumentation.
func (s *Sim) RunUntil(deadline float64) uint64 {
	var n uint64
	for len(s.heap) > 0 {
		top := s.heap[0]
		if top.at > deadline && !s.slots[top.slot].dead {
			break
		}
		at, fn, dead := s.take()
		if dead {
			continue
		}
		s.now = at
		s.processed++
		if s.evCounter != nil {
			s.evCounter.Inc()
			s.depthGauge.SetMax(float64(len(s.heap)))
		}
		fn()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}
