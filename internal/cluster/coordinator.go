package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ena/internal/dse"
	"ena/internal/fabric"
	"ena/internal/faults"
	"ena/internal/obs"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// DefaultShardsPerPeer is how many shards each peer gets per job: more than
// one so a failed peer forfeits only a slice of the work and the survivors
// rebalance at shard granularity.
const DefaultShardsPerPeer = 3

// Checkpoint chunk defaults: explore points are cheap (fixed-size chunks keep
// shard boundaries independent of the peer set, so a checkpoint written by
// one replica resumes on any other); scale sizes are whole-fabric evaluations
// and chunk small.
const (
	DefaultCheckpointItems = 64
	defaultScaleChunk      = 2
)

// CkptStore is the slice of the result store the coordinator needs for shard
// checkpoints. *store.Store satisfies it; both methods must be safe for
// concurrent use.
type CkptStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte) error
}

// Coordinator fans sweep jobs out to enaserve worker peers. A nil
// Coordinator (or one with neither peers nor a checkpoint store) is
// disabled: callers fall back to local evaluation. Safe for concurrent use
// by multiple jobs.
type Coordinator struct {
	peers     []string
	client    *http.Client
	shardsPer int

	prober     *Prober
	ckpt       CkptStore
	ckptChunk  int
	scaleChunk int
	evalDelay  time.Duration

	dispatched  *obs.Counter
	retries     *obs.Counter
	peerFails   *obs.Counter
	itemsCtr    *obs.Counter
	localShards *obs.Counter
	resumedCtr  *obs.Counter
	ckptCtr     *obs.Counter
	peersGauge  *obs.Gauge
}

// NewCoordinator builds a coordinator over the given peer base URLs
// (e.g. "http://10.0.0.2:8080"). Metrics land in reg under cluster.* plus
// the checkpoint counters under jobs.* (jobs.resumed_shards,
// jobs.checkpoints — they describe job durability, not fan-out).
func NewCoordinator(peers []string, reg *obs.Registry) *Coordinator {
	c := &Coordinator{
		peers: append([]string(nil), peers...),
		// No overall client timeout: shard streams legitimately run long.
		// Dial/TLS inherit http.DefaultTransport's limits, and every request
		// carries the job context.
		client:      &http.Client{},
		shardsPer:   DefaultShardsPerPeer,
		ckptChunk:   DefaultCheckpointItems,
		scaleChunk:  defaultScaleChunk,
		dispatched:  reg.Counter("cluster.shards_dispatched"),
		retries:     reg.Counter("cluster.shard_retries"),
		peerFails:   reg.Counter("cluster.peer_failures"),
		itemsCtr:    reg.Counter("cluster.items_streamed"),
		localShards: reg.Counter("cluster.local_fallback_shards"),
		resumedCtr:  reg.Counter("jobs.resumed_shards"),
		ckptCtr:     reg.Counter("jobs.checkpoints"),
		peersGauge:  reg.Gauge("cluster.peers"),
	}
	c.peersGauge.Set(float64(len(c.peers)))
	return c
}

// SetProber installs health-aware peer membership: shard assignment draws
// from the prober's healthy set instead of the static peer list, shard
// failures feed back into it, and fast peers (by probe EWMA) pull with
// double concurrency.
func (c *Coordinator) SetProber(p *Prober) {
	if c != nil {
		c.prober = p
	}
}

// EnableCheckpoints persists completed shard partials to cs so an adopted or
// restarted job resumes from its checkpoint instead of recomputing. chunk
// fixes the explore shard size (<= 0 uses DefaultCheckpointItems); fixed
// chunks keep shard boundaries identical across replicas with different
// peer sets, which is what makes another replica's checkpoints resumable.
func (c *Coordinator) EnableCheckpoints(cs CkptStore, chunk int) {
	if c == nil {
		return
	}
	c.ckpt = cs
	if chunk > 0 {
		c.ckptChunk = chunk
		c.scaleChunk = chunk
		if c.scaleChunk > defaultScaleChunk {
			c.scaleChunk = defaultScaleChunk
		}
	}
}

// SetEvalDelay installs a chaos knob: every item evaluated locally by this
// coordinator sleeps d first. It exists to stretch sweeps so kill-mid-sweep
// tests (and demos) have a window to hit; production leaves it zero.
func (c *Coordinator) SetEvalDelay(d time.Duration) {
	if c != nil {
		c.evalDelay = d
	}
}

// Enabled reports whether the coordinator has peers to shard onto.
func (c *Coordinator) Enabled() bool { return c != nil && len(c.peers) > 0 }

// Active reports whether sweeps should run through the coordinator at all:
// it has peers to fan out to, or a checkpoint store that makes even a
// single-process sweep resumable.
func (c *Coordinator) Active() bool { return c != nil && (len(c.peers) > 0 || c.ckpt != nil) }

// Peers returns the configured peer URLs.
func (c *Coordinator) Peers() []string {
	if c == nil {
		return nil
	}
	return append([]string(nil), c.peers...)
}

// activePeers is the shard-assignment set: the prober's healthy peers when
// health tracking is on, the static list otherwise.
func (c *Coordinator) activePeers() []string {
	if c.prober == nil {
		return c.peers
	}
	return c.prober.Healthy()
}

// pullerCount weights a peer's shard-pull concurrency by probe latency:
// peers within 1.5x of the fastest EWMA (or not yet measured) pull two
// shards at a time, laggards one.
func (c *Coordinator) pullerCount(peer string, peers []string) int {
	if c.prober == nil {
		return 1
	}
	min := 0.0
	for _, u := range peers {
		if e := c.prober.EwmaNs(u); e > 0 && (min == 0 || e < min) {
			min = e
		}
	}
	if min == 0 {
		return 2 // nothing measured yet: every peer starts fast
	}
	if e := c.prober.EwmaNs(peer); e == 0 || e <= 1.5*min {
		return 2
	}
	return 1
}

// chaosSleep implements the eval-delay knob, respecting cancellation.
func chaosSleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Explore shards the design space across the peers and merges the evaluated
// points into the same Outcome a local dse sweep produces — bit-identical,
// including under per-shard failover (see runShards). A non-empty ckptKey
// (the job's canonical result key) checkpoints completed shards when a
// checkpoint store is installed, and resumes any shard a previous attempt —
// this replica's or a dead peer coordinator's — already persisted.
func (c *Coordinator) Explore(ctx context.Context, space dse.Space, kernels []workload.Kernel, names []string, budgetW float64, opts powopt.Technique, ckptKey string) (dse.Outcome, error) {
	pts := space.Points()
	evals := make([]dse.Eval, len(pts))
	filled := make([]atomic.Bool, len(pts))
	job := shardRun{
		n:     len(pts),
		chunk: c.ckptChunk,
		makeReq: func(sh shard) (string, any) {
			return "/v1/internal/shard/explore", ExploreShardRequest{
				V: protoVersion, CUs: space.CUs, FreqsMHz: space.FreqsMHz, BWsTBps: space.BWsTBps,
				GPUChiplets: space.GPUChiplets, HBMStackGBs: space.HBMStackGBs, ExtModules: space.ExtModules,
				Kernels: names, BudgetW: budgetW, Opts: uint(opts), Start: sh.start, End: sh.end,
			}
		},
		apply: func(l shardLine) error {
			if l.Type != "eval" || l.Eval == nil {
				return fmt.Errorf("cluster: unexpected %q line in explore stream", l.Type)
			}
			if l.Index < 0 || l.Index >= len(pts) {
				return fmt.Errorf("cluster: eval index %d out of the %d-point space", l.Index, len(pts))
			}
			evals[l.Index] = *l.Eval
			filled[l.Index].Store(true)
			return nil
		},
		local: func(ctx context.Context, sh shard) error {
			return parallelRange(ctx, sh.end-sh.start, func(ctx context.Context, i int) error {
				chaosSleep(ctx, c.evalDelay)
				ev, err := dse.EvaluatePointContext(ctx, pts[sh.start+i], kernels, budgetW, opts)
				if err != nil {
					return err
				}
				evals[sh.start+i] = ev
				filled[sh.start+i].Store(true)
				return nil
			})
		},
	}
	if c.ckpt != nil && ckptKey != "" {
		prefix := fmt.Sprintf("ck:explore:%d:%s:", protoVersion, ckptKey)
		job.loadCkpt = func(sh shard) bool {
			data, ok := c.ckpt.Get(fmt.Sprintf("%s%d-%d", prefix, sh.start, sh.end))
			if !ok {
				return false
			}
			var part []dse.Eval
			if err := json.Unmarshal(data, &part); err != nil || len(part) != sh.end-sh.start {
				return false
			}
			for i := range part {
				evals[sh.start+i] = part[i]
				filled[sh.start+i].Store(true)
			}
			return true
		}
		job.saveCkpt = func(sh shard) {
			b, err := json.Marshal(evals[sh.start:sh.end])
			if err != nil {
				return
			}
			if c.ckpt.Put(fmt.Sprintf("%s%d-%d", prefix, sh.start, sh.end), b) == nil {
				c.ckptCtr.Inc()
			}
		}
	}
	if err := c.runShards(ctx, job); err != nil {
		return dse.Outcome{}, err
	}
	for i := range filled {
		if !filled[i].Load() {
			return dse.Outcome{}, fmt.Errorf("cluster: point %d never evaluated (coordinator bug)", i)
		}
	}
	return dse.Finalize(evals, kernels, budgetW, opts), nil
}

// EvaluatePoints shards an explicit design-point list — a surrogate
// explorer's acquisition batch — across the peers and returns the Evals in
// list order, each computed by dse.EvaluatePointContext exactly as a grid
// shard computes it (MeanScore zero; the explorer's Finalize assigns it).
// Batches are transient mid-acquisition state, so they are never
// checkpointed: a restarted surrogate job replays its seeded acquisition
// from the (cached) evaluations instead. The shardRun machinery — pullers,
// retire-on-failure, requeue, local fallback — is exactly the grid path's.
func (c *Coordinator) EvaluatePoints(ctx context.Context, pts []dse.Point, kernels []workload.Kernel, names []string, budgetW float64, opts powopt.Technique) ([]dse.Eval, error) {
	evals := make([]dse.Eval, len(pts))
	filled := make([]atomic.Bool, len(pts))
	job := shardRun{
		n:     len(pts),
		chunk: c.ckptChunk,
		makeReq: func(sh shard) (string, any) {
			return "/v1/internal/shard/explore", ExploreShardRequest{
				V: protoVersion, Points: pts[sh.start:sh.end],
				Kernels: names, BudgetW: budgetW, Opts: uint(opts), Start: sh.start, End: sh.end,
			}
		},
		apply: func(l shardLine) error {
			if l.Type != "eval" || l.Eval == nil {
				return fmt.Errorf("cluster: unexpected %q line in explore stream", l.Type)
			}
			if l.Index < 0 || l.Index >= len(pts) {
				return fmt.Errorf("cluster: eval index %d out of the %d-point batch", l.Index, len(pts))
			}
			evals[l.Index] = *l.Eval
			filled[l.Index].Store(true)
			return nil
		},
		local: func(ctx context.Context, sh shard) error {
			return parallelRange(ctx, sh.end-sh.start, func(ctx context.Context, i int) error {
				chaosSleep(ctx, c.evalDelay)
				ev, err := dse.EvaluatePointContext(ctx, pts[sh.start+i], kernels, budgetW, opts)
				if err != nil {
					return err
				}
				evals[sh.start+i] = ev
				filled[sh.start+i].Store(true)
				return nil
			})
		},
	}
	if err := c.runShards(ctx, job); err != nil {
		return nil, err
	}
	for i := range filled {
		if !filled[i].Load() {
			return nil, fmt.Errorf("cluster: batch point %d never evaluated (coordinator bug)", i)
		}
	}
	return evals, nil
}

// Scale shards a machine-scale projection's node counts across the peers
// and returns the per-size evaluations in size order. ckptKey works as in
// Explore.
func (c *Coordinator) Scale(ctx context.Context, kind string, spec fabric.LinkSpec, k workload.Kernel, rate float64, sizes []int, mode fabric.Mode, mask faults.Mask, maskStr string, seed int64, ckptKey string) ([]ScaleEval, error) {
	out := make([]ScaleEval, len(sizes))
	filled := make([]atomic.Bool, len(sizes))
	job := shardRun{
		n:     len(sizes),
		chunk: c.scaleChunk,
		makeReq: func(sh shard) (string, any) {
			return "/v1/internal/shard/scale", ScaleShardRequest{
				V: protoVersion, Kernel: k.Name, Topology: kind, Sizes: sizes, Mode: mode.String(),
				LinkGBps: spec.BandwidthGBps, LatencyNs: spec.LatencyNs, Ideal: spec.Ideal,
				Mask: maskStr, Seed: seed, Start: sh.start, End: sh.end,
			}
		},
		apply: func(l shardLine) error {
			if l.Type != "scale" || l.Scale == nil {
				return fmt.Errorf("cluster: unexpected %q line in scale stream", l.Type)
			}
			if l.Index < 0 || l.Index >= len(sizes) {
				return fmt.Errorf("cluster: scale index %d out of %d sizes", l.Index, len(sizes))
			}
			out[l.Index] = *l.Scale
			filled[l.Index].Store(true)
			return nil
		},
		local: func(ctx context.Context, sh shard) error {
			for i := sh.start; i < sh.end; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				chaosSleep(ctx, c.evalDelay)
				se, err := EvalScale(kind, spec, k, rate, sizes[i], mode, mask, seed)
				if err != nil {
					return err
				}
				out[i] = se
				filled[i].Store(true)
			}
			return nil
		},
	}
	if c.ckpt != nil && ckptKey != "" {
		prefix := fmt.Sprintf("ck:scale:%d:%s:", protoVersion, ckptKey)
		job.loadCkpt = func(sh shard) bool {
			data, ok := c.ckpt.Get(fmt.Sprintf("%s%d-%d", prefix, sh.start, sh.end))
			if !ok {
				return false
			}
			var part []ScaleEval
			if err := json.Unmarshal(data, &part); err != nil || len(part) != sh.end-sh.start {
				return false
			}
			for i := range part {
				out[sh.start+i] = part[i]
				filled[sh.start+i].Store(true)
			}
			return true
		}
		job.saveCkpt = func(sh shard) {
			b, err := json.Marshal(out[sh.start:sh.end])
			if err != nil {
				return
			}
			if c.ckpt.Put(fmt.Sprintf("%s%d-%d", prefix, sh.start, sh.end), b) == nil {
				c.ckptCtr.Inc()
			}
		}
	}
	if err := c.runShards(ctx, job); err != nil {
		return nil, err
	}
	for i := range filled {
		if !filled[i].Load() {
			return nil, fmt.Errorf("cluster: size %d never evaluated (coordinator bug)", sizes[i])
		}
	}
	return out, nil
}

// shardRun is one sweep's sharding plan: the index-space size, the request
// builder and line-merge callback for the peer path, the local evaluator,
// and — when checkpointing — the shard resume/persist hooks.
type shardRun struct {
	n        int
	chunk    int
	makeReq  func(shard) (string, any)
	apply    func(shardLine) error
	local    func(context.Context, shard) error
	loadCkpt func(shard) bool // nil disables checkpointing
	saveCkpt func(shard)
}

// runShards partitions the job's index space into shards and drives them to
// completion: pullers (one or two per healthy peer, by probe latency) pull
// shards from a shared queue and stream their results; a shard whose stream
// fails is requeued for the surviving peers (the failed peer is retired for
// the rest of the job and reported to the prober); shards left over when
// every peer has been retired are evaluated locally via the fallback — the
// coordinator is itself a capable replica, so total peer loss degrades to a
// single-process sweep instead of an error.
//
// With checkpointing on, shards are fixed-size chunks (peer-independent
// boundaries), shards whose partial is already persisted are resumed without
// dispatch, and every completed shard is persisted before being counted
// done.
func (c *Coordinator) runShards(ctx context.Context, job shardRun) error {
	var shards []shard
	ckpt := job.loadCkpt != nil
	peers := c.activePeers()
	if ckpt {
		shards = chunked(job.n, job.chunk)
	} else {
		shards = partition(job.n, len(peers)*c.shardsPer)
	}
	if len(shards) == 0 {
		return nil
	}
	todo := shards[:0:0]
	for _, sh := range shards {
		if ckpt && job.loadCkpt(sh) {
			c.resumedCtr.Inc()
			continue
		}
		todo = append(todo, sh)
	}
	if len(todo) == 0 {
		return nil
	}
	pending := make(chan shard, len(todo))
	for _, sh := range todo {
		pending <- sh
	}
	var remaining atomic.Int64
	remaining.Store(int64(len(todo)))
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, peer := range peers {
		var retired atomic.Bool // shared by this peer's pullers
		for p := 0; p < c.pullerCount(peer, peers); p++ {
			wg.Add(1)
			go func(peer string, retired *atomic.Bool) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					case <-ctx.Done():
						return
					case sh := <-pending:
						if retired.Load() {
							pending <- sh
							return
						}
						c.dispatched.Inc()
						if err := c.runShard(ctx, peer, sh, job.makeReq, job.apply); err != nil {
							// Put the shard back for the survivors and retire
							// this peer: a worker that failed once (crashed,
							// drained, unreachable) is not retried this job.
							pending <- sh
							retired.Store(true)
							if ctx.Err() == nil {
								c.peerFails.Inc()
								c.retries.Inc()
								c.prober.ReportFailure(peer)
							}
							return
						}
						c.prober.ReportSuccess(peer, 0)
						if job.saveCkpt != nil {
							job.saveCkpt(sh)
						}
						if remaining.Add(-1) == 0 {
							close(done)
							return
						}
					}
				}
			}(peer, &retired)
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Whatever is left had no surviving peer to run on.
	for remaining.Load() > 0 {
		select {
		case sh := <-pending:
			c.localShards.Inc()
			if err := job.local(ctx, sh); err != nil {
				return err
			}
			if job.saveCkpt != nil {
				job.saveCkpt(sh)
			}
			remaining.Add(-1)
		default:
			return errors.New("cluster: shard accounting mismatch (coordinator bug)")
		}
	}
	return nil
}

// runShard posts one shard to a peer and applies its streamed lines. Any
// transport error, non-200 status, malformed line, or a stream that ends
// without the "done" trailer fails the shard.
func (c *Coordinator) runShard(ctx context.Context, peer string, sh shard, makeReq func(shard) (string, any), apply func(shardLine) error) error {
	path, reqBody := makeReq(sh)
	body, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("cluster: shard request marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("cluster: peer %s: %s: %s", peer, resp.Status, bytes.TrimSpace(msg))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	items := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l shardLine
		if err := json.Unmarshal(line, &l); err != nil {
			return fmt.Errorf("cluster: bad stream line from %s: %w", peer, err)
		}
		switch l.Type {
		case "done":
			if l.Count != sh.end-sh.start {
				return fmt.Errorf("cluster: peer %s finished %d items, want %d", peer, l.Count, sh.end-sh.start)
			}
			return nil
		case "error":
			return fmt.Errorf("cluster: peer %s shard error: %s", peer, l.Error)
		default:
			if err := apply(l); err != nil {
				return err
			}
			c.itemsCtr.Inc()
			items++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cluster: stream from %s cut after %d items: %w", peer, items, err)
	}
	return fmt.Errorf("cluster: stream from %s ended after %d items without done", peer, items)
}

// Ping probes one peer's internal liveness route.
func (c *Coordinator) Ping(ctx context.Context, peer string) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/internal/ping", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s: %s", peer, resp.Status)
	}
	return nil
}
