package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ena/internal/dse"
	"ena/internal/fabric"
	"ena/internal/faults"
	"ena/internal/obs"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// DefaultShardsPerPeer is how many shards each peer gets per job: more than
// one so a failed peer forfeits only a slice of the work and the survivors
// rebalance at shard granularity.
const DefaultShardsPerPeer = 3

// Coordinator fans sweep jobs out to enaserve worker peers. A nil
// Coordinator (or one with no peers) is disabled: callers fall back to local
// evaluation. Safe for concurrent use by multiple jobs.
type Coordinator struct {
	peers     []string
	client    *http.Client
	shardsPer int

	dispatched  *obs.Counter
	retries     *obs.Counter
	peerFails   *obs.Counter
	itemsCtr    *obs.Counter
	localShards *obs.Counter
	peersGauge  *obs.Gauge
}

// NewCoordinator builds a coordinator over the given peer base URLs
// (e.g. "http://10.0.0.2:8080"). Metrics land in reg under cluster.*.
func NewCoordinator(peers []string, reg *obs.Registry) *Coordinator {
	c := &Coordinator{
		peers: append([]string(nil), peers...),
		// No overall client timeout: shard streams legitimately run long.
		// Dial/TLS inherit http.DefaultTransport's limits, and every request
		// carries the job context.
		client:      &http.Client{},
		shardsPer:   DefaultShardsPerPeer,
		dispatched:  reg.Counter("cluster.shards_dispatched"),
		retries:     reg.Counter("cluster.shard_retries"),
		peerFails:   reg.Counter("cluster.peer_failures"),
		itemsCtr:    reg.Counter("cluster.items_streamed"),
		localShards: reg.Counter("cluster.local_fallback_shards"),
		peersGauge:  reg.Gauge("cluster.peers"),
	}
	c.peersGauge.Set(float64(len(c.peers)))
	return c
}

// Enabled reports whether the coordinator has peers to shard onto.
func (c *Coordinator) Enabled() bool { return c != nil && len(c.peers) > 0 }

// Peers returns the configured peer URLs.
func (c *Coordinator) Peers() []string {
	if c == nil {
		return nil
	}
	return append([]string(nil), c.peers...)
}

// Explore shards the design space across the peers and merges the evaluated
// points into the same Outcome a local dse sweep produces — bit-identical,
// including under per-shard failover (see runShards).
func (c *Coordinator) Explore(ctx context.Context, space dse.Space, kernels []workload.Kernel, names []string, budgetW float64, opts powopt.Technique) (dse.Outcome, error) {
	pts := space.Points()
	evals := make([]dse.Eval, len(pts))
	filled := make([]atomic.Bool, len(pts))
	makeReq := func(sh shard) (string, any) {
		return "/v1/internal/shard/explore", ExploreShardRequest{
			V: protoVersion, CUs: space.CUs, FreqsMHz: space.FreqsMHz, BWsTBps: space.BWsTBps,
			Kernels: names, BudgetW: budgetW, Opts: uint(opts), Start: sh.start, End: sh.end,
		}
	}
	apply := func(l shardLine) error {
		if l.Type != "eval" || l.Eval == nil {
			return fmt.Errorf("cluster: unexpected %q line in explore stream", l.Type)
		}
		if l.Index < 0 || l.Index >= len(pts) {
			return fmt.Errorf("cluster: eval index %d out of the %d-point space", l.Index, len(pts))
		}
		evals[l.Index] = *l.Eval
		filled[l.Index].Store(true)
		return nil
	}
	local := func(ctx context.Context, sh shard) error {
		for i := sh.start; i < sh.end; i++ {
			ev, err := dse.EvaluatePointContext(ctx, pts[i], kernels, budgetW, opts)
			if err != nil {
				return err
			}
			evals[i] = ev
			filled[i].Store(true)
		}
		return nil
	}
	if err := c.runShards(ctx, len(pts), makeReq, apply, local); err != nil {
		return dse.Outcome{}, err
	}
	for i := range filled {
		if !filled[i].Load() {
			return dse.Outcome{}, fmt.Errorf("cluster: point %d never evaluated (coordinator bug)", i)
		}
	}
	return dse.Finalize(evals, kernels, budgetW, opts), nil
}

// Scale shards a machine-scale projection's node counts across the peers
// and returns the per-size evaluations in size order.
func (c *Coordinator) Scale(ctx context.Context, kind string, spec fabric.LinkSpec, k workload.Kernel, rate float64, sizes []int, mode fabric.Mode, mask faults.Mask, maskStr string, seed int64) ([]ScaleEval, error) {
	out := make([]ScaleEval, len(sizes))
	filled := make([]atomic.Bool, len(sizes))
	makeReq := func(sh shard) (string, any) {
		return "/v1/internal/shard/scale", ScaleShardRequest{
			V: protoVersion, Kernel: k.Name, Topology: kind, Sizes: sizes, Mode: mode.String(),
			LinkGBps: spec.BandwidthGBps, LatencyNs: spec.LatencyNs, Ideal: spec.Ideal,
			Mask: maskStr, Seed: seed, Start: sh.start, End: sh.end,
		}
	}
	apply := func(l shardLine) error {
		if l.Type != "scale" || l.Scale == nil {
			return fmt.Errorf("cluster: unexpected %q line in scale stream", l.Type)
		}
		if l.Index < 0 || l.Index >= len(sizes) {
			return fmt.Errorf("cluster: scale index %d out of %d sizes", l.Index, len(sizes))
		}
		out[l.Index] = *l.Scale
		filled[l.Index].Store(true)
		return nil
	}
	local := func(ctx context.Context, sh shard) error {
		for i := sh.start; i < sh.end; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			se, err := EvalScale(kind, spec, k, rate, sizes[i], mode, mask, seed)
			if err != nil {
				return err
			}
			out[i] = se
			filled[i].Store(true)
		}
		return nil
	}
	if err := c.runShards(ctx, len(sizes), makeReq, apply, local); err != nil {
		return nil, err
	}
	for i := range filled {
		if !filled[i].Load() {
			return nil, fmt.Errorf("cluster: size %d never evaluated (coordinator bug)", sizes[i])
		}
	}
	return out, nil
}

// runShards partitions n items into shards and drives them to completion:
// one goroutine per peer pulls shards from a shared queue and streams their
// results; a shard whose stream fails is requeued for the surviving peers
// (the failed peer is retired for the rest of the job); shards left over
// when every peer has been retired are evaluated locally via the fallback —
// the coordinator is itself a capable replica, so total peer loss degrades
// to a single-process sweep instead of an error.
func (c *Coordinator) runShards(ctx context.Context, n int, makeReq func(shard) (string, any), apply func(shardLine) error, local func(context.Context, shard) error) error {
	shards := partition(n, len(c.peers)*c.shardsPer)
	if len(shards) == 0 {
		return nil
	}
	pending := make(chan shard, len(shards))
	for _, sh := range shards {
		pending <- sh
	}
	var remaining atomic.Int64
	remaining.Store(int64(len(shards)))
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, peer := range c.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				case sh := <-pending:
					c.dispatched.Inc()
					if err := c.runShard(ctx, peer, sh, makeReq, apply); err != nil {
						// Put the shard back for the survivors and retire
						// this peer: a worker that failed once (crashed,
						// drained, unreachable) is not retried this job.
						pending <- sh
						if ctx.Err() == nil {
							c.peerFails.Inc()
							c.retries.Inc()
						}
						return
					}
					if remaining.Add(-1) == 0 {
						close(done)
						return
					}
				}
			}
		}(peer)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Whatever is left had no surviving peer to run on.
	for remaining.Load() > 0 {
		select {
		case sh := <-pending:
			c.localShards.Inc()
			if err := local(ctx, sh); err != nil {
				return err
			}
			remaining.Add(-1)
		default:
			return errors.New("cluster: shard accounting mismatch (coordinator bug)")
		}
	}
	return nil
}

// runShard posts one shard to a peer and applies its streamed lines. Any
// transport error, non-200 status, malformed line, or a stream that ends
// without the "done" trailer fails the shard.
func (c *Coordinator) runShard(ctx context.Context, peer string, sh shard, makeReq func(shard) (string, any), apply func(shardLine) error) error {
	path, reqBody := makeReq(sh)
	body, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("cluster: shard request marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("cluster: peer %s: %s: %s", peer, resp.Status, bytes.TrimSpace(msg))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	items := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l shardLine
		if err := json.Unmarshal(line, &l); err != nil {
			return fmt.Errorf("cluster: bad stream line from %s: %w", peer, err)
		}
		switch l.Type {
		case "done":
			if l.Count != sh.end-sh.start {
				return fmt.Errorf("cluster: peer %s finished %d items, want %d", peer, l.Count, sh.end-sh.start)
			}
			return nil
		case "error":
			return fmt.Errorf("cluster: peer %s shard error: %s", peer, l.Error)
		default:
			if err := apply(l); err != nil {
				return err
			}
			c.itemsCtr.Inc()
			items++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cluster: stream from %s cut after %d items: %w", peer, items, err)
	}
	return fmt.Errorf("cluster: stream from %s ended after %d items without done", peer, items)
}

// Ping probes one peer's internal liveness route.
func (c *Coordinator) Ping(ctx context.Context, peer string) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/internal/ping", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s: %s", peer, resp.Status)
	}
	return nil
}
