package cluster

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"ena/internal/dse"
	"ena/internal/obs"
	"ena/internal/surrogate"
)

// newFlakyWorkerServer wraps a real worker in the mid-stream-death proxy of
// TestExploreFailoverBitIdentical.
func newFlakyWorkerServer(t *testing.T, maxLines int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(&flakyWorker{inner: WorkerHandler(obs.NewRegistry()), maxLines: maxLines})
	t.Cleanup(srv.Close)
	return srv
}

// TestEvaluatePointsShardedBitIdentical: an explicit point list — the shape
// of a surrogate acquisition batch, mixing classic and expanded-packaging
// points — fans out across workers and merges bit-identically to local
// evaluation, with every point streamed over the wire.
func TestEvaluatePointsShardedBitIdentical(t *testing.T) {
	kernels, names := testKernels(t)
	const budget = 160.0
	pts := []dse.Point{
		{CUs: 320, FreqMHz: 1000, BWTBps: 3},
		{CUs: 256, FreqMHz: 800, BWTBps: 1, GPUChiplets: 4},
		{CUs: 192, FreqMHz: 1200, BWTBps: 3, HBMStackGB: 16, ExtModules: 2},
		{CUs: 384, FreqMHz: 1000, BWTBps: 7, GPUChiplets: 8, HBMStackGB: 32, ExtModules: 4},
		{CUs: 320, FreqMHz: 800, BWTBps: 2},
	}
	want := make([]dse.Eval, len(pts))
	for i, p := range pts {
		ev, err := dse.EvaluatePointContext(context.Background(), p, kernels, budget, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ev
	}

	w1, w2 := newWorkerServer(t), newWorkerServer(t)
	reg := obs.NewRegistry()
	c := NewCoordinator([]string{w1.URL, w2.URL}, reg)
	got, err := c.EvaluatePoints(context.Background(), pts, kernels, names, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded point-list evals differ from local evaluation")
	}
	if n := reg.Counter("cluster.items_streamed").Value(); n != int64(len(pts)) {
		t.Errorf("items_streamed = %d, want %d (did shards fall back locally?)", n, len(pts))
	}
	if n := reg.Counter("cluster.local_fallback_shards").Value(); n != 0 {
		t.Errorf("local_fallback_shards = %d on the happy path", n)
	}
}

// TestSurrogateShardedBitIdentical is the acquisition-round sharding
// contract: a surrogate exploration whose batches fan out through the
// coordinator produces the bit-identical Result of a single-process run —
// same trajectory, same rounds, every float of the Outcome equal.
func TestSurrogateShardedBitIdentical(t *testing.T) {
	space := testSpace()
	kernels, names := testKernels(t)
	const budget = 160.0
	opts := surrogate.Options{Budget: 12, Seed: 17, BatchSize: 4, InitEvals: 4}

	local, err := surrogate.Explore(context.Background(), space, kernels, budget, 0, opts, dse.Instr{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := newWorkerServer(t), newWorkerServer(t)
	c := NewCoordinator([]string{w1.URL, w2.URL}, obs.NewRegistry())
	sharded, err := surrogate.Explore(context.Background(), space, kernels, budget, 0, opts, dse.Instr{},
		func(ctx context.Context, pts []dse.Point) ([]dse.Eval, error) {
			return c.EvaluatePoints(ctx, pts, kernels, names, budget, 0)
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, sharded) {
		t.Fatalf("sharded surrogate run diverged from single-process run\n local traj %v\nsharded traj %v",
			local.Trajectory, sharded.Trajectory)
	}
}

// TestSurrogateShardedSurvivesPeerDeath: batches still merge bit-identically
// when a peer dies mid-stream and its shards retry on the survivor.
func TestSurrogateShardedSurvivesPeerDeath(t *testing.T) {
	space := testSpace()
	kernels, names := testKernels(t)
	const budget = 160.0
	opts := surrogate.Options{Budget: 14, Seed: 23, BatchSize: 5, InitEvals: 4}

	local, err := surrogate.Explore(context.Background(), space, kernels, budget, 0, opts, dse.Instr{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	healthy := newWorkerServer(t)
	flaky := newFlakyWorkerServer(t, 2)
	c := NewCoordinator([]string{flaky.URL, healthy.URL}, obs.NewRegistry())
	sharded, err := surrogate.Explore(context.Background(), space, kernels, budget, 0, opts, dse.Instr{},
		func(ctx context.Context, pts []dse.Point) ([]dse.Eval, error) {
			return c.EvaluatePoints(ctx, pts, kernels, names, budget, 0)
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, sharded) {
		t.Fatal("surrogate run with mid-stream peer death diverged from single-process run")
	}
}

// TestExploreExpandedSpaceSharded: grid-form shards carrying the packaging
// axes reproduce the single-process expanded sweep bit-identically.
func TestExploreExpandedSpaceSharded(t *testing.T) {
	space := testSpace()
	space.GPUChiplets = []int{4, 8}
	space.ExtModules = []int{2, 4}
	kernels, names := testKernels(t)
	const budget = 160.0

	want := dse.Explore(space, kernels, budget, 0)

	w1, w2 := newWorkerServer(t), newWorkerServer(t)
	c := NewCoordinator([]string{w1.URL, w2.URL}, obs.NewRegistry())
	got, err := c.Explore(context.Background(), space, kernels, names, budget, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded expanded-space sweep differs from the single-process sweep")
	}
}
