package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ena/internal/obs"
)

func TestProberStartsOptimistic(t *testing.T) {
	p := NewProber([]string{"http://a", "http://b"}, time.Second, obs.NewRegistry())
	h := p.Healthy()
	if len(h) != 2 || h[0] != "http://a" || h[1] != "http://b" {
		t.Fatalf("Healthy = %v, want both peers before any probe", h)
	}
}

func TestProberDownAndRejoin(t *testing.T) {
	var fail atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(srv.Close)

	reg := obs.NewRegistry()
	p := NewProber([]string{srv.URL}, 10*time.Millisecond, reg)

	// A reported failure retires the peer immediately.
	p.ReportFailure(srv.URL)
	if len(p.Healthy()) != 0 {
		t.Fatal("peer still healthy after ReportFailure")
	}
	if g := reg.Gauge("cluster.peers_healthy").Value(); g != 0 {
		t.Fatalf("peers_healthy gauge = %v, want 0", g)
	}

	// Probe rounds while the peer answers again: once the backoff expires it
	// rejoins automatically.
	deadline := time.Now().Add(5 * time.Second)
	for len(p.Healthy()) == 0 && time.Now().Before(deadline) {
		p.probeRound(context.Background())
		time.Sleep(5 * time.Millisecond)
	}
	if len(p.Healthy()) != 1 {
		t.Fatal("peer never rejoined after recovering")
	}
	if reg.Counter("cluster.peer_rejoins").Value() == 0 {
		t.Error("rejoin not counted")
	}
	if p.EwmaNs(srv.URL) <= 0 {
		t.Error("no EWMA latency recorded from successful probes")
	}

	// Now the peer actually fails: probes notice without any coordinator
	// involvement.
	fail.Store(true)
	deadline = time.Now().Add(5 * time.Second)
	for len(p.Healthy()) == 1 && time.Now().Before(deadline) {
		p.probeRound(context.Background())
		time.Sleep(5 * time.Millisecond)
	}
	if len(p.Healthy()) != 0 {
		t.Fatal("probe never detected the failing peer")
	}
	if reg.Counter("cluster.probe_failures").Value() == 0 {
		t.Error("probe failure not counted")
	}
}

func TestProberBackoffGrows(t *testing.T) {
	p := NewProber([]string{"http://gone"}, 100*time.Millisecond, obs.NewRegistry())
	var gaps []time.Duration
	for i := 0; i < 5; i++ {
		p.ReportFailure("http://gone")
		p.mu.Lock()
		gaps = append(gaps, time.Until(p.peers["http://gone"].nextProbe))
		p.mu.Unlock()
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] {
			t.Fatalf("backoff shrank: %v", gaps)
		}
	}
	if gaps[len(gaps)-1] > maxProbeBackoff+time.Second {
		t.Fatalf("backoff exceeded cap: %v", gaps[len(gaps)-1])
	}
	// Many more failures must not overflow the shift.
	for i := 0; i < 100; i++ {
		p.ReportFailure("http://gone")
	}
	p.mu.Lock()
	gap := time.Until(p.peers["http://gone"].nextProbe)
	p.mu.Unlock()
	if gap <= 0 || gap > maxProbeBackoff+time.Second {
		t.Fatalf("backoff after 100 failures = %v", gap)
	}
}

func TestProberNilSafe(t *testing.T) {
	var p *Prober
	p.ReportFailure("x")
	p.ReportSuccess("x", time.Millisecond)
	if p.Healthy() != nil || p.EwmaNs("x") != 0 {
		t.Fatal("nil prober not inert")
	}
	p.Run(context.Background()) // returns immediately
}

func TestProberUnknownPeerIgnored(t *testing.T) {
	p := NewProber([]string{"http://a"}, time.Second, obs.NewRegistry())
	p.ReportFailure("http://stranger")
	p.ReportSuccess("http://stranger", time.Millisecond)
	if len(p.Healthy()) != 1 {
		t.Fatal("reports about unknown peers changed membership")
	}
}
