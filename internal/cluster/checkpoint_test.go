package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"ena/internal/dse"
	"ena/internal/exp"
	"ena/internal/fabric"
	"ena/internal/faults"
	"ena/internal/obs"
)

func TestChunkedCoversExactlyOnceAndPeerIndependent(t *testing.T) {
	for _, tc := range []struct{ n, chunk int }{
		{1, 1}, {1, 64}, {7, 3}, {490, 64}, {490, 1}, {64, 64}, {65, 64}, {100, 0},
	} {
		shards := chunked(tc.n, tc.chunk)
		covered := make([]int, tc.n)
		for _, sh := range shards {
			if sh.start >= sh.end {
				t.Fatalf("chunked(%d,%d): empty shard %+v", tc.n, tc.chunk, sh)
			}
			for i := sh.start; i < sh.end; i++ {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("chunked(%d,%d): index %d covered %d times", tc.n, tc.chunk, i, c)
			}
		}
		// Every shard but the last has exactly chunk items — the boundary
		// invariant cross-replica resume rests on.
		want := tc.chunk
		if want < 1 {
			want = 1
		}
		for i, sh := range shards {
			if i < len(shards)-1 && sh.end-sh.start != want {
				t.Fatalf("chunked(%d,%d): shard %d has %d items", tc.n, tc.chunk, i, sh.end-sh.start)
			}
		}
	}
	if chunked(0, 4) != nil {
		t.Fatal("chunked(0, k) should be empty")
	}
}

// memCkpt is an in-memory CkptStore for tests.
type memCkpt struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemCkpt() *memCkpt { return &memCkpt{m: make(map[string][]byte)} }

func (s *memCkpt) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	return b, ok
}

func (s *memCkpt) Put(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), payload...)
	return nil
}

func (s *memCkpt) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func TestExploreCheckpointsAndResumes(t *testing.T) {
	space := testSpace() // 18 points
	kernels, names := testKernels(t)
	const budget = 160.0
	want := dse.Explore(space, kernels, budget, 0)

	cs := newMemCkpt()
	reg1 := obs.NewRegistry()
	c1 := NewCoordinator(nil, reg1) // no peers: checkpointing alone activates it
	c1.EnableCheckpoints(cs, 4)
	if !c1.Active() || c1.Enabled() {
		t.Fatalf("Active=%v Enabled=%v, want true/false", c1.Active(), c1.Enabled())
	}
	got, err := c1.Explore(context.Background(), space, kernels, names, budget, 0, "jobkey")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("checkpointed local sweep differs from plain local sweep")
	}
	wantShards := (18 + 3) / 4
	if n := reg1.Counter("jobs.checkpoints").Value(); n != int64(wantShards) {
		t.Fatalf("jobs.checkpoints = %d, want %d", n, wantShards)
	}
	if cs.len() != wantShards {
		t.Fatalf("store holds %d checkpoints, want %d", cs.len(), wantShards)
	}

	// A second coordinator over the same store — a restarted replica, or the
	// adopter of a dead coordinator's job — resumes every shard without
	// recomputing a single point.
	reg2 := obs.NewRegistry()
	c2 := NewCoordinator(nil, reg2)
	c2.EnableCheckpoints(cs, 4)
	got2, err := c2.Explore(context.Background(), space, kernels, names, budget, 0, "jobkey")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("resumed sweep differs from plain local sweep")
	}
	if n := reg2.Counter("jobs.resumed_shards").Value(); n != int64(wantShards) {
		t.Fatalf("jobs.resumed_shards = %d, want %d", n, wantShards)
	}
	if n := reg2.Counter("cluster.local_fallback_shards").Value(); n != 0 {
		t.Fatalf("resumed run evaluated %d shards locally, want 0", n)
	}

	// A different job key shares nothing.
	reg3 := obs.NewRegistry()
	c3 := NewCoordinator(nil, reg3)
	c3.EnableCheckpoints(cs, 4)
	if _, err := c3.Explore(context.Background(), space, kernels, names, budget, 0, "otherjob"); err != nil {
		t.Fatal(err)
	}
	if n := reg3.Counter("jobs.resumed_shards").Value(); n != 0 {
		t.Fatalf("foreign job resumed %d shards", n)
	}
}

func TestExploreCheckpointsSurvivePeerSetChange(t *testing.T) {
	// A coordinator with two peers writes checkpoints; a peer-less restart
	// resumes them — fixed chunk boundaries must not depend on the peer set.
	space := testSpace()
	kernels, names := testKernels(t)
	const budget = 160.0
	want := dse.Explore(space, kernels, budget, 0)

	cs := newMemCkpt()
	w1, w2 := newWorkerServer(t), newWorkerServer(t)
	c1 := NewCoordinator([]string{w1.URL, w2.URL}, obs.NewRegistry())
	c1.EnableCheckpoints(cs, 5)
	if _, err := c1.Explore(context.Background(), space, kernels, names, budget, 0, "job"); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	c2 := NewCoordinator(nil, reg)
	c2.EnableCheckpoints(cs, 5)
	got, err := c2.Explore(context.Background(), space, kernels, names, budget, 0, "job")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cross-peer-set resume differs from the single-process sweep")
	}
	if n, wantN := reg.Counter("jobs.resumed_shards").Value(), int64((18+4)/5); n != wantN {
		t.Fatalf("jobs.resumed_shards = %d, want %d", n, wantN)
	}
}

func TestScaleCheckpointsAndResumes(t *testing.T) {
	// Scale checkpointing shares the runShards machinery; pin the resume
	// counter through the scale path too.
	kernels, _ := testKernels(t)
	kern := kernels[0]
	rate := exp.NodeRateFor(kern)
	spec := fabric.DefaultLinkSpec()
	sizes := []int{1, 8, 50, 256}
	cs := newMemCkpt()
	c1 := NewCoordinator(nil, obs.NewRegistry())
	c1.EnableCheckpoints(cs, 2)
	want, err := c1.Scale(context.Background(), "torus", spec, kern, rate, sizes, fabric.Weak, faults.Mask{}, "", 0, "sjob")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c2 := NewCoordinator(nil, reg)
	c2.EnableCheckpoints(cs, 2)
	got, err := c2.Scale(context.Background(), "torus", spec, kern, rate, sizes, fabric.Weak, faults.Mask{}, "", 0, "sjob")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed scale differs")
	}
	if n := reg.Counter("jobs.resumed_shards").Value(); n != 2 {
		t.Fatalf("jobs.resumed_shards = %d, want 2", n)
	}
}

func TestCoordinatorSkipsUnhealthyPeers(t *testing.T) {
	// The only peer is marked down before the job starts: every shard must
	// run via local fallback without a single request to the dead peer.
	space := testSpace()
	kernels, names := testKernels(t)
	const budget = 160.0
	want := dse.Explore(space, kernels, budget, 0)

	var hits int32
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "should not be called", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	reg := obs.NewRegistry()
	p := NewProber([]string{dead.URL}, time.Hour, reg)
	p.ReportFailure(dead.URL)
	c := NewCoordinator([]string{dead.URL}, reg)
	c.SetProber(p)
	got, err := c.Explore(context.Background(), space, kernels, names, budget, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Evals, want.Evals) {
		t.Fatal("health-filtered sweep differs from the single-process sweep")
	}
	if hits != 0 {
		t.Fatalf("down peer received %d requests", hits)
	}
	if reg.Counter("cluster.local_fallback_shards").Value() == 0 {
		t.Error("local fallback not counted")
	}
}
