package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"ena/internal/obs"
)

// Prober default tuning.
const (
	DefaultProbeInterval = 2 * time.Second
	probeTimeout         = 5 * time.Second
	maxProbeBackoff      = 30 * time.Second
	// ewmaAlpha weights the latest probe RTT into the peer's smoothed latency.
	ewmaAlpha = 0.3
)

// Prober tracks worker-peer health. Peers start healthy (optimistic — the
// first job does not wait for a probe round); a failure reported by the
// coordinator or observed by a probe marks the peer down, and down peers are
// re-probed on an exponential backoff until they answer, at which point they
// rejoin automatically — a retired peer is a peer resting, not a peer gone.
// Probe RTTs feed an EWMA latency per peer that the coordinator uses to
// weight shard assignment toward fast peers.
//
// A nil *Prober is inert: Healthy returns nil, reports are no-ops.
type Prober struct {
	interval time.Duration
	client   *http.Client

	mu    sync.Mutex
	order []string
	peers map[string]*peerHealth

	probeOK      *obs.Counter
	probeFail    *obs.Counter
	rejoins      *obs.Counter
	failsCtr     *obs.Counter
	healthyGauge *obs.Gauge
}

type peerHealth struct {
	healthy   bool
	ewmaNs    float64
	fails     int       // consecutive failures, drives the probe backoff
	nextProbe time.Time // down peers only: when the next probe is due
}

// NewProber builds a prober over the peer base URLs. interval <= 0 uses
// DefaultProbeInterval. Metrics land in reg under cluster.probe_* /
// cluster.peers_healthy / cluster.peer_rejoins.
func NewProber(peers []string, interval time.Duration, reg *obs.Registry) *Prober {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	p := &Prober{
		interval:     interval,
		client:       &http.Client{Timeout: probeTimeout},
		order:        append([]string(nil), peers...),
		peers:        make(map[string]*peerHealth, len(peers)),
		probeOK:      reg.Counter("cluster.probe_success"),
		probeFail:    reg.Counter("cluster.probe_failures"),
		rejoins:      reg.Counter("cluster.peer_rejoins"),
		failsCtr:     reg.Counter("cluster.peer_failures_reported"),
		healthyGauge: reg.Gauge("cluster.peers_healthy"),
	}
	for _, u := range peers {
		p.peers[u] = &peerHealth{healthy: true}
	}
	p.publishLocked()
	return p
}

// Run probes until ctx ends: healthy peers every interval (their EWMA
// latency stays warm), down peers when their backoff expires. Call it once,
// in its own goroutine.
func (p *Prober) Run(ctx context.Context) {
	if p == nil {
		return
	}
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.probeRound(ctx)
		}
	}
}

func (p *Prober) probeRound(ctx context.Context) {
	now := time.Now()
	var due []string
	p.mu.Lock()
	for _, u := range p.order {
		ph := p.peers[u]
		if ph.healthy || !now.Before(ph.nextProbe) {
			due = append(due, u)
		}
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, u := range due {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			start := time.Now()
			if err := p.probe(ctx, u); err != nil {
				p.probeFail.Inc()
				p.markDown(u)
				return
			}
			p.probeOK.Inc()
			p.ReportSuccess(u, time.Since(start))
		}(u)
	}
	wg.Wait()
}

func (p *Prober) probe(ctx context.Context, peer string) error {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/internal/ping", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errStatus(resp.Status)
	}
	return nil
}

type errStatus string

func (e errStatus) Error() string { return "cluster: probe: " + string(e) }

// ReportFailure marks a peer down (called by the coordinator when a shard
// stream fails, and by failed probes). The peer's next probe backs off
// exponentially with consecutive failures, capped at maxProbeBackoff.
func (p *Prober) ReportFailure(peer string) {
	if p == nil {
		return
	}
	p.failsCtr.Inc()
	p.markDown(peer)
}

func (p *Prober) markDown(peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ph, ok := p.peers[peer]
	if !ok {
		return
	}
	ph.healthy = false
	if ph.fails < 30 { // cap the shift, not just the backoff
		ph.fails++
	}
	backoff := p.interval << (ph.fails - 1)
	if backoff > maxProbeBackoff || backoff <= 0 {
		backoff = maxProbeBackoff
	}
	ph.nextProbe = time.Now().Add(backoff)
	p.publishLocked()
}

// ReportSuccess marks a peer healthy and folds an observed RTT (probe or
// shard round-trip start) into its EWMA latency. A down peer rejoins.
func (p *Prober) ReportSuccess(peer string, rtt time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ph, ok := p.peers[peer]
	if !ok {
		return
	}
	if !ph.healthy {
		p.rejoins.Inc()
	}
	ph.healthy = true
	ph.fails = 0
	if rtt > 0 {
		if ph.ewmaNs == 0 {
			ph.ewmaNs = float64(rtt.Nanoseconds())
		} else {
			ph.ewmaNs = ewmaAlpha*float64(rtt.Nanoseconds()) + (1-ewmaAlpha)*ph.ewmaNs
		}
	}
	p.publishLocked()
}

// Healthy returns the currently healthy peers, in configuration order.
func (p *Prober) Healthy() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.order))
	for _, u := range p.order {
		if p.peers[u].healthy {
			out = append(out, u)
		}
	}
	return out
}

// EwmaNs returns a peer's smoothed observed latency in nanoseconds (0 when
// nothing has been observed yet).
func (p *Prober) EwmaNs(peer string) float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ph, ok := p.peers[peer]; ok {
		return ph.ewmaNs
	}
	return 0
}

// publishLocked refreshes the healthy-peer gauge. Callers hold p.mu (or the
// prober is freshly built and unshared).
func (p *Prober) publishLocked() {
	n := 0
	for _, ph := range p.peers {
		if ph.healthy {
			n++
		}
	}
	p.healthyGauge.Set(float64(n))
}
