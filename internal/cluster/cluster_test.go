package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"ena/internal/dse"
	"ena/internal/exp"
	"ena/internal/fabric"
	"ena/internal/faults"
	"ena/internal/obs"
	"ena/internal/workload"
)

func TestPartitionCoversExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {1, 8}, {7, 3}, {490, 6}, {490, 1}, {5, 5}, {100, 7}, {3, 16},
	} {
		shards := partition(tc.n, tc.k)
		covered := make([]int, tc.n)
		for _, sh := range shards {
			if sh.start >= sh.end {
				t.Fatalf("partition(%d,%d): empty shard %+v", tc.n, tc.k, sh)
			}
			for i := sh.start; i < sh.end; i++ {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("partition(%d,%d): index %d covered %d times", tc.n, tc.k, i, c)
			}
		}
		if len(shards) > tc.k || (tc.n >= tc.k && len(shards) != tc.k) {
			t.Fatalf("partition(%d,%d) = %d shards", tc.n, tc.k, len(shards))
		}
	}
	if partition(0, 4) != nil {
		t.Fatal("partition(0, k) should be empty")
	}
}

// testSpace is a small but non-trivial sweep: 3 x 3 x 2 = 18 points.
func testSpace() dse.Space {
	return dse.Space{
		CUs:      []int{192, 256, 320},
		FreqsMHz: []float64{800, 1000, 1200},
		BWsTBps:  []float64{1, 3},
	}
}

func testKernels(t *testing.T) ([]workload.Kernel, []string) {
	t.Helper()
	names := []string{"CoMD", "HPGMG", "SNAP"}
	ks := make([]workload.Kernel, len(names))
	for i, n := range names {
		k, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ks[i] = k
	}
	return ks, names
}

func newWorkerServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(WorkerHandler(obs.NewRegistry()))
	t.Cleanup(srv.Close)
	return srv
}

func TestExploreShardedBitIdentical(t *testing.T) {
	space := testSpace()
	kernels, names := testKernels(t)
	const budget = 160.0

	want := dse.Explore(space, kernels, budget, 0)

	w1, w2 := newWorkerServer(t), newWorkerServer(t)
	reg := obs.NewRegistry()
	c := NewCoordinator([]string{w1.URL, w2.URL}, reg)
	got, err := c.Explore(context.Background(), space, kernels, names, budget, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Evals, want.Evals) {
		t.Fatal("sharded Evals differ from the single-process sweep")
	}
	if !reflect.DeepEqual(got.BestMean, want.BestMean) {
		t.Fatalf("sharded BestMean = %+v, want %+v", got.BestMean, want.BestMean)
	}
	if !reflect.DeepEqual(got.BestPerKernel, want.BestPerKernel) {
		t.Fatal("sharded BestPerKernel differs from the single-process sweep")
	}
	// Bit-identity must come from the workers, not from a silent local
	// fallback: every point streamed over the wire, no peer was retired.
	// (This is the assertion that catches a worker handler rejecting every
	// shard — local fallback would still produce identical results.)
	if n, want := reg.Counter("cluster.items_streamed").Value(), len(space.Points()); n != int64(want) {
		t.Errorf("items_streamed = %d, want %d (did shards fall back locally?)", n, want)
	}
	if n := reg.Counter("cluster.peer_failures").Value(); n != 0 {
		t.Errorf("peer_failures = %d on the happy path", n)
	}
	if n := reg.Counter("cluster.local_fallback_shards").Value(); n != 0 {
		t.Errorf("local_fallback_shards = %d on the happy path", n)
	}
}

// flakyWorker proxies to a real worker handler but kills the response stream
// after a few lines of the first shard it serves — simulating a worker
// process dying mid-stream.
type flakyWorker struct {
	inner    http.Handler
	tripped  atomic.Bool
	maxLines int
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.tripped.Swap(true) {
		// Subsequent shards: refuse outright (the process is "gone").
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	lw := &lineLimitWriter{ResponseWriter: w, max: f.maxLines}
	f.inner.ServeHTTP(lw, r)
}

type lineLimitWriter struct {
	http.ResponseWriter
	lines int
	max   int
}

func (l *lineLimitWriter) Write(b []byte) (int, error) {
	if l.lines >= l.max {
		// Drop the bytes: the stream just stops, no done line ever arrives.
		return 0, http.ErrAbortHandler
	}
	l.lines++
	return l.ResponseWriter.Write(b)
}

func (l *lineLimitWriter) Flush() {
	if fl, ok := l.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func TestExploreFailoverBitIdentical(t *testing.T) {
	space := testSpace()
	kernels, names := testKernels(t)
	const budget = 160.0

	want := dse.Explore(space, kernels, budget, 0)

	healthy := newWorkerServer(t)
	flaky := httptest.NewServer(&flakyWorker{inner: WorkerHandler(obs.NewRegistry()), maxLines: 2})
	t.Cleanup(flaky.Close)

	reg := obs.NewRegistry()
	c := NewCoordinator([]string{flaky.URL, healthy.URL}, reg)
	got, err := c.Explore(context.Background(), space, kernels, names, budget, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Evals, want.Evals) {
		t.Fatal("failover Evals differ from the single-process sweep")
	}
	if !reflect.DeepEqual(got.BestMean, want.BestMean) {
		t.Fatalf("failover BestMean = %+v, want %+v", got.BestMean, want.BestMean)
	}
	if reg.Counter("cluster.peer_failures").Value() == 0 {
		t.Error("peer failure not counted")
	}
	if reg.Counter("cluster.shard_retries").Value() == 0 {
		t.Error("shard retry not counted")
	}
}

func TestExploreAllPeersDeadFallsBackLocally(t *testing.T) {
	space := testSpace()
	kernels, names := testKernels(t)
	const budget = 160.0

	want := dse.Explore(space, kernels, budget, 0)

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(dead.Close)

	reg := obs.NewRegistry()
	c := NewCoordinator([]string{dead.URL}, reg)
	got, err := c.Explore(context.Background(), space, kernels, names, budget, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Evals, want.Evals) {
		t.Fatal("local-fallback Evals differ from the single-process sweep")
	}
	if reg.Counter("cluster.local_fallback_shards").Value() == 0 {
		t.Error("local fallback not counted")
	}
}

func TestExploreCancellation(t *testing.T) {
	space := testSpace()
	kernels, names := testKernels(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := newWorkerServer(t)
	c := NewCoordinator([]string{w.URL}, obs.NewRegistry())
	if _, err := c.Explore(ctx, space, kernels, names, 160, 0, ""); err == nil {
		t.Fatal("cancelled explore returned nil error")
	}
}

func TestScaleShardedMatchesLocal(t *testing.T) {
	k, err := workload.ByName("CoMD")
	if err != nil {
		t.Fatal(err)
	}
	rate := exp.NodeRateFor(k)
	spec := fabric.DefaultLinkSpec()
	sizes := []int{1, 8, 50, 256, 1000}

	var want []ScaleEval
	for _, sz := range sizes {
		se, err := EvalScale("torus", spec, k, rate, sz, fabric.Weak, faults.Mask{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, se)
	}

	w1, w2 := newWorkerServer(t), newWorkerServer(t)
	reg := obs.NewRegistry()
	c := NewCoordinator([]string{w1.URL, w2.URL}, reg)
	got, err := c.Scale(context.Background(), "torus", spec, k, rate, sizes, fabric.Weak, faults.Mask{}, "", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded scale = %+v, want %+v", got, want)
	}
	// All sizes must have come over the wire, not via local fallback.
	if n := reg.Counter("cluster.items_streamed").Value(); n != int64(len(sizes)) {
		t.Errorf("items_streamed = %d, want %d (did shards fall back locally?)", n, len(sizes))
	}
	if n := reg.Counter("cluster.local_fallback_shards").Value(); n != 0 {
		t.Errorf("local_fallback_shards = %d on the happy path", n)
	}
}

func TestScaleShardedDegradedMatchesLocal(t *testing.T) {
	k, err := workload.ByName("HPGMG")
	if err != nil {
		t.Fatal(err)
	}
	rate := exp.NodeRateFor(k)
	spec := fabric.DefaultLinkSpec()
	sizes := []int{8, 50, 256}
	mask, err := faults.ParseMask("node:2")
	if err != nil {
		t.Fatal(err)
	}

	var want []ScaleEval
	for _, sz := range sizes {
		se, err := EvalScale("torus", spec, k, rate, sz, fabric.Weak, mask, 7)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, se)
	}

	w := newWorkerServer(t)
	c := NewCoordinator([]string{w.URL}, obs.NewRegistry())
	got, err := c.Scale(context.Background(), "torus", spec, k, rate, sizes, fabric.Weak, mask, mask.String(), 7, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded degraded scale = %+v, want %+v", got, want)
	}
	for _, se := range got {
		if se.FailedNodes != 2 {
			t.Fatalf("FailedNodes = %d, want 2", se.FailedNodes)
		}
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	srv := newWorkerServer(t)
	for _, tc := range []struct {
		name string
		path string
		body string
	}{
		{"bad json", "/v1/internal/shard/explore", `{`},
		{"bad version", "/v1/internal/shard/explore", `{"v":99,"cus":[192],"freqs_mhz":[1000],"bws_tbps":[3],"kernels":["CoMD"],"budget_w":160,"start":0,"end":1}`},
		{"unknown kernel", "/v1/internal/shard/explore", `{"v":1,"cus":[192],"freqs_mhz":[1000],"bws_tbps":[3],"kernels":["nope"],"budget_w":160,"start":0,"end":1}`},
		{"bad range", "/v1/internal/shard/explore", `{"v":1,"cus":[192],"freqs_mhz":[1000],"bws_tbps":[3],"kernels":["CoMD"],"budget_w":160,"start":0,"end":9}`},
		{"bad scale mode", "/v1/internal/shard/scale", `{"v":1,"kernel":"CoMD","topology":"torus","sizes":[8],"mode":"sideways","link_gbps":50,"latency_ns":500,"start":0,"end":1}`},
		{"bad scale range", "/v1/internal/shard/scale", `{"v":1,"kernel":"CoMD","topology":"torus","sizes":[8],"mode":"weak","link_gbps":50,"latency_ns":500,"start":1,"end":1}`},
	} {
		resp, err := http.Post(srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
