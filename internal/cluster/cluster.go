// Package cluster shards sweep-shaped service jobs across enaserve worker
// processes. A coordinator deterministically partitions a job's index space
// — design points for /v1/explore, node counts for /v1/scale — into
// contiguous shards, fans them out to worker peers over HTTP, streams
// per-item results back as they complete, retries failed shards on the
// surviving workers (falling back to local evaluation when none survive),
// and merges to the bit-identical single-process answer.
//
// Bit-identity holds by construction: every item is a pure function of the
// request (dse.EvaluatePointContext for explore points, EvalScale for scale
// sizes), shards cover the index space exactly once, results are merged
// positionally, and the sequential scoring/selection tail (dse.Finalize)
// runs on the merged slice exactly as a local sweep would have run it.
//
// Wire protocol: POST /v1/internal/shard/{explore,scale} with a shard
// request; the response is an NDJSON stream of one line per completed item
// (carrying its index, so completion order is free to vary) terminated by a
// "done" line with the item count. A stream that ends without "done" is a
// failed shard.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"ena/internal/dse"
	"ena/internal/fabric"
	"ena/internal/faults"
	"ena/internal/workload"
)

// protoVersion guards the shard wire format; a worker rejects mismatched
// requests so mixed-version fleets fail loudly instead of merging garbage.
// v2 added the packaging axes (chiplet count / HBM stack capacity /
// external-chain depth) and explicit point-list shards for surrogate
// acquisition batches; v1 peers would silently drop those fields, so the
// bump is deliberate.
const protoVersion = 2

// ExploreShardRequest asks a worker to evaluate design points [Start, End).
// In grid form (Points empty) the indices address the canonical enumeration
// of the given space (dse.Space.Points order, packaging axes included). In
// list form (Points non-empty — surrogate acquisition batches) the worker
// evaluates exactly the listed points, and Start/End address the job's
// global evaluation slots so streamed indices merge positionally:
// End-Start must equal len(Points), and Points[i] reports index Start+i.
type ExploreShardRequest struct {
	V           int         `json:"v"`
	CUs         []int       `json:"cus,omitempty"`
	FreqsMHz    []float64   `json:"freqs_mhz,omitempty"`
	BWsTBps     []float64   `json:"bws_tbps,omitempty"`
	GPUChiplets []int       `json:"gpu_chiplets,omitempty"`
	HBMStackGBs []float64   `json:"hbm_stack_gbs,omitempty"`
	ExtModules  []int       `json:"ext_modules,omitempty"`
	Points      []dse.Point `json:"points,omitempty"`
	Kernels     []string    `json:"kernels"`
	BudgetW     float64     `json:"budget_w"`
	Opts        uint        `json:"opts"`
	Start       int         `json:"start"`
	End         int         `json:"end"`
}

// ScaleShardRequest asks a worker to evaluate the given node counts of a
// machine-scale projection (a contiguous slice of the job's size list).
type ScaleShardRequest struct {
	V         int     `json:"v"`
	Kernel    string  `json:"kernel"`
	Topology  string  `json:"topology"`
	Sizes     []int   `json:"sizes"`
	Mode      string  `json:"mode"`
	LinkGBps  float64 `json:"link_gbps"`
	LatencyNs float64 `json:"latency_ns"`
	Ideal     bool    `json:"ideal"`
	Mask      string  `json:"mask"`
	Seed      int64   `json:"seed"`
	Start     int     `json:"start"`
	End       int     `json:"end"`
}

// ScaleEval is one node count's evaluation: the healthy fabric point plus —
// when the request carried a fault mask — the degraded re-evaluation with
// collectives rerouted around the victims.
type ScaleEval struct {
	Point              fabric.Point `json:"point"`
	FailedNodes        int          `json:"failed_nodes,omitempty"`
	DegradedEfficiency float64      `json:"degraded_efficiency,omitempty"`
	Partitioned        bool         `json:"partitioned,omitempty"`
}

// shardLine is one line of a shard response stream.
type shardLine struct {
	Type  string     `json:"type"` // "eval" | "scale" | "done" | "error"
	Index int        `json:"index,omitempty"`
	Eval  *dse.Eval  `json:"eval,omitempty"`
	Scale *ScaleEval `json:"scale,omitempty"`
	Count int        `json:"count,omitempty"`
	Error string     `json:"error,omitempty"`
}

func (l shardLine) encode() []byte {
	b, err := json.Marshal(l)
	if err != nil {
		// Lines hold only scalars and plain structs; this cannot fail.
		panic("cluster: line marshal: " + err.Error())
	}
	return append(b, '\n')
}

// shard is a contiguous index range [start, end).
type shard struct{ start, end int }

// partition splits n items into at most k contiguous, near-equal shards
// covering [0, n) exactly once. Deterministic: same (n, k) always yields the
// same partition, so coordinator and tests agree on shard boundaries.
func partition(n, k int) []shard {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]shard, 0, k)
	for i := 0; i < k; i++ {
		s := i * n / k
		e := (i + 1) * n / k
		if s < e {
			out = append(out, shard{start: s, end: e})
		}
	}
	return out
}

// chunked splits n items into fixed-size contiguous shards of size chunk
// covering [0, n) exactly once. Unlike partition, the boundaries depend only
// on (n, chunk) — not on the peer count — so checkpoints written against
// these shards by one replica land on the same boundaries in any other
// replica, whatever its peer set looks like.
func chunked(n, chunk int) []shard {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	out := make([]shard, 0, (n+chunk-1)/chunk)
	for s := 0; s < n; s += chunk {
		e := s + chunk
		if e > n {
			e = n
		}
		out = append(out, shard{start: s, end: e})
	}
	return out
}

// parseMode resolves a wire scaling mode.
func parseMode(s string) (fabric.Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "weak":
		return fabric.Weak, nil
	case "strong":
		return fabric.Strong, nil
	}
	return 0, fmt.Errorf("cluster: unknown mode %q (want strong or weak)", s)
}

// EvalScale evaluates one node count of a scale job: the healthy analytic
// point, plus the degraded re-evaluation when mask kills nodes. It is a pure
// function of its arguments — the property sharding relies on — and matches
// the per-size work of fabric.Curve plus the service layer's degraded pass.
func EvalScale(kind string, spec fabric.LinkSpec, k workload.Kernel, rate float64, size int, mode fabric.Mode, mask faults.Mask, seed int64) (ScaleEval, error) {
	t, err := fabric.New(kind, size, spec)
	if err != nil {
		return ScaleEval{}, err
	}
	pt, err := fabric.Evaluate(fabric.NewComm(t), k, rate, mode)
	if err != nil {
		return ScaleEval{}, err
	}
	se := ScaleEval{Point: pt}
	if mask.Empty() {
		return se, nil
	}
	failed, err := fabric.FailedNodes(t.Nodes(), mask, seed)
	if err != nil {
		// Too many victims for this size (e.g. node:3 on a 2-node torus, or
		// a targeted index past the end): a dead machine, not a shard error.
		se.FailedNodes = size
		se.Partitioned = true
		return se, nil
	}
	se.FailedNodes = len(failed)
	comm, err := fabric.NewDegradedComm(t, failed)
	if err != nil {
		return ScaleEval{}, err
	}
	dpt, err := fabric.Evaluate(comm, k, rate, mode)
	if errors.Is(err, fabric.ErrPartitioned) {
		se.Partitioned = true
		return se, nil
	}
	if err != nil {
		return ScaleEval{}, err
	}
	se.DegradedEfficiency = dpt.Efficiency
	return se, nil
}

// resolveKernels maps wire kernel names to Table I suite kernels.
func resolveKernels(names []string) ([]workload.Kernel, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: no kernels")
	}
	ks := make([]workload.Kernel, len(names))
	for i, n := range names {
		k, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		ks[i] = k
	}
	return ks, nil
}

// space reconstructs the dse.Space of a grid-form explore shard request.
func (r ExploreShardRequest) space() dse.Space {
	return dse.Space{
		CUs: r.CUs, FreqsMHz: r.FreqsMHz, BWsTBps: r.BWsTBps,
		GPUChiplets: r.GPUChiplets, HBMStackGBs: r.HBMStackGBs, ExtModules: r.ExtModules,
	}
}
