package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"ena/internal/dse"
	"ena/internal/exp"
	"ena/internal/fabric"
	"ena/internal/faults"
	"ena/internal/obs"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// WorkerHandler serves the internal shard-evaluation routes an enaserve
// worker peer (enaserve -worker) mounts:
//
//	POST /v1/internal/shard/explore   evaluate a design-point range, NDJSON stream
//	POST /v1/internal/shard/scale     evaluate a node-count range, NDJSON stream
//	GET  /v1/internal/ping            worker liveness
//
// Responses stream one line per completed item and flush eagerly, so the
// coordinator sees partial progress the moment it exists; a worker killed
// mid-shard leaves a truncated stream the coordinator detects by the missing
// "done" trailer. Evaluation parallelism inside the worker is GOMAXPROCS;
// lines may arrive out of index order (each carries its index).
func WorkerHandler(reg *obs.Registry) http.Handler { return WorkerHandlerDelay(reg, 0) }

// WorkerHandlerDelay is WorkerHandler with the eval-delay chaos knob: every
// evaluated item sleeps evalDelay first, stretching sweeps so kill-mid-sweep
// tests have a window to hit (see Coordinator.SetEvalDelay).
func WorkerHandlerDelay(reg *obs.Registry, evalDelay time.Duration) http.Handler {
	w := &worker{
		reg:       reg,
		delay:     evalDelay,
		shardsCtr: reg.Counter("cluster.worker.shards"),
		itemsCtr:  reg.Counter("cluster.worker.items"),
		errsCtr:   reg.Counter("cluster.worker.errors"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/internal/shard/explore", w.handleExplore)
	mux.HandleFunc("POST /v1/internal/shard/scale", w.handleScale)
	mux.HandleFunc("GET /v1/internal/ping", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		rw.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	return mux
}

type worker struct {
	reg       *obs.Registry
	delay     time.Duration
	shardsCtr *obs.Counter
	itemsCtr  *obs.Counter
	errsCtr   *obs.Counter
}

// maxShardBody bounds shard request bodies (they are small JSON documents).
const maxShardBody = 1 << 20

// streamer serializes NDJSON lines onto a response writer, flushing each so
// the coordinator observes per-item progress.
type streamer struct {
	mu    sync.Mutex
	w     http.ResponseWriter
	fl    http.Flusher
	wrErr error
}

func newStreamer(w http.ResponseWriter) *streamer {
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	return &streamer{w: w, fl: fl}
}

func (s *streamer) send(l shardLine) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wrErr != nil {
		return s.wrErr
	}
	if _, err := s.w.Write(l.encode()); err != nil {
		s.wrErr = err
		return err
	}
	if s.fl != nil {
		s.fl.Flush()
	}
	return nil
}

// decodeShard decodes the shard request body into v and then checks the
// version field via the getV callback — the version can only be read after
// the decode has populated it.
func decodeShard(w http.ResponseWriter, r *http.Request, v any, getV func() int) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxShardBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid shard request: %w", err)
	}
	if got := getV(); got != protoVersion {
		return fmt.Errorf("shard protocol v%d, want v%d", got, protoVersion)
	}
	return nil
}

func (wk *worker) handleExplore(rw http.ResponseWriter, r *http.Request) {
	var req ExploreShardRequest
	if err := decodeShard(rw, r, &req, func() int { return req.V }); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	kernels, err := resolveKernels(req.Kernels)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	// List form: evaluate the explicit points, reporting global indices
	// Start+i. Grid form: index the canonical space enumeration directly.
	var point func(i int) dse.Point
	if len(req.Points) > 0 {
		if req.Start < 0 || req.End-req.Start != len(req.Points) {
			http.Error(rw, fmt.Sprintf("shard range [%d, %d) does not cover the %d listed points", req.Start, req.End, len(req.Points)), http.StatusBadRequest)
			return
		}
		point = func(i int) dse.Point { return req.Points[i] }
	} else {
		pts := req.space().Points()
		if req.Start < 0 || req.End > len(pts) || req.Start >= req.End {
			http.Error(rw, fmt.Sprintf("shard range [%d, %d) out of the %d-point space", req.Start, req.End, len(pts)), http.StatusBadRequest)
			return
		}
		point = func(i int) dse.Point { return pts[req.Start+i] }
	}
	wk.shardsCtr.Inc()
	st := newStreamer(rw)
	n := req.End - req.Start
	err = parallelRange(r.Context(), n, func(ctx context.Context, i int) error {
		idx := req.Start + i
		chaosSleep(ctx, wk.delay)
		ev, err := dse.EvaluatePointContext(ctx, point(i), kernels, req.BudgetW, powopt.Technique(req.Opts))
		if err != nil {
			return err
		}
		wk.itemsCtr.Inc()
		return st.send(shardLine{Type: "eval", Index: idx, Eval: &ev})
	})
	if err != nil {
		// The status line is already out; the truncated stream (no "done")
		// is the failure signal. Send a best-effort error line for logs.
		wk.errsCtr.Inc()
		st.send(shardLine{Type: "error", Error: err.Error()})
		return
	}
	st.send(shardLine{Type: "done", Count: n})
}

func (wk *worker) handleScale(rw http.ResponseWriter, r *http.Request) {
	var req ScaleShardRequest
	if err := decodeShard(rw, r, &req, func() int { return req.V }); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	k, err := workload.ByName(req.Kernel)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	mask, err := faults.ParseMask(req.Mask)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Start < 0 || req.End > len(req.Sizes) || req.Start >= req.End {
		http.Error(rw, fmt.Sprintf("shard range [%d, %d) out of %d sizes", req.Start, req.End, len(req.Sizes)), http.StatusBadRequest)
		return
	}
	spec := fabric.LinkSpec{BandwidthGBps: req.LinkGBps, LatencyNs: req.LatencyNs, Ideal: req.Ideal}
	// The node rate is derived locally: it is a deterministic function of the
	// kernel (sustained TFLOP/s on the best-mean EHP), identical on every
	// replica of the same build.
	rate := exp.NodeRateFor(k)
	wk.shardsCtr.Inc()
	st := newStreamer(rw)
	n := req.End - req.Start
	err = parallelRange(r.Context(), n, func(ctx context.Context, i int) error {
		idx := req.Start + i
		chaosSleep(ctx, wk.delay)
		se, err := EvalScale(req.Topology, spec, k, rate, req.Sizes[idx], mode, mask, req.Seed)
		if err != nil {
			return err
		}
		wk.itemsCtr.Inc()
		return st.send(shardLine{Type: "scale", Index: idx, Scale: &se})
	})
	if err != nil {
		wk.errsCtr.Inc()
		st.send(shardLine{Type: "error", Error: err.Error()})
		return
	}
	st.send(shardLine{Type: "done", Count: n})
}

// parallelRange runs fn(ctx, i) for i in [0, n) on a bounded pool, stopping
// at the first error or context cancellation.
func parallelRange(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	work := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if cctx.Err() != nil {
					continue // drain
				}
				if err := fn(cctx, i); err != nil {
					select {
					case errs <- err:
					default:
					}
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-cctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}
