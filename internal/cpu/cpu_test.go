package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

var states = []float64{1200, 1600, 2000, 2400, 2800, 3200}

func computeBound() PhaseProfile {
	return PhaseProfile{Name: "cb", ComputeCycles: 5e6, LeadingLoadNs: 1e4}
}

func memoryBound() PhaseProfile {
	return PhaseProfile{Name: "mb", ComputeCycles: 3e5, LeadingLoadNs: 2e6}
}

func TestLeadingLoadsScaling(t *testing.T) {
	cb := computeBound()
	// Compute-bound: doubling frequency nearly halves time.
	if s := cb.Speedup(1600, 3200); s < 1.9 {
		t.Errorf("compute-bound speedup = %v, want ~2", s)
	}
	mb := memoryBound()
	// Memory-bound: frequency barely helps (the leading-loads insight).
	if s := mb.Speedup(1600, 3200); s > 1.15 {
		t.Errorf("memory-bound speedup = %v, should saturate", s)
	}
}

func TestTimeMonotoneInFrequency(t *testing.T) {
	f := func(seed int64) bool {
		p := Profiles()[int(uint64(seed)%uint64(len(Profiles())))]
		prev := math.Inf(1)
		for _, fm := range states {
			tm := p.TimeNs(fm)
			if tm > prev+1e-9 {
				return false
			}
			prev = tm
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeDegenerate(t *testing.T) {
	p := computeBound()
	if !math.IsInf(p.TimeNs(0), 1) {
		t.Error("zero frequency should be infinite time")
	}
}

func TestMemoryBoundness(t *testing.T) {
	mb := memoryBound()
	cb := computeBound()
	if mb.MemoryBoundness(2000) <= cb.MemoryBoundness(2000) {
		t.Error("memory-bound phase must report higher boundness")
	}
	// Boundness grows with frequency (compute shrinks, stalls do not).
	if mb.MemoryBoundness(3200) <= mb.MemoryBoundness(1200) {
		t.Error("memory boundness should grow with frequency")
	}
	for _, fm := range states {
		b := mb.MemoryBoundness(fm)
		if b < 0 || b > 1 {
			t.Errorf("boundness out of range: %v", b)
		}
	}
}

func TestPowerModel(t *testing.T) {
	m := DefaultPowerModel()
	// Voltage clamps at the rails and is monotone between them.
	if m.VoltageAt(500) != m.VMin || m.VoltageAt(5000) != m.VMax {
		t.Error("voltage rails not clamped")
	}
	prevV, prevP := 0.0, 0.0
	for _, fm := range states {
		v := m.VoltageAt(fm)
		p := m.PowerW(fm, 0.5)
		if v < prevV || p <= prevP {
			t.Fatalf("V/P not monotone at %v MHz", fm)
		}
		prevV, prevP = v, p
	}
	// Superlinear power: top frequency costs more than pro-rata.
	ratio := m.PowerW(3200, 1) / m.PowerW(1600, 1)
	if ratio <= 2 {
		t.Errorf("P(3200)/P(1600) = %v, want superlinear", ratio)
	}
}

func TestEnergyOptimalByBoundness(t *testing.T) {
	m := DefaultPowerModel()
	fCB, err := m.EnergyOptimalMHz(computeBound(), states, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	fMB, err := m.EnergyOptimalMHz(memoryBound(), states, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// PPEP's lesson: memory-bound phases clock down; compute-bound phases
	// don't gain energy from crawling (leakage x time).
	if fMB > fCB {
		t.Errorf("memory-bound optimum %v MHz above compute-bound %v MHz", fMB, fCB)
	}
	if fMB != states[0] {
		t.Errorf("memory-bound phase should pick the lowest state, got %v", fMB)
	}
}

func TestEDPOptimalAtLeastEnergyOptimal(t *testing.T) {
	m := DefaultPowerModel()
	for _, p := range Profiles() {
		fe, err := m.EnergyOptimalMHz(p, states, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := m.EDPOptimalMHz(p, states, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		// EDP weighs delay, so it never picks a slower clock than the
		// pure-energy optimum.
		if fd < fe {
			t.Errorf("%s: EDP optimum %v below energy optimum %v", p.Name, fd, fe)
		}
	}
}

func TestOptimalErrors(t *testing.T) {
	m := DefaultPowerModel()
	if _, err := m.EnergyOptimalMHz(computeBound(), nil, 1); err != ErrNoStates {
		t.Errorf("expected ErrNoStates, got %v", err)
	}
	if _, err := m.EDPOptimalMHz(computeBound(), nil, 1); err != ErrNoStates {
		t.Errorf("expected ErrNoStates, got %v", err)
	}
}

func TestProfilesSane(t *testing.T) {
	ps := Profiles()
	if len(ps) < 3 {
		t.Fatal("need representative profiles")
	}
	for _, p := range ps {
		if p.ComputeCycles <= 0 || p.LeadingLoadNs < 0 || p.Name == "" {
			t.Errorf("bad profile %+v", p)
		}
	}
}
