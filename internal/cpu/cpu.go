// Package cpu implements the CPU-side analytic scaling models the paper's
// methodology cites (§III): a leading-loads performance predictor [39] —
// execution time decomposes into a frequency-scaled compute part and a
// frequency-invariant memory-stall part measured by "leading load" cycles —
// and a PPEP-style [40] DVFS energy model that predicts power and picks
// energy-optimal operating points for the CPU chiplets' serial phases.
package cpu

import (
	"errors"
	"math"
)

// PhaseProfile is what the leading-loads counters measure for a CPU phase at
// a reference frequency: core-bound cycles scale with frequency, while
// leading-load (memory stall) time does not.
type PhaseProfile struct {
	Name string
	// ComputeCycles is the frequency-scaled work (core cycles).
	ComputeCycles float64
	// LeadingLoadNs is the frequency-invariant memory-stall time.
	LeadingLoadNs float64
}

// MemoryBoundness returns the fraction of phase time spent in leading loads
// at the given frequency.
func (p PhaseProfile) MemoryBoundness(fMHz float64) float64 {
	t := p.TimeNs(fMHz)
	if t == 0 {
		return 0
	}
	return p.LeadingLoadNs / t
}

// TimeNs predicts the phase's execution time at a frequency (the
// leading-loads model [39]).
func (p PhaseProfile) TimeNs(fMHz float64) float64 {
	if fMHz <= 0 {
		return math.Inf(1)
	}
	return p.ComputeCycles/(fMHz*1e-3) + p.LeadingLoadNs
}

// Speedup predicts the speedup of moving from fromMHz to toMHz.
func (p PhaseProfile) Speedup(fromMHz, toMHz float64) float64 {
	t := p.TimeNs(toMHz)
	if t == 0 {
		return math.Inf(1)
	}
	return p.TimeNs(fromMHz) / t
}

// PowerModel is the PPEP-style CPU power model: P(f) = C*V(f)^2*f*activity +
// leakage(V).
type PowerModel struct {
	SwitchedCapF float64 // effective switched capacitance per core
	LeakageWAtV1 float64 // per-core leakage at 1.0 V
	VMin, VMax   float64 // DVFS voltage range
	FMinMHz      float64 // frequency at VMin
	FMaxMHz      float64 // frequency at VMax
}

// DefaultPowerModel returns the CPU-chiplet calibration (latency-optimized
// cores, 1.2-3.2 GHz DVFS range).
func DefaultPowerModel() PowerModel {
	return PowerModel{
		SwitchedCapF: 1.1e-9,
		LeakageWAtV1: 0.35,
		VMin:         0.70,
		VMax:         1.05,
		FMinMHz:      1200,
		FMaxMHz:      3200,
	}
}

// VoltageAt interpolates the V-f curve (clamped at the rail limits).
func (m PowerModel) VoltageAt(fMHz float64) float64 {
	if fMHz <= m.FMinMHz {
		return m.VMin
	}
	if fMHz >= m.FMaxMHz {
		return m.VMax
	}
	t := (fMHz - m.FMinMHz) / (m.FMaxMHz - m.FMinMHz)
	return m.VMin + t*(m.VMax-m.VMin)
}

// PowerW returns per-core power at a frequency and activity factor.
func (m PowerModel) PowerW(fMHz, activity float64) float64 {
	v := m.VoltageAt(fMHz)
	return activity*m.SwitchedCapF*v*v*fMHz*1e6 + m.LeakageWAtV1*v
}

// PhaseEnergyJ predicts one phase execution's per-core energy at a frequency.
func (m PowerModel) PhaseEnergyJ(p PhaseProfile, fMHz, activity float64) float64 {
	return m.PowerW(fMHz, activity) * p.TimeNs(fMHz) * 1e-9
}

// ErrNoStates reports an empty DVFS state list.
var ErrNoStates = errors.New("cpu: need at least one DVFS state")

// EnergyOptimalMHz returns the DVFS state minimizing the phase's energy (the
// PPEP use case: memory-bound phases clock down almost for free, compute-
// bound phases race to idle).
func (m PowerModel) EnergyOptimalMHz(p PhaseProfile, statesMHz []float64, activity float64) (float64, error) {
	if len(statesMHz) == 0 {
		return 0, ErrNoStates
	}
	best := statesMHz[0]
	bestE := m.PhaseEnergyJ(p, best, activity)
	for _, f := range statesMHz[1:] {
		if e := m.PhaseEnergyJ(p, f, activity); e < bestE {
			bestE = e
			best = f
		}
	}
	return best, nil
}

// EDPOptimalMHz minimizes energy-delay product instead (the usual HPC
// compromise between energy and time).
func (m PowerModel) EDPOptimalMHz(p PhaseProfile, statesMHz []float64, activity float64) (float64, error) {
	if len(statesMHz) == 0 {
		return 0, ErrNoStates
	}
	best := statesMHz[0]
	bestEDP := m.PhaseEnergyJ(p, best, activity) * p.TimeNs(best)
	for _, f := range statesMHz[1:] {
		if edp := m.PhaseEnergyJ(p, f, activity) * p.TimeNs(f); edp < bestEDP {
			bestEDP = edp
			best = f
		}
	}
	return best, nil
}

// Representative serial-section profiles for the proxy apps' CPU phases
// (what the EHP's latency-optimized cores exist for, §II-A1).
func Profiles() []PhaseProfile {
	return []PhaseProfile{
		{Name: "reduction", ComputeCycles: 2e6, LeadingLoadNs: 5e4},
		{Name: "mesh-admin", ComputeCycles: 8e5, LeadingLoadNs: 9e5},
		{Name: "io-pack", ComputeCycles: 3e5, LeadingLoadNs: 1.5e6},
		{Name: "neighbor-sort", ComputeCycles: 3e6, LeadingLoadNs: 4e5},
	}
}
