package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ena/internal/faults"
	"ena/internal/ras"
	"ena/internal/workload"
)

// This file resolves the fault grammar's machine-scope terms (node:k,
// node@i) against a topology and folds the result into the RAS math:
// failed nodes drop out of the communicator, collectives reroute around
// them (torus BFS detours; indirect topologies lose only the endpoint),
// and the measured relative-performance surface feeds
// ras.DegradedThroughput to price steady-state whole-node attrition.

// FailedNodes resolves a mask's node entries against a p-node machine:
// targeted node@i entries first (validated against p, deduplicated by the
// mask's canonical form), then node:k entries drawn from the survivors
// with the seeded generator — the same targeted-then-counted discipline
// faults.Apply uses for node-local components. Non-node entries are
// ignored (use Mask.SplitNode to route them to faults.Apply). The result
// is sorted and deterministic in (mask, seed).
func FailedNodes(p int, m faults.Mask, seed int64) ([]int, error) {
	node, _ := m.SplitNode()
	dead := make(map[int]bool)
	count := 0
	for _, e := range node.Entries {
		if e.Count > 0 {
			count += e.Count
			continue
		}
		if e.Index >= p {
			return nil, fmt.Errorf("fabric: node@%d out of range (machine has %d nodes)", e.Index, p)
		}
		dead[e.Index] = true
	}
	if count > 0 {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < count; i++ {
			alive := p - len(dead)
			if alive <= 1 {
				return nil, fmt.Errorf("fabric: mask %s leaves no survivors on %d nodes", node, p)
			}
			j := rng.Intn(alive)
			for n := 0; n < p; n++ {
				if dead[n] {
					continue
				}
				if j == 0 {
					dead[n] = true
					break
				}
				j--
			}
		}
	}
	out := make([]int, 0, len(dead))
	for n := range dead {
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// Surface measures the machine's relative-performance surface under
// progressive whole-node failure: relPerf[k] is delivered throughput with
// k seed-chosen nodes dead divided by healthy delivered throughput, for
// k = 0..maxDead. Each step kills one more node on top of the previous
// set, so the surface reflects a single deterministic failure trajectory.
// The surface truncates where failures partition the surviving nodes —
// ras.DegradedThroughput treats points past the end as zero throughput,
// which is exactly the checkpoint/restart semantics of a split machine.
func Surface(t Topology, k workload.Kernel, nodeTFLOPs float64, mode Mode, maxDead int, seed int64) ([]float64, error) {
	base, err := Evaluate(NewComm(t), k, nodeTFLOPs, mode)
	if err != nil {
		return nil, err
	}
	rel := []float64{1}
	rng := rand.New(rand.NewSource(seed))
	dead := make(map[int]bool)
	var failed []int
	p := t.Nodes()
	for n := 1; n <= maxDead && n < p; n++ {
		j := rng.Intn(p - len(dead))
		for cand := 0; cand < p; cand++ {
			if dead[cand] {
				continue
			}
			if j == 0 {
				dead[cand] = true
				failed = append(failed, cand)
				break
			}
			j--
		}
		comm, err := NewDegradedComm(t, failed)
		if err != nil {
			return nil, err
		}
		pt, err := Evaluate(comm, k, nodeTFLOPs, mode)
		if errors.Is(err, ErrPartitioned) {
			break
		}
		if err != nil {
			return nil, err
		}
		rel = append(rel, pt.DeliveredTFLOPs/base.DeliveredTFLOPs)
	}
	return rel, nil
}

// NodeFailureAnalysis is the fabric-level degraded-throughput result.
type NodeFailureAnalysis struct {
	// RelPerf is the measured surface (see Surface).
	RelPerf []float64 `json:"rel_perf"`
	// Degraded is the steady-state expectation over the surface given the
	// per-node failure rate and repair time.
	Degraded ras.DegradedResult `json:"degraded"`
}

// AnalyzeNodeFailures measures the progressive-failure surface of kernel k
// on topology t and weights it by the steady-state distribution of
// concurrently-failed nodes (nodeFIT failures per 1e9 node-hours, repaired
// in mttrHours): the machine-scope analogue of the per-component
// ResilienceSurface -> DegradedThroughput pipeline.
func AnalyzeNodeFailures(t Topology, k workload.Kernel, nodeTFLOPs float64, mode Mode, maxDead int, seed int64, nodeFIT, mttrHours float64) (NodeFailureAnalysis, error) {
	rel, err := Surface(t, k, nodeTFLOPs, mode, maxDead, seed)
	if err != nil {
		return NodeFailureAnalysis{}, err
	}
	dr, err := ras.DegradedThroughput(t.Nodes(), nodeFIT, mttrHours, rel)
	if err != nil {
		return NodeFailureAnalysis{}, err
	}
	return NodeFailureAnalysis{RelPerf: rel, Degraded: dr}, nil
}
