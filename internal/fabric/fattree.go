package fabric

import "fmt"

// FatTree is a 2-level fat tree: leaves of LeafSize nodes, each leaf
// connected to a non-blocking spine by one aggregated fat uplink of
// bandwidth LeafSize*B/Oversub per direction. With Oversub == 1 the tree
// is full-bisection; larger values model tapered uplinks.
//
// Directed link IDs: [0,p) node->leaf, [p,2p) leaf->node, then one up and
// one down link per leaf.
type FatTree struct {
	P        int
	LeafSize int
	Oversub  float64
	spec     LinkSpec
}

// NewFatTree builds a p-node fat tree; leafSize must divide p.
func NewFatTree(p, leafSize int, oversub float64, spec LinkSpec) (*FatTree, error) {
	if p < 1 || leafSize < 1 || p%leafSize != 0 {
		return nil, fmt.Errorf("fabric: fat-tree leaf size %d must divide the node count %d", leafSize, p)
	}
	if oversub <= 0 {
		return nil, fmt.Errorf("fabric: fat-tree oversubscription %v must be positive", oversub)
	}
	return &FatTree{P: p, LeafSize: leafSize, Oversub: oversub, spec: spec}, nil
}

func (t *FatTree) Name() string   { return fmt.Sprintf("fat-tree-%dx%d", t.P/t.LeafSize, t.LeafSize) }
func (t *FatTree) Nodes() int     { return t.P }
func (t *FatTree) leaves() int    { return t.P / t.LeafSize }
func (t *FatTree) Links() int     { return 2*t.P + 2*t.leaves() }
func (t *FatTree) Spec() LinkSpec { return t.spec }

// uplinkBW is the aggregated leaf uplink bandwidth.
func (t *FatTree) uplinkBW() float64 {
	return float64(t.LeafSize) * t.spec.BandwidthGBps / t.Oversub
}

func (t *FatTree) LinkBW(link int) float64 {
	if link < 2*t.P {
		return t.spec.BandwidthGBps
	}
	return t.uplinkBW()
}

// Route: same leaf is node->leaf->node; across leaves the aggregated
// uplink and the destination leaf's downlink are traversed in between.
func (t *FatTree) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	qs, qd := src/t.LeafSize, dst/t.LeafSize
	if qs == qd {
		return []int{src, t.P + dst}
	}
	return []int{src, 2*t.P + qs, 2*t.P + t.leaves() + qd, t.P + dst}
}

func (t *FatTree) Grid() (int, int, int) { return factor3(t.P) }

func (t *FatTree) Ring() []int {
	out := make([]int, t.P)
	for i := range out {
		out[i] = i
	}
	return out
}
