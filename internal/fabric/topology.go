// Package fabric is the inter-node network model that turns the single-node
// simulator into a machine simulator: pluggable topologies (2-level fat
// tree, dragonfly, 3D torus) with per-link bandwidth/latency/congestion
// accounting, the collective-communication patterns exascale proxy apps are
// built from (ring and tree all-reduce, nearest-neighbor halo exchange,
// all-to-all), and strong/weak scaling curves whose message sizes derive
// from the internal/workload kernel characterizations.
//
// The paper projects its 100,000-node machine by pure arithmetic (§V-F):
// one EHP node simulated, then multiplied. This package replaces that with
// an explicit network: every collective has an analytic cost model (O(p) or
// closed form, usable at the full machine scale) and a brute-force
// per-message event-driven replay on the internal/event kernel (ground
// truth at small scale). The property tests pin the two against each other
// on every topology, so the analytic numbers used at 100,000 nodes are the
// ones the replay validates at 64.
//
// Whole-node failures (the faults mask's node@/node: terms) are resolved
// against a topology here, rerouted around (dimension-ordered BFS detours
// on the torus; indirect topologies lose only the endpoint), and folded
// into ras.DegradedThroughput as a machine-level relative-performance
// surface.
package fabric

import (
	"fmt"
	"math"
)

// LinkSpec gives the physical parameters every link of a topology instance
// is built from. Node injection links run at BandwidthGBps per direction;
// aggregated links (fat-tree uplinks) scale from it. The values default to
// exascale-interconnect figures in the spirit of the MI300A Infinity-Fabric
// characterization: tens of GB/s per directed node link, sub-microsecond
// per-hop latency.
type LinkSpec struct {
	// BandwidthGBps is the node-level link bandwidth, per direction.
	BandwidthGBps float64
	// LatencyNs is the per-hop propagation plus switch traversal latency.
	LatencyNs float64
	// Ideal makes every link infinitely fast and every hop free: the
	// degenerate fabric under which the scaling model must reproduce the
	// paper's §V-F multiply-by-node-count arithmetic exactly.
	Ideal bool
}

// DefaultLinkSpec is the finite-budget reference fabric.
func DefaultLinkSpec() LinkSpec { return LinkSpec{BandwidthGBps: 50, LatencyNs: 500} }

// IdealLinkSpec is the infinite-bandwidth zero-latency degenerate fabric.
func IdealLinkSpec() LinkSpec { return LinkSpec{Ideal: true} }

// serNs is the serialization time of a payload on a link of the given
// bandwidth: bytes / (GB/s) happens to be ns directly (the 1e9 cancel).
func (s LinkSpec) serNs(bytes, gbps float64) float64 {
	if s.Ideal || gbps <= 0 {
		return 0
	}
	return bytes / gbps
}

// latNs is the per-hop latency.
func (s LinkSpec) latNs() float64 {
	if s.Ideal {
		return 0
	}
	return s.LatencyNs
}

// Topology is an inter-node network: a set of directed links with stable
// IDs, a deterministic route between any two nodes, and a logical 3D grid
// over the nodes (native for the torus, a near-cubic factorization for the
// indirect topologies) that the halo-exchange pattern runs on.
type Topology interface {
	Name() string
	Nodes() int
	// Links is the directed-link count; link IDs are in [0, Links).
	Links() int
	// LinkBW returns a link's bandwidth in GB/s (per direction).
	LinkBW(link int) float64
	// Route returns the directed links traversed from src to dst, in hop
	// order. Routes are deterministic and shortest under the topology's
	// routing discipline (dimension order on the torus, up/over/down on
	// the indirect topologies).
	Route(src, dst int) []int
	// Grid returns the logical 3D decomposition x*y*z == Nodes.
	Grid() (x, y, z int)
	// Ring returns the nodes in ring order: grid-adjacent snake order on
	// the torus (so ring neighbors are physical neighbors), ID order on
	// the indirect topologies.
	Ring() []int
	Spec() LinkSpec
}

// avoider is implemented by topologies whose routes traverse other nodes
// and therefore must detour around dead ones (the torus). Indirect
// topologies route node->switch->node and keep their routes under node
// failures.
type avoider interface {
	routeAvoid(src, dst int, dead []bool) ([]int, error)
}

// ErrPartitioned reports that node failures disconnect the surviving nodes.
var ErrPartitioned = fmt.Errorf("fabric: node failures partition the network")

// New builds a topology of the given kind ("torus", "fat-tree",
// "dragonfly") over p nodes with auto-selected shape parameters: the torus
// picks the most cubic factorization of p, the fat tree the largest leaf
// size <= 64 dividing p, the dragonfly the largest group size <= ceil(sqrt
// p) dividing p.
func New(kind string, p int, spec LinkSpec) (Topology, error) {
	switch kind {
	case "torus":
		x, y, z := factor3(p)
		return NewTorus(x, y, z, spec)
	case "fat-tree":
		return NewFatTree(p, largestDivisorLE(p, 64), 1, spec)
	case "dragonfly":
		g := largestDivisorLE(p, int(math.Ceil(math.Sqrt(float64(p)))))
		return NewDragonfly(p, g, spec)
	}
	return nil, fmt.Errorf("fabric: unknown topology %q (want torus, fat-tree or dragonfly)", kind)
}

// Kinds lists the pluggable topology kinds New accepts.
func Kinds() []string { return []string{"torus", "fat-tree", "dragonfly"} }

// largestDivisorLE returns the largest divisor of p not exceeding limit
// (at least 1).
func largestDivisorLE(p, limit int) int {
	if limit >= p {
		return p
	}
	for d := limit; d > 1; d-- {
		if p%d == 0 {
			return d
		}
	}
	return 1
}

// factor3 factorizes p into the most cubic x*y*z (minimal x+y+z, ties
// broken lexicographically) — the logical process grid for halo exchange
// and the torus dimensions.
func factor3(p int) (int, int, int) {
	bx, by, bz := p, 1, 1
	best := p + 2
	for x := 1; x*x*x <= p; x++ {
		if p%x != 0 {
			continue
		}
		q := p / x
		for y := x; y*y <= q; y++ {
			if q%y != 0 {
				continue
			}
			z := q / y
			if s := x + y + z; s < best {
				best = s
				// Largest dimension first keeps the grid rendering
				// stable (x is the fastest-varying coordinate).
				bx, by, bz = z, y, x
			}
		}
	}
	return bx, by, bz
}

// gridIndex maps grid coordinates to a node ID (x fastest).
func gridIndex(x, y, z, gx, gy int) int { return x + gx*(y+gy*z) }

// gridCoords inverts gridIndex.
func gridCoords(n, gx, gy int) (x, y, z int) {
	x = n % gx
	n /= gx
	return x, n % gy, n / gy
}
