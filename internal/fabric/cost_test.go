package fabric

import (
	"fmt"
	"math"
	"testing"

	"ena/internal/faults"
)

// testTopologies builds the cross-product of shapes the property tests run
// over: every topology kind, direct and indirect, with flat dimensions,
// oversubscription, single-leaf/single-group edge cases and non-power-of-2
// sizes, capped at 64 nodes so the replay stays cheap.
func testTopologies(t *testing.T, spec LinkSpec) []Topology {
	t.Helper()
	var out []Topology
	add := func(tp Topology, err error) {
		if err != nil {
			t.Fatalf("building test topology: %v", err)
		}
		out = append(out, tp)
	}
	add(NewTorus(2, 1, 1, spec))
	add(NewTorus(2, 2, 2, spec))
	add(NewTorus(3, 3, 3, spec))
	add(NewTorus(4, 3, 2, spec))
	add(NewTorus(5, 2, 1, spec))
	add(NewTorus(4, 4, 4, spec))
	add(NewFatTree(6, 6, 1, spec)) // single leaf
	add(NewFatTree(8, 4, 1, spec))
	add(NewFatTree(24, 8, 2, spec))
	add(NewFatTree(64, 16, 4, spec))
	add(NewDragonfly(6, 6, spec)) // single group
	add(NewDragonfly(8, 4, spec))
	add(NewDragonfly(24, 4, spec))
	add(NewDragonfly(64, 8, spec))
	return out
}

var testSpecs = []LinkSpec{
	DefaultLinkSpec(),
	{BandwidthGBps: 7.5, LatencyNs: 120}, // bandwidth-starved, low latency
	{BandwidthGBps: 400, LatencyNs: 5000}, // latency-dominated
}

var testPayloads = []float64{4096, 12345, 1 << 20}

// relDiff is the symmetric relative difference used throughout.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
}

// TestAnalyticMatchesReplayExact pins the analytic cost model against the
// brute-force event-driven replay on every (topology, spec, payload) cell
// for the collectives whose formulas claim exactness: ring all-reduce and
// all-to-all everywhere, tree all-reduce on every healthy topology, halo
// exchange on the torus. Tolerance is float roundoff only.
func TestAnalyticMatchesReplayExact(t *testing.T) {
	for _, spec := range testSpecs {
		for _, tp := range testTopologies(t, spec) {
			c := NewComm(tp)
			for _, op := range []Op{AllReduceRing, AllReduceTree, Halo, AllToAll} {
				if op == Halo {
					if _, ok := tp.(*Torus); !ok {
						continue // pinned separately with a measured tolerance
					}
				}
				for _, bytes := range testPayloads {
					name := fmt.Sprintf("%s/%s/bw%g/%gB", tp.Name(), op, spec.BandwidthGBps, bytes)
					an, err := c.AnalyticNs(op, bytes)
					if err != nil {
						t.Fatalf("%s: analytic: %v", name, err)
					}
					re, err := c.Replay(op, bytes, nil)
					if err != nil {
						t.Fatalf("%s: replay: %v", name, err)
					}
					if re.Ns <= 0 || an <= 0 {
						t.Fatalf("%s: degenerate cost analytic=%g replay=%g", name, an, re.Ns)
					}
					if d := relDiff(an, re.Ns); d > 1e-9 {
						t.Errorf("%s: analytic %g vs replay %g (rel %.3g)", name, an, re.Ns, d)
					}
				}
			}
		}
	}
}

// TestAnalyticHaloIndirectPinned pins the halo-exchange merge formula on
// the indirect topologies. Unlike the torus (proven exact, loads of 1),
// exactness here is measured, not derived: every shifted grid row lands
// its leaf/group crossings on the shared links simultaneously across the
// whole test matrix, so the pin sits at float roundoff. Widening it means
// the model drifted from the replay — investigate before loosening.
func TestAnalyticHaloIndirectPinned(t *testing.T) {
	const pinned = 1e-9
	worst := 0.0
	var worstName string
	for _, spec := range testSpecs {
		for _, tp := range testTopologies(t, spec) {
			if _, ok := tp.(*Torus); ok {
				continue
			}
			c := NewComm(tp)
			for _, bytes := range testPayloads {
				an, err := c.AnalyticNs(Halo, bytes)
				if err != nil {
					t.Fatal(err)
				}
				re, err := c.Replay(Halo, bytes, nil)
				if err != nil {
					t.Fatal(err)
				}
				if d := relDiff(an, re.Ns); d > worst {
					worst = d
					worstName = fmt.Sprintf("%s/bw%g/%gB", tp.Name(), spec.BandwidthGBps, bytes)
				}
			}
		}
	}
	if worst > pinned {
		t.Errorf("halo merge-formula divergence %.3g at %s exceeds pinned %.3g", worst, worstName, pinned)
	}
	t.Logf("worst indirect-halo divergence %.4g at %s (pinned at %.3g)", worst, worstName, pinned)
}

// TestDegradedAnalyticMatchesReplay checks the degraded-path model, where
// the merge formula is documented as approximate: costs must still be
// finite, deterministic, and within a pinned envelope of the replay, and
// degrading must never beat the healthy fabric on the same op.
func TestDegradedAnalyticMatchesReplay(t *testing.T) {
	const pinned = 0.35
	spec := DefaultLinkSpec()
	cases := []struct {
		tp     Topology
		failed []int
	}{}
	tor, err := NewTorus(4, 3, 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		tp     Topology
		failed []int
	}{tor, []int{1, 7, 13}})
	ft, err := NewFatTree(24, 8, 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		tp     Topology
		failed []int
	}{ft, []int{0, 5, 9, 17}})
	df, err := NewDragonfly(24, 4, spec)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		tp     Topology
		failed []int
	}{df, []int{2, 3, 11}})

	for _, tc := range cases {
		healthy := NewComm(tc.tp)
		degraded, err := NewDegradedComm(tc.tp, tc.failed)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []Op{AllReduceRing, AllReduceTree, Halo, AllToAll} {
			name := fmt.Sprintf("%s/%s", tc.tp.Name(), op)
			an, err := degraded.AnalyticNs(op, 1<<20)
			if err != nil {
				t.Fatalf("%s: analytic: %v", name, err)
			}
			an2, err := degraded.AnalyticNs(op, 1<<20)
			if err != nil || an2 != an {
				t.Fatalf("%s: analytic not deterministic: %g vs %g (%v)", name, an, an2, err)
			}
			re, err := degraded.Replay(op, 1<<20, nil)
			if err != nil {
				t.Fatalf("%s: replay: %v", name, err)
			}
			if d := relDiff(an, re.Ns); d > pinned {
				t.Errorf("%s: degraded analytic %g vs replay %g (rel %.3g > %.3g)", name, an, re.Ns, d, pinned)
			}
			// The ring is the only op whose round count shrinks with
			// participants; for the others fewer-but-rerouted messages must
			// not come out faster than healthy by more than roundoff.
			if op != AllReduceRing {
				hn, err := healthy.AnalyticNs(op, 1<<20)
				if err != nil {
					t.Fatal(err)
				}
				if op == AllToAll || op == Halo {
					continue // fewer participants legitimately shrink these too
				}
				if an < hn*(1-1e-9) {
					t.Errorf("%s: degraded %g beats healthy %g", name, an, hn)
				}
			}
		}
	}
}

// TestReplayDeterministic: two replays of the same collective are
// bit-identical, including under chaos with the same seed.
func TestReplayDeterministic(t *testing.T) {
	spec := DefaultLinkSpec()
	tor, err := NewTorus(4, 4, 2, spec)
	if err != nil {
		t.Fatal(err)
	}
	c := NewComm(tor)
	for _, op := range []Op{AllReduceRing, AllReduceTree, Halo, AllToAll} {
		a, err := c.Replay(op, 1<<16, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Replay(op, 1<<16, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: replay not deterministic: %+v vs %+v", op, a, b)
		}
		cfg := faults.ChaosConfig{Seed: 42, LinkFlapProb: 0.1}
		a, err = c.Replay(op, 1<<16, faults.NewChaos(cfg, nil))
		if err != nil {
			t.Fatal(err)
		}
		b, err = c.Replay(op, 1<<16, faults.NewChaos(cfg, nil))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: chaos replay not deterministic: %+v vs %+v", op, a, b)
		}
	}
}

// TestIdealFabricIsFree: the degenerate ideal fabric prices every
// collective at zero in both models — the property the §V-F reproduction
// rests on.
func TestIdealFabricIsFree(t *testing.T) {
	for _, tp := range testTopologies(t, IdealLinkSpec()) {
		c := NewComm(tp)
		for _, op := range []Op{AllReduceRing, AllReduceTree, Halo, AllToAll} {
			an, err := c.AnalyticNs(op, 1<<24)
			if err != nil {
				t.Fatal(err)
			}
			re, err := c.Replay(op, 1<<24, nil)
			if err != nil {
				t.Fatal(err)
			}
			if an != 0 || re.Ns != 0 {
				t.Errorf("%s/%s: ideal fabric not free: analytic=%g replay=%g", tp.Name(), op, an, re.Ns)
			}
		}
	}
}
