package fabric

import (
	"ena/internal/event"
	"ena/internal/faults"
)

// ReplayResult summarizes a brute-force collective replay.
type ReplayResult struct {
	// Ns is the simulated completion time of the whole collective.
	Ns float64
	// Messages and Hops count the individual transfers executed.
	Messages int
	Hops     int
	// Retransmits counts chaos link flaps; each one doubled a hop's
	// serialization time (the transfer was sent twice).
	Retransmits int
}

// flight is one in-flight message walking its route hop by hop on the
// event kernel. Links are store-and-forward FIFO queues: a hop starts at
// max(arrival, link free time), holds the link for the serialization time,
// and delivers one hop latency after that.
type flight struct {
	c     *Comm
	s     *event.Sim
	free  []float64 // per-link time the link next goes idle
	links []int
	hop   int
	bytes float64
	chaos *faults.Chaos
	res   *ReplayResult
	fin   *float64 // running max completion time of the round
}

func (f *flight) step() {
	sp := f.c.t.Spec()
	l := f.links[f.hop]
	start := f.s.Now()
	if f.free[l] > start {
		start = f.free[l]
	}
	ser := sp.serNs(f.bytes, f.c.t.LinkBW(l))
	if f.chaos.LinkFlap() {
		ser *= 2
		f.res.Retransmits++
	}
	f.free[l] = start + ser
	arrive := start + ser + sp.latNs()
	f.res.Hops++
	f.hop++
	if f.hop == len(f.links) {
		if arrive > *f.fin {
			*f.fin = arrive
		}
		return
	}
	f.s.After(arrive-f.s.Now(), f.step)
}

// Replay executes op message by message on the discrete-event kernel and
// returns the measured cost: the ground truth the analytic model is pinned
// against. Rounds are barrier-synchronized — each starts when the previous
// one's slowest message has arrived — and repeated ring rounds are replayed
// individually (under chaos each repetition flaps differently). chaos may
// be nil; when set, its LinkFlapProb draws inject per-hop retransmissions.
// Cost is O(total hops) events, so keep node counts small (the property
// tests stop at 64); the analytic model is the large-scale path.
func (c *Comm) Replay(op Op, bytes float64, chaos *faults.Chaos) (ReplayResult, error) {
	var res ReplayResult
	if c.Size() < 2 {
		return res, nil
	}
	s := event.AcquireSim()
	defer event.ReleaseSim(s)
	free := make([]float64, c.t.Links())
	flights := make([]flight, 0, c.Size())
	for _, r := range c.rounds(op, bytes) {
		// Resolve routes once per round; repetitions reuse them.
		flights = flights[:0]
		for _, m := range r.msgs {
			links, err := c.route(m.src, m.dst)
			if err != nil {
				return res, err
			}
			if len(links) == 0 {
				continue
			}
			flights = append(flights, flight{
				c: c, s: s, free: free, links: links,
				bytes: r.bytes, chaos: chaos, res: &res,
			})
		}
		for rep := 0; rep < r.repeat; rep++ {
			s.Reset()
			for i := range free {
				free[i] = 0
			}
			var fin float64
			for i := range flights {
				f := &flights[i]
				f.hop = 0
				f.fin = &fin
				s.After(0, f.step)
			}
			s.Run(0)
			res.Messages += len(flights)
			res.Ns += fin
		}
	}
	return res, nil
}
