package fabric

import (
	"errors"
	"testing"
)

// torusDist is the wraparound Manhattan distance on the torus grid.
func torusDist(t *Torus, a, b int) int {
	ax, ay, az := gridCoords(a, t.X, t.Y)
	bx, by, bz := gridCoords(b, t.X, t.Y)
	ring := func(p, q, n int) int {
		d := (q - p + n) % n
		return min(d, n-d)
	}
	return ring(ax, bx, t.X) + ring(ay, by, t.Y) + ring(az, bz, t.Z)
}

func TestTorusRouteShortestAndValid(t *testing.T) {
	tor, err := NewTorus(4, 3, 2, DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < tor.Nodes(); src++ {
		for dst := 0; dst < tor.Nodes(); dst++ {
			links := tor.Route(src, dst)
			if len(links) != torusDist(tor, src, dst) {
				t.Fatalf("route %d->%d has %d hops, want %d", src, dst, len(links), torusDist(tor, src, dst))
			}
			cur := src
			for _, l := range links {
				if l < 0 || l >= tor.Links() {
					t.Fatalf("route %d->%d: link %d out of range", src, dst, l)
				}
				if l/torusDirs != cur {
					t.Fatalf("route %d->%d: link %d does not leave current node %d", src, dst, l, cur)
				}
				cur, _ = tor.step(cur, l%torusDirs)
			}
			if cur != dst {
				t.Fatalf("route %d->%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestRingIsGridAdjacentPermutation(t *testing.T) {
	for _, tp := range testTopologies(t, DefaultLinkSpec()) {
		ring := tp.Ring()
		if len(ring) != tp.Nodes() {
			t.Fatalf("%s: ring has %d entries, want %d", tp.Name(), len(ring), tp.Nodes())
		}
		seen := make([]bool, tp.Nodes())
		for _, n := range ring {
			if n < 0 || n >= tp.Nodes() || seen[n] {
				t.Fatalf("%s: ring is not a permutation", tp.Name())
			}
			seen[n] = true
		}
		if tor, ok := tp.(*Torus); ok && tor.Nodes() > 1 {
			// The snake guarantees every consecutive pair is one hop apart
			// (only the final wrap may be longer).
			for i := 0; i+1 < len(ring); i++ {
				if d := torusDist(tor, ring[i], ring[i+1]); d != 1 {
					t.Fatalf("%s: ring step %d->%d spans %d hops", tor.Name(), ring[i], ring[i+1], d)
				}
			}
		}
	}
}

func TestIndirectRoutesUseValidLinks(t *testing.T) {
	for _, tp := range testTopologies(t, DefaultLinkSpec()) {
		for _, src := range []int{0, tp.Nodes() / 2, tp.Nodes() - 1} {
			for _, dst := range []int{0, 1 % tp.Nodes(), tp.Nodes() - 1} {
				for _, l := range tp.Route(src, dst) {
					if l < 0 || l >= tp.Links() {
						t.Fatalf("%s: route %d->%d uses link %d outside [0,%d)", tp.Name(), src, dst, l, tp.Links())
					}
					if tp.LinkBW(l) <= 0 {
						t.Fatalf("%s: link %d has bandwidth %v", tp.Name(), l, tp.LinkBW(l))
					}
				}
			}
		}
	}
}

func TestRouteAvoidDetoursAroundDeadNodes(t *testing.T) {
	tor, err := NewTorus(4, 4, 1, DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]bool, tor.Nodes())
	// Kill the direct dimension-ordered path from (0,0) to (2,0).
	dead[gridIndex(1, 0, 0, 4, 4)] = true
	src, dst := gridIndex(0, 0, 0, 4, 4), gridIndex(2, 0, 0, 4, 4)
	links, err := tor.routeAvoid(src, dst, dead)
	if err != nil {
		t.Fatal(err)
	}
	cur := src
	for _, l := range links {
		cur, _ = tor.step(l/torusDirs, l%torusDirs)
		if cur != dst && dead[cur] {
			t.Fatalf("detour passes through dead node %d", cur)
		}
	}
	if cur != dst {
		t.Fatalf("detour ends at %d, want %d", cur, dst)
	}
	if len(links) < 2 {
		t.Fatalf("detour %v is implausibly short", links)
	}
}

func TestRouteAvoidPartition(t *testing.T) {
	tor, err := NewTorus(3, 3, 1, DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]bool, tor.Nodes())
	// Surround (1,1): all four in-plane neighbors die, isolating it.
	for _, n := range []int{gridIndex(0, 1, 0, 3, 3), gridIndex(2, 1, 0, 3, 3), gridIndex(1, 0, 0, 3, 3), gridIndex(1, 2, 0, 3, 3)} {
		dead[n] = true
	}
	if _, err := tor.routeAvoid(gridIndex(1, 1, 0, 3, 3), 0, dead); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("got %v, want ErrPartitioned", err)
	}
	// The communicator surfaces the same error from the collectives.
	comm, err := NewDegradedComm(tor, []int{gridIndex(0, 1, 0, 3, 3), gridIndex(2, 1, 0, 3, 3), gridIndex(1, 0, 0, 3, 3), gridIndex(1, 2, 0, 3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.AnalyticNs(AllToAll, 1024); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("analytic on partitioned comm: got %v, want ErrPartitioned", err)
	}
}

func TestNewAutoShapes(t *testing.T) {
	cases := []struct {
		kind string
		p    int
		name string
	}{
		{"torus", 64, "torus-4x4x4"},
		{"torus", 24, "torus-4x3x2"},
		{"torus", 100000, "torus-50x50x40"},
		{"fat-tree", 100, "fat-tree-2x50"},
		{"fat-tree", 64, "fat-tree-1x64"},
		{"dragonfly", 100, "dragonfly-10x10"},
		{"dragonfly", 24, "dragonfly-6x4"},
	}
	for _, tc := range cases {
		tp, err := New(tc.kind, tc.p, DefaultLinkSpec())
		if err != nil {
			t.Fatalf("New(%s, %d): %v", tc.kind, tc.p, err)
		}
		if tp.Name() != tc.name {
			t.Errorf("New(%s, %d) = %s, want %s", tc.kind, tc.p, tp.Name(), tc.name)
		}
		if tp.Nodes() != tc.p {
			t.Errorf("New(%s, %d) has %d nodes", tc.kind, tc.p, tp.Nodes())
		}
	}
	if _, err := New("hypercube", 8, DefaultLinkSpec()); err == nil {
		t.Error("unknown kind must fail")
	}
	if len(Kinds()) != 3 {
		t.Errorf("Kinds() = %v", Kinds())
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	const gx, gy, gz = 5, 3, 4
	for n := 0; n < gx*gy*gz; n++ {
		x, y, z := gridCoords(n, gx, gy)
		if got := gridIndex(x, y, z, gx, gy); got != n {
			t.Fatalf("round trip %d -> (%d,%d,%d) -> %d", n, x, y, z, got)
		}
	}
}
