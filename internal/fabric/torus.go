package fabric

import "fmt"

// Torus is a 3D torus with directed wrap links in all six directions and
// deterministic dimension-ordered (x, then y, then z) shortest-path
// routing, ties broken toward the positive direction.
type Torus struct {
	X, Y, Z int
	spec    LinkSpec
}

// torus link IDs: 6 per node, node*6+dir.
const (
	dirXPos = iota
	dirXNeg
	dirYPos
	dirYNeg
	dirZPos
	dirZNeg
	torusDirs
)

// NewTorus builds an x*y*z torus.
func NewTorus(x, y, z int, spec LinkSpec) (*Torus, error) {
	if x < 1 || y < 1 || z < 1 {
		return nil, fmt.Errorf("fabric: torus dimensions %dx%dx%d must be positive", x, y, z)
	}
	return &Torus{X: x, Y: y, Z: z, spec: spec}, nil
}

func (t *Torus) Name() string  { return fmt.Sprintf("torus-%dx%dx%d", t.X, t.Y, t.Z) }
func (t *Torus) Nodes() int    { return t.X * t.Y * t.Z }
func (t *Torus) Links() int    { return t.Nodes() * torusDirs }
func (t *Torus) Spec() LinkSpec { return t.spec }

func (t *Torus) LinkBW(link int) float64 { return t.spec.BandwidthGBps }

func (t *Torus) Grid() (int, int, int) { return t.X, t.Y, t.Z }

// step returns the neighbor of n one hop in dir, with the link taken.
func (t *Torus) step(n, dir int) (next, link int) {
	x, y, z := gridCoords(n, t.X, t.Y)
	switch dir {
	case dirXPos:
		x = (x + 1) % t.X
	case dirXNeg:
		x = (x - 1 + t.X) % t.X
	case dirYPos:
		y = (y + 1) % t.Y
	case dirYNeg:
		y = (y - 1 + t.Y) % t.Y
	case dirZPos:
		z = (z + 1) % t.Z
	case dirZNeg:
		z = (z - 1 + t.Z) % t.Z
	}
	return gridIndex(x, y, z, t.X, t.Y), n*torusDirs + dir
}

// dimSteps returns the hop count and direction to correct one dimension:
// the shortest way around the ring, ties toward positive.
func dimSteps(from, to, size, pos, neg int) (hops, dir int) {
	d := (to - from + size) % size
	if d == 0 {
		return 0, pos
	}
	if d*2 <= size {
		return d, pos
	}
	return size - d, neg
}

// Route is dimension-ordered: correct x, then y, then z.
func (t *Torus) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	sx, sy, sz := gridCoords(src, t.X, t.Y)
	dx, dy, dz := gridCoords(dst, t.X, t.Y)
	hx, dirx := dimSteps(sx, dx, t.X, dirXPos, dirXNeg)
	hy, diry := dimSteps(sy, dy, t.Y, dirYPos, dirYNeg)
	hz, dirz := dimSteps(sz, dz, t.Z, dirZPos, dirZNeg)
	links := make([]int, 0, hx+hy+hz)
	cur := src
	walk := func(hops, dir int) {
		for i := 0; i < hops; i++ {
			next, l := t.step(cur, dir)
			links = append(links, l)
			cur = next
		}
	}
	walk(hx, dirx)
	walk(hy, diry)
	walk(hz, dirz)
	return links
}

// Ring returns the snake order: x sweeps alternate direction row by row, y
// rows alternate within planes, so consecutive ring nodes are always grid
// neighbors (the torus embeds the all-reduce ring with one-hop steps
// everywhere except the final wrap).
func (t *Torus) Ring() []int {
	out := make([]int, 0, t.Nodes())
	row := 0
	for z := 0; z < t.Z; z++ {
		for yy := 0; yy < t.Y; yy++ {
			y := yy
			if z%2 == 1 {
				y = t.Y - 1 - yy
			}
			for xx := 0; xx < t.X; xx++ {
				x := xx
				if row%2 == 1 {
					x = t.X - 1 - xx
				}
				out = append(out, gridIndex(x, y, z, t.X, t.Y))
			}
			row++
		}
	}
	return out
}

// routeAvoid routes around dead nodes with a deterministic BFS over the
// grid (fixed direction order, first-discovery predecessors), returning
// ErrPartitioned when no surviving path exists. Intermediate hops avoid
// dead nodes; src and dst themselves must be alive.
func (t *Torus) routeAvoid(src, dst int, dead []bool) ([]int, error) {
	if src == dst {
		return nil, nil
	}
	// Fast path: if the dimension-ordered route is clean, keep it.
	direct := t.Route(src, dst)
	clean := true
	for _, l := range direct {
		next, _ := t.step(l/torusDirs, l%torusDirs)
		if next != dst && dead[next] {
			clean = false
			break
		}
	}
	if clean {
		return direct, nil
	}
	p := t.Nodes()
	prev := make([]int32, p) // packed: node*8+dir+1; 0 = unvisited
	prev[src] = -1
	queue := make([]int, 0, p)
	queue = append(queue, src)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for dir := 0; dir < torusDirs; dir++ {
			next, _ := t.step(n, dir)
			if next == n || prev[next] != 0 || (next != dst && dead[next]) {
				continue
			}
			prev[next] = int32(n*8 + dir + 1)
			if next == dst {
				// Unwind the predecessor chain into link IDs.
				var rev []int
				for at := dst; at != src; {
					pk := prev[at]
					from := int(pk-1) / 8
					d := int(pk-1) % 8
					rev = append(rev, from*torusDirs+d)
					at = from
				}
				links := make([]int, len(rev))
				for i := range rev {
					links[i] = rev[len(rev)-1-i]
				}
				return links, nil
			}
			queue = append(queue, next)
		}
	}
	return nil, ErrPartitioned
}
