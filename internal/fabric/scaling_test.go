package fabric

import (
	"math"
	"testing"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/workload"
)

// nodeRate is the sustained per-node rate the scaling tests share: one
// detailed node simulation of the paper's best-mean EHP configuration.
func nodeRate(t *testing.T, k workload.Kernel) float64 {
	t.Helper()
	r := core.Simulate(arch.BestMeanEHP(), k, core.Options{})
	if r.Perf.TFLOPs <= 0 {
		t.Fatalf("node simulation returned %v TFLOP/s", r.Perf.TFLOPs)
	}
	return r.Perf.TFLOPs
}

// TestIdealFabricReproducesPaperProjection pins the degenerate case the
// whole scaling model is anchored on: with an infinite-bandwidth
// zero-latency fabric, efficiency is exactly 1 and the delivered
// throughput reduces to the paper's §V-F arithmetic — one node's sustained
// TFLOP/s times the node count (core.ProjectSystem) — to float tolerance,
// on every topology kind.
func TestIdealFabricReproducesPaperProjection(t *testing.T) {
	k := workload.CoMD()
	rate := nodeRate(t, k)
	r := core.Simulate(arch.BestMeanEHP(), k, core.Options{})
	for _, kind := range Kinds() {
		for _, p := range []int{8, 64, 512} {
			tp, err := New(kind, p, IdealLinkSpec())
			if err != nil {
				t.Fatal(err)
			}
			pt, err := Evaluate(NewComm(tp), k, rate, Weak)
			if err != nil {
				t.Fatal(err)
			}
			if pt.Efficiency != 1 {
				t.Errorf("%s p=%d: ideal-fabric efficiency %v, want exactly 1", kind, p, pt.Efficiency)
			}
			proj := core.ProjectSystem(r, p)
			got := pt.DeliveredTFLOPs / 1e6
			if d := math.Abs(got-proj.ExaFLOPs) / proj.ExaFLOPs; d > 1e-12 {
				t.Errorf("%s p=%d: delivered %v EF vs §V-F projection %v EF (rel %.3g)", kind, p, got, proj.ExaFLOPs, d)
			}
		}
	}
}

// TestFiniteFabricDivergesFromProjection is the other half of the anchor:
// under the finite-budget reference fabric the same workload must lose a
// measurable amount to communication — the gap the §V-F arithmetic cannot
// see.
func TestFiniteFabricDivergesFromProjection(t *testing.T) {
	k := workload.CoMD()
	rate := nodeRate(t, k)
	for _, kind := range Kinds() {
		tp, err := New(kind, 512, DefaultLinkSpec())
		if err != nil {
			t.Fatal(err)
		}
		pt, err := Evaluate(NewComm(tp), k, rate, Weak)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Efficiency >= 0.999 {
			t.Errorf("%s: efficiency %v indistinguishable from the ideal projection", kind, pt.Efficiency)
		}
		if pt.Efficiency <= 0 || pt.Efficiency >= 1 {
			t.Errorf("%s: efficiency %v outside (0,1)", kind, pt.Efficiency)
		}
		ideal := rate * 512
		if pt.DeliveredTFLOPs >= ideal {
			t.Errorf("%s: delivered %v not below ideal %v", kind, pt.DeliveredTFLOPs, ideal)
		}
	}
}

// TestCurveDeterministicAcrossWorkers: the satellite determinism property —
// the scaling curve is bit-identical for any worker-pool size.
func TestCurveDeterministicAcrossWorkers(t *testing.T) {
	k := workload.HPGMG()
	rate := nodeRate(t, k)
	sizes := []int{1, 2, 8, 27, 64, 360}
	var ref []Point
	for _, workers := range []int{1, 2, 7, 32} {
		pts, err := Curve("torus", DefaultLinkSpec(), k, rate, sizes, Strong, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = pts
			continue
		}
		for i := range pts {
			if pts[i] != ref[i] {
				t.Fatalf("workers=%d point %d differs: %+v vs %+v", workers, i, pts[i], ref[i])
			}
		}
	}
	if ref[0].Efficiency != 1 {
		t.Errorf("single node must be perfectly efficient, got %v", ref[0].Efficiency)
	}
}

// TestStrongScalingDegradesFasterThanWeak: with a fixed total problem the
// per-node compute shrinks while latency terms do not, so strong-scaling
// efficiency must fall below weak-scaling efficiency at scale and decrease
// monotonically with node count.
func TestStrongScalingDegradesFasterThanWeak(t *testing.T) {
	k := workload.CoMD()
	rate := nodeRate(t, k)
	sizes := []int{8, 64, 512}
	strong, err := Curve("torus", DefaultLinkSpec(), k, rate, sizes, Strong, 4)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Curve("torus", DefaultLinkSpec(), k, rate, sizes, Weak, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(strong); i++ {
		if strong[i].Efficiency >= strong[i-1].Efficiency {
			t.Errorf("strong efficiency not decreasing: %v then %v", strong[i-1].Efficiency, strong[i].Efficiency)
		}
	}
	last := len(sizes) - 1
	if strong[last].Efficiency >= weak[last].Efficiency {
		t.Errorf("at p=%d strong efficiency %v should trail weak %v", sizes[last], strong[last].Efficiency, weak[last].Efficiency)
	}
}

// TestProfilePayloads sanity-checks the workload-derived message sizes.
func TestProfilePayloads(t *testing.T) {
	if hb := Profile(workload.MaxFlops(), 64, Weak).HaloBytes; hb != 0 {
		t.Errorf("compute-intensive kernel has halo bytes %v", hb)
	}
	weak := Profile(workload.CoMD(), 64, Weak)
	strong := Profile(workload.CoMD(), 64, Strong)
	if weak.LocalBytes != workload.CoMD().FootprintGB*1e9 {
		t.Errorf("weak local bytes %v", weak.LocalBytes)
	}
	if strong.LocalBytes*64 != weak.LocalBytes {
		t.Errorf("strong local bytes %v not footprint/64", strong.LocalBytes)
	}
	if weak.HaloBytes <= strong.HaloBytes || strong.HaloBytes <= 0 {
		t.Errorf("halo bytes weak %v strong %v", weak.HaloBytes, strong.HaloBytes)
	}
	if weak.ReduceBytes != reduceBytes {
		t.Errorf("reduce bytes %v", weak.ReduceBytes)
	}
}
