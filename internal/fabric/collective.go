package fabric

import "fmt"

// Op selects a collective-communication pattern.
type Op int

const (
	// AllReduceRing is the bandwidth-optimal ring all-reduce: 2(p-1)
	// rounds of neighbor exchange with chunks of size/p.
	AllReduceRing Op = iota
	// AllReduceTree is the latency-optimal binomial-tree all-reduce:
	// reduce up, broadcast down, full-size messages. On a healthy torus
	// it runs dimension by dimension so every round's messages travel
	// link-disjoint grid segments.
	AllReduceTree
	// Halo is the nearest-neighbor halo exchange: six rounds, one per
	// face of the logical 3D grid, each a permutation send of one face's
	// ghost bytes.
	Halo
	// AllToAll is the complete exchange: p-1 shift rounds, each node
	// sending its per-pair payload to one distinct peer per round.
	AllToAll
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case AllReduceRing:
		return "allreduce-ring"
	case AllReduceTree:
		return "allreduce-tree"
	case Halo:
		return "halo"
	case AllToAll:
		return "all-to-all"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// msg is one point-to-point transfer between node IDs.
type msg struct{ src, dst int }

// round is one barrier-synchronized communication step: all messages
// launch together, the next round starts when the slowest completes (the
// round-synchronized semantics both the analytic model and the replay
// implement). repeat > 1 marks identical back-to-back rounds (the ring's).
type round struct {
	bytes  float64
	repeat int
	msgs   []msg
}

// Comm is a communicator: a topology plus the participating nodes. The
// healthy communicator includes every node; a degraded one excludes the
// failed set and reroutes around it.
type Comm struct {
	t      Topology
	ranks  []int // rank -> node, in the topology's ring order
	rankOf []int // node -> rank, -1 when dead
	dead   []bool
}

// NewComm builds the healthy communicator over all of t's nodes.
func NewComm(t Topology) *Comm {
	ring := t.Ring()
	rankOf := make([]int, t.Nodes())
	for r, n := range ring {
		rankOf[n] = r
	}
	return &Comm{t: t, ranks: ring, rankOf: rankOf}
}

// NewDegradedComm builds a communicator excluding the failed nodes; ranks
// are the survivors in ring order. At least one node must survive.
func NewDegradedComm(t Topology, failed []int) (*Comm, error) {
	dead := make([]bool, t.Nodes())
	for _, n := range failed {
		if n < 0 || n >= t.Nodes() {
			return nil, fmt.Errorf("fabric: failed node %d out of range (topology has %d nodes)", n, t.Nodes())
		}
		dead[n] = true
	}
	c := &Comm{t: t, dead: dead, rankOf: make([]int, t.Nodes())}
	for _, n := range t.Ring() {
		if dead[n] {
			c.rankOf[n] = -1
			continue
		}
		c.rankOf[n] = len(c.ranks)
		c.ranks = append(c.ranks, n)
	}
	if len(c.ranks) == 0 {
		return nil, fmt.Errorf("fabric: every node failed")
	}
	return c, nil
}

// Topology returns the underlying network.
func (c *Comm) Topology() Topology { return c.t }

// Size is the participant count.
func (c *Comm) Size() int { return len(c.ranks) }

// route returns the links from one node to another, detouring around dead
// nodes where the topology requires it.
func (c *Comm) route(src, dst int) ([]int, error) {
	if c.dead != nil {
		if av, ok := c.t.(avoider); ok {
			return av.routeAvoid(src, dst, c.dead)
		}
	}
	return c.t.Route(src, dst), nil
}

// rounds generates op's full round schedule for the given payload:
// AllReduce* take the total vector size, Halo the per-face ghost bytes,
// AllToAll the per-pair payload. This is the single source of truth for
// what the collective sends — the analytic cost model and the event-driven
// replay both consume it (the analytic all-to-all replaces enumeration
// with closed forms on healthy topologies, over these same rounds).
func (c *Comm) rounds(op Op, bytes float64) []round {
	p := len(c.ranks)
	if p < 2 {
		return nil
	}
	switch op {
	case AllReduceRing:
		ms := make([]msg, p)
		for i := range ms {
			ms[i] = msg{src: c.ranks[i], dst: c.ranks[(i+1)%p]}
		}
		return []round{{bytes: bytes / float64(p), repeat: 2 * (p - 1), msgs: ms}}

	case AllReduceTree:
		var reduce []round
		if tor, ok := c.t.(*Torus); ok && c.dead == nil {
			reduce = torusTreeReduce(tor, bytes)
		} else {
			for step := 1; step < p; step *= 2 {
				var ms []msg
				for i := 0; i+step < p; i += 2 * step {
					ms = append(ms, msg{src: c.ranks[i+step], dst: c.ranks[i]})
				}
				reduce = append(reduce, round{bytes: bytes, repeat: 1, msgs: ms})
			}
		}
		// Broadcast mirrors the reduce: same pairs, reversed order and
		// direction.
		out := append([]round(nil), reduce...)
		for i := len(reduce) - 1; i >= 0; i-- {
			ms := make([]msg, len(reduce[i].msgs))
			for j, m := range reduce[i].msgs {
				ms[j] = msg{src: m.dst, dst: m.src}
			}
			out = append(out, round{bytes: bytes, repeat: 1, msgs: ms})
		}
		return out

	case Halo:
		gx, gy, gz := c.t.Grid()
		var out []round
		for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
			size := [3]int{gx, gy, gz}
			if (d[0] != 0 && size[0] < 2) || (d[1] != 0 && size[1] < 2) || (d[2] != 0 && size[2] < 2) {
				continue // a flat dimension has no faces to exchange
			}
			var ms []msg
			for _, n := range c.ranks {
				if dst, ok := c.haloNeighbor(n, d, gx, gy, gz); ok {
					ms = append(ms, msg{src: n, dst: dst})
				}
			}
			if len(ms) > 0 {
				out = append(out, round{bytes: bytes, repeat: 1, msgs: ms})
			}
		}
		return out

	case AllToAll:
		if tor, ok := c.t.(*Torus); ok && c.dead == nil {
			return torusAllToAll(tor, bytes)
		}
		out := make([]round, 0, p-1)
		for r := 1; r < p; r++ {
			ms := make([]msg, p)
			for i := range ms {
				ms[i] = msg{src: c.ranks[i], dst: c.ranks[(i+r)%p]}
			}
			out = append(out, round{bytes: bytes, repeat: 1, msgs: ms})
		}
		return out
	}
	return nil
}

// haloNeighbor finds n's halo partner one logical-grid step in direction d,
// skipping dead nodes to the next survivor along the same axis (the
// redistribution a resilient domain decomposition performs). Reports false
// when the scan wraps back to n itself.
func (c *Comm) haloNeighbor(n int, d [3]int, gx, gy, gz int) (int, bool) {
	x, y, z := gridCoords(n, gx, gy)
	for s := 1; ; s++ {
		nx := ((x+d[0]*s)%gx + gx) % gx
		ny := ((y+d[1]*s)%gy + gy) % gy
		nz := ((z+d[2]*s)%gz + gz) % gz
		cand := gridIndex(nx, ny, nz, gx, gy)
		if cand == n {
			return 0, false
		}
		if c.dead == nil || !c.dead[cand] {
			return cand, true
		}
	}
}

// torusTreeReduce builds the dimension-by-dimension binomial reduce on a
// healthy torus: every x-line reduces to its x==0 node in parallel, then
// the x==0 plane reduces along y, then the (0,0,*) line along z. Each
// round's messages travel disjoint same-dimension ring segments, so the
// rounds are congestion-free by construction (the property the analytic
// model's zero-contention sum relies on).
func torusTreeReduce(t *Torus, bytes float64) []round {
	var out []round
	addDim := func(size int, node func(i, a, b int) int, spanA, spanB int) {
		for step := 1; step < size; step *= 2 {
			var ms []msg
			for i := 0; i+step < size; i += 2 * step {
				for a := 0; a < spanA; a++ {
					for b := 0; b < spanB; b++ {
						ms = append(ms, msg{src: node(i+step, a, b), dst: node(i, a, b)})
					}
				}
			}
			if len(ms) > 0 {
				out = append(out, round{bytes: bytes, repeat: 1, msgs: ms})
			}
		}
	}
	addDim(t.X, func(i, a, b int) int { return gridIndex(i, a, b, t.X, t.Y) }, t.Y, t.Z)
	addDim(t.Y, func(i, a, b int) int { return gridIndex(0, i, a, t.X, t.Y) }, t.Z, 1)
	addDim(t.Z, func(i, a, b int) int { return gridIndex(0, 0, i, t.X, t.Y) }, 1, 1)
	return out
}

// torusAllToAll builds the p-1 uniform-shift rounds of a healthy torus
// complete exchange: each round every node sends to the peer one fixed
// grid offset away. Dimension-ordered routing turns each round into three
// chained conveyors with zero queueing (see cost.go), which is what makes
// the closed-form cost exact.
func torusAllToAll(t *Torus, bytes float64) []round {
	p := t.Nodes()
	out := make([]round, 0, p-1)
	for dz := 0; dz < t.Z; dz++ {
		for dy := 0; dy < t.Y; dy++ {
			for dx := 0; dx < t.X; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				ms := make([]msg, p)
				for n := range ms {
					x, y, z := gridCoords(n, t.X, t.Y)
					ms[n] = msg{src: n, dst: gridIndex((x+dx)%t.X, (y+dy)%t.Y, (z+dz)%t.Z, t.X, t.Y)}
				}
				out = append(out, round{bytes: bytes, repeat: 1, msgs: ms})
			}
		}
	}
	return out
}
