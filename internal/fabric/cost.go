package fabric

// Analytic collective cost model. Every formula here is pinned against the
// brute-force event-driven replay (replay.go) by the property tests in
// cost_test.go, on every topology that the formula claims exactness for:
//
//   - Ring all-reduce: 2(p-1) times the worst uncontended path. The torus
//     snake ring's wrap message shares row links with the one-hop messages
//     (link loads of 2), but it arrives behind them conveyor-style — by the
//     time it reaches a shared link the link has just gone free — so the
//     replay shows zero queueing and the max-path form is exact. Indirect
//     topologies give every ring round loads of 1.
//
//   - Tree all-reduce and halo exchange: per-round merge formula
//
//       cost = max-path + max over links of (load-1)*serialization
//
//     which is exact whenever the contending messages reach their shared
//     link simultaneously. That holds for every tree round (binomial pairs
//     are spaced so at most one crossing message lands per fat-tree leaf or
//     dragonfly group per round; torus trees reduce dimension-by-dimension
//     over disjoint segments) and for halo on the torus (all loads 1). For
//     halo on the indirect topologies simultaneity is measured rather than
//     proven — the property test pins the gap at float roundoff across the
//     whole topology/spec/payload matrix.
//
//   - All-to-all, healthy topologies: closed forms, O(p) or O(1) per round
//     (derivations at each function). Degraded all-to-all falls back to the
//     O(p^2) per-round merge-formula enumeration.
//
// The point of the split: the replay is ground truth but O(messages*hops)
// events; the analytic forms cost microseconds at p = 100,000 and are what
// the scaling curves (scaling.go) and the service's /v1/scale route use.

// pathNs is the uncontended store-and-forward cost of a route: each hop
// serializes the payload on its link and then pays the hop latency.
func (c *Comm) pathNs(links []int, bytes float64) float64 {
	sp := c.t.Spec()
	var cost float64
	for _, l := range links {
		cost += sp.serNs(bytes, c.t.LinkBW(l)) + sp.latNs()
	}
	return cost
}

// analyticRound prices one round. loads is a scratch slice of length
// t.Links(), zeroed on entry and re-zeroed before returning. maxPathOnly
// drops the contention term (the ring's conveyor case).
func (c *Comm) analyticRound(r round, loads []int32, scratch []int, maxPathOnly bool) (float64, []int, error) {
	sp := c.t.Spec()
	var maxPath, extra float64
	used := scratch[:0]
	for _, m := range r.msgs {
		links, err := c.route(m.src, m.dst)
		if err != nil {
			return 0, used, err
		}
		var cost float64
		for _, l := range links {
			cost += sp.serNs(r.bytes, c.t.LinkBW(l)) + sp.latNs()
			loads[l]++
			used = append(used, l)
		}
		if cost > maxPath {
			maxPath = cost
		}
	}
	if !maxPathOnly {
		for _, l := range used {
			if loads[l] > 1 {
				if e := float64(loads[l]-1) * sp.serNs(r.bytes, c.t.LinkBW(l)); e > extra {
					extra = e
				}
			}
		}
	}
	for _, l := range used {
		loads[l] = 0
	}
	return maxPath + extra, used, nil
}

// AnalyticNs prices op for the given payload (see rounds for the payload
// convention per op) without simulating individual messages. Healthy
// all-to-alls dispatch to per-topology closed forms; everything else sums
// per-round merge-formula costs over the same round schedule the replay
// executes. Degraded communicators may return ErrPartitioned.
func (c *Comm) AnalyticNs(op Op, bytes float64) (float64, error) {
	if c.Size() < 2 {
		return 0, nil
	}
	if op == AllToAll && c.dead == nil {
		switch t := c.t.(type) {
		case *Torus:
			return torusAllToAllNs(t, bytes), nil
		case *FatTree:
			return fatTreeAllToAllNs(t, bytes), nil
		case *Dragonfly:
			return dragonflyAllToAllNs(t, bytes), nil
		}
	}
	loads := make([]int32, c.t.Links())
	var scratch []int
	var total float64
	for _, r := range c.rounds(op, bytes) {
		cost, used, err := c.analyticRound(r, loads, scratch, op == AllReduceRing)
		scratch = used
		if err != nil {
			return 0, err
		}
		total += cost * float64(r.repeat)
	}
	return total, nil
}

// torusAllToAllNs: in shift round (dx,dy,dz) every message travels the same
// sx+sy+sz hops (sd = shortest way around each ring). Dimension-ordered
// routing makes each round a set of conveyors: along any directed ring the
// messages advance in lockstep, so a message reaching a link always finds
// it just freed by the message ahead — zero queueing, and the round costs
// exactly (sx+sy+sz)*(ser+lat). Summing hop counts over all offsets
// factorizes per dimension:
//
//	T = (ser+lat) * (S(X)*Y*Z + X*S(Y)*Z + X*Y*S(Z)),  S(D) = sum_d min(d, D-d)
func torusAllToAllNs(t *Torus, bytes float64) float64 {
	sp := t.spec
	hop := sp.serNs(bytes, sp.BandwidthGBps) + sp.latNs()
	sd := func(d int) int {
		s := 0
		for i := 0; i < d; i++ {
			s += min(i, d-i)
		}
		return s
	}
	return hop * float64(sd(t.X)*t.Y*t.Z+t.X*sd(t.Y)*t.Z+t.X*t.Y*sd(t.Z))
}

// fatTreeAllToAllNs: in shift round r each leaf sends cross(r) = min(r,
// p-r, L) messages across the spine (the shifted window of L destinations
// overlaps the own leaf except for that many). All cross(r) arrive at their
// leaf's uplink together (each rode a private node link), serialize FIFO in
// stagger steps of the uplink serialization time, and land on destination
// downlinks in disjoint consecutive slots (a downlink receives from at most
// two source uplinks, and slot ranges cannot collide), so nothing queues
// after the uplink. The last message finishes at
//
//	4*lat + 2*ser_node + (cross(r)+1)*ser_uplink
//
// which dominates the in-leaf messages' 2*lat + 2*ser_node. A single-leaf
// tree has only in-leaf rounds.
func fatTreeAllToAllNs(t *FatTree, bytes float64) float64 {
	sp := t.spec
	a := sp.latNs()
	ser := sp.serNs(bytes, sp.BandwidthGBps)
	if t.leaves() == 1 {
		return float64(t.P-1) * (2*a + 2*ser)
	}
	serUp := sp.serNs(bytes, t.uplinkBW())
	var total float64
	for r := 1; r < t.P; r++ {
		cross := min(r, t.P-r, t.LeafSize)
		total += 4*a + 2*ser + float64(cross+1)*serUp
	}
	return total
}

// dragonflyAllToAllNs: write shift r = q*G + s (G the group size). Each
// group's L-node window splits G-s messages toward group g+q and s toward
// g+q+1, each ordered group pair owning a private global link, so the worst
// global-link load M(r) is:
//
//	q == 0:                   M = s      (the G-s others stay in-group)
//	q == groups-1 and s >= 1: M = G-s    (the s tail messages wrap home)
//	otherwise:                M = max(G-s, s), with s only if s >= 1
//
// All M messages arrive at the global link together (private node uplinks)
// and each destination node receives exactly one message per round, so the
// only queue is the global FIFO:
//
//	T(r) = max(3*lat + (2+M)*ser, in-group 2*lat + 2*ser if present)
func dragonflyAllToAllNs(t *Dragonfly, bytes float64) float64 {
	sp := t.spec
	a := sp.latNs()
	ser := sp.serNs(bytes, sp.BandwidthGBps)
	G, groups := t.GroupSize, t.groups()
	if groups == 1 {
		return float64(t.P-1) * (2*a + 2*ser)
	}
	var total float64
	for r := 1; r < t.P; r++ {
		q, s := r/G, r%G
		var m int
		intra := false
		switch {
		case q == 0:
			m, intra = s, true
		case q == groups-1 && s >= 1:
			m, intra = G-s, true
		default:
			m = G - s
			if s >= 1 && s > m {
				m = s
			}
		}
		cost := 3*a + float64(2+m)*ser
		if intra && 2*a+2*ser > cost {
			cost = 2*a + 2*ser
		}
		total += cost
	}
	return total
}
