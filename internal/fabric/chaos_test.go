package fabric

import (
	"testing"

	"ena/internal/faults"
	"ena/internal/obs"
)

// TestChaosLinkFlapRetransmits covers the fabric chaos-injection site: a
// link flap doubles one hop's serialization, so at probability 1 every hop
// retransmits, the collective slows down, and the injector counts every
// flap; at probability 0 (and for the nil injector) the replay is
// untouched.
func TestChaosLinkFlapRetransmits(t *testing.T) {
	tor, err := NewTorus(4, 3, 2, DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := NewComm(tor)
	clean, err := c.Replay(AllToAll, 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Retransmits != 0 {
		t.Fatalf("nil injector retransmitted %d times", clean.Retransmits)
	}

	reg := obs.NewRegistry()
	always := faults.NewChaos(faults.ChaosConfig{Seed: 1, LinkFlapProb: 1}, reg)
	flapped, err := c.Replay(AllToAll, 1<<16, always)
	if err != nil {
		t.Fatal(err)
	}
	if flapped.Retransmits != flapped.Hops || flapped.Hops != clean.Hops {
		t.Errorf("probability 1 must flap every hop: %d retransmits over %d hops (clean %d)",
			flapped.Retransmits, flapped.Hops, clean.Hops)
	}
	if flapped.Ns <= clean.Ns {
		t.Errorf("flapping every hop must slow the collective: %v vs %v", flapped.Ns, clean.Ns)
	}

	never := faults.NewChaos(faults.ChaosConfig{Seed: 1}, nil)
	off, err := c.Replay(AllToAll, 1<<16, never)
	if err != nil {
		t.Fatal(err)
	}
	if off != clean {
		t.Errorf("zero probability must match the nil injector: %+v vs %+v", off, clean)
	}
}

// TestChaosLinkFlapPartial: at an intermediate probability the flap count
// is deterministic per seed and strictly between the extremes.
func TestChaosLinkFlapPartial(t *testing.T) {
	tor, err := NewTorus(4, 4, 4, DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := NewComm(tor)
	cfg := faults.ChaosConfig{Seed: 99, LinkFlapProb: 0.3}
	a, err := c.Replay(AllReduceRing, 1<<20, faults.NewChaos(cfg, nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.Retransmits == 0 || a.Retransmits >= a.Hops {
		t.Errorf("p=0.3 flapped %d of %d hops", a.Retransmits, a.Hops)
	}
	b, err := c.Replay(AllReduceRing, 1<<20, faults.NewChaos(cfg, nil))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed must reproduce the same flaps: %+v vs %+v", a, b)
	}
}
