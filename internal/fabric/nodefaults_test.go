package fabric

import (
	"strings"
	"testing"

	"ena/internal/faults"
	"ena/internal/workload"
)

func TestFailedNodesTargetedAndCounted(t *testing.T) {
	m := faults.MustMask("node@3,node@10,node:2,gpu:1")
	a, err := FailedNodes(64, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FailedNodes(64, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 {
		t.Fatalf("got %v, want 2 targeted + 2 drawn", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic: %v vs %v", a, b)
		}
	}
	has := func(s []int, n int) bool {
		for _, v := range s {
			if v == n {
				return true
			}
		}
		return false
	}
	if !has(a, 3) || !has(a, 10) {
		t.Fatalf("targeted nodes missing from %v", a)
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("result %v not sorted unique", a)
		}
	}
	other, err := FailedNodes(64, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := len(other) == len(a)
	for i := 0; same && i < len(a); i++ {
		same = other[i] == a[i]
	}
	if same {
		t.Errorf("seeds 7 and 8 drew identical sets %v", a)
	}
}

func TestFailedNodesValidation(t *testing.T) {
	if _, err := FailedNodes(8, faults.MustMask("node@8"), 0); err == nil {
		t.Error("out-of-range target must fail")
	}
	if _, err := FailedNodes(8, faults.MustMask("node:8"), 0); err == nil {
		t.Error("killing every node must fail")
	}
	got, err := FailedNodes(8, faults.MustMask("gpu:2,hbm@1"), 0)
	if err != nil || len(got) != 0 {
		t.Errorf("node-free mask: got %v, %v", got, err)
	}
}

func TestSurfaceStartsHealthyAndDecays(t *testing.T) {
	tor, err := NewTorus(4, 4, 2, DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	rate := 20.0
	rel, err := Surface(tor, workload.CoMD(), rate, Weak, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 7 {
		t.Fatalf("surface has %d points, want 7", len(rel))
	}
	if rel[0] != 1 {
		t.Fatalf("surface must start at the healthy point, got %v", rel[0])
	}
	for k := 1; k < len(rel); k++ {
		if rel[k] <= 0 || rel[k] >= 1 {
			t.Errorf("rel[%d] = %v outside (0,1)", k, rel[k])
		}
		if rel[k] > rel[k-1]+1e-9 {
			t.Errorf("surface not decaying: rel[%d]=%v > rel[%d]=%v", k, rel[k], k-1, rel[k-1])
		}
	}
}

func TestAnalyzeNodeFailures(t *testing.T) {
	tor, err := NewTorus(4, 4, 2, DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeNodeFailures(tor, workload.CoMD(), 20, Weak, 4, 1, 5000, 72)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded.ExpectedRelPerf <= 0 || res.Degraded.ExpectedRelPerf > 1 {
		t.Errorf("expected rel perf %v outside (0,1]", res.Degraded.ExpectedRelPerf)
	}
	if res.Degraded.DegradedGain < 0 {
		t.Errorf("graceful degradation cannot lose throughput vs the binary model: gain %v", res.Degraded.DegradedGain)
	}
	if len(res.RelPerf) != 5 {
		t.Errorf("surface %v has wrong length", res.RelPerf)
	}
}

// TestApplyRejectsNodeEntries: whole-node terms are machine scope; the
// node-local injector must refuse them with a pointer at SplitNode.
func TestApplyRejectsNodeEntries(t *testing.T) {
	m := faults.MustMask("node:1,gpu:1")
	if _, err := faults.Apply(nil, m, 1); err == nil || !strings.Contains(err.Error(), "SplitNode") {
		t.Fatalf("Apply must reject machine-scope entries, got %v", err)
	}
	node, local := m.SplitNode()
	if node.String() != "node:1" || local.String() != "gpu:1" {
		t.Fatalf("SplitNode: %q / %q", node, local)
	}
}
