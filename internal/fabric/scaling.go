package fabric

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ena/internal/workload"
)

// Mode selects how the problem grows with the node count.
type Mode int

const (
	// Strong scaling divides a fixed total problem across the nodes.
	Strong Mode = iota
	// Weak scaling keeps the per-node problem fixed as nodes are added.
	Weak
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Strong {
		return "strong"
	}
	return "weak"
}

// reduceBytes is the fixed global all-reduce payload per timestep: the
// handful of scalars (residual norms, energy sums, dt control) every
// iterative proxy app reduces each step.
const reduceBytes = 512

// CommProfile is the per-timestep communication a kernel generates at a
// given scale, derived from its workload characterization.
type CommProfile struct {
	// LocalBytes is the per-node resident working set.
	LocalBytes float64
	// HaloBytes is the per-face ghost-exchange payload (zero for
	// compute-intensive kernels with no domain coupling).
	HaloBytes float64
	// ReduceBytes is the global all-reduce payload.
	ReduceBytes float64
}

// haloDepth is the ghost-layer depth by kernel category: compute-intensive
// kernels (MaxFlops) exchange nothing; memory-intensive sweeps carry one
// layer; balanced stencil/dynamics codes carry two.
func haloDepth(c workload.Category) float64 {
	switch c {
	case workload.ComputeIntensive:
		return 0
	case workload.MemoryIntensive:
		return 1
	default:
		return 2
	}
}

// Profile derives kernel k's per-timestep communication at p nodes. The
// per-node domain is the kernel's characterized footprint (divided across
// nodes under strong scaling); treating it as a cube of 8-byte elements,
// one face holds (elements)^(2/3) of them, and the halo payload is
// depth * face * 8 bytes.
func Profile(k workload.Kernel, p int, mode Mode) CommProfile {
	local := k.FootprintGB * 1e9
	if mode == Strong && p > 0 {
		local /= float64(p)
	}
	face := math.Pow(local/8, 2.0/3.0)
	return CommProfile{
		LocalBytes:  local,
		HaloBytes:   haloDepth(k.Category) * face * 8,
		ReduceBytes: reduceBytes,
	}
}

// Point is one node count's evaluation on a fabric: per-timestep compute
// and communication costs, the resulting parallel efficiency, and the
// machine's delivered throughput.
type Point struct {
	Nodes      int     `json:"nodes"`
	ComputeNs  float64 `json:"compute_ns"`
	HaloNs     float64 `json:"halo_ns"`
	ReduceNs   float64 `json:"reduce_ns"`
	Efficiency float64 `json:"efficiency"`
	// DeliveredTFLOPs is nodeTFLOPs * nodes * Efficiency: under an ideal
	// fabric it reduces to the paper's §V-F multiply-by-node-count
	// projection exactly.
	DeliveredTFLOPs float64 `json:"delivered_tflops"`
}

// Evaluate prices one timestep of kernel k on communicator c using the
// analytic cost model: compute from the kernel's arithmetic intensity over
// its local bytes at the node's sustained rate, halo exchange over the
// derived ghost payload, and the cheaper of ring and tree all-reduce for
// the step's global reduction.
func Evaluate(c *Comm, k workload.Kernel, nodeTFLOPs float64, mode Mode) (Point, error) {
	if nodeTFLOPs <= 0 {
		return Point{}, fmt.Errorf("fabric: node rate %v TFLOP/s must be positive", nodeTFLOPs)
	}
	p := c.Size()
	prof := Profile(k, p, mode)
	// TFLOP/s is 1e3 FLOP/ns.
	computeNs := prof.LocalBytes * k.Intensity / (nodeTFLOPs * 1e3)
	var haloNs, reduceNs float64
	if p > 1 {
		var err error
		if prof.HaloBytes > 0 {
			if haloNs, err = c.AnalyticNs(Halo, prof.HaloBytes); err != nil {
				return Point{}, err
			}
		}
		ringNs, err := c.AnalyticNs(AllReduceRing, prof.ReduceBytes)
		if err != nil {
			return Point{}, err
		}
		treeNs, err := c.AnalyticNs(AllReduceTree, prof.ReduceBytes)
		if err != nil {
			return Point{}, err
		}
		reduceNs = math.Min(ringNs, treeNs)
	}
	eff := 1.0
	if total := computeNs + haloNs + reduceNs; total > 0 {
		eff = computeNs / total
	}
	return Point{
		Nodes:           p,
		ComputeNs:       computeNs,
		HaloNs:          haloNs,
		ReduceNs:        reduceNs,
		Efficiency:      eff,
		DeliveredTFLOPs: nodeTFLOPs * float64(p) * eff,
	}, nil
}

// Curve evaluates the scaling curve of kernel k over the given node counts
// on fresh topologies of the given kind, fanning the points out over a
// worker pool. Results are positionally ordered by sizes and bit-identical
// for any worker count (each point is a pure function of its inputs).
func Curve(kind string, spec LinkSpec, k workload.Kernel, nodeTFLOPs float64, sizes []int, mode Mode, workers int) ([]Point, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(sizes) {
		workers = len(sizes)
	}
	points := make([]Point, len(sizes))
	errs := make([]error, len(sizes))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sizes) {
					return
				}
				t, err := New(kind, sizes[i], spec)
				if err != nil {
					errs[i] = err
					continue
				}
				points[i], errs[i] = Evaluate(NewComm(t), k, nodeTFLOPs, mode)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}
