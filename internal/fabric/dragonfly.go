package fabric

import "fmt"

// Dragonfly is a one-router-per-group dragonfly: GroupSize nodes share a
// router, and every ordered router pair is joined by one global link of
// node-link bandwidth. Minimal routing is node -> router [-> global ->
// router] -> node; the interesting congestion lives on the global links,
// which is exactly the pressure pattern real dragonflies manage with
// adaptive routing (not modeled — routes here are minimal and
// deterministic).
//
// Directed link IDs: [0,p) node->router, [p,2p) router->node, then
// globals at 2p + src*groups + dst.
type Dragonfly struct {
	P         int
	GroupSize int
	spec      LinkSpec
}

// NewDragonfly builds a p-node dragonfly; groupSize must divide p.
func NewDragonfly(p, groupSize int, spec LinkSpec) (*Dragonfly, error) {
	if p < 1 || groupSize < 1 || p%groupSize != 0 {
		return nil, fmt.Errorf("fabric: dragonfly group size %d must divide the node count %d", groupSize, p)
	}
	return &Dragonfly{P: p, GroupSize: groupSize, spec: spec}, nil
}

func (t *Dragonfly) Name() string   { return fmt.Sprintf("dragonfly-%dx%d", t.P/t.GroupSize, t.GroupSize) }
func (t *Dragonfly) Nodes() int     { return t.P }
func (t *Dragonfly) groups() int    { return t.P / t.GroupSize }
func (t *Dragonfly) Links() int     { return 2*t.P + t.groups()*t.groups() }
func (t *Dragonfly) Spec() LinkSpec { return t.spec }

func (t *Dragonfly) LinkBW(link int) float64 { return t.spec.BandwidthGBps }

func (t *Dragonfly) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	qs, qd := src/t.GroupSize, dst/t.GroupSize
	if qs == qd {
		return []int{src, t.P + dst}
	}
	return []int{src, 2*t.P + qs*t.groups() + qd, t.P + dst}
}

func (t *Dragonfly) Grid() (int, int, int) { return factor3(t.P) }

func (t *Dragonfly) Ring() []int {
	out := make([]int, t.P)
	for i := range out {
		out[i] = i
	}
	return out
}
