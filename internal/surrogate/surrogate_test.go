package surrogate

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"ena/internal/arch"
	"ena/internal/dse"
	"ena/internal/workload"
)

// smallSpace mirrors the dse determinism suite's 3x3x3 grid.
func smallSpace() dse.Space {
	return dse.Space{
		CUs:      []int{256, 320, 384},
		FreqsMHz: []float64{925, 1000, 1100},
		BWsTBps:  []float64{2, 3, 4},
	}
}

// TestFullBudgetMatchesExplore is the correctness anchor: with the budget
// covering the whole space, the surrogate evaluates every point and its
// Finalized Outcome must equal dse.Explore's bit for bit (reflect.DeepEqual
// compares every float exactly).
func TestFullBudgetMatchesExplore(t *testing.T) {
	space := smallSpace()
	ks := workload.Suite()[:4]
	want := dse.Explore(space, ks, arch.NodePowerBudgetW, 0)

	res, err := Explore(context.Background(), space, ks, arch.NodePowerBudgetW, 0,
		Options{Budget: space.Size(), Seed: 7, BatchSize: 4, InitEvals: 5}, dse.Instr{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != space.Size() {
		t.Fatalf("evaluated %d points, want the whole space (%d)", len(res.Trajectory), space.Size())
	}
	if !reflect.DeepEqual(res.Outcome, want) {
		t.Fatalf("full-budget surrogate outcome differs from Explore\n got %+v\nwant %+v", res.Outcome, want)
	}
}

// TestFullBudgetMatchesExploreExpanded repeats the anchor on a space using
// every packaging axis.
func TestFullBudgetMatchesExploreExpanded(t *testing.T) {
	space := dse.Space{
		CUs:         []int{256, 320},
		FreqsMHz:    []float64{1000},
		BWsTBps:     []float64{2, 3},
		GPUChiplets: []int{4, 8},
		HBMStackGBs: []float64{16, 32},
		ExtModules:  []int{2, 4},
	}
	ks := workload.Suite()[:3]
	want := dse.Explore(space, ks, arch.NodePowerBudgetW, 0)
	res, err := Explore(context.Background(), space, ks, arch.NodePowerBudgetW, 0,
		Options{Budget: space.Size(), Seed: 3, BatchSize: 8, InitEvals: 6}, dse.Instr{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Outcome, want) {
		t.Fatalf("full-budget surrogate outcome differs from Explore on expanded space")
	}
}

// TestSeededDeterminism: identical inputs and seed yield the identical
// Result — trajectory, rounds and every float of the Outcome.
func TestSeededDeterminism(t *testing.T) {
	space := smallSpace()
	ks := workload.Suite()[:4]
	run := func(seed int64) Result {
		res, err := Explore(context.Background(), space, ks, arch.NodePowerBudgetW, 0,
			Options{Budget: 15, Seed: seed, BatchSize: 4, InitEvals: 5}, dse.Instr{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results\n a traj %v\n b traj %v", a.Trajectory, b.Trajectory)
	}
	c := run(43)
	if reflect.DeepEqual(a.Trajectory, c.Trajectory) {
		t.Logf("note: seeds 42 and 43 chose identical trajectories (legal, just unlikely)")
	}
}

// TestWorkerCountInvariance mirrors the dse determinism suite: the batch
// evaluator's pool width and the forest builder's parallelism must not
// influence any byte of the result.
func TestWorkerCountInvariance(t *testing.T) {
	space := smallSpace()
	ks := workload.Suite()[:4]
	run := func() Result {
		res, err := Explore(context.Background(), space, ks, arch.NodePowerBudgetW, 0,
			Options{Budget: 18, Seed: 9, BatchSize: 5, InitEvals: 6}, dse.Instr{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the result\n serial traj %v\nparallel traj %v",
			serial.Trajectory, parallel.Trajectory)
	}
}

// TestFindsGoldenWithinQuarterBudget is the sample-efficiency acceptance pin:
// on the paper's default space (490 points) the surrogate must select the
// exact golden best-mean point — 320 CUs / 1000 MHz / 3 TB/s — within a
// quarter of the exhaustive evaluation count.
func TestFindsGoldenWithinQuarterBudget(t *testing.T) {
	space := dse.DefaultSpace()
	budget := space.Size() / 4 // 122 of 490
	res, err := Explore(context.Background(), space, workload.Suite(), arch.NodePowerBudgetW, 0,
		Options{Budget: budget, Seed: 1}, dse.Instr{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) > budget {
		t.Fatalf("evaluated %d points, budget %d", len(res.Trajectory), budget)
	}
	golden := dse.Point{CUs: arch.BestMeanCUs, FreqMHz: arch.BestMeanFreqMHz, BWTBps: arch.BestMeanBWTBps}
	if res.Outcome.BestMean.Point != golden {
		t.Fatalf("best mean = %v after %d evals, want golden %v",
			res.Outcome.BestMean.Point, len(res.Trajectory), golden)
	}
}

// TestEvaluatorSeam: a custom evaluator sees exactly the acquisition batches
// and its results are what Finalize consumes — the cluster fan-out contract.
func TestEvaluatorSeam(t *testing.T) {
	space := smallSpace()
	ks := workload.Suite()[:2]
	var batches [][]dse.Point
	local := LocalEvaluator(ks, arch.NodePowerBudgetW, 0, nil)
	spy := func(ctx context.Context, pts []dse.Point) ([]dse.Eval, error) {
		batches = append(batches, append([]dse.Point(nil), pts...))
		return local(ctx, pts)
	}
	res, err := Explore(context.Background(), space, ks, arch.NodePowerBudgetW, 0,
		Options{Budget: 12, Seed: 5, BatchSize: 4, InitEvals: 4}, dse.Instr{}, spy)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != res.Rounds {
		t.Fatalf("evaluator saw %d batches, result reports %d rounds", len(batches), res.Rounds)
	}
	var total int
	for _, b := range batches {
		total += len(b)
	}
	if total != len(res.Trajectory) || total != 12 {
		t.Fatalf("batches cover %d points, trajectory %d, budget 12", total, len(res.Trajectory))
	}
}

// TestOptionsClamp: budgets beyond the space clamp; invalid spaces error.
func TestOptionsClamp(t *testing.T) {
	space := smallSpace()
	ks := workload.Suite()[:1]
	res, err := Explore(context.Background(), space, ks, arch.NodePowerBudgetW, 0,
		Options{Budget: 10_000, Seed: 0}, dse.Instr{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != space.Size() {
		t.Fatalf("over-budget run evaluated %d points, want %d", len(res.Trajectory), space.Size())
	}

	bad := space
	bad.CUs = nil
	if _, err := Explore(context.Background(), bad, ks, arch.NodePowerBudgetW, 0, Options{}, dse.Instr{}, nil); err == nil {
		t.Fatal("invalid space accepted")
	}
}

// TestCachedEvaluatorBitIdentical: running with a shared PerfCache (warm or
// cold) must not change a single bit of the outcome versus cache-free runs.
func TestCachedEvaluatorBitIdentical(t *testing.T) {
	space := smallSpace()
	ks := workload.Suite()[:4]
	opts := Options{Budget: 15, Seed: 11, BatchSize: 4, InitEvals: 5}
	bare, err := Explore(context.Background(), space, ks, arch.NodePowerBudgetW, 0, opts, dse.Instr{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := dse.NewPerfCache()
	for pass := 0; pass < 2; pass++ {
		cached, err := Explore(context.Background(), space, ks, arch.NodePowerBudgetW, 0, opts, dse.Instr{},
			LocalEvaluator(ks, arch.NodePowerBudgetW, 0, cache))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, cached) {
			t.Fatalf("pass %d: perf-cached run diverged from cache-free run", pass)
		}
	}
}

// TestCancellation: a cancelled context aborts the run with its error.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Explore(ctx, smallSpace(), workload.Suite()[:1], arch.NodePowerBudgetW, 0, Options{}, dse.Instr{}, nil)
	if err == nil {
		t.Fatal("cancelled exploration returned nil error")
	}
}
