// Package surrogate implements surrogate-guided design-space exploration: a
// deterministic, seeded random-forest regressor fit to the design points
// evaluated so far, with expected-improvement batch acquisition choosing what
// to evaluate next. It sits behind the same evaluation seam the exhaustive
// sweeps use — every point goes through dse.EvaluatePointContext semantics
// (optionally perf-row cached, optionally fanned out across cluster shards),
// and the final Outcome comes from dse.Finalize over the evaluated points in
// canonical order. With the budget set to the whole space the result is
// therefore bit-identical to dse.Explore; with a fraction of it, the
// explorer finds the best-mean optimum in a fraction of the evaluations.
//
// Determinism contract: a run is a pure function of (space, kernels, budget,
// optimizations, Options). All randomness flows from Options.Seed through
// explicitly owned generators; batch results are stored by point index;
// acquisition ties break by canonical point index; and neither the worker
// count of the batch evaluator nor the number of goroutines building trees
// influences any float in the result.
package surrogate

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"ena/internal/arch"
	"ena/internal/dse"
	"ena/internal/obs"
	"ena/internal/powopt"
	"ena/internal/stats"
	"ena/internal/workload"
)

// Options tune the explorer. The zero value selects sensible defaults for
// every field (see withDefaults); only Seed has no default worth naming —
// zero is as good a seed as any.
type Options struct {
	// Budget is the maximum number of points to evaluate (clamped to the
	// space size; 0 means a quarter of the space).
	Budget int
	// Seed drives all randomness: the initial sample, bootstrap draws,
	// feature subsets and candidate subsampling.
	Seed int64
	// InitEvals is the size of the seeded initial random sample
	// (0 = 3 batches' worth).
	InitEvals int
	// BatchSize is the number of points acquired per round (0 = 16).
	BatchSize int
	// Trees is the forest size (0 = 24).
	Trees int
	// MinLeaf is the minimum samples per leaf (0 = 2).
	MinLeaf int
	// MaxDepth caps tree depth (0 = 14).
	MaxDepth int
	// CandidatePool caps how many unevaluated points are scored per round
	// (0 = 2048); larger pools score more of the space per round at
	// proportional prediction cost.
	CandidatePool int
}

func (o Options) withDefaults(spaceSize int) Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.InitEvals <= 0 {
		o.InitEvals = 3 * o.BatchSize
	}
	if o.Budget <= 0 {
		o.Budget = spaceSize / 4
	}
	if o.Budget < o.InitEvals {
		o.Budget = o.InitEvals
	}
	if o.Budget > spaceSize {
		o.Budget = spaceSize
	}
	if o.InitEvals > o.Budget {
		o.InitEvals = o.Budget
	}
	if o.Trees <= 0 {
		o.Trees = 24
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 2
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 14
	}
	if o.CandidatePool <= 0 {
		o.CandidatePool = 2048
	}
	return o
}

// Evaluator evaluates one acquisition batch; out[i] must be pts[i]'s Eval,
// computed exactly as dse.EvaluatePointContext computes it (MeanScore left
// zero — it is assigned by Finalize). The local evaluator runs a worker pool
// in-process; the cluster evaluator fans the batch out across shard workers.
type Evaluator func(ctx context.Context, pts []dse.Point) ([]dse.Eval, error)

// Result is a completed surrogate exploration.
type Result struct {
	// Outcome is dse.Finalize over the evaluated points in canonical
	// order — the same shape an exhaustive Explore returns, restricted to
	// the evaluated subset.
	Outcome dse.Outcome
	// Trajectory lists the evaluated points as indices into
	// space.Points(), in evaluation order (acquisition priority within a
	// round). Sample-efficiency curves are derived from it.
	Trajectory []int
	// Rounds counts evaluation rounds (initial sample included).
	Rounds int
	// SpaceSize, Budget and Seed echo the resolved run parameters.
	SpaceSize int
	Budget    int
	Seed      int64
}

// LocalEvaluator returns an in-process batch evaluator bound to the kernels,
// budget and optimizations, evaluating batch points on a bounded worker pool.
// cache (optional) reuses perf rows across rounds and runs.
func LocalEvaluator(kernels []workload.Kernel, budgetW float64, opts powopt.Technique, cache *dse.PerfCache) Evaluator {
	evalOne := dse.NewPointEvaluator(kernels, budgetW, opts, cache)
	return func(ctx context.Context, pts []dse.Point) ([]dse.Eval, error) {
		out := make([]dse.Eval, len(pts))
		workers := runtime.GOMAXPROCS(0)
		if workers > len(pts) {
			workers = len(pts)
		}
		work := make(chan int)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if ctx.Err() != nil {
						continue
					}
					ev, err := evalOne(ctx, pts[i])
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						continue
					}
					out[i] = ev
				}
			}()
		}
		for i := range pts {
			work <- i
		}
		close(work)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return out, nil
	}
}

// Explore runs the surrogate-guided exploration: a seeded initial sample,
// then rounds of fit-forest → score expected improvement → evaluate the top
// batch, until the budget (or the space) is exhausted. ev nil means the
// local evaluator without perf caching. The space must Validate.
func Explore(ctx context.Context, space dse.Space, kernels []workload.Kernel, budgetW float64, opts powopt.Technique, so Options, ins dse.Instr, ev Evaluator) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	reg := ins.Reg
	if reg == nil && ins.Tracer == nil {
		reg = obs.Default().Reg
	}
	if ev == nil {
		ev = LocalEvaluator(kernels, budgetW, opts, nil)
	}
	pts := space.Points()
	n := len(pts)
	so = so.withDefaults(n)
	rng := rand.New(rand.NewSource(so.Seed))

	feats, active := features(pts)
	mtry := (len(active) + 1) / 2
	if mtry < 2 {
		mtry = len(active)
	}

	evals := make([]dse.Eval, n)
	evaluated := make([]bool, n)
	traj := make([]int, 0, so.Budget)
	evalBatch := func(batch []int) error {
		bp := make([]dse.Point, len(batch))
		for j, i := range batch {
			bp[j] = pts[i]
		}
		res, err := ev(ctx, bp)
		if err != nil {
			return err
		}
		if len(res) != len(batch) {
			return fmt.Errorf("surrogate: evaluator returned %d evals for %d points", len(res), len(batch))
		}
		for j, i := range batch {
			evals[i] = res[j]
			evaluated[i] = true
			traj = append(traj, i)
		}
		reg.Counter("dse.surrogate_evals").Add(int64(len(batch)))
		return nil
	}

	// Round 0: the seeded initial sample.
	if err := evalBatch(rng.Perm(n)[:so.InitEvals]); err != nil {
		return Result{}, err
	}
	rounds := 1

	scratch := make([]float64, so.Trees)
	for len(traj) < so.Budget && len(traj) < n {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		X, y, best := trainingSet(evals, evaluated, feats, len(kernels))
		seeds := make([]int64, so.Trees)
		for i := range seeds {
			seeds[i] = rng.Int63()
		}
		f := fitForest(seeds, X, y, forestOpts{
			minLeaf:  so.MinLeaf,
			maxDepth: so.MaxDepth,
			mtry:     mtry,
			feats:    active,
		})

		cands := make([]int, 0, n-len(traj))
		for i := 0; i < n; i++ {
			if !evaluated[i] {
				cands = append(cands, i)
			}
		}
		if len(cands) > so.CandidatePool {
			pick := rng.Perm(len(cands))[:so.CandidatePool]
			sort.Ints(pick)
			sub := make([]int, len(pick))
			for j, k := range pick {
				sub[j] = cands[k]
			}
			cands = sub
		}

		type scored struct {
			idx int
			ei  float64
		}
		scores := make([]scored, len(cands))
		for j, i := range cands {
			mu, sigma := f.predict(feats[i], scratch)
			scores[j] = scored{idx: i, ei: expectedImprovement(mu, sigma, best)}
		}
		sort.Slice(scores, func(a, b int) bool {
			if scores[a].ei != scores[b].ei {
				return scores[a].ei > scores[b].ei
			}
			return scores[a].idx < scores[b].idx
		})
		b := so.BatchSize
		if rem := so.Budget - len(traj); b > rem {
			b = rem
		}
		if b > len(scores) {
			b = len(scores)
		}
		batch := make([]int, b)
		for j := 0; j < b; j++ {
			batch[j] = scores[j].idx
		}
		if err := evalBatch(batch); err != nil {
			return Result{}, err
		}
		rounds++
	}
	reg.Counter("dse.surrogate_rounds").Add(int64(rounds))

	final := make([]dse.Eval, 0, len(traj))
	for i := 0; i < n; i++ {
		if evaluated[i] {
			final = append(final, evals[i])
		}
	}
	return Result{
		Outcome:    dse.Finalize(final, kernels, budgetW, opts),
		Trajectory: traj,
		Rounds:     rounds,
		SpaceSize:  n,
		Budget:     so.Budget,
		Seed:       so.Seed,
	}, nil
}

// features embeds every point as a 6-vector (CUs, freq, bandwidth, chiplet
// count, stack capacity, chain depth), materializing packaging defaults so
// mixed spaces embed consistently. active lists the feature indices that
// actually vary across the space — the only ones worth splitting on.
func features(pts []dse.Point) (feats [][]float64, active []int) {
	feats = make([][]float64, len(pts))
	for i, p := range pts {
		g, h, m := p.GPUChiplets, p.HBMStackGB, p.ExtModules
		if g == 0 {
			g = arch.GPUChipletCount
		}
		if h == 0 {
			h = arch.HBMStackCapacityGB
		}
		if m == 0 {
			m = arch.DefaultModulesPerChain
		}
		feats[i] = []float64{float64(p.CUs), p.FreqMHz, p.BWTBps, float64(g), h, float64(m)}
	}
	for d := 0; d < 6; d++ {
		for i := 1; i < len(pts); i++ {
			if feats[i][d] != feats[0][d] {
				active = append(active, d)
				break
			}
		}
	}
	if len(active) == 0 {
		active = []int{0}
	}
	return feats, active
}

// trainingSet builds the regression inputs over the evaluated points in
// canonical index order. The target mirrors the best-mean selection rule of
// dse.Finalize restricted to the evaluated set: infeasible points and points
// beyond the provisioned CU count score zero; the rest score the mean of
// per-kernel performance normalized by the best observed so far. best is the
// incumbent (maximum target).
func trainingSet(evals []dse.Eval, evaluated []bool, feats [][]float64, nKernels int) (X [][]float64, y []float64, best float64) {
	maxPerf := make([]float64, nKernels)
	for i, done := range evaluated {
		if !done {
			continue
		}
		for ki, p := range evals[i].PerfTFLOPs {
			if p > maxPerf[ki] {
				maxPerf[ki] = p
			}
		}
	}
	norm := make([]float64, nKernels)
	for i, done := range evaluated {
		if !done {
			continue
		}
		var obj float64
		if evals[i].FeasibleAll && evals[i].Point.CUs <= arch.ProvisionedCUs {
			for ki, p := range evals[i].PerfTFLOPs {
				if maxPerf[ki] > 0 {
					norm[ki] = p / maxPerf[ki]
				} else {
					norm[ki] = 0
				}
			}
			obj = stats.Mean(norm)
		}
		X = append(X, feats[i])
		y = append(y, obj)
		if obj > best {
			best = obj
		}
	}
	return X, y, best
}

// expectedImprovement is the standard EI acquisition for maximization, with
// a small exploration margin; a zero-variance prediction degenerates to the
// plain improvement.
func expectedImprovement(mu, sigma, best float64) float64 {
	const xi = 1e-3
	z := mu - best - xi
	if sigma < 1e-12 {
		if z > 0 {
			return z
		}
		return 0
	}
	u := z / sigma
	return z*normCDF(u) + sigma*normPDF(u)
}

func normCDF(u float64) float64 { return 0.5 * math.Erfc(-u/math.Sqrt2) }

func normPDF(u float64) float64 { return math.Exp(-u*u/2) / math.Sqrt(2*math.Pi) }
