package surrogate

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// forest is a seeded random-forest regressor over design-point features. It
// is deterministic by construction: every tree owns a rand.Rand derived from
// a pre-assigned seed and is stored by its index, bootstrap draws and feature
// subsets come only from that per-tree generator, and split search iterates
// samples in a fully ordered way (value, then point index) — so fitting is
// bit-identical no matter how many goroutines build trees.
type forest struct {
	trees []tree
}

type forestOpts struct {
	minLeaf  int
	maxDepth int
	mtry     int   // features considered per split
	feats    []int // indices of features with >1 distinct value
}

// node is one tree node; feat < 0 marks a leaf carrying val.
type node struct {
	feat        int
	thr         float64
	left, right int32
	val         float64
}

type tree struct {
	nodes []node
}

// fitForest trains one tree per seed over the sample matrix X (row-major,
// one row per evaluated point) and targets y, building trees concurrently.
func fitForest(seeds []int64, X [][]float64, y []float64, o forestOpts) *forest {
	f := &forest{trees: make([]tree, len(seeds))}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				f.trees[i] = buildTree(rand.New(rand.NewSource(seeds[i])), X, y, o)
			}
		}()
	}
	for i := range seeds {
		work <- i
	}
	close(work)
	wg.Wait()
	return f
}

func buildTree(rng *rand.Rand, X [][]float64, y []float64, o forestOpts) tree {
	n := len(y)
	sample := make([]int, n)
	for i := range sample {
		sample[i] = rng.Intn(n)
	}
	var t tree
	t.grow(rng, X, y, sample, 0, o)
	return t
}

// grow appends the subtree fit to sample and returns its root's node index.
func (t *tree) grow(rng *rand.Rand, X [][]float64, y []float64, sample []int, depth int, o forestOpts) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{feat: -1})

	var sum float64
	allEqual := true
	for _, i := range sample {
		sum += y[i]
		if y[i] != y[sample[0]] {
			allEqual = false
		}
	}
	mean := sum / float64(len(sample))
	if allEqual || depth >= o.maxDepth || len(sample) <= o.minLeaf {
		t.nodes[idx].val = mean
		return idx
	}

	// Split search over a random subset of the informative features: for
	// each, order the sample by (value, point index) and scan thresholds
	// between distinct values, maximizing the variance-reduction surrogate
	// sumL²/nL + sumR²/nR via prefix sums. Strict > keeps the first best in
	// the (deterministic) iteration order, fixing all tie-breaks.
	mtry := o.mtry
	if mtry > len(o.feats) {
		mtry = len(o.feats)
	}
	featPerm := rng.Perm(len(o.feats))[:mtry]
	bestGain := math.Inf(-1)
	bestFeat := -1
	var bestThr float64
	ord := make([]int, len(sample))
	for _, fp := range featPerm {
		ft := o.feats[fp]
		copy(ord, sample)
		sort.Slice(ord, func(a, b int) bool {
			xa, xb := X[ord[a]][ft], X[ord[b]][ft]
			if xa != xb {
				return xa < xb
			}
			return ord[a] < ord[b]
		})
		var sl float64
		nl := 0
		for k := 0; k < len(ord)-1; k++ {
			sl += y[ord[k]]
			nl++
			if X[ord[k]][ft] == X[ord[k+1]][ft] {
				continue
			}
			sr := sum - sl
			nr := len(ord) - nl
			gain := sl*sl/float64(nl) + sr*sr/float64(nr)
			if gain > bestGain {
				bestGain = gain
				bestFeat = ft
				bestThr = (X[ord[k]][ft] + X[ord[k+1]][ft]) / 2
			}
		}
	}
	if bestFeat < 0 {
		t.nodes[idx].val = mean
		return idx
	}

	var left, right []int
	for _, i := range sample {
		if X[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		t.nodes[idx].val = mean
		return idx
	}
	t.nodes[idx].feat = bestFeat
	t.nodes[idx].thr = bestThr
	l := t.grow(rng, X, y, left, depth+1, o)
	r := t.grow(rng, X, y, right, depth+1, o)
	t.nodes[idx].left = l
	t.nodes[idx].right = r
	return idx
}

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		nd := &t.nodes[i]
		if nd.feat < 0 {
			return nd.val
		}
		if x[nd.feat] <= nd.thr {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// predict returns the cross-tree mean and (population) standard deviation at
// x; scratch must hold len(trees) float64s and avoids a per-candidate alloc.
func (f *forest) predict(x []float64, scratch []float64) (mu, sigma float64) {
	var sum float64
	for i := range f.trees {
		v := f.trees[i].predict(x)
		scratch[i] = v
		sum += v
	}
	mu = sum / float64(len(f.trees))
	var ss float64
	for _, v := range scratch[:len(f.trees)] {
		d := v - mu
		ss += d * d
	}
	sigma = math.Sqrt(ss / float64(len(f.trees)))
	return mu, sigma
}
