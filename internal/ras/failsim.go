package ras

import (
	"math"
	"math/rand"
)

// This file adds a Monte Carlo failure-injection simulator for the
// checkpoint/restart analysis: rather than trusting the first-order
// formulas, it draws exponential failure times at the system MTTF and
// replays a long job under periodic checkpointing, measuring realized
// machine efficiency. Tests use it to validate Daly's approximation.

// FailSimConfig parameterizes a failure-injection run.
type FailSimConfig struct {
	SystemMTTFMins float64
	IntervalMins   float64 // checkpoint interval (useful work per checkpoint)
	CheckpointMins float64 // cost of writing one checkpoint
	// RestartMins is the cost of restarting after a failure. nil means the
	// default of one checkpoint-write equivalent; point at zero (e.g. with
	// Mins(0)) for a genuinely free restart.
	RestartMins *float64
	JobWorkMins float64 // useful work the job must complete
	Seed        int64
}

// Mins is a convenience for the optional duration fields: Mins(0) expresses
// a true zero-cost restart, which the old float64 zero value could not.
func Mins(v float64) *float64 { return &v }

// FailSimResult summarizes a run.
type FailSimResult struct {
	WallClockMins  float64
	UsefulMins     float64
	Failures       int
	Checkpoints    int
	LostWorkMins   float64
	Efficiency     float64 // UsefulMins / WallClockMins
	AnalyticEst    float64 // CheckpointEfficiency for the same parameters
	EstimationGapP float64 // |simulated - analytic| in percentage points
}

// SimulateFailures replays the job. Progress is only durable at checkpoint
// boundaries: a failure rolls back to the last completed checkpoint and
// pays the restart cost before resuming.
func SimulateFailures(c FailSimConfig) FailSimResult {
	rng := rand.New(rand.NewSource(c.Seed))
	restart := c.CheckpointMins
	if c.RestartMins != nil {
		restart = *c.RestartMins
	}
	var res FailSimResult
	if c.IntervalMins <= 0 || c.SystemMTTFMins <= 0 || c.JobWorkMins <= 0 {
		return res
	}

	var wall, durable float64
	nextFailure := rng.ExpFloat64() * c.SystemMTTFMins
	fail := func() {
		res.Failures++
		wall = nextFailure + restart
		nextFailure = wall + rng.ExpFloat64()*c.SystemMTTFMins
	}

	for durable < c.JobWorkMins {
		work := c.IntervalMins
		if durable+work > c.JobWorkMins {
			work = c.JobWorkMins - durable
		}
		if wall+work > nextFailure {
			// Failure mid-interval: partial progress is lost.
			res.LostWorkMins += nextFailure - wall
			fail()
			continue
		}
		wall += work
		if durable+work >= c.JobWorkMins {
			durable += work // final stretch needs no checkpoint
			break
		}
		if wall+c.CheckpointMins > nextFailure {
			// Failure while writing the checkpoint: the whole interval
			// rolls back.
			res.LostWorkMins += work + (nextFailure - wall)
			fail()
			continue
		}
		wall += c.CheckpointMins
		res.Checkpoints++
		durable += work
	}

	res.WallClockMins = wall
	res.UsefulMins = c.JobWorkMins
	if wall > 0 {
		res.Efficiency = c.JobWorkMins / wall
	}
	res.AnalyticEst = CheckpointEfficiency(c.IntervalMins, c.CheckpointMins, c.SystemMTTFMins)
	res.EstimationGapP = math.Abs(res.Efficiency-res.AnalyticEst) * 100
	return res
}
