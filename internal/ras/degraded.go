package ras

import (
	"fmt"
	"math"
)

// This file folds graceful degradation into the reliability analysis. The
// classic checkpoint/restart model treats a node as binary — either fully up
// or fully down — but the fault-injection surfaces (internal/faults) show a
// node with k failed units of a component class still delivers a known
// fraction of its healthy throughput. Given per-unit failure rates and a
// repair time, the steady-state number of concurrently-failed units is
// binomial, and the machine's expected relative throughput is the
// surface-weighted mean.

// DegradedResult summarizes a steady-state degraded-throughput analysis.
type DegradedResult struct {
	// UnitDownProb is the steady-state probability any one unit is failed
	// (unavailability = FIT * MTTR / 1e9 h).
	UnitDownProb float64
	// PFaults[k] is the probability exactly k of the n units are down.
	PFaults []float64
	// ExpectedRelPerf is the surface-weighted mean relative throughput.
	ExpectedRelPerf float64
	// BinaryRelPerf is what the binary up/down model predicts: the node
	// only counts when zero units are down.
	BinaryRelPerf float64
	// DegradedGain is ExpectedRelPerf - BinaryRelPerf: throughput the
	// binary model writes off but graceful degradation preserves.
	DegradedGain float64
}

// DegradedThroughput computes the expected steady-state relative throughput
// of a node with n units of a component class failing at unitFIT (failures
// per 1e9 device-hours) and being repaired in mttrHours, when operating
// degraded at relPerf[k] of healthy throughput with k units down (relPerf[0]
// must be 1; a k beyond len(relPerf)-1 is treated as zero throughput, i.e.
// the node is effectively down past the end of the measured surface).
func DegradedThroughput(n int, unitFIT, mttrHours float64, relPerf []float64) (DegradedResult, error) {
	if n <= 0 {
		return DegradedResult{}, fmt.Errorf("ras: need at least one unit, got %d", n)
	}
	if len(relPerf) == 0 || relPerf[0] != 1 {
		return DegradedResult{}, fmt.Errorf("ras: relPerf must start with the healthy point (1.0)")
	}
	p := unitFIT * mttrHours / fitHours
	if p < 0 || p >= 1 {
		return DegradedResult{}, fmt.Errorf("ras: unit unavailability %.3g out of [0,1)", p)
	}
	res := DegradedResult{UnitDownProb: p, PFaults: make([]float64, n+1)}
	for k := 0; k <= n; k++ {
		res.PFaults[k] = binomPMF(n, k, p)
		rel := 0.0
		if k < len(relPerf) {
			rel = relPerf[k]
		}
		res.ExpectedRelPerf += res.PFaults[k] * rel
	}
	res.BinaryRelPerf = res.PFaults[0]
	res.DegradedGain = res.ExpectedRelPerf - res.BinaryRelPerf
	return res, nil
}

// binomPMF is C(n,k) p^k (1-p)^(n-k), computed in log space for stability.
func binomPMF(n, k int, p float64) float64 {
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg := lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lg)
}

func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
