package ras

import (
	"math"
	"testing"

	"ena/internal/arch"
)

func TestECCOverheads(t *testing.T) {
	if ECCOverheadFrac(NoECC) != 0 {
		t.Error("no ECC has no overhead")
	}
	if ECCOverheadFrac(SECDED) != 0.125 {
		t.Error("SECDED is 8 check bits per 64")
	}
	if ECCOverheadFrac(Chipkill) <= ECCOverheadFrac(SECDED) {
		t.Error("chipkill costs more than SECDED")
	}
}

func TestAnalyzeProtectionImproves(t *testing.T) {
	cfg := arch.BestMeanEHP()
	none := Analyze(cfg, Config{}, arch.NodeCount)
	def := Analyze(cfg, DefaultConfig(), arch.NodeCount)
	if def.NodeFIT >= none.NodeFIT {
		t.Errorf("protection must reduce FIT: %v -> %v", none.NodeFIT, def.NodeFIT)
	}
	if def.NodeMTTFHours <= none.NodeMTTFHours {
		t.Error("protection must raise MTTF")
	}
	if def.SilentFIT >= none.SilentFIT {
		t.Error("protection must reduce silent errors")
	}
}

func TestSystemMTTFScales(t *testing.T) {
	cfg := arch.BestMeanEHP()
	a := Analyze(cfg, DefaultConfig(), 100000)
	b := Analyze(cfg, DefaultConfig(), 50000)
	if math.Abs(b.SystemMTTFMins-2*a.SystemMTTFMins) > 1e-6*a.SystemMTTFMins {
		t.Errorf("system MTTF must be inversely proportional to node count: %v vs %v",
			a.SystemMTTFMins, b.SystemMTTFMins)
	}
	if c := Analyze(cfg, DefaultConfig(), 0); c.SystemMTTFMins != a.SystemMTTFMins {
		t.Error("zero nodes should default to the paper's 100,000")
	}
}

func TestMemoryCapacityDrivesFIT(t *testing.T) {
	small := arch.BestMeanEHP()
	big := arch.BestMeanEHP()
	for i := range big.Ext {
		for j := range big.Ext[i].Modules {
			big.Ext[i].Modules[j].CapacityGB *= 4
		}
	}
	rc := Config{} // unprotected, so capacity shows directly
	if Analyze(big, rc, 1).NodeFIT <= Analyze(small, rc, 1).NodeFIT {
		t.Error("more memory must mean more faults")
	}
}

func TestNVMLowersMemoryFIT(t *testing.T) {
	base := arch.BestMeanEHP()
	hyb := arch.WithHybridExternal(base)
	rc := Config{}
	if Analyze(hyb, rc, 1).NodeFIT >= Analyze(base, rc, 1).NodeFIT {
		t.Error("NVM cells are SEU-immune; hybrid should have fewer faults")
	}
}

func TestOptimalCheckpoint(t *testing.T) {
	// Daly: sqrt(2 * delta * MTTF).
	got, err := OptimalCheckpointMins(2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-40) > 1e-9 {
		t.Errorf("optimal interval = %v, want 40", got)
	}
	if _, err := OptimalCheckpointMins(0, 400); err == nil {
		t.Error("zero checkpoint cost must error")
	}
	if _, err := OptimalCheckpointMins(500, 400); err == nil {
		t.Error("checkpoint slower than MTTF must error")
	}
}

func TestCheckpointEfficiency(t *testing.T) {
	// The optimum should (weakly) beat nearby intervals.
	const ckpt, mttf = 2.0, 400.0
	opt, err := OptimalCheckpointMins(ckpt, mttf)
	if err != nil {
		t.Fatal(err)
	}
	best := CheckpointEfficiency(opt, ckpt, mttf)
	if best <= 0 || best >= 1 {
		t.Fatalf("efficiency = %v", best)
	}
	for _, iv := range []float64{opt / 4, opt * 4} {
		if e := CheckpointEfficiency(iv, ckpt, mttf); e > best+1e-9 {
			t.Errorf("interval %v beats the optimum: %v > %v", iv, e, best)
		}
	}
	if CheckpointEfficiency(0, ckpt, mttf) != 0 {
		t.Error("degenerate interval")
	}
	// Hopeless regime: checkpointing costs more than the machine delivers.
	if e := CheckpointEfficiency(1, 10, 5); e < 0 {
		t.Errorf("efficiency must clamp at 0, got %v", e)
	}
}

func TestRMTOverhead(t *testing.T) {
	if RMTOverheadFrac(0.3) != 0 {
		t.Error("below half utilization RMT rides idle CUs for free")
	}
	if got := RMTOverheadFrac(1.0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("full utilization overhead = %v, want 0.5", got)
	}
	// Monotone in utilization.
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		o := RMTOverheadFrac(u)
		if o < prev-1e-12 {
			t.Fatalf("overhead not monotone at %v", u)
		}
		prev = o
	}
}

func TestExascaleRASReality(t *testing.T) {
	// §I: user intervention limited to ~a week would be ideal; a raw
	// 100,000-node machine fails far more often, which is why
	// checkpointing and ECC are first-class (§II-A5).
	cfg := arch.BestMeanEHP()
	a := Analyze(cfg, DefaultConfig(), arch.NodeCount)
	if a.SystemMTTFMins > 7*24*60 {
		t.Errorf("system MTTF %v min — the RAS problem should be non-trivial", a.SystemMTTFMins)
	}
	if a.SystemMTTFMins < 10 {
		t.Errorf("system MTTF %v min — too pessimistic to checkpoint at all", a.SystemMTTFMins)
	}
	opt, err := OptimalCheckpointMins(2, a.SystemMTTFMins)
	if err != nil {
		t.Fatalf("checkpointing must remain viable: %v", err)
	}
	if eff := CheckpointEfficiency(opt, 2, a.SystemMTTFMins); eff < 0.7 {
		t.Errorf("machine efficiency %v — protection choices too weak", eff)
	}
}
