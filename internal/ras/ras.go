// Package ras models the reliability, availability and serviceability
// concerns of §II-A5 and §VI: FIT-rate-based node and system MTTF, SECDED
// ECC coverage and overhead for the memory arrays, the optimal
// checkpoint/restart interval (Daly's approximation), and the
// redundant-multithreading (RMT) slack model for GPU error detection. The
// paper treats these qualitatively (it explicitly excludes a quantitative
// RMT evaluation); this package is the quantitative extension the §VI
// research directions call for.
package ras

import (
	"errors"
	"math"

	"ena/internal/arch"
)

// FIT is failures per billion device-hours.
const fitHours = 1e9

// Component FIT rates for the exascale-timeframe process (derived from
// field-study scaling: transient faults grow with transistor count and
// memory capacity).
const (
	FITPerCU          = 10  // GPU compute unit logic
	FITPerCPUCore     = 25  // latency-optimized core (bigger structures)
	FITPerGBInPackage = 14  // 3D DRAM per GB (before ECC)
	FITPerGBExternal  = 10  // external DRAM per GB (before ECC)
	FITPerGBNVM       = 2   // NVM cells are SEU-immune; periphery only
	FITInterposer     = 120 // NoC + system logic per interposer
	FITPerSerDesLink  = 15
)

// ECCMode selects the memory protection level.
type ECCMode int

const (
	// NoECC leaves arrays unprotected (GPU consumer heritage; §II-A5).
	NoECC ECCMode = iota
	// SECDED corrects single-bit and detects double-bit errors.
	SECDED
	// Chipkill corrects a full-device failure (for external DRAM).
	Chipkill
)

// eccCoverage is the fraction of memory faults an ECC mode turns harmless.
func eccCoverage(m ECCMode) float64 {
	switch m {
	case SECDED:
		return 0.97
	case Chipkill:
		return 0.995
	default:
		return 0
	}
}

// ECCOverheadFrac returns the storage overhead of an ECC mode (the §II-A5
// "area costs that are more challenging in our space-constrained EHP").
func ECCOverheadFrac(m ECCMode) float64 {
	switch m {
	case SECDED:
		return 0.125 // 8 check bits per 64 data bits
	case Chipkill:
		return 0.1875
	default:
		return 0
	}
}

// Config selects the node's RAS provisions.
type Config struct {
	MemoryECC   ECCMode
	ExternalECC ECCMode
	// RMTCoverage is the fraction of GPU logic faults detected by
	// redundant multithreading (0 disables RMT).
	RMTCoverage float64
}

// DefaultConfig is the paper's working assumption: ECC on all DRAM, RMT
// available for the GPU.
func DefaultConfig() Config {
	return Config{MemoryECC: SECDED, ExternalECC: Chipkill, RMTCoverage: 0.95}
}

// Analysis holds the derived reliability metrics.
type Analysis struct {
	NodeFIT        float64 // post-protection failures per 1e9 h per node
	NodeMTTFHours  float64
	SystemMTTFMins float64 // across all nodes
	SilentFIT      float64 // undetected (silent) error rate per node
}

// Analyze computes node and system reliability for a configuration.
func Analyze(cfg *arch.NodeConfig, rc Config, nodes int) Analysis {
	if nodes <= 0 {
		nodes = arch.NodeCount
	}
	var fit, silent float64

	gpuFIT := float64(cfg.TotalCUs()) * FITPerCU
	// RMT converts silent GPU faults into detected (recoverable) ones; it
	// does not remove them, so they still count toward interruptions.
	fit += gpuFIT
	silent += gpuFIT * (1 - rc.RMTCoverage)

	cpuFIT := float64(cfg.CPUCores()) * FITPerCPUCore
	fit += cpuFIT
	silent += cpuFIT * 0.1 // cores have parity/retry on most structures

	memFIT := cfg.InPackageCapacityGB() * FITPerGBInPackage
	cov := eccCoverage(rc.MemoryECC)
	fit += memFIT * (1 - cov)
	silent += memFIT * (1 - cov) * 0.5

	var extFIT float64
	for _, ch := range cfg.Ext {
		for _, m := range ch.Modules {
			switch m.Kind {
			case arch.NVMModule:
				extFIT += m.CapacityGB * FITPerGBNVM
			default:
				extFIT += m.CapacityGB * FITPerGBExternal
			}
		}
	}
	covE := eccCoverage(rc.ExternalECC)
	fit += extFIT * (1 - covE)
	silent += extFIT * (1 - covE) * 0.5

	fit += 6 * FITInterposer // six interposer positions
	fit += float64(cfg.SerDesLinkCount()) * FITPerSerDesLink

	a := Analysis{NodeFIT: fit, SilentFIT: silent}
	if fit > 0 {
		a.NodeMTTFHours = fitHours / fit
		a.SystemMTTFMins = a.NodeMTTFHours / float64(nodes) * 60
	}
	return a
}

// ErrBadInterval reports an unusable checkpoint parameterization.
var ErrBadInterval = errors.New("ras: checkpoint time must be positive and smaller than the system MTTF")

// OptimalCheckpointMins returns Daly's first-order optimal checkpoint
// interval sqrt(2 * delta * MTTF) for checkpoint cost delta, both in
// minutes.
func OptimalCheckpointMins(checkpointMins, systemMTTFMins float64) (float64, error) {
	if checkpointMins <= 0 || systemMTTFMins <= checkpointMins {
		return 0, ErrBadInterval
	}
	return math.Sqrt(2 * checkpointMins * systemMTTFMins), nil
}

// CheckpointEfficiency returns the fraction of machine time doing useful
// work under periodic checkpointing with the given interval: time lost to
// writing checkpoints plus expected rework after failures.
func CheckpointEfficiency(intervalMins, checkpointMins, systemMTTFMins float64) float64 {
	if intervalMins <= 0 || systemMTTFMins <= 0 {
		return 0
	}
	// Overhead fraction: checkpoint cost per interval, plus expected lost
	// work of half an interval (plus restart = one checkpoint cost) per
	// failure.
	overhead := checkpointMins/intervalMins + (intervalMins/2+checkpointMins)/systemMTTFMins
	eff := 1 - overhead
	if eff < 0 {
		return 0
	}
	return eff
}

// RMTOverheadFrac estimates the throughput cost of GPU redundant
// multithreading given the kernel's utilization of peak: RMT re-executes
// work on otherwise-idle CUs, so cost appears only when duplicated work
// cannot fit in the idle capacity (utilization above one half) [25].
func RMTOverheadFrac(utilOfPeak float64) float64 {
	if utilOfPeak <= 0.5 {
		return 0
	}
	// Duplicated work is util; capacity is 1: slowdown = 2*util when
	// 2*util > 1, i.e. overhead = 2*util - 1 relative to baseline util.
	return (2*utilOfPeak - 1) / (2 * utilOfPeak)
}
