package ras

import (
	"context"
	"math"
	"testing"

	"ena/internal/arch"
	"ena/internal/faults"
	"ena/internal/workload"
)

func TestDegradedThroughputBasics(t *testing.T) {
	// 8 units, a linear surface (each fault costs 1/8 of throughput).
	rel := make([]float64, 9)
	for k := range rel {
		rel[k] = 1 - float64(k)/8
	}
	res, err := DegradedThroughput(8, 1000, 24, rel)
	if err != nil {
		t.Fatal(err)
	}
	p := 1000.0 * 24 / 1e9
	if math.Abs(res.UnitDownProb-p) > 1e-15 {
		t.Errorf("unit down prob %v, want %v", res.UnitDownProb, p)
	}
	var sum float64
	for _, q := range res.PFaults {
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v", sum)
	}
	// Linear surface: E[rel] = 1 - E[k]/8 = 1 - n*p/8 = 1 - p.
	if math.Abs(res.ExpectedRelPerf-(1-p)) > 1e-12 {
		t.Errorf("expected rel perf %v, want %v", res.ExpectedRelPerf, 1-p)
	}
	if res.DegradedGain <= 0 {
		t.Error("graceful degradation must beat the binary model")
	}
	if res.BinaryRelPerf >= res.ExpectedRelPerf {
		t.Error("binary up/down must be the pessimistic bound")
	}
}

func TestDegradedThroughputValidation(t *testing.T) {
	if _, err := DegradedThroughput(0, 10, 1, []float64{1}); err == nil {
		t.Error("zero units must fail")
	}
	if _, err := DegradedThroughput(4, 10, 1, nil); err == nil {
		t.Error("empty surface must fail")
	}
	if _, err := DegradedThroughput(4, 10, 1, []float64{0.5}); err == nil {
		t.Error("surface must start at the healthy point")
	}
	if _, err := DegradedThroughput(4, 1e9, 10, []float64{1}); err == nil {
		t.Error("unavailability >= 1 must fail")
	}
}

func TestDegradedThroughputShortSurfaceTreatedAsDown(t *testing.T) {
	// With only the healthy point measured, any fault means down — the
	// binary model — so the gain must be exactly zero.
	res, err := DegradedThroughput(8, 1e5, 48, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedGain != 0 {
		t.Errorf("gain %v with a healthy-only surface", res.DegradedGain)
	}
	if res.ExpectedRelPerf != res.PFaults[0] {
		t.Errorf("expected %v, want binary %v", res.ExpectedRelPerf, res.PFaults[0])
	}
}

func TestDegradedThroughputFromResilienceSurface(t *testing.T) {
	// End-to-end: feed a measured fault-injection surface into the
	// steady-state model, the wiring the exp "resilience" experiment uses.
	base := arch.BestMeanEHP()
	s, err := faults.ResilienceSurface(context.Background(), base, workload.CoMD(), faults.GPUChiplet,
		faults.SurfaceOptions{MaxFaults: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	unitFIT := float64(base.GPU[0].CUs) * FITPerCU
	res, err := DegradedThroughput(len(base.GPU), unitFIT, 72, s.RelPerfs())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedRelPerf <= res.BinaryRelPerf || res.ExpectedRelPerf > 1 {
		t.Errorf("expected rel perf %v (binary %v) out of range", res.ExpectedRelPerf, res.BinaryRelPerf)
	}
}
