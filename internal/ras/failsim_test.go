package ras

import (
	"testing"
)

func baseCfg() FailSimConfig {
	return FailSimConfig{
		SystemMTTFMins: 112,
		IntervalMins:   21,
		CheckpointMins: 2,
		JobWorkMins:    7 * 24 * 60,
		Seed:           1,
	}
}

func TestFailSimBasics(t *testing.T) {
	r := SimulateFailures(baseCfg())
	if r.WallClockMins <= r.UsefulMins {
		t.Errorf("wall clock %v must exceed useful work %v", r.WallClockMins, r.UsefulMins)
	}
	if r.Failures == 0 {
		t.Error("a week at ~2h MTTF must see failures")
	}
	if r.Checkpoints == 0 {
		t.Error("no checkpoints written")
	}
	if r.Efficiency <= 0 || r.Efficiency >= 1 {
		t.Errorf("efficiency = %v", r.Efficiency)
	}
}

func TestFailSimMatchesDaly(t *testing.T) {
	// Averaged over seeds, the simulated efficiency should track the
	// first-order analytic model within a few percentage points.
	var sim, n float64
	c := baseCfg()
	for seed := int64(1); seed <= 20; seed++ {
		c.Seed = seed
		r := SimulateFailures(c)
		sim += r.Efficiency
		n++
	}
	mean := sim / n
	analytic := CheckpointEfficiency(c.IntervalMins, c.CheckpointMins, c.SystemMTTFMins)
	if diff := mean - analytic; diff < -0.05 || diff > 0.05 {
		t.Errorf("simulated %v vs analytic %v (diff %v)", mean, analytic, diff)
	}
}

func TestFailSimOptimalIntervalNearBest(t *testing.T) {
	// Sweeping the interval, the Daly optimum should be within noise of
	// the empirically best interval.
	c := baseCfg()
	opt, err := OptimalCheckpointMins(c.CheckpointMins, c.SystemMTTFMins)
	if err != nil {
		t.Fatal(err)
	}
	effAt := func(interval float64) float64 {
		var sum float64
		cc := c
		cc.IntervalMins = interval
		for seed := int64(1); seed <= 10; seed++ {
			cc.Seed = seed
			sum += SimulateFailures(cc).Efficiency
		}
		return sum / 10
	}
	atOpt := effAt(opt)
	if far := effAt(opt * 6); far > atOpt+0.02 {
		t.Errorf("6x interval (%v) beat the optimum: %v vs %v", opt*6, far, atOpt)
	}
	if frequent := effAt(opt / 6); frequent > atOpt+0.02 {
		t.Errorf("interval/6 beat the optimum: %v vs %v", frequent, atOpt)
	}
}

func TestFailSimNoFailuresWhenMTTFHuge(t *testing.T) {
	c := baseCfg()
	c.SystemMTTFMins = 1e12
	r := SimulateFailures(c)
	if r.Failures != 0 {
		t.Errorf("failures = %d with an effectively infinite MTTF", r.Failures)
	}
	// Overhead is then pure checkpointing: interval/(interval+ckpt).
	want := c.IntervalMins / (c.IntervalMins + c.CheckpointMins)
	if d := r.Efficiency - want; d < -0.01 || d > 0.01 {
		t.Errorf("failure-free efficiency %v, want ~%v", r.Efficiency, want)
	}
}

func TestFailSimDegenerateInputs(t *testing.T) {
	if r := SimulateFailures(FailSimConfig{}); r.WallClockMins != 0 {
		t.Error("zero config should no-op")
	}
}

func TestFailSimDeterministicPerSeed(t *testing.T) {
	a := SimulateFailures(baseCfg())
	b := SimulateFailures(baseCfg())
	if a != b {
		t.Error("same seed must reproduce")
	}
}

func TestFailSimMoreFailuresLowerEfficiency(t *testing.T) {
	good := baseCfg()
	bad := baseCfg()
	bad.SystemMTTFMins = 30
	var eGood, eBad float64
	for seed := int64(1); seed <= 10; seed++ {
		good.Seed, bad.Seed = seed, seed
		eGood += SimulateFailures(good).Efficiency
		eBad += SimulateFailures(bad).Efficiency
	}
	if eBad >= eGood {
		t.Errorf("short MTTF should hurt: %v vs %v", eBad/10, eGood/10)
	}
}

func TestFailSimRestartMinsZeroValue(t *testing.T) {
	// Regression for the old float64 field: a zero restart cost was silently
	// promoted to one checkpoint-write. With *float64, nil means the default
	// and Mins(0) is a genuinely free restart.
	def := baseCfg()
	explicit := baseCfg()
	explicit.RestartMins = Mins(def.CheckpointMins)
	if SimulateFailures(def) != SimulateFailures(explicit) {
		t.Error("nil RestartMins must equal an explicit one-checkpoint restart")
	}
	free := baseCfg()
	free.RestartMins = Mins(0)
	rFree, rDef := SimulateFailures(free), SimulateFailures(def)
	if rFree == rDef {
		t.Error("Mins(0) must differ from the default restart cost")
	}
	if rFree.WallClockMins >= rDef.WallClockMins {
		t.Errorf("free restarts must finish sooner: %v vs %v", rFree.WallClockMins, rDef.WallClockMins)
	}
	slow := baseCfg()
	slow.RestartMins = Mins(30)
	if SimulateFailures(slow).Efficiency >= rDef.Efficiency {
		t.Error("expensive restarts must lower efficiency")
	}
}
