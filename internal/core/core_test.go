package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"ena/internal/arch"
	"ena/internal/memsys"
	"ena/internal/powopt"
	"ena/internal/workload"
)

func TestSimulateConsistency(t *testing.T) {
	cfg := arch.BestMeanEHP()
	for _, k := range workload.Suite() {
		r := Simulate(cfg, k, Options{})
		if r.Perf.TFLOPs <= 0 {
			t.Errorf("%s: no throughput", k.Name)
		}
		if r.NodeW <= 0 {
			t.Errorf("%s: no power", k.Name)
		}
		want := r.Perf.TFLOPs * 1000 / r.NodeW
		if math.Abs(r.GFperW-want) > 1e-9 {
			t.Errorf("%s: GF/W inconsistent", k.Name)
		}
		if r.MissFrac != 0 {
			t.Errorf("%s: default options must be in-package resident", k.Name)
		}
	}
}

func TestNormalizedPerfIdentity(t *testing.T) {
	bm := arch.BestMeanEHP()
	for _, k := range workload.Suite() {
		if got := NormalizedPerf(bm, k); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: best-mean normalized perf = %v", k.Name, got)
		}
	}
}

func TestUseAppExtTraffic(t *testing.T) {
	cfg := arch.BestMeanEHP()
	lul := workload.LULESH()
	r := Simulate(cfg, lul, Options{UseAppExtTraffic: true, Policy: memsys.SoftwareManaged})
	if r.MissFrac <= 0 {
		t.Error("large-footprint kernel must generate external traffic")
	}
	if r.Power.ExtDynamic <= 0 {
		t.Error("external traffic must cost dynamic power")
	}
	r0 := Simulate(cfg, lul, Options{})
	if r.Perf.TFLOPs >= r0.Perf.TFLOPs {
		t.Error("external traffic must cost performance")
	}
	// MaxFlops fits in-package even with the app-traffic option.
	mf := Simulate(cfg, workload.MaxFlops(), Options{UseAppExtTraffic: true})
	if mf.MissFrac != 0 {
		t.Errorf("MaxFlops miss frac = %v", mf.MissFrac)
	}
}

func TestOptimizationsReducePower(t *testing.T) {
	cfg := arch.BestMeanEHP()
	for _, k := range workload.Suite() {
		base := Simulate(cfg, k, Options{})
		opt := Simulate(cfg, k, Options{Optimizations: powopt.All})
		if opt.NodeW >= base.NodeW {
			t.Errorf("%s: optimizations did not save power", k.Name)
		}
		if opt.Perf.TFLOPs != base.Perf.TFLOPs {
			t.Errorf("%s: optimizations must not change performance at a fixed point", k.Name)
		}
		if opt.GFperW <= base.GFperW {
			t.Errorf("%s: efficiency should improve", k.Name)
		}
	}
}

func TestExcludeExternal(t *testing.T) {
	cfg := arch.EHP(320, 1000, 1)
	mf := workload.MaxFlops()
	with := Simulate(cfg, mf, Options{})
	without := Simulate(cfg, mf, Options{ExcludeExternal: true})
	if without.NodeW >= with.NodeW {
		t.Error("excluding the external network must reduce accounted power")
	}
	if math.Abs(without.NodeW-without.Power.PackageW()) > 1e-9 {
		t.Error("ExcludeExternal should report package power")
	}
}

func TestBudgetPowerExcludesExtDynamic(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.SNAP()
	b := BudgetPowerW(cfg, k, 0)
	r := Simulate(cfg, k, Options{})
	want := r.Power.PackageW() + r.Power.ExtStatic + r.Power.SerDesStatic
	if math.Abs(b-want) > 1e-9 {
		t.Errorf("budget = %v, want %v", b, want)
	}
}

func TestProjectSystem(t *testing.T) {
	cfg := arch.EHP(320, 1000, 1)
	r := Simulate(cfg, workload.MaxFlops(), Options{ExcludeExternal: true})
	p := ProjectSystem(r, 0)
	if p.Nodes != arch.NodeCount {
		t.Errorf("default nodes = %d", p.Nodes)
	}
	// §V-F anchors: ~18.6 TF/node -> ~1.86 exaflops; ~11 MW.
	if p.ExaFLOPs < 1.7 || p.ExaFLOPs > 2.0 {
		t.Errorf("exaflops = %v, paper projects 1.86", p.ExaFLOPs)
	}
	if p.SystemMW < 10 || p.SystemMW > 13 {
		t.Errorf("system MW = %v, paper projects 11.1", p.SystemMW)
	}
	half := ProjectSystem(r, 50000)
	if math.Abs(half.ExaFLOPs*2-p.ExaFLOPs) > 1e-9 {
		t.Error("projection must be linear in node count")
	}
}

func TestTempCoupling(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k := workload.CoMD()
	cold := Simulate(cfg, k, Options{TempC: 50})
	hot := Simulate(cfg, k, Options{TempC: 90})
	if hot.Power.CUStatic <= cold.Power.CUStatic {
		t.Error("temperature option must feed the leakage model")
	}
}

func TestResultString(t *testing.T) {
	cfg := arch.BestMeanEHP()
	r := Simulate(cfg, workload.CoMD(), Options{})
	s := r.String()
	if !strings.Contains(s, "CoMD") || !strings.Contains(s, "TFLOP/s") {
		t.Errorf("String = %q", s)
	}
}

func TestExascaleHeadline(t *testing.T) {
	// The whole point of the ENA (§I): >10 TF per node under 200 W, and
	// the 20 MW machine target within reach for peak compute.
	cfg := arch.BestMeanEHP()
	mf := Simulate(cfg, workload.MaxFlops(), Options{})
	if mf.Perf.TFLOPs < 10 {
		t.Errorf("node delivers %v TF, exascale needs > 10", mf.Perf.TFLOPs)
	}
	if mf.NodeW > 200 {
		t.Errorf("node power %v W exceeds the 200 W envelope", mf.NodeW)
	}
}

func TestSimulateApp(t *testing.T) {
	cfg := arch.BestMeanEHP()
	for _, app := range workload.Applications() {
		r, err := SimulateApp(cfg, app, Options{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		// Harmonic aggregation bounds: between the slowest and fastest phase.
		lo, hi := math.Inf(1), 0.0
		for _, pr := range r.PerKernel {
			if pr.Perf.TFLOPs < lo {
				lo = pr.Perf.TFLOPs
			}
			if pr.Perf.TFLOPs > hi {
				hi = pr.Perf.TFLOPs
			}
		}
		if r.TFLOPs < lo-1e-9 || r.TFLOPs > hi+1e-9 {
			t.Errorf("%s: app throughput %v outside phase range [%v, %v]",
				app.Name, r.TFLOPs, lo, hi)
		}
		if r.GFperW <= 0 {
			t.Errorf("%s: no efficiency", app.Name)
		}
		// The dominant-kernel shortcut the paper uses should be a decent
		// but not exact proxy for the whole app.
		ratio := r.TFLOPs / r.DomKernelR.Perf.TFLOPs
		if ratio < 0.3 || ratio > 2.0 {
			t.Errorf("%s: dominant-kernel approximation off by %vx", app.Name, ratio)
		}
	}
}

func TestSimulateAppRejectsInvalid(t *testing.T) {
	cfg := arch.BestMeanEHP()
	bad := workload.Application{Name: "x"}
	if _, err := SimulateApp(cfg, bad, Options{}); err == nil {
		t.Error("empty application accepted")
	}
}

func TestSimulateContext(t *testing.T) {
	cfg := arch.BestMeanEHP()
	k, err := workload.ByName("CoMD")
	if err != nil {
		t.Fatal(err)
	}
	r, err := SimulateContext(context.Background(), cfg, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := Simulate(cfg, k, Options{})
	if r.Perf.TFLOPs != want.Perf.TFLOPs || r.NodeW != want.NodeW {
		t.Errorf("SimulateContext = %v, want %v", r, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateContext(ctx, cfg, k, Options{}); err != context.Canceled {
		t.Errorf("cancelled SimulateContext err = %v, want context.Canceled", err)
	}
}

// TestSplitPhaseBitIdentical pins the contract the DSE's perf cache relies
// on: the inline Simulate and the split SimulatePerf + SimulateFromPerf
// composition produce bit-identical results, for every kernel, under every
// option combination that is valid to replay (Optimizations and
// ExcludeExternal vary; the phase-shaping options are fixed at phase time).
func TestSplitPhaseBitIdentical(t *testing.T) {
	cfgs := []*arch.NodeConfig{
		arch.BestMeanEHP(),
		arch.EHP(256, 1200, 5),
	}
	optVariants := []Options{
		{},
		{Optimizations: powopt.All},
		{Optimizations: powopt.All, ExcludeExternal: true},
		{MissFrac: 0.3, TempC: 85},
		{UseAppExtTraffic: true, Policy: memsys.SoftwareManaged},
	}
	for _, cfg := range cfgs {
		for _, k := range workload.Suite() {
			for _, opt := range optVariants {
				inline := Simulate(cfg, k, opt)
				split := SimulateFromPerf(cfg, k, opt, SimulatePerf(cfg, k, opt))
				if math.Float64bits(inline.NodeW) != math.Float64bits(split.NodeW) ||
					math.Float64bits(inline.GFperW) != math.Float64bits(split.GFperW) ||
					math.Float64bits(inline.Perf.TFLOPs) != math.Float64bits(split.Perf.TFLOPs) ||
					math.Float64bits(inline.MissFrac) != math.Float64bits(split.MissFrac) ||
					inline.Power != split.Power {
					t.Fatalf("%s/%s/%+v: inline and split-phase results diverge:\n%+v\nvs\n%+v",
						cfg, k.Name, opt, inline, split)
				}
			}
		}
	}
}
