// Package core is the paper's primary contribution assembled: the Exascale
// Node Architecture model. It ties the hardware description (internal/arch),
// kernel characterizations (internal/workload), the analytic roofline
// (internal/perf), the two-level memory system (internal/memsys), the
// component power model (internal/power), and the §V-E optimizations
// (internal/powopt) into a single high-level node simulation — the same
// structure as the in-house simulator the paper's methodology describes
// (§III) — plus the system-level exascale projection of §V-F.
package core

import (
	"context"
	"fmt"
	"sync"

	"ena/internal/arch"
	"ena/internal/memsys"
	"ena/internal/perf"
	"ena/internal/power"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// Options tunes one node simulation.
type Options struct {
	// MissFrac is the fraction of DRAM traffic served by external memory.
	// Zero (the default) models an in-package-resident working set, the
	// assumption behind the paper's performance figures; Fig. 8 sweeps
	// it, and UseAppExtTraffic derives it from the kernel.
	MissFrac float64

	// UseAppExtTraffic sets MissFrac from the kernel's characterized
	// external-traffic share under software management (Fig. 9 accounts
	// external-memory power this way).
	UseAppExtTraffic bool

	// Policy selects the memory-management mode when UseAppExtTraffic is
	// set (default: SoftwareManaged, the paper's primary mode).
	Policy memsys.Policy

	// Optimizations applies the §V-E power-saving techniques.
	Optimizations powopt.Technique

	// TempC is the die temperature used for leakage (0 = reference).
	TempC float64

	// ExcludeExternal drops the external-memory network from the power
	// accounting (the peak-compute scenario of Fig. 14 reports
	// compute-focused node power).
	ExcludeExternal bool
}

// Result is one simulated (configuration, kernel) outcome.
type Result struct {
	Config *arch.NodeConfig
	Kernel workload.Kernel

	Perf  perf.Result
	Power power.Breakdown

	MissFrac float64
	NodeW    float64 // total accounted node power
	GFperW   float64 // energy efficiency
}

// PerfPhase is the optimization-independent phase of one node simulation:
// the resolved external-memory miss fraction, the roofline performance
// estimate, and the pre-optimization component power breakdown. The §V-E
// power optimizations transform the breakdown (powopt.Apply) but never the
// inputs feeding it, so a PerfPhase computed once can be replayed against
// any Optimizations or ExcludeExternal setting via SimulateFromPerf — the
// invariant the DSE's sweep-level cache builds on. Replay across Options
// that differ in MissFrac, UseAppExtTraffic, Policy or TempC is NOT valid:
// those shape the phase itself.
type PerfPhase struct {
	MissFrac  float64
	Perf      perf.Result
	BasePower power.Breakdown // component power before §V-E optimizations
}

// SimulatePerf runs the optimization-independent phase of the model. The
// Options fields consumed downstream of the phase (Optimizations,
// ExcludeExternal) are ignored here by construction.
func SimulatePerf(cfg *arch.NodeConfig, k workload.Kernel, opt Options) PerfPhase {
	miss := opt.MissFrac
	if opt.UseAppExtTraffic {
		miss = memsys.MissFrac(cfg, k, opt.Policy)
	}
	env := memsys.Env(cfg, k, miss)
	pp := PerfPhase{MissFrac: miss, Perf: perf.Estimate(cfg, k, env)}
	remote := (1 - k.CacheLocality) * float64(arch.GPUChipletCount-1) / float64(arch.GPUChipletCount)
	d := power.Demand{
		Activity:       k.Activity,
		BusyFrac:       1,
		TrafficTBps:    pp.Perf.TrafficTBps,
		ExtTrafficTBps: pp.Perf.TrafficTBps * pp.MissFrac,
		ExtWriteFrac:   k.WriteFrac,
		RemoteFrac:     remote,
		CPUActivity:    0.10 + k.SerialFrac*20,
		TempC:          opt.TempC,
	}
	pp.BasePower = power.Compute(cfg, d)
	return pp
}

// SimulateFromPerf completes a simulation from a precomputed phase: the
// selected power optimizations and the result roll-up. Simulate(cfg, k, opt)
// is exactly SimulateFromPerf(cfg, k, opt, SimulatePerf(cfg, k, opt)) — the
// same operations in the same order, so replaying a cached phase is
// bit-identical to a fresh simulation.
func SimulateFromPerf(cfg *arch.NodeConfig, k workload.Kernel, opt Options, pp PerfPhase) Result {
	pb := powopt.Apply(pp.BasePower, k, cfg.GPUFreqMHz(), opt.Optimizations)

	res := Result{
		Config:   cfg,
		Kernel:   k,
		Perf:     pp.Perf,
		Power:    pb,
		MissFrac: pp.MissFrac,
	}
	if opt.ExcludeExternal {
		res.NodeW = pb.PackageW()
	} else {
		res.NodeW = pb.Total()
	}
	if res.NodeW > 0 {
		res.GFperW = pp.Perf.TFLOPs * 1000 / res.NodeW
	}
	return res
}

// Simulate runs the high-level model. It is observationally identical to
// SimulateFromPerf(cfg, k, opt, SimulatePerf(cfg, k, opt)) — the split-phase
// test pins the equivalence bit-for-bit — but runs inline so the hot single
// -simulation path does not copy a PerfPhase (with its embedded power
// breakdown) through two call boundaries.
func Simulate(cfg *arch.NodeConfig, k workload.Kernel, opt Options) Result {
	miss := opt.MissFrac
	if opt.UseAppExtTraffic {
		miss = memsys.MissFrac(cfg, k, opt.Policy)
	}
	env := memsys.Env(cfg, k, miss)
	pr := perf.Estimate(cfg, k, env)
	remote := (1 - k.CacheLocality) * float64(arch.GPUChipletCount-1) / float64(arch.GPUChipletCount)
	d := power.Demand{
		Activity:       k.Activity,
		BusyFrac:       1,
		TrafficTBps:    pr.TrafficTBps,
		ExtTrafficTBps: pr.TrafficTBps * miss,
		ExtWriteFrac:   k.WriteFrac,
		RemoteFrac:     remote,
		CPUActivity:    0.10 + k.SerialFrac*20,
		TempC:          opt.TempC,
	}
	pb := power.Compute(cfg, d)
	pb = powopt.Apply(pb, k, cfg.GPUFreqMHz(), opt.Optimizations)

	res := Result{
		Config:   cfg,
		Kernel:   k,
		Perf:     pr,
		Power:    pb,
		MissFrac: miss,
	}
	if opt.ExcludeExternal {
		res.NodeW = pb.PackageW()
	} else {
		res.NodeW = pb.Total()
	}
	if res.NodeW > 0 {
		res.GFperW = pr.TFLOPs * 1000 / res.NodeW
	}
	return res
}

// SimulateContext is Simulate with cooperative cancellation: it returns
// ctx.Err() without running the model when ctx is already done. One node
// simulation is a sub-millisecond analytic evaluation, so the check-before-run
// granularity is what callers iterating over many (config, kernel) pairs —
// the DSE sweep, the service layer — need to abort promptly between
// evaluations.
func SimulateContext(ctx context.Context, cfg *arch.NodeConfig, k workload.Kernel, opt Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return Simulate(cfg, k, opt), nil
}

// BudgetPowerW is the quantity the 160 W DSE budget constrains: package
// power plus the external network's background power. The paper's
// exploration assumes in-package-resident working sets, so external dynamic
// power is excluded from the budget check (it is studied separately in
// Fig. 9).
func BudgetPowerW(cfg *arch.NodeConfig, k workload.Kernel, opts powopt.Technique) float64 {
	r := Simulate(cfg, k, Options{Optimizations: opts})
	return r.Power.PackageW() + r.Power.ExtStatic + r.Power.SerDesStatic
}

// kernelKey is the comparable identity of a kernel for memoization: every
// field that feeds the performance model. Kernel itself is not map-usable
// (its Trace field is a func), but Trace never influences the analytic
// reference simulation.
type kernelKey struct {
	name            string
	category        workload.Category
	intensity       float64
	maxUtilization  float64
	mlpPerCU        float64
	activity        float64
	cacheLocality   float64
	extTrafficFrac  float64
	writeFrac       float64
	footprintGB     float64
	thrashOPB       float64
	thrashSlope     float64
	serialFrac      float64
	cuScalingGamma  float64
	compressibility float64
}

func keyOf(k workload.Kernel) kernelKey {
	return kernelKey{
		name:            k.Name,
		category:        k.Category,
		intensity:       k.Intensity,
		maxUtilization:  k.MaxUtilization,
		mlpPerCU:        k.MLPPerCU,
		activity:        k.Activity,
		cacheLocality:   k.CacheLocality,
		extTrafficFrac:  k.ExtTrafficFrac,
		writeFrac:       k.WriteFrac,
		footprintGB:     k.FootprintGB,
		thrashOPB:       k.ThrashOPB,
		thrashSlope:     k.ThrashSlope,
		serialFrac:      k.SerialFrac,
		cuScalingGamma:  k.CUScalingGamma,
		compressibility: k.Compressibility,
	}
}

// refPerf memoizes each kernel's throughput on the fixed best-mean
// reference configuration. The figure-render loops call NormalizedPerf for
// hundreds of candidate configs per kernel; without the memo every call
// re-simulated the same reference point.
var refPerf struct {
	mu sync.Mutex
	m  map[kernelKey]float64
}

// NormalizedPerf returns a kernel's throughput on cfg divided by its
// throughput on the paper's best-mean configuration — the y-axis of
// Figs. 4-6 ("Perf. normalized to best-mean config"). The reference
// throughput is computed once per kernel and memoized (it depends only on
// the kernel; the reference config is a package constant).
func NormalizedPerf(cfg *arch.NodeConfig, k workload.Kernel) float64 {
	key := keyOf(k)
	refPerf.mu.Lock()
	ref, ok := refPerf.m[key]
	refPerf.mu.Unlock()
	if !ok {
		// Simulate outside the lock; a racing duplicate computes the same
		// value, so last-write-wins is harmless.
		ref = Simulate(arch.BestMeanEHP(), k, Options{}).Perf.TFLOPs
		refPerf.mu.Lock()
		if refPerf.m == nil {
			refPerf.m = make(map[kernelKey]float64)
		}
		refPerf.m[key] = ref
		refPerf.mu.Unlock()
	}
	got := Simulate(cfg, k, Options{})
	if ref == 0 {
		return 0
	}
	return got.Perf.TFLOPs / ref
}

// SystemProjection is the §V-F machine-level roll-up (Fig. 14).
type SystemProjection struct {
	Nodes      int
	NodeTFLOPs float64
	NodeW      float64
	ExaFLOPs   float64
	SystemMW   float64
}

// ProjectSystem scales one node's result to the full machine.
func ProjectSystem(r Result, nodes int) SystemProjection {
	if nodes <= 0 {
		nodes = arch.NodeCount
	}
	return SystemProjection{
		Nodes:      nodes,
		NodeTFLOPs: r.Perf.TFLOPs,
		NodeW:      r.NodeW,
		ExaFLOPs:   r.Perf.TFLOPs * float64(nodes) / 1e6,
		SystemMW:   r.NodeW * float64(nodes) / 1e6,
	}
}

// String summarizes a result for logs and CLI output.
func (r Result) String() string {
	return fmt.Sprintf("%s on %s: %.2f TFLOP/s (%s-bound), %.1f W node, %.1f GF/W",
		r.Kernel.Name, r.Config, r.Perf.TFLOPs, r.Perf.Bound, r.NodeW, r.GFperW)
}

// AppResult is a whole-application outcome: the time-weighted aggregate over
// the app's kernel phases (§IV footnote 3 — the paper reports only the
// dominant kernel; this accounts for all of them).
type AppResult struct {
	App        workload.Application
	Config     *arch.NodeConfig
	TFLOPs     float64 // harmonic (time-weighted) application throughput
	NodeW      float64 // time-weighted mean node power
	GFperW     float64
	PerKernel  []Result
	DomKernelR Result // the dominant kernel alone, for comparison
}

// SimulateApp runs every phase of an application and aggregates: for phase
// weights w_i (flops shares) and phase throughputs p_i, application
// throughput is 1 / sum(w_i / p_i); power averages over time spent.
func SimulateApp(cfg *arch.NodeConfig, app workload.Application, opt Options) (AppResult, error) {
	if err := app.Validate(); err != nil {
		return AppResult{}, err
	}
	out := AppResult{App: app, Config: cfg}
	var timePerFlop, energyPerFlop float64
	for _, ph := range app.Phases {
		r := Simulate(cfg, ph.Kernel, opt)
		out.PerKernel = append(out.PerKernel, r)
		t := ph.Weight / (r.Perf.TFLOPs * 1e12) // seconds per app-flop in this phase
		timePerFlop += t
		energyPerFlop += t * r.NodeW
	}
	out.TFLOPs = 1 / timePerFlop / 1e12
	out.NodeW = energyPerFlop / timePerFlop
	if out.NodeW > 0 {
		out.GFperW = out.TFLOPs * 1000 / out.NodeW
	}
	out.DomKernelR = Simulate(cfg, app.Dominant(), opt)
	return out, nil
}
