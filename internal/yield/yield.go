// Package yield models the die-yield and silicon-cost argument behind the
// EHP's chiplet decomposition (paper §II-A2): a monolithic SOC with the
// EHP's capabilities "would result in an impractically large chip with
// prohibitive costs", while "smaller chiplets have higher yield rates due to
// their size, and when combined with known-good-die (KGD) testing
// techniques, can be assembled into larger systems at reasonable cost."
//
// The model uses the negative-binomial (Murphy-style clustered) defect
// yield formula standard in cost analyses, a wafer-area cost model, and a
// per-die KGD test cost, and compares the monolithic EHP against the
// chiplet + active-interposer assembly.
package yield

import (
	"errors"
	"math"
)

// Process describes the manufacturing assumptions.
type Process struct {
	// DefectsPerCm2 is the defect density of the logic process.
	DefectsPerCm2 float64
	// Clustering is the negative-binomial alpha (3 is customary).
	Clustering float64
	// WaferDiameterMM and WaferCost give the raw silicon cost basis.
	WaferDiameterMM float64
	WaferCostUSD    float64
	// KGDTestUSD is the per-die known-good-die test cost.
	KGDTestUSD float64
}

// AdvancedNode returns the cutting-edge logic process the compute chiplets
// need (expensive wafers, non-trivial defect density).
func AdvancedNode() Process {
	return Process{
		DefectsPerCm2:   0.12,
		Clustering:      3,
		WaferDiameterMM: 300,
		WaferCostUSD:    12000,
		KGDTestUSD:      2.0,
	}
}

// MatureNode returns the older, cheaper process the active interposers use
// (§II-A2: "the interposer layers can use a more mature (i.e., less
// expensive) process technology node").
func MatureNode() Process {
	return Process{
		DefectsPerCm2:   0.05,
		Clustering:      3,
		WaferDiameterMM: 300,
		WaferCostUSD:    3500,
		KGDTestUSD:      1.0,
	}
}

// Errors.
var ErrBadArea = errors.New("yield: die area must be positive")

// DieYield returns the negative-binomial yield for a die of the given area
// (cm^2): Y = (1 + D*A/alpha)^-alpha.
func DieYield(p Process, areaCm2 float64) (float64, error) {
	if areaCm2 <= 0 {
		return 0, ErrBadArea
	}
	return math.Pow(1+p.DefectsPerCm2*areaCm2/p.Clustering, -p.Clustering), nil
}

// DiesPerWafer estimates gross dies per wafer with the standard edge-loss
// correction.
func DiesPerWafer(p Process, areaCm2 float64) (int, error) {
	if areaCm2 <= 0 {
		return 0, ErrBadArea
	}
	areaMM2 := areaCm2 * 100
	d := p.WaferDiameterMM
	gross := math.Pi*d*d/4/areaMM2 - math.Pi*d/math.Sqrt(2*areaMM2)
	if gross < 1 {
		return 0, nil
	}
	return int(gross), nil
}

// GoodDieCostUSD returns the cost of one known-good die: wafer cost
// amortized over good dies, plus the KGD test cost (testing every gross die
// to find the good ones).
func GoodDieCostUSD(p Process, areaCm2 float64) (float64, error) {
	y, err := DieYield(p, areaCm2)
	if err != nil {
		return 0, err
	}
	gross, err := DiesPerWafer(p, areaCm2)
	if err != nil {
		return 0, err
	}
	if gross == 0 || y == 0 {
		return math.Inf(1), nil
	}
	good := float64(gross) * y
	return p.WaferCostUSD/good + p.KGDTestUSD*float64(gross)/good, nil
}

// EHP die areas (cm^2): 8 GPU chiplets + 8 CPU chiplets + 6 interposers vs
// one monolithic die with the same total compute silicon plus the
// interposer functionality.
type Assembly struct {
	GPUChipletCm2  float64
	CPUChipletCm2  float64
	InterposerCm2  float64
	GPUChiplets    int
	CPUChiplets    int
	Interposers    int
	AssemblyPerDie float64 // bonding cost per placed die (USD)
}

// EHPAssembly returns the paper's configuration: 1 cm^2 GPU chiplets,
// smaller CPU chiplets, and four-plus-two active interposers.
func EHPAssembly() Assembly {
	return Assembly{
		GPUChipletCm2:  1.0,
		CPUChipletCm2:  0.5,
		InterposerCm2:  3.2,
		GPUChiplets:    8,
		CPUChiplets:    8,
		Interposers:    6,
		AssemblyPerDie: 3.0,
	}
}

// MonolithicAreaCm2 returns the single-die equivalent area: all compute
// silicon plus the interposer routing/IO functionality folded in.
func (a Assembly) MonolithicAreaCm2() float64 {
	compute := float64(a.GPUChiplets)*a.GPUChipletCm2 + float64(a.CPUChiplets)*a.CPUChipletCm2
	// On-die integration of the interposer functions costs a fraction of
	// the interposer area (no separate die boundaries).
	return compute + 0.3*float64(a.Interposers)*a.InterposerCm2
}

// Comparison is the §II-A2 cost argument quantified.
type Comparison struct {
	MonolithicAreaCm2 float64
	MonolithicYield   float64
	MonolithicUSD     float64

	ChipletWorstYield float64 // lowest per-die yield in the assembly
	ChipletTotalUSD   float64 // all known-good dies + bonding
	CostRatio         float64 // monolithic / chiplet
}

// Compare evaluates the assembly against its monolithic equivalent, using
// the advanced node for compute silicon and the mature node for
// interposers.
func Compare(a Assembly, adv, mature Process) (Comparison, error) {
	var c Comparison
	c.MonolithicAreaCm2 = a.MonolithicAreaCm2()
	y, err := DieYield(adv, c.MonolithicAreaCm2)
	if err != nil {
		return c, err
	}
	c.MonolithicYield = y
	c.MonolithicUSD, err = GoodDieCostUSD(adv, c.MonolithicAreaCm2)
	if err != nil {
		return c, err
	}

	type die struct {
		p     Process
		area  float64
		count int
	}
	dies := []die{
		{adv, a.GPUChipletCm2, a.GPUChiplets},
		{adv, a.CPUChipletCm2, a.CPUChiplets},
		{mature, a.InterposerCm2, a.Interposers},
	}
	c.ChipletWorstYield = 1
	totalDies := 0
	for _, d := range dies {
		y, err := DieYield(d.p, d.area)
		if err != nil {
			return c, err
		}
		if y < c.ChipletWorstYield {
			c.ChipletWorstYield = y
		}
		cost, err := GoodDieCostUSD(d.p, d.area)
		if err != nil {
			return c, err
		}
		c.ChipletTotalUSD += cost * float64(d.count)
		totalDies += d.count
	}
	c.ChipletTotalUSD += a.AssemblyPerDie * float64(totalDies)
	if c.ChipletTotalUSD > 0 {
		c.CostRatio = c.MonolithicUSD / c.ChipletTotalUSD
	}
	return c, nil
}
