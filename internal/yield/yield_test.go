package yield

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDieYieldBasics(t *testing.T) {
	p := AdvancedNode()
	small, err := DieYield(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := DieYield(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if small <= big {
		t.Errorf("smaller dies must yield better: %v vs %v", small, big)
	}
	if small <= 0 || small > 1 || big <= 0 || big > 1 {
		t.Errorf("yields out of range: %v, %v", small, big)
	}
	if _, err := DieYield(p, 0); err != ErrBadArea {
		t.Errorf("zero area: %v", err)
	}
}

func TestYieldMonotoneInArea(t *testing.T) {
	p := AdvancedNode()
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 10)) + 0.01
		y := x + math.Abs(math.Mod(b, 10)) + 0.01
		yx, err1 := DieYield(p, x)
		yy, err2 := DieYield(p, y)
		return err1 == nil && err2 == nil && yx >= yy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiesPerWafer(t *testing.T) {
	p := AdvancedNode()
	small, err := DiesPerWafer(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := DiesPerWafer(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if small <= big || big < 1 {
		t.Errorf("dies per wafer: %d vs %d", small, big)
	}
	// A 300 mm wafer holds several hundred 1 cm^2 dies.
	if small < 400 || small > 800 {
		t.Errorf("1 cm^2 dies per wafer = %d", small)
	}
	// Absurdly large dies fit zero times.
	huge, err := DiesPerWafer(p, 800)
	if err != nil || huge != 0 {
		t.Errorf("huge die count = %d, %v", huge, err)
	}
}

func TestGoodDieCost(t *testing.T) {
	p := AdvancedNode()
	c1, err := GoodDieCostUSD(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := GoodDieCostUSD(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Cost grows superlinearly with area (fewer dies AND worse yield).
	if c8 < 8*c1 {
		t.Errorf("8 cm^2 die at %v should cost more than 8x a 1 cm^2 die (%v)", c8, c1)
	}
	inf, err := GoodDieCostUSD(p, 800)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("unbuildable die should cost infinity: %v, %v", inf, err)
	}
}

func TestMatureNodeCheaper(t *testing.T) {
	adv, err := GoodDieCostUSD(AdvancedNode(), 3.2)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := GoodDieCostUSD(MatureNode(), 3.2)
	if err != nil {
		t.Fatal(err)
	}
	if mat >= adv {
		t.Errorf("mature-node interposer (%v) should undercut advanced (%v)", mat, adv)
	}
}

func TestCompareFavorsChiplets(t *testing.T) {
	c, err := Compare(EHPAssembly(), AdvancedNode(), MatureNode())
	if err != nil {
		t.Fatal(err)
	}
	// The monolithic EHP-equivalent is enormous.
	if c.MonolithicAreaCm2 < 10 {
		t.Errorf("monolithic area = %v cm^2", c.MonolithicAreaCm2)
	}
	if c.MonolithicYield > 0.35 {
		t.Errorf("monolithic yield %v — should be poor (§II-A2)", c.MonolithicYield)
	}
	if c.ChipletWorstYield < 0.75 {
		t.Errorf("chiplet yields should be high, worst = %v", c.ChipletWorstYield)
	}
	// The §II-A2 claim: decomposition wins on cost.
	if c.CostRatio <= 1.5 {
		t.Errorf("monolithic/chiplet cost ratio = %v, expected a clear win", c.CostRatio)
	}
	if c.CostRatio > 20 {
		t.Errorf("cost ratio %v implausibly extreme", c.CostRatio)
	}
}

func TestCompareBadAssembly(t *testing.T) {
	a := EHPAssembly()
	a.GPUChipletCm2 = 0
	if _, err := Compare(a, AdvancedNode(), MatureNode()); err == nil {
		t.Error("zero-area chiplet accepted")
	}
}
