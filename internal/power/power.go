// Package power implements the ENA component power model (paper §III, §V-C,
// §V-F): CU dynamic/static power with a voltage-frequency curve, CPU
// chiplets, the interposer NoC (distance-based energy), in-package 3D DRAM,
// and the external-memory network (DRAM/NVM module dynamic+static power and
// SerDes link power). The coefficients are calibrated to the paper's
// anchors: ~111 W compute-focused node power for MaxFlops at 320 CUs/1 GHz
// (Fig. 14), 27 W external-DRAM + 10 W SerDes background power (§V-C
// Finding 1), and 40-70 W total external power across kernels.
package power

import (
	"ena/internal/arch"
	"ena/internal/units"
)

// Voltage-frequency curve (nominal process corner).
const (
	// VFloor is the minimum stable supply for conventional DVFS; going
	// further down needs the variability-tolerant near-threshold circuits
	// of §V-E (internal/powopt).
	VFloor = 0.62
	// vBase + vSlope*(f/1GHz) gives the supply voltage above the floor:
	// 0.85 V at 1 GHz rising to 1.00 V at 1.5 GHz.
	vBase  = 0.55
	vSlope = 0.30
	// vRef is the voltage at the 1 GHz calibration point.
	vRef = 0.85
)

// VoltageAt returns the nominal supply voltage for a GPU frequency.
func VoltageAt(fMHz float64) float64 {
	v := vBase + vSlope*(fMHz/1000)
	if v < VFloor {
		v = VFloor
	}
	return v
}

// Model coefficients (see DESIGN.md "Calibration anchors").
const (
	// CUSwitchedCapF: effective switched capacitance per CU. At 1 GHz and
	// 0.85 V with activity 1.0 a CU burns 0.247 W, so 320 CUs running
	// MaxFlops draw ~77 W of CU dynamic power.
	CUSwitchedCapF = 0.335e-9

	// CULeakageWAtVRef: per-CU leakage at the 1 GHz voltage point.
	CULeakageWAtVRef = 0.032

	// CPU chiplet coefficients (32 cores total in the default EHP).
	CPUStaticWPerCore  = 0.22
	CPUDynamicWPerCore = 0.50

	// NoC energy: every DRAM-bound byte crosses the local chiplet slice;
	// remote bytes additionally traverse TSVs and interposer links.
	NoCLocalPJPerBit  = 0.15
	NoCRemotePJPerBit = 0.90
	NoCStaticW        = 2.5

	// In-package 3D DRAM.
	HBMDynPJPerBit     = 0.7 // exascale-projected stacked interface; 5.6 W per TB/s
	HBMStaticWPerStack = 0.5 // refresh + periphery per stack
	HBMStaticWPerTBps  = 3.5 // I/O and bank provisioning per TB/s
	// External DRAM modules: 27 W background across the default 32
	// modules (paper anchor).
	ExtDRAMStaticWPerModule = 27.0 / 32
	ExtDRAMDynWPerTBps      = 45 // ~5.6 pJ/bit (exascale-target interfaces)

	// NVM modules: negligible standby power, expensive accesses —
	// especially writes (§V-C, §VI).
	ExtNVMStaticWPerModule = 0.05
	ExtNVMReadWPerTBps     = 180
	ExtNVMWriteWPerTBps    = 700

	// SerDes links: 10 W background across 32 links (paper anchor);
	// dynamic energy per traversed hop.
	SerDesStaticWPerLink = 10.0 / 32
	SerDesDynPJPerBitHop = 1.2

	// OtherStaticW covers system management, external I/O interfaces and
	// on-package power-delivery losses.
	OtherStaticW = 4.5

	// LeakageTempCoeffPerC scales leakage with temperature around the
	// 60 C reference (coupled with internal/thermal when iterating).
	LeakageTempCoeffPerC = 0.008
	LeakageRefTempC      = 60
)

// Breakdown is the per-component node power in Watts. Fields are grouped the
// way Fig. 9 groups them: external memory and SerDes split static/dynamic,
// CUs dynamic, everything else aggregable as "Other".
type Breakdown struct {
	CUDynamic float64
	CUStatic  float64
	CPU       float64

	NoCDynamic float64
	NoCStatic  float64

	HBMDynamic float64
	HBMStatic  float64

	ExtDynamic float64
	ExtStatic  float64

	SerDesDynamic float64
	SerDesStatic  float64

	Other float64
}

// Total returns node power.
func (b Breakdown) Total() float64 {
	return b.PackageW() + b.ExternalW()
}

// PackageW returns EHP package power (what the thermal model dissipates and
// what the DSE budget primarily constrains).
func (b Breakdown) PackageW() float64 {
	return b.CUDynamic + b.CUStatic + b.CPU +
		b.NoCDynamic + b.NoCStatic +
		b.HBMDynamic + b.HBMStatic + b.Other
}

// ExternalW returns the external-memory network power (modules + SerDes).
func (b Breakdown) ExternalW() float64 {
	return b.ExtDynamic + b.ExtStatic + b.SerDesDynamic + b.SerDesStatic
}

// OtherW groups every component Fig. 9 folds into its 'Other' bar: package
// power minus CU dynamic power.
func (b Breakdown) OtherW() float64 { return b.PackageW() - b.CUDynamic }

// Demand describes what a running kernel asks of the node; build one with
// DemandFor.
type Demand struct {
	Activity       float64 // CU switching activity
	BusyFrac       float64 // fraction of CUs doing useful work (1 = all)
	TrafficTBps    float64 // total DRAM traffic
	ExtTrafficTBps float64 // portion of traffic served by external memory
	ExtWriteFrac   float64 // write fraction of external traffic
	RemoteFrac     float64 // fraction of traffic crossing chiplets
	CPUActivity    float64 // CPU core activity (serial sections, OS)
	TempC          float64 // die temperature for leakage (0 => reference)
}

// Compute evaluates the component power model for a configuration under a
// demand.
func Compute(cfg *arch.NodeConfig, d Demand) Breakdown {
	var b Breakdown
	fMHz := cfg.GPUFreqMHz()
	v := VoltageAt(fMHz)
	cus := float64(cfg.TotalCUs())

	temp := d.TempC
	if temp == 0 {
		temp = LeakageRefTempC
	}
	leakScale := (v / vRef) * (1 + LeakageTempCoeffPerC*(temp-LeakageRefTempC))

	busy := d.BusyFrac
	if busy == 0 {
		busy = 1
	}

	b.CUDynamic = cus * busy * d.Activity * CUSwitchedCapF * v * v * fMHz * units.MHz
	b.CUStatic = cus * CULeakageWAtVRef * leakScale

	cores := float64(cfg.CPUCores())
	b.CPU = cores*CPUStaticWPerCore + cores*CPUDynamicWPerCore*d.CPUActivity

	bits := d.TrafficTBps * units.TB * 8
	b.NoCDynamic = bits * (NoCLocalPJPerBit + d.RemoteFrac*NoCRemotePJPerBit) * units.PJ
	b.NoCStatic = NoCStaticW

	b.HBMDynamic = (d.TrafficTBps - d.ExtTrafficTBps) * units.TB * 8 * HBMDynPJPerBit * units.PJ
	if b.HBMDynamic < 0 {
		b.HBMDynamic = 0
	}
	b.HBMStatic = float64(len(cfg.HBM))*HBMStaticWPerStack + cfg.InPackageBWTBps()*HBMStaticWPerTBps

	b.Other = OtherStaticW

	// External network.
	nvmFrac := cfg.NVMFractionDynamic()
	dramTraffic := d.ExtTrafficTBps * (1 - nvmFrac)
	nvmTraffic := d.ExtTrafficTBps * nvmFrac
	b.ExtDynamic = dramTraffic*ExtDRAMDynWPerTBps +
		nvmTraffic*(1-d.ExtWriteFrac)*ExtNVMReadWPerTBps +
		nvmTraffic*d.ExtWriteFrac*ExtNVMWriteWPerTBps
	b.ExtStatic = float64(cfg.ExtDRAMModuleCount()) * ExtDRAMStaticWPerModule
	for _, c := range cfg.Ext {
		for _, m := range c.Modules {
			if m.Kind == arch.NVMModule {
				b.ExtStatic += ExtNVMStaticWPerModule
			}
		}
	}
	b.SerDesStatic = float64(cfg.SerDesLinkCount()) * SerDesStaticWPerLink
	b.SerDesDynamic = d.ExtTrafficTBps * units.TB * 8 * avgChainHops(cfg) * SerDesDynPJPerBitHop * units.PJ
	return b
}

// avgChainHops is the mean number of SerDes hops an external access
// traverses, weighting each module by its capacity share (the interleaving
// spreads traffic in proportion to capacity).
func avgChainHops(cfg *arch.NodeConfig) float64 {
	var hops, capTot float64
	for _, c := range cfg.Ext {
		for j, m := range c.Modules {
			hops += float64(j+1) * m.CapacityGB
			capTot += m.CapacityGB
		}
	}
	if capTot == 0 {
		return 0
	}
	return hops / capTot
}
