package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ena/internal/arch"
)

func TestVoltageCurve(t *testing.T) {
	if v := VoltageAt(1000); math.Abs(v-0.85) > 1e-9 {
		t.Errorf("V(1000) = %v", v)
	}
	if v := VoltageAt(1500); math.Abs(v-1.0) > 1e-9 {
		t.Errorf("V(1500) = %v", v)
	}
	if v := VoltageAt(700); math.Abs(v-0.76) > 1e-9 {
		t.Errorf("V(700) = %v", v)
	}
	// The DVFS floor binds only at very low clocks.
	if v := VoltageAt(100); v != VFloor {
		t.Errorf("V(100) = %v, want the %v floor", v, VFloor)
	}
	// Monotone non-decreasing in frequency.
	prev := 0.0
	for f := 500.0; f <= 1600; f += 50 {
		v := VoltageAt(f)
		if v < prev {
			t.Fatalf("voltage decreased at %v MHz", f)
		}
		prev = v
	}
}

func TestExternalStaticAnchors(t *testing.T) {
	// §V-C Finding 1: 27 W DRAM static/refresh + 10 W SerDes background
	// for the default DRAM-only network.
	cfg := arch.EHP(320, 1000, 3)
	b := Compute(cfg, Demand{Activity: 0.5, TrafficTBps: 1})
	if math.Abs(b.ExtStatic-27) > 0.5 {
		t.Errorf("external DRAM static = %v W, want ~27", b.ExtStatic)
	}
	if math.Abs(b.SerDesStatic-10) > 0.5 {
		t.Errorf("SerDes static = %v W, want ~10", b.SerDesStatic)
	}
}

func TestExternalPowerRange(t *testing.T) {
	// §V-C: total external power (static + dynamic) spans ~40-70 W across
	// kernels on the DRAM-only configuration.
	cfg := arch.EHP(320, 1000, 3)
	idle := Compute(cfg, Demand{Activity: 0.5, TrafficTBps: 1})
	if ext := idle.ExternalW(); ext < 35 || ext > 45 {
		t.Errorf("idle external power = %v W", ext)
	}
	busy := Compute(cfg, Demand{Activity: 0.5, TrafficTBps: 2, ExtTrafficTBps: 0.4})
	if ext := busy.ExternalW(); ext < 55 || ext > 85 {
		t.Errorf("busy external power = %v W", ext)
	}
}

func TestMaxFlopsPackageAnchor(t *testing.T) {
	// Fig. 14: ~111 W compute-focused node power at 320 CUs / 1 GHz.
	cfg := arch.EHP(320, 1000, 1)
	b := Compute(cfg, Demand{Activity: 1.0, TrafficTBps: 0.39, RemoteFrac: 0.05, CPUActivity: 0.1})
	if got := b.PackageW(); got < 103 || got > 120 {
		t.Errorf("MaxFlops package power = %v W, want ~111", got)
	}
}

func TestBreakdownAdditivity(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	b := Compute(cfg, Demand{Activity: 0.6, TrafficTBps: 2, ExtTrafficTBps: 0.5, RemoteFrac: 0.5, CPUActivity: 0.2})
	sum := b.CUDynamic + b.CUStatic + b.CPU + b.NoCDynamic + b.NoCStatic +
		b.HBMDynamic + b.HBMStatic + b.ExtDynamic + b.ExtStatic +
		b.SerDesDynamic + b.SerDesStatic + b.Other
	if math.Abs(sum-b.Total()) > 1e-9 {
		t.Errorf("Total %v != sum of parts %v", b.Total(), sum)
	}
	if math.Abs(b.PackageW()+b.ExternalW()-b.Total()) > 1e-9 {
		t.Error("package + external != total")
	}
	if math.Abs(b.OtherW()-(b.PackageW()-b.CUDynamic)) > 1e-9 {
		t.Error("OtherW definition broken")
	}
}

func TestHybridStaticHalves(t *testing.T) {
	// §V-C Finding 2: the hybrid cuts external static power roughly in
	// half (negligible NVM standby + fewer SerDes links).
	base := arch.EHP(320, 1000, 3)
	hyb := arch.WithHybridExternal(base)
	d := Demand{Activity: 0.5, TrafficTBps: 1}
	b0 := Compute(base, d)
	b1 := Compute(hyb, d)
	staticBase := b0.ExtStatic + b0.SerDesStatic
	staticHyb := b1.ExtStatic + b1.SerDesStatic
	if ratio := staticHyb / staticBase; ratio < 0.4 || ratio > 0.65 {
		t.Errorf("hybrid static ratio = %v, want ~0.5", ratio)
	}
}

func TestNVMDynamicExpensive(t *testing.T) {
	base := arch.EHP(320, 1000, 3)
	hyb := arch.WithHybridExternal(base)
	d := Demand{Activity: 0.4, TrafficTBps: 2, ExtTrafficTBps: 0.7, ExtWriteFrac: 0.4}
	b0 := Compute(base, d)
	b1 := Compute(hyb, d)
	if b1.ExtDynamic <= b0.ExtDynamic*1.5 {
		t.Errorf("NVM dynamic %v should far exceed DRAM dynamic %v", b1.ExtDynamic, b0.ExtDynamic)
	}
	// Write-heavy traffic costs more than read-heavy on NVM.
	dRead := d
	dRead.ExtWriteFrac = 0.05
	if r := Compute(hyb, dRead); r.ExtDynamic >= b1.ExtDynamic {
		t.Error("NVM writes should dominate the dynamic cost")
	}
}

func TestLeakageTemperature(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	cold := Compute(cfg, Demand{Activity: 0.5, TrafficTBps: 1, TempC: 50})
	hot := Compute(cfg, Demand{Activity: 0.5, TrafficTBps: 1, TempC: 90})
	if hot.CUStatic <= cold.CUStatic {
		t.Error("leakage must grow with temperature")
	}
	if hot.CUDynamic != cold.CUDynamic {
		t.Error("dynamic power must not depend on temperature")
	}
}

func TestDVFSSuperlinearSavings(t *testing.T) {
	// Dynamic power scales with f*V(f)^2: dropping from 1 GHz to 700 MHz
	// saves more than the 30%% a pure frequency cut would.
	cfg7 := arch.EHP(320, 700, 3)
	cfg10 := arch.EHP(320, 1000, 3)
	d := Demand{Activity: 1, TrafficTBps: 0.1}
	want := 0.7 * (0.76 / 0.85) * (0.76 / 0.85)
	r := Compute(cfg7, d).CUDynamic / Compute(cfg10, d).CUDynamic
	if math.Abs(r-want) > 0.01 {
		t.Errorf("700/1000 MHz dynamic ratio = %v, want %v (f*V^2)", r, want)
	}
}

func TestPowerMonotoneInActivity(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()
		b := a + rng.Float64()*(1-a)
		d1 := Demand{Activity: a, TrafficTBps: 1}
		d2 := Demand{Activity: b, TrafficTBps: 1}
		return Compute(cfg, d2).Total() >= Compute(cfg, d1).Total()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBusyFracDefaultsToOne(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	d := Demand{Activity: 0.5, TrafficTBps: 1}
	explicit := d
	explicit.BusyFrac = 1
	if Compute(cfg, d).CUDynamic != Compute(cfg, explicit).CUDynamic {
		t.Error("zero BusyFrac should default to 1")
	}
	half := d
	half.BusyFrac = 0.5
	if got := Compute(cfg, half).CUDynamic; math.Abs(got-Compute(cfg, d).CUDynamic/2) > 1e-9 {
		t.Error("BusyFrac must scale CU dynamic power")
	}
}

func TestHBMDynNeverNegative(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	// Degenerate demand: more external than total traffic.
	b := Compute(cfg, Demand{Activity: 0.5, TrafficTBps: 1, ExtTrafficTBps: 2})
	if b.HBMDynamic < 0 {
		t.Errorf("HBM dynamic went negative: %v", b.HBMDynamic)
	}
}

func TestAvgChainHops(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	// Uniform 4-module chains: mean hop index = (1+2+3+4)/4 = 2.5.
	if got := avgChainHops(cfg); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("avgChainHops = %v", got)
	}
	// Hybrid: capacity-weighted: (32*1 + 32*2 + 64*3)/128 = 2.25.
	hyb := arch.WithHybridExternal(cfg)
	if got := avgChainHops(hyb); math.Abs(got-2.25) > 1e-9 {
		t.Errorf("hybrid avgChainHops = %v", got)
	}
	bare := cfg.Clone()
	bare.Ext = nil
	if avgChainHops(bare) != 0 {
		t.Error("no external network -> zero hops")
	}
}

func TestSerDesDynamicScalesWithHops(t *testing.T) {
	base := arch.EHP(320, 1000, 3)
	hyb := arch.WithHybridExternal(base)
	d := Demand{Activity: 0.4, TrafficTBps: 2, ExtTrafficTBps: 0.5}
	b0 := Compute(base, d)
	b1 := Compute(hyb, d)
	// Shorter chains (2.25 vs 2.5 mean hops) move fewer SerDes bits.
	if b1.SerDesDynamic >= b0.SerDesDynamic {
		t.Errorf("hybrid SerDes dynamic %v should undercut %v", b1.SerDesDynamic, b0.SerDesDynamic)
	}
}

func TestNoExternalNetworkPower(t *testing.T) {
	cfg := arch.EHP(320, 1000, 3)
	cfg.Ext = nil
	b := Compute(cfg, Demand{Activity: 0.5, TrafficTBps: 1})
	if b.ExternalW() != 0 {
		t.Errorf("external power without a network = %v", b.ExternalW())
	}
	if b.PackageW() <= 0 {
		t.Error("package power must survive")
	}
}
