package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ena/internal/faults"
	"ena/internal/obs"
)

// chaosServer builds a test server with the given injector profile.
func chaosServer(t *testing.T, cc faults.ChaosConfig, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	cfg := Config{
		Workers:   2,
		Reg:       reg,
		Chaos:     faults.NewChaos(cc, reg),
		RetryBase: time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		drainCtx, dc := context.WithTimeout(context.Background(), 10*time.Second)
		defer dc()
		s.Drain(drainCtx)
	})
	return s, ts
}

func submitExplore(t *testing.T, c *http.Client, url string, cus int) string {
	t.Helper()
	resp, b := doJSON(t, c, "POST", url+"/v1/explore", map[string]any{
		"cus": []int{cus}, "freqs_mhz": []float64{1000}, "bws_tbps": []float64{1},
		"kernels": []string{"MaxFlops"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explore = %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out.Job.ID
}

// Injected panics quarantine the request; the worker — and the server —
// survive every one of them.
func TestChaosPanicsNeverKillServer(t *testing.T) {
	s, ts := chaosServer(t, faults.ChaosConfig{Seed: 1, PanicProb: 1}, nil)
	c := ts.Client()

	var ids []string
	for i := 0; i < 6; i++ {
		ids = append(ids, submitExplore(t, c, ts.URL, 64+8*i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, id := range ids {
		view, err := s.sched.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if view.State != JobFailed || !view.Quarantined {
			t.Errorf("job %s: state=%s quarantined=%v, want failed+quarantined", id, view.State, view.Quarantined)
		}
		if view.Retries != 0 {
			t.Errorf("job %s retried a panicking request %d times", id, view.Retries)
		}
	}
	if got := s.reg.Counter("service.jobs.panicked").Value(); got < int64(len(ids)) {
		t.Errorf("panicked counter = %d, want >= %d", got, len(ids))
	}
	if resp, _ := doJSON(t, c, "GET", ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics = %d", resp.StatusCode)
	}
}

// A permanently-failing transient site exhausts the retry budget; the
// retries are visible on the job and in the counters.
func TestChaosTransientRetriesExhaust(t *testing.T) {
	s, ts := chaosServer(t, faults.ChaosConfig{Seed: 1, FailProb: 1},
		func(c *Config) { c.RetryMax = 2 })
	c := ts.Client()

	id := submitExplore(t, c, ts.URL, 64)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	view, err := s.sched.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if view.State != JobFailed || view.Quarantined {
		t.Errorf("state=%s quarantined=%v, want plain failure", view.State, view.Quarantined)
	}
	if view.Retries != 2 {
		t.Errorf("retries = %d, want 2", view.Retries)
	}
	if got := s.reg.Counter("service.jobs.retries").Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
}

// Intermittent transient failures are absorbed by backoff-retry: the job
// completes despite the injections.
func TestChaosTransientEventuallySucceeds(t *testing.T) {
	s, ts := chaosServer(t, faults.ChaosConfig{Seed: 3, FailProb: 0.5},
		func(c *Config) { c.RetryMax = 20 })
	c := ts.Client()

	id := submitExplore(t, c, ts.URL, 64)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	view, err := s.sched.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if view.State != JobDone {
		t.Fatalf("state = %s (%s), want done", view.State, view.Error)
	}
}

// Corrupted cache hits are evicted and recomputed — the value stays right,
// only the execution count moves.
func TestChaosCacheCorruptionRecomputes(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(8, reg)
	c.chaos = faults.NewChaos(faults.ChaosConfig{Seed: 1, CacheCorruptProb: 1}, reg)
	execs := 0
	fn := func() (any, error) { execs++; return execs, nil }
	for i := 1; i <= 3; i++ {
		v, _, err := c.Do(context.Background(), "k", fn)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != i {
			t.Errorf("round %d served stale value %v", i, v)
		}
	}
	if execs != 3 {
		t.Errorf("executions = %d, want every hit corrupted and recomputed", execs)
	}
	if got := reg.Counter("faults.chaos.cache_corruptions").Value(); got != 2 {
		t.Errorf("corruption counter = %d, want 2", got)
	}
}

// The all-sites chaos profile under concurrent traffic: requests may fail,
// jobs may be quarantined or retried, but the server answers everything and
// stays healthy. This is the `make chaos-short` centerpiece and must pass
// with -race.
func TestChaosServiceSurvivesUnderLoad(t *testing.T) {
	s, ts := chaosServer(t, faults.DefaultChaosConfig(7),
		func(c *Config) { c.Workers = 4; c.RetryMax = 3 })
	c := ts.Client()

	var ids []string
	for i := 0; i < 8; i++ {
		ids = append(ids, submitExplore(t, c, ts.URL, 64+8*(i%4)))
	}
	for i := 0; i < 20; i++ {
		resp, b := doJSON(t, c, "POST", ts.URL+"/v1/simulate", map[string]any{
			"kernel":     "CoMD",
			"fault_mask": fmt.Sprintf("gpu:%d", 1+i%3),
			"seed":       i % 5,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d = %d: %s", i, resp.StatusCode, b)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range ids {
		view, err := s.sched.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if !view.State.Terminal() {
			t.Errorf("job %s stuck in %s", id, view.State)
		}
	}
	if resp, _ := doJSON(t, c, "GET", ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under chaos = %d", resp.StatusCode)
	}
}
