package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ena/internal/cluster"
	"ena/internal/obs"
	"ena/internal/store"
)

// Tests for the horizontally scalable tier: the persistent result store
// layered under the cache, sweep sharding across worker peers, admission
// control, and the readiness/drain surfaces.

func newTierServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		drainCtx, dc := context.WithTimeout(context.Background(), 5*time.Second)
		defer dc()
		s.Drain(drainCtx)
	})
	return s, ts
}

// newWorkerPeer boots a full worker-mode service — the same handler stack a
// real `enaserve -worker` process serves — so these tests exercise the
// actual route mounting, not a bare cluster.WorkerHandler.
func newWorkerPeer(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts := newTierServer(t, Config{WorkerOnly: true, Reg: obs.NewRegistry()})
	return ts
}

// A cold-restarted server must serve a previously computed simulate key from
// the persistent store without re-running the model.
func TestStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := map[string]any{"kernel": "CoMD", "cus": 256, "freq_mhz": 1200}

	st1, err := store.Open(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTierServer(t, Config{Store: st1})
	resp, b := doJSON(t, ts1.Client(), "POST", ts1.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first simulate status = %d: %s", resp.StatusCode, b)
	}
	var first SimulateResponse
	if err := json.Unmarshal(b, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution reported cached")
	}
	if got := s1.Registry().Snapshot().Counters["service.sim.executions"]; got != 1 {
		t.Fatalf("executions after first request = %d, want 1", got)
	}
	ts1.Close()

	// "Restart": a fresh server process over the same store directory.
	st2, err := store.Open(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTierServer(t, Config{Store: st2})
	resp, b = doJSON(t, ts2.Client(), "POST", ts2.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart simulate status = %d: %s", resp.StatusCode, b)
	}
	var second SimulateResponse
	if err := json.Unmarshal(b, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("restarted server did not serve from the store (Cached=false)")
	}
	if got := s2.Registry().Snapshot().Counters["service.sim.executions"]; got != 0 {
		t.Errorf("restarted server executed the model %d times, want 0", got)
	}
	second.Cached = first.Cached
	if !reflect.DeepEqual(first, second) {
		t.Errorf("store round-trip changed the response:\nfirst  %+v\nsecond %+v", first, second)
	}
}

func submitAndWait(t *testing.T, ts *httptest.Server, path string, req map[string]any) JobView {
	t.Helper()
	c := ts.Client()
	resp, b := doJSON(t, c, "POST", ts.URL+path, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s status = %d: %s", path, resp.StatusCode, b)
	}
	var wrap struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(b, &wrap); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, c, ts.URL+"/v1/jobs/"+wrap.Job.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("%s job state = %s (error %q)", path, final.State, final.Error)
	}
	return final
}

// Sharding an explore sweep across two worker peers must return the
// bit-identical result of the single-process sweep — including the paper's
// golden best-mean design point on the default space with the full suite.
func TestServiceShardedExploreBitIdentical(t *testing.T) {
	req := map[string]any{}

	_, local := newTierServer(t, Config{})
	want := submitAndWait(t, local, "/v1/explore", req)

	w1, w2 := newWorkerPeer(t), newWorkerPeer(t)
	srv, sharded := newTierServer(t, Config{Peers: []string{w1.URL, w2.URL}})
	got := submitAndWait(t, sharded, "/v1/explore", req)

	wb, _ := json.Marshal(want.Result)
	gb, _ := json.Marshal(got.Result)
	if string(wb) != string(gb) {
		t.Errorf("sharded explore differs from local:\nlocal   %s\nsharded %s", wb, gb)
	}
	// The answer must have come from the peers: identical results via silent
	// local fallback would mask a broken worker protocol.
	counters := srv.Registry().Snapshot().Counters
	if counters["cluster.items_streamed"] == 0 {
		t.Error("no items streamed from worker peers (silent local fallback?)")
	}
	if n := counters["cluster.local_fallback_shards"]; n != 0 {
		t.Errorf("local_fallback_shards = %d on the happy path", n)
	}
	if n := counters["cluster.peer_failures"]; n != 0 {
		t.Errorf("peer_failures = %d on the happy path", n)
	}
	var res ExploreResult
	if err := json.Unmarshal(gb, &res); err != nil {
		t.Fatal(err)
	}
	if res.BestMean.CUs != 320 || res.BestMean.FreqMHz != 1000 || res.BestMean.BWTBps != 3 {
		t.Errorf("sharded best-mean = %+v, want the golden 320 CUs / 1000 MHz / 3 TB/s", res.BestMean)
	}
}

// One dead peer must not change the answer: its shards fail over to the
// surviving worker and the merged result stays bit-identical.
func TestServiceShardedExploreSurvivesDeadPeer(t *testing.T) {
	req := map[string]any{
		"cus": []int{192, 256, 320}, "freqs_mhz": []float64{800, 1000},
		"bws_tbps": []float64{1, 3}, "kernels": []string{"CoMD", "SNAP"},
	}

	_, local := newTierServer(t, Config{})
	want := submitAndWait(t, local, "/v1/explore", req)

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(dead.Close)
	healthy := newWorkerPeer(t)
	_, sharded := newTierServer(t, Config{Peers: []string{dead.URL, healthy.URL}})
	got := submitAndWait(t, sharded, "/v1/explore", req)

	wb, _ := json.Marshal(want.Result)
	gb, _ := json.Marshal(got.Result)
	if string(wb) != string(gb) {
		t.Errorf("failover explore differs from local:\nlocal   %s\nsharded %s", wb, gb)
	}
}

// Sharded scale must match the local evaluation, degraded fields included.
func TestServiceShardedScaleBitIdentical(t *testing.T) {
	req := map[string]any{
		"kernel": "HPGMG", "nodes": []int{8, 64, 256, 1000},
		"fault_mask": "node:2", "seed": 7,
	}

	_, local := newTierServer(t, Config{})
	want := submitAndWait(t, local, "/v1/scale", req)

	w1, w2 := newWorkerPeer(t), newWorkerPeer(t)
	_, sharded := newTierServer(t, Config{Peers: []string{w1.URL, w2.URL}})
	got := submitAndWait(t, sharded, "/v1/scale", req)

	wb, _ := json.Marshal(want.Result)
	gb, _ := json.Marshal(got.Result)
	if string(wb) != string(gb) {
		t.Errorf("sharded scale differs from local:\nlocal   %s\nsharded %s", wb, gb)
	}
}

// Graceful drain with an async sharded job in flight whose only worker peer
// disappears mid-drain: the shards fail over to local evaluation and the job
// still completes before Drain returns.
func TestDrainWithInflightJobAndPeerLoss(t *testing.T) {
	peer := httptest.NewServer(cluster.WorkerHandler(obs.NewRegistry()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{Workers: 2, Peers: []string{peer.URL}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, b := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/explore", map[string]any{
		"cus": []int{192, 256, 320}, "freqs_mhz": []float64{800, 1000, 1200},
		"bws_tbps": []float64{1, 3}, "kernels": []string{"CoMD", "HPGMG"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, b)
	}
	var wrap struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(b, &wrap); err != nil {
		t.Fatal(err)
	}

	// Kill the only peer, then drain: the in-flight sweep must finish via
	// shard failover onto the coordinator itself.
	peer.Close()
	drainCtx, dc := context.WithTimeout(context.Background(), 60*time.Second)
	defer dc()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain with in-flight job: %v", err)
	}
	view, ok := s.sched.Get(wrap.Job.ID)
	if !ok {
		t.Fatal("job vanished during drain")
	}
	if view.State != JobDone {
		t.Fatalf("drained job state = %s (error %q), want done", view.State, view.Error)
	}
	if s.Registry().Snapshot().Counters["cluster.local_fallback_shards"] == 0 {
		t.Error("no shards fell back locally despite total peer loss")
	}
}

// Drain must flip /v1/healthz to 503 draining while /healthz stays alive,
// and new submissions must be shed.
func TestReadinessDuringDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	resp, b := doJSON(t, c, "GET", ts.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"draining": false`) {
		t.Fatalf("pre-drain readiness = %d: %s", resp.StatusCode, b)
	}

	drainCtx, dc := context.WithTimeout(context.Background(), 5*time.Second)
	defer dc()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	resp, b = doJSON(t, c, "GET", ts.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(b), `"draining": true`) {
		t.Errorf("draining readiness = %d: %s", resp.StatusCode, b)
	}
	resp, _ = doJSON(t, c, "GET", ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("liveness during drain = %d, want 200", resp.StatusCode)
	}
	resp, b = doJSON(t, c, "POST", ts.URL+"/v1/explore", map[string]any{"kernels": []string{"CoMD"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission during drain = %d, want 503: %s", resp.StatusCode, b)
	}
}

// GET /v1/metrics renders the registry as plaintext.
func TestMetricsTextEndpoint(t *testing.T) {
	_, ts := newTierServer(t, Config{})
	c := ts.Client()

	resp, b := doJSON(t, c, "POST", ts.URL+"/v1/simulate", map[string]any{"kernel": "CoMD"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status = %d: %s", resp.StatusCode, b)
	}
	resp, b = doJSON(t, c, "GET", ts.URL+"/v1/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	text := string(b)
	for _, want := range []string{
		"counter service.sim.executions 1",
		"gauge service.cache.hit_ratio",
		"hist service.http.latency_ns",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("plaintext metrics missing %q:\n%s", want, text)
		}
	}
}

// Worker mode serves only the internal shard routes plus health/metrics.
func TestWorkerOnlyRoutes(t *testing.T) {
	_, ts := newTierServer(t, Config{WorkerOnly: true})
	c := ts.Client()

	resp, _ := doJSON(t, c, "GET", ts.URL+"/v1/internal/ping", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("worker ping = %d, want 200", resp.StatusCode)
	}
	resp, _ = doJSON(t, c, "GET", ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("worker healthz = %d, want 200", resp.StatusCode)
	}
	resp, _ = doJSON(t, c, "POST", ts.URL+"/v1/simulate", map[string]any{"kernel": "CoMD"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("worker simulate = %d, want 404 (public API not mounted)", resp.StatusCode)
	}
}

// Admission mechanics: budget of 1, queue of 1 — the first caller holds the
// slot, the second waits, the third is shed immediately.
func TestAdmissionQueueAndShed(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission("test", 1, 1, reg)

	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	waiterIn := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(waiterIn)
		rel, err := a.acquire(context.Background())
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			return
		}
		rel()
	}()
	<-waiterIn
	// Wait until the waiter occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("service.admit.test.queued").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := a.acquire(context.Background()); err == nil {
		t.Fatal("third acquire admitted past a full queue")
	}
	if reg.Counter("service.admit.test.rejected").Value() != 1 {
		t.Errorf("rejected = %d, want 1", reg.Counter("service.admit.test.rejected").Value())
	}

	release() // frees the slot; the waiter takes it and releases too
	wg.Wait()
	if got := reg.Counter("service.admit.test.admitted").Value(); got != 2 {
		t.Errorf("admitted = %d, want 2", got)
	}
}

// A queued caller whose context ends leaves the queue with an error.
func TestAdmissionContextCancel(t *testing.T) {
	a := newAdmission("test", 1, 4, obs.NewRegistry())
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); err == nil {
		t.Fatal("cancelled acquire returned nil error")
	}
}

// Simulate requests for an already-cached key bypass admission entirely.
func TestAdmissionCachedKeyBypass(t *testing.T) {
	s, ts := newTierServer(t, Config{AdmitSimulate: 1, AdmitQueue: 1})
	c := ts.Client()
	body := map[string]any{"kernel": "CoMD"}

	for i := 0; i < 3; i++ {
		resp, b := doJSON(t, c, "POST", ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d status = %d: %s", i, resp.StatusCode, b)
		}
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["service.admit.simulate.bypassed"]; got != 2 {
		t.Errorf("bypassed = %d, want 2 (second and third hits)", got)
	}
	if got := snap.Counters["service.admit.simulate.admitted"]; got != 1 {
		t.Errorf("admitted = %d, want 1 (only the first execution)", got)
	}
}
