package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ena/internal/dse"
	"ena/internal/obs"
	"ena/internal/store"
)

// durableConfig is the shared shape of the durable test servers: a store +
// journal on dir, a tiny checkpoint chunk, and an eval delay that stretches
// sweeps so hard stops land mid-job.
func durableConfig(t *testing.T, dir, owner string, delay time.Duration) (Config, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := store.Open(dir, 64<<20, reg)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := store.OpenJournal(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Workers:         2,
		Reg:             reg,
		Store:           st,
		Journal:         jr,
		OwnerID:         owner,
		LeaseTTL:        500 * time.Millisecond,
		AdoptEvery:      time.Hour, // adoption driven explicitly in tests
		CheckpointItems: 2,
		EvalDelay:       delay,
	}, reg
}

// smallExplore is a 16-point sweep request (2 CUs x 4 freqs x 2 BWs, one
// kernel): big enough for several checkpoint shards, small enough to finish
// in well under a second without the eval delay.
func smallExplore() ExploreRequest {
	return ExploreRequest{
		CUs:      []int{64, 128},
		FreqsMHz: []float64{700, 800, 900, 1000},
		BWsTBps:  []float64{1, 2},
		Kernels:  []string{"CoMD"},
	}
}

// wantExplore computes the single-process golden result for a request.
func wantExplore(t *testing.T, req ExploreRequest) ExploreResult {
	t.Helper()
	ej, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}
	return ej.summarize(dse.Explore(ej.space, ej.kernels, ej.budgetW, ej.tech))
}

func submitExploreReq(t *testing.T, ts *httptest.Server, req ExploreRequest) string {
	t.Helper()
	resp, body := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explore submit: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Job.ID
}

func waitCounter(t *testing.T, reg *obs.Registry, name string, min int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if reg.Counter(name).Value() >= min {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached %d (at %d)", name, min, reg.Counter(name).Value())
}

func TestDurableSubmitJournalsLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := durableConfig(t, dir, "alpha", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := smallExplore()
	id := submitExploreReq(t, ts, req)
	v, err := s.sched.Wait(context.Background(), id)
	if err != nil || v.State != JobDone {
		t.Fatalf("job: state=%s err=%v", v.State, err)
	}
	e, ok := cfg.Journal.Get(id)
	if !ok {
		t.Fatal("no journal entry for completed job")
	}
	if e.State != store.StateDone || e.Owner != "alpha" || e.Kind != "explore" {
		t.Fatalf("journal entry = %+v", e)
	}
	// The journalled spec replays to the same canonical key.
	var rr ExploreRequest
	if err := json.Unmarshal(e.Spec, &rr); err != nil {
		t.Fatal(err)
	}
	ej, err := rr.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if ej.key != e.Key {
		t.Fatalf("replayed key %s != journalled %s", ej.key, e.Key)
	}

	// A user cancel journals terminal cancelled — not recoverable.
	id2 := submitExploreReq(t, ts, ExploreRequest{CUs: []int{64}, FreqsMHz: []float64{750}, BWsTBps: []float64{1}, Kernels: []string{"HPGMG"}})
	s.sched.Cancel(id2)
	s.sched.Wait(context.Background(), id2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		e2, ok := cfg.Journal.Get(id2)
		if ok && store.TerminalState(e2.State) {
			if e2.Recoverable(time.Now()) {
				t.Fatalf("user-cancelled job recoverable: %+v", e2)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job never journalled terminal: %+v", e2)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDurableHardStopRecovery is the tentpole scenario in-process: a server
// is hard-stopped mid-sweep (base context killed, as a drain deadline or
// shutdown does), and a fresh server over the same store directory recovers
// the job, resumes from the checkpointed shards, and produces the
// bit-identical single-process result.
func TestDurableHardStopRecovery(t *testing.T) {
	dir := t.TempDir()
	req := smallExplore()
	want := wantExplore(t, req)

	cfgA, regA := durableConfig(t, dir, "alpha", 60*time.Millisecond)
	ctxA, cancelA := context.WithCancel(context.Background())
	sA := New(ctxA, cfgA)
	tsA := httptest.NewServer(sA.Handler())
	id := submitExploreReq(t, tsA, req)

	// Wait until real progress is checkpointed, then kill the base context —
	// in-flight work is cancelled on the spot.
	waitCounter(t, regA, "jobs.checkpoints", 1, 10*time.Second)
	cancelA()
	tsA.Close()
	v, _ := sA.sched.Wait(context.Background(), id)
	if v.State == JobDone {
		t.Skip("job finished before the hard stop; nothing to recover")
	}
	waitCounter(t, regA, "jobs.interrupted", 1, 5*time.Second)
	if e, ok := cfgA.Journal.Get(id); !ok || !e.Recoverable(time.Now().Add(time.Hour)) {
		t.Fatalf("interrupted job not recoverable in journal: %+v", e)
	}

	// A fresh replica over the same directory recovers it at startup.
	cfgB, regB := durableConfig(t, dir, "bravo", 0)
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	sB := New(ctxB, cfgB)
	if n := regB.Counter("jobs.recovered").Value(); n != 1 {
		t.Fatalf("jobs.recovered = %d, want 1", n)
	}
	vB, err := sB.sched.Wait(context.Background(), id)
	if err != nil || vB.State != JobDone {
		t.Fatalf("recovered job: state=%s err=%v", vB.State, err)
	}
	got, ok := vB.Result.(ExploreResult)
	if !ok {
		t.Fatalf("result type %T", vB.Result)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered result differs from single-process golden:\ngot  %+v\nwant %+v", got, want)
	}
	// At least one shard must have come from the dead server's checkpoints.
	if n := regB.Counter("jobs.resumed_shards").Value(); n < 1 {
		t.Fatalf("jobs.resumed_shards = %d, want >= 1", n)
	}
	// The journal converged on the adopter.
	if e, ok := cfgB.Journal.Get(id); !ok || e.State != store.StateDone || e.Owner != "bravo" {
		t.Fatalf("final journal entry = %+v", e)
	}

	drainCtx, dc := context.WithTimeout(context.Background(), 5*time.Second)
	defer dc()
	sA.Drain(drainCtx)
	sB.Drain(drainCtx)
}

// TestDurableAdoption: a live replica adopts a journalled job whose lease
// has expired — the shared-directory takeover path — without any restart.
func TestDurableAdoption(t *testing.T) {
	dir := t.TempDir()
	req := smallExplore()
	want := wantExplore(t, req)
	ej, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(req)

	cfg, reg := durableConfig(t, dir, "survivor", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, cfg)

	// A ghost replica journalled this job and died: the lease expired an
	// hour ago and no state record ever moved it past queued.
	if err := cfg.Journal.Append(store.Record{
		ID: "ghostjob1", Type: "submit", Kind: "explore", Key: ej.key, Spec: spec,
		State: store.StateQueued, Owner: "ghost",
		LeaseMs: time.Now().Add(-time.Hour).UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}

	s.durable.adoptOnce(time.Now())
	if n := reg.Counter("jobs.adopted").Value(); n != 1 {
		t.Fatalf("jobs.adopted = %d, want 1", n)
	}
	v, err := s.sched.Wait(context.Background(), "ghostjob1")
	if err != nil || v.State != JobDone {
		t.Fatalf("adopted job: state=%s err=%v", v.State, err)
	}
	if got := v.Result.(ExploreResult); !reflect.DeepEqual(got, want) {
		t.Fatal("adopted result differs from single-process golden")
	}
	// Re-scanning must not adopt it again (terminal + owned).
	s.durable.adoptOnce(time.Now())
	if n := reg.Counter("jobs.adopted").Value(); n != 1 {
		t.Fatalf("jobs.adopted after rescan = %d, want 1", n)
	}

	// A job with a live lease held by a peer is left alone.
	if err := cfg.Journal.Append(store.Record{
		ID: "busyjob1", Type: "submit", Kind: "explore", Key: ej.key, Spec: spec,
		State: store.StateRunning, Owner: "peer",
		LeaseMs: time.Now().Add(time.Hour).UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}
	s.durable.adoptOnce(time.Now())
	if n := reg.Counter("jobs.adopted").Value(); n != 1 {
		t.Fatal("adopted a job under a live lease")
	}

	// A poison spec is journalled failed, not retried forever.
	if err := cfg.Journal.Append(store.Record{
		ID: "poisonjob1", Type: "submit", Kind: "explore", Key: "k",
		Spec:  json.RawMessage(`{"cus":[-5]}`),
		State: store.StateQueued, Owner: "ghost",
		LeaseMs: time.Now().Add(-time.Hour).UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}
	s.durable.adoptOnce(time.Now())
	if e, ok := cfg.Journal.Get("poisonjob1"); !ok || e.State != store.StateFailed {
		t.Fatalf("poison entry = %+v, want failed", e)
	}
}

func TestDurableJournalJobView(t *testing.T) {
	// GET /v1/jobs/{id} answers from the shared journal for jobs this
	// replica has no in-memory record of.
	dir := t.TempDir()
	req := smallExplore()
	ej, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(req)

	cfg, _ := durableConfig(t, dir, "viewer", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := cfg.Journal.Append(store.Record{
		ID: "peerjob1", Type: "submit", Kind: "explore", Key: ej.key, Spec: spec,
		State: store.StateRunning, Owner: "peer",
		LeaseMs: time.Now().Add(time.Hour).UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}
	resp, body := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/jobs/peerjob1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journal view: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Job.Owner != "peer" || out.Job.State != JobState(store.StateRunning) {
		t.Fatalf("journal view = %+v", out.Job)
	}

	// The internal jobs summary lists it too.
	resp, body = doJSON(t, ts.Client(), "GET", ts.URL+"/v1/internal/jobs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("internal jobs: %d", resp.StatusCode)
	}
	var sum struct {
		Owner string `json:"owner"`
		Jobs  []struct {
			ID    string `json:"id"`
			Owner string `json:"owner"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Owner != "viewer" || len(sum.Jobs) != 1 || sum.Jobs[0].ID != "peerjob1" {
		t.Fatalf("internal jobs summary = %+v", sum)
	}
}

func TestDrainDeadlineJournalsInterrupted(t *testing.T) {
	dir := t.TempDir()
	cfg, reg := durableConfig(t, dir, "drainer", 80*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submitExploreReq(t, ts, smallExplore())
	waitCounter(t, reg, "jobs.checkpoints", 1, 10*time.Second)

	drainCtx, dc := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dc()
	if err := s.Drain(drainCtx); err == nil {
		t.Skip("job drained before the deadline; nothing interrupted")
	}
	if n := reg.Counter("jobs.interrupted").Value(); n < 1 {
		t.Fatalf("jobs.interrupted = %d, want >= 1", n)
	}
	e, ok := cfg.Journal.Get(id)
	if !ok || e.State != store.StateInterrupted {
		t.Fatalf("journal entry after drain = %+v, want interrupted", e)
	}
	if !e.Recoverable(time.Now().Add(time.Hour)) {
		t.Fatal("interrupted job not recoverable")
	}
}

func TestDurableScaleRecovery(t *testing.T) {
	// The scale path rides the same journal/replay machinery.
	dir := t.TempDir()
	req := ScaleRequest{Kernel: "CoMD", Nodes: []int{1, 8, 50, 256}}
	spec, _ := json.Marshal(req)
	sj, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}

	cfg, reg := durableConfig(t, dir, "scaler", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, cfg)

	if err := cfg.Journal.Append(store.Record{
		ID: "ghostscale1", Type: "submit", Kind: "scale", Key: sj.key, Spec: spec,
		State: store.StateInterrupted, Owner: "ghost",
	}); err != nil {
		t.Fatal(err)
	}
	s.durable.adoptOnce(time.Now())
	if n := reg.Counter("jobs.adopted").Value(); n != 1 {
		t.Fatalf("jobs.adopted = %d, want 1", n)
	}
	v, err := s.sched.Wait(context.Background(), "ghostscale1")
	if err != nil || v.State != JobDone {
		t.Fatalf("adopted scale job: state=%s err=%v", v.State, err)
	}
	res, ok := v.Result.(ScaleResult)
	if !ok || len(res.Points) != 4 {
		t.Fatalf("scale result = %+v", v.Result)
	}
}

func TestRestoredResultServedFromStore(t *testing.T) {
	// A completed job's result survives a restart: the fresh server restores
	// it from the journal + store without recomputing (execution counters
	// stay zero).
	dir := t.TempDir()
	req := smallExplore()

	cfgA, _ := durableConfig(t, dir, "alpha", 0)
	ctxA, cancelA := context.WithCancel(context.Background())
	sA := New(ctxA, cfgA)
	tsA := httptest.NewServer(sA.Handler())
	id := submitExploreReq(t, tsA, req)
	vA, err := sA.sched.Wait(context.Background(), id)
	if err != nil || vA.State != JobDone {
		t.Fatalf("job: state=%s err=%v", vA.State, err)
	}
	want := vA.Result.(ExploreResult)
	tsA.Close()
	cancelA()
	drainCtx, dc := context.WithTimeout(context.Background(), 5*time.Second)
	defer dc()
	sA.Drain(drainCtx)

	cfgB, regB := durableConfig(t, dir, "bravo", 0)
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	sB := New(ctxB, cfgB)
	tsB := httptest.NewServer(sB.Handler())
	defer tsB.Close()
	resp, body := doJSON(t, tsB.Client(), "GET", fmt.Sprintf("%s/v1/jobs/%s", tsB.URL, id), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored job view: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Job.State != JobDone {
		t.Fatalf("restored state = %s", out.Job.State)
	}
	// Decode the wire result back into the typed shape: it must round-trip
	// to exactly what the original process computed.
	gotJSON, _ := json.Marshal(out.Job.Result)
	var got ExploreResult
	if err := json.Unmarshal(gotJSON, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored result differs:\ngot  %+v\nwant %+v", got, want)
	}
	if n := regB.Counter("service.jobs.submitted").Value(); n != 0 {
		t.Fatalf("restore re-submitted %d job(s)", n)
	}
}
