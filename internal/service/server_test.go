package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	s := New(ctx, Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		drainCtx, dc := context.WithTimeout(context.Background(), 5*time.Second)
		defer dc()
		s.Drain(drainCtx)
	})
	return s, ts
}

func doJSON(t *testing.T, client *http.Client, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestServerEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	tests := []struct {
		name       string
		method     string
		path       string
		body       any
		rawBody    string
		wantStatus int
		wantSubstr string
	}{
		{
			name: "healthz", method: "GET", path: "/healthz",
			wantStatus: http.StatusOK, wantSubstr: `"status": "ok"`,
		},
		{
			name: "metrics", method: "GET", path: "/metrics",
			wantStatus: http.StatusOK, wantSubstr: "counters",
		},
		{
			name: "kernels list", method: "GET", path: "/v1/kernels",
			wantStatus: http.StatusOK, wantSubstr: "MaxFlops",
		},
		{
			name: "experiments list", method: "GET", path: "/v1/experiments",
			wantStatus: http.StatusOK, wantSubstr: "table1",
		},
		{
			name: "simulate ok", method: "POST", path: "/v1/simulate",
			body:       map[string]any{"kernel": "CoMD"},
			wantStatus: http.StatusOK, wantSubstr: `"kernel": "CoMD"`,
		},
		{
			name: "simulate full options", method: "POST", path: "/v1/simulate",
			body: map[string]any{
				"cus": 256, "freq_mhz": 1200, "bw_tbps": 2, "kernel": "HPGMG",
				"options": map[string]any{
					"policy":        "hardware-cache",
					"miss_frac":     0.1,
					"optimizations": []string{"ntc", "compression"},
				},
			},
			wantStatus: http.StatusOK, wantSubstr: `"tflops"`,
		},
		{
			name: "simulate missing kernel", method: "POST", path: "/v1/simulate",
			body:       map[string]any{"cus": 128},
			wantStatus: http.StatusBadRequest, wantSubstr: "kernel is required",
		},
		{
			name: "simulate unknown kernel", method: "POST", path: "/v1/simulate",
			body:       map[string]any{"kernel": "nosuch"},
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "simulate bad policy", method: "POST", path: "/v1/simulate",
			body:       map[string]any{"kernel": "CoMD", "options": map[string]any{"policy": "psychic"}},
			wantStatus: http.StatusBadRequest, wantSubstr: "unknown policy",
		},
		{
			name: "simulate bad optimization", method: "POST", path: "/v1/simulate",
			body:       map[string]any{"kernel": "CoMD", "options": map[string]any{"optimizations": []string{"overclock"}}},
			wantStatus: http.StatusBadRequest, wantSubstr: "unknown optimization",
		},
		{
			name: "simulate miss_frac out of range", method: "POST", path: "/v1/simulate",
			body:       map[string]any{"kernel": "CoMD", "options": map[string]any{"miss_frac": 1.5}},
			wantStatus: http.StatusBadRequest, wantSubstr: "miss_frac",
		},
		{
			name: "simulate unknown field", method: "POST", path: "/v1/simulate",
			rawBody:    `{"kernel":"CoMD","turbo":true}`,
			wantStatus: http.StatusBadRequest, wantSubstr: "invalid request body",
		},
		{
			name: "simulate malformed json", method: "POST", path: "/v1/simulate",
			rawBody:    `{"kernel":`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "simulate multiple documents", method: "POST", path: "/v1/simulate",
			rawBody:    `{"kernel":"CoMD"}{"kernel":"SNAP"}`,
			wantStatus: http.StatusBadRequest, wantSubstr: "multiple JSON documents",
		},
		{
			name: "explore bad grid", method: "POST", path: "/v1/explore",
			body:       map[string]any{"cus": []int{-4}},
			wantStatus: http.StatusBadRequest, wantSubstr: "has non-positive value -4",
		},
		{
			name: "explore bad packaging axis", method: "POST", path: "/v1/explore",
			body:       map[string]any{"gpu_chiplets": []int{0, 4}},
			wantStatus: http.StatusBadRequest, wantSubstr: "has non-positive value 0",
		},
		{
			name: "explore unknown explorer", method: "POST", path: "/v1/explore",
			body:       map[string]any{"explorer": "genetic"},
			wantStatus: http.StatusBadRequest, wantSubstr: "unknown explorer",
		},
		{
			name: "explore eval budget without surrogate", method: "POST", path: "/v1/explore",
			body:       map[string]any{"eval_budget": 10},
			wantStatus: http.StatusBadRequest, wantSubstr: "eval_budget requires explorer",
		},
		{
			name: "explore negative timeout", method: "POST", path: "/v1/explore",
			body:       map[string]any{"timeout_sec": -1},
			wantStatus: http.StatusBadRequest, wantSubstr: "negative timeout",
		},
		{
			name: "job not found", method: "GET", path: "/v1/jobs/deadbeef",
			wantStatus: http.StatusNotFound, wantSubstr: "unknown job",
		},
		{
			name: "cancel job not found", method: "DELETE", path: "/v1/jobs/deadbeef",
			wantStatus: http.StatusNotFound,
		},
		{
			name: "experiment not found", method: "GET", path: "/v1/experiments/nosuch",
			wantStatus: http.StatusNotFound,
		},
		{
			name: "wrong method", method: "GET", path: "/v1/simulate",
			wantStatus: http.StatusMethodNotAllowed,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if tc.rawBody != "" {
				r, err := c.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.rawBody))
				if err != nil {
					t.Fatalf("POST: %v", err)
				}
				defer r.Body.Close()
				var buf bytes.Buffer
				buf.ReadFrom(r.Body)
				resp, body = r, buf.Bytes()
			} else {
				resp, body = doJSON(t, c, tc.method, ts.URL+tc.path, tc.body)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.wantSubstr != "" && !strings.Contains(string(body), tc.wantSubstr) {
				t.Errorf("body missing %q:\n%s", tc.wantSubstr, body)
			}
		})
	}
}

// TestSimulateCacheDedup is the headline acceptance check: a second identical
// request is served from cache without re-running the model, visible both in
// the response's cached flag and in the obs counters.
func TestSimulateCacheDedup(t *testing.T) {
	s, ts := newTestServer(t)
	c := ts.Client()
	body := map[string]any{"kernel": "LULESH", "cus": 288, "freq_mhz": 1100}

	resp1, b1 := doJSON(t, c, "POST", ts.URL+"/v1/simulate", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first status = %d: %s", resp1.StatusCode, b1)
	}
	var r1, r2 SimulateResponse
	if err := json.Unmarshal(b1, &r1); err != nil {
		t.Fatalf("unmarshal first: %v", err)
	}
	if r1.Cached {
		t.Error("first request reported cached")
	}

	resp2, b2 := doJSON(t, c, "POST", ts.URL+"/v1/simulate", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d: %s", resp2.StatusCode, b2)
	}
	if err := json.Unmarshal(b2, &r2); err != nil {
		t.Fatalf("unmarshal second: %v", err)
	}
	if !r2.Cached {
		t.Error("second identical request was not served from cache")
	}
	if r1.Key != r2.Key || r1.TFLOPs != r2.TFLOPs {
		t.Errorf("responses disagree: key %s vs %s, tflops %v vs %v", r1.Key, r2.Key, r1.TFLOPs, r2.TFLOPs)
	}

	snap := s.Registry().Snapshot()
	if n := snap.Counters["service.sim.executions"]; n != 1 {
		t.Errorf("sim executions = %d, want 1 (model must not re-run)", n)
	}
	if h, m := snap.Counters["service.cache.hits"], snap.Counters["service.cache.misses"]; h != 1 || m != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", h, m)
	}
}

// Requests that spell the same work differently (defaults omitted vs explicit,
// optimization list permuted) must map to one cache key.
func TestSimulateCanonicalKeys(t *testing.T) {
	s, ts := newTestServer(t)
	c := ts.Client()

	variants := []map[string]any{
		{"kernel": "SNAP", "options": map[string]any{"optimizations": []string{"ntc", "async-cu"}}},
		{"kernel": "SNAP", "cus": 320, "freq_mhz": 1000, "bw_tbps": 3,
			"options": map[string]any{"optimizations": []string{"async-cu", "ntc", "ntc"}, "policy": "software-managed"}},
	}
	keys := make([]string, len(variants))
	for i, v := range variants {
		resp, b := doJSON(t, c, "POST", ts.URL+"/v1/simulate", v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("variant %d status = %d: %s", i, resp.StatusCode, b)
		}
		var r SimulateResponse
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		keys[i] = r.Key
	}
	if keys[0] != keys[1] {
		t.Errorf("equivalent requests got distinct keys:\n%s\n%s", keys[0], keys[1])
	}
	if n := s.Registry().Snapshot().Counters["service.sim.executions"]; n != 1 {
		t.Errorf("sim executions = %d, want 1 across equivalent variants", n)
	}
}

func pollJob(t *testing.T, c *http.Client, url string, deadline time.Duration) JobView {
	t.Helper()
	var last JobView
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		resp, b := doJSON(t, c, "GET", url, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d: %s", resp.StatusCode, b)
		}
		var wrap struct {
			Job JobView `json:"job"`
		}
		if err := json.Unmarshal(b, &wrap); err != nil {
			t.Fatalf("poll unmarshal: %v", err)
		}
		last = wrap.Job
		if last.State.Terminal() {
			return last
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job did not finish within %v (state %s)", deadline, last.State)
	return last
}

func TestExploreJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	req := map[string]any{
		"cus":       []int{64, 128},
		"freqs_mhz": []float64{800, 1000},
		"bws_tbps":  []float64{1, 2},
		"kernels":   []string{"MaxFlops", "CoMD"},
	}
	resp, b := doJSON(t, c, "POST", ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202: %s", resp.StatusCode, b)
	}
	var wrap struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(b, &wrap); err != nil {
		t.Fatalf("unmarshal submit: %v", err)
	}
	if wrap.Job.ID == "" || wrap.Job.Kind != "explore" {
		t.Fatalf("submit view = %+v", wrap.Job)
	}

	final := pollJob(t, c, ts.URL+"/v1/jobs/"+wrap.Job.ID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("job state = %s (error %q), want done", final.State, final.Error)
	}
	// Result round-trips through JSON as a map; re-marshal into the typed form.
	rb, _ := json.Marshal(final.Result)
	var res ExploreResult
	if err := json.Unmarshal(rb, &res); err != nil {
		t.Fatalf("result unmarshal: %v", err)
	}
	if res.Points != 8 {
		t.Errorf("points = %d, want 8 (2 CUs x 2 freqs x 2 BWs)", res.Points)
	}
	if res.BestMean.CUs == 0 {
		t.Errorf("best mean point empty: %+v", res.BestMean)
	}
	if len(res.PerKernel) != 2 {
		t.Errorf("per-kernel entries = %d, want 2", len(res.PerKernel))
	}
}

// A permuted but equivalent explore request must dedup onto the same cached
// sweep: the second job completes against the cache without a new execution.
func TestExploreCanonicalDedup(t *testing.T) {
	s, ts := newTestServer(t)
	c := ts.Client()

	submit := func(req map[string]any) JobView {
		resp, b := doJSON(t, c, "POST", ts.URL+"/v1/explore", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d: %s", resp.StatusCode, b)
		}
		var wrap struct {
			Job JobView `json:"job"`
		}
		if err := json.Unmarshal(b, &wrap); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		return wrap.Job
	}

	j1 := submit(map[string]any{
		"cus": []int{64, 128}, "freqs_mhz": []float64{1000}, "bws_tbps": []float64{1},
		"kernels": []string{"MaxFlops"},
	})
	f1 := pollJob(t, c, ts.URL+"/v1/jobs/"+j1.ID, 30*time.Second)
	if f1.State != JobDone {
		t.Fatalf("first job state = %s", f1.State)
	}
	before := s.Registry().Snapshot().Counters["dse.sweeps"]

	// Same grid, reversed and with a duplicate — canonicalization must
	// collapse it onto the cached key.
	j2 := submit(map[string]any{
		"cus": []int{128, 64, 64}, "freqs_mhz": []float64{1000}, "bws_tbps": []float64{1},
		"kernels": []string{"MaxFlops"},
	})
	f2 := pollJob(t, c, ts.URL+"/v1/jobs/"+j2.ID, 30*time.Second)
	if f2.State != JobDone {
		t.Fatalf("second job state = %s", f2.State)
	}
	after := s.Registry().Snapshot().Counters["dse.sweeps"]
	if after != before {
		t.Errorf("second equivalent explore ran a new sweep (sweeps %d -> %d)", before, after)
	}
	if n := s.Registry().Snapshot().Counters["service.cache.hits"]; n == 0 {
		t.Error("cache hits = 0; explore result was not served from cache")
	}
}

// Cancelling an explore job mid-sweep must stop the workers before the grid
// completes — the acceptance criterion for cooperative cancellation.
func TestExploreCancelMidSweep(t *testing.T) {
	s, ts := newTestServer(t)
	c := ts.Client()

	// A grid big enough (~46k points x 2 kernels) that cancellation lands
	// long before completion.
	var cus []int
	for v := 64; v <= 384; v += 2 {
		cus = append(cus, v)
	}
	var freqs []float64
	for v := 700.0; v <= 1500; v += 50 {
		freqs = append(freqs, v)
	}
	var bws []float64
	for v := 0.5; v <= 8; v += 0.25 {
		bws = append(bws, v)
	}
	total := len(cus) * len(freqs) * len(bws)

	resp, b := doJSON(t, c, "POST", ts.URL+"/v1/explore", map[string]any{
		"cus": cus, "freqs_mhz": freqs, "bws_tbps": bws,
		"kernels": []string{"MaxFlops", "CoMD"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, b)
	}
	var wrap struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(b, &wrap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	// Wait until the sweep is demonstrably in progress, then cancel it.
	deadline := time.Now().Add(10 * time.Second)
	for s.Registry().Snapshot().Counters["dse.points_evaluated"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}
	dresp, db := doJSON(t, c, "DELETE", ts.URL+"/v1/jobs/"+wrap.Job.ID, nil)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d: %s", dresp.StatusCode, db)
	}

	final := pollJob(t, c, ts.URL+"/v1/jobs/"+wrap.Job.ID, 30*time.Second)
	if final.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.Result != nil {
		t.Error("cancelled job leaked a result")
	}
	evaluated := s.Registry().Snapshot().Counters["dse.points_evaluated"]
	if evaluated >= int64(total) {
		t.Errorf("sweep ran to completion (%d of %d points) despite cancellation", evaluated, total)
	}
	if n := s.Registry().Snapshot().Counters["dse.sweeps_cancelled"]; n != 1 {
		t.Errorf("sweeps_cancelled = %d, want 1", n)
	}
}

func TestExperimentRunCached(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	var first, second ExperimentResponse
	resp, b := doJSON(t, c, "GET", ts.URL+"/v1/experiments/table1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &first); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if first.Cached || first.Output == "" {
		t.Errorf("first run: cached=%v, output len %d", first.Cached, len(first.Output))
	}
	_, b = doJSON(t, c, "GET", ts.URL+"/v1/experiments/table1", nil)
	if err := json.Unmarshal(b, &second); err != nil {
		t.Fatalf("unmarshal second: %v", err)
	}
	if !second.Cached {
		t.Error("second experiment run was not cached")
	}
	if second.Output != first.Output {
		t.Error("cached output differs from first run")
	}
}

// TestConcurrentClientsStress drives many clients over a small key space under
// the race detector: same-key requests must coalesce to one execution each,
// and every response must be consistent.
func TestConcurrentClientsStress(t *testing.T) {
	s, ts := newTestServer(t)
	c := ts.Client()

	kernels := []string{"MaxFlops", "CoMD", "HPGMG", "LULESH"}
	const clients = 24
	const perClient = 12

	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				k := kernels[(g+i)%len(kernels)]
				resp, b := doJSON(t, c, "POST", ts.URL+"/v1/simulate", map[string]any{"kernel": k})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d: %s", g, resp.StatusCode, b)
					return
				}
				var r SimulateResponse
				if err := json.Unmarshal(b, &r); err != nil {
					t.Errorf("client %d: %v", g, err)
					return
				}
				if r.Kernel != k || r.TFLOPs <= 0 {
					t.Errorf("client %d: bad response %+v", g, r)
					return
				}
			}
		}(g)
	}
	// Mix in metrics scrapes and health checks while simulations fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			doJSON(t, c, "GET", ts.URL+"/metrics", nil)
			doJSON(t, c, "GET", ts.URL+"/healthz", nil)
		}
	}()
	wg.Wait()

	snap := s.Registry().Snapshot()
	execs := snap.Counters["service.sim.executions"]
	if execs != int64(len(kernels)) {
		t.Errorf("sim executions = %d, want %d (one per distinct kernel)", execs, len(kernels))
	}
	if snap.Counters["service.http.simulate.requests"] != int64(clients*perClient) {
		t.Errorf("simulate requests = %d, want %d",
			snap.Counters["service.http.simulate.requests"], clients*perClient)
	}
}

// After Drain, job submissions are rejected with 503 but cheap reads still work.
func TestServerDrainRejectsNewJobs(t *testing.T) {
	ctx := context.Background()
	s := New(ctx, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, b := doJSON(t, c, "POST", ts.URL+"/v1/explore", map[string]any{
		"cus": []int{64}, "freqs_mhz": []float64{1000}, "bws_tbps": []float64{1},
		"kernels": []string{"MaxFlops"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("explore after drain = %d, want 503: %s", resp.StatusCode, b)
	}
	hresp, _ := doJSON(t, c, "GET", ts.URL+"/healthz", nil)
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz after drain = %d", hresp.StatusCode)
	}
}

// Queue saturation sheds load with 503 + Retry-After so clients know when
// to come back.
func TestExploreQueueFull(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// Deterministically saturate the pool: a gated job occupies the single
	// worker and a second fills the one queue slot, so the HTTP submission
	// must be rejected.
	gate := make(chan struct{})
	started := make(chan struct{})
	if _, err := s.sched.Submit("blocker", 0, func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started
	if _, err := s.sched.Submit("filler", 0, func(ctx context.Context) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatalf("Submit filler: %v", err)
	}

	resp, b := doJSON(t, c, "POST", ts.URL+"/v1/explore", map[string]any{
		"cus": []int{64}, "freqs_mhz": []float64{1000}, "bws_tbps": []float64{1},
		"kernels": []string{"MaxFlops"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("explore with saturated queue = %d, want 503: %s", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("saturated queue response is missing Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", ra)
	}
	close(gate)
	drainCtx, dc := context.WithTimeout(context.Background(), 10*time.Second)
	defer dc()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestHashCanonDeterministic(t *testing.T) {
	a := hashCanon(simCanon{V: 1, CUs: 320, Kernel: "CoMD"})
	b := hashCanon(simCanon{V: 1, CUs: 320, Kernel: "CoMD"})
	if a != b {
		t.Errorf("hashes differ: %s vs %s", a, b)
	}
	if c := hashCanon(simCanon{V: 2, CUs: 320, Kernel: "CoMD"}); c == a {
		t.Error("version bump did not change the key")
	}
	if len(a) != 64 {
		t.Errorf("key length = %d, want 64 hex chars", len(a))
	}
}

func TestParseHelpers(t *testing.T) {
	if got := sortedUniqueInts([]int{3, 1, 3, 2, 1}); fmt.Sprint(got) != "[1 2 3]" {
		t.Errorf("sortedUniqueInts = %v", got)
	}
	if got := sortedUniqueFloats([]float64{2.5, 1, 2.5}); fmt.Sprint(got) != "[1 2.5]" {
		t.Errorf("sortedUniqueFloats = %v", got)
	}
	tech, err := parseTechniques([]string{"NTC", " compression "})
	if err != nil {
		t.Fatalf("parseTechniques: %v", err)
	}
	names := techNames(tech)
	if fmt.Sprint(names) != "[compression ntc]" {
		t.Errorf("techNames = %v", names)
	}
	if _, err := parsePolicy("hardware"); err != nil {
		t.Errorf("parsePolicy(hardware): %v", err)
	}
}
