package service

import (
	"container/list"
	"context"
	"encoding/json"
	"sync"

	"ena/internal/faults"
	"ena/internal/obs"
	"ena/internal/store"
)

// Cache is a content-addressed result cache with LRU eviction and
// singleflight execution. Keys are canonical-JSON hashes of the work they
// identify (see the canonicalKey methods in types.go), so two requests that
// describe the same simulation — regardless of field order, defaults spelled
// out or omitted, or optimization-list ordering — share one cache slot.
//
// Do guarantees at most one execution per key at a time: concurrent callers
// with the same key block on the first caller's in-flight execution and all
// receive its result (the "coalesced" counter tracks how many executions
// singleflight saved). Errors are never cached — a failed execution leaves
// the slot empty so the next caller retries.
type Cache struct {
	// chaos, when set, randomly treats hits as corrupted: the entry is
	// evicted and recomputed (read repair), exercising the miss path under
	// load. Set before serving traffic; nil disables.
	chaos *faults.Chaos

	// store, when set, layers a persistent blob store under the memory
	// cache: DoPersist reads through to it on memory misses and writes
	// computed results back, so results survive restarts and are shared by
	// replicas on the same directory. Nil disables (Do-equivalent behavior).
	store *store.Store

	mu       sync.Mutex
	capacity int
	lru      *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element holding *entry
	inflight map[string]*flight

	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	size      *obs.Gauge
}

type entry struct {
	key string
	val any
}

type flight struct {
	done chan struct{} // closed once val/err are final
	val  any
	err  error
}

// DefaultCacheSize bounds the result cache when Config.CacheSize is zero.
const DefaultCacheSize = 4096

// NewCache returns an empty cache holding at most capacity results
// (DefaultCacheSize when capacity <= 0). Metrics land in reg under
// service.cache.* (nil disables them).
func NewCache(capacity int, reg *obs.Registry) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity:  capacity,
		lru:       list.New(),
		entries:   make(map[string]*list.Element),
		inflight:  make(map[string]*flight),
		hits:      reg.Counter("service.cache.hits"),
		misses:    reg.Counter("service.cache.misses"),
		coalesced: reg.Counter("service.cache.coalesced"),
		evictions: reg.Counter("service.cache.evictions"),
		size:      reg.Gauge("service.cache.size"),
	}
}

// SetStore layers a persistent result store under the memory cache (see the
// store field). Set before serving traffic; nil is allowed.
func (c *Cache) SetStore(st *store.Store) { c.store = st }

// Contains reports whether key is resident in memory or being computed right
// now, without touching LRU order or the persistent store. Admission control
// uses it to let known-cheap requests coalesce past the queue.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return true
	}
	_, ok := c.inflight[key]
	return ok
}

// HitRatio returns memory hits / (hits + misses) over the cache's lifetime,
// 0 before any traffic.
func (c *Cache) HitRatio() float64 {
	h, m := float64(c.hits.Value()), float64(c.misses.Value())
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get returns the cached value for key, marking it recently used. It does
// not consult in-flight executions; use Do for read-through semantics.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Do returns the cached value for key, or executes fn exactly once across
// all concurrent callers of the same key and caches its result. The second
// return reports whether the caller was served without executing fn itself
// (a cache hit or a coalesced in-flight share).
//
// ctx only governs waiting: a caller whose context ends while blocked on
// another caller's execution gets ctx.Err(). The execution itself runs under
// whatever context fn captured — cancelling a waiting follower never aborts
// the shared execution.
func (c *Cache) Do(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		if c.chaos.CorruptCache() {
			// Injected corruption: drop the entry and fall through to
			// the miss path so the value is recomputed (read repair).
			c.lru.Remove(el)
			delete(c.entries, key)
			c.size.Set(float64(c.lru.Len()))
		} else {
			c.lru.MoveToFront(el)
			v := el.Value.(*entry).val
			c.hits.Inc()
			c.mu.Unlock()
			return v, true, nil
		}
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced.Inc()
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses.Inc()
	c.mu.Unlock()

	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.storeLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// DoPersist is Do with the persistent store layered underneath: a memory
// miss first consults the store (decode maps the stored JSON back to the
// value type the call site caches), and a fresh execution writes its result
// through. Store serves count as shared — the caller got a result computed
// elsewhere (an earlier process, or another replica on the same directory).
// A blob that no longer decodes (an older build's shape) is recomputed and
// overwritten, never an error. Singleflight spans the whole read path, so
// concurrent callers share one store read just as they share one execution.
func (c *Cache) DoPersist(ctx context.Context, key string, decode func([]byte) (any, error), fn func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		if c.chaos.CorruptCache() {
			c.lru.Remove(el)
			delete(c.entries, key)
			c.size.Set(float64(c.lru.Len()))
		} else {
			c.lru.MoveToFront(el)
			v := el.Value.(*entry).val
			c.hits.Inc()
			c.mu.Unlock()
			return v, true, nil
		}
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced.Inc()
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	fromStore := false
	if b, ok := c.store.Get(key); ok {
		if v, err := decode(b); err == nil {
			f.val, fromStore = v, true
		}
	}
	if !fromStore {
		c.misses.Inc()
		f.val, f.err = fn()
		if f.err == nil {
			if b, err := json.Marshal(f.val); err == nil {
				_ = c.store.Put(key, b) // best-effort; the store counts write errors
			}
		}
	}

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.storeLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, fromStore, f.err
}

// decodeAs maps a persisted store blob back to the concrete type its call
// site caches: DoPersist stores plain JSON of the cached value, and handlers
// type-assert what the cache hands back, so the decode must restore the
// exact dynamic type.
func decodeAs[T any](b []byte) (any, error) {
	var v T
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// storeLocked inserts (or refreshes) a cache entry and evicts from the LRU
// tail beyond capacity. Callers hold c.mu.
func (c *Cache) storeLocked(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, val: val})
	for c.lru.Len() > c.capacity {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*entry).key)
		c.evictions.Inc()
	}
	c.size.Set(float64(c.lru.Len()))
}
