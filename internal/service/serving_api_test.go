package service

import (
	"net/http"
	"strings"
	"testing"
)

func TestSimulateDLKernelSpec(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	code, res, b := simulate(t, c, ts.URL, map[string]any{"kernel": "gemm:4096x4096x4096:fp16"})
	if code != http.StatusOK {
		t.Fatalf("DL spec simulate = %d: %s", code, b)
	}
	if res.TFLOPs <= 0 {
		t.Errorf("DL kernel produced no throughput: %+v", res)
	}
	// The response names the canonical spec (defaults materialized).
	if res.Kernel != "gemm:4096x4096x4096:fp16:t128x128x64" {
		t.Errorf("kernel name %q is not the canonical spec", res.Kernel)
	}

	// An equivalent spelling (explicit default tiles, dtype alias) shares
	// the cache slot.
	code, alias, _ := simulate(t, c, ts.URL, map[string]any{"kernel": "gemm:4096x4096x4096:half:t128x128x64"})
	if code != http.StatusOK || alias.Key != res.Key || !alias.Cached {
		t.Errorf("equivalent DL spec missed the cache (code %d, cached %v, key match %v)",
			code, alias.Cached, alias.Key == res.Key)
	}

	code, _, b = simulate(t, c, ts.URL, map[string]any{"kernel": "gemm:0x4x4:fp16"})
	if code != http.StatusBadRequest {
		t.Errorf("invalid DL shape accepted: %d %s", code, b)
	}
}

func TestSimulateServingScenario(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	req := map[string]any{
		"kernel":   "attn:1x32x1x2048x128:fp16",
		"scenario": "serving",
		"batches":  "1,4,8",
		"requests": 2000,
		"seed":     3,
	}
	code, res, b := simulate(t, c, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("serving simulate = %d: %s", code, b)
	}
	if len(res.Serving) != 3 {
		t.Fatalf("serving points = %d, want 3: %+v", len(res.Serving), res.Serving)
	}
	prev := 0.0
	for _, v := range res.Serving {
		if v.ServiceUs <= 0 || v.CapacityRPS <= 0 || v.AchievedRPS <= 0 || v.P99Us < v.P50Us {
			t.Errorf("implausible serving point %+v", v)
		}
		// Decode attention batching amortizes nothing per request but still
		// raises throughput via concurrency; capacity must not shrink.
		if v.CapacityRPS < prev {
			t.Errorf("capacity fell with batch: %+v", res.Serving)
		}
		prev = v.CapacityRPS
		if v.OfferedQPS >= v.CapacityRPS {
			t.Errorf("default load not below capacity: %+v", v)
		}
	}

	// Bit-identical repeat from cache; permuted batch list aliases.
	code, again, _ := simulate(t, c, ts.URL, map[string]any{
		"kernel": "attn:1x32x1x2048x128:fp16", "scenario": "serving",
		"batches": "8,4,1,4", "requests": 2000, "seed": 3,
	})
	if code != http.StatusOK || !again.Cached || again.Key != res.Key {
		t.Errorf("canonical serving request missed the cache (cached %v, key match %v)",
			again.Cached, again.Key == res.Key)
	}
	for i, v := range again.Serving {
		if v != res.Serving[i] {
			t.Errorf("cached serving point %d differs: %+v vs %+v", i, v, res.Serving[i])
		}
	}

	// A different seed is a different arrival process — different slot.
	code, other, _ := simulate(t, c, ts.URL, map[string]any{
		"kernel": "attn:1x32x1x2048x128:fp16", "scenario": "serving",
		"batches": "1,4,8", "requests": 2000, "seed": 4,
	})
	if code != http.StatusOK || other.Key == res.Key {
		t.Error("serving cache key ignores the arrival seed")
	}
}

func TestSimulateServingClientErrors(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()
	cases := []struct {
		name string
		req  map[string]any
		want string
	}{
		{"suite kernel", map[string]any{"kernel": "CoMD", "scenario": "serving"}, "needs a DL kernel spec"},
		{"unknown scenario", map[string]any{"kernel": "gemm:64x64x64:fp16", "scenario": "batch"}, "unknown scenario"},
		{"bad batches", map[string]any{"kernel": "gemm:64x64x64:fp16", "scenario": "serving", "batches": "1,x"}, "bad entry"},
		{"huge batch", map[string]any{"kernel": "gemm:64x64x64:fp16", "scenario": "serving", "batches": "512"}, "too large"},
		{"negative qps", map[string]any{"kernel": "gemm:64x64x64:fp16", "scenario": "serving", "qps": -1}, "must be non-negative"},
		{"huge requests", map[string]any{"kernel": "gemm:64x64x64:fp16", "scenario": "serving", "requests": 1 << 21}, "out of"},
		{"orphan knob", map[string]any{"kernel": "gemm:64x64x64:fp16", "qps": 100}, "need scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, b := simulate(t, c, ts.URL, tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", code, b)
			}
			if !strings.Contains(string(b), tc.want) {
				t.Errorf("error %q does not mention %q", b, tc.want)
			}
		})
	}
}
