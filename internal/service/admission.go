package service

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"ena/internal/obs"
)

// Admission control sits in front of the breaker/scheduler stack: each
// governed route has a concurrency budget (slots) and a bounded wait queue.
// A request that finds all slots busy waits in the queue; one that finds the
// queue past its high-water mark is shed immediately with 503 + Retry-After.
// Shedding at the door keeps latency bounded under overload — the server
// degrades to a flat ceiling of in-flight work instead of collapsing under
// an unbounded backlog (the saturation curves cmd/enaload records).
//
// Simulate requests whose canonical key is already resident or in flight
// bypass admission entirely and coalesce onto the cache/singleflight — a
// popular key costs one slot no matter how many clients ask for it.

// admission is one route's concurrency budget and wait queue. A nil
// *admission admits everything (the route is ungoverned).
type admission struct {
	route string
	slots chan struct{}
	queue chan struct{}

	// ewmaNs tracks the route's smoothed service time (α = 0.2), feeding the
	// adaptive Retry-After hint on shed responses.
	ewmaNs atomic.Int64

	admitted *obs.Counter
	queued   *obs.Counter
	rejected *obs.Counter
	depth    *obs.Gauge
}

// newAdmission builds a route governor with the given concurrency budget and
// wait-queue bound. slots <= 0 disables governance (returns nil).
func newAdmission(route string, slots, queueCap int, reg *obs.Registry) *admission {
	if slots <= 0 {
		return nil
	}
	if queueCap <= 0 {
		queueCap = 4 * slots
	}
	return &admission{
		route:    route,
		slots:    make(chan struct{}, slots),
		queue:    make(chan struct{}, queueCap),
		admitted: reg.Counter("service.admit." + route + ".admitted"),
		queued:   reg.Counter("service.admit." + route + ".queued"),
		rejected: reg.Counter("service.admit." + route + ".rejected"),
		depth:    reg.Gauge("service.admit." + route + ".queue_depth"),
	}
}

// acquire obtains an execution slot, waiting in the bounded queue when the
// budget is exhausted. It returns a release func the caller must invoke when
// the request finishes, or an error when the queue is full (shed the load)
// or ctx ends first.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	if a == nil {
		return func() {}, nil
	}
	select {
	case a.slots <- struct{}{}:
		a.admitted.Inc()
		return a.release, nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.rejected.Inc()
		return nil, fmt.Errorf("service: %s admission queue full", a.route)
	}
	a.queued.Inc()
	a.depth.Set(float64(len(a.queue)))
	defer func() {
		<-a.queue
		a.depth.Set(float64(len(a.queue)))
	}()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Inc()
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// observe folds one completed request's service time into the route's EWMA.
func (a *admission) observe(d time.Duration) {
	if a == nil {
		return
	}
	foldEwma(&a.ewmaNs, d)
}

// foldEwma folds a duration into an atomic EWMA accumulator (α = 0.2; the
// first observation seeds it).
func foldEwma(acc *atomic.Int64, d time.Duration) {
	if d <= 0 {
		return
	}
	const alpha = 0.2
	for {
		old := acc.Load()
		next := int64(d)
		if old > 0 {
			next = int64(alpha*float64(d) + (1-alpha)*float64(old))
		}
		if acc.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter is the adaptive Retry-After hint for a shed response on this
// route: how long until the current backlog drains at the observed service
// rate. A nil (ungoverned) admission hints the 1-second floor.
func (a *admission) retryAfter() int {
	if a == nil {
		return 1
	}
	return retryAfterHint(len(a.queue), cap(a.slots), a.ewmaNs.Load())
}

// retryAfterHint estimates seconds until a shed client should retry: the
// queued requests ahead of it, plus its own, served slots-at-a-time at the
// EWMA service time — ceil((depth+1) × ewma / slots) — clamped to [1, 30].
// With no observation yet (ewma 0) the floor applies: better to invite an
// early retry than to park clients on a guess.
func retryAfterHint(depth, slots int, ewmaNs int64) int {
	if slots < 1 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	if ewmaNs <= 0 {
		return 1
	}
	waitNs := float64(depth+1) * float64(ewmaNs) / float64(slots)
	secs := int((waitNs + float64(time.Second) - 1) / float64(time.Second))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// defaultAdmit resolves an admission budget config value: 0 means the
// default, negative disables.
func defaultAdmit(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// defaultSimulateSlots is the default simulate concurrency budget: the
// analytic model is CPU-bound, so past the core count extra concurrency only
// buys queueing inside the runtime.
func defaultSimulateSlots() int { return 2 * runtime.GOMAXPROCS(0) }

// defaultSweepSlots is the default budget for the sweep-shaped routes
// (explore/scale submissions and synchronous experiment runs).
func defaultSweepSlots() int { return runtime.GOMAXPROCS(0) }
