// Package service is the simulation service layer: a long-running server
// that accepts simulation and design-space-exploration jobs over an
// HTTP/JSON API, executes them on a bounded worker pool with per-job
// cancellation and deadlines, and deduplicates work through a
// content-addressed result cache (canonical-JSON hash of config + workload,
// with singleflight so concurrent identical requests share one execution).
//
// The paper's evaluation workflow — thousands of Simulate calls swept by the
// DSE engine — is exactly the shape of a request-serving workload, and this
// package turns the analytic model into one:
//
//	POST /v1/simulate            one (config, kernel) node simulation, cached
//	POST /v1/explore             async DSE sweep job (202 + job id)
//	GET  /v1/jobs/{id}           job status/result polling
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET  /v1/experiments         list paper artifacts
//	GET  /v1/experiments/{id}    run one table/figure harness, cached
//	GET  /v1/kernels             the Table I workload suite
//	GET  /metrics                obs registry snapshot (JSON)
//	GET  /healthz                liveness
//
// cmd/enaserve wires this into a binary with graceful SIGTERM drain.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/exp"
	"ena/internal/obs"
	"ena/internal/workload"
)

// Config tunes a Server. The zero value gives sane defaults: GOMAXPROCS job
// workers, a 64-deep job queue, a 4096-entry result cache, and a fresh
// metrics registry.
type Config struct {
	// Workers is the job worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueCap bounds pending jobs; submissions beyond it are rejected
	// with 429 (default 64).
	QueueCap int
	// CacheSize bounds the content-addressed result cache (default 4096).
	CacheSize int
	// JobRetain bounds how many jobs stay queryable (default 256).
	JobRetain int
	// JobTimeout is the default per-job deadline when a request does not
	// set one (0 = no deadline).
	JobTimeout time.Duration
	// Reg receives service and simulator metrics (default: new registry).
	Reg *obs.Registry
	// Tracer, when set, receives per-design-point sweep spans.
	Tracer *obs.Tracer
}

// Server executes simulation traffic. Create with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	tracer *obs.Tracer
	cache  *Cache
	sched  *Scheduler
	mux    *http.ServeMux
	start  time.Time

	// simExecs counts actual model executions (not cache/singleflight
	// serves) — the counter tests assert dedup against.
	simExecs *obs.Counter
	reqCtr   *obs.Counter
	errCtr   *obs.Counter
	inflight *obs.Gauge
	latHist  *obs.Histogram
}

// New builds a Server. ctx is the base context of all job execution:
// cancelling it aborts every running job (the server's drain path).
func New(ctx context.Context, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		tracer:   cfg.Tracer,
		cache:    NewCache(cfg.CacheSize, reg),
		sched:    NewScheduler(ctx, cfg.Workers, cfg.QueueCap, cfg.JobRetain, reg),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		simExecs: reg.Counter("service.sim.executions"),
		reqCtr:   reg.Counter("service.http.requests"),
		errCtr:   reg.Counter("service.http.errors"),
		inflight: reg.Gauge("service.http.inflight"),
		latHist:  reg.Histogram("service.http.latency_ns", durationBounds),
	}
	s.routes()
	return s
}

// Registry exposes the server's metrics registry (for reports and tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the instrumented HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting jobs and waits for in-flight work as Scheduler.Drain
// does. The HTTP listener itself is the caller's to close (http.Server
// Shutdown), so the order in cmd/enaserve is: stop the listener, then drain
// the job pool.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/explore", s.instrument("explore", s.handleExplore))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs.get", s.handleJobGet))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("jobs.cancel", s.handleJobCancel))
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.instrument("jobs.cancel", s.handleJobCancel))
	s.mux.HandleFunc("GET /v1/experiments", s.instrument("experiments.list", s.handleExperimentList))
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.instrument("experiments.run", s.handleExperimentRun))
	s.mux.HandleFunc("GET /v1/kernels", s.instrument("kernels", s.handleKernels))
}

// statusWriter captures the response code for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route and aggregate metrics.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	routeCtr := s.reg.Counter("service.http." + route + ".requests")
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.inflight.Set(s.inflight.Value() + 1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.inflight.Set(s.inflight.Value() - 1)
		s.reqCtr.Inc()
		routeCtr.Inc()
		if sw.status >= 400 {
			s.errCtr.Inc()
		}
		s.latHist.Observe(float64(time.Since(t0)))
	}
}

// maxBodyBytes bounds request bodies; simulation requests are tiny.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	// A second document in the body is a malformed request, not trailing
	// whitespace.
	if dec.More() {
		return errors.New("invalid request body: multiple JSON documents")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.Snapshot().WriteJSON(w); err != nil {
		// Headers are gone; nothing useful to send.
		return
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, err := req.resolve()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	val, shared, err := s.cache.Do(ctx, job.key, func() (any, error) {
		s.simExecs.Inc()
		res, err := core.SimulateContext(ctx, job.cfg, job.kernel, job.opt)
		if err != nil {
			return nil, err
		}
		return SimulateResponse{
			Key:      job.key,
			Config:   job.view,
			Kernel:   job.kernel.Name,
			TFLOPs:   res.Perf.TFLOPs,
			Bound:    res.Perf.Bound.String(),
			MissFrac: res.MissFrac,
			NodeW:    res.NodeW,
			PackageW: res.Power.PackageW(),
			GFperW:   res.GFperW,
		}, nil
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeErr(w, http.StatusServiceUnavailable, err)
		} else {
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	resp := val.(SimulateResponse)
	resp.Cached = shared
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ej, err := req.resolve()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	timeout := ej.timeout
	if timeout == 0 {
		timeout = s.cfg.JobTimeout
	}
	view, err := s.sched.Submit("explore", timeout, func(ctx context.Context) (any, error) {
		val, _, err := s.cache.Do(ctx, ej.key, func() (any, error) {
			out, err := s.explore(ctx, ej)
			if err != nil {
				return nil, err
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		return val, nil
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": view})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.sched.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": view})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.sched.Cancel(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": view})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	type expView struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []expView
	for _, e := range exp.Experiments() {
		out = append(out, expView{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// ExperimentResponse is the body of GET /v1/experiments/{id}: the rendered
// paper-style text of one table/figure harness.
type ExperimentResponse struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Cached bool   `json:"cached"`
	Output string `json:"output"`
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := exp.ByID(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// Experiments are deterministic, so their rendered text is content-
	// addressed by ID alone; the heavy ones (full DSE sweeps, thermal
	// solves) run once and every later scrape is a cache hit.
	val, shared, err := s.cache.Do(r.Context(), "exp:v1:"+id, func() (any, error) {
		return e.Run().Render(), nil
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, ExperimentResponse{
		ID:     id,
		Title:  e.Title,
		Cached: shared,
		Output: val.(string),
	})
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	type kernelView struct {
		Name        string `json:"name"`
		Category    string `json:"category"`
		Description string `json:"description"`
	}
	var out []kernelView
	for _, k := range workload.Suite() {
		out = append(out, kernelView{Name: k.Name, Category: k.Category.String(), Description: k.Description})
	}
	writeJSON(w, http.StatusOK, map[string]any{"kernels": out})
}

// explore runs one cancellable sweep with the server's observability sinks.
func (s *Server) explore(ctx context.Context, ej exploreJob) (ExploreResult, error) {
	out, err := dse.ExploreContext(ctx, ej.space, ej.kernels, ej.budgetW, ej.tech,
		dse.Instr{Reg: s.reg, Tracer: s.tracer})
	if err != nil {
		return ExploreResult{}, err
	}
	return ej.summarize(out), nil
}
