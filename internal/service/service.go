// Package service is the simulation service layer: a long-running server
// that accepts simulation and design-space-exploration jobs over an
// HTTP/JSON API, executes them on a bounded worker pool with per-job
// cancellation and deadlines, and deduplicates work through a
// content-addressed result cache (canonical-JSON hash of config + workload,
// with singleflight so concurrent identical requests share one execution).
//
// The paper's evaluation workflow — thousands of Simulate calls swept by the
// DSE engine — is exactly the shape of a request-serving workload, and this
// package turns the analytic model into one:
//
//	POST /v1/simulate            one (config, kernel) node simulation, cached
//	POST /v1/explore             async DSE sweep job (202 + job id)
//	POST /v1/scale               async machine-scale fabric projection (202 + job id)
//	GET  /v1/jobs/{id}           job status/result polling
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET  /v1/experiments         list paper artifacts
//	GET  /v1/experiments/{id}    run one table/figure harness, cached
//	GET  /v1/kernels             the Table I workload suite
//	GET  /metrics                obs registry snapshot (JSON)
//	GET  /healthz                liveness
//
// cmd/enaserve wires this into a binary with graceful SIGTERM drain.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ena/internal/cluster"
	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/exp"
	"ena/internal/faults"
	"ena/internal/noc"
	"ena/internal/obs"
	"ena/internal/perf"
	"ena/internal/store"
	"ena/internal/surrogate"
	"ena/internal/workload"
)

// Config tunes a Server. The zero value gives sane defaults: GOMAXPROCS job
// workers, a 64-deep job queue, a 4096-entry result cache, and a fresh
// metrics registry.
type Config struct {
	// Workers is the job worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueCap bounds pending jobs; submissions beyond it are rejected
	// with 503 + Retry-After (default 64).
	QueueCap int
	// CacheSize bounds the content-addressed result cache (default 4096).
	CacheSize int
	// JobRetain bounds how many jobs stay queryable (default 256).
	JobRetain int
	// JobTimeout is the default per-job deadline when a request does not
	// set one (0 = no deadline).
	JobTimeout time.Duration
	// Reg receives service and simulator metrics (default: new registry).
	Reg *obs.Registry
	// Tracer, when set, receives per-design-point sweep spans.
	Tracer *obs.Tracer

	// Chaos, when set, injects runtime faults across the stack: worker
	// panics and transient failures in the scheduler, artificial latency
	// in request handling, context stalls before job execution, and cache
	// corruption (read-repaired). Nil disables every site.
	Chaos *faults.Chaos
	// RetryMax bounds transient-failure retries per job (default 2;
	// negative disables retries entirely).
	RetryMax int
	// RetryBase is the first retry's backoff; later attempts double it,
	// plus up to 50% jitter (default 10ms).
	RetryBase time.Duration
	// BreakerThreshold trips a route's circuit breaker after that many
	// consecutive handler-originated 5xx responses (default 5); while
	// open, the route answers 503 + Retry-After without running the
	// handler. healthz and metrics are exempt.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// half-open probe (default 10s).
	BreakerCooldown time.Duration
	// DetailedBudget bounds the event-driven NoC phase of a detailed
	// simulate request (default 2s); past it the response falls back to
	// the analytic result, flagged degraded.
	DetailedBudget time.Duration
	// DetailedRequests bounds the event-driven simulation's request count
	// (0 = the NoC simulator's default).
	DetailedRequests int

	// Store, when set, layers a persistent result store under the memory
	// cache: simulate/explore/scale/experiment results survive restarts and
	// are shared across replicas pointed at the same directory. The caller
	// owns opening it (store.Open) so configuration errors surface at
	// startup, not on first request. It also backs sweep checkpoints: with a
	// store, explore/scale shards are persisted as they complete, so a
	// restarted or adopting replica resumes instead of recomputing.
	Store *store.Store
	// Journal, when set, makes async jobs durable: submissions and every
	// state transition are journalled write-ahead (store.OpenJournal on the
	// same directory as Store), restarted replicas recover journalled jobs,
	// and replicas sharing the directory adopt jobs whose lease expired.
	// Requires Store for result recovery; ignored in WorkerOnly mode.
	Journal *store.Journal
	// OwnerID identifies this replica in job leases (default: a random id).
	OwnerID string
	// LeaseTTL is how long a job lease lives between heartbeats (default
	// 10s): a replica dead for one TTL loses its jobs to adoption.
	LeaseTTL time.Duration
	// AdoptEvery is the journal scan interval for adoptable jobs (default:
	// LeaseTTL).
	AdoptEvery time.Duration
	// CheckpointItems is the checkpointed sweep shard size (default
	// cluster.DefaultCheckpointItems); only meaningful with Store set.
	CheckpointItems int
	// ProbeInterval is the peer health-probe cadence (default 2s).
	ProbeInterval time.Duration
	// EvalDelay is a chaos knob: every sweep item evaluated by this process
	// (coordinator-local or worker shard) sleeps this long first, stretching
	// sweeps so crash/kill tests have a window to hit. Zero in production.
	EvalDelay time.Duration
	// Peers lists worker base URLs ("http://host:port"). When non-empty,
	// explore and scale sweeps are sharded across them (with per-shard
	// failover, health-aware peer selection, and local fallback) instead of
	// evaluated in-process.
	Peers []string
	// WorkerOnly restricts the route table to the internal shard-evaluation
	// routes plus health and metrics — the enaserve -worker mode. The
	// public API, scheduler-backed jobs included, is not mounted.
	WorkerOnly bool

	// AdmitSimulate is the simulate route's concurrency budget (default
	// 2*GOMAXPROCS; negative disables admission control on the route).
	// Requests whose key is already cached or in flight bypass admission.
	AdmitSimulate int
	// AdmitSweep is the shared budget default for the sweep-shaped routes —
	// explore and scale submissions, synchronous experiment runs (default
	// GOMAXPROCS; negative disables).
	AdmitSweep int
	// AdmitQueue bounds how many requests may wait per governed route for
	// an admission slot before load is shed with 503 + Retry-After
	// (default 4x the route's budget).
	AdmitQueue int
}

// Server executes simulation traffic. Create with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	tracer   *obs.Tracer
	cache    *Cache
	sched    *Scheduler
	mux      *http.ServeMux
	start    time.Time
	chaos    *faults.Chaos
	breakers map[string]*Breaker // route -> breaker (fixed at route setup)
	coord    *cluster.Coordinator
	prober   *cluster.Prober
	durable  *durableManager
	draining atomic.Bool

	// admissions holds the per-route concurrency governors consulted by
	// instrument; admitSim is the simulate route's, consulted in-handler so
	// cached keys can bypass the queue (see handleSimulate).
	admissions map[string]*admission
	admitSim   *admission
	admitSkips *obs.Counter

	// perfCache memoizes the optimization-independent perf phase across
	// explore jobs: sweeps over the same (space, kernels) under different
	// budgets or optimization settings — distinct result-cache keys —
	// recompute only the power phase.
	perfCache *dse.PerfCache

	// simExecs counts actual model executions (not cache/singleflight
	// serves) — the counter tests assert dedup against.
	simExecs  *obs.Counter
	fallbacks *obs.Counter
	reqCtr    *obs.Counter
	errCtr    *obs.Counter
	inflight  *obs.Gauge
	latHist   *obs.Histogram
}

// New builds a Server. ctx is the base context of all job execution:
// cancelling it aborts every running job (the server's drain path).
func New(ctx context.Context, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	switch {
	case cfg.RetryMax == 0:
		cfg.RetryMax = 2
	case cfg.RetryMax < 0:
		cfg.RetryMax = 0
	}
	if cfg.DetailedBudget <= 0 {
		cfg.DetailedBudget = 2 * time.Second
	}
	var durable *durableManager
	schedOpts := []SchedOption{WithChaos(cfg.Chaos), WithRetry(cfg.RetryMax, cfg.RetryBase)}
	if cfg.Journal != nil && !cfg.WorkerOnly {
		if cfg.OwnerID == "" {
			cfg.OwnerID = "replica-" + newJobID()
		}
		durable = newDurable(cfg.Journal, cfg.OwnerID, cfg.LeaseTTL, reg)
		schedOpts = append(schedOpts, WithRecorder(durable))
	}
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		tracer:     cfg.Tracer,
		cache:      NewCache(cfg.CacheSize, reg),
		sched:      NewScheduler(ctx, cfg.Workers, cfg.QueueCap, cfg.JobRetain, reg, schedOpts...),
		durable:    durable,
		mux:        http.NewServeMux(),
		start:      time.Now(),
		chaos:      cfg.Chaos,
		breakers:   make(map[string]*Breaker),
		simExecs:   reg.Counter("service.sim.executions"),
		fallbacks:  reg.Counter("service.sim.fallbacks"),
		reqCtr:     reg.Counter("service.http.requests"),
		errCtr:     reg.Counter("service.http.errors"),
		inflight:   reg.Gauge("service.http.inflight"),
		latHist:    reg.Histogram("service.http.latency_ns", durationBounds),
		perfCache:  dse.NewPerfCache(),
		admissions: make(map[string]*admission),
		admitSkips: reg.Counter("service.admit.simulate.bypassed"),
	}
	s.cache.chaos = cfg.Chaos
	s.cache.SetStore(cfg.Store)
	if len(cfg.Peers) > 0 || (cfg.Store != nil && !cfg.WorkerOnly) {
		s.coord = cluster.NewCoordinator(cfg.Peers, reg)
		if cfg.Store != nil {
			s.coord.EnableCheckpoints(cfg.Store, cfg.CheckpointItems)
		}
		s.coord.SetEvalDelay(cfg.EvalDelay)
		if len(cfg.Peers) > 0 {
			s.prober = cluster.NewProber(cfg.Peers, cfg.ProbeInterval, reg)
			s.coord.SetProber(s.prober)
			go s.prober.Run(ctx)
		}
	}
	s.admitSim = newAdmission("simulate",
		defaultAdmit(cfg.AdmitSimulate, defaultSimulateSlots()), cfg.AdmitQueue, reg)
	for _, route := range []string{"explore", "scale", "experiments.run"} {
		if a := newAdmission(route, defaultAdmit(cfg.AdmitSweep, defaultSweepSlots()), cfg.AdmitQueue, reg); a != nil {
			s.admissions[route] = a
		}
	}
	s.routes()
	if s.durable != nil {
		s.durable.srv = s
		// Recovery runs before the server takes traffic: journalled terminal
		// jobs become queryable again (results straight from the store),
		// recoverable ones re-enqueue under their original ids.
		s.durable.recover(time.Now())
		go s.durable.heartbeatLoop(ctx)
		go s.durable.adoptLoop(ctx, cfg.AdoptEvery)
	}
	return s
}

// Registry exposes the server's metrics registry (for reports and tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the instrumented HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting jobs and waits for in-flight work as Scheduler.Drain
// does. It first marks the server draining, so /v1/healthz flips to 503 and
// load balancers stop routing here while in-flight jobs finish. The HTTP
// listener itself is the caller's to close (http.Server Shutdown), so the
// order in cmd/enaserve is: stop the listener, then drain the job pool.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.sched.Drain(ctx)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats is the point-in-time service summary logged on drain: how well the
// result tiers worked over the process's lifetime.
type Stats struct {
	CacheEntries   int          `json:"cache_entries"`
	CacheHits      int64        `json:"cache_hits"`
	CacheMisses    int64        `json:"cache_misses"`
	CacheHitRatio  float64      `json:"cache_hit_ratio"`
	CacheCoalesced int64        `json:"cache_coalesced"`
	Store          *store.Stats `json:"store,omitempty"`
}

// Stats summarizes the cache and store tiers (store nil when not configured).
func (s *Server) Stats() Stats {
	st := Stats{
		CacheEntries:   s.cache.Len(),
		CacheHits:      s.reg.Counter("service.cache.hits").Value(),
		CacheMisses:    s.reg.Counter("service.cache.misses").Value(),
		CacheHitRatio:  s.cache.HitRatio(),
		CacheCoalesced: s.reg.Counter("service.cache.coalesced").Value(),
	}
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		st.Store = &ss
	}
	return st
}

func (s *Server) routes() {
	// Health and metrics are always mounted — operators need them in every
	// mode — as are the internal shard routes: every replica can evaluate
	// shards for a coordinating peer, worker-only or not.
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.handleMetricsText))
	s.mux.Handle("/v1/internal/", cluster.WorkerHandlerDelay(s.reg, s.cfg.EvalDelay))
	// The jobs summary is more specific than the shard subtree, so it wins
	// the mux match; every replica answers it (empty without a journal), so
	// peers can poll any member of a mixed fleet.
	s.mux.HandleFunc("GET /v1/internal/jobs", s.instrument("jobs.internal", s.handleInternalJobs))
	if s.cfg.WorkerOnly {
		return
	}
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/explore", s.instrument("explore", s.handleExplore))
	s.mux.HandleFunc("POST /v1/scale", s.instrument("scale", s.handleScale))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs.get", s.handleJobGet))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("jobs.cancel", s.handleJobCancel))
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.instrument("jobs.cancel", s.handleJobCancel))
	s.mux.HandleFunc("GET /v1/experiments", s.instrument("experiments.list", s.handleExperimentList))
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.instrument("experiments.run", s.handleExperimentRun))
	s.mux.HandleFunc("GET /v1/kernels", s.instrument("kernels", s.handleKernels))
}

// statusWriter captures the response code for error accounting.
// backpressure marks deliberate load-shedding responses (queue saturation,
// open breakers): they are 5xx on the wire but must not count as handler
// failures, or shedding load would itself trip the breaker.
type statusWriter struct {
	http.ResponseWriter
	status       int
	backpressure bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// breakerExempt routes stay reachable while everything else sheds load:
// operators need liveness and metrics most during an incident.
var breakerExempt = map[string]bool{"healthz": true, "metrics": true}

// instrument wraps a handler with per-route and aggregate metrics, the
// chaos latency site, the route's admission governor, and its circuit
// breaker. Order on the way in: breaker (cheapest rejection) -> admission
// (bounded queueing) -> handler.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	routeCtr := s.reg.Counter("service.http." + route + ".requests")
	var br *Breaker
	if !breakerExempt[route] {
		br = s.breakers[route]
		if br == nil {
			br = NewBreaker(route, s.cfg.BreakerThreshold, s.cfg.BreakerCooldown, s.reg)
			s.breakers[route] = br
		}
	}
	adm := s.admissions[route]
	admitted := func(sw *statusWriter, r *http.Request) {
		release, err := adm.acquire(r.Context())
		if err != nil {
			// Adaptive Retry-After: backlog ahead of this client × the
			// route's EWMA service time, not a fixed guess.
			writeBackpressure(sw, adm.retryAfter(), err)
			return
		}
		defer release()
		t0 := time.Now()
		h(sw, r)
		adm.observe(time.Since(t0))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.inflight.Set(s.inflight.Value() + 1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if d := s.chaos.Latency(); d > 0 {
			time.Sleep(d)
		}
		if br != nil {
			if ok, retryAfter := br.Allow(); !ok {
				writeBackpressure(sw, retryAfter,
					fmt.Errorf("service: %s circuit breaker open", route))
			} else {
				admitted(sw, r)
				br.Report(sw.status >= 500 && !sw.backpressure)
			}
		} else {
			admitted(sw, r)
		}
		s.inflight.Set(s.inflight.Value() - 1)
		s.reqCtr.Inc()
		routeCtr.Inc()
		if sw.status >= 400 {
			s.errCtr.Inc()
		}
		s.latHist.Observe(float64(time.Since(t0)))
	}
}

// maxBodyBytes bounds request bodies; simulation requests are tiny.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeBackpressure sheds load: 503 with a Retry-After hint, marked so the
// circuit breaker does not count it as a handler failure.
func writeBackpressure(w http.ResponseWriter, retryAfterSecs int, err error) {
	if retryAfterSecs < 1 {
		retryAfterSecs = 1
	}
	if sw, ok := w.(*statusWriter); ok {
		sw.backpressure = true
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":       err.Error(),
		"retry_after": retryAfterSecs,
	})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	// A second document in the body is a malformed request, not trailing
	// whitespace.
	if dec.More() {
		return errors.New("invalid request body: multiple JSON documents")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is GET /v1/healthz: readiness, not liveness. A draining
// replica answers 503 so load balancers route around it while /healthz stays
// 200 (the process is alive and finishing its jobs).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"draining":       s.draining.Load(),
		"worker_only":    s.cfg.WorkerOnly,
		"peers":          len(s.cfg.Peers),
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if s.draining.Load() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// refreshGauges recomputes the scrape-time derived gauges (the event-driven
// ones only move on their own traffic).
func (s *Server) refreshGauges() {
	s.reg.Gauge("service.jobs.queue_depth").Set(float64(s.sched.QueueDepth()))
	s.reg.Gauge("service.jobs.queue_cap").Set(float64(s.sched.QueueCap()))
	s.reg.Gauge("service.cache.hit_ratio").Set(s.cache.HitRatio())
	s.reg.Gauge("dse.perf_cache_entries").Set(float64(s.perfCache.Len()))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.Snapshot().WriteJSON(w); err != nil {
		// Headers are gone; nothing useful to send.
		return
	}
}

// handleMetricsText is GET /v1/metrics: the same registry as plaintext, one
// metric per line — greppable from curl during an incident, no jq needed.
func (s *Server) handleMetricsText(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.reg.Snapshot().WriteText(w)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, err := req.resolve()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	// Admission: a key already resident or in flight coalesces onto the
	// cache/singleflight without occupying a slot — N clients asking for
	// the same popular result cost one execution and zero queueing.
	if s.cache.Contains(job.key) {
		s.admitSkips.Inc()
	} else {
		release, err := s.admitSim.acquire(ctx)
		if err != nil {
			writeBackpressure(w, 1, err)
			return
		}
		defer release()
	}
	val, shared, err := s.cache.DoPersist(ctx, job.key, decodeAs[SimulateResponse], func() (any, error) {
		s.simExecs.Inc()
		res, err := core.SimulateContext(ctx, job.cfg, job.kernel, job.opt)
		if err != nil {
			return nil, err
		}
		resp := SimulateResponse{
			Key:      job.key,
			Config:   job.view,
			Kernel:   job.kernel.Name,
			TFLOPs:   res.Perf.TFLOPs,
			Bound:    res.Perf.Bound.String(),
			MissFrac: res.MissFrac,
			NodeW:    res.NodeW,
			PackageW: res.Power.PackageW(),
			GFperW:   res.GFperW,
		}
		if job.inj != nil {
			resp.FaultMask = job.inj.Resolved.String()
			resp.Disabled = job.inj.Disabled
		}
		if job.serving {
			views, err := runServing(ctx, job)
			if err != nil {
				return nil, err
			}
			resp.Serving = views
		}
		return resp, nil
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeErr(w, http.StatusServiceUnavailable, err)
		} else {
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	resp := val.(SimulateResponse)
	resp.Cached = shared
	if job.detailed {
		s.runDetailed(ctx, &resp, job)
	}
	writeJSON(w, http.StatusOK, resp)
}

// detailedResult is the cached payload of a detailed-NoC simulate phase.
type detailedResult struct {
	Partitioned   bool
	MeanLatencyNs float64
	SustainedGBps float64
	TFLOPs        float64
}

// runDetailed runs the event-driven NoC phase of a detailed simulate request
// and merges the measurements into resp. The phase is deadline-aware: it gets
// at most DetailedBudget (less if the request deadline is closer), and on
// running out, the response keeps the already-computed analytic numbers and
// is flagged degraded instead of failing — the fallback the exascale service
// contract prefers over a late answer.
func (s *Server) runDetailed(ctx context.Context, resp *SimulateResponse, job simJob) {
	budget := s.cfg.DetailedBudget
	if dl, ok := ctx.Deadline(); ok {
		if left := time.Until(dl) - 50*time.Millisecond; left < budget {
			budget = left
		}
	}
	if budget <= 0 {
		s.fallbacks.Inc()
		resp.Degraded = true
		resp.DegradedReason = "request deadline too tight for the detailed simulation; analytic fallback"
		return
	}
	dctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	val, _, err := s.cache.DoPersist(dctx, job.detailedKey, decodeAs[detailedResult], func() (any, error) {
		var down []noc.LinkFault
		if job.inj != nil {
			down = job.inj.DownLinks
		}
		nr, err := noc.SimulateContext(dctx, job.cfg, job.kernel, noc.Options{
			Seed:      job.seed,
			Requests:  s.cfg.DetailedRequests,
			DownLinks: down,
		})
		if errors.Is(err, noc.ErrPartitioned) {
			return detailedResult{Partitioned: true}, nil
		}
		if err != nil {
			return nil, err
		}
		// Refine throughput with the measured memory environment (the
		// coupling noc.Compare uses): bandwidth capped by what the —
		// possibly degraded — network sustained, latency as loaded.
		bw := job.cfg.InPackageBWTBps()
		if sus := nr.SustainedGBps / 1000; sus > 0 && sus < bw {
			bw = sus
		}
		eff := 0.0
		if bw > 0 {
			eff = float64(job.cfg.TotalCUs()) * job.cfg.GPUFreqMHz() * 1e6 / (bw * 1e12)
		}
		pr := perf.Estimate(job.cfg, job.kernel, perf.MemEnv{
			BWTBps: bw, LatencyNs: nr.MeanLatencyNs, EffOpsPerByte: eff,
		})
		return detailedResult{
			MeanLatencyNs: nr.MeanLatencyNs,
			SustainedGBps: nr.SustainedGBps,
			TFLOPs:        pr.TFLOPs,
		}, nil
	})
	if err != nil {
		// The detailed phase did not make it; the analytic answer stands.
		// Errors are never cached, so a later retry gets a fresh budget.
		s.fallbacks.Inc()
		resp.Degraded = true
		resp.DegradedReason = "detailed simulation exceeded its budget; analytic fallback: " + err.Error()
		return
	}
	d := val.(detailedResult)
	resp.Detailed = true
	if d.Partitioned {
		resp.Partitioned = true
		resp.Degraded = true
		resp.DegradedReason = "link faults partition the interposer network"
		resp.TFLOPs = 0
		resp.GFperW = 0
		return
	}
	resp.MeanLatencyNs = d.MeanLatencyNs
	resp.SustainedGBps = d.SustainedGBps
	resp.TFLOPs = d.TFLOPs
	if resp.NodeW > 0 {
		resp.GFperW = d.TFLOPs * 1000 / resp.NodeW
	}
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ej, err := req.resolve()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.submitJob("explore", ej.key, req, s.jobTimeout(ej.timeout), s.exploreRunner(ej))
	switch {
	case errors.Is(err, ErrQueueFull):
		// Saturation is load-shedding, not failure: tell the client when
		// to come back rather than making it guess.
		writeBackpressure(w, s.sched.RetryAfterSecs(), err)
		return
	case errors.Is(err, ErrDraining):
		writeBackpressure(w, 1, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": view})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.sched.Get(id)
	if ok {
		if s.durable != nil && !view.State.Terminal() {
			view.Owner = s.durable.owner
		}
		writeJSON(w, http.StatusOK, map[string]any{"job": view})
		return
	}
	// Not in the local table: the job may live in the shared journal — a
	// peer's submission, or one pruned here — so any replica can answer for
	// any job in the fleet.
	if s.durable != nil {
		if view, ok := s.durable.view(id); ok {
			writeJSON(w, http.StatusOK, map[string]any{"job": view})
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.sched.Cancel(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": view})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	type expView struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []expView
	for _, e := range exp.Experiments() {
		out = append(out, expView{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// ExperimentResponse is the body of GET /v1/experiments/{id}: the rendered
// paper-style text of one table/figure harness.
type ExperimentResponse struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Cached bool   `json:"cached"`
	Output string `json:"output"`
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := exp.ByID(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// Experiments are deterministic, so their rendered text is content-
	// addressed by ID alone; the heavy ones (full DSE sweeps, thermal
	// solves) run once and every later scrape is a cache hit.
	val, shared, err := s.cache.DoPersist(r.Context(), "exp:v1:"+id, decodeAs[string], func() (any, error) {
		return e.Run().Render(), nil
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, ExperimentResponse{
		ID:     id,
		Title:  e.Title,
		Cached: shared,
		Output: val.(string),
	})
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	type kernelView struct {
		Name        string `json:"name"`
		Category    string `json:"category"`
		Description string `json:"description"`
	}
	var out []kernelView
	for _, k := range workload.Suite() {
		out = append(out, kernelView{Name: k.Name, Category: k.Category.String(), Description: k.Description})
	}
	writeJSON(w, http.StatusOK, map[string]any{"kernels": out})
}

// exploreRunner is the execution closure of one explore job — what the
// scheduler runs now, and what a recovering or adopting replica rebuilds
// from the journalled request spec.
func (s *Server) exploreRunner(ej exploreJob) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		val, _, err := s.cache.DoPersist(ctx, ej.key, decodeAs[ExploreResult], func() (any, error) {
			out, err := s.explore(ctx, ej)
			if err != nil {
				return nil, err
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		return val, nil
	}
}

// explore runs one cancellable sweep with the server's observability sinks.
// With worker peers or a checkpoint store configured, the design space is
// sharded through the coordinator (which merges to the bit-identical
// single-process Outcome, with per-shard failover, checkpointed resume, and
// local fallback); otherwise the sweep runs in process through the
// perf-phase memo. The surrogate explorer uses the same two paths for its
// acquisition batches — coordinator point-list shards or the local
// perf-cached evaluator — and either way its result is a pure function of
// (space, kernels, budget, optimizations, eval budget, seed).
func (s *Server) explore(ctx context.Context, ej exploreJob) (ExploreResult, error) {
	if ej.explorer == "surrogate" {
		var ev surrogate.Evaluator
		if s.coord.Active() {
			ev = func(ctx context.Context, pts []dse.Point) ([]dse.Eval, error) {
				return s.coord.EvaluatePoints(ctx, pts, ej.kernels, ej.names, ej.budgetW, ej.tech)
			}
		} else {
			ev = surrogate.LocalEvaluator(ej.kernels, ej.budgetW, ej.tech, s.perfCache)
		}
		res, err := surrogate.Explore(ctx, ej.space, ej.kernels, ej.budgetW, ej.tech,
			surrogate.Options{Budget: ej.evalBudget, Seed: ej.seed},
			dse.Instr{Reg: s.reg, Tracer: s.tracer}, ev)
		if err != nil {
			return ExploreResult{}, err
		}
		return ej.summarize(res.Outcome), nil
	}
	if s.coord.Active() {
		out, err := s.coord.Explore(ctx, ej.space, ej.kernels, ej.names, ej.budgetW, ej.tech, ej.key)
		if err != nil {
			return ExploreResult{}, err
		}
		return ej.summarize(out), nil
	}
	out, err := dse.ExploreCachedContext(ctx, ej.space, ej.kernels, ej.budgetW, ej.tech,
		dse.Instr{Reg: s.reg, Tracer: s.tracer}, s.perfCache)
	if err != nil {
		return ExploreResult{}, err
	}
	return ej.summarize(out), nil
}
