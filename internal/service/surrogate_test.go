package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"ena/internal/arch"
	"ena/internal/dse"
	"ena/internal/surrogate"
	"ena/internal/workload"
)

// TestExploreSurrogateJob drives a surrogate exploration end to end over the
// HTTP API and pins its result to a direct surrogate.Explore run with the
// same space, budget and seed — the service layer must add nothing and lose
// nothing.
func TestExploreSurrogateJob(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	space := dse.Space{
		CUs:      []int{256, 320, 384},
		FreqsMHz: []float64{925, 1000, 1100},
		BWsTBps:  []float64{2, 3, 4},
	}
	kernels := []workload.Kernel{}
	for _, name := range []string{"MaxFlops", "CoMD", "HPGMG"} {
		k, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	want, err := surrogate.Explore(context.Background(), space, kernels, arch.NodePowerBudgetW, 0,
		surrogate.Options{Budget: 14, Seed: 7}, dse.Instr{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	req := map[string]any{
		"cus":         []int{256, 320, 384},
		"freqs_mhz":   []float64{925, 1000, 1100},
		"bws_tbps":    []float64{2, 3, 4},
		"kernels":     []string{"MaxFlops", "CoMD", "HPGMG"},
		"explorer":    "surrogate",
		"eval_budget": 14,
		"seed":        7,
	}
	resp, b := doJSON(t, c, "POST", ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202: %s", resp.StatusCode, b)
	}
	var wrap struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(b, &wrap); err != nil {
		t.Fatalf("unmarshal submit: %v", err)
	}
	final := pollJob(t, c, ts.URL+"/v1/jobs/"+wrap.Job.ID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("job state = %s (error %q), want done", final.State, final.Error)
	}
	rb, _ := json.Marshal(final.Result)
	var res ExploreResult
	if err := json.Unmarshal(rb, &res); err != nil {
		t.Fatalf("result unmarshal: %v", err)
	}
	if res.Explorer != "surrogate" || res.SpaceSize != space.Size() {
		t.Errorf("result explorer/space = %q/%d, want surrogate/%d", res.Explorer, res.SpaceSize, space.Size())
	}
	if res.Points != len(want.Trajectory) {
		t.Errorf("points = %d, want the surrogate trajectory length %d", res.Points, len(want.Trajectory))
	}
	wb := want.Outcome.BestMean
	if res.BestMean.CUs != wb.Point.CUs || res.BestMean.FreqMHz != wb.Point.FreqMHz ||
		res.BestMean.BWTBps != wb.Point.BWTBps || res.BestMean.MeanScore != wb.MeanScore {
		t.Errorf("best mean = %+v, want point %v score %v", res.BestMean, wb.Point, wb.MeanScore)
	}

	// The evaluated perf rows land in the server's PerfCache, and the metrics
	// scrape publishes its size.
	resp, b = doJSON(t, c, "GET", ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var snap struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("metrics unmarshal: %v", err)
	}
	if snap.Gauges["dse.perf_cache_entries"] < float64(len(want.Trajectory)) {
		t.Errorf("dse.perf_cache_entries = %v, want >= %d evaluated points",
			snap.Gauges["dse.perf_cache_entries"], len(want.Trajectory))
	}
}

// TestExploreSurrogatePackagingAxes: a surrogate request sweeping the
// packaging axes resolves, runs, and reports an expanded best point.
func TestExploreSurrogatePackagingAxes(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()
	req := map[string]any{
		"cus":          []int{256, 320},
		"freqs_mhz":    []float64{1000},
		"bws_tbps":     []float64{2, 3},
		"gpu_chiplets": []int{4, 8},
		"kernels":      []string{"MaxFlops", "CoMD"},
		"explorer":     "surrogate",
		"eval_budget":  6,
		"seed":         3,
	}
	resp, b := doJSON(t, c, "POST", ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, b)
	}
	var wrap struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(b, &wrap); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, c, ts.URL+"/v1/jobs/"+wrap.Job.ID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("job state = %s (error %q)", final.State, final.Error)
	}
	rb, _ := json.Marshal(final.Result)
	var res ExploreResult
	if err := json.Unmarshal(rb, &res); err != nil {
		t.Fatal(err)
	}
	if res.SpaceSize != 8 {
		t.Errorf("space size = %d, want 8", res.SpaceSize)
	}
	if res.BestMean.GPUChiplets != 4 && res.BestMean.GPUChiplets != 8 {
		t.Errorf("best-mean chiplet count = %d, want a swept value", res.BestMean.GPUChiplets)
	}
}

// TestExploreCanonKeys: the V2 cache canon separates everything that changes
// the answer — explorer, seed, eval budget, packaging axes — while permuted
// grids still collapse onto one key.
func TestExploreCanonKeys(t *testing.T) {
	key := func(r ExploreRequest) string {
		t.Helper()
		ej, err := r.resolve()
		if err != nil {
			t.Fatalf("resolve %+v: %v", r, err)
		}
		return ej.key
	}
	base := ExploreRequest{CUs: []int{64, 128}, Kernels: []string{"MaxFlops"}}
	if key(base) != key(ExploreRequest{CUs: []int{128, 64, 64}, Kernels: []string{"MaxFlops"}}) {
		t.Error("permuted grid changed the key")
	}
	if key(base) != key(ExploreRequest{CUs: []int{64, 128}, Kernels: []string{"MaxFlops"}, Explorer: "exhaustive"}) {
		t.Error("explicit explorer=exhaustive changed the key")
	}
	sur := base
	sur.Explorer = "surrogate"
	if key(sur) == key(base) {
		t.Error("surrogate shares the exhaustive key")
	}
	seeded := sur
	seeded.Seed = 1
	if key(seeded) == key(sur) {
		t.Error("seed not in the key")
	}
	budgeted := sur
	budgeted.EvalBudget = 9
	if key(budgeted) == key(sur) {
		t.Error("eval budget not in the key")
	}
	packed := base
	packed.GPUChiplets = []int{4, 8}
	if key(packed) == key(base) {
		t.Error("packaging axes not in the key")
	}
}
