package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"ena/internal/arch"
	"ena/internal/core"
	"ena/internal/dse"
	"ena/internal/faults"
	"ena/internal/memsys"
	"ena/internal/powopt"
	"ena/internal/workload"
)

// ConfigView is the wire form of a design point.
type ConfigView struct {
	CUs     int     `json:"cus"`
	FreqMHz float64 `json:"freq_mhz"`
	BWTBps  float64 `json:"bw_tbps"`
}

// SimulateRequest is the body of POST /v1/simulate. Zero config fields
// default to the paper's best-mean design point (320 CUs / 1000 MHz /
// 3 TB/s); Kernel is required.
//
// FaultMask, when set, degrades the node before simulating (grammar of
// faults.ParseMask, e.g. "gpu:2,hbm@0"); Seed picks the victims of
// count-based entries. Detailed additionally runs the event-driven NoC
// simulation — the only model that sees link faults — with a deadline-aware
// fallback to the analytic result (flagged degraded) when the simulation
// budget runs out.
// Kernel accepts either a Table I suite name (workload.ByName) or a DL
// kernel spec string (workload.ParseDL, e.g. "gemm:4096x4096x4096:fp16" or
// "attn:1x32x1x2048x128:fp16") — spec strings are canonicalized, so
// equivalent spellings share one cache slot.
//
// Scenario selects an additional analysis layered on the analytic result.
// The only scenario is "serving": the kernel (which must be a DL spec — it
// needs a batch axis) is swept over Batches through the roofline and each
// point replayed through the event-driven batched-FIFO server, reporting
// latency percentiles. QPS fixes the offered load for every point (zero
// offers 70% of each point's batched capacity); Requests sets the simulated
// request count per point.
type SimulateRequest struct {
	CUs       int        `json:"cus,omitempty"`
	FreqMHz   float64    `json:"freq_mhz,omitempty"`
	BWTBps    float64    `json:"bw_tbps,omitempty"`
	Kernel    string     `json:"kernel"`
	FaultMask string     `json:"fault_mask,omitempty"`
	Seed      int64      `json:"seed,omitempty"`
	Detailed  bool       `json:"detailed,omitempty"`
	Scenario  string     `json:"scenario,omitempty"`
	QPS       float64    `json:"qps,omitempty"`
	Batches   string     `json:"batches,omitempty"`
	Requests  int        `json:"requests,omitempty"`
	Options   SimOptions `json:"options,omitempty"`
}

// SimOptions mirrors core.Options with JSON-friendly names. Policy is one of
// "software-managed" (default), "static-interleave", "hardware-cache";
// Optimizations lists §V-E techniques by name ("ntc", "async-cu",
// "async-routers", "low-power-links", "compression", or "all").
type SimOptions struct {
	MissFrac         float64  `json:"miss_frac,omitempty"`
	UseAppExtTraffic bool     `json:"use_app_ext_traffic,omitempty"`
	Policy           string   `json:"policy,omitempty"`
	Optimizations    []string `json:"optimizations,omitempty"`
	TempC            float64  `json:"temp_c,omitempty"`
	ExcludeExternal  bool     `json:"exclude_external,omitempty"`
}

// SimulateResponse is the body of a simulate reply. Cached reports whether
// this request was served without executing the model (a cache hit or a
// coalesced share of a concurrent identical request); Key is the canonical
// content hash identifying the (config, workload) pair.
type SimulateResponse struct {
	Key      string     `json:"key"`
	Cached   bool       `json:"cached"`
	Config   ConfigView `json:"config"`
	Kernel   string     `json:"kernel"`
	TFLOPs   float64    `json:"tflops"`
	Bound    string     `json:"bound"`
	MissFrac float64    `json:"miss_frac"`
	NodeW    float64    `json:"node_w"`
	PackageW float64    `json:"package_w"`
	GFperW   float64    `json:"gf_per_w"`
	// Fault-injection annotations (zero on healthy requests). FaultMask is
	// the resolved, fully-targeted canonical mask; Disabled lists the
	// failed units. Degraded marks a response produced by a fallback path
	// (analytic instead of detailed, or a partitioned network), with the
	// reason alongside.
	FaultMask      string   `json:"fault_mask,omitempty"`
	Disabled       []string `json:"disabled,omitempty"`
	Degraded       bool     `json:"degraded,omitempty"`
	DegradedReason string   `json:"degraded_reason,omitempty"`
	Detailed       bool     `json:"detailed,omitempty"`
	Partitioned    bool     `json:"partitioned,omitempty"`
	MeanLatencyNs  float64  `json:"mean_latency_ns,omitempty"`
	SustainedGBps  float64  `json:"sustained_gbps,omitempty"`
	// Serving carries the inference-serving scenario's per-batch operating
	// points (nil unless the request asked for scenario "serving").
	Serving []ServingView `json:"serving,omitempty"`
}

// ServingView is one batch point of the serving scenario: the roofline-
// derived service time and capacity, and the event-driven latency summary
// at the offered load.
type ServingView struct {
	Batch       int     `json:"batch"`
	ServiceUs   float64 `json:"service_us"`
	CapacityRPS float64 `json:"capacity_rps"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedRPS float64 `json:"achieved_rps"`
	MeanBatch   float64 `json:"mean_batch"`
	Utilization float64 `json:"utilization"`
	P50Us       float64 `json:"p50_us"`
	P95Us       float64 `json:"p95_us"`
	P99Us       float64 `json:"p99_us"`
}

// Serving-scenario bounds: each batch point replays Requests arrivals
// through the event simulator and probes one roofline simulation per batch
// size up to the point's cap, so both axes are bounded to keep the route's
// worst case at interactive latency.
const (
	defaultServingRequests = 5000
	maxServingRequests     = 200000
	defaultServingBatches  = "1,2,4,8,16"
	maxServingBatch        = 256
)

// simJob is a resolved, validated simulate request: everything the worker
// needs plus the canonical cache keys. inj is nil for a healthy node. The
// detailed phase has its own key (detailedKey) so a deadline-pressed fallback
// — which serves the analytic result — never occupies the detailed slot.
type simJob struct {
	cfg         *arch.NodeConfig
	view        ConfigView
	kernel      workload.Kernel
	opt         core.Options
	inj         *faults.Injection
	detailed    bool
	seed        int64
	key         string
	detailedKey string

	// Serving-scenario fields (serving is false for plain simulations).
	serving  bool
	dl       workload.DLSpec
	qps      float64
	batches  []int
	requests int
}

// simCanon is the canonical-JSON form hashed into a simulate cache key. The
// field set and order are fixed; V bumps when the semantics of any field
// change so stale keys never alias new results (V=2 added fault injection:
// Mask is the resolved fully-targeted mask, so equivalent spellings — and
// count masks that resolve to the same victims — share a slot; Detailed
// splits the event-driven phase into its own slot. V=3 added the serving
// scenario: Kernel carries the canonical DL spec string, and Scenario /
// QPS / Batches / Requests shape the serving replay baked into the cached
// response — Batches is the canonical sorted-unique render, so permuted
// batch lists alias).
type simCanon struct {
	V               int     `json:"v"`
	CUs             int     `json:"cus"`
	FreqMHz         float64 `json:"freq_mhz"`
	BWTBps          float64 `json:"bw_tbps"`
	Kernel          string  `json:"kernel"`
	MissFrac        float64 `json:"miss_frac"`
	UseApp          bool    `json:"use_app_ext_traffic"`
	Policy          int     `json:"policy"`
	Opts            uint    `json:"opts"`
	TempC           float64 `json:"temp_c"`
	ExcludeExternal bool    `json:"exclude_external"`
	Mask            string  `json:"mask"`
	Seed            int64   `json:"seed"`
	Detailed        bool    `json:"detailed"`
	Scenario        string  `json:"scenario"`
	QPS             float64 `json:"qps"`
	Batches         string  `json:"batches"`
	Requests        int     `json:"requests"`
}

// hashCanon hashes a canonical struct's JSON encoding. encoding/json emits
// struct fields in declaration order, so the encoding — and therefore the
// key — is deterministic.
func hashCanon(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Canonical structs contain only scalars and strings; a marshal
		// failure is a programming error.
		panic("service: canonical marshal: " + err.Error())
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// parsePolicy resolves a wire policy name. Empty means software-managed,
// the paper's primary management mode.
func parsePolicy(s string) (memsys.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "software", "software-managed":
		return memsys.SoftwareManaged, nil
	case "static", "static-interleave":
		return memsys.StaticInterleave, nil
	case "hardware", "hardware-cache":
		return memsys.HardwareCache, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want software-managed, static-interleave or hardware-cache)", s)
}

var techByName = map[string]powopt.Technique{
	"ntc":             powopt.NTC,
	"async-cu":        powopt.AsyncCU,
	"async-routers":   powopt.AsyncRouters,
	"low-power-links": powopt.LowPowerLinks,
	"compression":     powopt.Compression,
	"all":             powopt.All,
}

// techNames is the canonical render of a technique mask, sorted.
func techNames(t powopt.Technique) []string {
	if t == 0 {
		return nil
	}
	var out []string
	for name, bit := range techByName {
		if name != "all" && t&bit == bit {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// parseTechniques folds wire names into a technique mask; duplicates and
// ordering are irrelevant (the mask is canonical).
func parseTechniques(names []string) (powopt.Technique, error) {
	var t powopt.Technique
	for _, n := range names {
		bit, ok := techByName[strings.ToLower(strings.TrimSpace(n))]
		if !ok {
			return 0, fmt.Errorf("unknown optimization %q (want ntc, async-cu, async-routers, low-power-links, compression or all)", n)
		}
		t |= bit
	}
	return t, nil
}

// resolve validates the request, applies defaults, and derives the canonical
// cache key. Errors are client errors (HTTP 400).
func (r SimulateRequest) resolve() (simJob, error) {
	if r.CUs == 0 {
		r.CUs = arch.ProvisionedCUs
	}
	if r.FreqMHz == 0 {
		r.FreqMHz = 1000
	}
	if r.BWTBps == 0 {
		r.BWTBps = 3
	}
	if r.Kernel == "" {
		return simJob{}, fmt.Errorf("kernel is required (one of %s, or a DL spec like gemm:M x N x K:dtype)", strings.Join(workload.Names(), ", "))
	}
	// Suite names first; anything with a spec separator is a DL kernel.
	k, err := workload.ByName(r.Kernel)
	var dl workload.DLSpec
	if err != nil {
		if !strings.Contains(r.Kernel, ":") {
			return simJob{}, err
		}
		dl, err = workload.ParseDL(r.Kernel)
		if err != nil {
			return simJob{}, err
		}
		if k, err = dl.Kernel(); err != nil {
			return simJob{}, err
		}
	}
	pol, err := parsePolicy(r.Options.Policy)
	if err != nil {
		return simJob{}, err
	}
	tech, err := parseTechniques(r.Options.Optimizations)
	if err != nil {
		return simJob{}, err
	}
	if r.Options.MissFrac < 0 || r.Options.MissFrac > 1 {
		return simJob{}, fmt.Errorf("miss_frac %v out of [0,1]", r.Options.MissFrac)
	}
	cfg := arch.EHP(r.CUs, r.FreqMHz, r.BWTBps)
	if err := cfg.Validate(); err != nil {
		return simJob{}, err
	}
	var inj *faults.Injection
	var maskStr string
	if mask, err := faults.ParseMask(r.FaultMask); err != nil {
		return simJob{}, err
	} else if !mask.Empty() {
		inj, err = faults.Apply(cfg, mask, r.Seed)
		if err != nil {
			return simJob{}, err
		}
		cfg = inj.Config
		// The resolved mask — not the request spelling — is the cache
		// identity, so equivalent masks (and count masks that happen to
		// pick the same victims) share one slot.
		maskStr = inj.Resolved.String()
	}
	opt := core.Options{
		MissFrac:         r.Options.MissFrac,
		UseAppExtTraffic: r.Options.UseAppExtTraffic,
		Policy:           pol,
		Optimizations:    tech,
		TempC:            r.Options.TempC,
		ExcludeExternal:  r.Options.ExcludeExternal,
	}
	scenario := strings.ToLower(strings.TrimSpace(r.Scenario))
	var batches []int
	if scenario != "" {
		if scenario != "serving" {
			return simJob{}, fmt.Errorf("unknown scenario %q (want serving)", r.Scenario)
		}
		if dl == nil {
			return simJob{}, fmt.Errorf("scenario serving needs a DL kernel spec (gemm:/conv:/attn:), got suite kernel %q", r.Kernel)
		}
		if r.QPS < 0 || math.IsNaN(r.QPS) || math.IsInf(r.QPS, 0) {
			return simJob{}, fmt.Errorf("qps %v must be non-negative and finite", r.QPS)
		}
		if r.Requests == 0 {
			r.Requests = defaultServingRequests
		}
		if r.Requests < 1 || r.Requests > maxServingRequests {
			return simJob{}, fmt.Errorf("requests %d out of [1, %d]", r.Requests, maxServingRequests)
		}
		if r.Batches == "" {
			r.Batches = defaultServingBatches
		}
		batches, err = workload.ParseBatchList(r.Batches)
		if err != nil {
			return simJob{}, err
		}
		if mx := batches[len(batches)-1]; mx > maxServingBatch {
			return simJob{}, fmt.Errorf("batch %d too large for the serving scenario (max %d)", mx, maxServingBatch)
		}
	} else if r.QPS != 0 || r.Batches != "" || r.Requests != 0 {
		return simJob{}, fmt.Errorf("qps/batches/requests need scenario \"serving\"")
	}
	canon := simCanon{
		V:               3,
		CUs:             r.CUs,
		FreqMHz:         r.FreqMHz,
		BWTBps:          r.BWTBps,
		Kernel:          k.Name,
		MissFrac:        opt.MissFrac,
		UseApp:          opt.UseAppExtTraffic,
		Policy:          int(pol),
		Opts:            uint(tech),
		TempC:           opt.TempC,
		ExcludeExternal: opt.ExcludeExternal,
		Mask:            maskStr,
	}
	if scenario != "" {
		canon.Scenario = scenario
		canon.QPS = r.QPS
		canon.Batches = workload.FormatBatchList(batches)
		canon.Requests = r.Requests
		// The arrival process is seeded, so the seed is part of the cached
		// serving result's identity (healthy plain requests stay seed-free).
		canon.Seed = r.Seed
	}
	job := simJob{
		cfg:      cfg,
		view:     ConfigView{CUs: r.CUs, FreqMHz: r.FreqMHz, BWTBps: r.BWTBps},
		kernel:   k,
		opt:      opt,
		inj:      inj,
		detailed: r.Detailed,
		seed:     r.Seed,
		key:      hashCanon(canon),
		serving:  scenario != "",
		dl:       dl,
		qps:      r.QPS,
		batches:  batches,
		requests: r.Requests,
	}
	if r.Detailed {
		// The detailed phase depends on the traffic seed; the analytic
		// phase does not, so only this key carries it.
		canon.Detailed = true
		canon.Seed = r.Seed
		job.detailedKey = hashCanon(canon)
	}
	return job, nil
}

// ExploreRequest is the body of POST /v1/explore. Empty grids default to the
// paper's exploration ranges, empty kernels to the full Table I suite, and a
// zero budget to the paper's 160 W node budget. TimeoutSec bounds the job's
// runtime (0 = the server's default job timeout).
//
// The packaging axes (gpu_chiplets / hbm_stack_gbs / ext_modules) extend the
// swept space beyond the paper's CU/frequency/bandwidth grid; omitted they
// pin the paper's fixed EHP packaging. Explorer selects the search strategy:
// "exhaustive" (default) sweeps every point, "surrogate" runs the seeded
// model-guided explorer with at most eval_budget evaluations (0 = a quarter
// of the space).
type ExploreRequest struct {
	CUs           []int     `json:"cus,omitempty"`
	FreqsMHz      []float64 `json:"freqs_mhz,omitempty"`
	BWsTBps       []float64 `json:"bws_tbps,omitempty"`
	GPUChiplets   []int     `json:"gpu_chiplets,omitempty"`
	HBMStackGBs   []float64 `json:"hbm_stack_gbs,omitempty"`
	ExtModules    []int     `json:"ext_modules,omitempty"`
	Kernels       []string  `json:"kernels,omitempty"`
	BudgetW       float64   `json:"budget_w,omitempty"`
	Optimizations []string  `json:"optimizations,omitempty"`
	Explorer      string    `json:"explorer,omitempty"`
	EvalBudget    int       `json:"eval_budget,omitempty"`
	Seed          int64     `json:"seed,omitempty"`
	TimeoutSec    float64   `json:"timeout_sec,omitempty"`
}

// BestPoint is a selected design point in an explore result. The packaging
// fields are zero (omitted) for points using the paper's fixed EHP packaging.
type BestPoint struct {
	CUs         int     `json:"cus"`
	FreqMHz     float64 `json:"freq_mhz"`
	BWTBps      float64 `json:"bw_tbps"`
	GPUChiplets int     `json:"gpu_chiplets,omitempty"`
	HBMStackGB  float64 `json:"hbm_stack_gb,omitempty"`
	ExtModules  int     `json:"ext_modules,omitempty"`
	MeanScore   float64 `json:"mean_score,omitempty"`
}

// KernelBest is one kernel's best in-budget configuration.
type KernelBest struct {
	Kernel  string  `json:"kernel"`
	CUs     int     `json:"cus"`
	FreqMHz float64 `json:"freq_mhz"`
	BWTBps  float64 `json:"bw_tbps"`
	TFLOPs  float64 `json:"tflops"`
	BudgetW float64 `json:"budget_w"`
}

// ExploreResult is a completed exploration job's result payload. Points is
// the number of configurations actually evaluated — the full space under the
// exhaustive explorer, the acquisition trajectory under the surrogate (whose
// SpaceSize then reports the full space it searched).
type ExploreResult struct {
	Key           string       `json:"key"`
	Points        int          `json:"points"`
	Feasible      int          `json:"feasible"`
	BudgetW       float64      `json:"budget_w"`
	Optimizations []string     `json:"optimizations,omitempty"`
	Explorer      string       `json:"explorer,omitempty"`
	SpaceSize     int          `json:"space_size,omitempty"`
	BestMean      BestPoint    `json:"best_mean"`
	PerKernel     []KernelBest `json:"per_kernel"`
}

// exploreJob is a resolved explore request.
type exploreJob struct {
	space      dse.Space
	kernels    []workload.Kernel
	names      []string
	budgetW    float64
	tech       powopt.Technique
	explorer   string
	evalBudget int
	seed       int64
	timeout    time.Duration
	key        string
}

// exploreCanon is the canonical (cache-key) form of an explore request. V is
// 2 since the packaging axes and explorer fields joined the key: bumping the
// version re-keys every job, so pre-expansion cache entries can never alias a
// request that now means something subtly different.
type exploreCanon struct {
	V          int       `json:"v"`
	CUs        []int     `json:"cus"`
	Freqs      []float64 `json:"freqs_mhz"`
	BWs        []float64 `json:"bws_tbps"`
	Chiplets   []int     `json:"gpu_chiplets,omitempty"`
	HBMs       []float64 `json:"hbm_stack_gbs,omitempty"`
	ExtMods    []int     `json:"ext_modules,omitempty"`
	Kernels    []string  `json:"kernels"`
	BudgetW    float64   `json:"budget_w"`
	Opts       uint      `json:"opts"`
	Explorer   string    `json:"explorer"`
	EvalBudget int       `json:"eval_budget,omitempty"`
	Seed       int64     `json:"seed,omitempty"`
}

// resolve validates an explore request and canonicalizes it: the swept grids
// are sorted and deduplicated (grid order never changes which configurations
// exist), so permuted requests share one cache key and one execution.
func (r ExploreRequest) resolve() (exploreJob, error) {
	space := dse.DefaultSpace()
	if len(r.CUs) > 0 {
		space.CUs = sortedUniqueInts(r.CUs)
	}
	if len(r.FreqsMHz) > 0 {
		space.FreqsMHz = sortedUniqueFloats(r.FreqsMHz)
	}
	if len(r.BWsTBps) > 0 {
		space.BWsTBps = sortedUniqueFloats(r.BWsTBps)
	}
	if len(r.GPUChiplets) > 0 {
		space.GPUChiplets = sortedUniqueInts(r.GPUChiplets)
	}
	if len(r.HBMStackGBs) > 0 {
		space.HBMStackGBs = sortedUniqueFloats(r.HBMStackGBs)
	}
	if len(r.ExtModules) > 0 {
		space.ExtModules = sortedUniqueInts(r.ExtModules)
	}
	if err := space.Validate(); err != nil {
		return exploreJob{}, err
	}
	explorer := r.Explorer
	switch explorer {
	case "", "exhaustive":
		explorer = "exhaustive"
		if r.EvalBudget != 0 {
			return exploreJob{}, fmt.Errorf("eval_budget requires explorer \"surrogate\"")
		}
		if r.Seed != 0 {
			return exploreJob{}, fmt.Errorf("seed requires explorer \"surrogate\"")
		}
	case "surrogate":
		if r.EvalBudget < 0 {
			return exploreJob{}, fmt.Errorf("negative eval_budget %d", r.EvalBudget)
		}
	default:
		return exploreJob{}, fmt.Errorf("unknown explorer %q (want exhaustive or surrogate)", r.Explorer)
	}
	ks := workload.Suite()
	if len(r.Kernels) > 0 {
		ks = ks[:0]
		for _, name := range r.Kernels {
			k, err := workload.ByName(name)
			if err != nil {
				return exploreJob{}, err
			}
			ks = append(ks, k)
		}
	}
	budget := r.BudgetW
	if budget == 0 {
		budget = arch.NodePowerBudgetW
	}
	if budget < 0 {
		return exploreJob{}, fmt.Errorf("negative budget %v W", budget)
	}
	tech, err := parseTechniques(r.Optimizations)
	if err != nil {
		return exploreJob{}, err
	}
	if r.TimeoutSec < 0 {
		return exploreJob{}, fmt.Errorf("negative timeout_sec %v", r.TimeoutSec)
	}
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name
	}
	key := hashCanon(exploreCanon{
		V:          2,
		CUs:        space.CUs,
		Freqs:      space.FreqsMHz,
		BWs:        space.BWsTBps,
		Chiplets:   space.GPUChiplets,
		HBMs:       space.HBMStackGBs,
		ExtMods:    space.ExtModules,
		Kernels:    names,
		BudgetW:    budget,
		Opts:       uint(tech),
		Explorer:   explorer,
		EvalBudget: r.EvalBudget,
		Seed:       r.Seed,
	})
	return exploreJob{
		space:      space,
		kernels:    ks,
		names:      names,
		budgetW:    budget,
		tech:       tech,
		explorer:   explorer,
		evalBudget: r.EvalBudget,
		seed:       r.Seed,
		timeout:    time.Duration(r.TimeoutSec * float64(time.Second)),
		key:        key,
	}, nil
}

// summarize shapes a dse.Outcome into the wire result.
func (e exploreJob) summarize(out dse.Outcome) ExploreResult {
	res := ExploreResult{
		Key:           e.key,
		Points:        len(out.Evals),
		BudgetW:       e.budgetW,
		Optimizations: techNames(e.tech),
		Explorer:      e.explorer,
		SpaceSize:     e.space.Size(),
		BestMean: BestPoint{
			CUs:         out.BestMean.Point.CUs,
			FreqMHz:     out.BestMean.Point.FreqMHz,
			BWTBps:      out.BestMean.Point.BWTBps,
			GPUChiplets: out.BestMean.Point.GPUChiplets,
			HBMStackGB:  out.BestMean.Point.HBMStackGB,
			ExtModules:  out.BestMean.Point.ExtModules,
			MeanScore:   out.BestMean.MeanScore,
		},
	}
	for _, ev := range out.Evals {
		if ev.FeasibleAll {
			res.Feasible++
		}
	}
	for i, k := range e.names {
		if i >= len(out.BestPerKernel) {
			break
		}
		b := out.BestPerKernel[i]
		kb := KernelBest{Kernel: k, CUs: b.Point.CUs, FreqMHz: b.Point.FreqMHz, BWTBps: b.Point.BWTBps}
		if i < len(b.PerfTFLOPs) {
			kb.TFLOPs = b.PerfTFLOPs[i]
			kb.BudgetW = b.BudgetW[i]
		}
		res.PerKernel = append(res.PerKernel, kb)
	}
	return res
}

func sortedUniqueInts(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

func sortedUniqueFloats(in []float64) []float64 {
	out := append([]float64(nil), in...)
	sort.Float64s(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}
