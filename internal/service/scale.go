package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ena/internal/cluster"
	"ena/internal/exp"
	"ena/internal/fabric"
	"ena/internal/faults"
	"ena/internal/workload"
)

// POST /v1/scale: machine-scale projection on the explicit inter-node
// fabric. The request names a kernel, a topology kind and a list of node
// counts; the job chains the detailed node simulation (sustained TFLOP/s on
// the best-mean EHP) into the analytic collective cost model and returns
// strong- or weak-scaling efficiency per size. A fault mask with node terms
// (faults grammar: "node@3" targeted, "node:2" seeded count) additionally
// reroutes the collectives around the dead nodes and reports the degraded
// efficiency alongside.
//
// Scale jobs ride the same scheduler (async 202 + job id), result cache
// (canonical-JSON key) and per-route circuit breaker as /v1/explore.

// scaleMaxSizes bounds how many node counts one request may sweep;
// scaleMaxNodes bounds each count (the §V-F machine is 100k nodes).
const (
	scaleMaxSizes = 16
	scaleMaxNodes = 1 << 20
	// scaleMaxDegradedNodes bounds fault-mask analysis: degraded routing
	// falls back to per-pair BFS around the victims, which is priced for
	// rack scale, not the full machine.
	scaleMaxDegradedNodes = 4096
)

// ScaleRequest is the body of POST /v1/scale. Kernel is required; Topology
// defaults to "torus", Nodes to the node -> rack -> machine walk
// {1, 50, 1000, 20000, 100000}, Mode to "weak". Zero link parameters take
// the reference fabric (50 GB/s, 500 ns); Ideal replaces the fabric with a
// zero-cost one (the §V-F arithmetic, for calibration). FaultMask accepts
// node terms only and caps every requested size at 4096 nodes.
type ScaleRequest struct {
	Kernel     string  `json:"kernel"`
	Topology   string  `json:"topology,omitempty"`
	Nodes      []int   `json:"nodes,omitempty"`
	Mode       string  `json:"mode,omitempty"`
	LinkGBps   float64 `json:"link_gbps,omitempty"`
	LatencyNs  float64 `json:"latency_ns,omitempty"`
	Ideal      bool    `json:"ideal,omitempty"`
	FaultMask  string  `json:"fault_mask,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// ScalePoint is one node count's evaluation. The degraded fields appear only
// when the request carried a fault mask: FailedNodes counts the victims and
// DegradedEfficiency is the efficiency with collectives rerouted around
// them; Partitioned marks a mask that disconnects the topology (delivered
// throughput zero).
type ScalePoint struct {
	Nodes              int     `json:"nodes"`
	Efficiency         float64 `json:"efficiency"`
	DeliveredEF        float64 `json:"delivered_ef"`
	IdealEF            float64 `json:"ideal_ef"`
	FailedNodes        int     `json:"failed_nodes,omitempty"`
	DegradedEfficiency float64 `json:"degraded_efficiency,omitempty"`
	Partitioned        bool    `json:"partitioned,omitempty"`
}

// ScaleResult is a completed scale job's result payload.
type ScaleResult struct {
	Key        string       `json:"key"`
	Kernel     string       `json:"kernel"`
	Topology   string       `json:"topology"`
	Mode       string       `json:"mode"`
	LinkGBps   float64      `json:"link_gbps"`
	LatencyNs  float64      `json:"latency_ns"`
	Ideal      bool         `json:"ideal,omitempty"`
	NodeTFLOPs float64      `json:"node_tflops"`
	FaultMask  string       `json:"fault_mask,omitempty"`
	Seed       int64        `json:"seed,omitempty"`
	Points     []ScalePoint `json:"points"`
}

// scaleJob is a resolved, validated scale request.
type scaleJob struct {
	kernel  workload.Kernel
	kind    string
	sizes   []int
	mode    fabric.Mode
	spec    fabric.LinkSpec
	mask    faults.Mask
	maskStr string
	seed    int64
	timeout time.Duration
	key     string
}

// scaleCanon is the canonical-JSON form hashed into a scale cache key
// (V bumps when any field's semantics change). The mask is the parsed
// grammar's canonical rendering, so equivalent spellings share a slot; the
// seed only matters when a count term leaves victims to chance, but keying
// on it unconditionally is merely a little conservative.
type scaleCanon struct {
	V         int     `json:"v"`
	Kernel    string  `json:"kernel"`
	Topology  string  `json:"topology"`
	Nodes     []int   `json:"nodes"`
	Mode      string  `json:"mode"`
	LinkGBps  float64 `json:"link_gbps"`
	LatencyNs float64 `json:"latency_ns"`
	Ideal     bool    `json:"ideal"`
	Mask      string  `json:"mask"`
	Seed      int64   `json:"seed"`
}

// resolve validates the request, applies defaults, and derives the canonical
// cache key. Errors are client errors (HTTP 400).
func (r ScaleRequest) resolve() (scaleJob, error) {
	if r.Kernel == "" {
		return scaleJob{}, fmt.Errorf("kernel is required (one of %s)", strings.Join(workload.Names(), ", "))
	}
	k, err := workload.ByName(r.Kernel)
	if err != nil {
		return scaleJob{}, err
	}
	kind := strings.ToLower(strings.TrimSpace(r.Topology))
	if kind == "" {
		kind = "torus"
	}
	valid := false
	for _, known := range fabric.Kinds() {
		if kind == known {
			valid = true
			break
		}
	}
	if !valid {
		return scaleJob{}, fmt.Errorf("unknown topology %q (want %s)", r.Topology, strings.Join(fabric.Kinds(), ", "))
	}
	sizes := []int{1, 50, 1000, 20000, 100000}
	if len(r.Nodes) > 0 {
		sizes = sortedUniqueInts(r.Nodes)
	}
	if len(sizes) > scaleMaxSizes {
		return scaleJob{}, fmt.Errorf("%d node counts exceed the per-request limit of %d", len(sizes), scaleMaxSizes)
	}
	for _, p := range sizes {
		if p < 1 {
			return scaleJob{}, fmt.Errorf("non-positive node count %d", p)
		}
		if p > scaleMaxNodes {
			return scaleJob{}, fmt.Errorf("node count %d exceeds the limit of %d", p, scaleMaxNodes)
		}
	}
	var mode fabric.Mode
	switch strings.ToLower(strings.TrimSpace(r.Mode)) {
	case "", "weak":
		mode = fabric.Weak
	case "strong":
		mode = fabric.Strong
	default:
		return scaleJob{}, fmt.Errorf("unknown mode %q (want strong or weak)", r.Mode)
	}
	if r.LinkGBps < 0 || r.LatencyNs < 0 {
		return scaleJob{}, fmt.Errorf("negative link parameters (%v GB/s, %v ns)", r.LinkGBps, r.LatencyNs)
	}
	spec := fabric.DefaultLinkSpec()
	if r.LinkGBps > 0 {
		spec.BandwidthGBps = r.LinkGBps
	}
	if r.LatencyNs > 0 {
		spec.LatencyNs = r.LatencyNs
	}
	if r.Ideal {
		spec = fabric.IdealLinkSpec()
	}
	mask, err := faults.ParseMask(r.FaultMask)
	if err != nil {
		return scaleJob{}, err
	}
	var maskStr string
	if !mask.Empty() {
		node, local := mask.SplitNode()
		if !local.Empty() {
			return scaleJob{}, fmt.Errorf("fault mask %q has non-node terms %q: the fabric only kills whole nodes (use /v1/simulate for intra-node faults)", r.FaultMask, local.String())
		}
		mask = node
		maskStr = mask.String()
		for _, p := range sizes {
			if p > scaleMaxDegradedNodes {
				return scaleJob{}, fmt.Errorf("fault-mask analysis is limited to %d nodes per topology (requested %d)", scaleMaxDegradedNodes, p)
			}
		}
	}
	if r.TimeoutSec < 0 {
		return scaleJob{}, fmt.Errorf("negative timeout_sec %v", r.TimeoutSec)
	}
	key := hashCanon(scaleCanon{
		V:         1,
		Kernel:    k.Name,
		Topology:  kind,
		Nodes:     sizes,
		Mode:      mode.String(),
		LinkGBps:  spec.BandwidthGBps,
		LatencyNs: spec.LatencyNs,
		Ideal:     spec.Ideal,
		Mask:      maskStr,
		Seed:      r.Seed,
	})
	return scaleJob{
		kernel:  k,
		kind:    kind,
		sizes:   sizes,
		mode:    mode,
		spec:    spec,
		mask:    mask,
		maskStr: maskStr,
		seed:    r.Seed,
		timeout: time.Duration(r.TimeoutSec * float64(time.Second)),
		key:     key,
	}, nil
}

func (s *Server) handleScale(w http.ResponseWriter, r *http.Request) {
	var req ScaleRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sj, err := req.resolve()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.submitJob("scale", sj.key, req, s.jobTimeout(sj.timeout), s.scaleRunner(sj))
	switch {
	case errors.Is(err, ErrQueueFull):
		writeBackpressure(w, s.sched.RetryAfterSecs(), err)
		return
	case errors.Is(err, ErrDraining):
		writeBackpressure(w, 1, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": view})
}

// scaleRunner is the execution closure of one scale job — what the scheduler
// runs now, and what a recovering or adopting replica rebuilds from the
// journalled request spec.
func (s *Server) scaleRunner(sj scaleJob) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		val, _, err := s.cache.DoPersist(ctx, sj.key, decodeAs[ScaleResult], func() (any, error) {
			out, err := s.scale(ctx, sj)
			if err != nil {
				return nil, err
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		return val, nil
	}
}

// scale runs one resolved scale job: every node count through
// cluster.EvalScale — the healthy analytic point plus, when the mask kills
// nodes, the degraded re-evaluation with collectives rerouted around the
// victims. With worker peers configured, the size list is sharded across
// them; EvalScale is a pure function of the job, so the sharded evaluations
// are bit-identical to the local loop below (a degraded mask that
// disconnects the survivors is a partitioned point, not a job error — the
// client asked what that failure does, and the answer is "no machine left").
func (s *Server) scale(ctx context.Context, sj scaleJob) (ScaleResult, error) {
	rate := exp.NodeRateFor(sj.kernel)
	out := ScaleResult{
		Key:        sj.key,
		Kernel:     sj.kernel.Name,
		Topology:   sj.kind,
		Mode:       sj.mode.String(),
		LinkGBps:   sj.spec.BandwidthGBps,
		LatencyNs:  sj.spec.LatencyNs,
		Ideal:      sj.spec.Ideal,
		NodeTFLOPs: rate,
		FaultMask:  sj.maskStr,
	}
	if sj.maskStr != "" {
		out.Seed = sj.seed
	}
	evals, err := s.scaleEvals(ctx, sj, rate)
	if err != nil {
		return ScaleResult{}, err
	}
	for i, se := range evals {
		sp := ScalePoint{
			Nodes:       sj.sizes[i],
			Efficiency:  se.Point.Efficiency,
			DeliveredEF: se.Point.DeliveredTFLOPs / 1e6,
			IdealEF:     rate * float64(sj.sizes[i]) / 1e6,
			FailedNodes: se.FailedNodes,
			Partitioned: se.Partitioned,
		}
		if !se.Partitioned {
			sp.DegradedEfficiency = se.DegradedEfficiency
		}
		out.Points = append(out.Points, sp)
	}
	return out, nil
}

// scaleEvals evaluates the job's node counts — through the coordinator when
// peers or a checkpoint store are configured, locally otherwise.
func (s *Server) scaleEvals(ctx context.Context, sj scaleJob, rate float64) ([]cluster.ScaleEval, error) {
	if s.coord.Active() {
		return s.coord.Scale(ctx, sj.kind, sj.spec, sj.kernel, rate, sj.sizes, sj.mode, sj.mask, sj.maskStr, sj.seed, sj.key)
	}
	evals := make([]cluster.ScaleEval, len(sj.sizes))
	err := parallelSizes(ctx, len(sj.sizes), func(i int) error {
		se, err := cluster.EvalScale(sj.kind, sj.spec, sj.kernel, rate, sj.sizes[i], sj.mode, sj.mask, sj.seed)
		if err != nil {
			return err
		}
		evals[i] = se
		return nil
	})
	if err != nil {
		return nil, err
	}
	return evals, nil
}

// parallelSizes runs fn(i) for i in [0, n) on up to GOMAXPROCS goroutines,
// stopping at the first error or context end.
func parallelSizes(ctx context.Context, n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var (
		next  atomic.Int64
		first atomic.Value
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || first.Load() != nil || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					first.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := first.Load().(error); err != nil {
		return err
	}
	return ctx.Err()
}
