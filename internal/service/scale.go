package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"ena/internal/exp"
	"ena/internal/fabric"
	"ena/internal/faults"
	"ena/internal/workload"
)

// POST /v1/scale: machine-scale projection on the explicit inter-node
// fabric. The request names a kernel, a topology kind and a list of node
// counts; the job chains the detailed node simulation (sustained TFLOP/s on
// the best-mean EHP) into the analytic collective cost model and returns
// strong- or weak-scaling efficiency per size. A fault mask with node terms
// (faults grammar: "node@3" targeted, "node:2" seeded count) additionally
// reroutes the collectives around the dead nodes and reports the degraded
// efficiency alongside.
//
// Scale jobs ride the same scheduler (async 202 + job id), result cache
// (canonical-JSON key) and per-route circuit breaker as /v1/explore.

// scaleMaxSizes bounds how many node counts one request may sweep;
// scaleMaxNodes bounds each count (the §V-F machine is 100k nodes).
const (
	scaleMaxSizes = 16
	scaleMaxNodes = 1 << 20
	// scaleMaxDegradedNodes bounds fault-mask analysis: degraded routing
	// falls back to per-pair BFS around the victims, which is priced for
	// rack scale, not the full machine.
	scaleMaxDegradedNodes = 4096
)

// ScaleRequest is the body of POST /v1/scale. Kernel is required; Topology
// defaults to "torus", Nodes to the node -> rack -> machine walk
// {1, 50, 1000, 20000, 100000}, Mode to "weak". Zero link parameters take
// the reference fabric (50 GB/s, 500 ns); Ideal replaces the fabric with a
// zero-cost one (the §V-F arithmetic, for calibration). FaultMask accepts
// node terms only and caps every requested size at 4096 nodes.
type ScaleRequest struct {
	Kernel     string  `json:"kernel"`
	Topology   string  `json:"topology,omitempty"`
	Nodes      []int   `json:"nodes,omitempty"`
	Mode       string  `json:"mode,omitempty"`
	LinkGBps   float64 `json:"link_gbps,omitempty"`
	LatencyNs  float64 `json:"latency_ns,omitempty"`
	Ideal      bool    `json:"ideal,omitempty"`
	FaultMask  string  `json:"fault_mask,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// ScalePoint is one node count's evaluation. The degraded fields appear only
// when the request carried a fault mask: FailedNodes counts the victims and
// DegradedEfficiency is the efficiency with collectives rerouted around
// them; Partitioned marks a mask that disconnects the topology (delivered
// throughput zero).
type ScalePoint struct {
	Nodes              int     `json:"nodes"`
	Efficiency         float64 `json:"efficiency"`
	DeliveredEF        float64 `json:"delivered_ef"`
	IdealEF            float64 `json:"ideal_ef"`
	FailedNodes        int     `json:"failed_nodes,omitempty"`
	DegradedEfficiency float64 `json:"degraded_efficiency,omitempty"`
	Partitioned        bool    `json:"partitioned,omitempty"`
}

// ScaleResult is a completed scale job's result payload.
type ScaleResult struct {
	Key        string       `json:"key"`
	Kernel     string       `json:"kernel"`
	Topology   string       `json:"topology"`
	Mode       string       `json:"mode"`
	LinkGBps   float64      `json:"link_gbps"`
	LatencyNs  float64      `json:"latency_ns"`
	Ideal      bool         `json:"ideal,omitempty"`
	NodeTFLOPs float64      `json:"node_tflops"`
	FaultMask  string       `json:"fault_mask,omitempty"`
	Seed       int64        `json:"seed,omitempty"`
	Points     []ScalePoint `json:"points"`
}

// scaleJob is a resolved, validated scale request.
type scaleJob struct {
	kernel  workload.Kernel
	kind    string
	sizes   []int
	mode    fabric.Mode
	spec    fabric.LinkSpec
	mask    faults.Mask
	maskStr string
	seed    int64
	timeout time.Duration
	key     string
}

// scaleCanon is the canonical-JSON form hashed into a scale cache key
// (V bumps when any field's semantics change). The mask is the parsed
// grammar's canonical rendering, so equivalent spellings share a slot; the
// seed only matters when a count term leaves victims to chance, but keying
// on it unconditionally is merely a little conservative.
type scaleCanon struct {
	V         int     `json:"v"`
	Kernel    string  `json:"kernel"`
	Topology  string  `json:"topology"`
	Nodes     []int   `json:"nodes"`
	Mode      string  `json:"mode"`
	LinkGBps  float64 `json:"link_gbps"`
	LatencyNs float64 `json:"latency_ns"`
	Ideal     bool    `json:"ideal"`
	Mask      string  `json:"mask"`
	Seed      int64   `json:"seed"`
}

// resolve validates the request, applies defaults, and derives the canonical
// cache key. Errors are client errors (HTTP 400).
func (r ScaleRequest) resolve() (scaleJob, error) {
	if r.Kernel == "" {
		return scaleJob{}, fmt.Errorf("kernel is required (one of %s)", strings.Join(workload.Names(), ", "))
	}
	k, err := workload.ByName(r.Kernel)
	if err != nil {
		return scaleJob{}, err
	}
	kind := strings.ToLower(strings.TrimSpace(r.Topology))
	if kind == "" {
		kind = "torus"
	}
	valid := false
	for _, known := range fabric.Kinds() {
		if kind == known {
			valid = true
			break
		}
	}
	if !valid {
		return scaleJob{}, fmt.Errorf("unknown topology %q (want %s)", r.Topology, strings.Join(fabric.Kinds(), ", "))
	}
	sizes := []int{1, 50, 1000, 20000, 100000}
	if len(r.Nodes) > 0 {
		sizes = sortedUniqueInts(r.Nodes)
	}
	if len(sizes) > scaleMaxSizes {
		return scaleJob{}, fmt.Errorf("%d node counts exceed the per-request limit of %d", len(sizes), scaleMaxSizes)
	}
	for _, p := range sizes {
		if p < 1 {
			return scaleJob{}, fmt.Errorf("non-positive node count %d", p)
		}
		if p > scaleMaxNodes {
			return scaleJob{}, fmt.Errorf("node count %d exceeds the limit of %d", p, scaleMaxNodes)
		}
	}
	var mode fabric.Mode
	switch strings.ToLower(strings.TrimSpace(r.Mode)) {
	case "", "weak":
		mode = fabric.Weak
	case "strong":
		mode = fabric.Strong
	default:
		return scaleJob{}, fmt.Errorf("unknown mode %q (want strong or weak)", r.Mode)
	}
	if r.LinkGBps < 0 || r.LatencyNs < 0 {
		return scaleJob{}, fmt.Errorf("negative link parameters (%v GB/s, %v ns)", r.LinkGBps, r.LatencyNs)
	}
	spec := fabric.DefaultLinkSpec()
	if r.LinkGBps > 0 {
		spec.BandwidthGBps = r.LinkGBps
	}
	if r.LatencyNs > 0 {
		spec.LatencyNs = r.LatencyNs
	}
	if r.Ideal {
		spec = fabric.IdealLinkSpec()
	}
	mask, err := faults.ParseMask(r.FaultMask)
	if err != nil {
		return scaleJob{}, err
	}
	var maskStr string
	if !mask.Empty() {
		node, local := mask.SplitNode()
		if !local.Empty() {
			return scaleJob{}, fmt.Errorf("fault mask %q has non-node terms %q: the fabric only kills whole nodes (use /v1/simulate for intra-node faults)", r.FaultMask, local.String())
		}
		mask = node
		maskStr = mask.String()
		for _, p := range sizes {
			if p > scaleMaxDegradedNodes {
				return scaleJob{}, fmt.Errorf("fault-mask analysis is limited to %d nodes per topology (requested %d)", scaleMaxDegradedNodes, p)
			}
		}
	}
	if r.TimeoutSec < 0 {
		return scaleJob{}, fmt.Errorf("negative timeout_sec %v", r.TimeoutSec)
	}
	key := hashCanon(scaleCanon{
		V:         1,
		Kernel:    k.Name,
		Topology:  kind,
		Nodes:     sizes,
		Mode:      mode.String(),
		LinkGBps:  spec.BandwidthGBps,
		LatencyNs: spec.LatencyNs,
		Ideal:     spec.Ideal,
		Mask:      maskStr,
		Seed:      r.Seed,
	})
	return scaleJob{
		kernel:  k,
		kind:    kind,
		sizes:   sizes,
		mode:    mode,
		spec:    spec,
		mask:    mask,
		maskStr: maskStr,
		seed:    r.Seed,
		timeout: time.Duration(r.TimeoutSec * float64(time.Second)),
		key:     key,
	}, nil
}

func (s *Server) handleScale(w http.ResponseWriter, r *http.Request) {
	var req ScaleRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sj, err := req.resolve()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	timeout := sj.timeout
	if timeout == 0 {
		timeout = s.cfg.JobTimeout
	}
	view, err := s.sched.Submit("scale", timeout, func(ctx context.Context) (any, error) {
		val, _, err := s.cache.Do(ctx, sj.key, func() (any, error) {
			out, err := s.scale(ctx, sj)
			if err != nil {
				return nil, err
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		return val, nil
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		writeBackpressure(w, s.sched.RetryAfterSecs(), err)
		return
	case errors.Is(err, ErrDraining):
		writeBackpressure(w, 1, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": view})
}

// scale runs one resolved scale job: the healthy curve via the parallel
// evaluator, plus — when the mask kills nodes — a degraded evaluation per
// size with the collectives rerouted around the victims.
func (s *Server) scale(ctx context.Context, sj scaleJob) (ScaleResult, error) {
	rate := exp.NodeRateFor(sj.kernel)
	out := ScaleResult{
		Key:        sj.key,
		Kernel:     sj.kernel.Name,
		Topology:   sj.kind,
		Mode:       sj.mode.String(),
		LinkGBps:   sj.spec.BandwidthGBps,
		LatencyNs:  sj.spec.LatencyNs,
		Ideal:      sj.spec.Ideal,
		NodeTFLOPs: rate,
		FaultMask:  sj.maskStr,
	}
	if sj.maskStr != "" {
		out.Seed = sj.seed
	}
	pts, err := fabric.Curve(sj.kind, sj.spec, sj.kernel, rate, sj.sizes, sj.mode, runtime.GOMAXPROCS(0))
	if err != nil {
		return ScaleResult{}, err
	}
	for _, pt := range pts {
		if err := ctx.Err(); err != nil {
			return ScaleResult{}, err
		}
		sp := ScalePoint{
			Nodes:       pt.Nodes,
			Efficiency:  pt.Efficiency,
			DeliveredEF: pt.DeliveredTFLOPs / 1e6,
			IdealEF:     rate * float64(pt.Nodes) / 1e6,
		}
		if sj.maskStr != "" {
			if err := s.scaleDegraded(&sp, sj, rate); err != nil {
				return ScaleResult{}, err
			}
		}
		out.Points = append(out.Points, sp)
	}
	return out, nil
}

// scaleDegraded fills one point's degraded fields: kill the mask's victims,
// reroute, re-evaluate. A mask that disconnects the survivors (or leaves at
// most one alive) is a partitioned point, not a request error — the client
// asked what that failure does, and the answer is "no machine left".
func (s *Server) scaleDegraded(sp *ScalePoint, sj scaleJob, rate float64) error {
	t, err := fabric.New(sj.kind, sp.Nodes, sj.spec)
	if err != nil {
		return err
	}
	failed, err := fabric.FailedNodes(t.Nodes(), sj.mask, sj.seed)
	if err != nil {
		// Too many victims for this size (e.g. node:3 on a 2-node torus, or
		// a targeted index past the end): report it as a dead machine.
		sp.FailedNodes = sp.Nodes
		sp.Partitioned = true
		return nil
	}
	sp.FailedNodes = len(failed)
	comm, err := fabric.NewDegradedComm(t, failed)
	if err != nil {
		return err
	}
	pt, err := fabric.Evaluate(comm, sj.kernel, rate, sj.mode)
	if errors.Is(err, fabric.ErrPartitioned) {
		sp.Partitioned = true
		return nil
	}
	if err != nil {
		return err
	}
	sp.DegradedEfficiency = pt.Efficiency
	return nil
}
