package service

import (
	"context"

	"ena/internal/core"
	"ena/internal/serving"
)

// servingLoad is the offered fraction of each batch point's capacity when
// the request does not pin a QPS — deep enough into the stable region that
// the latency distribution converges at the default request count.
const servingLoad = 0.7

// runServing executes the serving scenario for a resolved job: one roofline
// simulation per batch size builds the service-time table, then each
// requested batch point replays the seeded arrival stream through the
// event-driven batched-FIFO server. Runs inside the cache.Do closure, so a
// given canonical request computes this once.
func runServing(ctx context.Context, job simJob) ([]ServingView, error) {
	maxB := job.batches[len(job.batches)-1]
	svc := make([]float64, maxB)
	for b := 1; b <= maxB; b++ {
		sb, err := job.dl.WithBatch(b)
		if err != nil {
			return nil, err
		}
		k, err := sb.Kernel()
		if err != nil {
			return nil, err
		}
		r, err := core.SimulateContext(ctx, job.cfg, k, job.opt)
		if err != nil {
			return nil, err
		}
		svc[b-1] = sb.FLOPs() / (r.Perf.TFLOPs * 1e3) // ns per batch-b execution
	}
	out := make([]ServingView, len(job.batches))
	for i, b := range job.batches {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		capacity := float64(b) / svc[b-1] * 1e9
		offered := job.qps
		if offered == 0 {
			offered = servingLoad * capacity
		}
		res, err := serving.Simulate(serving.Options{
			QPS:       offered,
			MaxBatch:  b,
			Requests:  job.requests,
			Seed:      job.seed + int64(i),
			ServiceNs: func(n int) float64 { return svc[n-1] },
		})
		if err != nil {
			return nil, err
		}
		out[i] = ServingView{
			Batch:       b,
			ServiceUs:   svc[b-1] / 1e3,
			CapacityRPS: capacity,
			OfferedQPS:  offered,
			AchievedRPS: res.AchievedRPS,
			MeanBatch:   res.MeanBatch,
			Utilization: res.Utilization,
			P50Us:       res.P50Ns / 1e3,
			P95Us:       res.P95Ns / 1e3,
			P99Us:       res.P99Ns / 1e3,
		}
	}
	return out, nil
}
