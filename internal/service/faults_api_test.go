package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func simulate(t *testing.T, c *http.Client, url string, body map[string]any) (int, SimulateResponse, []byte) {
	t.Helper()
	resp, b := doJSON(t, c, "POST", url+"/v1/simulate", body)
	var out SimulateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
	}
	return resp.StatusCode, out, b
}

func TestSimulateFaultMask(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	code, healthy, b := simulate(t, c, ts.URL, map[string]any{"kernel": "CoMD"})
	if code != http.StatusOK {
		t.Fatalf("healthy simulate = %d: %s", code, b)
	}
	code, faulty, b := simulate(t, c, ts.URL, map[string]any{
		"kernel": "CoMD", "fault_mask": "gpu:2", "seed": 7,
	})
	if code != http.StatusOK {
		t.Fatalf("faulty simulate = %d: %s", code, b)
	}
	if faulty.TFLOPs >= healthy.TFLOPs {
		t.Errorf("two dead chiplets: %.2f TFLOP/s, not below healthy %.2f", faulty.TFLOPs, healthy.TFLOPs)
	}
	if len(faulty.Disabled) != 2 || faulty.FaultMask == "" {
		t.Errorf("fault annotations missing: mask=%q disabled=%v", faulty.FaultMask, faulty.Disabled)
	}
	if faulty.Key == healthy.Key {
		t.Error("degraded and healthy requests share a cache key")
	}

	// Same request repeats bit-identically and is served from cache.
	code, again, _ := simulate(t, c, ts.URL, map[string]any{
		"kernel": "CoMD", "fault_mask": "gpu:2", "seed": 7,
	})
	if code != http.StatusOK || !again.Cached {
		t.Errorf("identical request not cached (code %d, cached %v)", code, again.Cached)
	}
	if again.TFLOPs != faulty.TFLOPs || again.FaultMask != faulty.FaultMask {
		t.Error("seeded fault injection not reproducible across invocations")
	}

	// An equivalent spelling resolves to the same victims, so it shares
	// the slot too.
	code, split, _ := simulate(t, c, ts.URL, map[string]any{
		"kernel": "CoMD", "fault_mask": "gpu:1,gpu:1", "seed": 7,
	})
	if code != http.StatusOK || !split.Cached || split.Key != faulty.Key {
		t.Errorf("equivalent mask spelling missed the cache (cached %v, key match %v)", split.Cached, split.Key == faulty.Key)
	}
}

func TestSimulateFaultMaskClientErrors(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()
	for _, mask := range []string{"disk:1", "gpu:9", "gpu@99", "gpu:8", "link@0-9"} {
		code, _, b := simulate(t, c, ts.URL, map[string]any{"kernel": "CoMD", "fault_mask": mask})
		if code != http.StatusBadRequest {
			t.Errorf("mask %q = %d, want 400: %s", mask, code, b)
		}
	}
}

func TestSimulateDetailed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{Workers: 2, DetailedRequests: 5_000, DetailedBudget: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	code, resp, b := simulate(t, c, ts.URL, map[string]any{"kernel": "CoMD", "detailed": true})
	if code != http.StatusOK {
		t.Fatalf("detailed simulate = %d: %s", code, b)
	}
	if !resp.Detailed || resp.Degraded {
		t.Fatalf("want detailed non-degraded response, got detailed=%v degraded=%v (%s)", resp.Detailed, resp.Degraded, resp.DegradedReason)
	}
	if resp.MeanLatencyNs <= 0 || resp.SustainedGBps <= 0 {
		t.Errorf("detailed measurements missing: lat=%v sustained=%v", resp.MeanLatencyNs, resp.SustainedGBps)
	}

	// A NoC link fault shows up only in the detailed phase: same config,
	// higher loaded latency.
	code, lf, b := simulate(t, c, ts.URL, map[string]any{
		"kernel": "CoMD", "detailed": true, "fault_mask": "link@0-5",
	})
	if code != http.StatusOK {
		t.Fatalf("link-fault simulate = %d: %s", code, b)
	}
	if lf.MeanLatencyNs <= resp.MeanLatencyNs {
		t.Errorf("rerouted latency %.1f ns, not above healthy %.1f ns", lf.MeanLatencyNs, resp.MeanLatencyNs)
	}

	// Cutting every link at position 0 partitions the network: degraded,
	// zero throughput — not an error.
	code, part, b := simulate(t, c, ts.URL, map[string]any{
		"kernel": "CoMD", "detailed": true,
		"fault_mask": "link@0-1,link@0-2,link@0-3,link@0-4,link@0-5",
	})
	if code != http.StatusOK {
		t.Fatalf("partitioned simulate = %d: %s", code, b)
	}
	if !part.Partitioned || !part.Degraded || part.TFLOPs != 0 {
		t.Errorf("want partitioned degraded zero-throughput response, got %+v", part)
	}
}

func TestSimulateDetailedDeadlineFallback(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{Workers: 2, DetailedBudget: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	code, resp, b := simulate(t, c, ts.URL, map[string]any{"kernel": "CoMD", "detailed": true})
	if code != http.StatusOK {
		t.Fatalf("deadline-pressed simulate = %d: %s", code, b)
	}
	if !resp.Degraded || resp.Detailed {
		t.Fatalf("want analytic fallback flagged degraded, got degraded=%v detailed=%v", resp.Degraded, resp.Detailed)
	}
	if resp.TFLOPs <= 0 {
		t.Error("fallback must still carry the analytic result")
	}
	if s.reg.Counter("service.sim.fallbacks").Value() == 0 {
		t.Error("fallback not counted")
	}
}
