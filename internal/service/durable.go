package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ena/internal/obs"
	"ena/internal/store"
)

// Durable jobs: the service-side half of the crash-safe job pipeline. Every
// async submission (explore/scale) is journalled write-ahead to the shared
// store directory before it is enqueued, every lifecycle transition is
// appended as it happens, and the job carries a lease (owner id + expiry)
// renewed by a heartbeat while it is live here. A replica that restarts — or
// any replica sharing the store directory — folds the journal back into
// jobs: terminal entries become queryable again with their results served
// from the store, and recoverable entries (queued/running with an expired
// lease, or interrupted by a drain deadline) are re-enqueued under their
// original ids. An adoption ticker keeps doing the same while the process
// runs, so a SIGKILLed coordinator's sweep completes on a surviving replica
// once its lease lapses.
//
// Correctness under races leans on two properties rather than consensus:
// results are content-addressed (a double execution is wasted work, never a
// wrong answer — and checkpointed sweeps make the waste small), and
// journal folds keep terminal states sticky (an adopter can never resurrect
// a finished job). Lease claims are last-writer-wins appends: two replicas
// adopting the same job both run it, converge on the same cached result,
// and the journal settles on whichever finished last.

// Durable-manager defaults when the corresponding Config field is zero.
const (
	DefaultLeaseTTL = 10 * time.Second
)

// durableManager journals job lifecycles and recovers/adopts journalled
// jobs. It implements jobRecorder for the scheduler's transition hook.
type durableManager struct {
	jr    *store.Journal
	owner string
	ttl   time.Duration
	srv   *Server // set right after Server construction

	mu   sync.Mutex
	live map[string]bool // jobs this replica currently owns

	recoveredCtr   *obs.Counter
	adoptedCtr     *obs.Counter
	interruptedCtr *obs.Counter
	renewalsCtr    *obs.Counter
	journalErrs    *obs.Counter
}

func newDurable(jr *store.Journal, owner string, ttl time.Duration, reg *obs.Registry) *durableManager {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &durableManager{
		jr:             jr,
		owner:          owner,
		ttl:            ttl,
		live:           make(map[string]bool),
		recoveredCtr:   reg.Counter("jobs.recovered"),
		adoptedCtr:     reg.Counter("jobs.adopted"),
		interruptedCtr: reg.Counter("jobs.interrupted"),
		renewalsCtr:    reg.Counter("jobs.lease_renewals"),
		journalErrs:    reg.Counter("jobs.journal_errors"),
	}
}

// leaseMs is the expiry a lease written now carries.
func (m *durableManager) leaseMs(now time.Time) int64 {
	return now.Add(m.ttl).UnixMilli()
}

func (m *durableManager) append(rec store.Record) {
	if err := m.jr.Append(rec); err != nil {
		// A journal write failing must not fail the job — durability
		// degrades, the work continues. The counter is the operator signal.
		m.journalErrs.Inc()
	}
}

// journalSubmit writes the job's submit record — identity, canonical result
// key, and the original request spec — before the scheduler sees it.
func (m *durableManager) journalSubmit(id, kind, key string, spec []byte) {
	m.mu.Lock()
	m.live[id] = true
	m.mu.Unlock()
	m.append(store.Record{
		ID:      id,
		Type:    "submit",
		Kind:    kind,
		Key:     key,
		Spec:    spec,
		State:   store.StateQueued,
		Owner:   m.owner,
		LeaseMs: m.leaseMs(time.Now()),
	})
}

// forget drops local ownership without journalling (submission failed).
func (m *durableManager) forget(id string) {
	m.mu.Lock()
	delete(m.live, id)
	m.mu.Unlock()
}

// transition implements jobRecorder: every scheduler state change of a job
// this replica owns lands in the journal. Interruptions (drain deadline,
// shutdown) are journalled as the recoverable "interrupted" state even
// though the in-memory job reads cancelled.
func (m *durableManager) transition(id string, state JobState, errMsg string, interrupted bool) {
	m.mu.Lock()
	owned := m.live[id]
	if owned && state.Terminal() {
		delete(m.live, id)
	}
	m.mu.Unlock()
	if !owned {
		return
	}
	st := string(state)
	if interrupted {
		st = store.StateInterrupted
		m.interruptedCtr.Inc()
	}
	rec := store.Record{ID: id, Type: "state", State: st, Err: errMsg, Owner: m.owner}
	if !store.TerminalState(st) {
		rec.LeaseMs = m.leaseMs(time.Now())
	}
	m.append(rec)
}

// pruned implements jobRecorder: a job evicted from the scheduler table no
// longer needs its journal file.
func (m *durableManager) pruned(id string) {
	if err := m.jr.Remove(id); err != nil {
		m.journalErrs.Inc()
	}
}

// liveIDs snapshots the jobs this replica owns.
func (m *durableManager) liveIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.live))
	for id := range m.live {
		ids = append(ids, id)
	}
	return ids
}

// heartbeatLoop renews the lease on every owned job at ttl/3, so a healthy
// replica's jobs are never adoptable and a dead replica's become so within
// one TTL.
func (m *durableManager) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(m.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			now := time.Now()
			for _, id := range m.liveIDs() {
				m.append(store.Record{ID: id, Type: "lease", Owner: m.owner, LeaseMs: m.leaseMs(now)})
				m.renewalsCtr.Inc()
			}
		}
	}
}

// adoptLoop periodically scans the shared journal for jobs whose lease has
// lapsed — a SIGKILLed peer's — and re-enqueues them here.
func (m *durableManager) adoptLoop(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = m.ttl
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.adoptOnce(time.Now())
		}
	}
}

// adoptOnce adopts every recoverable journal entry not already owned here.
func (m *durableManager) adoptOnce(now time.Time) {
	for _, e := range m.jr.Load() {
		m.mu.Lock()
		owned := m.live[e.ID]
		m.mu.Unlock()
		if owned || !e.Recoverable(now) {
			continue
		}
		m.resubmit(e, m.adoptedCtr)
	}
}

// recover is the startup pass over the journal: terminal entries are
// restored into the scheduler table (results decoded from the store, never
// recomputed), recoverable ones re-enqueued under their original ids.
// Entries held under a live peer's lease are left alone.
func (m *durableManager) recover(now time.Time) {
	for _, e := range m.jr.Load() {
		if store.TerminalState(e.State) {
			m.srv.sched.Restore(m.journalView(e), m.srv.storedResult(e.Kind, e.Key))
			continue
		}
		if e.Recoverable(now) {
			m.resubmit(e, m.recoveredCtr)
		}
	}
}

// resubmit claims a journal entry (lease as self, state queued) and
// re-enqueues it. A spec that no longer resolves is journalled failed — the
// poison guard that keeps a corrupt entry from being re-adopted forever.
func (m *durableManager) resubmit(e store.Entry, ctr *obs.Counter) {
	run, timeout, err := m.srv.runnerForJournal(e)
	if err != nil {
		m.append(store.Record{
			ID: e.ID, Type: "state", State: store.StateFailed,
			Err: "unrecoverable spec: " + err.Error(), Owner: m.owner,
		})
		return
	}
	m.mu.Lock()
	m.live[e.ID] = true
	m.mu.Unlock()
	m.append(store.Record{
		ID: e.ID, Type: "state", State: store.StateQueued,
		Owner: m.owner, LeaseMs: m.leaseMs(time.Now()),
	})
	if _, err := m.srv.sched.SubmitWithID(e.ID, e.Kind, timeout, run); err != nil {
		// Queue full or draining: drop ownership and stop renewing; the
		// lease lapses and another replica (or a later scan) picks it up.
		m.forget(e.ID)
		return
	}
	ctr.Inc()
}

// journalView shapes a folded journal entry as a job view — the fallback
// GET /v1/jobs/{id} serves for jobs this process has no in-memory record of
// (journalled by a peer, or pruned here).
func (m *durableManager) journalView(e store.Entry) JobView {
	v := JobView{
		ID:      e.ID,
		Kind:    e.Kind,
		State:   JobState(e.State),
		Created: e.Created,
		Error:   e.Err,
		Owner:   e.Owner,
	}
	if !e.Finished.IsZero() {
		t := e.Finished
		v.Finished = &t
	}
	return v
}

// view folds one journal entry into a job view; for done jobs the result is
// decoded from the store so a client polling any replica sees the payload.
func (m *durableManager) view(id string) (JobView, bool) {
	e, ok := m.jr.Get(id)
	if !ok {
		return JobView{}, false
	}
	v := m.journalView(e)
	if e.State == store.StateDone {
		v.Result = m.srv.storedResult(e.Kind, e.Key)
	}
	return v, true
}

// storedResult decodes a journalled job's result payload from the persistent
// store by its canonical key (nil when absent or undecodable).
func (s *Server) storedResult(kind, key string) any {
	if s.cfg.Store == nil || key == "" {
		return nil
	}
	payload, ok := s.cfg.Store.Get(key)
	if !ok {
		return nil
	}
	var decode func([]byte) (any, error)
	switch kind {
	case "explore":
		decode = decodeAs[ExploreResult]
	case "scale":
		decode = decodeAs[ScaleResult]
	default:
		return nil
	}
	v, err := decode(payload)
	if err != nil {
		return nil
	}
	return v
}

// runnerForJournal rebuilds a journalled job's execution closure from its
// original request spec. The spec re-resolves through the same path the
// handler used, so the canonical key — and therefore the store slot and
// checkpoint prefix — is identical.
func (s *Server) runnerForJournal(e store.Entry) (func(context.Context) (any, error), time.Duration, error) {
	switch e.Kind {
	case "explore":
		var req ExploreRequest
		if err := json.Unmarshal(e.Spec, &req); err != nil {
			return nil, 0, fmt.Errorf("explore spec: %w", err)
		}
		ej, err := req.resolve()
		if err != nil {
			return nil, 0, fmt.Errorf("explore spec: %w", err)
		}
		return s.exploreRunner(ej), s.jobTimeout(ej.timeout), nil
	case "scale":
		var req ScaleRequest
		if err := json.Unmarshal(e.Spec, &req); err != nil {
			return nil, 0, fmt.Errorf("scale spec: %w", err)
		}
		sj, err := req.resolve()
		if err != nil {
			return nil, 0, fmt.Errorf("scale spec: %w", err)
		}
		return s.scaleRunner(sj), s.jobTimeout(sj.timeout), nil
	}
	return nil, 0, fmt.Errorf("unknown job kind %q", e.Kind)
}

// jobTimeout applies the server default when the request set none.
func (s *Server) jobTimeout(d time.Duration) time.Duration {
	if d == 0 {
		return s.cfg.JobTimeout
	}
	return d
}

// submitJob enqueues an async job, journalling it write-ahead when the
// server runs durable. spec is the original wire request (the journal's
// replay payload); key the canonical result-store key.
func (s *Server) submitJob(kind, key string, spec any, timeout time.Duration, run func(context.Context) (any, error)) (JobView, error) {
	if s.durable == nil {
		return s.sched.Submit(kind, timeout, run)
	}
	specBytes, err := json.Marshal(spec)
	if err != nil {
		return JobView{}, fmt.Errorf("service: spec marshal: %w", err)
	}
	id := newJobID()
	s.durable.journalSubmit(id, kind, key, specBytes)
	view, err := s.sched.SubmitWithID(id, kind, timeout, run)
	if err != nil {
		s.durable.forget(id)
		if rerr := s.durable.jr.Remove(id); rerr != nil {
			s.durable.journalErrs.Inc()
		}
		return JobView{}, err
	}
	view.Owner = s.durable.owner
	return view, nil
}

// internalJobEntry is one row of GET /v1/internal/jobs — the journal summary
// peers (and operators) poll to see the shared job table.
type internalJobEntry struct {
	ID         string     `json:"id"`
	Kind       string     `json:"kind"`
	Key        string     `json:"key,omitempty"`
	State      string     `json:"state"`
	Owner      string     `json:"owner,omitempty"`
	LeaseUntil *time.Time `json:"lease_until,omitempty"`
	Created    *time.Time `json:"created,omitempty"`
}

func (s *Server) handleInternalJobs(w http.ResponseWriter, r *http.Request) {
	out := []internalJobEntry{}
	if s.durable != nil {
		for _, e := range s.durable.jr.Load() {
			row := internalJobEntry{
				ID: e.ID, Kind: e.Kind, Key: e.Key, State: e.State, Owner: e.Owner,
			}
			if !e.LeaseUntil.IsZero() {
				t := e.LeaseUntil
				row.LeaseUntil = &t
			}
			if !e.Created.IsZero() {
				t := e.Created
				row.Created = &t
			}
			out = append(out, row)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"owner": s.ownerID(), "jobs": out})
}

// ownerID is this replica's lease owner id ("" when not durable).
func (s *Server) ownerID() string {
	if s.durable == nil {
		return ""
	}
	return s.durable.owner
}
