package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ena/internal/obs"
)

func waitTerminal(t *testing.T, s *Scheduler, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v (state %s)", id, err, v.State)
	}
	return v
}

func TestSchedulerRunsJob(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(context.Background(), 2, 8, 16, reg)
	defer s.Drain(context.Background())

	v, err := s.Submit("test", 0, func(ctx context.Context) (any, error) {
		return "ok", nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if v.State != JobQueued && v.State != JobRunning && v.State != JobDone {
		t.Fatalf("fresh job state = %s", v.State)
	}
	v = waitTerminal(t, s, v.ID)
	if v.State != JobDone || v.Result != "ok" {
		t.Fatalf("job = %+v, want done/ok", v)
	}
	if v.Started == nil || v.Finished == nil {
		t.Error("done job missing started/finished timestamps")
	}
	snap := reg.Snapshot()
	if snap.Counters["service.jobs.submitted"] != 1 || snap.Counters["service.jobs.completed"] != 1 {
		t.Errorf("submitted/completed = %d/%d, want 1/1",
			snap.Counters["service.jobs.submitted"], snap.Counters["service.jobs.completed"])
	}
}

func TestSchedulerJobFailure(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(context.Background(), 1, 8, 16, reg)
	defer s.Drain(context.Background())

	boom := errors.New("kernel exploded")
	v, err := s.Submit("test", 0, func(ctx context.Context) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v = waitTerminal(t, s, v.ID)
	if v.State != JobFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	if v.Error != boom.Error() {
		t.Errorf("error = %q, want %q", v.Error, boom.Error())
	}
	if v.Result != nil {
		t.Errorf("failed job leaked a result: %v", v.Result)
	}
	if n := reg.Snapshot().Counters["service.jobs.failed"]; n != 1 {
		t.Errorf("failed counter = %d, want 1", n)
	}
}

func TestSchedulerCancelRunning(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(context.Background(), 1, 8, 16, reg)
	defer s.Drain(context.Background())

	started := make(chan struct{})
	v, err := s.Submit("test", 0, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if _, ok := s.Cancel(v.ID); !ok {
		t.Fatal("Cancel: job not found")
	}
	v = waitTerminal(t, s, v.ID)
	if v.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
	if n := reg.Snapshot().Counters["service.jobs.cancelled"]; n != 1 {
		t.Errorf("cancelled counter = %d, want 1", n)
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	s := NewScheduler(context.Background(), 1, 8, 16, obs.NewRegistry())
	defer s.Drain(context.Background())

	// Occupy the single worker so the next job stays queued.
	gate := make(chan struct{})
	started := make(chan struct{})
	blocker, err := s.Submit("blocker", 0, func(ctx context.Context) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started

	ran := false
	queued, err := s.Submit("victim", 0, func(ctx context.Context) (any, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit victim: %v", err)
	}
	v, ok := s.Cancel(queued.ID)
	if !ok || v.State != JobCancelled {
		t.Fatalf("Cancel queued = (%+v, %v), want cancelled", v, ok)
	}
	close(gate)
	waitTerminal(t, s, blocker.ID)
	s.Drain(context.Background()) // workers idle; queued victim must be skipped
	if ran {
		t.Error("cancelled queued job still executed")
	}
}

func TestSchedulerJobTimeout(t *testing.T) {
	s := NewScheduler(context.Background(), 1, 8, 16, obs.NewRegistry())
	defer s.Drain(context.Background())

	v, err := s.Submit("test", 5*time.Millisecond, func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return "too late", nil
		}
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v = waitTerminal(t, s, v.ID)
	// DeadlineExceeded is not Canceled, so the job lands in failed.
	if v.State != JobFailed {
		t.Fatalf("state = %s, want failed (deadline)", v.State)
	}
	if v.Error != context.DeadlineExceeded.Error() {
		t.Errorf("error = %q, want deadline exceeded", v.Error)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(context.Background(), 1, 1, 16, reg)
	defer s.Drain(context.Background())

	gate := make(chan struct{})
	started := make(chan struct{})
	block := func(ctx context.Context) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
		return nil, nil
	}
	if _, err := s.Submit("a", 0, block); err != nil { // taken by the worker
		t.Fatalf("Submit a: %v", err)
	}
	<-started
	if _, err := s.Submit("b", 0, block); err != nil { // fills the queue slot
		t.Fatalf("Submit b: %v", err)
	}
	if _, err := s.Submit("c", 0, block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit c err = %v, want ErrQueueFull", err)
	}
	if n := reg.Snapshot().Counters["service.jobs.rejected"]; n != 1 {
		t.Errorf("rejected counter = %d, want 1", n)
	}
	close(gate)
}

func TestSchedulerDrainRejectsAndWaits(t *testing.T) {
	s := NewScheduler(context.Background(), 2, 8, 16, obs.NewRegistry())

	gate := make(chan struct{})
	v, err := s.Submit("slow", 0, func(ctx context.Context) (any, error) {
		<-gate
		return "finished", nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(gate)
	}()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	got, ok := s.Get(v.ID)
	if !ok || got.State != JobDone || got.Result != "finished" {
		t.Errorf("after drain job = (%+v, %v), want done/finished", got, ok)
	}
	if _, err := s.Submit("late", 0, func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after drain err = %v, want ErrDraining", err)
	}
}

func TestSchedulerDrainForcesCancellation(t *testing.T) {
	s := NewScheduler(context.Background(), 1, 8, 16, obs.NewRegistry())

	started := make(chan struct{})
	v, err := s.Submit("stubborn", 0, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // only stops when forced
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want deadline exceeded", err)
	}
	got, _ := s.Get(v.ID)
	if got.State != JobCancelled {
		t.Errorf("job state after forced drain = %s, want cancelled", got.State)
	}
}

func TestSchedulerPruneKeepsRecentAndLive(t *testing.T) {
	s := NewScheduler(context.Background(), 2, 32, 4, obs.NewRegistry())
	defer s.Drain(context.Background())

	var ids []string
	for i := 0; i < 10; i++ {
		v, err := s.Submit(fmt.Sprintf("j%d", i), 0, func(ctx context.Context) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitTerminal(t, s, v.ID)
		ids = append(ids, v.ID)
	}
	// Submitting each next job prunes terminal ones beyond retain=4.
	kept := 0
	for _, id := range ids {
		if _, ok := s.Get(id); ok {
			kept++
		}
	}
	if kept > 5 { // retain bound, +1 slack for the last submit racing its prune
		t.Errorf("kept %d terminal jobs, retain is 4", kept)
	}
	// The most recent job must still be queryable.
	if _, ok := s.Get(ids[len(ids)-1]); !ok {
		t.Error("most recent job was pruned")
	}
}

func TestSchedulerBaseContextCancelAbortsJobs(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	s := NewScheduler(base, 1, 8, 16, obs.NewRegistry())

	started := make(chan struct{})
	v, err := s.Submit("test", 0, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	cancelBase()
	got := waitTerminal(t, s, v.ID)
	if got.State != JobCancelled {
		t.Errorf("state = %s, want cancelled via base context", got.State)
	}
	s.Drain(context.Background())
}
