package service

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// submitScale posts one scale request, asserts the 202 contract, and waits
// for the job's terminal state.
func submitScale(t *testing.T, ts *httptest.Server, req map[string]any) JobView {
	t.Helper()
	c := ts.Client()
	resp, b := doJSON(t, c, "POST", ts.URL+"/v1/scale", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202: %s", resp.StatusCode, b)
	}
	var wrap struct {
		Job JobView `json:"job"`
	}
	if err := json.Unmarshal(b, &wrap); err != nil {
		t.Fatalf("unmarshal submit: %v", err)
	}
	if wrap.Job.ID == "" || wrap.Job.Kind != "scale" {
		t.Fatalf("submit view = %+v", wrap.Job)
	}
	return pollJob(t, c, ts.URL+"/v1/jobs/"+wrap.Job.ID, 60*time.Second)
}

// scaleResultOf re-marshals a terminal job's result into the typed form.
func scaleResultOf(t *testing.T, final JobView) ScaleResult {
	t.Helper()
	if final.State != JobDone {
		t.Fatalf("job state = %s (error %q), want done", final.State, final.Error)
	}
	rb, _ := json.Marshal(final.Result)
	var res ScaleResult
	if err := json.Unmarshal(rb, &res); err != nil {
		t.Fatalf("result unmarshal: %v", err)
	}
	return res
}

func TestScaleJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	res := scaleResultOf(t, submitScale(t, ts, map[string]any{
		"kernel":   "CoMD",
		"topology": "torus",
		"nodes":    []int{1, 8, 64},
		"mode":     "weak",
	}))
	if res.Kernel != "CoMD" || res.Topology != "torus" || res.Mode != "weak" {
		t.Fatalf("result header = %+v", res)
	}
	if res.NodeTFLOPs <= 0 {
		t.Fatalf("node rate %v must be positive", res.NodeTFLOPs)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for i, pt := range res.Points {
		if pt.Efficiency <= 0 || pt.Efficiency > 1 {
			t.Errorf("point %d efficiency %v out of (0,1]", i, pt.Efficiency)
		}
		if d := math.Abs(pt.DeliveredEF - pt.IdealEF*pt.Efficiency); d > 1e-9 {
			t.Errorf("point %d delivered %v inconsistent with ideal*eff %v", i, pt.DeliveredEF, pt.IdealEF*pt.Efficiency)
		}
	}
	if res.Points[0].Nodes != 1 || res.Points[0].Efficiency != 1 {
		t.Errorf("single node must be perfectly efficient: %+v", res.Points[0])
	}
}

// An ideal fabric must reproduce the §V-F arithmetic: efficiency exactly 1
// at every size, delivered == ideal.
func TestScaleIdealFabricMatchesProjection(t *testing.T) {
	_, ts := newTestServer(t)

	res := scaleResultOf(t, submitScale(t, ts, map[string]any{
		"kernel": "HPGMG",
		"nodes":  []int{1, 50, 1000},
		"ideal":  true,
	}))
	for i, pt := range res.Points {
		if pt.Efficiency != 1 {
			t.Errorf("ideal point %d efficiency = %v, want exactly 1", i, pt.Efficiency)
		}
		if d := math.Abs(pt.DeliveredEF - pt.IdealEF); d > 1e-12*math.Abs(pt.IdealEF) {
			t.Errorf("ideal point %d delivered %v != ideal %v", i, pt.DeliveredEF, pt.IdealEF)
		}
	}
}

// A node fault mask reroutes collectives and reports degraded efficiency;
// the degraded machine is never faster than the healthy one.
func TestScaleWithNodeFaults(t *testing.T) {
	_, ts := newTestServer(t)

	res := scaleResultOf(t, submitScale(t, ts, map[string]any{
		"kernel":     "CoMD",
		"topology":   "torus",
		"nodes":      []int{64},
		"fault_mask": "node:2",
		"seed":       7,
	}))
	if res.FaultMask != "node:2" || res.Seed != 7 {
		t.Fatalf("fault annotations = %q/%d", res.FaultMask, res.Seed)
	}
	pt := res.Points[0]
	if pt.FailedNodes != 2 {
		t.Fatalf("failed nodes = %d, want 2", pt.FailedNodes)
	}
	if pt.Partitioned {
		t.Fatalf("2 dead nodes must not partition a 4x4x4 torus: %+v", pt)
	}
	if pt.DegradedEfficiency <= 0 || pt.DegradedEfficiency > pt.Efficiency {
		t.Errorf("degraded efficiency %v out of (0, healthy %v]", pt.DegradedEfficiency, pt.Efficiency)
	}
}

// Killing every node but at most one is a partitioned answer, not an error:
// the job still completes and reports the dead machine.
func TestScaleFaultsExhaustMachine(t *testing.T) {
	_, ts := newTestServer(t)

	res := scaleResultOf(t, submitScale(t, ts, map[string]any{
		"kernel":     "CoMD",
		"nodes":      []int{2},
		"fault_mask": "node:2",
	}))
	pt := res.Points[0]
	if !pt.Partitioned {
		t.Errorf("killing the whole 2-node machine must partition: %+v", pt)
	}
	if pt.DegradedEfficiency != 0 {
		t.Errorf("partitioned point kept efficiency %v", pt.DegradedEfficiency)
	}
}

func TestScaleRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	cases := []struct {
		name string
		body map[string]any
		want string
	}{
		{"missing kernel", map[string]any{"topology": "torus"}, "kernel is required"},
		{"unknown kernel", map[string]any{"kernel": "nope"}, "unknown"},
		{"unknown topology", map[string]any{"kernel": "CoMD", "topology": "hypercube"}, "unknown topology"},
		{"unknown mode", map[string]any{"kernel": "CoMD", "mode": "sideways"}, "unknown mode"},
		{"zero nodes", map[string]any{"kernel": "CoMD", "nodes": []int{0}}, "non-positive node count"},
		{"huge nodes", map[string]any{"kernel": "CoMD", "nodes": []int{1 << 21}}, "exceeds the limit"},
		{"too many sizes", map[string]any{"kernel": "CoMD",
			"nodes": []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}}, "per-request limit"},
		{"negative link", map[string]any{"kernel": "CoMD", "link_gbps": -1}, "negative link"},
		{"negative timeout", map[string]any{"kernel": "CoMD", "timeout_sec": -1}, "negative timeout_sec"},
		{"local fault terms", map[string]any{"kernel": "CoMD", "fault_mask": "gpu:1"}, "non-node terms"},
		{"mixed fault terms", map[string]any{"kernel": "CoMD", "nodes": []int{64},
			"fault_mask": "node:1,hbm@0"}, "non-node terms"},
		{"degraded too large", map[string]any{"kernel": "CoMD", "nodes": []int{100000},
			"fault_mask": "node:1"}, "limited to 4096 nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, b := doJSON(t, c, "POST", ts.URL+"/v1/scale", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", resp.StatusCode, b)
			}
			if !strings.Contains(string(b), tc.want) {
				t.Errorf("body %q missing %q", b, tc.want)
			}
		})
	}
}

// Equivalent spellings (defaults omitted vs explicit, permuted node lists)
// must share one cache key and one execution.
func TestScaleCanonicalDedup(t *testing.T) {
	s, ts := newTestServer(t)

	a := scaleResultOf(t, submitScale(t, ts, map[string]any{
		"kernel": "MaxFlops", "nodes": []int{64, 8, 8, 1},
	}))
	b := scaleResultOf(t, submitScale(t, ts, map[string]any{
		"kernel": "MaxFlops", "topology": "torus", "mode": "weak", "nodes": []int{1, 8, 64},
	}))
	if a.Key != b.Key {
		t.Fatalf("equivalent requests got distinct keys:\n%s\n%s", a.Key, b.Key)
	}
	snap := s.Registry().Snapshot()
	if h, m := snap.Counters["service.cache.hits"], snap.Counters["service.cache.misses"]; h < 1 || m != 1 {
		t.Errorf("cache hits/misses = %d/%d, want >=1 hit over exactly 1 miss", h, m)
	}
}
